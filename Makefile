GO ?= go

.PHONY: build test test-shard test-rdl-diff race chaos bench bench-notify \
	bench-rdl bench-persist bench-gateway bench-shard bench-smoke \
	bench-json vet lint reach ci all help

all: build vet test

# ci is the gate a change must pass: build, vet, the custom static
# analysis (rdlcheck over every example policy, oasislint over the
# tree), the full test suite, the compiled-vs-interpreted RDL
# differential suite, the race detector over every
# concurrency-sensitive package, the seeded chaos suite, then one
# iteration of every benchmark so the perf suites cannot rot.
ci: build vet lint test test-shard test-rdl-diff race chaos bench-smoke

help:
	@echo "build       compile everything"
	@echo "test        full test suite"
	@echo "test-shard  sharding matrix: ring/sharded-store/tree/cluster suites at 1,2,4,8 shards"
	@echo "race        race-detector suite over the concurrent packages"
	@echo "chaos       seeded chaos suite (partitions, loss, duplication)"
	@echo "lint        oasislint + rdlcheck static analysis (includes reach)"
	@echo "reach       rdlcheck -reach scenario reachability over every example"
	@echo "test-rdl-diff  role entry with the compiled/interpreted differential seam on"
	@echo "bench       serial + parallel (-cpu 1,4,8) benchmark suites"
	@echo "bench-notify  notification-plane suite (EXPERIMENTS.md E28)"
	@echo "bench-rdl   interpreted vs compiled role entry (EXPERIMENTS.md E31)"
	@echo "bench-persist  journal append + recovery suites (EXPERIMENTS.md E32)"
	@echo "bench-gateway  HTTP issue/introspect/revoke suite into BENCH_9.json (E33)"
	@echo "bench-shard  shard cascade + tree-vs-flat dissemination into BENCH_10.json (E34)"
	@echo "bench-smoke   compile-and-run every benchmark once (part of ci)"
	@echo "bench-json    E30/E31/E32 benchmarks as test2json into BENCH_5/6/7.json"
	@echo "ci          build vet lint test test-shard test-rdl-diff race chaos bench-smoke"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The sharding matrix (part of ci): the consistent-hash ring, the
# sharded store at 1/2/4/8 shards against the monolithic semantics
# (TestShardedMatrix), the dissemination tree, the cross-shard service
# suites and the sharding wire payloads — everything `-shards` and
# `-shard-ring` deploy, run explicitly and uncached.
test-shard:
	$(GO) test -run 'Sharded|Ring|Tree|Disseminator|ForwardBatch' -count=1 \
		./internal/credrec/ ./internal/bus/
	$(GO) test -run 'Shard|ClusterPending|CoalesceShardEdges' -count=1 \
		./internal/oasis/

# The compiled-vs-interpreted differential gate: OASIS_RDL_DIFF=1 makes
# every rule application in the entry engine run both the compiled
# program and the tree-walking interpreter and panic on any divergence,
# so the whole oasis suite doubles as a fixture corpus; the rdl package
# differential unit tests run the same comparison over the example
# rolefiles and the semantic corner cases. Part of ci.
test-rdl-diff:
	OASIS_RDL_DIFF=1 $(GO) test -count=1 ./internal/oasis/...
	$(GO) test -run 'Differential|Compile' -count=1 ./internal/rdl/

# The concurrency regression suite: the striped store, read-mostly
# service engine, sharded bus, and batched broker are only meaningfully
# tested with the race detector on.
race:
	$(GO) test -race ./internal/bus/... ./internal/event/... \
		./internal/oasis/... ./internal/credrec/... ./internal/cert/... \
		./internal/fault/... ./internal/gateway/... ./cmd/rdlcheck/...

# The seeded chaos suite (internal/fault/chaos_test.go) plus the
# storage kill-point suite (persist_chaos_test.go): whole deployments
# driven through scripted partitions, loss and duplication, and the
# persistence engine crashed at every operation boundary; every run
# reproduces from its seed/schedule/kill point, so failures are
# deterministic. Always under the race detector — the fault plane
# exists to shake out exactly the interleavings it would catch.
chaos:
	$(GO) test -race -run 'Chaos|KillPoint|RevocationsStay' ./internal/fault/... -count=1

# Serial benchmarks plus the parallel suite at 1, 4 and 8 threads
# (bench_parallel_test.go); results feed EXPERIMENTS.md.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
	$(GO) test -bench Parallel -benchmem -cpu 1,4,8 -run '^$$' .

# The notification-plane suite (bench_notify_test.go): Modified-event
# storms, heartbeat fan-out, and TCP bursts, batched and unbatched;
# results feed EXPERIMENTS.md E28.
bench-notify:
	$(GO) test -bench 'Notify|Heartbeat' -benchmem -cpu 1,4,8 -run '^$$' .

# The RDL execution-plan suite (bench_rdl_test.go): role entry with the
# constraint interpreter versus the compiled program over the
# quickstart, golfclub and login example policies; results feed
# EXPERIMENTS.md E31.
bench-rdl:
	$(GO) test -bench RDLEntry -benchmem -cpu 1,4,8 -run '^$$' .

# The persistence-engine suite (bench_persist_test.go): text versus
# binary group-commit journal appends onto a real file at 1, 4 and 8
# mutators, and replay-all versus snapshot+tail recovery across history
# lengths; results feed EXPERIMENTS.md E32.
bench-persist:
	$(GO) test -bench 'PersistAppend' -benchmem -cpu 1,4,8 -run '^$$' .
	$(GO) test -bench 'PersistRecovery' -benchmem -run '^$$' .

# The federation-gateway suite (bench_gateway_test.go): the full
# deployed HTTP handler stack at the issue/introspect/revoke hot paths;
# the perf trajectory lands in BENCH_9.json as test2json (EXPERIMENTS.md
# E33).
bench-gateway:
	$(GO) test -json -benchmem -cpu 1,4,8 -run '^$$' \
		-bench 'Gateway' . > BENCH_9.json

# The sharding suite (bench_shard_test.go): revocation-storm cascade
# throughput over the store at 1/2/4/8 shards, and tree-vs-flat
# dissemination of a storm to 2^10 watchers. The cascade rows run at
# -cpu 1,4,8 (per-shard writer serialisation only shows on real
# cores); the dissemination pair times the origin's blocking cost with
# delivery awaited untimed, so it uses fixed iterations. Both land in
# BENCH_10.json as test2json (EXPERIMENTS.md E34).
bench-shard:
	$(GO) test -json -benchmem -cpu 1,4,8 -run '^$$' \
		-bench 'ShardCascade' . > BENCH_10.json
	$(GO) test -json -benchmem -benchtime=20x -run '^$$' \
		-bench 'Disseminate' . >> BENCH_10.json

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash without paying for a measurement. Part of ci.
bench-smoke:
	$(GO) test -benchtime=1x -run '^$$' -bench . .

# The E30 remote-validation benchmarks (gob vs binary wire, locked vs
# pipelined writer, cached vs cold verify) in machine-readable
# test2json form; the perf trajectory of the wire layer is tracked in
# BENCH_5.json. The E31 entry-plan suite lands in BENCH_6.json and the
# E32 persistence suite in BENCH_7.json the same way.
bench-json:
	$(GO) test -json -benchmem -cpu 1,4,8 -run '^$$' \
		-bench 'RemoteValidateTCP|ValidateRMCParallel' . > BENCH_5.json
	$(GO) test -json -benchmem -cpu 1,4,8 -run '^$$' \
		-bench 'RDLEntry' . > BENCH_6.json
	$(GO) test -json -benchmem -cpu 1,4,8 -run '^$$' \
		-bench 'PersistAppend|PersistRecovery' . > BENCH_7.json

vet:
	$(GO) vet ./...

# The repository's own static analysis (see DESIGN.md "Static
# analysis"): oasislint enforces the concurrency discipline with
# stdlib go/ast + go/types; rdlcheck analyzes every shipped policy for
# unrevocable roles, dead rules and unreachable roles. Error-level
# findings fail the build.
lint: reach
	$(GO) run ./cmd/oasislint ./internal/... ./cmd/...
	$(GO) run ./cmd/rdlcheck -q examples/quickstart/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/golfclub/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/login/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/mssa/*.rdl

# Scenario reachability (docs/RDL.md "Reachability analysis"): each
# example ships a .scn scenario whose expect/possible/deny assertions
# are proved against the policy's symbolic fixpoint; a failed assertion
# is an error-level R010 finding, so drift between a policy and its
# documented access expectations fails the build.
reach:
	$(GO) run ./cmd/rdlcheck -reach -q -severity error \
		examples/quickstart/*.rdl examples/quickstart/*.scn
	$(GO) run ./cmd/rdlcheck -reach -q -severity error \
		examples/golfclub/*.rdl examples/golfclub/*.scn
	$(GO) run ./cmd/rdlcheck -reach -q -severity error \
		examples/login/*.rdl examples/login/*.scn
	$(GO) run ./cmd/rdlcheck -reach -q -severity error \
		examples/mssa/*.rdl examples/mssa/*.scn
