GO ?= go

.PHONY: build test race chaos bench bench-notify vet lint ci all

all: build vet test

# ci is the gate a change must pass: build, vet, the custom static
# analysis (rdlcheck over every example policy, oasislint over the
# tree), the full test suite, the race detector over every
# concurrency-sensitive package, then the seeded chaos suite.
ci: build vet lint test race chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency regression suite: the striped store, read-mostly
# service engine, sharded bus, and batched broker are only meaningfully
# tested with the race detector on.
race:
	$(GO) test -race ./internal/bus/... ./internal/event/... \
		./internal/oasis/... ./internal/credrec/... ./internal/cert/... \
		./internal/fault/...

# The seeded chaos suite (internal/fault/chaos_test.go): whole
# deployments driven through scripted partitions, loss and duplication;
# every run reproduces from (seed, schedule), so failures are
# deterministic. Always under the race detector — the fault plane
# exists to shake out exactly the interleavings it would catch.
chaos:
	$(GO) test -race -run 'Chaos' ./internal/fault/... -count=1

# Serial benchmarks plus the parallel suite at 1, 4 and 8 threads
# (bench_parallel_test.go); results feed EXPERIMENTS.md.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
	$(GO) test -bench Parallel -benchmem -cpu 1,4,8 -run '^$$' .

# The notification-plane suite (bench_notify_test.go): Modified-event
# storms, heartbeat fan-out, and TCP bursts, batched and unbatched;
# results feed EXPERIMENTS.md E28.
bench-notify:
	$(GO) test -bench 'Notify|Heartbeat' -benchmem -cpu 1,4,8 -run '^$$' .

vet:
	$(GO) vet ./...

# The repository's own static analysis (see DESIGN.md "Static
# analysis"): oasislint enforces the concurrency discipline with
# stdlib go/ast + go/types; rdlcheck analyzes every shipped policy for
# unrevocable roles, dead rules and unreachable roles. Error-level
# findings fail the build.
lint:
	$(GO) run ./cmd/oasislint ./internal/... ./cmd/...
	$(GO) run ./cmd/rdlcheck -q examples/quickstart/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/golfclub/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/login/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/mssa/*.rdl
