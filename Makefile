GO ?= go

.PHONY: build test race bench bench-notify vet lint ci all

all: build vet test

# ci is the gate a change must pass: build, vet, the custom static
# analysis (rdlcheck over every example policy, oasislint over the
# tree), the full test suite, then the race detector over every
# concurrency-sensitive package.
ci: build vet lint test race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency regression suite: the striped store, read-mostly
# service engine, sharded bus, and batched broker are only meaningfully
# tested with the race detector on.
race:
	$(GO) test -race ./internal/bus/... ./internal/event/... \
		./internal/oasis/... ./internal/credrec/... ./internal/cert/...

# Serial benchmarks plus the parallel suite at 1, 4 and 8 threads
# (bench_parallel_test.go); results feed EXPERIMENTS.md.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
	$(GO) test -bench Parallel -benchmem -cpu 1,4,8 -run '^$$' .

# The notification-plane suite (bench_notify_test.go): Modified-event
# storms, heartbeat fan-out, and TCP bursts, batched and unbatched;
# results feed EXPERIMENTS.md E28.
bench-notify:
	$(GO) test -bench 'Notify|Heartbeat' -benchmem -cpu 1,4,8 -run '^$$' .

vet:
	$(GO) vet ./...

# The repository's own static analysis (see DESIGN.md "Static
# analysis"): oasislint enforces the concurrency discipline with
# stdlib go/ast + go/types; rdlcheck analyzes every shipped policy for
# unrevocable roles, dead rules and unreachable roles. Error-level
# findings fail the build.
lint:
	$(GO) run ./cmd/oasislint ./internal/... ./cmd/...
	$(GO) run ./cmd/rdlcheck -q examples/quickstart/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/golfclub/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/login/*.rdl
	$(GO) run ./cmd/rdlcheck -q examples/mssa/*.rdl
