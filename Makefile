GO ?= go

.PHONY: build test race bench vet all

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency regression suite: the striped store, read-mostly
# service engine, and signer pools are only meaningfully tested with
# the race detector on.
race:
	$(GO) test -race ./internal/oasis/... ./internal/credrec/... ./internal/cert/...

# Serial benchmarks plus the parallel suite at 1, 4 and 8 threads
# (bench_parallel_test.go); results feed EXPERIMENTS.md.
bench:
	$(GO) test -bench . -benchmem -run '^$$' .
	$(GO) test -bench Parallel -benchmem -cpu 1,4,8 -run '^$$' .

vet:
	$(GO) vet ./...
