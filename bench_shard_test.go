// Sharding benchmarks (E34): the revocation-storm throughput of the
// credential-record graph partitioned over 1/2/4/8 shards
// (credrec.ShardedStore), and tree versus flat dissemination of a
// notification burst to 2^10 watchers (bus.Tree + ForwardBatch). Run
// with `-cpu 1,4,8`; `make bench-shard` emits BENCH_10.json and
// EXPERIMENTS.md E34 records the numbers.
//
// Cascade scaling comes from per-shard write serialisation — a
// monolithic store funnels every cascade through one writer lock, the
// sharded store runs one writer per shard. The win needs real cores:
// on a single-CPU host the 1/2/4/8 rows measure the routing layer's
// overhead instead (they should be ~flat), because timesliced writers
// never actually contend. The dissemination pair is core-independent:
// it times the origin's blocking cost (n−1 sends flat, k sends tree),
// which is a property of the topology, not the scheduler.
package benchmarks

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/credrec"
	"oasis/internal/event"
	"oasis/internal/value"
)

// buildShardedGraph populates a sharded store with groups of one fact
// feeding a chain of depth derived records. Derived records are placed
// on their first parent's shard, so each chain cascades entirely
// within one shard — the locality the first-parent placement rule buys.
func buildShardedGraph(b *testing.B, shards, groups, depth int) (*credrec.ShardedStore, []credrec.Ref) {
	b.Helper()
	names := make([]string, shards)
	for i := range names {
		names[i] = fmt.Sprintf("s%02d", i)
	}
	ss, err := credrec.NewShardedStore(names, 0)
	if err != nil {
		b.Fatal(err)
	}
	facts := make([]credrec.Ref, groups)
	for g := range facts {
		fact := ss.NewFact(credrec.True)
		facts[g] = fact
		parent := fact
		for d := 0; d < depth; d++ {
			parent = ss.NewDerived(credrec.OpAnd, credrec.Of(parent))
		}
	}
	return ss, facts
}

func benchShardCascade(b *testing.B, shards int) {
	const groups, depth = 1024, 8
	ss, facts := buildShardedGraph(b, shards, groups, depth)
	var next atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			g := facts[next.Add(1)%groups]
			// One full down-up flap: 2 cascades of `depth` transitions.
			if err := ss.SetState(g, credrec.False); err != nil {
				b.Fatal(err)
			}
			if err := ss.SetState(g, credrec.True); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkShardCascade1(b *testing.B) { benchShardCascade(b, 1) }
func BenchmarkShardCascade2(b *testing.B) { benchShardCascade(b, 2) }
func BenchmarkShardCascade4(b *testing.B) { benchShardCascade(b, 4) }
func BenchmarkShardCascade8(b *testing.B) { benchShardCascade(b, 8) }

// benchSink terminates one watcher: relays (tree mode), then adds the
// burst's sequence coverage to the shared storm counter. The counter
// is cumulative across iterations, so in-flight stragglers from a
// previous burst are counted, never lost — the waiter just spins until
// total coverage reaches watchers × storm × iterations.
type benchSink struct {
	d     *bus.Disseminator // nil for flat fan-out targets
	root  string
	total *atomic.Int64
}

func (s *benchSink) Call(from, op string, arg any) (any, error) { return nil, nil }
func (s *benchSink) Deliver(n event.Notification) {
	s.DeliverBatch([]event.Notification{n})
}
func (s *benchSink) DeliverBatch(notes []event.Notification) {
	if s.d != nil {
		s.d.Forward(s.root, notes)
	}
	covered := int64(0)
	for _, n := range notes {
		covered += 1 + int64(n.Coalesced)
	}
	s.total.Add(covered)
}

// awaitCoverage spins until the storm counter reaches target; the
// deliveries complete on other goroutines within microseconds.
func awaitCoverage(total *atomic.Int64, target int64) {
	for total.Load() < target {
		runtime.Gosched()
	}
}

// stormNotes builds one revocation burst: notesPerStorm Modified events
// across distinct records, sequenced on one session.
func stormNotes(origin string, n int) []event.Notification {
	notes := make([]event.Notification, n)
	for i := range notes {
		notes[i] = event.Notification{
			Source:    origin,
			SessionID: 1,
			Seq:       uint64(i + 1),
			Event: event.New(benchModifiedEvent,
				value.Str(fmt.Sprintf("ref-%d", i)), value.Int(1), value.Int(1)),
		}
	}
	return notes
}

const (
	stormWatchers = 1024
	stormSize     = 16
)

// The dissemination pair measures the origin's blocking cost to get a
// revocation storm to 2^10 watchers — the resource the tree exists to
// relieve (§4.9 fan-out): a flat origin must perform n−1 sends itself
// before it can do anything else, a tree origin performs k and the
// relays carry the rest. Both use the same per-edge ForwardBatch
// machinery, so the comparison isolates the topology. Full delivery is
// awaited outside the timed region in both benchmarks (for flat the
// await is trivially satisfied — ForwardBatch delivers synchronously).
//
// BenchmarkFlatDisseminate is the baseline: the origin sends the burst
// to every watcher point-to-point.
func BenchmarkFlatDisseminate(b *testing.B) {
	net := bus.NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	origin := "origin"
	var total atomic.Int64
	names := make([]string, stormWatchers)
	if err := net.Register(origin, &benchSink{total: new(atomic.Int64)}); err != nil {
		b.Fatal(err)
	}
	for i := range names {
		names[i] = fmt.Sprintf("w%04d", i)
		if err := net.Register(names[i], &benchSink{total: &total}); err != nil {
			b.Fatal(err)
		}
	}
	notes := stormNotes(origin, stormSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, to := range names {
			net.ForwardBatch(origin, to, notes)
		}
		b.StopTimer()
		awaitCoverage(&total, int64(i+1)*stormWatchers*stormSize)
		b.StartTimer()
	}
}

// BenchmarkTreeDisseminate disseminates the same burst over a fanout-8
// tree: the origin blocks for 8 sends, interior watchers relay to
// their own children on separate goroutines, and the storm's tail is
// awaited untimed before the next iteration begins.
func BenchmarkTreeDisseminate(b *testing.B) {
	net := bus.NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	origin := "origin"
	members := make([]string, stormWatchers+1)
	members[0] = origin
	for i := 1; i < len(members); i++ {
		members[i] = fmt.Sprintf("w%04d", i-1)
	}
	tree, err := bus.NewTree(members, 8)
	if err != nil {
		b.Fatal(err)
	}
	var total atomic.Int64
	sinks := make([]*benchSink, 0, stormWatchers)
	for _, m := range members {
		s := &benchSink{root: origin, total: &total}
		if m == origin {
			s.total = new(atomic.Int64) // the root receives nothing
		} else {
			s.d = bus.NewDisseminator(net, tree, m, true)
			sinks = append(sinks, s)
		}
		if err := net.Register(m, s); err != nil {
			b.Fatal(err)
		}
	}
	od := bus.NewDisseminator(net, tree, origin, true)
	notes := stormNotes(origin, stormSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		od.Broadcast(notes)
		b.StopTimer()
		awaitCoverage(&total, int64(i+1)*stormWatchers*stormSize)
		b.StartTimer()
	}
	b.StopTimer()
	od.Wait()
	for _, s := range sinks {
		s.d.Wait()
	}
}
