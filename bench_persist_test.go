package benchmarks

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"oasis/internal/credrec"
	"oasis/internal/credrec/storage"
)

// ---- E32: the persistence engine ----
//
// Two claims. First, journal-append throughput: the binary group-commit
// journal versus the text journal it replaced, on concurrent mutators
// (-cpu 1,4,8). The text path holds the store lock across a Fprintf to
// the sink; the binary path encodes under the lock but writes on a
// dedicated committer, so contending mutators pay one flush between
// them. Second, recovery time: replaying the full history versus
// loading a snapshot and replaying the tail, across history lengths —
// replay-all grows linearly, snapshot+tail stays flat.

// journalFile opens a real append-only file for a benchmark: the
// journal device is the filesystem, so every Write is a real syscall
// and Sync a real fsync — the costs group commit exists to amortise.
func journalFile(b *testing.B) *os.File {
	b.Helper()
	f, err := os.OpenFile(filepath.Join(b.TempDir(), "journal.seg"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })
	return f
}

// countingSink wraps a sink, counting Writes and Syncs so the
// benchmarks report write amplification alongside latency.
type countingSink struct {
	dst    credrec.JournalSink
	writes atomic.Int64
	syncs  atomic.Int64
}

func (s *countingSink) Write(p []byte) (int, error) {
	s.writes.Add(1)
	return s.dst.Write(p)
}

func (s *countingSink) Sync() error {
	s.syncs.Add(1)
	return s.dst.Sync()
}

// appendWorkload is one mutator iteration: allocate a derived
// credential on a root and revoke it — two journaled operations.
func appendWorkload(r credrec.Recorder, root credrec.Ref) {
	c := r.NewDerived(credrec.OpAnd, credrec.Of(root))
	_ = r.Invalidate(c)
}

// BenchmarkPersistAppendText is the baseline: the text journal the
// binary engine replaced (one locked Fprintf per mutation).
func BenchmarkPersistAppendText(b *testing.B) {
	sink := &countingSink{dst: journalFile(b)}
	ls := credrec.NewTextLoggedStore(sink)
	root := ls.NewFact(credrec.True)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			appendWorkload(ls, root)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(sink.writes.Load())/float64(b.N), "writes/op")
}

// BenchmarkPersistAppendBinary is the engine path: binary records,
// group commit, one fsync per batch.
func BenchmarkPersistAppendBinary(b *testing.B) {
	for _, policy := range []credrec.SyncPolicy{credrec.SyncBatched, credrec.SyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			sink := &countingSink{dst: journalFile(b)}
			ls := credrec.NewLoggedStoreWith(credrec.NewStore(), sink, credrec.JournalOptions{Sync: policy})
			defer ls.Close()
			root := ls.NewFact(credrec.True)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					appendWorkload(ls, root)
				}
			})
			if err := ls.Sync(); err != nil { // drain inside the timer: the committer's work counts
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(sink.writes.Load())/float64(b.N), "writes/op")
			b.ReportMetric(float64(sink.syncs.Load())/float64(b.N), "syncs/op")
		})
	}
}

// persistHistory journals n append-workload operations into a memory
// backend through the engine, snapshotting every snapEvery ops (0 means
// never), and returns the backend for recovery benchmarks.
func persistHistory(b *testing.B, n, snapEvery int) *storage.Memory {
	b.Helper()
	be := storage.NewMemory()
	eng, err := storage.Open(be, storage.Options{Sync: credrec.SyncNone})
	if err != nil {
		b.Fatal(err)
	}
	ls := eng.Store()
	root := ls.NewFact(credrec.True)
	for i := 0; i < n/2; i++ {
		appendWorkload(ls, root)
		if snapEvery > 0 && i > 0 && i%(snapEvery/2) == 0 {
			ls.Sweep() // GC the fully-revoked subgraphs before the image
			if err := eng.Snapshot(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := ls.Sync(); err != nil {
		b.Fatal(err)
	}
	// Model a crash that loses nothing: recovery still has to do all
	// the work its strategy implies.
	return be.Crash(1 << 30)
}

// BenchmarkPersistRecovery compares rebuilding a store by full-history
// replay against snapshot-plus-tail recovery, across history lengths.
// The replay-all series grows linearly with history; the snapshot
// series is bounded by live records plus one segment tail.
func BenchmarkPersistRecovery(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("replayAll/%d", n), func(b *testing.B) {
			be := persistHistory(b, n, 0)
			segs, _ := be.ListSegments()
			var journal bytes.Buffer
			for _, s := range segs {
				r, err := be.OpenSegment(s)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := journal.ReadFrom(r); err != nil {
					b.Fatal(err)
				}
				r.Close()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := credrec.Replay(bytes.NewReader(journal.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("snapshotTail/%d", n), func(b *testing.B) {
			be := persistHistory(b, n, 4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng, err := storage.Open(be.Crash(1<<30), storage.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
