// badgesim runs the multi-site Active Badge simulation of §6.3,
// printing event statistics and demonstrating the inter-site protocol
// at scale. Flags control sites, badges, sensors and steps.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"oasis/internal/badge"
	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/composite"
	"oasis/internal/event"
	"oasis/internal/value"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		nSites   = flag.Int("sites", 3, "number of sites")
		nBadges  = flag.Int("badges", 20, "number of badges")
		nSensors = flag.Int("sensors", 4, "sensors per site")
		nSteps   = flag.Int("steps", 200, "simulation steps")
		seed     = flag.Uint64("seed", 1996, "simulation seed")
	)
	flag.Parse()

	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)

	sites := make([]*badge.Site, *nSites)
	sensors := make(map[string][]string, *nSites)
	for i := range sites {
		name := fmt.Sprintf("Site%d", i)
		s, err := badge.NewSite(name, clk, net)
		if err != nil {
			return err
		}
		sites[i] = s
		sensors[name] = badge.DefaultSensors(s, *nSensors)
	}

	// Count Seen and MovedSite events at site 0, and run an Enters
	// detector over its stream.
	var seen, moved, enters int
	m := composite.NewMachine(
		composite.MustParse(`$Seen(B, R2); Seen(B, R) - Seen(B, R2)`, composite.ParseOptions{}),
		func(composite.Occurrence) { enters++ },
		composite.MachineOptions{})
	m.Start(clk.Now(), value.Env{})
	sink := event.SinkFunc(func(n event.Notification) {
		if n.Heartbeat {
			return
		}
		switch n.Event.Name {
		case badge.EvSeen:
			seen++
			m.Process(n.Event)
		case badge.EvMovedSite:
			moved++
		}
	})
	sess, err := sites[0].Broker().OpenSession(sink, nil)
	if err != nil {
		return err
	}
	for _, tmpl := range []event.Template{
		event.NewTemplate(badge.EvSeen, event.Wildcard(), event.Wildcard()),
		event.NewTemplate(badge.EvMovedSite, event.Wildcard(), event.Wildcard(), event.Wildcard()),
	} {
		if _, err := sites[0].Broker().Register(sess, tmpl); err != nil {
			return err
		}
	}

	sim := badge.NewSim(clk, sites, sensors, *seed)
	for i := 0; i < *nBadges; i++ {
		id := fmt.Sprintf("b%03d", i)
		if err := sim.AddBadge(id, "user-"+id, i%*nSites); err != nil {
			return err
		}
	}
	wall := clock.Real()
	start := wall.Now()
	sim.Run(*nSteps, 250*time.Millisecond)
	elapsed := wall.Now().Sub(start)

	beads, matched := m.Stats()
	fmt.Printf("badgesim: %d sites, %d badges, %d steps in %v (wall)\n",
		*nSites, *nBadges, *nSteps, elapsed.Round(time.Millisecond))
	fmt.Printf("  site0: Seen=%d MovedSite=%d Enters-detected=%d\n", seen, moved, enters)
	fmt.Printf("  detector: beads=%d matched=%d activeWatchers=%d\n",
		beads, matched, m.ActiveWatchers())
	fmt.Printf("  network: notify=%d calls(badge-arrived)=%d calls(badge-left)=%d\n",
		net.Count("notify"), net.Count("call:badge-arrived"), net.Count("call:badge-left"))
	return nil
}
