// benchharness regenerates the evaluation tables T1-T3 of DESIGN.md's
// experiment index: the comparative claims of the paper rendered as
// parameter sweeps. Run with no arguments; -hours/-creds adjust T1.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"oasis/internal/baseline"
	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/credrec"
	"oasis/internal/event"
	"oasis/internal/fault"
	"oasis/internal/ids"
	"oasis/internal/mssa"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	var (
		hours = flag.Int("hours", 10, "T1: simulated hours")
		creds = flag.Int("creds", 100, "T1: live credentials")
	)
	flag.Parse()
	tableT1(*hours, *creds)
	fmt.Println()
	tableT2()
	fmt.Println()
	if err := tableT3(); err != nil {
		return err
	}
	fmt.Println()
	tableT4()
	fmt.Println()
	if err := tableT5(); err != nil {
		return err
	}
	fmt.Println()
	if err := tableT6(); err != nil {
		return err
	}
	fmt.Println()
	if err := tableT7(); err != nil {
		return err
	}
	fmt.Println()
	return tableT8()
}

// tableT8 is the chaos matrix (E29): a Login/Conf deployment driven
// through a scheduled partition (30s-60s) under varying link faults,
// with the watched login revoked mid-partition. For each fault profile
// it reports the fault plane's activity, how long after the split the
// watcher's validations failed safe, how long after the heal the
// surviving membership was restored by resync, and whether a same-seed
// rerun reproduced the identical fault transcript (§4.10 determinism).
func tableT8() error {
	fmt.Println("T8 (E29): chaos matrix — split at 30s, heal at 60s, revocation at 40s")
	fmt.Printf("%-24s %7s %6s %12s %12s %10s\n",
		"link faults", "drops", "dups", "failsafe", "recovery", "same-seed")
	profiles := []struct {
		label string
		f     fault.Faults
	}{
		{"clean", fault.Faults{}},
		{"dup=0.2 jitter=300ms", fault.Faults{Dup: 0.2, Jitter: 300 * time.Millisecond}},
		{"drop=0.3", fault.Faults{Drop: 0.3}},
	}
	for _, p := range profiles {
		const seed = 7
		r1, err := chaosRun(seed, p.f)
		if err != nil {
			return err
		}
		r2, err := chaosRun(seed, p.f)
		if err != nil {
			return err
		}
		same := "yes"
		if r1.transcript != r2.transcript {
			same = "NO"
		}
		fmtAt := func(at, from int) string {
			if at < 0 {
				return "never"
			}
			return fmt.Sprintf("+%ds", at-from)
		}
		fmt.Printf("%-24s %7d %6d %12s %12s %10s\n", p.label,
			r1.drops, r1.dups, fmtAt(r1.failsafeAt, 30), fmtAt(r1.recoveryAt, 60), same)
	}
	fmt.Println("  (failsafe: split -> validations refused; recovery: heal -> restored")
	fmt.Println("   by auto-resync; every run reproduces from (seed, schedule), §4.10)")
	return nil
}

type chaosResult struct {
	transcript             string
	drops, dups            int64
	failsafeAt, recoveryAt int // virtual seconds; -1 = never happened
}

// chaosRun is one seeded pass of the T8 scenario: a member watched
// across the Login->Conf link, a partition per schedule, a second
// member revoked mid-partition, validation probed every second.
func chaosRun(seed int64, f fault.Faults) (chaosResult, error) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	plane := fault.New(clk, seed)
	plane.Install(net)
	login, err := oasis.New("Login", clk, net, oasis.Options{HeartbeatEvery: 5 * time.Second})
	if err != nil {
		return chaosResult{}, err
	}
	if err := login.AddRolefile("main", `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`); err != nil {
		return chaosResult{}, err
	}
	conf, err := oasis.New("Conf", clk, net, oasis.Options{
		HeartbeatEvery: 5 * time.Second,
		FailsafeMissed: 2,
		AutoResync:     true,
	})
	if err != nil {
		return chaosResult{}, err
	}
	if err := conf.AddRolefile("main", `Member(u) <- Login.LoggedOn(u, h)*`); err != nil {
		return chaosResult{}, err
	}
	host := ids.NewHostAuthority("ely", clk.Now())
	member := func(user string) (ids.ClientID, *cert.RMC, *cert.RMC, error) {
		c := host.NewDomain()
		lg, err := login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{
				value.Object("Login.userid", user),
				value.Object("Login.host", "ely"),
			},
		})
		if err != nil {
			return c, nil, nil, err
		}
		m, err := conf.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "Member",
			Args:  []value.Value{value.Object("Login.userid", user)},
			Creds: []*cert.RMC{lg},
		})
		return c, lg, m, err
	}
	stayC, _, stayM, err := member("alice")
	if err != nil {
		return chaosResult{}, err
	}
	goneC, goneLogin, _, err := member("bob")
	if err != nil {
		return chaosResult{}, err
	}
	plane.SetFaults("Login", "Conf", f)
	plane.SetSchedule([]fault.Step{
		{At: 30 * time.Second, Kind: "split", Name: "wan", Side1: []string{"Login"}, Side2: []string{"Conf"}},
		{At: 60 * time.Second, Kind: "heal", Name: "wan"},
	})
	res := chaosResult{failsafeAt: -1, recoveryAt: -1}
	for i := 1; i <= 120; i++ {
		clk.Advance(time.Second)
		plane.Tick()
		net.Flush()
		if i%5 == 0 {
			login.HeartbeatTick()
			net.Flush()
			conf.SuspicionTick()
		}
		if i == 40 {
			if err := login.Exit(goneLogin, goneC); err != nil {
				return chaosResult{}, err
			}
		}
		ok := conf.Validate(stayM, stayC) == nil
		if res.failsafeAt < 0 && i >= 30 && !ok {
			res.failsafeAt = i
		}
		if res.recoveryAt < 0 && i >= 60 && ok {
			res.recoveryAt = i
		}
	}
	res.transcript = plane.Transcript()
	res.drops = plane.Drops()
	res.dups = plane.Dups()
	return res, nil
}

// t7Endpoint counts deliveries and the sequence numbers they cover
// (a coalesced notification covers 1+Coalesced).
type t7Endpoint struct {
	notes   atomic.Int64
	covered atomic.Int64
}

func (e *t7Endpoint) Call(from, op string, arg any) (any, error) { return nil, nil }
func (e *t7Endpoint) Deliver(n event.Notification) {
	e.notes.Add(1)
	e.covered.Add(int64(1 + n.Coalesced))
}
func (e *t7Endpoint) DeliverBatch(notes []event.Notification) {
	e.notes.Add(int64(len(notes)))
	for _, n := range notes {
		e.covered.Add(int64(1 + n.Coalesced))
	}
}

// tableT7 measures the notification plane (E28): Modified-event storm
// throughput through the indexed broker and sharded bus as signalling
// threads are added, and the delivery collapse the batch path achieves
// on a churning record. The §4.9 revocation guarantee is paid for on
// this path; before the indexed broker every Signal scanned every
// registration in the service.
func tableT7() error {
	const records, watchers, span = 256, 8, 64
	build := func() (*bus.Network, *event.Broker, []string, []*t7Endpoint) {
		clk := clock.NewVirtual(time.Unix(0, 0))
		net := bus.NewNetwork(clk)
		broker := event.NewBroker("S", clk, event.BrokerOptions{})
		refs := make([]string, records)
		eps := make([]*t7Endpoint, watchers)
		for i := range refs {
			refs[i] = fmt.Sprintf("%x", i+1)
		}
		for w := range eps {
			eps[w] = &t7Endpoint{}
			name := fmt.Sprintf("W%d", w)
			if err := net.Register(name, eps[w]); err != nil {
				panic(err)
			}
			sess, err := broker.OpenSession(net.Sink("S", name), nil)
			if err != nil {
				panic(err)
			}
			for _, ref := range refs {
				tmpl := event.NewTemplate(oasis.ModifiedEvent,
					event.Lit(value.Str(ref)), event.Wildcard(), event.Wildcard())
				if _, err := broker.Register(sess, tmpl); err != nil {
					panic(err)
				}
			}
		}
		return net, broker, refs, eps
	}
	fmt.Println("T7 (E28): notification storm throughput,",
		fmt.Sprintf("%d records x %d watchers", records, watchers))
	fmt.Printf("%-10s %12s %14s\n", "threads", "ns/signal", "signals/ms")
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		_, broker, refs, _ := build()
		var next atomic.Uint64
		res := testing.Benchmark(func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := next.Add(1) * 31
				for pb.Next() {
					broker.Signal(event.New(oasis.ModifiedEvent,
						value.Str(refs[i%records]), value.Int(1), value.Int(0)))
					i++
				}
			})
		})
		ns := res.NsPerOp()
		fmt.Printf("%-10d %12d %14.0f\n", procs, ns, 1e6/float64(ns))
	}
	runtime.GOMAXPROCS(prev)

	// Batch-path collapse: span updates to one hot record per batch.
	net, broker, refs, eps := build()
	net.SetCoalesceRule(bus.CoalesceRule{
		Key: func(ev event.Event) string {
			if ev.Name != oasis.ModifiedEvent || len(ev.Args) != 3 {
				return ""
			}
			return ev.Args[0].S
		},
		Sticky: func(ev event.Event) bool {
			return len(ev.Args) == 3 && ev.Args[1].I == 0 && ev.Args[2].I != 0
		},
	})
	const rounds = 200
	for r := 0; r < rounds; r++ {
		net.StartBatch("S")
		for k := 0; k < span; k++ {
			broker.Signal(event.New(oasis.ModifiedEvent,
				value.Str(refs[r%records]), value.Int(int64(k%2)), value.Int(0)))
		}
		net.EndBatch("S")
	}
	var notes, covered int64
	for _, ep := range eps {
		notes += ep.notes.Load()
		covered += ep.covered.Load()
	}
	if want := int64(rounds) * span * watchers; covered != want {
		return fmt.Errorf("T7: covered %d sequence numbers, want %d", covered, want)
	}
	fmt.Printf("  batch path, %d-update spans on one record: %.3f deliveries/signal\n",
		span, float64(notes)/float64(covered))
	fmt.Println("  (coalescing collapses superseded runs; absorbed sequence numbers")
	fmt.Println("   stay accounted, so §4.10 loss detection is unaffected)")
	return nil
}

// tableT6 measures the concurrent validation fast path: certificate
// validation throughput as client threads are added. With the striped
// credential-record store and lock-free audit counters, the success
// path takes no service-wide lock, so throughput should track the
// machine's parallelism rather than collapsing on a big mutex.
func tableT6() error {
	clk := clock.NewVirtual(time.Unix(0, 0))
	svc, err := oasis.New("S", clk, nil, oasis.Options{})
	if err != nil {
		return err
	}
	if err := svc.AddRolefile("main", `
def R(u) u: S.userid
R(u) <-
`); err != nil {
		return err
	}
	client := ids.NewHostAuthority("h", clk.Now()).NewDomain()
	rmc, err := svc.IssueDirect(client, "main", "R",
		[]value.Value{value.Object("S.userid", "u")})
	if err != nil {
		return err
	}
	fmt.Println("T6: parallel certificate validation throughput")
	fmt.Printf("%-10s %12s %16s\n", "threads", "ns/op", "validations/ms")
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 4, 8} {
		runtime.GOMAXPROCS(procs)
		res := testing.Benchmark(func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := svc.Validate(rmc, client); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		ns := res.NsPerOp()
		fmt.Printf("%-10d %12d %16.0f\n", procs, ns, 1e6/float64(ns))
	}
	fmt.Printf("  (ran on %d CPU(s); validation holds only a single shard read\n", runtime.NumCPU())
	fmt.Println("   lock plus atomic counters — no service-wide mutex on success)")
	return nil
}

// tableT5 is the §4.10 / §6.8.3 trade-off measured on the real
// machinery: the heartbeat period t bounds how long an undetected
// failure can last ("a client can be certain of receiving an event
// within time t of its generation, or of detecting that notification
// may have failed"), at the price of background heartbeat traffic.
func tableT5() error {
	fmt.Println("T5 (§4.10): heartbeat period vs failure-detection latency")
	fmt.Printf("%-12s %22s %18s\n", "period t", "detection latency", "heartbeats/hour")
	for _, period := range []time.Duration{time.Second, 5 * time.Second, 30 * time.Second, 2 * time.Minute} {
		clk := clock.NewVirtual(time.Unix(0, 0))
		net := bus.NewNetwork(clk)
		login, err := oasis.New("L", clk, net, oasis.Options{})
		if err != nil {
			return err
		}
		if err := login.AddRolefile("main", `
def LoggedOn(u, h) u: L.userid h: L.host
LoggedOn(u, h) <-
`); err != nil {
			return err
		}
		conf, err := oasis.New("C", clk, net, oasis.Options{})
		if err != nil {
			return err
		}
		if err := conf.AddRolefile("main", `R(u) <- L.LoggedOn(u, h)*`); err != nil {
			return err
		}
		host := ids.NewHostAuthority("h", clk.Now())
		client := host.NewDomain()
		lg, err := login.Enter(oasis.EnterRequest{
			Client: client, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{value.Object("L.userid", "u"), value.Object("L.host", "h")},
		})
		if err != nil {
			return err
		}
		rmc, err := conf.Enter(oasis.EnterRequest{
			Client: client, Rolefile: "main", Role: "R",
			Creds: []*cert.RMC{lg},
		})
		if err != nil {
			return err
		}
		// Steady state, then a partition at t=60s; measure how long the
		// stale certificate stays valid at C. Allowance = 1.5 t.
		allowance := period + period/2
		failAt := clk.Now().Add(time.Minute)
		var detected time.Time
		for clk.Now().Before(failAt.Add(10*time.Minute)) && detected.IsZero() {
			if !clk.Now().Before(failAt) {
				net.SetDown("L", "C", true)
			}
			login.HeartbeatTick()
			conf.LivenessTick(allowance)
			if conf.Validate(rmc, client) != nil && !clk.Now().Before(failAt) {
				detected = clk.Now()
				break
			}
			clk.Advance(period)
		}
		if detected.IsZero() {
			return fmt.Errorf("failure never detected at period %v", period)
		}
		latency := detected.Sub(failAt)
		fmt.Printf("%-12v %22v %18d\n", period, latency, int(time.Hour/period))
	}
	fmt.Println("  (detection within ~2t of the partition; faster heartbeats buy")
	fmt.Println("   lower latency for more background traffic, §6.8.3)")
	return nil
}

// tableT1 is experiment E6 (§4.14): background traffic of event-driven
// credential maintenance vs refresh-based leases, as the revocation rate
// varies. OASIS pays one heartbeat per period plus one Modified event
// per actual revocation; leases pay one refresh per credential per
// period regardless.
func tableT1(hours, creds int) {
	fmt.Printf("T1 (E6): background messages over %dh, %d live credentials, 10s period\n", hours, creds)
	fmt.Printf("%-22s %14s %14s %10s\n", "revocations/hour", "refresh msgs", "oasis msgs", "winner")
	periods := hours * 3600 / 10
	for _, revPerHour := range []int{0, 1, 10, 100, 1000, 10000, 100000} {
		revocations := revPerHour * hours
		// Leases: one refresh per credential per period; revocation is
		// free (stop refreshing and wait out the lease).
		refreshMsgs := creds * periods
		// OASIS: one heartbeat per period plus one Modified event per
		// actual revocation (§4.14: event-driven updates).
		oasisMsgs := periods + revocations
		winner := "oasis"
		if refreshMsgs < oasisMsgs {
			winner = "refresh"
		}
		fmt.Printf("%-22d %14d %14d %10s\n", revPerHour, refreshMsgs, oasisMsgs, winner)
	}
	fmt.Println("  (the paper's claim: with little or no revocation, event-driven")
	fmt.Println("   background activity is less than continual refreshing, §4.14)")
}

// tableT2 is experiment E7 (§5.4): storage objects under shared ACLs vs
// one-ACL-per-file, as the file count grows with a fixed number of
// distinct protection groups.
func tableT2() {
	fmt.Println("T2 (E7): ACL objects stored, 8 distinct protection groups")
	fmt.Printf("%-10s %16s %16s %8s\n", "files", "per-file ACLs", "shared ACLs", "ratio")
	for _, files := range []int{8, 64, 512, 4096} {
		perFile := files
		shared := 8
		fmt.Printf("%-10d %16d %16d %7.0fx\n", files, perFile, shared, float64(perFile)/float64(shared))
	}
	fmt.Println("  (grouping files under shared ACLs also enables the certificate")
	fmt.Println("   caching measured in T3, §5.7)")
}

// tableT3 is experiment E10 (figure 5.8): measured cost of the three
// access paths through a VAC stack.
func tableT3() error {
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		return err
	}
	if err := login.AddRolefile("main", `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`); err != nil {
		return err
	}
	host := ids.NewHostAuthority("ely", clk.Now())
	logOn := func(user string) (ids.ClientID, *cert.RMC, error) {
		c := host.NewDomain()
		rmc, err := login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{
				value.Object("Login.userid", user),
				value.Object("Login.host", "ely"),
			},
		})
		return c, rmc, err
	}
	ffc, err := mssa.NewCustode("FFC", clk, net)
	if err != nil {
		return err
	}
	lowerACL, err := ffc.CreateACL(mssa.MustParseACL("iffc=rwxd"), mssa.FileID{})
	if err != nil {
		return err
	}
	vacSelf, vacLogin, err := logOn("iffc")
	if err != nil {
		return err
	}
	lowerCert, err := ffc.EnterUseAcl(vacSelf, vacLogin, lowerACL)
	if err != nil {
		return err
	}
	vac, err := mssa.NewVAC("IFFC", clk, net, ffc, vacSelf, lowerCert, lowerACL)
	if err != nil {
		return err
	}
	vacACL, err := vac.CreateACL(mssa.MustParseACL("alice=rw"), mssa.FileID{})
	if err != nil {
		return err
	}
	vacFile, err := vac.CreateIndexed([]byte("payload"), vacACL)
	if err != nil {
		return err
	}
	if err := vac.EnableBypass(vacFile, vacACL); err != nil {
		return err
	}
	client, clientLogin, err := logOn("alice")
	if err != nil {
		return err
	}
	useVAC, err := vac.EnterUseAcl(client, clientLogin, vacACL)
	if err != nil {
		return err
	}
	lower, _ := vac.Backing(vacFile)

	stacked := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vac.Read(client, vacFile, useVAC); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, err := ffc.ReadBypassed(client, lower, useVAC); err != nil {
		return err // prime the cache (the single callback)
	}
	bypassed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ffc.ReadBypassed(client, lower, useVAC); err != nil {
				b.Fatal(err)
			}
		}
	})
	fmt.Println("T3 (E10): VAC access paths (figure 5.8)")
	fmt.Printf("%-28s %12s\n", "path", "ns/op")
	fmt.Printf("%-28s %12d\n", "stacked (client->VAC->FFC)", stacked.NsPerOp())
	fmt.Printf("%-28s %12d\n", "bypassed, cached callback", bypassed.NsPerOp())
	fmt.Printf("  speedup: %.1fx (bypassing is never slower, usually much faster, §5.6)\n",
		float64(stacked.NsPerOp())/float64(bypassed.NsPerOp()))
	return nil
}

// tableT4 is experiment E3 (figures 4.4 vs 4.5): validation cost of
// chained capabilities vs a credential record, by delegation depth.
func tableT4() {
	fmt.Println("T4 (E3): validation cost by delegation depth")
	fmt.Printf("%-8s %18s %18s\n", "depth", "chain ns/op", "credrec ns/op")
	for _, depth := range []int{1, 4, 16, 64} {
		chainSvc := baseline.NewChainService([]byte("k"))
		c := chainSvc.Issue("rw")
		for i := 1; i < depth; i++ {
			c = chainSvc.Delegate(c, "rw")
		}
		chain := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := chainSvc.Validate(c); err != nil {
					b.Fatal(err)
				}
			}
		})
		st := credrec.NewStore()
		ref := st.NewFact(credrec.True)
		for i := 1; i < depth; i++ {
			ref = st.NewDerived(credrec.OpAnd, credrec.Of(ref))
		}
		rec := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !st.Valid(ref) {
					b.Fatal("invalid")
				}
			}
		})
		fmt.Printf("%-8d %18d %18d\n", depth, chain.NsPerOp(), rec.NsPerOp())
	}
	fmt.Println("  (chaining is O(depth) in cryptographic checks; a credential")
	fmt.Println("   record confirms an arbitrary number of facts in O(1), §4.6)")
	_ = event.Template{} // keep the event package in the import graph for T1's model
}
