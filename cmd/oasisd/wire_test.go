package main

import (
	"net"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// startServer runs an oasisd on a random port and returns its address.
func startServer(t *testing.T) string {
	t.Helper()
	svc, err := oasis.New("Login", clock.Real(), nil, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddRolefile("main", builtinLoginRolefile); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		<-done
	})
	return ln.Addr().String()
}

func TestTCPEnterValidateExit(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	host := ids.NewHostAuthority("ely", time.Now())
	client := host.NewDomain()
	rmc, err := c.Enter(oasis.EnterRequest{
		Client: client, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", "dm"),
			value.Object("Login.host", "ely"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rmc.Service != "Login" {
		t.Fatalf("cert = %v", rmc)
	}
	// The certificate survives the JSON round trip, signature intact.
	if err := c.Validate(rmc, client); err != nil {
		t.Fatalf("remote validate: %v", err)
	}
	// A tampered copy fails remotely.
	forged := *rmc
	forged.Args = []value.Value{
		value.Object("Login.userid", "root"),
		value.Object("Login.host", "ely"),
	}
	if err := c.Validate(&forged, client); err == nil {
		t.Fatal("forged certificate validated over TCP")
	}
	// Exit, then validation fails.
	if err := c.Exit(rmc, client); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(rmc, client); err == nil {
		t.Fatal("exited certificate still valid")
	}
}

func TestTCPRolesAndErrors(t *testing.T) {
	addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	host := ids.NewHostAuthority("ely", time.Now())
	client := host.NewDomain()
	rmc, err := c.Enter(oasis.EnterRequest{
		Client: client, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", "dm"),
			value.Object("Login.host", "ely"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Do(Request{Op: "roles", Cert: rmc})
	if err != nil || !res.OK {
		t.Fatalf("roles: %v %v", res, err)
	}
	if len(res.Roles) != 1 || res.Roles[0] != "LoggedOn" {
		t.Fatalf("roles = %v", res.Roles)
	}
	// Unknown op.
	if res, _ := c.Do(Request{Op: "frobnicate"}); res.OK {
		t.Fatal("unknown op accepted")
	}
	// Missing bodies.
	if res, _ := c.Do(Request{Op: "enter"}); res.OK {
		t.Fatal("enter without body accepted")
	}
	if res, _ := c.Do(Request{Op: "roles"}); res.OK {
		t.Fatal("roles without cert accepted")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	addr := startServer(t)
	host := ids.NewHostAuthority("ely", time.Now())
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		client := host.NewDomain()
		go func() {
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			rmc, err := c.Enter(oasis.EnterRequest{
				Client: client, Rolefile: "main", Role: "LoggedOn",
				Args: []value.Value{
					value.Object("Login.userid", "dm"),
					value.Object("Login.host", "ely"),
				},
			})
			if err != nil {
				errs <- err
				return
			}
			errs <- c.Validate(rmc, client)
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTwoDaemonDeployment runs two complete oasisd stacks — Login and
// Conf — joined by peer links over real TCP, and drives them through
// the JSON client API: log on at Login, enter Member at Conf (which
// validates the Login certificate across the peer link), then log off
// and watch the Conference membership die via the wire-crossing
// Modified event.
func TestTwoDaemonDeployment(t *testing.T) {
	oasis.RegisterWireTypes()

	start := func(name, rolefile string) (addr, peerAddr string, network *bus.Network, svc *oasis.Service) {
		t.Helper()
		network = bus.NewNetwork(clock.Real())
		var err error
		svc, err = oasis.New(name, clock.Real(), network, oasis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		peerLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go func() { _ = network.ServeTCP(peerLn) }()
		t.Cleanup(func() { _ = peerLn.Close() })

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(svc)
		go func() { _ = srv.Serve(ln) }()
		t.Cleanup(func() { _ = ln.Close() })
		_ = rolefile
		return ln.Addr().String(), peerLn.Addr().String(), network, svc
	}

	loginAddr, loginPeer, _, loginSvc := start("Login", "")
	if err := loginSvc.AddRolefile("main", builtinLoginRolefile); err != nil {
		t.Fatal(err)
	}
	confAddr, _, confNet, confSvc := start("Conf", "")
	if err := confNet.AddRemote("Login", loginPeer); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(confNet.CloseRemotes)
	if err := confSvc.AddRolefile("main", `Member(u) <- Login.LoggedOn(u, h)*`); err != nil {
		t.Fatal(err)
	}

	loginC, err := Dial(loginAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer loginC.Close()
	confC, err := Dial(confAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer confC.Close()

	host := ids.NewHostAuthority("ely", time.Now())
	client := host.NewDomain()
	loggedOn, err := loginC.Enter(oasis.EnterRequest{
		Client: client, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", "dm"),
			value.Object("Login.host", "ely"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	member, err := confC.Enter(oasis.EnterRequest{
		Client: client, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{loggedOn},
	})
	if err != nil {
		t.Fatalf("cross-daemon entry: %v", err)
	}
	if err := confC.Validate(member, client); err != nil {
		t.Fatal(err)
	}
	// Log off at the Login daemon; the revocation crosses to Conf.
	if err := loginC.Exit(loggedOn, client); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for confC.Validate(member, client) == nil {
		if time.Now().After(deadline) {
			t.Fatal("membership survived logout across daemons")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
