package main

import (
	"bytes"
	"net"
	"testing"
	"time"

	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/credrec"
	"oasis/internal/credrec/storage"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// startPersistentServer runs an oasisd whose store journals to dir and
// returns the address, the engine, and a stop function that closes only
// the listener — leaving the engine exactly as a crash would.
func startPersistentServer(t *testing.T, dir string) (addr string, eng *storage.Engine, stop func()) {
	t.Helper()
	be, err := storage.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err = storage.Open(be, storage.Options{Sync: credrec.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := oasis.New("Login", clock.Real(), nil, oasis.Options{Store: eng.Store()})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddRolefile("main", builtinLoginRolefile); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(svc)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), eng, func() {
		_ = ln.Close()
		<-done
	}
}

func enterLogin(t *testing.T, c *Client, client ids.ClientID, user string) *cert.RMC {
	t.Helper()
	rmc, err := c.Enter(oasis.EnterRequest{
		Client: client, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", user),
			value.Object("Login.host", "ely"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rmc
}

// The acceptance test for the persistence engine: kill an oasisd whose
// store lives in -store-dir, restart it on the same directory, and the
// recovered store is identical to the pre-crash image — certificates
// issued before the crash still validate, certificates revoked before
// the crash stay revoked.
func TestPersistentStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	addr, eng, stop := startPersistentServer(t, dir)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	host := ids.NewHostAuthority("ely", time.Now())
	alice, bob := host.NewDomain(), host.NewDomain()
	aliceCert := enterLogin(t, c, alice, "alice")
	bobCert := enterLogin(t, c, bob, "bob")
	// Bob logs off before the crash: his certificate must stay dead.
	if err := c.Exit(bobCert, bob); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(aliceCert, alice); err != nil {
		t.Fatal(err)
	}

	// Capture the pre-crash image at a quiet point, then crash: the
	// listener dies, the engine is abandoned un-Closed (SyncAlways means
	// everything already reached the files).
	var preCrash []byte
	eng.Store().Snapshot(func() { preCrash = eng.Store().Image() })
	c.Close()
	stop()

	addr2, eng2, stop2 := startPersistentServer(t, dir)
	defer stop2()
	defer eng2.Close()
	if !bytes.Equal(eng2.Store().Image(), preCrash) {
		t.Fatalf("recovered store differs from pre-crash image:\n-- pre-crash --\n%s\n-- recovered --\n%s",
			preCrash, eng2.Store().Image())
	}

	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Validate(aliceCert, alice); err != nil {
		t.Fatalf("pre-crash certificate rejected after restart: %v", err)
	}
	if err := c2.Validate(bobCert, bob); err == nil {
		t.Fatal("pre-crash revocation forgotten after restart")
	}
	// The restarted daemon keeps working: new entries, new revocations.
	carol := host.NewDomain()
	carolCert := enterLogin(t, c2, carol, "carol")
	if err := c2.Validate(carolCert, carol); err != nil {
		t.Fatal(err)
	}
	if err := c2.Exit(aliceCert, alice); err != nil {
		t.Fatal(err)
	}
	if err := c2.Validate(aliceCert, alice); err == nil {
		t.Fatal("post-restart revocation did not take")
	}
}

// A second restart after more activity — snapshot in between — proves
// recovery composes: snapshot, tail, crash, recover, repeat.
func TestPersistentStoreSnapshotThenRestart(t *testing.T) {
	dir := t.TempDir()
	addr, eng, stop := startPersistentServer(t, dir)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	host := ids.NewHostAuthority("ely", time.Now())
	alice := host.NewDomain()
	aliceCert := enterLogin(t, c, alice, "alice")
	if err := eng.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail: bob enters and alice leaves.
	bob := host.NewDomain()
	bobCert := enterLogin(t, c, bob, "bob")
	if err := c.Exit(aliceCert, alice); err != nil {
		t.Fatal(err)
	}
	var preCrash []byte
	eng.Store().Snapshot(func() { preCrash = eng.Store().Image() })
	c.Close()
	stop()

	addr2, eng2, stop2 := startPersistentServer(t, dir)
	defer stop2()
	defer eng2.Close()
	if snap, _, _, _ := eng2.Recovered(); snap == 0 {
		t.Fatal("restart did not use the snapshot")
	}
	if !bytes.Equal(eng2.Store().Image(), preCrash) {
		t.Fatal("snapshot+tail recovery differs from pre-crash image")
	}
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Validate(bobCert, bob); err != nil {
		t.Fatalf("tail-journaled certificate rejected after restart: %v", err)
	}
	if err := c2.Validate(aliceCert, alice); err == nil {
		t.Fatal("tail-journaled revocation forgotten after restart")
	}
}
