// oasisd serves one OASIS service over TCP with a newline-delimited
// JSON protocol: clients enter roles, validate certificates, and exit
// memberships remotely. It is the standalone deployment path for a
// bootstrap service (§4.12) such as Login; richer multi-service
// deployments use the in-process bus plus this front.
//
// Usage:
//
//	oasisd -name Login -rolefile login.rdl -listen :7465 -peer-listen :7466
//	oasisd -name Conf -rolefile conf.rdl -listen :7475 -peer-listen :7476 \
//	       -remote Login=127.0.0.1:7466
//
// -peer-listen serves the inter-service (gob) protocol so other oasisd
// processes can validate this service's certificates and receive its
// Modified events; -remote joins another process's peer port under its
// service name, letting rolefiles here reference its roles.
//
// Protocol (one JSON object per line):
//
//	{"op":"enter","enter":{...}}          -> {"ok":true,"cert":{...}}
//	{"op":"validate","cert":{...},"client":{...}} -> {"ok":true}
//	{"op":"exit","cert":{...},"client":{...}}     -> {"ok":true}
//	{"op":"roles","cert":{...}}           -> {"ok":true,"roles":[...]}
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/oasis"
)

// remoteFlags collects -remote name=addr pairs.
type remoteFlags map[string]string

func (r remoteFlags) String() string { return fmt.Sprint(map[string]string(r)) }

// Set implements flag.Value.
func (r remoteFlags) Set(s string) error {
	name, addr, ok := strings.Cut(s, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("expected name=addr, got %q", s)
	}
	r[name] = addr
	return nil
}

func main() {
	var (
		name       = flag.String("name", "Login", "service instance name")
		rolefile   = flag.String("rolefile", "", "rolefile path (default: built-in Login rolefile)")
		scope      = flag.String("scope", "main", "rolefile scope id")
		listen     = flag.String("listen", "127.0.0.1:7465", "client (JSON) listen address")
		peerListen = flag.String("peer-listen", "", "inter-service (gob) listen address; empty disables")
		remotes    = remoteFlags{}
	)
	flag.Var(remotes, "remote", "peer service name=addr (repeatable)")
	flag.Parse()
	if err := run(*name, *rolefile, *scope, *listen, *peerListen, remotes); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

const builtinLoginRolefile = `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`

func run(name, rolefilePath, scope, listen, peerListen string, remotes map[string]string) error {
	src := builtinLoginRolefile
	if rolefilePath != "" {
		data, err := os.ReadFile(rolefilePath)
		if err != nil {
			return err
		}
		src = string(data)
	}
	oasis.RegisterWireTypes()
	network := bus.NewNetwork(clock.Real())
	svc, err := oasis.New(name, clock.Real(), network, oasis.Options{})
	if err != nil {
		return err
	}
	for peer, addr := range remotes {
		if err := network.AddRemote(peer, addr); err != nil {
			return fmt.Errorf("join %s at %s: %w", peer, addr, err)
		}
		log.Printf("oasisd: joined peer %q at %s", peer, addr)
	}
	if err := svc.AddRolefile(scope, src); err != nil {
		return err
	}
	if peerListen != "" {
		peerLn, err := net.Listen("tcp", peerListen)
		if err != nil {
			return err
		}
		defer peerLn.Close()
		go func() {
			if err := network.ServeTCP(peerLn); err != nil {
				log.Printf("oasisd: peer listener: %v", err)
			}
		}()
		log.Printf("oasisd: inter-service protocol on %s", peerLn.Addr())
	}
	stopHB := svc.StartHeartbeats()
	defer stopHB()
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("oasisd: service %q serving rolefile %q on %s", name, scope, ln.Addr())
	srv := NewServer(svc)
	return srv.Serve(ln)
}
