// oasisd serves one OASIS service over TCP with a newline-delimited
// JSON protocol: clients enter roles, validate certificates, and exit
// memberships remotely. It is the standalone deployment path for a
// bootstrap service (§4.12) such as Login; richer multi-service
// deployments use the in-process bus plus this front.
//
// Usage:
//
//	oasisd -name Login -rolefile login.rdl -listen :7465 -peer-listen :7466
//	oasisd -name Conf -rolefile conf.rdl -listen :7475 -peer-listen :7476 \
//	       -remote Login=127.0.0.1:7466
//
// -peer-listen serves the inter-service (gob) protocol so other oasisd
// processes can validate this service's certificates and receive its
// Modified events; -remote joins another process's peer port under its
// service name, letting rolefiles here reference its roles.
//
// -fault-schedule arms a deterministic fault plane on the in-process
// bus (drops, duplicates, delays, partitions — the format is documented
// at internal/fault.ParseSchedule); -fault-seed makes the run
// reproducible. Watched sources degrade through suspect/failed after
// -failsafe-missed silent heartbeat periods, recover by automatic
// resync, and every transition is logged.
//
// Protocol (one JSON object per line):
//
//	{"op":"enter","enter":{...}}          -> {"ok":true,"cert":{...}}
//	{"op":"validate","cert":{...},"client":{...}} -> {"ok":true}
//	{"op":"exit","cert":{...},"client":{...}}     -> {"ok":true}
//	{"op":"roles","cert":{...}}           -> {"ok":true,"roles":[...]}
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/fault"
	"oasis/internal/oasis"
)

// remoteFlags collects -remote name=addr pairs.
type remoteFlags map[string]string

func (r remoteFlags) String() string { return fmt.Sprint(map[string]string(r)) }

// Set implements flag.Value.
func (r remoteFlags) Set(s string) error {
	name, addr, ok := strings.Cut(s, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("expected name=addr, got %q", s)
	}
	r[name] = addr
	return nil
}

func main() {
	var (
		name       = flag.String("name", "Login", "service instance name")
		rolefile   = flag.String("rolefile", "", "rolefile path (default: built-in Login rolefile)")
		scope      = flag.String("scope", "main", "rolefile scope id")
		listen     = flag.String("listen", "127.0.0.1:7465", "client (JSON) listen address")
		peerListen = flag.String("peer-listen", "", "inter-service (gob) listen address; empty disables")
		faultSched = flag.String("fault-schedule", "", "fault schedule file for the in-process bus (see internal/fault.ParseSchedule); empty disables")
		faultSeed  = flag.Int64("fault-seed", 1, "PRNG seed for the fault plane; a run is reproducible from (seed, schedule)")
		missedHB   = flag.Int("failsafe-missed", 3, "heartbeat periods of silence before a watched source's records fail safe to False")
		remotes    = remoteFlags{}
	)
	flag.Var(remotes, "remote", "peer service name=addr (repeatable)")
	flag.Parse()
	if err := run(config{
		name: *name, rolefilePath: *rolefile, scope: *scope,
		listen: *listen, peerListen: *peerListen,
		faultSchedule: *faultSched, faultSeed: *faultSeed,
		failsafeMissed: *missedHB, remotes: remotes,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type config struct {
	name, rolefilePath, scope string
	listen, peerListen        string
	faultSchedule             string
	faultSeed                 int64
	failsafeMissed            int
	remotes                   map[string]string
}

const builtinLoginRolefile = `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`

func run(cfg config) error {
	name := cfg.name
	src := builtinLoginRolefile
	if cfg.rolefilePath != "" {
		data, err := os.ReadFile(cfg.rolefilePath)
		if err != nil {
			return err
		}
		src = string(data)
	}
	oasis.RegisterWireTypes()
	clk := clock.Real()
	network := bus.NewNetwork(clk)
	if cfg.faultSchedule != "" {
		data, err := os.ReadFile(cfg.faultSchedule)
		if err != nil {
			return err
		}
		steps, err := fault.ParseSchedule(string(data))
		if err != nil {
			return err
		}
		plane := fault.New(clk, cfg.faultSeed)
		plane.Install(network)
		plane.SetSchedule(steps)
		log.Printf("oasisd: fault plane armed: %d step(s), seed %d", len(steps), cfg.faultSeed)
		go func() {
			for {
				<-clk.After(time.Second)
				plane.Tick()
			}
		}()
	}
	svc, err := oasis.New(name, clk, network, oasis.Options{
		FailsafeMissed: cfg.failsafeMissed,
		AutoResync:     true,
		OnSourceState: func(source string, from, to oasis.SourceState) {
			log.Printf("oasisd: source %q %s -> %s", source, from, to)
		},
	})
	if err != nil {
		return err
	}
	for peer, addr := range cfg.remotes {
		if err := network.AddRemote(peer, addr); err != nil {
			return fmt.Errorf("join %s at %s: %w", peer, addr, err)
		}
		log.Printf("oasisd: joined peer %q at %s", peer, addr)
	}
	if err := svc.AddRolefile(cfg.scope, src); err != nil {
		return err
	}
	if cfg.peerListen != "" {
		peerLn, err := net.Listen("tcp", cfg.peerListen)
		if err != nil {
			return err
		}
		defer peerLn.Close()
		go func() {
			if err := network.ServeTCP(peerLn); err != nil {
				log.Printf("oasisd: peer listener: %v", err)
			}
		}()
		log.Printf("oasisd: inter-service protocol on %s", peerLn.Addr())
	}
	stopHB := svc.StartHeartbeats()
	defer stopHB()
	stopSusp := svc.StartSuspicion()
	defer stopSusp()
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("oasisd: service %q serving rolefile %q on %s", name, cfg.scope, ln.Addr())
	srv := NewServer(svc)
	return srv.Serve(ln)
}
