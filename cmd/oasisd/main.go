// oasisd serves one OASIS service over TCP with a newline-delimited
// JSON protocol: clients enter roles, validate certificates, and exit
// memberships remotely. It is the standalone deployment path for a
// bootstrap service (§4.12) such as Login; richer multi-service
// deployments use the in-process bus plus this front.
//
// Usage:
//
//	oasisd -name Login -rolefile login.rdl -listen :7465 -peer-listen :7466
//	oasisd -name Conf -rolefile conf.rdl -listen :7475 -peer-listen :7476 \
//	       -remote Login=127.0.0.1:7466
//
// -peer-listen serves the inter-service (gob) protocol so other oasisd
// processes can validate this service's certificates and receive its
// Modified events; -remote joins another process's peer port under its
// service name, letting rolefiles here reference its roles.
//
// -store-dir persists the credential-record store: every mutation is
// group-committed to a binary journal and the store snapshots and
// compacts itself every -snapshot-every operations, so a restart
// recovers certificates and revocations from the newest snapshot plus
// the journal tail (docs/STORAGE.md). -sync selects the durability
// policy (always / batched / none).
//
// -http-listen opens the federation gateway (internal/gateway): role
// entry as token issuance, live token introspection, and RFC 7009
// revocation over HTTP/JSON for clients outside the trusted-peer
// protocol (docs/GATEWAY.md). -http-rate shapes the per-client token
// bucket, -http-max-conns caps concurrent connections, and
// -http-pressure is the notification-plane backlog at which the
// gateway sheds mutating requests with 503 + Retry-After.
//
// -shards partitions this process's credential-record store across N
// consistent-hash shards (internal/credrec.ShardedStore): records are
// placed by ring ownership, cascades route by the shard id sealed into
// each ref, and cross-shard dependency edges run over bridge
// surrogates (docs/SHARDING.md). -shard-ring names the cluster's
// members (comma-separated, must include -name); joined members
// disseminate revocations down a fanout -shard-fanout tree instead of
// point-to-point fan-out, and each member's gateway sheds on the
// cluster-wide backlog aggregated from tree heartbeats. -shards is
// incompatible with -store-dir: the journaling engine persists one
// store image per process, and per-shard journals are future work.
//
// -fault-schedule arms a deterministic fault plane on the in-process
// bus (drops, duplicates, delays, partitions — the format is documented
// at internal/fault.ParseSchedule); -fault-seed makes the run
// reproducible. Watched sources degrade through suspect/failed after
// -failsafe-missed silent heartbeat periods, recover by automatic
// resync, and every transition is logged.
//
// Protocol (one JSON object per line):
//
//	{"op":"enter","enter":{...}}          -> {"ok":true,"cert":{...}}
//	{"op":"validate","cert":{...},"client":{...}} -> {"ok":true}
//	{"op":"exit","cert":{...},"client":{...}}     -> {"ok":true}
//	{"op":"roles","cert":{...}}           -> {"ok":true,"roles":[...]}
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/credrec"
	"oasis/internal/credrec/storage"
	"oasis/internal/fault"
	"oasis/internal/oasis"
)

// remoteFlags collects -remote name=addr pairs.
type remoteFlags map[string]string

func (r remoteFlags) String() string { return fmt.Sprint(map[string]string(r)) }

// Set implements flag.Value.
func (r remoteFlags) Set(s string) error {
	name, addr, ok := strings.Cut(s, "=")
	if !ok || name == "" || addr == "" {
		return fmt.Errorf("expected name=addr, got %q", s)
	}
	r[name] = addr
	return nil
}

func main() {
	var (
		name        = flag.String("name", "Login", "service instance name")
		rolefile    = flag.String("rolefile", "", "rolefile path (default: built-in Login rolefile)")
		scope       = flag.String("scope", "main", "rolefile scope id")
		listen      = flag.String("listen", "127.0.0.1:7465", "client (JSON) listen address")
		peerListen  = flag.String("peer-listen", "", "inter-service (gob) listen address; empty disables")
		faultSched  = flag.String("fault-schedule", "", "fault schedule file for the in-process bus (see internal/fault.ParseSchedule); empty disables")
		faultSeed   = flag.Int64("fault-seed", 1, "PRNG seed for the fault plane; a run is reproducible from (seed, schedule)")
		missedHB    = flag.Int("failsafe-missed", 3, "heartbeat periods of silence before a watched source's records fail safe to False")
		httpListen  = flag.String("http-listen", "", "federation gateway (HTTP/JSON token issuance/introspection/revocation) listen address; empty disables")
		httpRate    = flag.Float64("http-rate", 50, "gateway per-client request budget in requests/second (0 disables rate limiting)")
		httpConns   = flag.Int("http-max-conns", 1024, "gateway concurrent-connection cap (0 = unlimited)")
		httpPress   = flag.Int("http-pressure", 4096, "notification-plane backlog at which the gateway sheds mutating requests with 503 (0 disables backpressure)")
		shards      = flag.Int("shards", 0, "partition the credential-record store across this many consistent-hash shards (0/1 keeps the monolithic store); incompatible with -store-dir")
		shardRing   = flag.String("shard-ring", "", "comma-separated shard-cluster member names (must include -name); members disseminate revocations over a tree instead of flat fan-out")
		shardFanout = flag.Int("shard-fanout", 0, "dissemination-tree fanout for -shard-ring (0 = default)")
		storeDir    = flag.String("store-dir", "", "persist the credential-record store in this directory (journal + snapshots); empty keeps it in memory")
		snapEvery   = flag.Int("snapshot-every", 4096, "journal operations between automatic snapshots/compactions (0 disables the trigger)")
		syncMode    = flag.String("sync", "batched", "journal durability: always (fsync before a mutation returns), batched (one fsync per group commit), none")
		remotes     = remoteFlags{}
	)
	flag.Var(remotes, "remote", "peer service name=addr (repeatable)")
	flag.Parse()
	if err := run(config{
		name: *name, rolefilePath: *rolefile, scope: *scope,
		listen: *listen, peerListen: *peerListen,
		faultSchedule: *faultSched, faultSeed: *faultSeed,
		failsafeMissed: *missedHB, remotes: remotes,
		shards: *shards, shardRing: *shardRing, shardFanout: *shardFanout,
		storeDir: *storeDir, snapshotEvery: *snapEvery, syncMode: *syncMode,
		httpListen: *httpListen, httpRate: *httpRate,
		httpMaxConns: *httpConns, httpPressure: *httpPress,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type config struct {
	name, rolefilePath, scope string
	listen, peerListen        string
	faultSchedule             string
	faultSeed                 int64
	failsafeMissed            int
	remotes                   map[string]string
	shards                    int
	shardRing                 string
	shardFanout               int
	storeDir                  string
	snapshotEvery             int
	syncMode                  string
	httpListen                string
	httpRate                  float64
	httpMaxConns              int
	httpPressure              int
}

const builtinLoginRolefile = `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`

func run(cfg config) error {
	name := cfg.name
	src := builtinLoginRolefile
	if cfg.rolefilePath != "" {
		data, err := os.ReadFile(cfg.rolefilePath)
		if err != nil {
			return err
		}
		src = string(data)
	}
	oasis.RegisterWireTypes()
	clk := clock.Real()
	network := bus.NewNetwork(clk)
	if cfg.faultSchedule != "" {
		data, err := os.ReadFile(cfg.faultSchedule)
		if err != nil {
			return err
		}
		steps, err := fault.ParseSchedule(string(data))
		if err != nil {
			return err
		}
		plane := fault.New(clk, cfg.faultSeed)
		plane.Install(network)
		plane.SetSchedule(steps)
		log.Printf("oasisd: fault plane armed: %d step(s), seed %d", len(steps), cfg.faultSeed)
		go func() {
			for {
				<-clk.After(time.Second)
				plane.Tick()
			}
		}()
	}
	opts := oasis.Options{
		FailsafeMissed: cfg.failsafeMissed,
		AutoResync:     true,
		OnSourceState: func(source string, from, to oasis.SourceState) {
			log.Printf("oasisd: source %q %s -> %s", source, from, to)
		},
	}
	if cfg.shards > 1 {
		if cfg.storeDir != "" {
			return fmt.Errorf("-shards is incompatible with -store-dir: the journaling engine persists one store image per process")
		}
		shardNames := make([]string, cfg.shards)
		for i := range shardNames {
			shardNames[i] = fmt.Sprintf("s%02d", i)
		}
		ss, err := credrec.NewShardedStore(shardNames, 0)
		if err != nil {
			return fmt.Errorf("building sharded store: %w", err)
		}
		opts.Store = ss
		log.Printf("oasisd: credential-record store partitioned across %d shard(s)", cfg.shards)
	}
	if cfg.storeDir != "" {
		policy, err := credrec.ParseSyncPolicy(cfg.syncMode)
		if err != nil {
			return err
		}
		be, err := storage.OpenDir(cfg.storeDir)
		if err != nil {
			return fmt.Errorf("opening store dir: %w", err)
		}
		eng, err := storage.Open(be, storage.Options{
			Sync:                policy,
			SnapshotEveryOps:    cfg.snapshotEvery,
			SweepBeforeSnapshot: true,
			OnSnapshotError: func(err error) {
				log.Printf("oasisd: snapshot failed (will retry): %v", err)
			},
		})
		if err != nil {
			return fmt.Errorf("recovering store from %s: %w", cfg.storeDir, err)
		}
		defer func() {
			// The close flushes the final group commit; a failure here
			// means the tail of the journal may not be durable.
			if err := eng.Close(); err != nil {
				log.Printf("oasisd: closing store: %v", err)
			}
		}()
		snap, segs, recs, torn := eng.Recovered()
		log.Printf("oasisd: store %s recovered: snapshot %d, %d tail segment(s), %d record(s) replayed, torn tail: %v",
			cfg.storeDir, snap, segs, recs, torn)
		opts.Store = eng.Store()
	}
	svc, err := oasis.New(name, clk, network, opts)
	if err != nil {
		return err
	}
	for peer, addr := range cfg.remotes {
		if err := network.AddRemote(peer, addr); err != nil {
			return fmt.Errorf("join %s at %s: %w", peer, addr, err)
		}
		log.Printf("oasisd: joined peer %q at %s", peer, addr)
	}
	if err := svc.AddRolefile(cfg.scope, src); err != nil {
		return err
	}
	if cfg.shardRing != "" {
		members := strings.Split(cfg.shardRing, ",")
		for i := range members {
			members[i] = strings.TrimSpace(members[i])
		}
		if err := svc.JoinShardRing(members, cfg.shardFanout); err != nil {
			return fmt.Errorf("joining shard ring: %w", err)
		}
		fanout := "default"
		if cfg.shardFanout > 0 {
			fanout = fmt.Sprint(cfg.shardFanout)
		}
		log.Printf("oasisd: joined shard ring %v (tree fanout %s)", svc.ShardRingMembers(), fanout)
	}
	if cfg.peerListen != "" {
		peerLn, err := net.Listen("tcp", cfg.peerListen)
		if err != nil {
			return err
		}
		defer peerLn.Close()
		go func() {
			if err := network.ServeTCP(peerLn); err != nil {
				log.Printf("oasisd: peer listener: %v", err)
			}
		}()
		log.Printf("oasisd: inter-service protocol on %s", peerLn.Addr())
	}
	stopHB := svc.StartHeartbeats()
	defer stopHB()
	stopSusp := svc.StartSuspicion()
	defer stopSusp()
	if cfg.httpListen != "" {
		httpLn, err := net.Listen("tcp", cfg.httpListen)
		if err != nil {
			return err
		}
		defer httpLn.Close()
		gw := newGateway(svc, network, cfg)
		go func() {
			if err := gw.Serve(httpLn); err != nil {
				log.Printf("oasisd: gateway listener: %v", err)
			}
		}()
		log.Printf("oasisd: federation gateway on %s (rate %.0f/s, max-conns %d, pressure %d)",
			httpLn.Addr(), cfg.httpRate, cfg.httpMaxConns, cfg.httpPressure)
	}
	ln, err := net.Listen("tcp", cfg.listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	log.Printf("oasisd: service %q serving rolefile %q on %s", name, cfg.scope, ln.Addr())
	srv := NewServer(svc)
	return srv.Serve(ln)
}
