package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/event"
	"oasis/internal/gateway"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// startGatewayServer boots a service and its federation gateway exactly
// as run() wires them — same newGateway, real TCP listener — and
// returns the base URL.
func startGatewayServer(t *testing.T, svc *oasis.Service, network *bus.Network, cfg config) string {
	t.Helper()
	gw := newGateway(svc, network, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = gw.Serve(ln)
	}()
	t.Cleanup(func() { _ = ln.Close(); <-done })
	return "http://" + ln.Addr().String()
}

func httpPost(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			t.Fatalf("%s: undecodable response %q: %v", url, buf.String(), err)
		}
	}
	return resp
}

// blockingSink holds every delivery until released, so notifications
// pile up in the session outbox and PendingNotifications climbs.
type blockingSink struct{ release chan struct{} }

func (s *blockingSink) Deliver(event.Notification) { <-s.release }

// TestGatewayAcceptance is the end-to-end check from the issue: a token
// is issued over real HTTP against a running oasisd stack, introspects
// active with the right role, flips inactive after revocation with no
// restart, and the gateway sheds mutating requests with 503 +
// Retry-After while the notification plane is saturated.
func TestGatewayAcceptance(t *testing.T) {
	clk := clock.Real()
	network := bus.NewNetwork(clk)
	svc, err := oasis.New("Login", clk, network, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddRolefile("main", builtinLoginRolefile); err != nil {
		t.Fatal(err)
	}
	base := startGatewayServer(t, svc, network, config{
		httpRate: 1000, httpMaxConns: 16, httpPressure: 4,
	})

	c := ids.NewHostAuthority("ely", clk.Now()).NewDomain()
	var issued gateway.TokenResponse
	resp := httpPost(t, base+"/v1/token", gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", "dm"),
			value.Object("Login.host", "ely"),
		},
	}, &issued)
	if resp.StatusCode != http.StatusOK || issued.Token == "" {
		t.Fatalf("issue over HTTP: status %d", resp.StatusCode)
	}

	var in gateway.IntrospectResponse
	httpPost(t, base+"/v1/introspect", gateway.IntrospectRequest{Token: issued.Token}, &in)
	if !in.Active || len(in.Roles) == 0 || in.Roles[0] != "LoggedOn" {
		t.Fatalf("introspection: %+v", in)
	}

	// Saturate the notification plane: a session whose sink never
	// returns, hit with concurrent heartbeats, backs up its outbox.
	sink := &blockingSink{release: make(chan struct{})}
	if _, err := svc.Broker().OpenSession(sink, nil); err != nil {
		t.Fatal(err)
	}
	const beats = 8
	var wg sync.WaitGroup
	for i := 0; i < beats; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); svc.Broker().Heartbeat() }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Broker().PendingNotifications() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("notification plane never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	resp = httpPost(t, base+"/v1/token", gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", "dm"),
			value.Object("Login.host", "ely"),
		},
	}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("issue under saturation: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// Introspection stays live under pressure.
	httpPost(t, base+"/v1/introspect", gateway.IntrospectRequest{Token: issued.Token}, &in)
	if !in.Active {
		t.Fatal("introspection wrong under saturation")
	}
	close(sink.release)
	wg.Wait()
	deadline = time.Now().Add(5 * time.Second)
	for svc.Broker().PendingNotifications() >= 4 {
		if time.Now().After(deadline) {
			t.Fatal("notification plane never drained")
		}
		time.Sleep(time.Millisecond)
	}

	// Revocation over HTTP, then introspection flips — no restart.
	var rres gateway.RevokeResponse
	resp = httpPost(t, base+"/v1/revoke", gateway.RevokeRequest{Token: issued.Token}, &rres)
	if resp.StatusCode != http.StatusOK || !rres.OK {
		t.Fatalf("revoke over HTTP: status %d", resp.StatusCode)
	}
	httpPost(t, base+"/v1/introspect", gateway.IntrospectRequest{Token: issued.Token}, &in)
	if in.Active {
		t.Fatal("revoked token still introspects active")
	}
}
