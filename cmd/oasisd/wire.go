package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"oasis/internal/cert"
	"oasis/internal/ids"
	"oasis/internal/oasis"
)

// Request is one protocol message from a client.
type Request struct {
	Op     string              `json:"op"`
	Enter  *oasis.EnterRequest `json:"enter,omitempty"`
	Cert   *cert.RMC           `json:"cert,omitempty"`
	Client ids.ClientID        `json:"client,omitempty"`
}

// Response is the server's reply.
type Response struct {
	OK    bool      `json:"ok"`
	Error string    `json:"error,omitempty"`
	Cert  *cert.RMC `json:"cert,omitempty"`
	Roles []string  `json:"roles,omitempty"`
}

// Server serves the JSON protocol for one OASIS service.
type Server struct {
	svc *oasis.Service

	mu sync.Mutex
	wg sync.WaitGroup
}

// NewServer wraps a service.
func NewServer(svc *oasis.Service) *Server { return &Server{svc: svc} }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var req Request
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			_ = enc.Encode(Response{Error: "bad request: " + err.Error()})
			continue
		}
		_ = enc.Encode(s.dispatch(req))
	}
}

func (s *Server) dispatch(req Request) Response {
	switch req.Op {
	case "enter":
		if req.Enter == nil {
			return Response{Error: "enter: missing body"}
		}
		rmc, err := s.svc.Enter(*req.Enter)
		if err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true, Cert: rmc}
	case "validate":
		if err := s.svc.Validate(req.Cert, req.Client); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "exit":
		if err := s.svc.Exit(req.Cert, req.Client); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{OK: true}
	case "roles":
		if req.Cert == nil {
			return Response{Error: "roles: missing certificate"}
		}
		return Response{OK: true, Roles: s.svc.RoleNames(req.Cert)}
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// Client is a minimal protocol client, used by tests and other tools.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// Dial connects to an oasisd.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do performs one request/response exchange.
func (c *Client) Do(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return Response{}, err
		}
		return Response{}, errors.New("oasisd: connection closed")
	}
	var res Response
	if err := json.Unmarshal(c.sc.Bytes(), &res); err != nil {
		return Response{}, err
	}
	return res, nil
}

// Enter requests role entry.
func (c *Client) Enter(req oasis.EnterRequest) (*cert.RMC, error) {
	res, err := c.Do(Request{Op: "enter", Enter: &req})
	if err != nil {
		return nil, err
	}
	if !res.OK {
		return nil, errors.New(res.Error)
	}
	return res.Cert, nil
}

// Validate checks a certificate remotely.
func (c *Client) Validate(rmc *cert.RMC, client ids.ClientID) error {
	res, err := c.Do(Request{Op: "validate", Cert: rmc, Client: client})
	if err != nil {
		return err
	}
	if !res.OK {
		return errors.New(res.Error)
	}
	return nil
}

// Exit gives up a membership remotely.
func (c *Client) Exit(rmc *cert.RMC, client ids.ClientID) error {
	res, err := c.Do(Request{Op: "exit", Cert: rmc, Client: client})
	if err != nil {
		return err
	}
	if !res.OK {
		return errors.New(res.Error)
	}
	return nil
}
