package main

import (
	"oasis/internal/bus"
	"oasis/internal/gateway"
	"oasis/internal/oasis"
)

// newGateway builds the federation gateway exactly as run() deploys
// it: per-client rate limiting, a connection cap, and backpressure
// wired to the whole notification plane — the bus's delay/batch queues
// plus the service broker's per-session outboxes. Tests reuse this so
// acceptance coverage exercises the deployed wiring, not a test-local
// variant.
func newGateway(svc *oasis.Service, network *bus.Network, cfg config) *gateway.Gateway {
	return gateway.New(svc, gateway.Options{
		RatePerSec:    cfg.httpRate,
		MaxConns:      cfg.httpMaxConns,
		PressureLimit: cfg.httpPressure,
		Pressure: func() int {
			pending := svc.Broker().PendingNotifications()
			if network != nil {
				pending += network.PendingNotifications()
			}
			return pending
		},
	})
}
