package main

import (
	"oasis/internal/bus"
	"oasis/internal/gateway"
	"oasis/internal/oasis"
)

// newGateway builds the federation gateway exactly as run() deploys
// it: per-client rate limiting, a connection cap, and backpressure
// wired to the whole notification plane. The pressure figure is
// cluster-wide — this member's broker outboxes and bus delay/batch
// queues plus every live shard peer's last piggybacked backlog
// (oasis.ClusterPendingNotifications) — so a storm drowning one shard
// sheds 503s at every shard's front door, not just the drowning one.
// Outside a shard ring the figure degrades to the local plane. Tests
// reuse this so acceptance coverage exercises the deployed wiring, not
// a test-local variant.
func newGateway(svc *oasis.Service, network *bus.Network, cfg config) *gateway.Gateway {
	return gateway.New(svc, gateway.Options{
		RatePerSec:    cfg.httpRate,
		MaxConns:      cfg.httpMaxConns,
		PressureLimit: cfg.httpPressure,
		Pressure:      svc.ClusterPendingNotifications,
	})
}
