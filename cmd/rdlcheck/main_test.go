package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runTool runs the driver and returns its output and error.
func runTool(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, strings.NewReader(""), &out)
	return out.String(), err
}

func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// normalize strips a directory prefix so goldens are location and
// path-separator independent.
func normalize(s, dir string) string {
	return strings.ReplaceAll(s, dir+string(filepath.Separator), "")
}

func TestUnrevocableFixture(t *testing.T) {
	got, err := runTool(t, filepath.Join("testdata", "unrevocable.rdl"))
	if err == nil {
		t.Fatal("error-level findings must make run fail")
	}
	if !strings.Contains(err.Error(), "error-level finding") {
		t.Errorf("err = %v", err)
	}
	checkGolden(t, filepath.Join("testdata", "unrevocable.golden"), normalize(got, "testdata"))
}

func TestSmellsFixture(t *testing.T) {
	got, err := runTool(t, "-q", filepath.Join("testdata", "smells.rdl"))
	if err == nil {
		t.Fatal("undefined role is error-level; run must fail")
	}
	checkGolden(t, filepath.Join("testdata", "smells.golden"), normalize(got, "testdata"))
}

func TestSeverityFilterHidesButStillFails(t *testing.T) {
	// -severity error hides warnings and infos; the exit status is
	// computed on the reported findings, and error findings are always
	// at or above any threshold, so the run still fails.
	got, err := runTool(t, "-q", "-severity", "error", filepath.Join("testdata", "smells.rdl"))
	if err == nil {
		t.Fatal("filtered run must still fail on error findings")
	}
	if strings.Contains(got, "R004") || strings.Contains(got, "R007") {
		t.Errorf("warnings shown despite -severity error:\n%s", got)
	}
	if !strings.Contains(got, "R002") {
		t.Errorf("error finding missing:\n%s", got)
	}
}

func TestJSONReport(t *testing.T) {
	got, err := runTool(t, "-json", filepath.Join("testdata", "unrevocable.rdl"))
	if err == nil {
		t.Fatal("JSON mode must still fail on error findings")
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(got), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, got)
	}
	if len(rep.Files) != 1 || rep.Files[0].Service != "unrevocable" {
		t.Errorf("files = %+v", rep.Files)
	}
	if rep.Counts["error"] != 1 {
		t.Errorf("counts = %v", rep.Counts)
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Code != "R001" {
		t.Errorf("findings = %+v", rep.Findings)
	}
	if rep.Findings[0].Severity.String() != "error" {
		t.Errorf("severity = %v", rep.Findings[0].Severity)
	}
}

func TestMultiFileCrossService(t *testing.T) {
	dir := t.TempDir()
	login := filepath.Join(dir, "Login.rdl")
	conf := filepath.Join(dir, "Conf.rdl")
	writeFile(t, login, `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`)
	writeFile(t, conf, `
Chair     <- Login.LoggedOn("jmb", h)*
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
`)
	got, err := runTool(t, conf, login)
	if err != nil {
		t.Fatalf("clean policy failed: %v\n%s", err, got)
	}
	// Member's parameter type resolves through Login's rolefile.
	if !strings.Contains(got, "role Member(Login.userid)") {
		t.Errorf("cross-service type not resolved:\n%s", got)
	}

	// Break the reference: a role Login does not define is an error
	// finding even though Login itself is loaded.
	writeFile(t, conf, `Chair <- Login.Missing("jmb", h)*`)
	if _, err := runTool(t, conf, login); err == nil {
		t.Error("undefined cross-service role accepted")
	}
}

func TestAssumeForeignDefault(t *testing.T) {
	// An unknown service's role signature is inferred from usage by
	// default, so the fixture reports only the coverage error...
	got, err := runTool(t, "-q", filepath.Join("testdata", "unrevocable.rdl"))
	if err == nil {
		t.Fatal("expected error exit")
	}
	if strings.Contains(got, "R002") {
		t.Errorf("foreign role flagged undefined under -assume-foreign:\n%s", got)
	}
	// ...but -assume-foreign=false demands a -foreign declaration.
	if _, err := runTool(t, "-assume-foreign=false", filepath.Join("testdata", "unrevocable.rdl")); err == nil ||
		!strings.Contains(err.Error(), "unknown foreign role") {
		t.Errorf("err = %v", err)
	}
	if _, err := runTool(t, "-assume-foreign=false",
		"-foreign", "Login.LoggedOn=Login.userid,Login.host",
		filepath.Join("testdata", "unrevocable.rdl")); err == nil ||
		!strings.Contains(err.Error(), "error-level finding") {
		t.Errorf("declared foreign run: err = %v", err)
	}
}

func TestRunFromStdin(t *testing.T) {
	var out strings.Builder
	err := run(nil, strings.NewReader(`Visitor("x") <-`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "role Visitor(string)") {
		t.Errorf("output = %s", out.String())
	}
	if strings.Contains(out.String(), "axiom") {
		t.Error("axioms printed without -axioms")
	}
}

func TestDumpPlanFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-dump-plan",
		"../../examples/quickstart/Login.rdl",
		"../../examples/quickstart/Conf.rdl"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"(service Conf)",
		"regs: r0=@host",
		"cand 0: Login.LoggedOn(",
		"star r1 in staff",
		"election-form",
		"no-VM fast path",
		"dispatch:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("dump-plan output missing %q:\n%s", want, got)
		}
	}
	// The plan dump replaces the signature listing.
	if strings.Contains(got, "role LoggedOn(") {
		t.Error("signature listing printed alongside -dump-plan")
	}
}

func TestAxiomsFlag(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-axioms"}, strings.NewReader(`Visitor("x") <-`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "axiom 1:") {
		t.Errorf("output = %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	// Syntax error.
	if err := run(nil, strings.NewReader(`R <- (`), &out); err == nil {
		t.Error("syntax error accepted")
	}
	// Missing file.
	if err := run([]string{filepath.Join(t.TempDir(), "nope.rdl")}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
	// Bad flag values.
	if err := run([]string{"-severity", "fatal"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad severity accepted")
	}
	if err := run([]string{"-foreign", "nonsense"}, strings.NewReader(""), &out); err == nil {
		t.Error("bad -foreign flag accepted")
	}
}

func TestForeignFlagTypes(t *testing.T) {
	f := foreignFlags{}
	if err := f.Set("Svc.Role=integer,string,{rwx},Custom.type"); err != nil {
		t.Fatal(err)
	}
	ts := f["Svc.Role"]
	if len(ts) != 4 {
		t.Fatalf("types = %v", ts)
	}
	if ts[2].Universe != "rwx" || ts[3].Name != "Custom.type" {
		t.Fatalf("types = %v", ts)
	}
	if err := f.Set("Svc.Empty="); err != nil {
		t.Fatal(err)
	}
	if len(f["Svc.Empty"]) != 0 {
		t.Fatal("empty signature not empty")
	}
}

func writeFile(t *testing.T, path, src string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
}
