package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOnConferenceRolefile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "conf.rdl")
	src := `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
`
	if err := os.WriteFile(path, []byte(src), 0o600); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-foreign", "Login.LoggedOn=Login.userid,Login.host", path}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"rolefile OK: 2 rules, 2 local roles",
		"role Chair()",
		"role Member(Login.userid)",
		"c owns Member(u)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFromStdin(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-axioms=false"}, strings.NewReader(`Visitor("x") <-`), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "role Visitor(string)") {
		t.Errorf("output = %s", out.String())
	}
	if strings.Contains(out.String(), "axiom") {
		t.Error("-axioms=false still printed axioms")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	// Unknown foreign role without a -foreign flag.
	if err := run(nil, strings.NewReader(`R <- Ghost.Role(x)`), &out); err == nil {
		t.Error("unresolved foreign role accepted")
	}
	// Syntax error.
	if err := run(nil, strings.NewReader(`R <- (`), &out); err == nil {
		t.Error("syntax error accepted")
	}
	// Bad -foreign syntax.
	if err := run([]string{"-foreign", "nonsense"}, strings.NewReader(`R <-`), &out); err == nil {
		t.Error("bad -foreign flag accepted")
	}
	// Missing file.
	if err := run([]string{filepath.Join(t.TempDir(), "nope.rdl")}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
}

func TestForeignFlagTypes(t *testing.T) {
	f := foreignFlags{}
	if err := f.Set("Svc.Role=integer,string,{rwx},Custom.type"); err != nil {
		t.Fatal(err)
	}
	ts := f["Svc.Role"]
	if len(ts) != 4 {
		t.Fatalf("types = %v", ts)
	}
	if ts[2].Universe != "rwx" || ts[3].Name != "Custom.type" {
		t.Fatalf("types = %v", ts)
	}
	if err := f.Set("Svc.Empty="); err != nil {
		t.Fatal(err)
	}
	if len(f["Svc.Empty"]) != 0 {
		t.Fatal("empty signature not empty")
	}
}
