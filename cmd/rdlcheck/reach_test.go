package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// exampleScenarios returns every example directory shipping both
// rolefiles and a scenario, mapped to (rdl files, scn files).
func exampleScenarios(t *testing.T) map[string][]string {
	t.Helper()
	dirs, err := filepath.Glob(filepath.Join("..", "..", "examples", "*"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)
	out := make(map[string][]string)
	for _, dir := range dirs {
		rdls, _ := filepath.Glob(filepath.Join(dir, "*.rdl"))
		scns, _ := filepath.Glob(filepath.Join(dir, "*.scn"))
		if len(rdls) == 0 || len(scns) == 0 {
			continue
		}
		sort.Strings(rdls)
		sort.Strings(scns)
		out[dir] = append(rdls, scns...)
	}
	if len(out) < 4 {
		t.Fatalf("only %d example directories carry rolefiles and scenarios; expected at least 4", len(out))
	}
	return out
}

// TestReachExamples runs -reach over every example scenario and pins
// the full text report — facts, witnesses, assertion verdicts and
// findings — as a golden file. All shipped assertions must hold.
func TestReachExamples(t *testing.T) {
	for dir, files := range exampleScenarios(t) {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			got, err := runTool(t, append([]string{"-reach"}, files...)...)
			if err != nil {
				t.Fatalf("scenario assertions failed: %v\n%s", err, got)
			}
			checkGolden(t, filepath.Join("testdata", "reach", name+".golden"), normalize(got, dir))
		})
	}
}

// TestReachExamplesJSON pins the -json form of the same reports and
// sanity-checks the schema: every scenario has facts, every fact a
// certainty, every assertion ok.
func TestReachExamplesJSON(t *testing.T) {
	for dir, files := range exampleScenarios(t) {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			got, err := runTool(t, append([]string{"-reach", "-json"}, files...)...)
			if err != nil {
				t.Fatalf("scenario assertions failed: %v\n%s", err, got)
			}
			var rep jsonReport
			if err := json.Unmarshal([]byte(got), &rep); err != nil {
				t.Fatalf("invalid JSON: %v", err)
			}
			if len(rep.Reach) != 1 {
				t.Fatalf("want one reach scenario, got %d", len(rep.Reach))
			}
			sc := rep.Reach[0]
			if len(sc.Facts) == 0 || len(sc.Asserts) == 0 {
				t.Fatalf("empty reach report: %+v", sc)
			}
			for _, f := range sc.Facts {
				if f.Certainty != "reachable" && f.Certainty != "possible" {
					t.Errorf("fact %s.%s has certainty %q", f.Principal, f.Role, f.Certainty)
				}
				if f.Witness == nil {
					t.Errorf("fact %s %s lacks a witness", f.Principal, f.Role)
				}
			}
			for _, a := range sc.Asserts {
				if !a.OK {
					t.Errorf("assertion failed: %s", a.Detail)
				}
			}
			checkGolden(t, filepath.Join("testdata", "reach", name+".json.golden"), normalize(got, dir))
		})
	}
}

// TestReachAssertFailureExits: a failing expect is an R010 error-level
// finding and must make the run exit non-zero.
func TestReachAssertFailureExits(t *testing.T) {
	dir := t.TempDir()
	login := filepath.Join(dir, "Login.rdl")
	scn := filepath.Join(dir, "fail.scn")
	writeFile(t, login, `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`)
	writeFile(t, scn, `
principal ghost
expect ghost Login.Missing
deny ghost Login.LoggedOn
`)
	got, err := runTool(t, "-reach", "-q", login, scn)
	if err == nil || !strings.Contains(err.Error(), "error-level finding") {
		t.Fatalf("failing assertions must exit non-zero, got err=%v\n%s", err, got)
	}
	if c := strings.Count(got, "R010"); c != 2 {
		t.Errorf("want 2 R010 findings, got %d:\n%s", c, got)
	}
	if !strings.Contains(got, "assert FAIL: expect ghost Login.Missing failed: unreachable") {
		t.Errorf("verdict line missing:\n%s", got)
	}
}

// TestReachFlagValidation: .scn arguments demand -reach, and -reach
// demands a scenario.
func TestReachFlagValidation(t *testing.T) {
	if _, err := runTool(t, "x.scn"); err == nil ||
		!strings.Contains(err.Error(), "without -reach") {
		t.Errorf("scn without -reach: err = %v", err)
	}
	if _, err := runTool(t, "-reach", "../../examples/mssa/Login.rdl"); err == nil ||
		!strings.Contains(err.Error(), "at least one .scn") {
		t.Errorf("-reach without scn: err = %v", err)
	}
	if _, err := runTool(t, "-reach", filepath.Join(t.TempDir(), "missing.scn")); err == nil {
		t.Error("missing scenario file accepted")
	}
}

// TestSeverityGatesExitConsistently pins the exit-code contract: the
// status is computed from the findings the run reports, so a finding
// hidden by -severity can never fail the run, and error-level findings
// (which no threshold hides) always do.
func TestSeverityGatesExitConsistently(t *testing.T) {
	dir := t.TempDir()
	login := filepath.Join(dir, "Login.rdl")
	scn := filepath.Join(dir, "open.scn")
	writeFile(t, login, `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`)
	// The scenario yields an R008 warning (open-access claim) and no
	// errors: visible at the default threshold, hidden at -severity
	// error, exit zero either way.
	writeFile(t, scn, "principal ghost\n")
	got, err := runTool(t, "-reach", "-q", login, scn)
	if err != nil {
		t.Fatalf("warnings must not fail the run: %v", err)
	}
	if !strings.Contains(got, "R008") {
		t.Fatalf("R008 missing at default severity:\n%s", got)
	}
	got, err = runTool(t, "-reach", "-q", "-severity", "error", login, scn)
	if err != nil {
		t.Fatalf("hidden warnings must not fail the run: %v", err)
	}
	if strings.Contains(got, "R008") {
		t.Errorf("R008 shown despite -severity error:\n%s", got)
	}
	// An assertion failure is error-level: reported and fatal at every
	// threshold.
	writeFile(t, scn, "principal ghost\nexpect ghost Login.Missing\n")
	for _, sev := range []string{"info", "warning", "error"} {
		got, err = runTool(t, "-reach", "-q", "-severity", sev, login, scn)
		if err == nil {
			t.Fatalf("-severity %s swallowed an error finding", sev)
		}
		if !strings.Contains(got, "R010") {
			t.Errorf("-severity %s hid the R010 finding:\n%s", sev, got)
		}
	}
}

// TestUsageDocumentsExitContract: -h output explains the exit-code
// contract next to the flags.
func TestUsageDocumentsExitContract(t *testing.T) {
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	_, runErr := runTool(t, "-h")
	os.Stderr = old
	w.Close()
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	r.Close()
	if runErr == nil {
		t.Fatal("-h should return flag.ErrHelp")
	}
	usage := string(buf[:n])
	for _, want := range []string{"Exit status:", "-severity", "-reach"} {
		if !strings.Contains(usage, want) {
			t.Errorf("usage lacks %q:\n%s", want, usage)
		}
	}
}
