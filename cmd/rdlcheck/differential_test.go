package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/rdl"
	"oasis/internal/rdl/analyze"
	"oasis/internal/value"
)

// TestDifferentialSoundness replays every example scenario against the
// real entry engine and checks that static reachability is a sound
// over-approximation of runtime entry: every role certificate the
// runtime actually issues must be covered by a fact the symbolic
// fixpoint derived (same principal, same role, each argument equal or
// abstracted to ⊤). The runtime may enter fewer roles than the static
// engine admits (foreign services are assumed satisfiable statically),
// but never more.
func TestDifferentialSoundness(t *testing.T) {
	for dir, files := range exampleScenarios(t) {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			runDifferential(t, files)
		})
	}
}

// diffWorld is one scenario wired up twice: the static reachability
// report on one side, live oasis services on the other.
type diffWorld struct {
	t        *testing.T
	scn      *analyze.Scenario
	inputs   []analyze.Input
	services map[string]*oasis.Service
	loaded   map[string]*rdl.Rolefile // services under analysis only
	clients  map[string]ids.ClientID
	creds    map[string][]*cert.RMC
	entered  map[string]diffEntry
}

// diffEntry is one successful runtime role entry.
type diffEntry struct {
	principal string
	service   string
	role      string
	args      []value.Value
	rmc       *cert.RMC
}

func (e diffEntry) key() string {
	return e.principal + "|" + e.service + "." + e.role + "|" + value.MarshalArgs(e.args)
}

func runDifferential(t *testing.T, files []string) {
	var rdlPaths, scnPaths []string
	for _, f := range files {
		if strings.HasSuffix(f, ".scn") {
			scnPaths = append(scnPaths, f)
		} else {
			rdlPaths = append(rdlPaths, f)
		}
	}
	src, err := os.ReadFile(scnPaths[0])
	if err != nil {
		t.Fatal(err)
	}
	scn, err := analyze.ParseScenario(scnPaths[0], string(src))
	if err != nil {
		t.Fatal(err)
	}

	// Static side: type-check the rolefiles exactly as rdlcheck -reach
	// does (scenario foreign declarations double as -foreign flags).
	d := &driver{
		byService: make(map[string][]*policyFile),
		foreign:   foreignFlags{},
		assume:    true,
		checking:  make(map[string]bool),
	}
	for _, fr := range scn.Foreign {
		ts := make([]value.Type, len(fr.Types))
		for i, tn := range fr.Types {
			ts[i] = parseType(tn)
		}
		d.foreign[fr.Service+"."+fr.Role] = ts
	}
	for _, path := range rdlPaths {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.load(path, serviceOf(path), string(b)); err != nil {
			t.Fatal(err)
		}
	}
	for svc := range d.byService {
		if err := d.checkService(svc); err != nil {
			t.Fatal(err)
		}
	}
	inputs := make([]analyze.Input, len(d.files))
	for i, pf := range d.files {
		inputs[i] = analyze.Input{Service: pf.service, File: pf.path, RF: pf.rf}
	}
	rep := analyze.Reach(inputs, scn)

	w := &diffWorld{
		t:        t,
		scn:      scn,
		inputs:   inputs,
		services: make(map[string]*oasis.Service),
		loaded:   make(map[string]*rdl.Rolefile),
		clients:  make(map[string]ids.ClientID),
		entered:  make(map[string]diffEntry),
		creds:    make(map[string][]*cert.RMC),
	}
	w.buildRuntime(rdlPaths)
	w.mintCredentials()
	w.probeFixpoint()

	if len(w.entered) == 0 {
		t.Fatal("runtime entered no roles at all; the differential check is vacuous")
	}
	w.checkSoundness(rep)
	w.checkExpectsEntered()
}

// buildRuntime stands up one oasis service per rolefile under analysis
// plus a stub claim service for every foreign declaration, all on one
// bus, and populates group membership from the scenario.
func (w *diffWorld) buildRuntime(rdlPaths []string) {
	t := w.t
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)

	type pending struct{ service, src string }
	var todo []pending
	for _, path := range rdlPaths {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		todo = append(todo, pending{serviceOf(path), string(b)})
	}
	// Stub services accept any foreign role as an unchecked claim with
	// the declared signature, so scenario credentials on them mint.
	stubs := make(map[string][]analyze.ScnForeign)
	for _, fr := range w.scn.Foreign {
		stubs[fr.Service] = append(stubs[fr.Service], fr)
	}
	for svc, decls := range stubs {
		var b strings.Builder
		for _, fr := range decls {
			params := make([]string, len(fr.Types))
			for i := range fr.Types {
				params[i] = fmt.Sprintf("a%d", i)
			}
			fmt.Fprintf(&b, "def %s(%s)", fr.Role, strings.Join(params, ", "))
			for i, tn := range fr.Types {
				fmt.Fprintf(&b, " %s: %s", params[i], tn)
			}
			fmt.Fprintf(&b, "\n%s(%s) <-\n", fr.Role, strings.Join(params, ", "))
		}
		todo = append(todo, pending{svc, b.String()})
	}

	for _, p := range todo {
		svc, err := oasis.New(p.service, clk, net, oasis.Options{})
		if err != nil {
			t.Fatal(err)
		}
		w.services[p.service] = svc
	}
	// Rolefiles resolve foreign signatures over the bus, so installation
	// order matters; retry until the dependency order works itself out.
	for round := 0; len(todo) > 0 && round < len(w.services)+1; round++ {
		var stuck []pending
		var lastErr error
		for _, p := range todo {
			if err := w.services[p.service].AddRolefile("main", p.src); err != nil {
				stuck = append(stuck, p)
				lastErr = err
				continue
			}
		}
		if len(stuck) == len(todo) {
			t.Fatalf("rolefile installation made no progress: %v", lastErr)
		}
		todo = stuck
	}
	for _, in := range w.inputs {
		w.loaded[in.Service] = in.RF
	}

	for member, groups := range w.scn.Members {
		for g := range groups {
			svcName, group, ok := strings.Cut(g, ".")
			if !ok || w.services[svcName] == nil {
				continue
			}
			w.services[svcName].Groups().AddMember(member, group)
		}
	}

	hosts := make(map[string]*ids.HostAuthority)
	for _, p := range w.scn.Principals {
		host := w.scn.Hosts[p]
		if host == "" {
			host = "unbound-" + p
		}
		ha, ok := hosts[host]
		if !ok {
			ha = ids.NewHostAuthority(host, clk.Now())
			hosts[host] = ha
		}
		w.clients[p] = ha.NewDomain()
	}
}

// headTypes returns the parameter types of Service.Role, from the
// checked rolefile or the scenario's foreign declaration.
func (w *diffWorld) headTypes(service, role string) []value.Type {
	if rf, ok := w.loaded[service]; ok {
		return rf.Types[role]
	}
	for _, fr := range w.scn.Foreign {
		if fr.Service == service && fr.Role == role {
			ts := make([]value.Type, len(fr.Types))
			for i, tn := range fr.Types {
				ts[i] = parseType(tn)
			}
			return ts
		}
	}
	return nil
}

// concreteValue turns a scenario literal into a runtime value of the
// declared type.
func concreteValue(t value.Type, lit string) (value.Value, bool) {
	switch t.Kind {
	case value.KindInt:
		n, err := strconv.ParseInt(lit, 10, 64)
		if err != nil {
			return value.Value{}, false
		}
		return value.Int(n), true
	case value.KindString:
		return value.Str(lit), true
	case value.KindSet:
		v, err := value.Set(t.Universe, strings.Trim(lit, "{}"))
		return v, err == nil
	default:
		return value.Object(t.Name, lit), true
	}
}

// canonValue renders a runtime value in the canonical literal form the
// abstract domain uses, so runtime arguments compare against AVals.
func canonValue(v value.Value) string {
	switch v.T.Kind {
	case value.KindInt:
		return strconv.FormatInt(v.I, 10)
	case value.KindString, value.KindObject:
		return v.S
	case value.KindSet:
		rs := []rune(v.Members())
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		return "{" + string(rs) + "}"
	default:
		return v.String()
	}
}

// mintCredentials grants every scenario credential by entering the role
// on its issuing (or stub) service with the declared arguments.
func (w *diffWorld) mintCredentials() {
	t := w.t
	for _, c := range w.scn.Credentials {
		svc := w.services[c.Service]
		if svc == nil {
			t.Fatalf("credential on unknown service %s", c.Service)
		}
		types := w.headTypes(c.Service, c.Role)
		if len(types) != len(c.Args) {
			t.Fatalf("credential %s.%s arity %d, signature %d", c.Service, c.Role, len(c.Args), len(types))
		}
		args := make([]value.Value, len(c.Args))
		for i, a := range c.Args {
			if a.IsTop() {
				t.Fatalf("credential %s.%s has a ⊤ argument; scenarios mint concrete credentials", c.Service, c.Role)
			}
			v, ok := concreteValue(types[i], a.Literal())
			if !ok {
				t.Fatalf("credential %s.%s arg %d: cannot build %s from %q", c.Service, c.Role, i, types[i], a.Literal())
			}
			args[i] = v
		}
		rmc, err := svc.Enter(oasis.EnterRequest{
			Client: w.clients[c.Principal], Rolefile: "main", Role: c.Role, Args: args,
		})
		if err != nil {
			t.Fatalf("minting credential %s %s.%s: %v", c.Principal, c.Service, c.Role, err)
		}
		w.record(c.Principal, c.Service, c.Role, rmc)
	}
}

// record stores a successful entry and adds the certificate to the
// principal's wallet for later rounds. Reports whether it was new.
func (w *diffWorld) record(principal, service, role string, rmc *cert.RMC) bool {
	e := diffEntry{principal: principal, service: service, role: role, args: rmc.Args, rmc: rmc}
	if _, ok := w.entered[e.key()]; ok {
		return false
	}
	w.entered[e.key()] = e
	w.creds[principal] = append(w.creds[principal], rmc)
	return true
}

// probeFixpoint drives the runtime to enter as many roles as it will
// grant: plain entry, assertion-guided concrete probes, and election
// rounds, repeated until a round grants nothing new.
func (w *diffWorld) probeFixpoint() {
	for round := 0; round < 8; round++ {
		changed := false
		for _, p := range w.scn.Principals {
			for _, in := range w.inputs {
				if w.probeService(p, in) {
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

func (w *diffWorld) probeService(p string, in analyze.Input) bool {
	svc := w.services[in.Service]
	changed := false
	seenRole := make(map[string]bool)
	for _, r := range in.RF.File.Rules {
		role := r.Head.Name
		if !seenRole[role] {
			seenRole[role] = true
			// Plain entry: let the engine pick any derivable instance.
			if rmc, err := svc.Enter(oasis.EnterRequest{
				Client: w.clients[p], Rolefile: "main", Role: role, Creds: w.creds[p],
			}); err == nil && w.record(p, in.Service, role, rmc) {
				changed = true
			}
			// Assertion-guided probes: try the concrete instances the
			// scenario talks about (wildcards enumerate a small universe).
			for _, a := range w.scn.Asserts {
				if a.Principal != p || a.Service != in.Service || a.Role != role || !a.HasArgs {
					continue
				}
				for _, args := range w.enumerate(a.Args, in.RF.Types[role], p, p) {
					if rmc, err := svc.Enter(oasis.EnterRequest{
						Client: w.clients[p], Rolefile: "main", Role: role, Args: args, Creds: w.creds[p],
					}); err == nil && w.record(p, in.Service, role, rmc) {
						changed = true
					}
				}
			}
		}
		if r.Elector == nil {
			continue
		}
		// Election: every principal holding the elector role tries to
		// delegate every small-universe instance to p.
		wild := make([]analyze.AVal, len(r.Head.Args))
		for i := range wild {
			wild[i] = analyze.Top()
		}
		for _, e := range w.scn.Principals {
			for _, entry := range w.heldRoles(e, in.Service, r.Elector.Name) {
				for _, args := range w.enumerate(wild, in.RF.Types[role], p, e) {
					deleg, _, err := svc.Delegate(oasis.DelegateRequest{
						Client: w.clients[e], Rolefile: "main", Role: role,
						Args: args, ElectorCert: entry.rmc,
					})
					if err != nil {
						continue
					}
					if rmc, err := svc.EnterDelegated(oasis.EnterRequest{
						Client: w.clients[p], Rolefile: "main", Role: role,
						Creds: w.creds[p], Delegation: deleg,
					}); err == nil && w.record(p, in.Service, role, rmc) {
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// heldRoles lists p's successful entries of Service.role.
func (w *diffWorld) heldRoles(p, service, role string) []diffEntry {
	var out []diffEntry
	for _, e := range w.entered {
		if e.principal == p && e.service == service && e.role == role {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// enumerate expands an argument pattern into concrete tuples: literals
// stay fixed, wildcards range over a small universe drawn from the two
// principals involved (names, hosts, small integers). Capped so probe
// rounds stay tiny.
func (w *diffWorld) enumerate(pattern []analyze.AVal, types []value.Type, p, elector string) [][]value.Value {
	if len(types) != len(pattern) {
		return nil
	}
	tuples := [][]value.Value{{}}
	for i, a := range pattern {
		var opts []value.Value
		if !a.IsTop() {
			v, ok := concreteValue(types[i], a.Literal())
			if !ok {
				return nil
			}
			opts = []value.Value{v}
		} else {
			opts = w.wildcardValues(types[i], p, elector)
		}
		var next [][]value.Value
		for _, tu := range tuples {
			for _, v := range opts {
				next = append(next, append(append([]value.Value(nil), tu...), v))
			}
			if len(next) > 64 {
				return next
			}
		}
		tuples = next
	}
	return tuples
}

func (w *diffWorld) wildcardValues(t value.Type, p, elector string) []value.Value {
	var out []value.Value
	switch t.Kind {
	case value.KindInt:
		for i := int64(0); i < 4; i++ {
			out = append(out, value.Int(i))
		}
	case value.KindString:
		out = append(out, value.Str(p), value.Str(w.hostOf(p)))
		if elector != p {
			out = append(out, value.Str(elector))
		}
	default:
		out = append(out, value.Object(t.Name, p))
		if elector != p {
			out = append(out, value.Object(t.Name, elector))
		}
		if h := w.hostOf(p); strings.Contains(strings.ToLower(t.Name), "host") {
			out = append(out, value.Object(t.Name, h))
		}
	}
	return out
}

func (w *diffWorld) hostOf(p string) string {
	if h := w.scn.Hosts[p]; h != "" {
		return h
	}
	return "unbound-" + p
}

// checkSoundness verifies that every runtime entry on an analysed
// service is covered by a static fact.
func (w *diffWorld) checkSoundness(rep *analyze.ReachReport) {
	t := w.t
	keys := make([]string, 0, len(w.entered))
	for k := range w.entered {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := w.entered[k]
		if _, ok := w.loaded[e.service]; !ok {
			continue // stub foreign service: outside the analysed world
		}
		qualified := e.service + "." + e.role
		if !w.covered(rep, e, qualified) {
			args := make([]string, len(e.args))
			for i, v := range e.args {
				args[i] = canonValue(v)
			}
			t.Errorf("UNSOUND: runtime entered %s as %s(%s) but no static fact covers it",
				e.principal, qualified, strings.Join(args, ", "))
		}
	}
}

// checkExpectsEntered anchors the other direction on the shipped
// examples: every `expect` assertion over an analysed service with
// explicit arguments names a role instance the runtime really grants,
// so the probe harness (and the scenarios) cannot rot into vacuity.
func (w *diffWorld) checkExpectsEntered() {
	for _, a := range w.scn.Asserts {
		if a.Kind != analyze.AssertExpect || !a.HasArgs {
			continue
		}
		if _, ok := w.loaded[a.Service]; !ok {
			continue
		}
		found := false
		for _, e := range w.entered {
			if e.principal != a.Principal || e.service != a.Service || e.role != a.Role || len(e.args) != len(a.Args) {
				continue
			}
			match := true
			for i, pa := range a.Args {
				if !pa.IsTop() && pa.Literal() != canonValue(e.args[i]) {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			w.t.Errorf("runtime never entered the expected instance %s", a.String())
		}
	}
}

func (w *diffWorld) covered(rep *analyze.ReachReport, e diffEntry, qualified string) bool {
	for _, f := range rep.Facts {
		if f.Principal != e.principal || f.Role != qualified || len(f.Args) != len(e.args) {
			continue
		}
		match := true
		for i, fa := range f.Args {
			if !fa.IsTop() && fa.Literal() != canonValue(e.args[i]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
