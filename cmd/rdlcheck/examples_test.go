package main

import (
	"path/filepath"
	"sort"
	"testing"
)

// TestExamplePolicies runs the analyzer over every rolefile shipped with
// the examples, one invocation per example directory so cross-service
// references resolve. The deployed policies must be free of error-level
// findings, and the full report is pinned as a golden file.
func TestExamplePolicies(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("..", "..", "examples", "*"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(dirs)
	tested := 0
	for _, dir := range dirs {
		files, err := filepath.Glob(filepath.Join(dir, "*.rdl"))
		if err != nil {
			t.Fatal(err)
		}
		if len(files) == 0 {
			continue
		}
		sort.Strings(files)
		tested++
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			got, err := runTool(t, files...)
			if err != nil {
				t.Fatalf("example policy has error-level findings: %v\n%s", err, got)
			}
			golden := filepath.Join("testdata", "examples", name+".golden")
			checkGolden(t, golden, normalize(got, dir))
		})
	}
	if tested < 4 {
		t.Fatalf("only %d example directories carry rolefiles; expected at least 4", tested)
	}
}
