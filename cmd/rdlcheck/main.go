// rdlcheck parses and type-checks a rolefile, printing the inferred
// role signatures and the proof-system axioms of §3.2.2. Foreign role
// signatures may be supplied with -foreign "Svc.Role=type,type" flags.
//
// Usage:
//
//	rdlcheck [-foreign Login.LoggedOn=Login.userid,Login.host] file.rdl
//	echo 'Chair <- Login.LoggedOn("jmb", h)' | rdlcheck -foreign ...
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"oasis/internal/rdl"
	"oasis/internal/value"
)

type foreignFlags map[string][]value.Type

func (f foreignFlags) String() string { return fmt.Sprint(map[string][]value.Type(f)) }

func (f foreignFlags) Set(s string) error {
	name, types, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected Svc.Role=type,type, got %q", s)
	}
	var ts []value.Type
	if types != "" {
		for _, t := range strings.Split(types, ",") {
			switch t {
			case "integer", "int":
				ts = append(ts, value.IntType)
			case "string":
				ts = append(ts, value.StringType)
			default:
				if strings.HasPrefix(t, "{") && strings.HasSuffix(t, "}") {
					ts = append(ts, value.SetType(strings.Trim(t, "{}")))
				} else {
					ts = append(ts, value.ObjectType(t))
				}
			}
		}
	}
	f[name] = ts
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdlcheck", flag.ContinueOnError)
	foreign := foreignFlags{}
	fs.Var(foreign, "foreign", "foreign role signature Svc.Role=type,type (repeatable)")
	axioms := fs.Bool("axioms", true, "print proof-system axioms")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src []byte
	var err error
	if fs.NArg() > 0 {
		src, err = os.ReadFile(fs.Arg(0))
	} else {
		src, err = io.ReadAll(stdin)
	}
	if err != nil {
		return err
	}

	file, err := rdl.Parse(string(src))
	if err != nil {
		return err
	}
	resolver := func(service, rolefile, role string) ([]value.Type, error) {
		if ts, ok := foreign[service+"."+role]; ok {
			return ts, nil
		}
		return nil, fmt.Errorf("unknown foreign role %s.%s (add -foreign)", service, role)
	}
	checked, err := rdl.Check(file, resolver, nil)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "rolefile OK: %d rules, %d local roles\n", len(file.Rules), len(checked.Types))
	for _, role := range checked.Roles() {
		types := checked.Types[role]
		parts := make([]string, len(types))
		for i, t := range types {
			parts[i] = t.String()
		}
		fmt.Fprintf(stdout, "  role %s(%s)\n", role, strings.Join(parts, ", "))
	}
	if *axioms {
		for i, r := range file.Rules {
			fmt.Fprintf(stdout, "\naxiom %d:\n%s\n", i+1, rdl.Axiom(r))
		}
	}
	return nil
}
