// rdlcheck parses, type-checks and statically analyzes one or more
// rolefiles as a single policy. Each file is attributed to a service
// named after its base name (Conf.rdl defines service "Conf"), so
// cross-service role references between the given files resolve against
// each other; signatures of services not given may be declared with
// -foreign or, by default, inferred from usage.
//
// Beyond the per-file type check, the whole policy is analyzed
// (internal/rdl/analyze): revocation coverage, unreachable roles, dead
// rules, unsatisfiable constraints, dependency cycles. Error-level
// findings make the exit status non-zero, so the tool gates CI.
//
// With -reach, positional arguments ending in .scn are parsed as
// scenarios (initial credential assignments, docs/RDL.md "Reachability
// analysis") and the whole policy is run through the symbolic
// reachability engine: every acquirable (principal, role instance) pair
// is reported with a witness derivation, scenario assertions are
// checked (failures are R010, error level), and open-access (R008) and
// unrevocable-chain (R009) findings join the structural ones.
//
// Exit status: 0 when no reported finding is error-level, 1 otherwise.
// Findings below -severity are neither printed nor gate the exit
// status; error-level findings always satisfy any -severity threshold,
// so lowering it can only hide advisory findings, never failures.
//
// Usage:
//
//	rdlcheck [-json] [-severity warning] [-q] file.rdl...
//	rdlcheck -foreign Login.LoggedOn=Login.userid,Login.host file.rdl
//	rdlcheck -reach scenario.scn file.rdl...
//	echo 'Chair <- Login.LoggedOn("jmb", h)*' | rdlcheck
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"oasis/internal/rdl"
	"oasis/internal/rdl/analyze"
	"oasis/internal/value"
)

type foreignFlags map[string][]value.Type

func (f foreignFlags) String() string { return fmt.Sprint(map[string][]value.Type(f)) }

func (f foreignFlags) Set(s string) error {
	name, types, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected Svc.Role=type,type, got %q", s)
	}
	var ts []value.Type
	if types != "" {
		for _, t := range strings.Split(types, ",") {
			ts = append(ts, parseType(t))
		}
	}
	f[name] = ts
	return nil
}

// parseType maps a surface type name ("integer", "string", "{rwx}",
// "Login.userid") to a value type; the same names appear in -foreign
// flags and scenario foreign directives.
func parseType(t string) value.Type {
	switch t {
	case "integer", "int":
		return value.IntType
	case "string":
		return value.StringType
	default:
		if strings.HasPrefix(t, "{") && strings.HasSuffix(t, "}") {
			return value.SetType(strings.Trim(t, "{}"))
		}
		return value.ObjectType(t)
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// policyFile is one rolefile under check.
type policyFile struct {
	path    string
	service string
	file    *rdl.File
	rf      *rdl.Rolefile
}

// driver loads, type-checks and analyzes a set of rolefiles.
type driver struct {
	files     []*policyFile
	byService map[string][]*policyFile
	foreign   foreignFlags
	assume    bool
	checking  map[string]bool
}

// serviceOf names the service a rolefile path belongs to: the base name
// without its extension.
func serviceOf(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// resolve implements rdl.RoleTypesFunc across the loaded files: explicit
// -foreign declarations win, then sibling services in the same
// invocation, then (with -assume-foreign) inference from usage.
func (d *driver) resolve(service, rolefile, role string) ([]value.Type, error) {
	if ts, ok := d.foreign[service+"."+role]; ok {
		return ts, nil
	}
	if files := d.byService[service]; files != nil {
		if d.checking[service] {
			// A reference back into a service still being checked
			// (self-qualified or mutually recursive): fall back to
			// inference rather than deadlocking on types.
			if d.assume {
				return nil, rdl.ErrInferSignature
			}
			return nil, fmt.Errorf("circular type dependency on service %s", service)
		}
		if err := d.checkService(service); err != nil {
			return nil, err
		}
		for _, pf := range files {
			if ts, ok := pf.rf.Types[role]; ok {
				return ts, nil
			}
		}
		return nil, fmt.Errorf("service %s defines no role %s", service, role)
	}
	if d.assume {
		return nil, rdl.ErrInferSignature
	}
	return nil, fmt.Errorf("unknown foreign role %s.%s (add -foreign, or drop -assume-foreign=false)", service, role)
}

// checkService type-checks every file of one service, memoized.
func (d *driver) checkService(service string) error {
	d.checking[service] = true
	defer delete(d.checking, service)
	for _, pf := range d.byService[service] {
		if pf.rf != nil {
			continue
		}
		rf, err := rdl.Check(pf.file, d.resolve, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", pf.path, err)
		}
		pf.rf = rf
	}
	return nil
}

// jsonRole, jsonFile and jsonReport shape the -json output; the schema
// is documented in docs/RDL.md.
type jsonRole struct {
	Name   string   `json:"name"`
	Params []string `json:"params"`
}

type jsonFile struct {
	File    string     `json:"file"`
	Service string     `json:"service"`
	Rules   int        `json:"rules"`
	Roles   []jsonRole `json:"roles"`
}

type jsonReport struct {
	Files    []jsonFile        `json:"files"`
	Findings []analyze.Finding `json:"findings"`
	Counts   map[string]int    `json:"counts"`
	Reach    []jsonScenario    `json:"reach,omitempty"`
}

// jsonScenario is one scenario's reachability result in -json output.
type jsonScenario struct {
	File    string              `json:"file"`
	Name    string              `json:"name,omitempty"`
	Facts   []*analyze.FactJSON `json:"facts"`
	Asserts []jsonAssert        `json:"asserts"`
}

type jsonAssert struct {
	Assert string `json:"assert"`
	Line   int    `json:"line"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdlcheck", flag.ContinueOnError)
	foreign := foreignFlags{}
	fs.Var(foreign, "foreign", "foreign role signature Svc.Role=type,type (repeatable)")
	assume := fs.Bool("assume-foreign", true, "infer undeclared foreign role signatures from usage")
	axioms := fs.Bool("axioms", false, "print proof-system axioms (§3.2.2)")
	dumpPlan := fs.Bool("dump-plan", false, "print compiled execution plans (the entry engine's form)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	quiet := fs.Bool("q", false, "print findings only, no signatures")
	reach := fs.Bool("reach", false, "run scenario reachability analysis over the given .scn file(s)")
	sevName := fs.String("severity", "info", "minimum severity to report: info, warning or error")
	fs.SetOutput(os.Stderr)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: rdlcheck [flags] [file.rdl ...] [scenario.scn ...]")
		fmt.Fprintln(fs.Output(), "\nWith no rolefile arguments, a single rolefile is read from stdin.")
		fmt.Fprintln(fs.Output(), "With -reach, .scn arguments are scenarios (docs/RDL.md).")
		fmt.Fprintln(fs.Output(), "\nFlags:")
		fs.PrintDefaults()
		fmt.Fprintln(fs.Output(), `
Exit status: 0 when no reported finding is error-level, 1 otherwise
(including R010 scenario assertion failures). Findings hidden by
-severity do not gate the exit status; error-level findings are always
at or above any threshold, so they always fail the run.`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	minSev, err := analyze.ParseSeverity(*sevName)
	if err != nil {
		return err
	}

	var rolePaths, scnPaths []string
	for _, path := range fs.Args() {
		if strings.HasSuffix(path, ".scn") {
			scnPaths = append(scnPaths, path)
		} else {
			rolePaths = append(rolePaths, path)
		}
	}
	if len(scnPaths) > 0 && !*reach {
		return fmt.Errorf("rdlcheck: scenario file(s) given without -reach: %s", strings.Join(scnPaths, ", "))
	}
	var scenarios []*analyze.Scenario
	if *reach {
		if len(scnPaths) == 0 {
			return fmt.Errorf("rdlcheck: -reach needs at least one .scn scenario file")
		}
		for _, path := range scnPaths {
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			scn, err := analyze.ParseScenario(path, string(src))
			if err != nil {
				return err
			}
			scenarios = append(scenarios, scn)
		}
	}

	d := &driver{
		byService: make(map[string][]*policyFile),
		foreign:   foreign,
		assume:    *assume,
		checking:  make(map[string]bool),
	}
	// Scenario foreign directives double as -foreign declarations so a
	// scenario is self-contained.
	for _, scn := range scenarios {
		for _, fr := range scn.Foreign {
			key := fr.Service + "." + fr.Role
			if _, ok := d.foreign[key]; ok {
				continue
			}
			ts := make([]value.Type, len(fr.Types))
			for i, t := range fr.Types {
				ts[i] = parseType(t)
			}
			d.foreign[key] = ts
		}
	}
	if len(rolePaths) == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		if err := d.load("<stdin>", "main", string(src)); err != nil {
			return err
		}
	}
	for _, path := range rolePaths {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := d.load(path, serviceOf(path), string(src)); err != nil {
			return err
		}
	}

	services := make([]string, 0, len(d.byService))
	for svc := range d.byService {
		services = append(services, svc)
	}
	sort.Strings(services)
	for _, svc := range services {
		if err := d.checkService(svc); err != nil {
			return err
		}
	}

	inputs := make([]analyze.Input, len(d.files))
	for i, pf := range d.files {
		inputs[i] = analyze.Input{Service: pf.service, File: pf.path, RF: pf.rf}
	}
	findings := analyze.Analyze(inputs)
	var reports []*analyze.ReachReport
	for _, scn := range scenarios {
		rep := analyze.Reach(inputs, scn)
		reports = append(reports, rep)
		findings = append(findings, rep.Findings...)
	}
	analyze.Sort(findings)
	shown := analyze.Filter(findings, minSev)

	if *dumpPlan {
		if err := analyze.DumpPlans(stdout, inputs); err != nil {
			return err
		}
		// The plan dump replaces the signature listing; findings still
		// follow so the exit status keeps gating CI.
		*quiet = true
	}
	if *jsonOut {
		if err := writeJSON(stdout, d.files, reports, shown, findings); err != nil {
			return err
		}
	} else {
		writeText(stdout, d.files, shown, *quiet, *axioms)
		for _, rep := range reports {
			writeReach(stdout, rep, *quiet)
		}
	}

	// The exit status is gated on the *reported* findings: a finding
	// hidden by -severity never fails the run. Error-level findings are
	// always at or above any threshold, so the gate cannot weaken.
	if errs := len(analyze.Filter(shown, analyze.Error)); errs > 0 {
		return fmt.Errorf("rdlcheck: %d error-level finding(s)", errs)
	}
	return nil
}

// writeReach prints one scenario's reachability report: every
// acquirable role instance with its witness derivation, then the
// assertion verdicts. In quiet mode the witness trees are suppressed —
// the verdict lines and findings carry the gate.
func writeReach(w io.Writer, rep *analyze.ReachReport, quiet bool) {
	name := rep.Scenario.Name
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Fprintf(w, "reach %s: scenario %s\n", rep.Scenario.File, name)
	if !quiet {
		for _, f := range rep.Facts {
			analyze.WriteWitness(w, f)
		}
	}
	for _, res := range rep.Asserts {
		verdict := "ok"
		if !res.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "assert %s: %s\n", verdict, res.Detail)
	}
}

func (d *driver) load(path, service, src string) error {
	file, err := rdl.Parse(src)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	pf := &policyFile{path: path, service: service, file: file}
	d.files = append(d.files, pf)
	d.byService[service] = append(d.byService[service], pf)
	return nil
}

func writeJSON(w io.Writer, files []*policyFile, reports []*analyze.ReachReport, shown, all []analyze.Finding) error {
	rep := jsonReport{
		Files:    make([]jsonFile, 0, len(files)),
		Findings: shown,
		Counts:   map[string]int{"error": 0, "warning": 0, "info": 0},
	}
	if rep.Findings == nil {
		rep.Findings = []analyze.Finding{}
	}
	for _, rr := range reports {
		js := jsonScenario{File: rr.Scenario.File, Name: rr.Scenario.Name, Facts: []*analyze.FactJSON{}, Asserts: []jsonAssert{}}
		for _, f := range rr.Facts {
			js.Facts = append(js.Facts, analyze.FactToJSON(f))
		}
		for _, res := range rr.Asserts {
			js.Asserts = append(js.Asserts, jsonAssert{
				Assert: res.Assert.String(), Line: res.Assert.Line, OK: res.OK, Detail: res.Detail,
			})
		}
		rep.Reach = append(rep.Reach, js)
	}
	for _, f := range all {
		rep.Counts[f.Severity.String()]++
	}
	for _, pf := range files {
		jf := jsonFile{File: pf.path, Service: pf.service, Rules: len(pf.file.Rules), Roles: []jsonRole{}}
		for _, role := range pf.rf.Roles() {
			params := make([]string, 0, len(pf.rf.Types[role]))
			for _, t := range pf.rf.Types[role] {
				params = append(params, t.String())
			}
			jf.Roles = append(jf.Roles, jsonRole{Name: role, Params: params})
		}
		rep.Files = append(rep.Files, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func writeText(w io.Writer, files []*policyFile, findings []analyze.Finding, quiet, axioms bool) {
	if !quiet {
		for _, pf := range files {
			fmt.Fprintf(w, "%s: OK: %d rules, %d roles\n", pf.path, len(pf.file.Rules), len(pf.rf.Types))
			for _, role := range pf.rf.Roles() {
				types := pf.rf.Types[role]
				parts := make([]string, len(types))
				for i, t := range types {
					parts[i] = t.String()
				}
				fmt.Fprintf(w, "  role %s(%s)\n", role, strings.Join(parts, ", "))
			}
			if axioms {
				for i, r := range pf.file.Rules {
					fmt.Fprintf(w, "\naxiom %d:\n%s\n", i+1, rdl.Axiom(r))
				}
			}
		}
	}
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}
