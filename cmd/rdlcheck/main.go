// rdlcheck parses, type-checks and statically analyzes one or more
// rolefiles as a single policy. Each file is attributed to a service
// named after its base name (Conf.rdl defines service "Conf"), so
// cross-service role references between the given files resolve against
// each other; signatures of services not given may be declared with
// -foreign or, by default, inferred from usage.
//
// Beyond the per-file type check, the whole policy is analyzed
// (internal/rdl/analyze): revocation coverage, unreachable roles, dead
// rules, unsatisfiable constraints, dependency cycles. Error-level
// findings make the exit status non-zero, so the tool gates CI.
//
// Usage:
//
//	rdlcheck [-json] [-severity warning] [-q] file.rdl...
//	rdlcheck -foreign Login.LoggedOn=Login.userid,Login.host file.rdl
//	echo 'Chair <- Login.LoggedOn("jmb", h)*' | rdlcheck
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"oasis/internal/rdl"
	"oasis/internal/rdl/analyze"
	"oasis/internal/value"
)

type foreignFlags map[string][]value.Type

func (f foreignFlags) String() string { return fmt.Sprint(map[string][]value.Type(f)) }

func (f foreignFlags) Set(s string) error {
	name, types, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected Svc.Role=type,type, got %q", s)
	}
	var ts []value.Type
	if types != "" {
		for _, t := range strings.Split(types, ",") {
			switch t {
			case "integer", "int":
				ts = append(ts, value.IntType)
			case "string":
				ts = append(ts, value.StringType)
			default:
				if strings.HasPrefix(t, "{") && strings.HasSuffix(t, "}") {
					ts = append(ts, value.SetType(strings.Trim(t, "{}")))
				} else {
					ts = append(ts, value.ObjectType(t))
				}
			}
		}
	}
	f[name] = ts
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// policyFile is one rolefile under check.
type policyFile struct {
	path    string
	service string
	file    *rdl.File
	rf      *rdl.Rolefile
}

// driver loads, type-checks and analyzes a set of rolefiles.
type driver struct {
	files     []*policyFile
	byService map[string][]*policyFile
	foreign   foreignFlags
	assume    bool
	checking  map[string]bool
}

// serviceOf names the service a rolefile path belongs to: the base name
// without its extension.
func serviceOf(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// resolve implements rdl.RoleTypesFunc across the loaded files: explicit
// -foreign declarations win, then sibling services in the same
// invocation, then (with -assume-foreign) inference from usage.
func (d *driver) resolve(service, rolefile, role string) ([]value.Type, error) {
	if ts, ok := d.foreign[service+"."+role]; ok {
		return ts, nil
	}
	if files := d.byService[service]; files != nil {
		if d.checking[service] {
			// A reference back into a service still being checked
			// (self-qualified or mutually recursive): fall back to
			// inference rather than deadlocking on types.
			if d.assume {
				return nil, rdl.ErrInferSignature
			}
			return nil, fmt.Errorf("circular type dependency on service %s", service)
		}
		if err := d.checkService(service); err != nil {
			return nil, err
		}
		for _, pf := range files {
			if ts, ok := pf.rf.Types[role]; ok {
				return ts, nil
			}
		}
		return nil, fmt.Errorf("service %s defines no role %s", service, role)
	}
	if d.assume {
		return nil, rdl.ErrInferSignature
	}
	return nil, fmt.Errorf("unknown foreign role %s.%s (add -foreign, or drop -assume-foreign=false)", service, role)
}

// checkService type-checks every file of one service, memoized.
func (d *driver) checkService(service string) error {
	d.checking[service] = true
	defer delete(d.checking, service)
	for _, pf := range d.byService[service] {
		if pf.rf != nil {
			continue
		}
		rf, err := rdl.Check(pf.file, d.resolve, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", pf.path, err)
		}
		pf.rf = rf
	}
	return nil
}

// jsonRole, jsonFile and jsonReport shape the -json output; the schema
// is documented in docs/RDL.md.
type jsonRole struct {
	Name   string   `json:"name"`
	Params []string `json:"params"`
}

type jsonFile struct {
	File    string     `json:"file"`
	Service string     `json:"service"`
	Rules   int        `json:"rules"`
	Roles   []jsonRole `json:"roles"`
}

type jsonReport struct {
	Files    []jsonFile        `json:"files"`
	Findings []analyze.Finding `json:"findings"`
	Counts   map[string]int    `json:"counts"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("rdlcheck", flag.ContinueOnError)
	foreign := foreignFlags{}
	fs.Var(foreign, "foreign", "foreign role signature Svc.Role=type,type (repeatable)")
	assume := fs.Bool("assume-foreign", true, "infer undeclared foreign role signatures from usage")
	axioms := fs.Bool("axioms", false, "print proof-system axioms (§3.2.2)")
	dumpPlan := fs.Bool("dump-plan", false, "print compiled execution plans (the entry engine's form)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	quiet := fs.Bool("q", false, "print findings only, no signatures")
	sevName := fs.String("severity", "info", "minimum severity to report: info, warning or error")
	if err := fs.Parse(args); err != nil {
		return err
	}
	minSev, err := analyze.ParseSeverity(*sevName)
	if err != nil {
		return err
	}

	d := &driver{
		byService: make(map[string][]*policyFile),
		foreign:   foreign,
		assume:    *assume,
		checking:  make(map[string]bool),
	}
	if fs.NArg() == 0 {
		src, err := io.ReadAll(stdin)
		if err != nil {
			return err
		}
		if err := d.load("<stdin>", "main", string(src)); err != nil {
			return err
		}
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := d.load(path, serviceOf(path), string(src)); err != nil {
			return err
		}
	}

	services := make([]string, 0, len(d.byService))
	for svc := range d.byService {
		services = append(services, svc)
	}
	sort.Strings(services)
	for _, svc := range services {
		if err := d.checkService(svc); err != nil {
			return err
		}
	}

	inputs := make([]analyze.Input, len(d.files))
	for i, pf := range d.files {
		inputs[i] = analyze.Input{Service: pf.service, File: pf.path, RF: pf.rf}
	}
	findings := analyze.Analyze(inputs)
	shown := analyze.Filter(findings, minSev)

	if *dumpPlan {
		if err := analyze.DumpPlans(stdout, inputs); err != nil {
			return err
		}
		// The plan dump replaces the signature listing; findings still
		// follow so the exit status keeps gating CI.
		*quiet = true
	}
	if *jsonOut {
		if err := writeJSON(stdout, d.files, shown, findings); err != nil {
			return err
		}
	} else {
		writeText(stdout, d.files, shown, *quiet, *axioms)
	}

	if errs := len(analyze.Filter(findings, analyze.Error)); errs > 0 {
		return fmt.Errorf("rdlcheck: %d error-level finding(s)", errs)
	}
	return nil
}

func (d *driver) load(path, service, src string) error {
	file, err := rdl.Parse(src)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	pf := &policyFile{path: path, service: service, file: file}
	d.files = append(d.files, pf)
	d.byService[service] = append(d.byService[service], pf)
	return nil
}

func writeJSON(w io.Writer, files []*policyFile, shown, all []analyze.Finding) error {
	rep := jsonReport{
		Files:    make([]jsonFile, 0, len(files)),
		Findings: shown,
		Counts:   map[string]int{"error": 0, "warning": 0, "info": 0},
	}
	if rep.Findings == nil {
		rep.Findings = []analyze.Finding{}
	}
	for _, f := range all {
		rep.Counts[f.Severity.String()]++
	}
	for _, pf := range files {
		jf := jsonFile{File: pf.path, Service: pf.service, Rules: len(pf.file.Rules), Roles: []jsonRole{}}
		for _, role := range pf.rf.Roles() {
			params := make([]string, 0, len(pf.rf.Types[role]))
			for _, t := range pf.rf.Types[role] {
				params = append(params, t.String())
			}
			jf.Roles = append(jf.Roles, jsonRole{Name: role, Params: params})
		}
		rep.Files = append(rep.Files, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func writeText(w io.Writer, files []*policyFile, findings []analyze.Finding, quiet, axioms bool) {
	if !quiet {
		for _, pf := range files {
			fmt.Fprintf(w, "%s: OK: %d rules, %d roles\n", pf.path, len(pf.file.Rules), len(pf.rf.Types))
			for _, role := range pf.rf.Roles() {
				types := pf.rf.Types[role]
				parts := make([]string, len(types))
				for i, t := range types {
					parts[i] = t.String()
				}
				fmt.Fprintf(w, "  role %s(%s)\n", role, strings.Join(parts, ", "))
			}
			if axioms {
				for i, r := range pf.file.Rules {
					fmt.Fprintf(w, "\naxiom %d:\n%s\n", i+1, rdl.Axiom(r))
				}
			}
		}
	}
	for _, f := range findings {
		fmt.Fprintln(w, f.String())
	}
}
