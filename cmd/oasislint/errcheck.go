package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// busSendFuncs are the notification-plane calls whose error reports a
// lost or unflushed message; dropping it silently loses notifications.
var busSendFuncs = map[string]bool{
	"Flush": true, "flush": true, "enqueue": true,
}

// lintDroppedErrors reports L005: an error-returning call on the
// persistence or notification plane whose result is thrown away by an
// expression, go or defer statement. A dropped journal Write/Sync or
// segment truncation error means the store silently diverges from disk;
// a dropped bus flush error silently loses notifications. The blank
// assignment `_ = call()` stays legal: it marks the discard as a
// decision rather than an accident.
//
// Watched callees: every error-returning function or method declared in
// internal/credrec/storage (the Backend/Segment/Engine journal
// surface), the send-path methods (Flush and the enqueue/flush
// internals) of internal/bus, and net/http ResponseWriter.Write — a
// dropped response-write error hides a client that went away
// mid-response, which the federation gateway must count rather than
// ignore.
func lintDroppedErrors(p *pkg, module string, report func(token.Pos, string, string)) {
	storagePath := module + "/internal/credrec/storage"
	busPath := module + "/internal/bus"

	check := func(call *ast.CallExpr, how string) {
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !lastResultIsError(sig) {
			return
		}
		// Attribute the call to the static receiver's package when there
		// is one: Segment.Write resolves to the embedded io.Writer, but
		// what matters is that the value is a storage segment.
		owner := fn.Pkg().Path()
		if recv := receiverPath(p, call); recv != "" {
			owner = recv
		}
		switch owner {
		case storagePath:
			// every error on the storage surface is a durability signal
		case busPath:
			if !busSendFuncs[fn.Name()] {
				return
			}
		case "net/http":
			// Only the response-body write: its error is the sole
			// evidence the client never received the reply.
			if fn.Name() != "Write" {
				return
			}
		default:
			return
		}
		report(call.Pos(), "L005",
			how+" discards the error from "+shortPkg(owner)+"."+fn.Name()+
				": handle it or discard explicitly with `_ =`")
	}

	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					check(call, "statement")
				}
			case *ast.GoStmt:
				check(s.Call, "go statement")
			case *ast.DeferStmt:
				check(s.Call, "defer")
			}
			return true
		})
	}
}

// receiverPath returns the package path declaring the static receiver
// type of a method call, or "" for plain function calls and receivers
// of unnamed type.
func receiverPath(p *pkg, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := p.info.Selections[sel]
	if !ok {
		return ""
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

// calleeFunc resolves the called function or method, if statically
// known.
func calleeFunc(p *pkg, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := p.info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := p.info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// lastResultIsError reports whether the signature's final result is the
// built-in error type (the Go convention for the call's failure
// report).
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// shortPkg trims an import path to its final element for messages.
func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
