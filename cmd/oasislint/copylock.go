package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// syncValueTypes are the sync and sync/atomic types that must never be
// copied after first use.
var syncValueTypes = map[string]map[string]bool{
	"sync": {
		"Mutex": true, "RWMutex": true, "WaitGroup": true,
		"Once": true, "Cond": true, "Map": true, "Pool": true,
	},
	"sync/atomic": {
		"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
		"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
	},
}

// lockIn returns the name of a no-copy type reachable by value inside
// t (through structs and arrays, not pointers), or "".
func lockIn(t types.Type) string {
	return lockInSeen(t, make(map[types.Type]bool))
}

func lockInSeen(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	t = types.Unalias(t)
	if n, ok := t.(*types.Named); ok {
		if obj := n.Obj(); obj.Pkg() != nil {
			if names, ok := syncValueTypes[obj.Pkg().Path()]; ok && names[obj.Name()] {
				return obj.Pkg().Path() + "." + obj.Name()
			}
		}
		return lockInSeen(n.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockInSeen(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockInSeen(u.Elem(), seen)
	}
	return ""
}

// copySource reports whether the expression denotes an existing value
// (as opposed to a fresh composite literal, conversion or call result)
// so that assigning or passing it duplicates internal lock state.
func copySource(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Obj == nil || x.Obj.Kind != ast.Con
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copySource(x.X)
	default:
		return false
	}
}

// lintCopyLocks reports L001: lock-bearing values copied through
// receivers, parameters, results, assignments, call arguments or range
// clauses.
func lintCopyLocks(p *pkg, report func(token.Pos, string, string)) {
	// typeOf resolves value expressions only: type expressions (as in
	// new(atomic.Int64) or a conversion) denote no copied value.
	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := p.info.Types[e]; ok && tv.IsValue() {
			return tv.Type
		}
		return nil
	}
	checkFieldList(p, report)

	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, rhs := range x.Rhs {
					if !copySource(rhs) {
						continue
					}
					if name := lockIn(typeOf(rhs)); name != "" {
						report(rhs.Pos(), "L001", "assignment copies lock value: type contains "+name)
					}
				}
			case *ast.CallExpr:
				for _, arg := range x.Args {
					if !copySource(arg) {
						continue
					}
					if name := lockIn(typeOf(arg)); name != "" {
						report(arg.Pos(), "L001", "call passes lock by value: argument contains "+name)
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					// A := range value is recorded in Defs, not Types.
					t := typeOf(x.Value)
					if id, ok := x.Value.(*ast.Ident); ok && t == nil {
						if obj := p.info.Defs[id]; obj != nil {
							t = obj.Type()
						} else if obj := p.info.Uses[id]; obj != nil {
							t = obj.Type()
						}
					}
					if name := lockIn(t); name != "" {
						report(x.Value.Pos(), "L001", "range clause copies lock value: element contains "+name)
					}
				}
			case *ast.ReturnStmt:
				for _, res := range x.Results {
					if !copySource(res) {
						continue
					}
					if name := lockIn(typeOf(res)); name != "" {
						report(res.Pos(), "L001", "return copies lock value: type contains "+name)
					}
				}
			}
			return true
		})
	}
}

// checkFieldList flags value receivers and parameters whose types carry
// locks: every call would copy them.
func checkFieldList(p *pkg, report func(token.Pos, string, string)) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := p.info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := types.Unalias(tv.Type).(*types.Pointer); isPtr {
				continue
			}
			if name := lockIn(tv.Type); name != "" {
				report(field.Type.Pos(), "L001", what+" passes lock by value: type contains "+name)
			}
		}
	}
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				check(x.Recv, "receiver")
				check(x.Type.Params, "parameter")
			case *ast.FuncLit:
				check(x.Type.Params, "parameter")
			}
			return true
		})
	}
}
