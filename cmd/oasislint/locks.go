package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lintLockAcrossSend reports L003: a channel send, or a call into the
// notification plane (bus.Network Flush/EndBatch/StartBatch), reached
// while a sync lock is held. Every lock in this repository is a leaf
// (see DESIGN.md): holding one across a send or a bus delivery can
// deadlock against an endpoint that re-enters the service.
//
// The walker is a conservative sequential interpreter: Lock/RLock adds
// the receiver to the held set, Unlock/RUnlock removes it, a deferred
// unlock keeps it held to the end of the function. A send on a channel
// created locally in the same function is exempt — nothing else can be
// blocked on it yet (clock.Virtual.After relies on this).
func lintLockAcrossSend(p *pkg, report func(token.Pos, string, string)) {
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					newLockWalker(p, report).block(x.Body)
				}
				return false // nested FuncLits are walked fresh inside
			}
			return true
		})
	}
}

type lockWalker struct {
	p      *pkg
	report func(token.Pos, string, string)
	held   map[string]bool       // rendered lock receiver -> held
	locals map[types.Object]bool // channels made in this function
}

func newLockWalker(p *pkg, report func(token.Pos, string, string)) *lockWalker {
	return &lockWalker{p: p, report: report, held: make(map[string]bool), locals: make(map[types.Object]bool)}
}

func (w *lockWalker) clone() *lockWalker {
	c := newLockWalker(w.p, w.report)
	for k := range w.held {
		c.held[k] = true
	}
	for k := range w.locals {
		c.locals[k] = true
	}
	return c
}

// absorb unions another walker's end state into this one.
func (w *lockWalker) absorb(o *lockWalker) {
	for k := range o.held {
		w.held[k] = true
	}
}

func (w *lockWalker) holding() string {
	var names []string
	for k := range w.held {
		names = append(names, k)
	}
	return strings.Join(names, ", ")
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(x)
	case *ast.ExprStmt:
		w.expr(x.X)
	case *ast.AssignStmt:
		for i, rhs := range x.Rhs {
			w.expr(rhs)
			if call, ok := rhs.(*ast.CallExpr); ok && i < len(x.Lhs) {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
					if tv, ok := w.p.info.Types[rhs]; ok {
						if _, isChan := types.Unalias(tv.Type).(*types.Chan); isChan {
							if lhs, ok := x.Lhs[i].(*ast.Ident); ok {
								if obj := w.p.info.Defs[lhs]; obj != nil {
									w.locals[obj] = true
								}
							}
						}
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(x.Value)
		if len(w.held) == 0 {
			return
		}
		if id, ok := x.Chan.(*ast.Ident); ok {
			if obj := w.p.info.Uses[id]; obj != nil && w.locals[obj] {
				return // function-local channel: no receiver can hold our locks
			}
		}
		w.report(x.Arrow, "L003",
			"channel send while holding "+w.holding()+" (locks are leaves; release before sending)")
	case *ast.DeferStmt:
		// A deferred unlock runs at return: the lock stays held for the
		// rest of the body, which is exactly what we must track, so a
		// deferred Unlock does NOT clear the held set. A deferred Lock
		// (unusual) is ignored. Other deferred calls are walked for
		// their FuncLit bodies only.
		if sel, ok := x.Call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Unlock", "RUnlock", "Lock", "RLock":
				return
			}
		}
		for _, arg := range x.Call.Args {
			w.expr(arg)
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			newLockWalker(w.p, w.report).block(fl.Body)
		}
	case *ast.GoStmt:
		for _, arg := range x.Call.Args {
			w.expr(arg)
		}
		if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
			newLockWalker(w.p, w.report).block(fl.Body)
		}
	case *ast.IfStmt:
		w.stmt(x.Init)
		w.expr(x.Cond)
		body := w.clone()
		body.block(x.Body)
		var alt *lockWalker
		if x.Else != nil {
			alt = w.clone()
			alt.stmt(x.Else)
		}
		// Branches that cannot fall through (return/break/continue at
		// the end) do not contribute to the state after the statement.
		if !terminal(x.Body) {
			w.absorb(body)
		}
		if alt != nil {
			if es, ok := x.Else.(*ast.BlockStmt); !ok || !terminal(es) {
				w.absorb(alt)
			}
		}
	case *ast.ForStmt:
		w.stmt(x.Init)
		w.expr(x.Cond)
		body := w.clone()
		body.block(x.Body)
		body.stmt(x.Post)
		w.absorb(body)
	case *ast.RangeStmt:
		w.expr(x.X)
		body := w.clone()
		body.block(x.Body)
		w.absorb(body)
	case *ast.SwitchStmt:
		w.stmt(x.Init)
		w.expr(x.Tag)
		for _, c := range x.Body.List {
			cl := w.clone()
			for _, s := range c.(*ast.CaseClause).Body {
				cl.stmt(s)
			}
			w.absorb(cl)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(x.Init)
		for _, c := range x.Body.List {
			cl := w.clone()
			for _, s := range c.(*ast.CaseClause).Body {
				cl.stmt(s)
			}
			w.absorb(cl)
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			comm := c.(*ast.CommClause)
			cl := w.clone()
			cl.stmt(comm.Comm)
			for _, s := range comm.Body {
				cl.stmt(s)
			}
			w.absorb(cl)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.expr(r)
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	case *ast.IncDecStmt:
		w.expr(x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// expr walks an expression, applying Lock/Unlock effects and flagging
// bus-plane calls made under a lock. FuncLit bodies start fresh.
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			newLockWalker(w.p, w.report).block(x.Body)
			return false
		case *ast.CallExpr:
			w.call(x)
			return true
		}
		return true
	})
}

func (w *lockWalker) call(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := w.p.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	recv := types.ExprString(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		if onSyncLock(fn) {
			w.held[recv] = true
		}
	case "Unlock", "RUnlock":
		if onSyncLock(fn) {
			delete(w.held, recv)
		}
	case "Flush", "EndBatch", "StartBatch":
		if len(w.held) > 0 && onBusNetwork(fn) {
			w.report(call.Pos(), "L003",
				"bus "+sel.Sel.Name+" while holding "+w.holding()+
					" (the notification plane may re-enter; release first)")
		}
	}
}

// onSyncLock reports whether the method belongs to sync.Mutex or
// sync.RWMutex (directly or promoted through embedding).
func onSyncLock(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// onBusNetwork reports whether the method's receiver is the bus
// network type — the notification plane whose deliveries can re-enter
// services.
func onBusNetwork(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(n.Obj().Pkg().Path(), "internal/bus") && n.Obj().Name() == "Network"
}

// terminal reports whether a block always transfers control away at
// its end (return, branch, or panic), so execution cannot fall through.
func terminal(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminal(last)
	}
	return false
}
