package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lintAtomicMix reports L002: a struct field passed by address to a
// sync/atomic function in one place but read or written plainly in
// another. Mixing the two races: the plain access is invisible to the
// atomic one. Construction paths — package init functions and New*
// constructors, where the value is not yet shared — are exempt.
func lintAtomicMix(p *pkg, report func(token.Pos, string, string)) {
	// Pass 1: collect the fields blessed by &x.f arguments to
	// sync/atomic calls, and the selector nodes forming those arguments.
	blessed := make(map[*types.Var]string) // field -> atomic func name
	inAtomic := make(map[ast.Node]bool)    // selectors already atomic
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := atomicCallee(p, call)
			if fn == "" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldOf(p, sel); v != nil {
					blessed[v] = fn
					inAtomic[sel] = true
				}
			}
			return true
		})
	}
	if len(blessed) == 0 {
		return
	}

	// Pass 2: any other selector of a blessed field outside an init
	// path is a plain access racing the atomic ones.
	for _, file := range p.files {
		var fstack []string // enclosing function names
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				fstack = append(fstack, x.Name.Name)
				ast.Inspect(x.Type, walk)
				if x.Body != nil {
					ast.Inspect(x.Body, walk)
				}
				fstack = fstack[:len(fstack)-1]
				return false
			case *ast.SelectorExpr:
				if inAtomic[x] {
					return true
				}
				v := fieldOf(p, x)
				if v == nil {
					return true
				}
				fn, ok := blessed[v]
				if !ok {
					return true
				}
				if len(fstack) > 0 && initPath(fstack[len(fstack)-1]) {
					return true
				}
				report(x.Sel.Pos(), "L002",
					"plain access to field "+v.Name()+" also used with atomic."+fn+
						" (use the atomic API, or move the access into a constructor)")
			}
			return true
		}
		ast.Inspect(file, walk)
	}
}

// initPath reports whether a function name marks a construction path in
// which the owning value is not yet shared.
func initPath(name string) bool {
	return name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

// atomicCallee returns the sync/atomic function name called, or "".
func atomicCallee(p *pkg, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return ""
	}
	return fn.Name()
}

// fieldOf returns the struct field a selector denotes, or nil.
func fieldOf(p *pkg, sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
