// Package bad is a lint fixture: every construct the checks must catch,
// next to the patterns they must accept. The golden file pins the
// expected findings.
package bad

import (
	"sync"
	"sync/atomic"
	"time"
)

type counter struct {
	mu  sync.Mutex
	n   int64
	ch  chan int
	hit atomic.Int64
}

// NewCounter is a construction path: the plain write to n is allowed.
func NewCounter() *counter {
	c := &counter{ch: make(chan int, 1)}
	c.n = 0
	return c
}

func copyParam(c counter) {} // L001: parameter copies c.mu

func (c counter) valueReceiver() {} // L001: value receiver copies c.mu

func assignCopy(c *counter) {
	snapshot := *c // L001: assignment copies c.mu
	_ = snapshot
}

func passCopy(c *counter) {
	copyParam(*c) // L001: argument copies c.mu
}

func rangeCopy(cs []counter) {
	for _, c := range cs { // L001: range clause copies each c.mu
		_ = c
	}
}

func atomicMix(c *counter) int64 {
	atomic.AddInt64(&c.n, 1)
	return c.n // L002: plain read of an atomically-updated field
}

func atomicStructOK(c *counter) int64 {
	c.hit.Add(1)
	return c.hit.Load() // ok: all access through the atomic API
}

func sendUnderLock(c *counter) {
	c.mu.Lock()
	c.ch <- 1 // L003: send while holding c.mu
	c.mu.Unlock()
}

func sendAfterUnlockOK(c *counter) {
	c.mu.Lock()
	c.mu.Unlock()
	c.ch <- 2 // ok: lock released first
}

func sendUnderDeferredLock(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ch <- 3 // L003: the deferred unlock runs only at return
}

func sendLocalOK(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	done := make(chan int, 1)
	done <- 1 // ok: function-local channel, no one can hold our locks
	<-done
}

func sendInTerminalBranch(c *counter) {
	c.mu.Lock()
	if cap(c.ch) == 0 {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.ch <- 4 // ok: both paths released the lock
}

func wallClock() time.Duration {
	start := time.Now()      // L004: wall clock outside internal/clock
	return time.Since(start) // L004
}
