package bad

import (
	"net/http"

	"oasis/internal/bus"
	"oasis/internal/credrec/storage"
)

func journalDiscards(seg storage.Segment, be storage.Backend, e *storage.Engine) error {
	seg.Write([]byte("rec")) // L005: dropped journal write error
	seg.Sync()               // L005: dropped group-commit sync error
	be.TruncateSegment(1, 0) // L005: dropped torn-tail truncation error
	go e.Snapshot()          // L005: snapshot failure vanishes with the goroutine
	defer e.Close()          // L005: deferred close drops the final flush error

	_ = seg.Sync() // ok: explicit discard
	if err := seg.Sync(); err != nil {
		return err // ok: handled
	}
	return e.Snapshot() // ok: returned to the caller
}

func busDiscards(enc *bus.WireEnc) error {
	enc.Flush()        // L005: a dropped flush error loses notifications
	_ = enc.Flush()    // ok: explicit discard
	return enc.Flush() // ok: returned
}

func responseDiscards(w http.ResponseWriter, req *http.Request) {
	w.Write([]byte(`{}`))      // L005: the write error is the only sign the client vanished
	defer w.Write([]byte("}")) // L005: deferred response write drops the error too
	w.WriteHeader(200)         // ok: WriteHeader returns nothing
	if _, err := w.Write(nil); err != nil {
		_ = err // ok: handled
	}
	n, _ := w.Write(nil) // ok: explicit discard
	_ = n
	_ = req.Body.Close() // ok: Close is not a watched callee anyway
}
