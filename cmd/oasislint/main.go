// oasislint enforces this repository's concurrency discipline with the
// standard library's go/ast and go/types only — no external analysis
// framework. It walks the packages named on the command line (defaults:
// ./internal/... and ./cmd/...) and reports:
//
//	L001  a type containing a sync lock (Mutex, RWMutex, WaitGroup, ...)
//	      or a sync/atomic value copied by value
//	L002  a field accessed through sync/atomic in one place and by a
//	      plain read or write in another, outside construction
//	L003  a channel send, or a bus Flush/EndBatch/StartBatch call, made
//	      while a lock is held (all locks in this repo are leaves)
//	L004  time.Now and friends outside internal/clock — virtual time
//	      must flow through clock.Clock so tests stay deterministic
//	L005  an error from the persistence surface (internal/credrec/storage
//	      Write/Sync/Truncate/Snapshot/...), a bus send path, or an HTTP
//	      ResponseWriter.Write dropped on the floor; `_ =` marks an
//	      accepted discard
//
// Test files are not analyzed. Any finding makes the exit status
// non-zero, so `make lint` gates CI.
package main

import (
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
)

// finding is one linter diagnostic.
type finding struct {
	pos  token.Position
	code string
	msg  string
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.pos.Filename, f.pos.Line, f.pos.Column, f.code, f.msg)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		args = []string{"./internal/...", "./cmd/..."}
	}
	dirs, err := expand(args)
	if err != nil {
		return err
	}
	root, module, err := findModule(".")
	if err != nil {
		return err
	}
	l := newLoader(root, module)

	var findings []finding
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return fmt.Errorf("oasislint: %w", err)
		}
		report := func(pos token.Pos, code, msg string) {
			findings = append(findings, finding{pos: l.fset.Position(pos), code: code, msg: msg})
		}
		lintCopyLocks(p, report)
		lintAtomicMix(p, report)
		lintLockAcrossSend(p, report)
		lintTimeNow(p, module, report)
		lintDroppedErrors(p, module, report)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		if a.pos.Line != b.pos.Line {
			return a.pos.Line < b.pos.Line
		}
		return a.code < b.code
	})
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		return fmt.Errorf("oasislint: %d finding(s)", len(findings))
	}
	return nil
}
