package main

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestFixtureFindings(t *testing.T) {
	var out strings.Builder
	err := run([]string{filepath.Join("testdata", "src", "bad")}, &out)
	if err == nil {
		t.Fatal("fixture package produced no findings")
	}
	got := filepath.ToSlash(out.String())
	golden := filepath.Join("testdata", "bad.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("findings differ from %s:\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestFixtureCoversEveryCheck cross-references the fixture's own
// annotations: every line commented "// L00x" must be reported with
// that code, and no line commented "// ok" may be reported at all.
func TestFixtureCoversEveryCheck(t *testing.T) {
	var out strings.Builder
	_ = run([]string{filepath.Join("testdata", "src", "bad")}, &out)
	got := out.String()

	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "bad", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, path := range fixtures {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(path)
		for i, line := range strings.Split(string(src), "\n") {
			lineNo := i + 1
			_, comment, found := strings.Cut(line, "// ")
			if !found {
				continue
			}
			switch {
			case strings.HasPrefix(comment, "L00"):
				checked++
				code := comment[:4]
				marker := base + ":" + strconv.Itoa(lineNo) + ":"
				if !lineReported(got, marker, code) {
					t.Errorf("%s line %d annotated %s but not reported:\n%s", base, lineNo, code, got)
				}
			case strings.HasPrefix(comment, "ok"):
				checked++
				if strings.Contains(got, base+":"+strconv.Itoa(lineNo)+":") {
					t.Errorf("%s line %d annotated ok but reported:\n%s", base, lineNo, got)
				}
			}
		}
	}
	if checked < 18 {
		t.Fatalf("only %d annotated lines found in fixture", checked)
	}
}

func lineReported(out, marker, code string) bool {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, marker) && strings.Contains(l, code) {
			return true
		}
	}
	return false
}

// TestRepoIsClean is the teeth of the linter: the repository's own
// packages must carry zero findings.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(filepath.Join("..", "..")); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatalf("lint findings in the tree:\n%s", out.String())
	}
}

func TestExpandSkipsTestdata(t *testing.T) {
	dirs, err := expand([]string{"./testdata/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != 0 {
		t.Errorf("testdata not skipped: %v", dirs)
	}
}

func TestFindModule(t *testing.T) {
	root, module, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "oasis" {
		t.Errorf("module = %q", module)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("root %q has no go.mod", root)
	}
}
