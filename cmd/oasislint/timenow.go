package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// wallClockFuncs are the package-level time functions that read or
// schedule against the real wall clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true,
	"NewTicker": true, "Sleep": true,
}

// lintTimeNow reports L004: wall-clock reads outside internal/clock.
// Everything else must take a clock.Clock so virtual time drives the
// simulations and tests deterministically. Test files are not analyzed,
// so they are exempt by construction.
func lintTimeNow(p *pkg, module string, report func(token.Pos, string, string)) {
	if p.path == module+"/internal/clock" {
		return
	}
	for _, file := range p.files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if !wallClockFuncs[fn.Name()] {
				return true
			}
			// time.Time.Since etc. are methods; only package functions
			// touch the wall clock.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			report(sel.Pos(), "L004",
				"time."+fn.Name()+" outside internal/clock: take a clock.Clock instead "+
					"(virtual time keeps simulations deterministic)")
			return true
		})
	}
}
