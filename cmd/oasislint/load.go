package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// pkg is one type-checked package under lint.
type pkg struct {
	dir   string
	path  string
	files []*ast.File
	tpkg  *types.Package
	info  *types.Info
}

// loader parses and type-checks packages with the standard library
// only: module-local imports are resolved against the repository,
// everything else is delegated to the source importer. Packages are
// checked once and memoized.
type loader struct {
	fset    *token.FileSet
	root    string // module root directory
	module  string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*pkg // by directory
	loading map[string]bool
}

func newLoader(root, module string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		root:    root,
		module:  module,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*pkg),
		loading: make(map[string]bool),
	}
}

// Import implements types.Importer for the type-checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		p, err := l.load(filepath.Join(l.root, rel), path)
		if err != nil {
			return nil, err
		}
		return p.tpkg, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in dir, attributing it the
// given import path.
func (l *loader) load(dir, ipath string) (*pkg, error) {
	if p, ok := l.pkgs[dir]; ok {
		return p, nil
	}
	if l.loading[dir] {
		return nil, fmt.Errorf("import cycle through %s", ipath)
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(ipath, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &pkg{dir: dir, path: ipath, files: files, tpkg: tpkg, info: info}
	l.pkgs[dir] = p
	return p, nil
}

// loadDir loads the package in dir, deriving its import path from the
// module root when the directory lies under it.
func (l *loader) loadDir(dir string) (*pkg, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	ipath := l.module + "/" + filepath.ToSlash(dir)
	if rel, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		ipath = l.module + "/" + filepath.ToSlash(rel)
	}
	return l.load(dir, ipath)
}

// findModule walks upward from dir to the enclosing go.mod, returning
// the module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod above %s", dir)
		}
		abs = parent
	}
}

// expand resolves ./dir/... patterns into the list of package
// directories beneath them, skipping testdata trees.
func expand(patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, rec := strings.CutSuffix(pat, "/...")
		if !rec {
			add(pat)
			continue
		}
		err := filepath.WalkDir(filepath.Clean(base), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") && path != base {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
