// Federation-gateway benchmarks (E33): the HTTP front must not become
// the bottleneck of the engine it fronts. These drive the full deployed
// handler stack — mux, rate-limit/backpressure guard, timeout wrapper,
// JSON decode, engine call, token store, JSON encode — through
// httptest, at the three hot paths: token issuance (role entry),
// introspection (live validation; the path clients hammer to honour
// revocations) and revocation. Run with `-cpu 1,4,8`; `make
// bench-gateway` records the suite into BENCH_9.json.
package benchmarks

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"oasis/internal/clock"
	"oasis/internal/gateway"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

const benchGatewayRolefile = `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`

// newBenchGateway builds a gateway over a self-certifying service with
// the guard rails disabled (no rate limit, no backpressure) so the
// numbers isolate the request path itself.
func newBenchGateway(b *testing.B) (*gateway.Gateway, ids.ClientID) {
	b.Helper()
	clk := clock.Real()
	svc, err := oasis.New("Login", clk, nil, oasis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := svc.AddRolefile("main", benchGatewayRolefile); err != nil {
		b.Fatal(err)
	}
	gw := gateway.New(svc, gateway.Options{})
	return gw, ids.NewHostAuthority("bench", clk.Now()).NewDomain()
}

func benchGatewayPost(h http.Handler, path string, raw []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func benchIssueBody(b *testing.B, c ids.ClientID) []byte {
	b.Helper()
	raw, err := json.Marshal(gateway.TokenRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", "u"),
			value.Object("Login.host", "bench"),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

// BenchmarkGatewayIssue measures POST /v1/token: JSON decode, role
// entry through the compiled RDL plan, credential-record insert, token
// mint and the response encode.
func BenchmarkGatewayIssue(b *testing.B) {
	gw, c := newBenchGateway(b)
	h := gw.Handler()
	raw := benchIssueBody(b, c)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if rec := benchGatewayPost(h, "/v1/token", raw); rec.Code != http.StatusOK {
				b.Fatalf("issue: status %d body %s", rec.Code, rec.Body.String())
			}
		}
	})
}

// BenchmarkGatewayIntrospect measures POST /v1/introspect on a live
// token: every call re-validates against the credential store — the
// gateway caches nothing — so this is the cost clients pay to see
// revocations immediately.
func BenchmarkGatewayIntrospect(b *testing.B) {
	gw, c := newBenchGateway(b)
	h := gw.Handler()
	rec := benchGatewayPost(h, "/v1/token", benchIssueBody(b, c))
	if rec.Code != http.StatusOK {
		b.Fatalf("setup issue: status %d", rec.Code)
	}
	var issued gateway.TokenResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &issued); err != nil {
		b.Fatal(err)
	}
	raw, err := json.Marshal(gateway.IntrospectRequest{Token: issued.Token})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if rec := benchGatewayPost(h, "/v1/introspect", raw); rec.Code != http.StatusOK {
				b.Fatalf("introspect: status %d", rec.Code)
			}
		}
	})
}

// BenchmarkGatewayRevoke measures the issue→revoke round trip: each
// iteration mints a fresh token and revokes it (a revocation is a
// one-shot operation, so a pure-revoke loop would only measure the
// idempotent already-revoked path). Subtract BenchmarkGatewayIssue for
// the marginal revocation cost.
func BenchmarkGatewayRevoke(b *testing.B) {
	gw, c := newBenchGateway(b)
	h := gw.Handler()
	issueRaw := benchIssueBody(b, c)
	var revoked atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rec := benchGatewayPost(h, "/v1/token", issueRaw)
			if rec.Code != http.StatusOK {
				b.Fatalf("issue: status %d", rec.Code)
			}
			var issued gateway.TokenResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &issued); err != nil {
				b.Fatal(err)
			}
			raw, err := json.Marshal(gateway.RevokeRequest{Token: issued.Token})
			if err != nil {
				b.Fatal(err)
			}
			if rec := benchGatewayPost(h, "/v1/revoke", raw); rec.Code != http.StatusOK {
				b.Fatalf("revoke: status %d body %s", rec.Code, rec.Body.String())
			}
			revoked.Add(1)
		}
	})
	if gw.TokenCount() != 0 {
		b.Fatalf("token store leaked: %d live after %d revocations", gw.TokenCount(), revoked.Load())
	}
}
