// Parallel variants of the E2/E3 benchmarks: the paper's claim that
// validation is one credential-record lookup (§4.6) only pays off at
// scale if that lookup — and the signature check in front of it — can
// run concurrently on every core. These benchmarks drive the hot path
// with b.RunParallel at the read/write mixes a busy service sees
// (pure reads, 99/1 and 90/10 validate/revoke churn). Run with
// `-cpu 1,4,8` to see the scaling curve; EXPERIMENTS.md records the
// baseline (single big lock) versus sharded-store numbers.
package benchmarks

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// ---- E2 parallel: RMC signature verification ----

func BenchmarkRMCVerifyParallel(b *testing.B) {
	for _, tc := range []struct {
		name string
		s    cert.Signer
	}{
		{"short", cert.NewHMACSigner([]byte("secret"), 4)},
		{"long", cert.NewHMACSigner([]byte("secret"), 32)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c := benchRMC(tc.s)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if !c.Verify(tc.s) {
						b.Error("verify failed")
						return
					}
				}
			})
		})
	}
}

func BenchmarkRMCVerifyRollingParallel(b *testing.B) {
	// §5.5.1 under load: every verifier walks the retained-secret table
	// concurrently; the certificate only matches the oldest secret.
	s := cert.NewRollingSigner([]byte("gen0"), 16, 4)
	c := benchRMC(s)
	s.Roll([]byte("gen1"))
	s.Roll([]byte("gen2"))
	s.Roll([]byte("gen3"))
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !c.Verify(s) {
				b.Error("verify failed")
				return
			}
		}
	})
}

// ---- E3 parallel: credential-record lookup ----

// BenchmarkCredRecValidateParallel/hot drives every goroutine at one
// record (a popular certificate); /spread round-robins over many
// records, the shape of a service with a large working set.
func BenchmarkCredRecValidateParallel(b *testing.B) {
	b.Run("hot", func(b *testing.B) {
		st := credrec.NewStore()
		ref := st.NewFact(credrec.True)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if !st.Valid(ref) {
					b.Error("invalid")
					return
				}
			}
		})
	})
	b.Run("spread", func(b *testing.B) {
		const n = 1024
		st := credrec.NewStore()
		refs := make([]credrec.Ref, n)
		for i := range refs {
			refs[i] = st.NewFact(credrec.True)
		}
		var next atomic.Uint64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			i := next.Add(1) * 31
			for pb.Next() {
				if !st.Valid(refs[i%n]) {
					b.Error("invalid")
					return
				}
				i++
			}
		})
	})
}

// ---- E2/E3 parallel: the full service validation hot path ----

// The "cached" variant validates the same certificate object every
// time, so repeat verifications ride the per-instance memoized
// canonical bytes and signature check (internal/cert/cache.go).
// "cold" rebuilds the certificate struct each iteration — no warm
// per-instance cache, the shape the remote-validation path sees after
// deserialising — which rides the engine's cross-instance
// verified-signature cache (cert.VerifyCache); before these caches
// existed this path re-serialised and re-HMACed on every call
// (EXPERIMENTS.md E30 keeps the pre-cache numbers).
func BenchmarkValidateRMCParallel(b *testing.B) {
	w := newBenchWorld(b)
	c, login := w.logOn(b, "dm")
	member, err := w.conf.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{login},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := w.conf.Validate(member, c); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				fresh := &cert.RMC{
					Service:  member.Service,
					Rolefile: member.Rolefile,
					Roles:    member.Roles,
					Args:     member.Args,
					Client:   member.Client,
					CRR:      member.CRR,
					Expiry:   member.Expiry,
					Sig:      member.Sig,
				}
				if err := w.conf.Validate(fresh, c); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// ---- mixed validate/revoke churn ----

// benchChurnWorld issues `slots` independent LoggedOn certificates via
// the §4.12 direct-issue path, each backed by its own leaf credential
// record, so revocations touch disjoint parts of the store.
type benchChurnWorld struct {
	w       *benchWorld
	clients []ids.ClientID
	certs   []atomic.Pointer[cert.RMC]
}

func newBenchChurnWorld(b *testing.B, slots int) *benchChurnWorld {
	b.Helper()
	w := newBenchWorld(b)
	cw := &benchChurnWorld{
		w:       w,
		clients: make([]ids.ClientID, slots),
		certs:   make([]atomic.Pointer[cert.RMC], slots),
	}
	for i := 0; i < slots; i++ {
		cl := w.host.NewDomain()
		rmc, err := w.login.IssueDirect(cl, "main", "LoggedOn", churnArgs(i))
		if err != nil {
			b.Fatal(err)
		}
		cw.clients[i] = cl
		cw.certs[i].Store(rmc)
	}
	return cw
}

func churnArgs(i int) []value.Value {
	return []value.Value{
		value.Object("Login.userid", fmt.Sprintf("u%d", i)),
		value.Object("Login.host", "ely"),
	}
}

// BenchmarkValidateChurnParallel mixes validations with revoke+reissue
// at the stated write percentage (1% = the paper's revocation-is-rare
// regime, §4.14; 10% = heavy churn). A validation that races a
// revocation may legitimately fail with class Revoked; anything else
// is an error.
func BenchmarkValidateChurnParallel(b *testing.B) {
	for _, writePct := range []int{1, 10} {
		b.Run(fmt.Sprintf("writes=%d%%", writePct), func(b *testing.B) {
			const slots = 256
			cw := newBenchChurnWorld(b, slots)
			var seed atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(int64(seed.Add(1))))
				for pb.Next() {
					i := rng.Intn(slots)
					c := cw.certs[i].Load()
					if rng.Intn(100) < writePct {
						_ = cw.w.login.RevokeDirect(c)
						nc, err := cw.w.login.IssueDirect(cw.clients[i], "main", "LoggedOn", churnArgs(i))
						if err != nil {
							b.Error(err)
							return
						}
						cw.certs[i].Store(nc)
					} else if err := cw.w.login.Validate(c, cw.clients[i]); err != nil {
						var ve *oasis.ValidationError
						if !errors.As(err, &ve) || ve.Class != oasis.Revoked {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
}

// ---- revocation under concurrent readers ----

// BenchmarkRevokeUnderReaders measures the write path's cost while the
// read path hammers an unrelated record: with a single store-wide lock
// every revocation stalls behind the readers, with striping it only
// contends on the shards the cascade touches.
func BenchmarkRevokeUnderReaders(b *testing.B) {
	st := credrec.NewStore()
	hot := st.NewFact(credrec.True)
	stop := make(chan struct{})
	defer close(stop)
	for g := 0; g < 4; g++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
					st.Valid(hot)
				}
			}
		}()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := st.NewFact(credrec.True)
		for j := 0; j < 16; j++ {
			st.NewDerived(credrec.OpAnd, credrec.Of(root))
		}
		if err := st.Invalidate(root); err != nil {
			b.Fatal(err)
		}
	}
}
