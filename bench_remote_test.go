// E30: the end-to-end remote-validation fast path. A certificate issued
// by Login is validated over a real TCP link ("services offer to
// validate certificates for use in other services", §2.10) at every
// combination of wire codec (gob vs the hand-rolled binary codec) and
// writer discipline (encode+flush under the per-peer lock vs the
// pipelined queue+flusher). Run with `-cpu 1,4,8` to see how the convoy
// on the locked writer caps concurrent callers while the pipelined
// writer keeps scaling; EXPERIMENTS.md E30 records the numbers.
package benchmarks

import (
	"fmt"
	"net"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// benchRemoteWorld is one TCP link between a caller network and a
// network hosting a Login service with an issued certificate.
type benchRemoteWorld struct {
	client *bus.Network
	rmc    *cert.RMC
	domain ids.ClientID
	close  func()
}

func newBenchRemoteWorld(b *testing.B, wire string, syncWrites bool) *benchRemoteWorld {
	b.Helper()
	oasis.RegisterWireTypes()

	serverClk := clock.NewVirtual(time.Unix(0, 0))
	serverNet := bus.NewNetwork(serverClk)
	if err := serverNet.SetWireFormat(wire); err != nil {
		b.Fatal(err)
	}
	serverNet.SetWireSyncWrites(syncWrites)
	login, err := oasis.New("Login", serverClk, serverNet, oasis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := login.AddRolefile("main", `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`); err != nil {
		b.Fatal(err)
	}
	host := ids.NewHostAuthority("ely", serverClk.Now())
	domain := host.NewDomain()
	rmc, err := login.Enter(oasis.EnterRequest{
		Client: domain, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", "dm"),
			value.Object("Login.host", "ely"),
		},
	})
	if err != nil {
		b.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = serverNet.ServeTCP(ln) }()

	clientNet := bus.NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	if err := clientNet.SetWireFormat(wire); err != nil {
		b.Fatal(err)
	}
	clientNet.SetWireSyncWrites(syncWrites)
	if err := clientNet.AddRemote("Login", ln.Addr().String()); err != nil {
		b.Fatal(err)
	}
	if got := clientNet.RemoteWireFormat("Login"); got != wire {
		b.Fatalf("link negotiated %q, want %q", got, wire)
	}
	return &benchRemoteWorld{
		client: clientNet,
		rmc:    rmc,
		domain: domain,
		close: func() {
			clientNet.CloseRemotes()
			ln.Close()
		},
	}
}

// BenchmarkRemoteValidateTCP is the E30 matrix. "locked" serialises
// encode+flush under the per-peer mutex (the pre-pipelining writer);
// "pipelined" is the shipping configuration: callers enqueue under a
// leaf lock and a single flusher drains the queue with one flush per
// batch.
func BenchmarkRemoteValidateTCP(b *testing.B) {
	for _, wire := range []string{bus.WireGob, bus.WireBinary} {
		for _, mode := range []struct {
			name string
			sync bool
		}{
			{"locked", true},
			{"pipelined", false},
		} {
			b.Run(fmt.Sprintf("%s-%s", wire, mode.name), func(b *testing.B) {
				w := newBenchRemoteWorld(b, wire, mode.sync)
				defer w.close()
				arg := oasis.ValidateArg{Cert: w.rmc, Client: w.domain}
				// One warm call catches misconfiguration before timing.
				if _, err := w.client.Call("Bench", "Login", "validate", arg); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				// A service sees many more outstanding requests than cores;
				// 8 callers per proc keeps the link busy enough that the
				// writer discipline — one flush per batch vs one flush per
				// message under the peer lock — actually shows.
				b.SetParallelism(8)
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						res, err := w.client.Call("Bench", "Login", "validate", arg)
						if err != nil {
							b.Error(err)
							return
						}
						if r, ok := res.(oasis.ValidateReply); !ok || len(r.Roles) == 0 {
							b.Errorf("bad reply %#v", res)
							return
						}
					}
				})
			})
		}
	}
}
