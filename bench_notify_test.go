// Notification-plane benchmarks (E28): the paper's rapid-revocation
// guarantee (§4.9–§4.10) is only as good as the throughput of the
// Modified-event and heartbeat fan-out path. These benchmarks drive the
// full plane — broker matching, bus routing, transport delivery — at
// the shapes a busy interworking mesh sees: a revocation storm over a
// large watched record set, heartbeat fan-out to many sessions, and
// notification bursts over the TCP bridge. Run with `-cpu 1,4,8`;
// EXPERIMENTS.md E28 records pre-PR (single bus/broker mutex) versus
// batched/sharded numbers.
package benchmarks

import (
	"fmt"
	"net"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/event"
	"oasis/internal/value"
)

// nettestListener opens a loopback listener for the TCP benchmarks.
func nettestListener() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

const benchModifiedEvent = "Oasis.Modified" // oasis.ModifiedEvent

// countEndpoint is a bus endpoint that counts delivered notifications
// and the sequence numbers they cover (a coalesced notification covers
// 1+Coalesced, §4.10).
type countEndpoint struct {
	notes   atomic.Int64
	covered atomic.Int64
}

func (c *countEndpoint) Call(from, op string, arg any) (any, error) { return nil, nil }
func (c *countEndpoint) Deliver(n event.Notification) {
	c.notes.Add(1)
	c.covered.Add(int64(1 + n.Coalesced))
}

// batchCountEndpoint additionally takes the DeliverBatch fast path.
type batchCountEndpoint struct{ countEndpoint }

func (c *batchCountEndpoint) DeliverBatch(notes []event.Notification) {
	c.notes.Add(int64(len(notes)))
	for _, n := range notes {
		c.covered.Add(int64(1 + n.Coalesced))
	}
}

// stormRule mirrors the oasis Modified coalescing rule for the
// benchmark event shape.
var stormRule = bus.CoalesceRule{
	Key: func(ev event.Event) string {
		if ev.Name != benchModifiedEvent || len(ev.Args) != 3 {
			return ""
		}
		return ev.Args[0].S
	},
	Sticky: func(ev event.Event) bool {
		return len(ev.Args) == 3 && ev.Args[1].I == 0 && ev.Args[2].I != 0
	},
}

// newStormWorld builds the E28 revocation-storm topology: one source
// broker on a network, `watchers` watcher endpoints, and `records`
// watched credential-record refs, every watcher registered for every
// record (the §4.9.2 Modified template: literal ref, wildcard state and
// permanence).
func newStormWorld(b *testing.B, records, watchers int, batched bool) (*bus.Network, *event.Broker, []string, []*countEndpoint) {
	b.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	net.SetCoalesceRule(stormRule)
	broker := event.NewBroker("S", clk, event.BrokerOptions{})
	refs := make([]string, records)
	for i := range refs {
		refs[i] = strconv.FormatUint(uint64(i+1), 16)
	}
	eps := make([]*countEndpoint, watchers)
	for w := 0; w < watchers; w++ {
		var ep bus.Endpoint
		if batched {
			bce := &batchCountEndpoint{}
			ep, eps[w] = bce, &bce.countEndpoint
		} else {
			ce := &countEndpoint{}
			ep, eps[w] = ce, ce
		}
		name := fmt.Sprintf("W%d", w)
		if err := net.Register(name, ep); err != nil {
			b.Fatal(err)
		}
		sess, err := broker.OpenSession(net.Sink("S", name), nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, ref := range refs {
			tmpl := event.NewTemplate(benchModifiedEvent,
				event.Lit(value.Str(ref)), event.Wildcard(), event.Wildcard())
			if _, err := broker.Register(sess, tmpl); err != nil {
				b.Fatal(err)
			}
		}
	}
	return net, broker, refs, eps
}

func modifiedEv(ref string, state int64, perm int64) event.Event {
	return event.New(benchModifiedEvent, value.Str(ref), value.Int(state), value.Int(perm))
}

// BenchmarkNotifyStormParallel is the revocation storm: concurrent
// goroutines signal Modified events for records spread across the
// watched set; each Signal must match its 8 watcher registrations out
// of records×watchers and deliver over the bus. This is the path a
// mass revocation (password-service compromise, §4.14) exercises.
func BenchmarkNotifyStormParallel(b *testing.B) {
	const records, watchers = 1024, 8
	_, broker, refs, eps := newStormWorld(b, records, watchers, false)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := next.Add(1) * 31
		for pb.Next() {
			broker.Signal(modifiedEv(refs[i%records], 1, 0))
			i++
		}
	})
	b.StopTimer()
	var got int64
	for _, ep := range eps {
		got += ep.notes.Load()
	}
	if want := int64(b.N) * watchers; got != want {
		b.Fatalf("delivered %d notifications, want %d", got, want)
	}
}

// BenchmarkNotifyStormBatched drives repeated updates to hot records
// through the batch path: each goroutine wraps a span of signals to one
// record in StartBatch/EndBatch (the shape a churning record — an ACL
// version, a flapping group membership — produces via
// oasis.batchNotify), so runs of superseded notifications collapse
// before delivery. Delivered notifications are fewer than
// signals×watchers; the covered sequence numbers must account for all
// of them (§4.10).
func BenchmarkNotifyStormBatched(b *testing.B) {
	const records, watchers, span = 1024, 8, 64
	net, broker, refs, eps := newStormWorld(b, records, watchers, true)
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := next.Add(1) * 31
		done := false
		for !done {
			ref := refs[i%records]
			i++
			net.StartBatch("S")
			for k := 0; k < span; k++ {
				if !pb.Next() {
					done = true
					break
				}
				broker.Signal(modifiedEv(ref, int64(k%2), 0))
			}
			net.EndBatch("S")
		}
	})
	b.StopTimer()
	var notes, covered int64
	for _, ep := range eps {
		notes += ep.notes.Load()
		covered += ep.covered.Load()
	}
	if want := int64(b.N) * watchers; covered != want {
		b.Fatalf("covered %d sequence numbers, want %d", covered, want)
	}
	b.ReportMetric(float64(notes)/float64(covered), "deliveries/signal")
}

// BenchmarkHeartbeatFanoutParallel measures Heartbeat() with many open
// sessions — the §4.10 background-liveness cost every service pays on
// every tick, here with concurrent tickers contending on the broker.
func BenchmarkHeartbeatFanoutParallel(b *testing.B) {
	const sessions = 256
	clk := clock.NewVirtual(time.Unix(0, 0))
	broker := event.NewBroker("S", clk, event.BrokerOptions{})
	var delivered atomic.Int64
	for i := 0; i < sessions; i++ {
		if _, err := broker.OpenSession(event.SinkFunc(func(event.Notification) {
			delivered.Add(1)
		}), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			broker.Heartbeat()
		}
	})
	b.StopTimer()
	if got, want := delivered.Load(), int64(b.N)*sessions; got != want {
		b.Fatalf("delivered %d heartbeats, want %d", got, want)
	}
}

// BenchmarkNotifyTCPStorm pushes a notification burst across the TCP
// bridge: every Send is one gob encode on the client plus one decode
// and local dispatch on the server. With an unbuffered encoder each
// notification is at least one write syscall; the buffered writer
// coalesces bursts.
func BenchmarkNotifyTCPStorm(b *testing.B) {
	clkA := clock.NewVirtual(time.Unix(0, 0))
	netA := bus.NewNetwork(clkA)
	served := &countEndpoint{}
	if err := netA.Register("svc", served); err != nil {
		b.Fatal(err)
	}
	ln, err := nettestListener()
	if err != nil {
		b.Skip("no loopback listener:", err)
	}
	defer ln.Close()
	go func() { _ = netA.ServeTCP(ln) }()

	netB := bus.NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	if err := netB.AddRemote("svc", ln.Addr().String()); err != nil {
		b.Fatal(err)
	}
	defer netB.CloseRemotes()

	note := event.Notification{Source: "caller", Event: modifiedEv("aa", 1, 0)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		note.Seq = uint64(i + 1)
		netB.Send("caller", "svc", note)
	}
	// One-way sends: wait for the far side to have seen everything.
	deadline := time.Now().Add(20 * time.Second)
	for served.notes.Load() < int64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("TCP storm: delivered %d of %d", served.notes.Load(), b.N)
		}
		runtime.Gosched()
	}
}

// BenchmarkNotifyTCPStormBatched pushes the same burst through the
// batch path: spans of sends buffered by StartBatch/EndBatch leave as
// one encode run and one socket flush per span instead of one flush
// per notification.
func BenchmarkNotifyTCPStormBatched(b *testing.B) {
	const span = 64
	clkA := clock.NewVirtual(time.Unix(0, 0))
	netA := bus.NewNetwork(clkA)
	served := &countEndpoint{}
	if err := netA.Register("svc", served); err != nil {
		b.Fatal(err)
	}
	ln, err := nettestListener()
	if err != nil {
		b.Skip("no loopback listener:", err)
	}
	defer ln.Close()
	go func() { _ = netA.ServeTCP(ln) }()

	netB := bus.NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	if err := netB.AddRemote("svc", ln.Addr().String()); err != nil {
		b.Fatal(err)
	}
	defer netB.CloseRemotes()

	// Distinct refs per note: nothing coalesces, so the far side must
	// see every sequence number — this isolates the buffered-flush win.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += span {
		netB.StartBatch("caller")
		for k := i; k < i+span && k < b.N; k++ {
			netB.Send("caller", "svc", event.Notification{
				Source: "caller",
				Seq:    uint64(k + 1),
				Event:  modifiedEv(strconv.FormatInt(int64(k), 16), 1, 0),
			})
		}
		netB.EndBatch("caller")
	}
	deadline := time.Now().Add(20 * time.Second)
	for served.notes.Load() < int64(b.N) {
		if time.Now().After(deadline) {
			b.Fatalf("TCP batched storm: delivered %d of %d", served.notes.Load(), b.N)
		}
		runtime.Gosched()
	}
}
