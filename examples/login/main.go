// Login example (§3.4.3): a central password service issues
// Passwd(user, key) proofs; the login service grades logins by host
// trust using the first-matching-rule semantics, with the reserved
// @host variable bound to the authenticated client host. A visitor
// level accepts an unchecked claim.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/passwd"
	"oasis/internal/value"
)

// The rolefile lives beside this file so `rdlcheck Login.rdl` can
// analyze the deployed policy as-is.
//
//go:embed Login.rdl
var loginRolefile string

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)

	pw, err := passwd.New("Pw", clk, net)
	if err != nil {
		return err
	}
	if err := pw.SetPassword("dm", "sesame"); err != nil {
		return err
	}

	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		return err
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		return err
	}
	login.Groups().AddMember("console1", "secure")
	login.Groups().AddMember("console1", "hosts")
	login.Groups().AddMember("lab-pc", "hosts")

	logIn := func(host, user, password string) (*cert.RMC, error) {
		ha := ids.NewHostAuthority(host, clk.Now())
		client := ha.NewDomain()
		proof, err := pw.Authenticate(client, user, password, "Login")
		if err != nil {
			return nil, err
		}
		return login.Enter(oasis.EnterRequest{
			Client: client, Rolefile: "main", Role: "Login",
			Creds: []*cert.RMC{proof},
		})
	}

	for _, host := range []string{"console1", "lab-pc", "cafe-laptop"} {
		rmc, err := logIn(host, "dm", "sesame")
		if err != nil {
			return err
		}
		fmt.Printf("login from %-12s -> level %d\n", host, rmc.Args[0].I)
	}

	// Wrong password: the password service refuses; no login possible.
	if _, err := logIn("console1", "dm", "guess"); err != nil {
		fmt.Println("wrong password:", err)
	}

	// The visitor path: an unchecked claim at level 0.
	ha := ids.NewHostAuthority("kiosk", clk.Now())
	client := ha.NewDomain()
	visitor, err := login.Enter(oasis.EnterRequest{
		Client: client, Rolefile: "main", Role: "Login",
		Args: []value.Value{
			value.Int(0),
			value.Object("Login.userid", "someone"),
			value.Str("kiosk"),
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("visitor claim           -> level %d (unchecked)\n", visitor.Args[0].I)
	return nil
}
