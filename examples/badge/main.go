// Badge example: the global Active Badge System of §6.3 with composite
// event monitoring (§6.5-6.6) and ERDL event security (chapter 7).
// Three sites run the inter-site protocol; a monitoring client detects
// Enters events and a fire-drill sweep; a proxy enforces the local
// policy on an exported stream.
package main

import (
	"fmt"
	"log"
	"time"

	"oasis/internal/badge"
	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/composite"
	"oasis/internal/event"
	"oasis/internal/eventsec"
	"oasis/internal/value"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)

	cl, err := badge.NewSite("CL", clk, net)
	if err != nil {
		return err
	}
	parc, err := badge.NewSite("Parc", clk, net)
	if err != nil {
		return err
	}
	for i, s := range []*badge.Site{cl, parc} {
		s.AddSensor(fmt.Sprintf("s%d-T14", i), "T14")
		s.AddSensor(fmt.Sprintf("s%d-T15", i), "T15")
	}
	rjhBadge := badge.Badge{ID: "b12", Home: "CL"}
	if err := cl.RegisterBadge(rjhBadge, "rjh21"); err != nil {
		return err
	}

	// A composite-event monitor: Enters(B, R) per §6.6.
	enters := composite.MustParse(
		`$Seen(B, R2); Seen(B, R) - Seen(B, R2)`, composite.ParseOptions{})
	m := composite.NewMachine(enters, func(o composite.Occurrence) {
		fmt.Printf("ENTERS: badge %s entered %s\n", o.Env["B"].S, o.Env["R"].S)
	}, composite.MachineOptions{Sources: []string{"CL"}})
	m.Start(clk.Now(), value.Env{})

	sink := event.SinkFunc(func(n event.Notification) {
		// Every notification carries the source's event-horizon
		// timestamp, which lets the 'without' operator assume event
		// absence (§6.8.2); heartbeats carry nothing else.
		m.ProcessHorizon(n.Source, n.Horizon)
		if !n.Heartbeat {
			m.Process(n.Event)
		}
	})
	sess, err := cl.Broker().OpenSession(sink, nil)
	if err != nil {
		return err
	}
	if _, err := cl.Broker().Register(sess,
		event.NewTemplate(badge.EvSeen, event.Wildcard(), event.Wildcard())); err != nil {
		return err
	}

	move := func(s *badge.Site, sensor string) {
		clk.Advance(time.Second)
		s.Sight(rjhBadge, sensor)
	}
	move(cl, "s0-T14")
	move(cl, "s0-T14") // same room: no Enters
	move(cl, "s0-T15") // enters T15
	move(cl, "s0-T14") // enters T14

	// A heartbeat advances the horizon, releasing the last detection.
	clk.Advance(time.Second)
	cl.Broker().Heartbeat()

	// Inter-site movement: CL always knows where its badge is.
	move(parc, "s1-T14")
	loc, _ := cl.LocationOf("b12")
	fmt.Println("home site records location:", loc)

	// Event security: Parc exports its stream through a proxy applying
	// its policy: only a badge's owner may follow it remotely.
	pol := eventsec.MustParse(`allow Seen(b, room) to Owner(b)`)
	proxy, err := eventsec.NewProxy(parc.Broker(), pol)
	if err != nil {
		return err
	}
	remote := event.SinkFunc(func(n event.Notification) {
		if !n.Heartbeat {
			fmt.Printf("REMOTE (owner) sees: %v\n", n.Event)
		}
	})
	owner := eventsec.Subject{Roles: []eventsec.SubjectRole{
		{Name: "Owner", Args: []value.Value{value.Str("b12")}},
	}}
	if _, err := proxy.Subscribe(owner,
		event.NewTemplate(badge.EvSeen, event.Wildcard(), event.Wildcard()), remote); err != nil {
		return err
	}
	stranger := eventsec.Subject{Roles: []eventsec.SubjectRole{
		{Name: "Owner", Args: []value.Value{value.Str("b99")}},
	}}
	strangerSink := event.SinkFunc(func(n event.Notification) {
		fmt.Println("STRANGER sees:", n.Event) // must never print
	})
	if _, err := proxy.Subscribe(stranger,
		event.NewTemplate(badge.EvSeen, event.Wildcard(), event.Wildcard()), strangerSink); err != nil {
		return err
	}
	move(parc, "s1-T15")
	fmt.Println("proxy filtered instances:", proxy.Filtered())
	return nil
}
