// MSSA example: shared ACLs grouping files (figure 5.3), meta-access
// control, volatile-ACL revocation (§5.5.2), and the bypassing
// optimisation for a value-adding custode (figure 5.8).
package main

import (
	_ "embed"
	"fmt"
	"log"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/mssa"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// The rolefile lives beside this file so `rdlcheck Login.rdl` can
// analyze the deployed policy as-is.
//
//go:embed Login.rdl
var loginRolefile string

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)

	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		return err
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		return err
	}
	hosts := ids.NewHostAuthority("ws1", clk.Now())
	logOn := func(user string) (ids.ClientID, *cert.RMC, error) {
		c := hosts.NewDomain()
		rmc, err := login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{
				value.Object("Login.userid", user),
				value.Object("Login.host", "ws1"),
			},
		})
		return c, rmc, err
	}

	// A flat file custode with one shared ACL protecting many files.
	ffc, err := mssa.NewCustode("FFC", clk, net)
	if err != nil {
		return err
	}
	meta, err := ffc.CreateACL(mssa.MustParseACL("jo=rc"), mssa.FileID{})
	if err != nil {
		return err
	}
	project, err := ffc.CreateACL(mssa.MustParseACL("jo=rw bob=rw group:readers=r"), meta)
	if err != nil {
		return err
	}
	var files []mssa.FileID
	for i := 0; i < 10; i++ {
		id, err := ffc.Create([]byte(fmt.Sprintf("chapter %d", i)), project)
		if err != nil {
			return err
		}
		files = append(files, id)
	}
	fmt.Printf("files=%d shared ACL objects=%d\n", ffc.FileCount(), ffc.ACLCount())

	bobProc, bobLogin, err := logOn("bob")
	if err != nil {
		return err
	}
	bobCert, err := ffc.EnterUseAcl(bobProc, bobLogin, project)
	if err != nil {
		return err
	}
	fmt.Printf("bob's rights under %v: %s\n", project, bobCert.Args[0].Members())
	data, err := ffc.Read(bobProc, files[3], bobCert)
	fmt.Printf("bob reads %v: %q (err=%v)\n", files[3], data, err)

	// jo tightens the ACL: bob's outstanding certificate is revoked.
	joProc, joLogin, err := logOn("jo")
	if err != nil {
		return err
	}
	joMeta, err := ffc.EnterUseAcl(joProc, joLogin, meta)
	if err != nil {
		return err
	}
	if err := ffc.SetACL(joProc, project, joMeta, mssa.MustParseACL("jo=rw bob=r")); err != nil {
		return err
	}
	err = ffc.Write(bobProc, files[3], bobCert, []byte("edit"))
	fmt.Println("bob writes with the old certificate:", err)
	bobCert, err = ffc.EnterUseAcl(bobProc, bobLogin, project)
	if err != nil {
		return err
	}
	fmt.Printf("bob re-applies; new rights: %s\n", bobCert.Args[0].Members())

	// An indexed VAC over the FFC, with bypassed reads (figure 5.8).
	lowerACL, err := ffc.CreateACL(mssa.MustParseACL("iffc=rwxd"), mssa.FileID{})
	if err != nil {
		return err
	}
	vacProc, vacLogin, err := logOn("iffc")
	if err != nil {
		return err
	}
	lowerCert, err := ffc.EnterUseAcl(vacProc, vacLogin, lowerACL)
	if err != nil {
		return err
	}
	vac, err := mssa.NewVAC("IFFC", clk, net, ffc, vacProc, lowerCert, lowerACL)
	if err != nil {
		return err
	}
	vacACL, err := vac.CreateACL(mssa.MustParseACL("bob=r"), mssa.FileID{})
	if err != nil {
		return err
	}
	doc, err := vac.CreateIndexed([]byte("oasis secure interworking services"), vacACL)
	if err != nil {
		return err
	}
	bobVAC, err := vac.EnterUseAcl(bobProc, bobLogin, vacACL)
	if err != nil {
		return err
	}
	hits, _ := vac.LookupWord(bobProc, "secure", bobVAC)
	fmt.Println("index lookup 'secure':", hits)

	if err := vac.EnableBypass(doc, vacACL); err != nil {
		return err
	}
	lower, _ := vac.Backing(doc)
	before := net.Count("call:validate")
	for i := 0; i < 3; i++ {
		if _, err := ffc.ReadBypassed(bobProc, lower, bobVAC); err != nil {
			return err
		}
	}
	fmt.Printf("3 bypassed reads cost %d validation callback(s) (then cached)\n",
		net.Count("call:validate")-before)
	return nil
}
