// Golf club example (§3.4.5): joining requires recommendations from two
// *different* existing members — quorum delegation expressed directly
// in RDL via an intermediate Rec role and the constraint m1 != m2.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// The rolefiles live beside this file so `rdlcheck Login.rdl Golf.rdl`
// can analyze the deployed policy as-is.
//
//go:embed Golf.rdl
var golfRolefile string

//go:embed Login.rdl
var loginRolefile string

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)
	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		return err
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		return err
	}
	club, err := oasis.New("Golf", clk, net, oasis.Options{})
	if err != nil {
		return err
	}
	if err := club.AddRolefile("main", golfRolefile); err != nil {
		return err
	}
	club.Groups().AddMember("arnold", "founders")
	club.Groups().AddMember("gary", "founders")

	hosts := ids.NewHostAuthority("clubhouse", clk.Now())
	uid := func(u string) value.Value { return value.Object("Login.userid", u) }
	logOn := func(user string) (ids.ClientID, *cert.RMC, error) {
		c := hosts.NewDomain()
		rmc, err := login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{uid(user), value.Object("Login.host", "clubhouse")},
		})
		return c, rmc, err
	}

	join := func(user string) (ids.ClientID, *cert.RMC, error) {
		c, lg, err := logOn(user)
		if err != nil {
			return c, nil, err
		}
		m, err := club.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "Member",
			Args: []value.Value{uid(user)}, Creds: []*cert.RMC{lg},
		})
		return c, m, err
	}
	arnoldC, arnold, err := join("arnold")
	if err != nil {
		return err
	}
	garyC, gary, err := join("gary")
	if err != nil {
		return err
	}
	fmt.Println("founders joined:", arnold.Args[0].S, "and", gary.Args[0].S)

	// jack collects arnold's recommendation.
	jackC, jackLogin, err := logOn("jack")
	if err != nil {
		return err
	}
	rec1Deleg, _, err := club.Delegate(oasis.DelegateRequest{
		Client: arnoldC, Rolefile: "main", Role: "Rec",
		Args:        []value.Value{uid("jack"), uid("arnold")},
		ElectorCert: arnold,
	})
	if err != nil {
		return err
	}
	rec1, err := club.EnterDelegated(oasis.EnterRequest{
		Client: jackC, Rolefile: "main", Role: "Rec",
		Creds: []*cert.RMC{jackLogin}, Delegation: rec1Deleg,
	})
	if err != nil {
		return err
	}
	fmt.Println("jack recommended by arnold:", rec1.Args[1].S)

	// arnold alone cannot second his own recommendation.
	sameDeleg, _, err := club.Delegate(oasis.DelegateRequest{
		Client: arnoldC, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("jack")}, ElectorCert: arnold,
	})
	if err != nil {
		return err
	}
	_, err = club.EnterDelegated(oasis.EnterRequest{
		Client: jackC, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{jackLogin, rec1}, Delegation: sameDeleg,
	})
	fmt.Println("same member seconding twice:", err)

	// gary seconds: quorum met, jack joins.
	secondDeleg, _, err := club.Delegate(oasis.DelegateRequest{
		Client: garyC, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("jack")}, ElectorCert: gary,
	})
	if err != nil {
		return err
	}
	jackMember, err := club.EnterDelegated(oasis.EnterRequest{
		Client: jackC, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{jackLogin, rec1}, Delegation: secondDeleg,
	})
	if err != nil {
		return err
	}
	fmt.Println("jack joined:", club.Validate(jackMember, jackC) == nil)

	// If jack logs off, the starred recommendation chain collapses.
	if err := login.Exit(jackLogin, jackC); err != nil {
		return err
	}
	fmt.Println("after logout, jack still a member:",
		club.Validate(jackMember, jackC) == nil)
	return nil
}
