// Quickstart: the paper's running example end to end. A Login service
// names users; a Conference service defines Chair and Member roles over
// Login certificates (figure 3.1); the chair elects a member; logging
// off revokes the membership across services (figures 4.6 and 4.8).
package main

import (
	_ "embed"
	"fmt"
	"log"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// The rolefiles live beside this file so `rdlcheck Login.rdl Conf.rdl`
// can analyze the deployed policy as-is.
//
//go:embed Login.rdl
var loginRolefile string

//go:embed Conf.rdl
var confRolefile string

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)

	// The Login service: the bootstrap issuer of §4.12.
	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		return err
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		return err
	}

	// The Conference service, with the rolefile of figure 3.1.
	conf, err := oasis.New("Conf", clk, net, oasis.Options{})
	if err != nil {
		return err
	}
	if err := conf.AddRolefile("main", confRolefile); err != nil {
		return err
	}
	conf.Groups().AddMember("dm", "staff")

	// Two protection domains on two hosts.
	ely := ids.NewHostAuthority("ely", clk.Now())
	cam := ids.NewHostAuthority("cam", clk.Now())
	jmbProc := ely.NewDomain()
	dmProc := cam.NewDomain()

	logOn := func(c ids.ClientID, user string) (*cert.RMC, error) {
		return login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{
				value.Object("Login.userid", user),
				value.Object("Login.host", c.Host),
			},
		})
	}

	// jmb logs on and enters Chair.
	jmbLogin, err := logOn(jmbProc, "jmb")
	if err != nil {
		return err
	}
	chair, err := conf.Enter(oasis.EnterRequest{
		Client: jmbProc, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{jmbLogin},
	})
	if err != nil {
		return err
	}
	fmt.Println("jmb holds:", chair)

	// The chair elects dm: delegation certificate + revocation
	// certificate (figure 4.3), accepted by dm with his login.
	deleg, rev, err := conf.Delegate(oasis.DelegateRequest{
		Client: jmbProc, Rolefile: "main", Role: "Member",
		Args:        []value.Value{value.Object("Login.userid", "dm")},
		ElectorCert: chair,
	})
	if err != nil {
		return err
	}
	dmLogin, err := logOn(dmProc, "dm")
	if err != nil {
		return err
	}
	member, err := conf.EnterDelegated(oasis.EnterRequest{
		Client: dmProc, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{dmLogin}, Delegation: deleg,
	})
	if err != nil {
		return err
	}
	fmt.Println("dm holds: ", member)
	fmt.Println("member valid:", conf.Validate(member, dmProc) == nil)

	// dm logs off; the Modified event crosses from Login to Conf and the
	// membership is revoked — rapid, selective revocation (§4.14).
	if err := login.Exit(dmLogin, dmProc); err != nil {
		return err
	}
	fmt.Println("after logout, member valid:",
		conf.Validate(member, dmProc) == nil)

	// The chair could also have revoked explicitly:
	fmt.Println("revocation certificate held by chair:", rev != nil)

	audit := conf.AuditSnapshot()
	fmt.Printf("conf audit: issued=%d validated=%d revokedRejects=%d\n",
		audit.Issued, audit.Validated, audit.Revocation)
	return nil
}
