package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/gateway"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// TestQuickstartGateway is the quickstart scenario driven over real
// HTTP: oasisd-style deployment of the Login and Conference policies
// with a federation gateway in front of Conf. dm's membership arrives
// as an access token; when dm logs off at Login, the revocation
// cascades across services and the token introspects inactive — the
// curl session in docs/GATEWAY.md is this test.
func TestQuickstartGateway(t *testing.T) {
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net2 := bus.NewNetwork(clk)
	login, err := oasis.New("Login", clk, net2, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		t.Fatal(err)
	}
	conf, err := oasis.New("Conf", clk, net2, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conf.AddRolefile("main", confRolefile); err != nil {
		t.Fatal(err)
	}
	conf.Groups().AddMember("dm", "staff")

	gw := gateway.New(conf, gateway.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = gw.Serve(ln) }()
	defer func() { _ = ln.Close(); <-done }()
	base := "http://" + ln.Addr().String()

	post := func(path string, body, out any) int {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatalf("%s: undecodable response: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	// jmb chairs; the chair elects dm (figure 4.3).
	ely := ids.NewHostAuthority("ely", clk.Now())
	cam := ids.NewHostAuthority("cam", clk.Now())
	jmbProc, dmProc := ely.NewDomain(), cam.NewDomain()
	logOn := func(c ids.ClientID, user string) *cert.RMC {
		rmc, err := login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{
				value.Object("Login.userid", user),
				value.Object("Login.host", c.Host),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rmc
	}
	jmbLogin := logOn(jmbProc, "jmb")
	chair, err := conf.Enter(oasis.EnterRequest{
		Client: jmbProc, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{jmbLogin},
	})
	if err != nil {
		t.Fatal(err)
	}
	deleg, _, err := conf.Delegate(oasis.DelegateRequest{
		Client: jmbProc, Rolefile: "main", Role: "Member",
		Args:        []value.Value{value.Object("Login.userid", "dm")},
		ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}

	// dm accepts the election over HTTP: a Member access token.
	dmLogin := logOn(dmProc, "dm")
	var issued gateway.TokenResponse
	if code := post("/v1/token", gateway.TokenRequest{
		Client: dmProc, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{dmLogin}, Delegation: deleg,
	}, &issued); code != http.StatusOK {
		t.Fatalf("token issuance: status %d", code)
	}

	var in gateway.IntrospectResponse
	post("/v1/introspect", gateway.IntrospectRequest{Token: issued.Token}, &in)
	if !in.Active || in.Issuer != "Conf" {
		t.Fatalf("fresh membership token: %+v", in)
	}

	// dm logs off at Login — a different service than the gateway
	// fronts. The Modified event crosses the bus, Conf revokes the
	// membership, and the token is dead with no gateway involvement.
	if err := login.Exit(dmLogin, dmProc); err != nil {
		t.Fatal(err)
	}
	post("/v1/introspect", gateway.IntrospectRequest{Token: issued.Token}, &in)
	if in.Active {
		t.Fatal("token survived the cross-service logout cascade")
	}

	// The chair's explicit path still works over HTTP: re-elect, then
	// present the revocation certificate from the election (the
	// "revocation certificate held by chair" of the quickstart).
	deleg2, rev2, err := conf.Delegate(oasis.DelegateRequest{
		Client: jmbProc, Rolefile: "main", Role: "Member",
		Args:        []value.Value{value.Object("Login.userid", "dm")},
		ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	dmLogin2 := logOn(dmProc, "dm")
	var issued2 gateway.TokenResponse
	if code := post("/v1/token", gateway.TokenRequest{
		Client: dmProc, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{dmLogin2}, Delegation: deleg2,
	}, &issued2); code != http.StatusOK {
		t.Fatalf("re-issue: status %d", code)
	}
	var rres gateway.RevokeResponse
	if code := post("/v1/revoke", gateway.RevokeRequest{Revocation: rev2}, &rres); code != http.StatusOK || !rres.OK {
		t.Fatalf("chair revoke over HTTP: status %d ok=%v", code, rres.OK)
	}
	post("/v1/introspect", gateway.IntrospectRequest{Token: issued2.Token}, &in)
	if in.Active {
		t.Fatal("membership token survived the chair's revocation")
	}
}
