// E31: interpreted versus compiled RDL role entry. Each benchmark
// builds one of the example policies twice — once with the entry engine
// forced onto the tree-walking interpreter, once on the compiled
// execution plan (internal/rdl/compile.go) — and drives Enter on the
// hot path. Run with `-cpu 1,4,8` (make bench-rdl); EXPERIMENTS.md E31
// records the numbers.
package benchmarks

import (
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// rdlBenchWorld is one service under benchmark plus the pre-issued
// request that enters its hot role.
type rdlBenchWorld struct {
	svc *oasis.Service
	req oasis.EnterRequest
}

// newRDLLoginIssuer builds a Login service that accepts the LoggedOn
// claim and issues the foreign credential the policies consume.
func newRDLLoginIssuer(b *testing.B, clk *clock.Virtual, net *bus.Network) (*oasis.Service, *ids.HostAuthority) {
	b.Helper()
	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := login.AddRolefile("main", `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`); err != nil {
		b.Fatal(err)
	}
	return login, ids.NewHostAuthority("ely", clk.Now())
}

func rdlLogOn(b *testing.B, login *oasis.Service, host *ids.HostAuthority, user string) (ids.ClientID, *cert.RMC) {
	b.Helper()
	c := host.NewDomain()
	rmc, err := login.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", user),
			value.Object("Login.host", "ely"),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return c, rmc
}

// newGolfclubWorld reproduces examples/golfclub: Member(p) enters via a
// starred LoggedOn candidate under a starred founders-group test, with
// two election-form rules behind it in the dispatch order.
func newGolfclubWorld(b *testing.B, mode oasis.RDLMode) rdlBenchWorld {
	b.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	login, host := newRDLLoginIssuer(b, clk, net)
	club, err := oasis.New("Golf", clk, net, oasis.Options{RDLMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	if err := club.AddRolefile("main", `
def Member(p) p: Login.userid
Member(p)  <- Login.LoggedOn(p, h)* : (p in founders)*
Rec(p, m1) <- Login.LoggedOn(p, h)* <| Member(m1)
Member(p)  <- Rec(p, m1)* <| Member(m2) : m1 != m2
`); err != nil {
		b.Fatal(err)
	}
	club.Groups().AddMember("arnold", "founders")
	c, loggedOn := rdlLogOn(b, login, host, "arnold")
	return rdlBenchWorld{svc: club, req: oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{loggedOn},
	}}
}

// newQuickstartWorld reproduces examples/quickstart: Chair enters via a
// starred literal-argument candidate (figure 3.1).
func newQuickstartWorld(b *testing.B, mode oasis.RDLMode) rdlBenchWorld {
	b.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	login, host := newRDLLoginIssuer(b, clk, net)
	conf, err := oasis.New("Conf", clk, net, oasis.Options{RDLMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	if err := conf.AddRolefile("main", `
Chair     <- Login.LoggedOn("jmb", h)*
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
`); err != nil {
		b.Fatal(err)
	}
	c, loggedOn := rdlLogOn(b, login, host, "jmb")
	return rdlBenchWorld{svc: conf, req: oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{loggedOn},
	}}
}

// newLoginLevelsWorld reproduces examples/login: four Login levels
// dispatch in source order; the client's host is in hosts but not
// secure, so entry walks the level-3 rule's failing group test before
// settling on level 2 (§3.4.3).
func newLoginLevelsWorld(b *testing.B, mode oasis.RDLMode) rdlBenchWorld {
	b.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	pw, err := oasis.New("Pw", clk, net, oasis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := pw.AddRolefile("main", `
def Passwd(u, s) u: Login.userid s: string
Passwd(u, s) <-
`); err != nil {
		b.Fatal(err)
	}
	levels, err := oasis.New("Levels", clk, net, oasis.Options{RDLMode: mode})
	if err != nil {
		b.Fatal(err)
	}
	if err := levels.AddRolefile("main", `
def Login(l, u, h) l: integer u: Login.userid h: string
Login(3, u, @host) <- Pw.Passwd(u, "Login")* : @host in secure
Login(2, u, @host) <- Pw.Passwd(u, "Login")* : @host in hosts
Login(1, u, @host) <- Pw.Passwd(u, "Login")*
Login(0, u, @host) <-
`); err != nil {
		b.Fatal(err)
	}
	levels.Groups().AddMember("ely", "hosts")
	host := ids.NewHostAuthority("ely", clk.Now())
	c := host.NewDomain()
	passwd, err := pw.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "Passwd",
		Args: []value.Value{
			value.Object("Login.userid", "dm"),
			value.Str("Login"),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return rdlBenchWorld{svc: levels, req: oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "Login",
		Creds: []*cert.RMC{passwd},
	}}
}

// benchRDLEntry runs one policy's entry under both execution modes.
// b.RunParallel puts every core on the entry path, so -cpu 1,4,8 traces
// the scaling curve the E31 table records.
func benchRDLEntry(b *testing.B, build func(*testing.B, oasis.RDLMode) rdlBenchWorld) {
	for _, m := range []struct {
		name string
		mode oasis.RDLMode
	}{
		{"interpreter", oasis.RDLInterpreter},
		{"compiled", oasis.RDLCompiled},
	} {
		b.Run(m.name, func(b *testing.B) {
			w := build(b, m.mode)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := w.svc.Enter(w.req); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func BenchmarkRDLEntryGolfclub(b *testing.B) {
	benchRDLEntry(b, newGolfclubWorld)
}

func BenchmarkRDLEntryQuickstart(b *testing.B) {
	benchRDLEntry(b, newQuickstartWorld)
}

func BenchmarkRDLEntryLoginLevels(b *testing.B) {
	benchRDLEntry(b, newLoginLevelsWorld)
}
