// Package benchmarks contains the per-experiment benchmarks of
// DESIGN.md's experiment index. Each benchmark regenerates the shape of
// one of the paper's comparative claims; cmd/benchharness prints the
// corresponding tables. Absolute numbers differ from the 1996 testbed,
// but who wins — and by roughly what factor — should hold.
package benchmarks

import (
	"fmt"
	"testing"
	"time"

	"oasis/internal/baseline"
	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/composite"
	"oasis/internal/credrec"
	"oasis/internal/event"
	"oasis/internal/ids"
	"oasis/internal/mssa"
	"oasis/internal/oasis"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

// ---- E2: certificate validation and the signature-length trade-off ----

func benchRMC(sig cert.Signer) *cert.RMC {
	c := &cert.RMC{
		Service:  "Conf",
		Rolefile: "main",
		Roles:    cert.RoleSet(1),
		Args:     []value.Value{value.Object("Login.userid", "dm")},
		Client:   ids.ClientID{Host: "ely", ID: 1, BootTime: time.Unix(0, 0)},
		CRR:      credrec.Ref{Index: 1, Magic: 1},
	}
	c.Sign(sig)
	return c
}

func BenchmarkRMCVerifyShortSig(b *testing.B) {
	s := cert.NewHMACSigner([]byte("secret"), 4)
	c := benchRMC(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.Verify(s) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkRMCVerifyLongSig(b *testing.B) {
	s := cert.NewHMACSigner([]byte("secret"), 32)
	c := benchRMC(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.Verify(s) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkRMCVerifyRolling(b *testing.B) {
	// §5.5.1: the rolling table verifies against up to `keep` secrets.
	s := cert.NewRollingSigner([]byte("gen0"), 16, 4)
	c := benchRMC(s)
	s.Roll([]byte("gen1"))
	s.Roll([]byte("gen2"))
	s.Roll([]byte("gen3")) // cert now verifies against the oldest secret
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.Verify(s) {
			b.Fatal("verify failed")
		}
	}
}

// ---- E3: capability chaining vs credential records ----

func BenchmarkChainedCapabilityValidate(b *testing.B) {
	for _, depth := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s := baseline.NewChainService([]byte("k"))
			c := s.Issue("rw")
			for i := 1; i < depth; i++ {
				c = s.Delegate(c, "rw")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Validate(c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCredRecValidate(b *testing.B) {
	// The OASIS check is one record lookup regardless of how deep the
	// delegation graph is (§4.6).
	for _, depth := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			st := credrec.NewStore()
			ref := st.NewFact(credrec.True)
			for i := 1; i < depth; i++ {
				ref = st.NewDerived(credrec.OpAnd, credrec.Of(ref))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !st.Valid(ref) {
					b.Fatal("invalid")
				}
			}
		})
	}
}

func BenchmarkRevokeCascade(b *testing.B) {
	// Revocation cost grows with the number of dependants actually
	// severed (selective revocation, figure 4.5).
	for _, width := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("dependants=%d", width), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := credrec.NewStore()
				root := st.NewFact(credrec.True)
				for j := 0; j < width; j++ {
					st.NewDerived(credrec.OpAnd, credrec.Of(root))
				}
				b.StartTimer()
				if err := st.Invalidate(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E1/E4: role entry ----

type benchWorld struct {
	clk   *clock.Virtual
	net   *bus.Network
	login *oasis.Service
	conf  *oasis.Service
	host  *ids.HostAuthority
}

func newBenchWorld(b *testing.B) *benchWorld {
	b.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := login.AddRolefile("main", `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`); err != nil {
		b.Fatal(err)
	}
	conf, err := oasis.New("Conf", clk, net, oasis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if err := conf.AddRolefile("main", `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* : (u in staff)*
`); err != nil {
		b.Fatal(err)
	}
	conf.Groups().AddMember("dm", "staff")
	return &benchWorld{clk: clk, net: net, login: login, conf: conf,
		host: ids.NewHostAuthority("ely", clk.Now())}
}

func (w *benchWorld) logOn(b *testing.B, user string) (ids.ClientID, *cert.RMC) {
	b.Helper()
	c := w.host.NewDomain()
	rmc, err := w.login.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", user),
			value.Object("Login.host", "ely"),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return c, rmc
}

func BenchmarkRoleEntryLocalService(b *testing.B) {
	w := newBenchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := w.host.NewDomain()
		if _, err := w.login.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "LoggedOn",
			Args: []value.Value{
				value.Object("Login.userid", "dm"),
				value.Object("Login.host", "ely"),
			},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoleEntryWithForeignCredential(b *testing.B) {
	// Entry into Member: foreign validation callback, group record,
	// conjunction record, signing (figure 4.6 end to end).
	w := newBenchWorld(b)
	c, login := w.logOn(b, "dm")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.conf.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "Member",
			Creds: []*cert.RMC{login},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateRMC(b *testing.B) {
	// The per-request hot path: signature + one credential record.
	w := newBenchWorld(b)
	c, login := w.logOn(b, "dm")
	member, err := w.conf.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{login},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.conf.Validate(member, c); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E6: background traffic, event-driven vs refresh ----

func BenchmarkBackgroundTrafficRefresh(b *testing.B) {
	// Lease-based validity: one refresh per credential per period even
	// when nothing changes.
	clk := clock.NewVirtual(time.Unix(0, 0))
	svc := baseline.NewLeaseService(clk, 10*time.Second)
	const creds = 100
	leases := make([]*baseline.Lease, creds)
	for i := range leases {
		leases[i] = svc.Issue()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(8 * time.Second)
		for _, l := range leases {
			if err := svc.Refresh(l); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(svc.Refreshes)/float64(b.N), "msgs/period")
}

func BenchmarkBackgroundTrafficOasis(b *testing.B) {
	// Event-driven validity: with no revocations the steady state costs
	// only the heartbeat, independent of credential count (§4.14).
	clk := clock.NewVirtual(time.Unix(0, 0))
	broker := event.NewBroker("Login", clk, event.BrokerOptions{})
	n := 0
	sink := event.SinkFunc(func(event.Notification) { n++ })
	sess, err := broker.OpenSession(sink, nil)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := broker.Register(sess, event.NewTemplate("Oasis.Modified",
			event.Lit(value.Str(fmt.Sprintf("%x", i))), event.Wildcard(), event.Wildcard())); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.Advance(8 * time.Second)
		broker.Heartbeat()
	}
	b.ReportMetric(float64(n)/float64(b.N), "msgs/period")
}

// ---- E9: ACL evaluation ----

func BenchmarkACLEvaluate(b *testing.B) {
	acl := mssa.MustParseACL("rjh21=rwx group:staff=rx -group:students=w *=r")
	groups := func(u, g string) bool { return g == "staff" && u == "ann" }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := acl.Evaluate("ann", groups); got.Members() == "" {
			b.Fatal("no rights")
		}
	}
}

// ---- E10: VAC access paths ----

type vacBench struct {
	w       *benchWorld
	ffc     *mssa.Custode
	vac     *mssa.VAC
	client  ids.ClientID
	useVAC  *cert.RMC
	vacFile mssa.FileID
	lower   mssa.FileID
}

func newVACBench(b *testing.B) *vacBench {
	b.Helper()
	w := newBenchWorld(b)
	ffc, err := mssa.NewCustode("FFC", w.clk, w.net)
	if err != nil {
		b.Fatal(err)
	}
	lowerACL, err := ffc.CreateACL(mssa.MustParseACL("iffc=rwxd"), mssa.FileID{})
	if err != nil {
		b.Fatal(err)
	}
	vacSelf, vacLogin := w.logOn(b, "iffc")
	lowerCert, err := ffc.EnterUseAcl(vacSelf, vacLogin, lowerACL)
	if err != nil {
		b.Fatal(err)
	}
	vac, err := mssa.NewVAC("IFFC", w.clk, w.net, ffc, vacSelf, lowerCert, lowerACL)
	if err != nil {
		b.Fatal(err)
	}
	vacACL, err := vac.CreateACL(mssa.MustParseACL("alice=rw"), mssa.FileID{})
	if err != nil {
		b.Fatal(err)
	}
	vacFile, err := vac.CreateIndexed([]byte("benchmark data payload"), vacACL)
	if err != nil {
		b.Fatal(err)
	}
	if err := vac.EnableBypass(vacFile, vacACL); err != nil {
		b.Fatal(err)
	}
	client, clientLogin := w.logOn(b, "alice")
	useVAC, err := vac.EnterUseAcl(client, clientLogin, vacACL)
	if err != nil {
		b.Fatal(err)
	}
	lower, _ := vac.Backing(vacFile)
	return &vacBench{w: w, ffc: ffc, vac: vac, client: client,
		useVAC: useVAC, vacFile: vacFile, lower: lower}
}

func BenchmarkVACStacked(b *testing.B) {
	v := newVACBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.vac.Read(v.client, v.vacFile, v.useVAC); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVACBypassCached(b *testing.B) {
	v := newVACBench(b)
	// Prime the cache: the single callback of figure 5.8b.
	if _, err := v.ffc.ReadBypassed(v.client, v.lower, v.useVAC); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.ffc.ReadBypassed(v.client, v.lower, v.useVAC); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E13: broker dispatch ----

func BenchmarkBrokerSignal(b *testing.B) {
	for _, regs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("regs=%d", regs), func(b *testing.B) {
			clk := clock.NewVirtual(time.Unix(0, 0))
			broker := event.NewBroker("S", clk, event.BrokerOptions{})
			sink := event.SinkFunc(func(event.Notification) {})
			sess, err := broker.OpenSession(sink, nil)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < regs; i++ {
				if _, err := broker.Register(sess, event.NewTemplate("E",
					event.Lit(value.Int(int64(i))))); err != nil {
					b.Fatal(err)
				}
			}
			ev := event.New("E", value.Int(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				broker.Signal(ev)
			}
		})
	}
}

func BenchmarkTemplateMatch(b *testing.B) {
	tmpl := event.NewTemplate("Seen", event.Var("b"), event.Var("r"))
	ev := event.New("Seen", value.Str("badge12"), value.Str("T14"))
	env := value.Env{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := tmpl.Match(ev, env); !ok {
			b.Fatal("no match")
		}
	}
}

// ---- E14/E16: composite detection throughput ----

func BenchmarkBeadMachine(b *testing.B) {
	for _, badges := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("badges=%d", badges), func(b *testing.B) {
			n := composite.MustParse(`$Seen(B, R2); Seen(B, R) - Seen(B, R2)`, composite.ParseOptions{})
			m := composite.NewMachine(n, func(composite.Occurrence) {}, composite.MachineOptions{})
			t0 := time.Unix(0, 0)
			m.Start(t0, value.Env{})
			rooms := []string{"T14", "T15", "T16"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Process(event.Event{
					Name:   "Seen",
					Source: "s",
					Args: []value.Value{
						value.Str(fmt.Sprintf("b%d", i%badges)),
						value.Str(rooms[i%len(rooms)]),
					},
					Time: t0.Add(time.Duration(i+1) * time.Millisecond),
				})
			}
		})
	}
}

// ---- E5: cross-service revocation latency (messages, not wall time) ----

func BenchmarkCrossServiceRevocation(b *testing.B) {
	w := newBenchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, login := w.logOn(b, "dm")
		member, err := w.conf.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: "Member",
			Creds: []*cert.RMC{login},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		// Logout at Login; the Modified event revokes at Conf.
		if err := w.login.Exit(login, c); err != nil {
			b.Fatal(err)
		}
		if w.conf.Validate(member, c) == nil {
			b.Fatal("membership survived")
		}
	}
}

// ---- RDL front-end costs ----

func BenchmarkRDLParseAndCheck(b *testing.B) {
	src := `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
Level(3, u) <- Login.LoggedOn(u, h) : u in secure
Level(2, u) <- Login.LoggedOn(u, h) : u in hosts
Level(1, u) <- Login.LoggedOn(u, h)
`
	resolver := func(service, rolefile, role string) ([]value.Type, error) {
		return []value.Type{value.ObjectType("Login.userid"), value.ObjectType("Login.host")}, nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := rdl.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rdl.Check(f, resolver, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRDLConstraintEval(b *testing.B) {
	f, err := rdl.Parse(`R <- S : (u in staff)* and n < 100 and u != v`)
	if err != nil {
		b.Fatal(err)
	}
	expr := f.Rules[0].Constraint
	env := value.Env{}.
		Extend("u", value.Str("dm")).
		Extend("v", value.Str("kgm")).
		Extend("n", value.Int(42))
	groups := rdl.GroupOracleFunc(func(m value.Value, g string) bool { return m.S == "dm" })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := rdl.Eval(expr, rdl.EvalContext{Env: env, Groups: groups})
		if err != nil || !res.OK {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompositeParse(b *testing.B) {
	src := `$serve(s); (((floor | wall | hit(i)) - front) | ($hit(i); (floor | hit(j)) - front))`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := composite.Parse(src, composite.ParseOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
