package mssa

import (
	"testing"

	"oasis/internal/cert"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// TestMeetingMinutesPolicy realises §5.7's flagship sentence: "it is
// now possible to indicate explicitly that the members of a meeting are
// the only people who may read the file used to store the minutes."
// The custode's protection policy references the Conference service's
// roles directly; ejecting a member revokes their file access through
// cross-service event notification, with no ACL to forget to update.
func TestMeetingMinutesPolicy(t *testing.T) {
	h := newMSSAHarness(t)

	// The Conference service: the open-meeting rolefile of §3.3.2.
	conf, err := oasis.New("Conf", h.clk, h.net, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conf.AddRolefile("main", `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair : u in staff
`); err != nil {
		t.Fatal(err)
	}
	conf.Groups().AddMember("dm", "staff")

	// The storage custode, with a policy naming the conference roles.
	fc := h.custode("FFC")
	policy, err := fc.CreateProtectedPolicy(`
UseAcl({rw}) <- Conf.Chair*
UseAcl({r})  <- Conf.Member(u)*
`, FileID{})
	if err != nil {
		t.Fatal(err)
	}
	minutes, err := fc.Create([]byte("1. apologies\n2. matters arising"), policy)
	if err != nil {
		t.Fatal(err)
	}

	enterConf := func(host, user, role string) (ids.ClientID, *cert.RMC) {
		t.Helper()
		c, login := h.user(host, user)
		rmc, err := conf.Enter(oasis.EnterRequest{
			Client: c, Rolefile: "main", Role: role,
			Creds: []*cert.RMC{login},
		})
		if err != nil {
			t.Fatalf("enter %s as %s: %v", role, user, err)
		}
		return c, rmc
	}

	chairClient, chair := enterConf("hq", "jmb", "Chair")
	memberClient, member := enterConf("ely", "dm", "Member")

	// The chair gets read/write, the member read-only.
	chairUse, err := fc.EnterPolicy(chairClient, []*cert.RMC{chair}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if chairUse.Args[0].Members() != "rw" {
		t.Fatalf("chair rights = %q", chairUse.Args[0].Members())
	}
	memberUse, err := fc.EnterPolicy(memberClient, []*cert.RMC{member}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if memberUse.Args[0].Members() != "r" {
		t.Fatalf("member rights = %q", memberUse.Args[0].Members())
	}

	if err := fc.Write(chairClient, minutes, chairUse, []byte("minutes v2")); err != nil {
		t.Fatal(err)
	}
	data, err := fc.Read(memberClient, minutes, memberUse)
	if err != nil || string(data) != "minutes v2" {
		t.Fatalf("member read: %q, %v", data, err)
	}
	if err := fc.Write(memberClient, minutes, memberUse, nil); err == nil {
		t.Fatal("member wrote the minutes")
	}

	// A non-member cannot even obtain a certificate.
	outsider, outsiderLogin := h.user("cafe", "eve")
	if _, err := fc.EnterPolicy(outsider, []*cert.RMC{outsiderLogin}, policy); err == nil {
		t.Fatal("outsider obtained minutes access")
	}

	// The chair ejects dm from the meeting (role-based revocation at the
	// Conference); dm's storage certificate dies via the external record
	// — the ACL-update step that manual schemes forget simply does not
	// exist (§5.7).
	if err := conf.RevokeByRole(chair, chairClient, "main", "Member",
		[]value.Value{value.Object("Login.userid", "dm")}); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Read(memberClient, minutes, memberUse); err == nil {
		t.Fatal("ejected member still reads the minutes")
	}
	// The chair is unaffected.
	if _, err := fc.Read(chairClient, minutes, chairUse); err != nil {
		t.Fatalf("chair read after ejection: %v", err)
	}
}

// TestPolicyDelegationTemplateStillApplies: the merged policy template
// gives admins access and bounded per-file delegation even under a
// custom policy.
func TestPolicyDelegationTemplateStillApplies(t *testing.T) {
	h := newMSSAHarness(t)
	conf, err := oasis.New("Conf", h.clk, h.net, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := conf.AddRolefile("main", `Chair <- Login.LoggedOn("jmb", h)`); err != nil {
		t.Fatal(err)
	}
	fc := h.custode("FFC")
	policy, err := fc.CreateProtectedPolicy(`UseAcl({rw}) <- Conf.Chair*`, FileID{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fc.Create([]byte("x"), policy)
	if err != nil {
		t.Fatal(err)
	}

	// Admin template rule applies.
	fc.Service().Groups().AddMember("root", "mssa_admins")
	adm, admLogin := h.user("ops", "root")
	admUse, err := fc.EnterPolicy(adm, []*cert.RMC{admLogin}, policy)
	if err != nil {
		t.Fatal(err)
	}
	if admUse.Args[0].Members() != RightsUniverse {
		t.Fatalf("admin rights = %q", admUse.Args[0].Members())
	}

	// Per-file delegation from the chair, bounded by r <= rr.
	chairClient, chairLogin := h.user("hq", "jmb")
	chair, err := conf.Enter(oasis.EnterRequest{Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{chairLogin}})
	if err != nil {
		t.Fatal(err)
	}
	chairUse, err := fc.EnterPolicy(chairClient, []*cert.RMC{chair}, policy)
	if err != nil {
		t.Fatal(err)
	}
	deleg, _, err := fc.DelegateFile(chairClient, chairUse, f, "r")
	if err != nil {
		t.Fatal(err)
	}
	helper, _ := h.user("ely", "helper")
	helperUse, err := fc.Service().EnterDelegated(oasis.EnterRequest{
		Client: helper, Rolefile: chairUse.Rolefile, Role: "UseFile",
		Delegation: deleg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if data, err := fc.Read(helper, f, helperUse); err != nil || string(data) != "x" {
		t.Fatalf("delegated read: %q %v", data, err)
	}
}
