package mssa

import (
	"fmt"
	"strings"

	"oasis/internal/rdl"
	"oasis/internal/value"
)

// UnixACL evaluates a Unix-style access list of the form
// "rjh21=rwx staff=rx other=r": the first component is the owner, the
// second names a group, and "other" catches everyone else — the most
// closely binding entry applies (§3.3.3, [RT78]). Rights are over
// "rwx".
func UnixACL(spec, user string, inGroup func(user, group string) bool) (value.Value, error) {
	empty := value.Value{T: value.SetType("rwx")}
	var otherRights *value.Value
	var groupRights *value.Value
	for _, tok := range strings.Fields(spec) {
		subject, rights, ok := strings.Cut(tok, "=")
		if !ok {
			return empty, fmt.Errorf("mssa: bad unix acl entry %q", tok)
		}
		rights = strings.Map(func(r rune) rune {
			if r == '-' {
				return -1
			}
			return r
		}, rights)
		rv, err := value.Set("rwx", rights)
		if err != nil {
			return empty, err
		}
		switch {
		case subject == user:
			return rv, nil // owner entry binds most closely
		case subject == "other":
			otherRights = &rv
		default:
			if groupRights == nil && inGroup != nil && inGroup(user, subject) {
				groupRights = &rv
			}
		}
	}
	if groupRights != nil {
		return *groupRights, nil
	}
	if otherRights != nil {
		return *otherRights, nil
	}
	return empty, nil
}

// UnixACLFunc packages UnixACL as the RDL constraint function of §3.3.3
// ("r = unixacl(\"rjh21=rwx staff=rx other=r\", u)"), so legacy Unix
// policies can be expressed as RDL statements and reasoned about
// alongside OASIS services.
func UnixACLFunc(inGroup func(user, group string) bool) *rdl.Func {
	return &rdl.Func{
		Result: value.SetType("rwx"),
		Args:   []value.Type{value.StringType, value.ObjectType("Login.userid")},
		Fn: func(args []value.Value) (value.Value, error) {
			return UnixACL(args[0].S, args[1].S, inGroup)
		},
	}
}
