package mssa

import (
	"testing"
	"testing/quick"

	"oasis/internal/value"
)

func TestParseACL(t *testing.T) {
	acl, err := ParseACL("rjh21=rwx group:staff=rx -group:students=w *=r")
	if err != nil {
		t.Fatal(err)
	}
	if len(acl.Entries) != 4 {
		t.Fatalf("entries = %d", len(acl.Entries))
	}
	if !acl.Entries[2].Negative || acl.Entries[2].Subject != "group:students" {
		t.Fatalf("entry 2 = %+v", acl.Entries[2])
	}
	if acl.Entries[0].Rights.Members() != "rwx" {
		t.Fatalf("entry 0 rights = %q", acl.Entries[0].Rights.Members())
	}
}

func TestParseACLErrors(t *testing.T) {
	for _, src := range []string{"noequals", "=rw", "u=zz"} {
		if _, err := ParseACL(src); err == nil {
			t.Errorf("ParseACL(%q) succeeded", src)
		}
	}
}

func TestACLStringRoundTrip(t *testing.T) {
	src := "rjh21=rwx -group:students=w *=r"
	acl := MustParseACL(src)
	again, err := ParseACL(acl.String())
	if err != nil {
		t.Fatal(err)
	}
	if again.String() != acl.String() {
		t.Fatalf("round trip: %q vs %q", again.String(), acl.String())
	}
}

func staffGroups(u, g string) bool {
	return g == "staff" && (u == "bob" || u == "ann")
}

func TestEvaluateMostExpressiveCases(t *testing.T) {
	// §5.4.4's worked ambiguity: Bob(Read/Write), student(Read) — with
	// ordered entries there are no "difficult cases": Bob gets rw.
	acl := MustParseACL("bob=rw group:staff=r")
	if got := acl.Evaluate("bob", staffGroups).Members(); got != "rw" {
		t.Fatalf("bob = %q", got)
	}
	if got := acl.Evaluate("ann", staffGroups).Members(); got != "r" {
		t.Fatalf("ann = %q", got)
	}
	if got := acl.Evaluate("eve", staffGroups).Members(); got != "" {
		t.Fatalf("eve = %q", got)
	}
}

func TestEvaluateNegativeRestricts(t *testing.T) {
	// "Students may not have write access" is different from "students
	// may have (only) read access" (§5.4.4).
	students := func(u, g string) bool { return g == "students" && u == "sam" }
	acl := MustParseACL("-group:students=w *=rw")
	if got := acl.Evaluate("sam", students).Members(); got != "r" {
		t.Fatalf("student rights = %q, want r (write denied)", got)
	}
	if got := acl.Evaluate("prof", students).Members(); got != "rw" {
		t.Fatalf("prof rights = %q", got)
	}
}

func TestEvaluateOrderMatters(t *testing.T) {
	// A negative entry only restricts *later* grants.
	first := MustParseACL("-bob=w bob=rw")
	if got := first.Evaluate("bob", nil).Members(); got != "r" {
		t.Fatalf("deny-then-grant = %q", got)
	}
	second := MustParseACL("bob=rw -bob=w")
	if got := second.Evaluate("bob", nil).Members(); got != "rw" {
		t.Fatalf("grant-then-deny = %q (grants are not retracted)", got)
	}
}

func TestEvaluateEmptyACL(t *testing.T) {
	if got := (ACL{}).Evaluate("anyone", nil).Members(); got != "" {
		t.Fatalf("empty ACL grants %q", got)
	}
}

// Property: granted rights are always a subset of the union of positive
// entries matching the user, and never include a right denied by an
// earlier matching negative entry.
func TestQuickEvaluateSound(t *testing.T) {
	letters := []rune{'r', 'w', 'x', 'd', 'c'}
	f := func(entriesRaw []uint16, userPick bool) bool {
		user := "u1"
		if userPick {
			user = "u2"
		}
		var acl ACL
		for _, raw := range entriesRaw {
			var rights string
			for i, l := range letters {
				if raw&(1<<uint(i)) != 0 {
					rights += string(l)
				}
			}
			subj := "u1"
			if raw&(1<<6) != 0 {
				subj = "u2"
			}
			if raw&(1<<7) != 0 {
				subj = "*"
			}
			rv, err := value.Set(RightsUniverse, rights)
			if err != nil {
				return false
			}
			acl.Entries = append(acl.Entries, Entry{
				Negative: raw&(1<<8) != 0,
				Subject:  subj,
				Rights:   rv,
			})
		}
		got := acl.Evaluate(user, nil)

		// Oracle: re-run the G/P algorithm independently.
		var g, p uint64
		p = (1 << 5) - 1
		for _, e := range acl.Entries {
			if e.Subject != user && e.Subject != "*" {
				continue
			}
			if e.Negative {
				p &^= e.Rights.Set
			} else {
				g |= e.Rights.Set & p
			}
		}
		return got.Set == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
