package mssa

import (
	"fmt"
	"strings"

	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/value"

	"oasis/internal/bus"
)

// VAC is a value-adding custode (§5.2): it presents the standard file
// custode interface plus specialised operations (here: keyword lookup,
// making it the indexed flat file custode of figure 5.7), and is
// implemented by abstracting a custode below it. The two custodes are
// mutually distrustful; the VAC holds a single UseAcl certificate for
// the ACL protecting all of its backing files below (§5.5).
type VAC struct {
	*Custode
	below     *Custode
	self      ids.ClientID
	lowerCert *cert.RMC
	lowerACL  FileID // the ACL at the lower custode covering backing files

	backing map[uint64]FileID   // VAC file -> backing file below
	index   map[string][]FileID // keyword -> VAC files
}

// NewVAC creates a value-adding custode over `below`. self is the VAC's
// own protection domain; lowerCert its UseAcl certificate at the lower
// custode for lowerACL, which covers every backing file (§5.5: one
// certificate for the level below, not one per file).
func NewVAC(name string, clk clock.Clock, net *bus.Network, below *Custode, self ids.ClientID, lowerCert *cert.RMC, lowerACL FileID) (*VAC, error) {
	c, err := NewCustode(name, clk, net)
	if err != nil {
		return nil, err
	}
	return &VAC{
		Custode:   c,
		below:     below,
		self:      self,
		lowerCert: lowerCert,
		lowerACL:  lowerACL,
		backing:   make(map[uint64]FileID),
		index:     make(map[string][]FileID),
	}, nil
}

// CreateIndexed stores a file: the data lives in the lower custode, the
// VAC keeps the index entry and the access-control wrapper.
func (v *VAC) CreateIndexed(data []byte, protectedBy FileID) (FileID, error) {
	lower, err := v.below.Create(data, v.lowerACL)
	if err != nil {
		return FileID{}, err
	}
	id, err := v.Custode.Create(nil, protectedBy)
	if err != nil {
		return FileID{}, err
	}
	v.mu.Lock()
	v.backing[id.N] = lower
	for _, w := range strings.Fields(string(data)) {
		v.index[w] = append(v.index[w], id)
	}
	v.mu.Unlock()
	return id, nil
}

// Read is the unmodified pass-through operation of figure 5.7: validate
// at the VAC, then perform the corresponding read below using the VAC's
// own certificate (figure 5.6's access path).
func (v *VAC) Read(client ids.ClientID, id FileID, crt *cert.RMC) ([]byte, error) {
	f, err := v.lookup(id)
	if err != nil {
		return nil, err
	}
	if err := v.authorize(client, f, crt, 'r'); err != nil {
		return nil, err
	}
	v.mu.Lock()
	lower, ok := v.backing[id.N]
	v.mu.Unlock()
	if !ok {
		return nil, ErrNoFile
	}
	return v.below.Read(v.self, lower, v.lowerCert)
}

// LookupWord is the specialised operation the VAC adds: it cannot be
// bypassed, because the index lives here.
func (v *VAC) LookupWord(client ids.ClientID, word string, crt *cert.RMC) ([]FileID, error) {
	v.mu.Lock()
	hits := append([]FileID(nil), v.index[word]...)
	v.mu.Unlock()
	var out []FileID
	for _, id := range hits {
		f, err := v.lookup(id)
		if err != nil {
			continue
		}
		if v.authorize(client, f, crt, 'r') == nil {
			out = append(out, id)
		}
	}
	return out, nil
}

// Backing exposes the lower file id for a VAC file so a client may
// issue bypassed reads against the lower custode directly.
func (v *VAC) Backing(id FileID) (FileID, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	lower, ok := v.backing[id.N]
	return lower, ok
}

// EnableBypass registers the bypass route at the lower custode: clients
// holding a VAC certificate for aclFile may call the lower custode
// directly for the named file; the lower custode validates by callback
// to the VAC (figure 5.8).
func (v *VAC) EnableBypass(vacFile FileID, aclFile FileID) error {
	lower, ok := v.Backing(vacFile)
	if !ok {
		return ErrNoFile
	}
	v.below.GrantBypass(lower, v.Name(), rolefileID(aclFile.N))
	return nil
}

// ---- Bypassing support on the lower custode ----

// bypassGrant authorises direct calls for one file when the caller
// presents a certificate from the named top-level custode.
type bypassGrant struct {
	topService  string
	topRolefile string
}

// GrantBypass records that direct access to a file is governed by
// certificates of the given top-level service and rolefile.
func (c *Custode) GrantBypass(id FileID, topService, topRolefile string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bypass == nil {
		c.bypass = make(map[uint64]bypassGrant)
	}
	c.bypass[id.N] = bypassGrant{topService: topService, topRolefile: topRolefile}
}

// ReadBypassed serves a client read directly, validating the top-level
// certificate by callback to its issuer on first use and caching the
// check thereafter; event notification invalidates the cache when the
// credential changes, so a cached bypass is never a security hole
// (figure 5.8). Never less efficient than the full stack; much more
// efficient once cached (§5.6).
func (c *Custode) ReadBypassed(client ids.ClientID, id FileID, topCert *cert.RMC) ([]byte, error) {
	f, err := c.lookup(id)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	grant, ok := c.bypass[f.id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no bypass route for %v", ErrDenied, id)
	}
	if topCert.Service != grant.topService || topCert.Rolefile != grant.topRolefile {
		return nil, fmt.Errorf("%w: certificate is not from the governing custode", ErrDenied)
	}

	key := string(topCert.Sig) + "|" + client.String()
	c.mu.Lock()
	ext, cached := c.bypassCache[key]
	c.mu.Unlock()
	if !cached {
		// One callback to the top of the stack (figure 5.8b).
		ref, roles, err := c.svc.WatchCertificate(topCert, client)
		if err != nil {
			return nil, err
		}
		hasUseAcl := false
		for _, r := range roles {
			if r == "UseAcl" {
				hasUseAcl = true
			}
		}
		if !hasUseAcl {
			return nil, fmt.Errorf("%w: certificate carries no UseAcl role", ErrDenied)
		}
		c.mu.Lock()
		if c.bypassCache == nil {
			c.bypassCache = make(map[string]credrec.Ref)
		}
		c.bypassCache[key] = ref
		c.mu.Unlock()
		ext = ref
	}
	if !c.svc.Store().Valid(ext) {
		return nil, fmt.Errorf("%w: top-level certificate revoked", ErrDenied)
	}
	need := value.MustSet(RightsUniverse, "r")
	if ok, err := need.SubsetOf(topCert.Args[0]); err != nil || !ok {
		return nil, fmt.Errorf("%w: certificate conveys %q", ErrDenied, topCert.Args[0].Members())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), f.data...), nil
}

// BypassCacheLen reports cached bypass validations (benchmark support).
func (c *Custode) BypassCacheLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bypassCache)
}
