// Package mssa implements the Multi-Service Storage Architecture of
// chapter 5 of the paper — the case study that drove OASIS's design.
// It builds byte-segment and file custodes, value-adding custodes with
// the bypassing optimisation (§5.6), shared access control lists stored
// as files (§5.4), the ordered positive/negative ACL evaluation
// algorithm (§5.4.4), the same-custode placement constraint that bounds
// recursive ACL checks (§5.4.2), and volatile-ACL revocation through
// credential records (§5.5.2).
package mssa

import (
	"fmt"
	"strings"

	"oasis/internal/value"
)

// RightsUniverse is the standard MSSA rights alphabet: read, write,
// execute, delete, control (modify the ACL via meta-access).
const RightsUniverse = "rwxdc"

// Entry is one ordered ACL entry (§5.4.4). Negative entries restrict
// the rights later entries may grant; positive entries grant rights not
// already denied.
type Entry struct {
	Negative bool
	// Subject is a userid, "group:<name>", or "*" matching everyone.
	Subject string
	Rights  value.Value // set over RightsUniverse
}

// String renders the entry in the surface form used by ParseACL.
func (e Entry) String() string {
	sign := ""
	if e.Negative {
		sign = "-"
	}
	return fmt.Sprintf("%s%s=%s", sign, e.Subject, e.Rights.Members())
}

// ACL is an ordered access control list.
type ACL struct {
	Entries []Entry
}

// String renders the ACL.
func (a ACL) String() string {
	parts := make([]string, len(a.Entries))
	for i, e := range a.Entries {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// ParseACL parses "rjh21=rwx group:staff=rx -group:students=w *=r".
func ParseACL(src string) (ACL, error) {
	var acl ACL
	for _, tok := range strings.Fields(src) {
		neg := false
		if strings.HasPrefix(tok, "-") {
			neg = true
			tok = tok[1:]
		}
		subject, rights, ok := strings.Cut(tok, "=")
		if !ok || subject == "" {
			return ACL{}, fmt.Errorf("mssa: bad ACL entry %q", tok)
		}
		rv, err := value.Set(RightsUniverse, rights)
		if err != nil {
			return ACL{}, fmt.Errorf("mssa: entry %q: %v", tok, err)
		}
		acl.Entries = append(acl.Entries, Entry{Negative: neg, Subject: subject, Rights: rv})
	}
	return acl, nil
}

// MustParseACL panics on error; for static policy in tests and examples.
func MustParseACL(src string) ACL {
	a, err := ParseACL(src)
	if err != nil {
		panic(err)
	}
	return a
}

// GroupOracle answers user/group membership during ACL evaluation.
type GroupOracle func(user, group string) bool

// matches reports whether the entry applies to the user.
func (e Entry) matches(user string, groups GroupOracle) bool {
	switch {
	case e.Subject == "*":
		return true
	case strings.HasPrefix(e.Subject, "group:"):
		return groups != nil && groups(user, strings.TrimPrefix(e.Subject, "group:"))
	default:
		return e.Subject == user
	}
}

// Evaluate runs the algorithm of §5.4.4: two sets are kept, G (rights to
// be granted, initially empty) and P (possible rights, initially full).
// Each matching entry is consulted in order; a negative entry removes
// its rights from P, a positive entry grants R∩P. The result is G.
func (a ACL) Evaluate(user string, groups GroupOracle) value.Value {
	g := value.Value{T: value.SetType(RightsUniverse)} // G: empty
	p := value.MustSet(RightsUniverse, RightsUniverse) // P: full
	for _, e := range a.Entries {
		if !e.matches(user, groups) {
			continue
		}
		if e.Negative {
			p, _ = p.Minus(e.Rights)
			continue
		}
		grant, _ := e.Rights.Intersect(p)
		g, _ = g.Union(grant)
	}
	return g
}
