package mssa

import (
	"errors"
	"testing"

	"oasis/internal/cert"
	"oasis/internal/ids"
)

// vacHarness builds the figure 5.6 stack: an indexed flat file custode
// (the VAC) over a flat file custode.
type vacHarness struct {
	*mssaHarness
	ffc     *Custode
	vac     *VAC
	vacACL  FileID // ACL at the VAC protecting its files
	alice   ids.ClientID
	useVAC  *cert.RMC
	vacFile FileID
}

func newVACHarness(t *testing.T) *vacHarness {
	t.Helper()
	h := newMSSAHarness(t)
	ffc := h.custode("FFC")

	// The lower ACL grants the VAC's user full access to backing files.
	lowerACL, err := ffc.CreateACL(MustParseACL("iffc-daemon=rwxd"), FileID{})
	if err != nil {
		t.Fatal(err)
	}
	vacSelf, vacLogin := h.user("rack1", "iffc-daemon")
	lowerCert, err := ffc.EnterUseAcl(vacSelf, vacLogin, lowerACL)
	if err != nil {
		t.Fatal(err)
	}
	vac, err := NewVAC("IFFC", h.clk, h.net, ffc, vacSelf, lowerCert, lowerACL)
	if err != nil {
		t.Fatal(err)
	}
	vacACL, err := vac.CreateACL(MustParseACL("alice=rw *=r"), FileID{})
	if err != nil {
		t.Fatal(err)
	}
	vacFile, err := vac.CreateIndexed([]byte("the quick brown fox"), vacACL)
	if err != nil {
		t.Fatal(err)
	}
	alice, aliceLogin := h.user("desk", "alice")
	useVAC, err := vac.EnterUseAcl(alice, aliceLogin, vacACL)
	if err != nil {
		t.Fatal(err)
	}
	return &vacHarness{
		mssaHarness: h, ffc: ffc, vac: vac, vacACL: vacACL,
		alice: alice, useVAC: useVAC, vacFile: vacFile,
	}
}

func TestVACStackedRead(t *testing.T) {
	// Figure 5.6: client -> VAC -> lower custode, each hop checked.
	h := newVACHarness(t)
	data, err := h.vac.Read(h.alice, h.vacFile, h.useVAC)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "the quick brown fox" {
		t.Fatalf("data = %q", data)
	}
}

func TestVACSpecialisedLookup(t *testing.T) {
	// Figure 5.7: the IFFC adds Lookup; Read passes through.
	h := newVACHarness(t)
	hits, err := h.vac.LookupWord(h.alice, "quick", h.useVAC)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0] != h.vacFile {
		t.Fatalf("hits = %v", hits)
	}
	if hits, _ := h.vac.LookupWord(h.alice, "absent", h.useVAC); len(hits) != 0 {
		t.Fatalf("hits for absent word = %v", hits)
	}
}

func TestVACClientCannotTouchLowerDirectly(t *testing.T) {
	// The mutually-distrustful layering: the client's VAC certificate
	// means nothing at the lower custode without a bypass route.
	h := newVACHarness(t)
	lower, _ := h.vac.Backing(h.vacFile)
	if _, err := h.ffc.Read(h.alice, lower, h.useVAC); err == nil {
		t.Fatal("VAC certificate accepted by lower custode as UseAcl")
	}
}

func TestVACBypassedRead(t *testing.T) {
	// Figure 5.8: with a bypass route, the client calls the bottom
	// custode directly; the bottom validates by one callback to the top
	// and caches the check.
	h := newVACHarness(t)
	if err := h.vac.EnableBypass(h.vacFile, h.vacACL); err != nil {
		t.Fatal(err)
	}
	lower, _ := h.vac.Backing(h.vacFile)

	data, err := h.ffc.ReadBypassed(h.alice, lower, h.useVAC)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "the quick brown fox" {
		t.Fatalf("data = %q", data)
	}
	if h.ffc.BypassCacheLen() != 1 {
		t.Fatalf("cache = %d", h.ffc.BypassCacheLen())
	}
	// Second read hits the cache: no new validation callbacks.
	calls := h.net.Count("call:validate")
	if _, err := h.ffc.ReadBypassed(h.alice, lower, h.useVAC); err != nil {
		t.Fatal(err)
	}
	if got := h.net.Count("call:validate"); got != calls {
		t.Fatalf("cached bypass made %d extra validate calls", got-calls)
	}
}

func TestVACBypassRevocationPropagates(t *testing.T) {
	// Figure 5.8: if a credential changes, the bottom custode is told by
	// event notification — a cached bypass is not a loophole.
	h := newVACHarness(t)
	if err := h.vac.EnableBypass(h.vacFile, h.vacACL); err != nil {
		t.Fatal(err)
	}
	lower, _ := h.vac.Backing(h.vacFile)
	if _, err := h.ffc.ReadBypassed(h.alice, lower, h.useVAC); err != nil {
		t.Fatal(err)
	}
	// The VAC's ACL changes: top-level certificates are revoked; the
	// Modified event reaches the bottom custode's external record.
	h.vac.Service().Groups().AddMember("boss", "mssa_admins")
	boss, bossLogin := h.user("hq", "boss")
	bossCert, err := h.vac.EnterUseAcl(boss, bossLogin, h.vacACL)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.vac.SetACL(boss, h.vacACL, bossCert, MustParseACL("alice=")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ffc.ReadBypassed(h.alice, lower, h.useVAC); err == nil {
		t.Fatal("bypassed read succeeded after top-level revocation")
	}
}

func TestVACBypassRequiresRoute(t *testing.T) {
	h := newVACHarness(t)
	lower, _ := h.vac.Backing(h.vacFile)
	if _, err := h.ffc.ReadBypassed(h.alice, lower, h.useVAC); !errors.Is(err, ErrDenied) {
		t.Fatalf("bypass without route: %v", err)
	}
}

func TestVACBypassChecksRights(t *testing.T) {
	h := newVACHarness(t)
	if err := h.vac.EnableBypass(h.vacFile, h.vacACL); err != nil {
		t.Fatal(err)
	}
	lower, _ := h.vac.Backing(h.vacFile)
	// A certificate from a different custode is refused outright.
	otherACL, _ := h.ffc.CreateACL(MustParseACL("alice=rw"), FileID{})
	otherCert, err := h.ffc.EnterUseAcl(h.alice, mustLogin(t, h.mssaHarness, h.alice, "alice"), otherACL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.ffc.ReadBypassed(h.alice, lower, otherCert); !errors.Is(err, ErrDenied) {
		t.Fatalf("foreign certificate accepted on bypass: %v", err)
	}
}

// mustLogin re-issues a login certificate for an existing client.
func mustLogin(t *testing.T, h *mssaHarness, c ids.ClientID, user string) *cert.RMC {
	t.Helper()
	rmc, err := h.login.Enter(loginRequest(c, user))
	if err != nil {
		t.Fatal(err)
	}
	return rmc
}
