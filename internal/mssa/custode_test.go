package mssa

import (
	"errors"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/value"
)

// mssaHarness wires a Login service and one or more custodes.
type mssaHarness struct {
	clk   *clock.Virtual
	net   *bus.Network
	login *oasis.Service
	hosts map[string]*ids.HostAuthority
	t     *testing.T
}

func newMSSAHarness(t *testing.T) *mssaHarness {
	t.Helper()
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)
	login, err := oasis.New("Login", clk, net, oasis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`); err != nil {
		t.Fatal(err)
	}
	return &mssaHarness{clk: clk, net: net, login: login,
		hosts: make(map[string]*ids.HostAuthority), t: t}
}

func (h *mssaHarness) custode(name string) *Custode {
	h.t.Helper()
	c, err := NewCustode(name, h.clk, h.net)
	if err != nil {
		h.t.Fatal(err)
	}
	return c
}

// loginRequest builds the standard LoggedOn entry request for a client.
func loginRequest(c ids.ClientID, user string) oasis.EnterRequest {
	return oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", user),
			value.Object("Login.host", c.Host),
		},
	}
}

func (h *mssaHarness) user(host, user string) (ids.ClientID, *cert.RMC) {
	h.t.Helper()
	ha, ok := h.hosts[host]
	if !ok {
		ha = ids.NewHostAuthority(host, h.clk.Now())
		h.hosts[host] = ha
	}
	c := ha.NewDomain()
	rmc, err := h.login.Enter(oasis.EnterRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", user),
			value.Object("Login.host", host),
		},
	})
	if err != nil {
		h.t.Fatal(err)
	}
	return c, rmc
}

func TestSharedACLGrouping(t *testing.T) {
	// E7 / figure 5.2b: many files share one ACL object; one UseAcl
	// certificate covers them all.
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	acl, err := fc.CreateACL(MustParseACL("rjh21=rw *=r"), FileID{})
	if err != nil {
		t.Fatal(err)
	}
	var files []FileID
	for i := 0; i < 50; i++ {
		id, err := fc.Create([]byte("data"), acl)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, id)
	}
	if fc.ACLCount() != 1 || fc.FileCount() != 51 {
		t.Fatalf("acls=%d files=%d", fc.ACLCount(), fc.FileCount())
	}

	client, login := h.user("ely", "rjh21")
	useAcl, err := fc.EnterUseAcl(client, login, acl)
	if err != nil {
		t.Fatal(err)
	}
	if useAcl.Args[0].Members() != "rw" {
		t.Fatalf("rights = %q", useAcl.Args[0].Members())
	}
	for _, id := range files[:5] {
		if _, err := fc.Read(client, id, useAcl); err != nil {
			t.Fatalf("read %v: %v", id, err)
		}
		if err := fc.Write(client, id, useAcl, []byte("new")); err != nil {
			t.Fatalf("write %v: %v", id, err)
		}
	}

	// A read-only user may read but not write.
	other, otherLogin := h.user("cam", "guest")
	otherCert, err := fc.EnterUseAcl(other, otherLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Read(other, files[0], otherCert); err != nil {
		t.Fatalf("guest read: %v", err)
	}
	if err := fc.Write(other, files[0], otherCert, nil); !errors.Is(err, ErrDenied) {
		t.Fatalf("guest write: %v", err)
	}
}

func TestMetaAccessControl(t *testing.T) {
	// §5.3.2 / figure 5.3: the ACL is itself protected by an ACL; only
	// the controller may modify it, and control is finer than a root id.
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	metaACL, err := fc.CreateACL(MustParseACL("jo=rc"), FileID{})
	if err != nil {
		t.Fatal(err)
	}
	groupACL, err := fc.CreateACL(MustParseACL("jo=rw bob=rw"), metaACL)
	if err != nil {
		t.Fatal(err)
	}
	fileID, err := fc.Create([]byte("project"), groupACL)
	if err != nil {
		t.Fatal(err)
	}

	jo, joLogin := h.user("ely", "jo")
	joMeta, err := fc.EnterUseAcl(jo, joLogin, metaACL)
	if err != nil {
		t.Fatal(err)
	}
	// jo can read and rewrite the group ACL through the meta ACL.
	if _, err := fc.ReadACL(jo, groupACL, joMeta); err != nil {
		t.Fatalf("jo read ACL: %v", err)
	}
	if err := fc.SetACL(jo, groupACL, joMeta, MustParseACL("jo=rw ann=rw")); err != nil {
		t.Fatalf("jo set ACL: %v", err)
	}

	// bob — a member of the group ACL, but not of the meta ACL — cannot.
	bob, bobLogin := h.user("cam", "bob")
	bobUse, err := fc.EnterUseAcl(bob, bobLogin, groupACL)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.SetACL(bob, groupACL, bobUse, MustParseACL("bob=rwxdc")); err == nil {
		t.Fatal("non-controller modified the ACL")
	}
	_ = fileID
}

func TestVolatileACLRevocation(t *testing.T) {
	// E12 / §5.5.2: changing an ACL revokes certificates issued under
	// its old contents; clients transparently re-apply.
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	meta, _ := fc.CreateACL(MustParseACL("admin=rc"), FileID{})
	acl, err := fc.CreateACL(MustParseACL("bob=rw"), meta)
	if err != nil {
		t.Fatal(err)
	}
	fileID, _ := fc.Create([]byte("x"), acl)

	bob, bobLogin := h.user("ely", "bob")
	bobCert, err := fc.EnterUseAcl(bob, bobLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Read(bob, fileID, bobCert); err != nil {
		t.Fatal(err)
	}

	admin, adminLogin := h.user("ops", "admin")
	adminMeta, _ := fc.EnterUseAcl(admin, adminLogin, meta)
	if err := fc.SetACL(admin, acl, adminMeta, MustParseACL("bob=r")); err != nil {
		t.Fatal(err)
	}
	// The old certificate is revoked, not merely reinterpreted.
	if _, err := fc.Read(bob, fileID, bobCert); err == nil {
		t.Fatal("certificate issued under old ACL survived the change")
	}
	// Re-entry under the new ACL yields reduced rights.
	bobCert2, err := fc.EnterUseAcl(bob, bobLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	if bobCert2.Args[0].Members() != "r" {
		t.Fatalf("new rights = %q", bobCert2.Args[0].Members())
	}
	if err := fc.Write(bob, fileID, bobCert2, nil); !errors.Is(err, ErrDenied) {
		t.Fatalf("write under reduced rights: %v", err)
	}
}

func TestLogoutRevokesStorageAccess(t *testing.T) {
	// The starred LoggedOn candidate in the generated rolefile ties
	// storage certificates to the login session (chapter 5's point that
	// OASIS clarified how capabilities are gained and lost).
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	acl, _ := fc.CreateACL(MustParseACL("bob=rw"), FileID{})
	fileID, _ := fc.Create([]byte("x"), acl)
	bob, bobLogin := h.user("ely", "bob")
	bobCert, _ := fc.EnterUseAcl(bob, bobLogin, acl)
	if _, err := fc.Read(bob, fileID, bobCert); err != nil {
		t.Fatal(err)
	}
	if err := h.login.Exit(bobLogin, bob); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Read(bob, fileID, bobCert); err == nil {
		t.Fatal("storage certificate survived logout")
	}
}

func TestAdminTemplateRule(t *testing.T) {
	// §5.4.3: rolefiles merge standard statements allowing administrator
	// access — finer-grained than a root identifier.
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	fc.Service().Groups().AddMember("root-jo", "mssa_admins")
	acl, _ := fc.CreateACL(MustParseACL("bob=r"), FileID{})
	fileID, _ := fc.Create([]byte("x"), acl)
	adm, admLogin := h.user("ops", "root-jo")
	admCert, err := fc.EnterUseAcl(adm, admLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	if admCert.Args[0].Members() != RightsUniverse {
		t.Fatalf("admin rights = %q", admCert.Args[0].Members())
	}
	if err := fc.Write(adm, fileID, admCert, []byte("fixed")); err != nil {
		t.Fatal(err)
	}
	// Revoking admin group membership revokes the certificate (starred
	// candidate + group membership rule).
	fc.Service().Groups().RemoveMember("root-jo", "mssa_admins")
	if err := fc.Write(adm, fileID, admCert, nil); err == nil {
		t.Fatal("admin certificate survived group removal")
	}
}

func TestACLPlacementConstraint(t *testing.T) {
	// E8 / §5.4.2: the ACL protecting an ACL must reside in the same
	// custode; regular files may be protected by remote ACLs.
	h := newMSSAHarness(t)
	a := h.custode("A")
	b := h.custode("B")
	aclA, err := a.CreateACL(MustParseACL("bob=rw"), FileID{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.CreateACL(MustParseACL("x=r"), aclA); err == nil {
		t.Fatal("remote protecting ACL accepted for an ACL file")
	}
	// A regular file on B protected by A's ACL is fine.
	fileOnB, err := b.Create([]byte("remote-protected"), aclA)
	if err != nil {
		t.Fatal(err)
	}
	reg := map[string]*Custode{"A": a, "B": b}
	remote, err := b.ChainHops(fileOnB, reg)
	if err != nil {
		t.Fatal(err)
	}
	if remote != 1 {
		t.Fatalf("protection chain crossed %d custodes, want 1 (figure 5.5)", remote)
	}
}

func TestACLCycleTerminates(t *testing.T) {
	// Figure 5.5: a logical cycle between two (local) ACLs is legal and
	// checks terminate.
	h := newMSSAHarness(t)
	a := h.custode("A")
	acl1, err := a.CreateACL(MustParseACL("jo=rc"), FileID{})
	if err != nil {
		t.Fatal(err)
	}
	acl2, err := a.CreateACL(MustParseACL("jo=rc"), acl1)
	if err != nil {
		t.Fatal(err)
	}
	// Rewire acl1 to be protected by acl2: a 2-cycle. (Direct state
	// manipulation: the public API would require jo's certificate.)
	a.mu.Lock()
	a.files[acl1.N].protectedBy = acl2
	a.mu.Unlock()

	reg := map[string]*Custode{"A": a}
	remote, err := a.ChainHops(acl1, reg)
	if err != nil {
		t.Fatal(err)
	}
	if remote != 0 {
		t.Fatalf("cycle check left the custode %d times", remote)
	}
	// And access checks still work: jo can read acl1 via acl2.
	jo, joLogin := h.user("ely", "jo")
	joCert, err := a.EnterUseAcl(jo, joLogin, acl2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReadACL(jo, acl1, joCert); err != nil {
		t.Fatalf("cyclic meta-access: %v", err)
	}
}

func TestRemoteACLAccessAndRevocation(t *testing.T) {
	// A file on custode B protected by an ACL on custode A: B validates
	// the A-issued certificate with one remote call and tracks it with
	// an external record; revocation at A propagates to B (§4.9).
	h := newMSSAHarness(t)
	a := h.custode("A")
	b := h.custode("B")
	acl, _ := a.CreateACL(MustParseACL("bob=rw"), FileID{})
	fileOnB, _ := b.Create([]byte("x"), acl)

	bob, bobLogin := h.user("ely", "bob")
	bobCert, err := a.EnterUseAcl(bob, bobLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bob, fileOnB, bobCert); err != nil {
		t.Fatalf("remote-ACL read: %v", err)
	}
	if b.RemoteChecks() != 1 {
		t.Fatalf("remote checks = %d, want 1", b.RemoteChecks())
	}
	// Logout at Login revokes at A, which propagates to B's cache.
	if err := h.login.Exit(bobLogin, bob); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bob, fileOnB, bobCert); err == nil {
		t.Fatal("revoked remote certificate still accepted at B")
	}
}

func TestUseFileDelegation(t *testing.T) {
	// §5.4.3: a UseAcl holder delegates access to one file with reduced
	// rights; the delegate cannot exceed them or touch other files.
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	acl, _ := fc.CreateACL(MustParseACL("owner=rwxdc"), FileID{})
	f1, _ := fc.Create([]byte("one"), acl)
	f2, _ := fc.Create([]byte("two"), acl)

	owner, ownerLogin := h.user("ely", "owner")
	ownerCert, err := fc.EnterUseAcl(owner, ownerLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	deleg, rev, err := fc.DelegateFile(owner, ownerCert, f1, "r")
	if err != nil {
		t.Fatal(err)
	}
	helper, _ := h.user("cam", "helper")
	helperCert, err := fc.Service().EnterDelegated(oasis.EnterRequest{
		Client: helper, Rolefile: ownerCert.Rolefile, Role: "UseFile",
		Delegation: deleg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if data, err := fc.Read(helper, f1, helperCert); err != nil || string(data) != "one" {
		t.Fatalf("delegated read: %v %q", err, data)
	}
	if err := fc.Write(helper, f1, helperCert, nil); !errors.Is(err, ErrDenied) {
		t.Fatalf("delegated write beyond rights: %v", err)
	}
	if _, err := fc.Read(helper, f2, helperCert); !errors.Is(err, ErrDenied) {
		t.Fatalf("delegated certificate used on other file: %v", err)
	}
	// The owner revokes.
	if rev == nil {
		t.Fatal("no revocation certificate for starred delegation")
	}
	if err := fc.Service().Revoke(rev); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Read(helper, f1, helperCert); err == nil {
		t.Fatal("delegated access survived revocation")
	}
}

func TestDelegationCannotAmplifyRights(t *testing.T) {
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	acl, _ := fc.CreateACL(MustParseACL("reader=r"), FileID{})
	f1, _ := fc.Create([]byte("x"), acl)
	reader, readerLogin := h.user("ely", "reader")
	readerCert, err := fc.EnterUseAcl(reader, readerLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	deleg, _, err := fc.DelegateFile(reader, readerCert, f1, "rw")
	if err != nil {
		t.Fatal(err)
	}
	helper, _ := h.user("cam", "helper")
	if _, err := fc.Service().EnterDelegated(oasis.EnterRequest{
		Client: helper, Rolefile: readerCert.Rolefile, Role: "UseFile",
		Delegation: deleg,
	}); err == nil {
		t.Fatal("delegation amplified rights beyond the elector's (r <= rr violated)")
	}
}

func TestStructuredFiles(t *testing.T) {
	// §5.3.1: a structured file references files on other custodes.
	h := newMSSAHarness(t)
	a := h.custode("SFC")
	b := h.custode("FFC")
	aclA, _ := a.CreateACL(MustParseACL("u=rw"), FileID{})
	aclB, _ := b.CreateACL(MustParseACL("u=rw"), FileID{})
	part1, _ := b.Create([]byte("part-1"), aclB)
	part2, _ := b.Create([]byte("part-2"), aclB)
	doc, err := a.CreateStructured([]FileID{part1, part2}, aclA)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := a.References(doc)
	if err != nil || len(refs) != 2 {
		t.Fatalf("refs = %v, %v", refs, err)
	}
	u, uLogin := h.user("ely", "u")
	certB, _ := b.EnterUseAcl(u, uLogin, aclB)
	for _, r := range refs {
		if _, err := b.Read(u, r, certB); err != nil {
			t.Fatalf("read part %v: %v", r, err)
		}
	}
}

func TestDeleteRequiresRight(t *testing.T) {
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	acl, _ := fc.CreateACL(MustParseACL("bob=rwd ann=rw"), FileID{})
	f, _ := fc.Create([]byte("x"), acl)
	ann, annLogin := h.user("ely", "ann")
	annCert, _ := fc.EnterUseAcl(ann, annLogin, acl)
	if err := fc.Delete(ann, f, annCert); !errors.Is(err, ErrDenied) {
		t.Fatalf("delete without 'd': %v", err)
	}
	bob, bobLogin := h.user("cam", "bob")
	bobCert, _ := fc.EnterUseAcl(bob, bobLogin, acl)
	if err := fc.Delete(bob, f, bobCert); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Read(bob, f, bobCert); !errors.Is(err, ErrNoFile) {
		t.Fatalf("read after delete: %v", err)
	}
}

func TestCertificateForWrongACLRejected(t *testing.T) {
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	acl1, _ := fc.CreateACL(MustParseACL("bob=rw"), FileID{})
	acl2, _ := fc.CreateACL(MustParseACL("bob=rw"), FileID{})
	f2, _ := fc.Create([]byte("x"), acl2)
	bob, bobLogin := h.user("ely", "bob")
	cert1, _ := fc.EnterUseAcl(bob, bobLogin, acl1)
	if _, err := fc.Read(bob, f2, cert1); !errors.Is(err, ErrDenied) {
		t.Fatalf("certificate for acl1 accepted on acl2 file: %v", err)
	}
}
