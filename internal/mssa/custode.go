package mssa

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/oasis"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

// FileID names a file anywhere in the MSSA: files carry a machine
// oriented unique identifier that locates the custode responsible for
// them (§5.2).
type FileID struct {
	Custode string
	N       uint64
}

// IsZero reports an unset id.
func (f FileID) IsZero() bool { return f.Custode == "" && f.N == 0 }

// String renders the id.
func (f FileID) String() string { return fmt.Sprintf("%s/%d", f.Custode, f.N) }

// ErrNoFile is returned for unknown files.
var ErrNoFile = errors.New("mssa: no such file")

// ErrDenied is returned when a certificate lacks the required right.
var ErrDenied = errors.New("mssa: access denied")

// file is one stored object. An ACL file stores policy instead of (as
// well as) data; every file names the ACL file protecting it.
type file struct {
	id          uint64
	data        []byte
	isACL       bool
	acl         ACL
	aclCRR      credrec.Ref // validity of certificates issued under the current ACL contents (§5.5.2)
	protectedBy FileID
	refs        []FileID // structured-file references (§5.3.1)
	container   string   // accounting group (§5.3.1)
}

// Custode is an MSSA file custode: storage plus an embedded OASIS
// service that names its clients with per-ACL UseAcl / UseFile roles
// (§5.4.3). Byte-segment custodes are modelled by the in-memory data
// arrays; the access-control architecture above them is complete.
type Custode struct {
	name string
	clk  clock.Clock
	net  *bus.Network
	svc  *oasis.Service

	mu     sync.Mutex
	nextID uint64
	files  map[uint64]*file

	// hop accounting for the E8 placement-constraint experiment
	remoteChecks int

	// bypassing state (figure 5.8)
	bypass      map[uint64]bypassGrant
	bypassCache map[string]credrec.Ref
}

// loginService is the service name whose LoggedOn certificates identify
// users; the paper's examples use a central Login service.
const loginService = "Login"

// NewCustode creates a custode attached to the network.
func NewCustode(name string, clk clock.Clock, net *bus.Network) (*Custode, error) {
	return NewCustodeWith(name, clk, net, oasis.Options{})
}

// NewCustodeWith creates a custode whose embedded service starts from
// the given base options (heartbeat period, fail-safe budget, resync
// policy — the chaos suite tunes these). The custode's own constraint
// functions and ACL-version parents are merged on top.
func NewCustodeWith(name string, clk clock.Clock, net *bus.Network, base oasis.Options) (*Custode, error) {
	c := &Custode{
		name:  name,
		clk:   clk,
		net:   net,
		files: make(map[uint64]*file),
	}
	opts := base
	opts.Funcs = make(rdl.FuncTable, len(base.Funcs)+1)
	for k, v := range base.Funcs {
		opts.Funcs[k] = v
	}
	opts.Funcs["acl"] = &rdl.Func{
		Result: value.SetType(RightsUniverse),
		Args:   []value.Type{value.StringType, value.ObjectType("Login.userid")},
		Fn:     c.aclFunc,
	}
	opts.ExtraParents = c.extraParents
	svc, err := oasis.New(name, clk, net, opts)
	if err != nil {
		return nil, err
	}
	c.svc = svc
	return c, nil
}

// Name returns the custode name.
func (c *Custode) Name() string { return c.name }

// Service exposes the embedded OASIS service (for group management and
// direct validation in tests).
func (c *Custode) Service() *oasis.Service { return c.svc }

// aclFunc is the parametrised acl() constraint function of §3.3.3 /
// §5.4.4: acl("<n>", u) evaluates the stored ACL for user u.
func (c *Custode) aclFunc(args []value.Value) (value.Value, error) {
	n, err := strconv.ParseUint(args[0].S, 10, 64)
	if err != nil {
		return value.Value{}, fmt.Errorf("mssa: bad acl reference %q", args[0].S)
	}
	c.mu.Lock()
	f, ok := c.files[n]
	c.mu.Unlock()
	if !ok || !f.isACL {
		return value.Value{}, fmt.Errorf("mssa: %d is not an ACL file", n)
	}
	user := args[1].S
	groups := func(u, g string) bool { return c.svc.Groups().IsMember(u, g) }
	return f.acl.Evaluate(user, groups), nil
}

// extraParents ties every certificate issued under an ACL rolefile to
// that ACL's version record, so changing the ACL revokes outstanding
// certificates (§5.5.2).
func (c *Custode) extraParents(rolefile, role string, args []value.Value) []credrec.Parent {
	var n uint64
	if _, err := fmt.Sscanf(rolefile, "acl:%d", &n); err != nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[n]
	if !ok || !f.isACL {
		return nil
	}
	return []credrec.Parent{credrec.Of(f.aclCRR)}
}

// aclRolefile is the generated rolefile of §5.4.3: a simple ACL plus the
// policy template (admin access and restricted delegation of per-file
// rights). The ACL itself is consulted through the acl() function at
// entry time, so the rolefile never changes when the ACL does.
func aclRolefile(n uint64) string {
	ref := strconv.FormatUint(n, 10)
	return `
def UseAcl(r) r: {` + RightsUniverse + `}
def UseFile(f, r) f: string r: {` + RightsUniverse + `}
UseAcl({` + RightsUniverse + `}) <- ` + loginService + `.LoggedOn(u, h)* : (u in mssa_admins)*
UseAcl(r) <- ` + loginService + `.LoggedOn(u, h)* : r = acl("` + ref + `", u)
UseFile(f, r) <- <|* UseAcl(rr) : r <= rr
`
}

// rolefileID names the rolefile scope for an ACL file (§2.10: one
// rolefile per protection context).
func rolefileID(n uint64) string { return "acl:" + strconv.FormatUint(n, 10) }

// policyPrologue and policyEpilogue are the "policy template" of §5.4.3
// that every per-ACL rolefile — simple or full — is merged with: role
// declarations, the standard administrator statement, and restricted
// per-file delegation.
const policyPrologue = `
def UseAcl(r) r: {` + RightsUniverse + `}
def UseFile(f, r) f: string r: {` + RightsUniverse + `}
UseAcl({` + RightsUniverse + `}) <- ` + loginService + `.LoggedOn(u, h)* : (u in mssa_admins)*
`

const policyEpilogue = `
UseFile(f, r) <- <|* UseAcl(rr) : r <= rr
`

// CreateProtectedPolicy installs a *full* rolefile as the protection
// policy for a group of files (§5.4.3: "a simple ACL may be given
// instead of the full rolefile" — this is the full form). The policy
// defines entry to UseAcl in terms of any roles, local or foreign; it is
// merged with the standard template. The returned FileID is used as
// protectedBy for the files the policy governs, exactly like an ACL
// file. This realises §5.7's example: "the members of a meeting are the
// only people who may read the file used to store the minutes".
func (c *Custode) CreateProtectedPolicy(policy string, protectedBy FileID) (FileID, error) {
	if !protectedBy.IsZero() && protectedBy.Custode != c.name {
		return FileID{}, fmt.Errorf("mssa: the ACL file protecting a policy must reside in the same custode (§5.4.2)")
	}
	c.mu.Lock()
	c.nextID++
	n := c.nextID
	if protectedBy.IsZero() {
		protectedBy = FileID{Custode: c.name, N: n}
	}
	f := &file{
		id:          n,
		isACL:       true,
		data:        []byte(policy),
		aclCRR:      c.svc.Store().NewFact(credrec.True),
		protectedBy: protectedBy,
	}
	c.files[n] = f
	c.mu.Unlock()
	merged := policyPrologue + policy + policyEpilogue
	if err := c.svc.AddRolefile(rolefileID(n), merged); err != nil {
		return FileID{}, err
	}
	return FileID{Custode: c.name, N: n}, nil
}

// CreateACL stores an access control list as a file (§5.4.1). The
// protecting ACL must reside in this custode — the placement constraint
// of §5.4.2 that bounds recursive checks; protectedBy zero means the
// ACL protects itself (the bootstrap case of figure 5.3's root ACLs).
func (c *Custode) CreateACL(acl ACL, protectedBy FileID) (FileID, error) {
	if !protectedBy.IsZero() && protectedBy.Custode != c.name {
		return FileID{}, fmt.Errorf("mssa: the ACL file protecting an ACL file must reside in the same custode (§5.4.2); %v is remote", protectedBy)
	}
	c.mu.Lock()
	c.nextID++
	n := c.nextID
	if protectedBy.IsZero() {
		protectedBy = FileID{Custode: c.name, N: n} // self-protecting root
	} else if f, ok := c.files[protectedBy.N]; !ok || !f.isACL {
		c.mu.Unlock()
		return FileID{}, fmt.Errorf("mssa: %v is not an ACL file", protectedBy)
	}
	f := &file{
		id:          n,
		isACL:       true,
		acl:         acl,
		aclCRR:      c.svc.Store().NewFact(credrec.True),
		protectedBy: protectedBy,
	}
	c.files[n] = f
	c.mu.Unlock()
	if err := c.svc.AddRolefile(rolefileID(n), aclRolefile(n)); err != nil {
		return FileID{}, err
	}
	return FileID{Custode: c.name, N: n}, nil
}

// Create stores a regular file under the protection of an ACL file
// (which may live in another custode: files are grouped by shared ACL,
// not by location, §5.4).
func (c *Custode) Create(data []byte, protectedBy FileID) (FileID, error) {
	return c.CreateIn("", data, protectedBy)
}

// CreateIn stores a file in a named container. Containers group files
// purely for management and accounting (§5.3.1); under OASIS, grouping
// for access control is the orthogonal shared-ACL mechanism, so the
// overloading the original MSSA suffered from is gone (§5.3.1's
// critique of the original scheme).
func (c *Custode) CreateIn(container string, data []byte, protectedBy FileID) (FileID, error) {
	if protectedBy.IsZero() {
		return FileID{}, errors.New("mssa: a file must name its protecting ACL")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	c.files[c.nextID] = &file{
		id:          c.nextID,
		data:        append([]byte(nil), data...),
		protectedBy: protectedBy,
		container:   container,
	}
	return FileID{Custode: c.name, N: c.nextID}, nil
}

// Usage reports per-container accounting: file count and stored bytes.
func (c *Custode) Usage(container string) (files int, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.files {
		if f.container == container {
			files++
			bytes += len(f.data)
		}
	}
	return files, bytes
}

// CreateStructured stores a structured file referencing other files,
// possibly on other custodes (§5.3.1's compound documents).
func (c *Custode) CreateStructured(refs []FileID, protectedBy FileID) (FileID, error) {
	id, err := c.Create(nil, protectedBy)
	if err != nil {
		return FileID{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.files[id.N].refs = append([]FileID(nil), refs...)
	return id, nil
}

// References returns a structured file's references (no access check:
// callers check access to each referenced file as they follow it).
func (c *Custode) References(id FileID) ([]FileID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[id.N]
	if !ok || id.Custode != c.name {
		return nil, ErrNoFile
	}
	return append([]FileID(nil), f.refs...), nil
}

// EnterUseAcl obtains a UseAcl certificate for an ACL file from a Login
// credential (the client-facing entry RPC).
func (c *Custode) EnterUseAcl(client ids.ClientID, login *cert.RMC, aclFile FileID) (*cert.RMC, error) {
	return c.EnterPolicy(client, []*cert.RMC{login}, aclFile)
}

// EnterPolicy obtains a UseAcl certificate under an ACL file or custom
// policy, supplying arbitrary credentials — e.g. a conference Member
// certificate when the policy grants readers by meeting membership
// (§5.7).
func (c *Custode) EnterPolicy(client ids.ClientID, creds []*cert.RMC, aclFile FileID) (*cert.RMC, error) {
	if aclFile.Custode != c.name {
		return nil, fmt.Errorf("mssa: ACL %v is not managed by %s", aclFile, c.name)
	}
	return c.svc.Enter(oasis.EnterRequest{
		Client:   client,
		Rolefile: rolefileID(aclFile.N),
		Role:     "UseAcl",
		Creds:    creds,
	})
}

// DelegateFile lets a UseAcl holder delegate access to one file with
// (possibly reduced) rights — the UseFile role of §5.4.3.
func (c *Custode) DelegateFile(client ids.ClientID, useAcl *cert.RMC, fileID FileID, rights string) (*cert.Delegation, *cert.Revocation, error) {
	rv, err := value.Set(RightsUniverse, rights)
	if err != nil {
		return nil, nil, err
	}
	return c.svc.Delegate(oasis.DelegateRequest{
		Client:      client,
		Rolefile:    useAcl.Rolefile,
		Role:        "UseFile",
		Args:        []value.Value{value.Str(fileID.String()), rv},
		ElectorCert: useAcl,
	})
}

// authorize validates a certificate for an operation needing the given
// right on a file. The certificate may be a UseAcl for the protecting
// ACL (local or remote custode) or a UseFile naming this very file.
func (c *Custode) authorize(client ids.ClientID, f *file, crt *cert.RMC, right rune) error {
	need := value.MustSet(RightsUniverse, string(right))

	rightsOK := func(rv value.Value) error {
		if ok, err := need.SubsetOf(rv); err != nil || !ok {
			return fmt.Errorf("%w: need %q, certificate conveys %q", ErrDenied, string(right), rv.Members())
		}
		return nil
	}

	if crt.Service == c.name {
		if err := c.svc.Validate(crt, client); err != nil {
			return err
		}
		switch {
		case c.svc.HasRole(crt, crt.Rolefile, "UseAcl"):
			if crt.Rolefile != rolefileID(f.protectedBy.N) || f.protectedBy.Custode != c.name {
				return fmt.Errorf("%w: certificate is for a different ACL", ErrDenied)
			}
			return rightsOK(crt.Args[0])
		case c.svc.HasRole(crt, crt.Rolefile, "UseFile"):
			if crt.Args[0].S != (FileID{Custode: c.name, N: f.id}).String() {
				return fmt.Errorf("%w: UseFile certificate is for a different file", ErrDenied)
			}
			return rightsOK(crt.Args[1])
		default:
			return fmt.Errorf("%w: certificate carries no storage role", ErrDenied)
		}
	}

	// The protecting ACL lives in another custode: validate the UseAcl
	// certificate by a single remote call to its issuer — the most a
	// check can cost under the placement constraint (§5.4.2).
	if crt.Service != f.protectedBy.Custode || crt.Rolefile != rolefileID(f.protectedBy.N) {
		return fmt.Errorf("%w: certificate is for a different ACL", ErrDenied)
	}
	c.mu.Lock()
	c.remoteChecks++
	c.mu.Unlock()
	ext, _, err := c.svc.WatchCertificate(crt, client)
	if err != nil {
		return err
	}
	if !c.svc.Store().Valid(ext) {
		return fmt.Errorf("%w: remote certificate revoked", ErrDenied)
	}
	return rightsOK(crt.Args[0])
}

func (c *Custode) lookup(id FileID) (*file, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id.Custode != c.name {
		return nil, fmt.Errorf("mssa: %v is not managed by %s", id, c.name)
	}
	f, ok := c.files[id.N]
	if !ok {
		return nil, ErrNoFile
	}
	return f, nil
}

// Read returns file contents; requires the 'r' right.
func (c *Custode) Read(client ids.ClientID, id FileID, crt *cert.RMC) ([]byte, error) {
	f, err := c.lookup(id)
	if err != nil {
		return nil, err
	}
	if err := c.authorize(client, f, crt, 'r'); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), f.data...), nil
}

// Write replaces file contents; requires the 'w' right.
func (c *Custode) Write(client ids.ClientID, id FileID, crt *cert.RMC, data []byte) error {
	f, err := c.lookup(id)
	if err != nil {
		return err
	}
	if err := c.authorize(client, f, crt, 'w'); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f.data = append([]byte(nil), data...)
	return nil
}

// Delete removes a file; requires the 'd' right.
func (c *Custode) Delete(client ids.ClientID, id FileID, crt *cert.RMC) error {
	f, err := c.lookup(id)
	if err != nil {
		return err
	}
	if err := c.authorize(client, f, crt, 'd'); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.files, f.id)
	return nil
}

// ReadACL returns an ACL's entries; requires 'r' on the ACL file's own
// protecting ACL (meta-access control, §5.3.2 — the ACL is an object
// like any other, best protected by a second ACL).
func (c *Custode) ReadACL(client ids.ClientID, id FileID, crt *cert.RMC) (ACL, error) {
	f, err := c.lookup(id)
	if err != nil {
		return ACL{}, err
	}
	if !f.isACL {
		return ACL{}, fmt.Errorf("mssa: %v is not an ACL file", id)
	}
	if err := c.metaAuthorize(client, f, crt, 'r'); err != nil {
		return ACL{}, err
	}
	return f.acl, nil
}

// SetACL replaces an ACL's contents; requires the 'c' (control) right
// on the ACL protecting the ACL file. Outstanding certificates issued
// under the old contents are revoked through the version record
// (volatile ACLs, §5.5.2).
func (c *Custode) SetACL(client ids.ClientID, id FileID, crt *cert.RMC, acl ACL) error {
	f, err := c.lookup(id)
	if err != nil {
		return err
	}
	if !f.isACL {
		return fmt.Errorf("mssa: %v is not an ACL file", id)
	}
	if err := c.metaAuthorize(client, f, crt, 'c'); err != nil {
		return err
	}
	c.mu.Lock()
	old := f.aclCRR
	f.acl = acl
	f.aclCRR = c.svc.Store().NewFact(credrec.True)
	c.mu.Unlock()
	return c.svc.Store().Invalidate(old)
}

// metaAuthorize checks a right on an ACL file: an ACL is an object like
// any other, protected by the ACL it names — which is local by the
// placement constraint, so this check never leaves the custode
// (figure 5.5).
func (c *Custode) metaAuthorize(client ids.ClientID, f *file, crt *cert.RMC, right rune) error {
	return c.authorize(client, f, crt, right)
}

// ChainHops walks a file's protection chain (file → ACL → ACL's ACL …),
// returning how many remote custodes were consulted and whether the
// walk terminated. With the placement constraint, at most one remote
// custode is ever involved and cycles (which are legal: two ACLs may
// protect each other, figure 5.5) terminate immediately (E8).
func (c *Custode) ChainHops(id FileID, reg map[string]*Custode) (remote int, err error) {
	visited := make(map[FileID]bool)
	cur := id
	curCustode := c
	for {
		if visited[cur] {
			return remote, nil // cycle: already checked, terminate
		}
		visited[cur] = true
		f, err := curCustode.lookup(cur)
		if err != nil {
			return remote, err
		}
		next := f.protectedBy
		if next == cur {
			return remote, nil // self-protecting root
		}
		if next.Custode != curCustode.name {
			remote++
			nc, ok := reg[next.Custode]
			if !ok {
				return remote, fmt.Errorf("mssa: unknown custode %s", next.Custode)
			}
			curCustode = nc
		}
		cur = next
	}
}

// RemoteChecks reports how many access checks required a remote call.
func (c *Custode) RemoteChecks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.remoteChecks
}

// FileCount reports stored files (ACLs included).
func (c *Custode) FileCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.files)
}

// ACLCount reports stored ACL files — the experiment E7 measure: far
// fewer ACL objects than files.
func (c *Custode) ACLCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, f := range c.files {
		if f.isACL {
			n++
		}
	}
	return n
}
