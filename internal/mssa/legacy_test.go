package mssa

import (
	"testing"

	"oasis/internal/cert"
	"oasis/internal/oasis"
	"oasis/internal/rdl"
)

func TestUnixACLSemantics(t *testing.T) {
	inGroup := func(u, g string) bool { return g == "staff" && u == "ann" }
	cases := []struct {
		user string
		want string
	}{
		{"rjh21", "rwx"}, // owner entry binds most closely
		{"ann", "rx"},    // group entry
		{"eve", "r"},     // other
	}
	for _, c := range cases {
		got, err := UnixACL("rjh21=rwx staff=rx other=r", c.user, inGroup)
		if err != nil {
			t.Fatal(err)
		}
		if got.Members() != c.want {
			t.Errorf("UnixACL(%s) = %q, want %q", c.user, got.Members(), c.want)
		}
	}
}

func TestUnixACLDashesAndErrors(t *testing.T) {
	got, err := UnixACL("rjh21=r-x other=---", "rjh21", nil)
	if err != nil || got.Members() != "rx" {
		t.Fatalf("dashes: %v %v", got, err)
	}
	other, err := UnixACL("rjh21=r-x other=---", "guest", nil)
	if err != nil || other.Members() != "" {
		t.Fatalf("empty other: %v %v", other, err)
	}
	if _, err := UnixACL("malformed", "x", nil); err == nil {
		t.Fatal("malformed entry accepted")
	}
	if _, err := UnixACL("u=zz", "x", nil); err == nil {
		t.Fatal("bad rights accepted")
	}
	// Owner with no entries at all: empty rights, no error.
	none, err := UnixACL("", "x", nil)
	if err != nil || none.Members() != "" {
		t.Fatalf("empty spec: %v %v", none, err)
	}
}

func TestUnixACLInRDLRolefile(t *testing.T) {
	// §3.3.3's exact expression: a legacy Unix ACL embedded in an RDL
	// rolefile, interworking with OASIS naming.
	h := newMSSAHarness(t)
	legacy, err := oasis.New("NFS", h.clk, h.net, oasis.Options{
		Funcs: rdl.FuncTable{
			"unixacl": UnixACLFunc(func(u, g string) bool { return g == "staff" && u == "ann" }),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.AddRolefile("main",
		`UseFile(r) <- Login.LoggedOn(u, h)* : r = unixacl("rjh21=rwx staff=rx other=r", u)`); err != nil {
		t.Fatal(err)
	}
	client, login := h.user("ely", "ann")
	rmc, err := legacy.Enter(oasis.EnterRequest{
		Client: client, Rolefile: "main", Role: "UseFile",
		Creds: []*cert.RMC{login},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rmc.Args[0].Members() != "rx" {
		t.Fatalf("ann's legacy rights = %q", rmc.Args[0].Members())
	}
}

func TestContainerAccounting(t *testing.T) {
	// §5.3.1: containers group files for accounting; access-control
	// grouping (shared ACLs) is orthogonal — here two containers share
	// one ACL.
	h := newMSSAHarness(t)
	fc := h.custode("FFC")
	acl, err := fc.CreateACL(MustParseACL("u=rw"), FileID{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fc.CreateIn("projA", make([]byte, 100), acl); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.CreateIn("projA", make([]byte, 50), acl); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.CreateIn("projB", make([]byte, 10), acl); err != nil {
		t.Fatal(err)
	}
	files, bytes := fc.Usage("projA")
	if files != 2 || bytes != 150 {
		t.Fatalf("projA usage = %d files, %d bytes", files, bytes)
	}
	files, bytes = fc.Usage("projB")
	if files != 1 || bytes != 10 {
		t.Fatalf("projB usage = %d files, %d bytes", files, bytes)
	}
	// One certificate still covers both containers' files (orthogonal
	// grouping).
	u, uLogin := h.user("ely", "u")
	c, err := fc.EnterUseAcl(u, uLogin, acl)
	if err != nil {
		t.Fatal(err)
	}
	if c.Args[0].Members() != "rw" {
		t.Fatalf("rights = %q", c.Args[0].Members())
	}
}
