package eventsec

import (
	"fmt"
	"sync"

	"oasis/internal/event"
)

// Proxy enforces a site's local policy on its exported event stream
// (figure 7.3): remote clients subscribe through the proxy, which holds
// a trusted local session on the site's broker and filters each
// instance against the exporting site's policy using the remote
// subscriber's credentials. The remote site's own infrastructure never
// needs to be trusted with unfiltered events.
type Proxy struct {
	pol    *Policy
	broker *event.Broker

	mu      sync.Mutex
	subs    map[uint64]*proxySub
	nextSub uint64
	sess    uint64
	// Filtered counts instances suppressed by policy (for tests and the
	// E21 experiment report).
	filtered int
}

type proxySub struct {
	subject Subject
	tmpl    event.Template
	sink    event.Sink
}

// NewProxy attaches a proxy to a broker under the given policy. The
// proxy's own session is unrestricted (it is part of the site's trusted
// base); filtering happens per remote subscriber.
func NewProxy(broker *event.Broker, pol *Policy) (*Proxy, error) {
	p := &Proxy{pol: pol, broker: broker, subs: make(map[uint64]*proxySub)}
	sess, err := broker.OpenSession(event.SinkFunc(p.deliver), nil)
	if err != nil {
		return nil, err
	}
	p.sess = sess
	return p, nil
}

// Subscribe registers a remote client. Admission control applies the
// policy's registration-time check; the returned id cancels the
// subscription.
func (p *Proxy) Subscribe(sub Subject, tmpl event.Template, sink event.Sink) (uint64, error) {
	if !p.pol.Admit(sub, tmpl) {
		return 0, fmt.Errorf("eventsec: policy admits no %s events for this subject", tmpl.Name)
	}
	p.mu.Lock()
	needReg := len(p.subs) == 0 || !p.hasTemplateLocked(tmpl)
	p.nextSub++
	id := p.nextSub
	p.subs[id] = &proxySub{subject: sub, tmpl: tmpl, sink: sink}
	p.mu.Unlock()
	if needReg {
		if _, err := p.broker.Register(p.sess, event.Template{Name: tmpl.Name,
			Params: wildcards(len(tmpl.Params))}); err != nil {
			return 0, err
		}
	}
	return id, nil
}

func wildcards(n int) []event.Param {
	out := make([]event.Param, n)
	for i := range out {
		out[i] = event.Wildcard()
	}
	return out
}

func (p *Proxy) hasTemplateLocked(tmpl event.Template) bool {
	for _, s := range p.subs {
		if s.tmpl.Name == tmpl.Name {
			return true
		}
	}
	return false
}

// Unsubscribe cancels a subscription.
func (p *Proxy) Unsubscribe(id uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.subs, id)
}

// deliver fans a locally received instance out to remote subscribers,
// filtering per subscriber.
func (p *Proxy) deliver(n event.Notification) {
	if n.Heartbeat {
		// Heartbeats are forwarded to everyone: liveness is not secret.
		p.mu.Lock()
		sinks := make([]event.Sink, 0, len(p.subs))
		for _, s := range p.subs {
			sinks = append(sinks, s.sink)
		}
		p.mu.Unlock()
		for _, s := range sinks {
			s.Deliver(n)
		}
		return
	}
	p.mu.Lock()
	type out struct {
		sink event.Sink
		n    event.Notification
	}
	var outs []out
	for id, s := range p.subs {
		if !s.tmpl.Matches(n.Event) {
			continue
		}
		if !p.pol.Visible(s.subject, n.Event) {
			p.filtered++
			continue
		}
		fn := n
		fn.RegID = id
		outs = append(outs, out{s.sink, fn})
	}
	p.mu.Unlock()
	for _, o := range outs {
		o.sink.Deliver(o.n)
	}
}

// Filtered reports how many instances policy suppressed.
func (p *Proxy) Filtered() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.filtered
}
