// Package eventsec implements access control for event management —
// chapter 7 of the paper. Event notification inverts the usual
// client-request model (§7.2): the service pushes information, so
// policy must control which clients may *receive* which event
// instances. Policy is written in ERDL, an RDL-derived language of
// ordered allow/deny statements (§7.3):
//
//	allow Seen(b, room) to LoggedOn(u) : u = owner(b)
//	allow Seen(b, room) to Manager(u)
//	deny  Seen(b, room) to Visitor(u)
//	allow MovedSite(b, o, n) to Admin(u)
//
// Enforcement happens at two points (§7.4): admission control when a
// client registers (could any rule ever deliver a matching instance to
// this client?) and per-instance visibility filtering at notification
// time. Exported event streams are guarded by a Proxy that applies the
// exporting site's policy to remote subscribers (figure 7.3).
package eventsec

import (
	"fmt"
	"strings"

	"oasis/internal/event"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

// Rule is one ERDL statement: event template, subject role, optional
// constraint. Rules are ordered; the first rule matching both the
// instance and one of the subject's roles decides (default deny).
type Rule struct {
	Allow      bool
	Event      rdl.RoleRef
	Role       rdl.RoleRef
	Constraint rdl.Expr
	Line       int
}

// String renders the rule.
func (r Rule) String() string {
	kw := "deny"
	if r.Allow {
		kw = "allow"
	}
	s := kw + " " + r.Event.String() + " to " + r.Role.String()
	if r.Constraint != nil {
		s += " : " + r.Constraint.String()
	}
	return s
}

// Policy is a compiled ERDL policy.
type Policy struct {
	Rules  []Rule
	Funcs  rdl.FuncTable
	Groups rdl.GroupOracle
}

// SubjectRole is one role a subscribing client holds, as certified by
// its role membership certificate.
type SubjectRole struct {
	Name string
	Args []value.Value
}

// Subject is the credential set a client presented at registration.
type Subject struct {
	Roles []SubjectRole
}

// Parse compiles ERDL source: one statement per line, '#' comments.
// Each statement is rewritten to an RDL entry statement ("EV <- ROLE")
// and parsed with the RDL grammar — the preprocessing stage of
// figure 7.1.
func Parse(src string) (*Policy, error) {
	p := &Policy{}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kw, rest, ok := strings.Cut(line, " ")
		if !ok || (kw != "allow" && kw != "deny") {
			return nil, fmt.Errorf("eventsec: line %d: expected 'allow' or 'deny'", lineNo+1)
		}
		// "EV(...) to ROLE(...) [: C]"  ->  "EV(...) <- ROLE(...) [: C]"
		stmt := strings.Replace(rest, " to ", " <- ", 1)
		if stmt == rest {
			return nil, fmt.Errorf("eventsec: line %d: missing 'to'", lineNo+1)
		}
		file, err := rdl.Parse(stmt)
		if err != nil {
			return nil, fmt.Errorf("eventsec: line %d: %v", lineNo+1, err)
		}
		if len(file.Rules) != 1 || len(file.Rules[0].Candidates) != 1 {
			return nil, fmt.Errorf("eventsec: line %d: expected one event and one role", lineNo+1)
		}
		r := file.Rules[0]
		p.Rules = append(p.Rules, Rule{
			Allow:      kw == "allow",
			Event:      r.Head,
			Role:       r.Candidates[0],
			Constraint: r.Constraint,
			Line:       lineNo + 1,
		})
	}
	return p, nil
}

// Check is the second preprocessing stage of figure 7.1: the parsed
// policy is validated against the service's event schema and the role
// signatures it may be asked about (name → arity). Unknown event types,
// unknown roles and arity mismatches are configuration errors better
// caught at load time than silently never matching.
func (p *Policy) Check(events map[string]int, roles map[string]int) error {
	for _, r := range p.Rules {
		if n, ok := events[r.Event.Name]; !ok {
			return fmt.Errorf("eventsec: line %d: unknown event type %s", r.Line, r.Event.Name)
		} else if n != len(r.Event.Args) {
			return fmt.Errorf("eventsec: line %d: event %s takes %d parameters, rule uses %d",
				r.Line, r.Event.Name, n, len(r.Event.Args))
		}
		if n, ok := roles[r.Role.Name]; !ok {
			return fmt.Errorf("eventsec: line %d: unknown role %s", r.Line, r.Role.Name)
		} else if n != len(r.Role.Args) {
			return fmt.Errorf("eventsec: line %d: role %s takes %d parameters, rule uses %d",
				r.Line, r.Role.Name, n, len(r.Role.Args))
		}
	}
	return nil
}

// MustParse panics on error.
func MustParse(src string) *Policy {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// matchTerms unifies rule terms against concrete values, extending env.
// Literals compare structurally (string literals match both strings and
// object identifiers, as in certificate argument marshalling).
func matchTerms(terms []rdl.Term, vals []value.Value, env value.Env) (value.Env, bool) {
	if len(terms) != len(vals) {
		return nil, false
	}
	out := env
	for i, t := range terms {
		v := vals[i]
		switch {
		case t.Var != "":
			if bound, ok := out[t.Var]; ok {
				if !bound.Equal(v) && !looseEqual(bound, v) {
					return nil, false
				}
			} else {
				out = out.Extend(t.Var, v)
			}
		case t.IsInt:
			if v.T.Kind != value.KindInt || v.I != t.IntLit {
				return nil, false
			}
		case t.IsStr:
			if (v.T.Kind != value.KindString && v.T.Kind != value.KindObject) || v.S != t.StrLit {
				return nil, false
			}
		default:
			return nil, false
		}
	}
	return out, true
}

// looseEqual treats strings and object identifiers with equal payloads
// as matching: the subject's role argument may be an object id while the
// event parameter is a plain string.
func looseEqual(a, b value.Value) bool {
	aStr := a.T.Kind == value.KindString || a.T.Kind == value.KindObject
	bStr := b.T.Kind == value.KindString || b.T.Kind == value.KindObject
	return aStr && bStr && a.S == b.S
}

// decide finds the first rule that matches the event instance and one
// of the subject's roles (with a satisfied constraint) and returns its
// verdict; ok reports whether any rule decided.
func (p *Policy) decide(sub Subject, ev event.Event) (allow, ok bool) {
	for _, r := range p.Rules {
		if r.Event.Name != ev.Name {
			continue
		}
		env0, matched := matchTerms(r.Event.Args, ev.Args, value.Env{})
		if !matched {
			continue
		}
		for _, role := range sub.Roles {
			if role.Name != r.Role.Name {
				continue
			}
			env, matched := matchTerms(r.Role.Args, role.Args, env0)
			if !matched {
				continue
			}
			if r.Constraint != nil {
				res, err := rdl.Eval(r.Constraint, rdl.EvalContext{
					Env: env, Groups: p.Groups, Funcs: p.Funcs,
				})
				if err != nil || !res.OK {
					continue
				}
			}
			return r.Allow, true
		}
	}
	return false, false
}

// Visible reports whether the subject may be notified of the instance —
// the per-instance check of §7.4. Default deny.
func (p *Policy) Visible(sub Subject, ev event.Event) bool {
	allow, ok := p.decide(sub, ev)
	return ok && allow
}

// Admit is registration-time admission control (§6.2.2, §7.4): the
// subject may register the template if some allow rule names the event
// type and a role the subject holds. Constraints are left to the
// per-instance check (they usually involve event parameters unknown at
// registration).
func (p *Policy) Admit(sub Subject, tmpl event.Template) bool {
	for _, r := range p.Rules {
		if !r.Allow || r.Event.Name != tmpl.Name {
			continue
		}
		for _, role := range sub.Roles {
			if role.Name == r.Role.Name {
				if _, matched := matchTerms(r.Role.Args, role.Args, value.Env{}); matched {
					return true
				}
			}
		}
	}
	return false
}

// VisibilityFunc adapts the policy to event.BrokerOptions.Visibility:
// session credentials must be a Subject (or *Subject).
func (p *Policy) VisibilityFunc() func(session uint64, credentials any, ev event.Event) bool {
	return func(_ uint64, credentials any, ev event.Event) bool {
		sub, ok := asSubject(credentials)
		if !ok {
			return false
		}
		return p.Visible(sub, ev)
	}
}

// AdmissionFunc adapts the policy to event.BrokerOptions.Admission.
func (p *Policy) AdmissionFunc() func(credentials any) error {
	return func(credentials any) error {
		if _, ok := asSubject(credentials); !ok {
			return fmt.Errorf("eventsec: registration requires role credentials")
		}
		return nil
	}
}

func asSubject(credentials any) (Subject, bool) {
	switch s := credentials.(type) {
	case Subject:
		return s, true
	case *Subject:
		return *s, true
	default:
		return Subject{}, false
	}
}
