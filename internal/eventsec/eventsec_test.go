package eventsec

import (
	"sync"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/event"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

func str(s string) value.Value { return value.Str(s) }

func subjectOf(roles ...SubjectRole) Subject { return Subject{Roles: roles} }

func seen(badge, room string) event.Event {
	return event.Event{Name: "Seen", Args: []value.Value{str(badge), str(room)}}
}

// clPolicy is site CL's local policy (figure 7.2 style): users see
// their own badge, managers see their staff's badges, the sysadmin sees
// everything, visitors see nothing.
func clPolicy() *Policy {
	owner := map[string]string{"b12": "rjh21", "b13": "kgm"}
	p := MustParse(`
# CL local policy
deny  Seen(b, room) to Visitor(u)
allow Seen(b, room) to Admin(u)
allow Seen(b, room) to LoggedOn(u) : u = owner(b)
allow Seen(b, room) to Manager(u) : owner(b) in staff
allow MovedSite(b, o, n) to Admin(u)
`)
	p.Funcs = rdl.FuncTable{
		"owner": {
			Result: value.StringType,
			Fn: func(args []value.Value) (value.Value, error) {
				return value.Str(owner[args[0].S]), nil
			},
		},
	}
	p.Groups = rdl.GroupOracleFunc(func(m value.Value, g string) bool {
		return g == "staff" && m.S == "rjh21"
	})
	return p
}

func TestParseERDL(t *testing.T) {
	p := clPolicy()
	if len(p.Rules) != 5 {
		t.Fatalf("rules = %d", len(p.Rules))
	}
	if p.Rules[0].Allow || p.Rules[0].Role.Name != "Visitor" {
		t.Fatalf("rule 0 = %v", p.Rules[0])
	}
	if p.Rules[2].Constraint == nil {
		t.Fatal("constraint lost")
	}
}

func TestParseERDLErrors(t *testing.T) {
	bad := []string{
		"allow Seen(b)",          // missing 'to'
		"permit Seen(b) to R",    // bad keyword
		"allow Seen(b) to R & S", // two roles
		"allow Seen(b to R",      // syntax
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
	// Comments and blank lines are fine.
	if _, err := Parse("\n# comment\n\nallow E(x) to R(u)\n"); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyCheck(t *testing.T) {
	// Figure 7.1's preprocessing: validate the policy against the event
	// schema and role signatures before installing it.
	p := clPolicy()
	events := map[string]int{"Seen": 2, "MovedSite": 3}
	roles := map[string]int{"Visitor": 1, "Admin": 1, "LoggedOn": 1, "Manager": 1}
	if err := p.Check(events, roles); err != nil {
		t.Fatal(err)
	}
	// Unknown event type.
	if err := p.Check(map[string]int{"MovedSite": 3}, roles); err == nil {
		t.Fatal("unknown event accepted")
	}
	// Wrong event arity.
	if err := p.Check(map[string]int{"Seen": 3, "MovedSite": 3}, roles); err == nil {
		t.Fatal("wrong event arity accepted")
	}
	// Unknown role.
	if err := p.Check(events, map[string]int{"Admin": 1}); err == nil {
		t.Fatal("unknown role accepted")
	}
	// Wrong role arity.
	badRoles := map[string]int{"Visitor": 2, "Admin": 1, "LoggedOn": 1, "Manager": 1}
	if err := p.Check(events, badRoles); err == nil {
		t.Fatal("wrong role arity accepted")
	}
}

func TestOwnBadgeVisibility(t *testing.T) {
	p := clPolicy()
	rjh := subjectOf(SubjectRole{Name: "LoggedOn", Args: []value.Value{str("rjh21")}})
	if !p.Visible(rjh, seen("b12", "T14")) {
		t.Fatal("owner cannot see own badge")
	}
	if p.Visible(rjh, seen("b13", "T14")) {
		t.Fatal("user sees someone else's badge")
	}
}

func TestManagerSeesStaff(t *testing.T) {
	p := clPolicy()
	mgr := subjectOf(SubjectRole{Name: "Manager", Args: []value.Value{str("boss")}})
	if !p.Visible(mgr, seen("b12", "T14")) { // rjh21 is staff
		t.Fatal("manager cannot see staff badge")
	}
	if p.Visible(mgr, seen("b13", "T14")) { // kgm is not staff
		t.Fatal("manager sees non-staff badge")
	}
}

func TestAdminSeesAllVisitorSeesNothing(t *testing.T) {
	p := clPolicy()
	admin := subjectOf(SubjectRole{Name: "Admin", Args: []value.Value{str("root")}})
	for _, b := range []string{"b12", "b13"} {
		if !p.Visible(admin, seen(b, "T14")) {
			t.Fatalf("admin cannot see %s", b)
		}
	}
	// The visitor deny rule fires first even if the visitor also holds
	// an otherwise-allowing role (ordered rules, first match wins).
	visitor := subjectOf(
		SubjectRole{Name: "Visitor", Args: []value.Value{str("eve")}},
		SubjectRole{Name: "Admin", Args: []value.Value{str("eve")}},
	)
	if p.Visible(visitor, seen("b12", "T14")) {
		t.Fatal("visitor deny did not take precedence")
	}
}

func TestDefaultDeny(t *testing.T) {
	p := clPolicy()
	nobody := subjectOf(SubjectRole{Name: "Stranger"})
	if p.Visible(nobody, seen("b12", "T14")) {
		t.Fatal("default allow")
	}
	// Unknown event types are denied too.
	admin := subjectOf(SubjectRole{Name: "Admin", Args: []value.Value{str("root")}})
	if p.Visible(admin, event.Event{Name: "Secret", Args: nil}) {
		t.Fatal("unlisted event visible")
	}
}

func TestAdmissionControl(t *testing.T) {
	p := clPolicy()
	rjh := subjectOf(SubjectRole{Name: "LoggedOn", Args: []value.Value{str("rjh21")}})
	if !p.Admit(rjh, event.NewTemplate("Seen", event.Wildcard(), event.Wildcard())) {
		t.Fatal("owner refused registration")
	}
	if p.Admit(rjh, event.NewTemplate("MovedSite", event.Wildcard(), event.Wildcard(), event.Wildcard())) {
		t.Fatal("non-admin admitted to MovedSite")
	}
	stranger := subjectOf(SubjectRole{Name: "Stranger"})
	if p.Admit(stranger, event.NewTemplate("Seen", event.Wildcard(), event.Wildcard())) {
		t.Fatal("stranger admitted")
	}
}

func TestBrokerIntegration(t *testing.T) {
	// The policy plugs into the broker's admission and visibility hooks
	// (§7.4): the same broker serves different clients different views.
	clk := clock.NewVirtual(time.Unix(0, 0))
	p := clPolicy()
	b := event.NewBroker("CL", clk, event.BrokerOptions{
		Admission:  p.AdmissionFunc(),
		Visibility: p.VisibilityFunc(),
	})
	var mu sync.Mutex
	got := map[string][]string{}
	open := func(name string, sub Subject) {
		sink := event.SinkFunc(func(n event.Notification) {
			if n.Heartbeat {
				return
			}
			mu.Lock()
			got[name] = append(got[name], n.Event.Args[0].S)
			mu.Unlock()
		})
		sess, err := b.OpenSession(sink, sub)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Register(sess, event.NewTemplate("Seen", event.Wildcard(), event.Wildcard())); err != nil {
			t.Fatal(err)
		}
	}
	open("rjh", subjectOf(SubjectRole{Name: "LoggedOn", Args: []value.Value{str("rjh21")}}))
	open("admin", subjectOf(SubjectRole{Name: "Admin", Args: []value.Value{str("root")}}))

	// A credential-less client is refused at session open.
	if _, err := b.OpenSession(event.SinkFunc(func(event.Notification) {}), nil); err == nil {
		t.Fatal("admission without credentials")
	}

	b.Signal(event.New("Seen", str("b12"), str("T14")))
	b.Signal(event.New("Seen", str("b13"), str("T15")))

	if len(got["rjh"]) != 1 || got["rjh"][0] != "b12" {
		t.Fatalf("rjh sees %v", got["rjh"])
	}
	if len(got["admin"]) != 2 {
		t.Fatalf("admin sees %v", got["admin"])
	}
}

func TestThreeSitePolicies(t *testing.T) {
	// E21 / figure 7.2: the same subject receives different views at
	// sites with different local policies.
	open := MustParse(`allow Seen(b, room) to LoggedOn(u)`)
	strict := MustParse(`allow Seen(b, room) to LoggedOn(u) : u = owner(b)`)
	strict.Funcs = rdl.FuncTable{"owner": {
		Result: value.StringType,
		Fn: func(args []value.Value) (value.Value, error) {
			if args[0].S == "b12" {
				return value.Str("rjh21"), nil
			}
			return value.Str("someone-else"), nil
		},
	}}
	cl := clPolicy()

	rjh := subjectOf(SubjectRole{Name: "LoggedOn", Args: []value.Value{str("rjh21")}})
	evOwn := seen("b12", "T14")
	evOther := seen("b13", "T14")

	type verdicts struct{ own, other bool }
	check := func(p *Policy) verdicts {
		return verdicts{p.Visible(rjh, evOwn), p.Visible(rjh, evOther)}
	}
	if v := check(open); !v.own || !v.other {
		t.Fatalf("open site: %+v", v)
	}
	if v := check(strict); !v.own || v.other {
		t.Fatalf("strict site: %+v", v)
	}
	if v := check(cl); !v.own || v.other {
		t.Fatalf("CL site: %+v", v)
	}
}

func TestRemoteProxyPolicy(t *testing.T) {
	// E21 / figure 7.3: a remote subscriber reaches the site's events
	// only through the proxy, which applies the local policy with the
	// remote client's credentials.
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	_ = net
	b := event.NewBroker("CL", clk, event.BrokerOptions{})
	p := clPolicy()
	proxy, err := NewProxy(b, p)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var remoteSees []string
	sink := event.SinkFunc(func(n event.Notification) {
		if n.Heartbeat {
			return
		}
		mu.Lock()
		remoteSees = append(remoteSees, n.Event.Args[0].S)
		mu.Unlock()
	})
	rjh := subjectOf(SubjectRole{Name: "LoggedOn", Args: []value.Value{str("rjh21")}})
	if _, err := proxy.Subscribe(rjh, event.NewTemplate("Seen", event.Wildcard(), event.Wildcard()), sink); err != nil {
		t.Fatal(err)
	}
	// A visitor may not subscribe at all (admission at the proxy).
	visitor := subjectOf(SubjectRole{Name: "Visitor", Args: []value.Value{str("eve")}})
	if _, err := proxy.Subscribe(visitor, event.NewTemplate("Seen", event.Wildcard(), event.Wildcard()), sink); err == nil {
		t.Fatal("visitor admitted through proxy")
	}

	b.Signal(event.New("Seen", str("b12"), str("T14"))) // rjh's own badge
	b.Signal(event.New("Seen", str("b13"), str("T15"))) // someone else's

	if len(remoteSees) != 1 || remoteSees[0] != "b12" {
		t.Fatalf("remote sees %v", remoteSees)
	}
	if proxy.Filtered() != 1 {
		t.Fatalf("filtered = %d", proxy.Filtered())
	}
}

func TestProxyUnsubscribe(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := event.NewBroker("CL", clk, event.BrokerOptions{})
	proxy, err := NewProxy(b, clPolicy())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	sink := event.SinkFunc(func(nn event.Notification) { n++ })
	rjh := subjectOf(SubjectRole{Name: "LoggedOn", Args: []value.Value{str("rjh21")}})
	id, err := proxy.Subscribe(rjh, event.NewTemplate("Seen", event.Wildcard(), event.Wildcard()), sink)
	if err != nil {
		t.Fatal(err)
	}
	b.Signal(event.New("Seen", str("b12"), str("T14")))
	proxy.Unsubscribe(id)
	b.Signal(event.New("Seen", str("b12"), str("T15")))
	if n != 1 {
		t.Fatalf("delivered = %d after unsubscribe", n)
	}
}

func TestProxyForwardsHeartbeats(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	b := event.NewBroker("CL", clk, event.BrokerOptions{})
	proxy, err := NewProxy(b, clPolicy())
	if err != nil {
		t.Fatal(err)
	}
	hb := 0
	sink := event.SinkFunc(func(n event.Notification) {
		if n.Heartbeat {
			hb++
		}
	})
	rjh := subjectOf(SubjectRole{Name: "LoggedOn", Args: []value.Value{str("rjh21")}})
	if _, err := proxy.Subscribe(rjh, event.NewTemplate("Seen", event.Wildcard(), event.Wildcard()), sink); err != nil {
		t.Fatal(err)
	}
	b.Heartbeat()
	if hb != 1 {
		t.Fatalf("heartbeats forwarded = %d", hb)
	}
}
