package bus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/event"
	"oasis/internal/value"
)

func treeMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("m%03d", i)
	}
	return out
}

func TestTreeStructure(t *testing.T) {
	members := treeMembers(23)
	tr, err := NewTree(members, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []string{"m000", "m007", "m022"} {
		// Every member is reachable exactly once: child sets partition
		// the non-root members, and Parent inverts Children.
		seen := map[string]int{}
		for _, m := range members {
			for _, c := range tr.Children(root, m) {
				seen[c]++
				if p, ok := tr.Parent(root, c); !ok || p != m {
					t.Fatalf("root %s: Parent(%s) = %q,%v; want %q", root, c, p, ok, m)
				}
			}
		}
		if len(seen) != len(members)-1 {
			t.Fatalf("root %s: %d members have a parent, want %d", root, len(seen), len(members)-1)
		}
		for c, n := range seen {
			if n != 1 {
				t.Fatalf("root %s: member %s has %d parents", root, c, n)
			}
		}
		if seen[root] != 0 {
			t.Fatalf("root %s is somebody's child", root)
		}
		if d := tr.Depth(root, root); d != 0 {
			t.Fatalf("Depth(root,root) = %d", d)
		}
		// ⌈log3 23⌉ = 3.
		for _, m := range members {
			if d := tr.Depth(root, m); d < 0 || d > 3 {
				t.Fatalf("root %s: depth of %s = %d, want 0..3", root, m, d)
			}
		}
	}
}

func TestTreeCanonicalAndNonMember(t *testing.T) {
	a, err := NewTree([]string{"c", "a", "b", "a"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTree([]string{"b", "a", "c"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range a.Members() {
		for _, r := range a.Members() {
			got, want := a.Children(r, m), b.Children(r, m)
			if len(got) != len(want) {
				t.Fatalf("permuted trees disagree at root %s self %s", r, m)
			}
		}
	}
	if cs := a.Children("nope", "a"); cs != nil {
		t.Fatalf("children under unknown root: %v", cs)
	}
	if _, ok := a.Parent("a", "nope"); ok {
		t.Fatal("parent of non-member")
	}
	if d := a.Depth("a", "nope"); d != -1 {
		t.Fatalf("depth of non-member = %d", d)
	}
	if _, err := NewTree(nil, 2); err == nil {
		t.Fatal("empty tree accepted")
	}
}

// relayPeer applies a burst and re-forwards it along the tree, counting
// what it saw.
type relayPeer struct {
	d    *Disseminator
	root string
	mu   sync.Mutex
	got  []event.Notification
}

func (r *relayPeer) Call(from, op string, arg any) (any, error) { return arg, nil }
func (r *relayPeer) Deliver(n event.Notification)               { r.DeliverBatch([]event.Notification{n}) }
func (r *relayPeer) DeliverBatch(notes []event.Notification) {
	r.mu.Lock()
	r.got = append(r.got, notes...)
	r.mu.Unlock()
	if r.d != nil {
		r.d.Forward(r.root, notes)
	}
}

func (r *relayPeer) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

// buildRelayNet wires n members into one network with synchronous
// disseminators over a fanout-2 tree rooted at members[0].
func buildRelayNet(t *testing.T, n int) (*Network, *Tree, []string, []*relayPeer) {
	t.Helper()
	net := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	members := treeMembers(n)
	tr, err := NewTree(members, 2)
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]*relayPeer, n)
	for i, m := range members {
		p := &relayPeer{root: members[0]}
		p.d = NewDisseminator(net, tr, m, false)
		if err := net.Register(m, p); err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	return net, tr, members, peers
}

func burst(src string, n int) []event.Notification {
	out := make([]event.Notification, n)
	for i := range out {
		out[i] = event.Notification{Source: src, SessionID: 1, Seq: uint64(i + 1)}
	}
	return out
}

func TestDisseminatorReachesAll(t *testing.T) {
	_, tr, members, peers := buildRelayNet(t, 15)
	root := members[0]
	peers[0].d.Broadcast(burst(root, 5))
	for i, p := range peers[1:] {
		if p.count() != 5 {
			t.Fatalf("member %s got %d notes, want 5 (depth %d)",
				members[i+1], p.count(), tr.Depth(root, members[i+1]))
		}
	}
	if peers[0].count() != 0 {
		t.Fatal("origin delivered to itself")
	}
}

func TestDisseminatorPartitionStarvesSubtree(t *testing.T) {
	net, tr, members, peers := buildRelayNet(t, 15)
	root := members[0]
	// Sever the edge to the root's first child: exactly that subtree
	// (child + its descendants) must miss the burst.
	firstChild := tr.Children(root, root)[0]
	net.FailLink(root, firstChild)
	peers[0].d.Broadcast(burst(root, 3))
	starved := map[string]bool{firstChild: true}
	var grow func(m string)
	grow = func(m string) {
		for _, c := range tr.Children(root, m) {
			starved[c] = true
			grow(c)
		}
	}
	grow(firstChild)
	for i, m := range members {
		want := 3
		if starved[m] || m == root {
			want = 0
		}
		if got := peers[i].count(); got != want {
			t.Fatalf("member %s got %d notes, want %d", m, got, want)
		}
	}
	if net.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3 (one per note on the severed edge)", net.Dropped())
	}
}

func TestForwardBatchCoalescesPerEdge(t *testing.T) {
	net := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	sink := &relayPeer{}
	if err := net.Register("a", &relayPeer{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Register("b", sink); err != nil {
		t.Fatal(err)
	}
	net.SetCoalesceRule(CoalesceRule{
		Key: func(ev event.Event) string {
			if len(ev.Args) > 0 {
				return ev.Args[0].S
			}
			return ""
		},
	})
	notes := burst("a", 4)
	for i := range notes {
		notes[i].Event = event.New("Mod", value.Str("ref-1"))
	}
	net.ForwardBatch("a", "b", notes)
	if sink.count() != 1 {
		t.Fatalf("edge delivered %d notes, want 1 coalesced", sink.count())
	}
	sink.mu.Lock()
	coalesced := sink.got[0].Coalesced
	seq := sink.got[0].Seq
	sink.mu.Unlock()
	if coalesced != 3 || seq != 4 {
		t.Fatalf("survivor Coalesced=%d Seq=%d; want 3,4 (loss detection stays exact)", coalesced, seq)
	}
}

func TestDisseminatorAsyncDeliversAll(t *testing.T) {
	net := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	members := treeMembers(31)
	tr, err := NewTree(members, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(len(members) - 1)
	peers := make([]*asyncRelay, len(members))
	for i, m := range members {
		p := &asyncRelay{root: members[0], wg: &wg}
		p.d = NewDisseminator(net, tr, m, true)
		if i == 0 {
			p.origin = true
		}
		if err := net.Register(m, p); err != nil {
			t.Fatal(err)
		}
		peers[i] = p
	}
	peers[0].d.Broadcast(burst(members[0], 8))
	wg.Wait()
	for i, p := range peers[1:] {
		if got := p.count(); got != 8 {
			t.Fatalf("member %s got %d notes, want 8", members[i+1], got)
		}
	}
}

// asyncRelay signals a WaitGroup on its first batch, so the async test
// has a completion barrier.
type asyncRelay struct {
	d      *Disseminator
	root   string
	wg     *sync.WaitGroup
	origin bool
	mu     sync.Mutex
	got    []event.Notification
}

func (r *asyncRelay) Call(from, op string, arg any) (any, error) { return arg, nil }
func (r *asyncRelay) Deliver(n event.Notification)               { r.DeliverBatch([]event.Notification{n}) }
func (r *asyncRelay) DeliverBatch(notes []event.Notification) {
	r.mu.Lock()
	first := len(r.got) == 0
	r.got = append(r.got, notes...)
	r.mu.Unlock()
	r.d.Forward(r.root, notes)
	if first && !r.origin {
		r.wg.Done()
	}
}

func (r *asyncRelay) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}
