package bus

import (
	"sync"
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/event"
	"oasis/internal/value"
)

// batchPeer records whether notes arrived through DeliverBatch or
// one-at-a-time Deliver, preserving arrival order.
type batchPeer struct {
	mu      sync.Mutex
	notes   []event.Notification
	batches int
	singles int
}

func (p *batchPeer) Call(from, op string, arg any) (any, error) { return nil, nil }

func (p *batchPeer) Deliver(n event.Notification) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.singles++
	p.notes = append(p.notes, n)
}

func (p *batchPeer) DeliverBatch(notes []event.Notification) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.batches++
	p.notes = append(p.notes, notes...)
}

func (p *batchPeer) snapshot() ([]event.Notification, int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]event.Notification(nil), p.notes...), p.batches, p.singles
}

// modNote builds a Modified-shaped notification: key identifies the
// record, state/perm mirror the oasis encoding (state 1 = True,
// state 0 + perm = permanently False).
func modNote(sess, seq uint64, key string, state, perm int64) event.Notification {
	return event.Notification{
		SessionID: sess,
		Seq:       seq,
		Event:     event.New("Modified", value.Str(key), value.Int(state), value.Int(perm)),
	}
}

// testRule is the bus-level equivalent of the oasis Modified rule.
var testRule = CoalesceRule{
	Key: func(ev event.Event) string {
		if ev.Name != "Modified" || len(ev.Args) != 3 {
			return ""
		}
		return ev.Args[0].S
	},
	Sticky: func(ev event.Event) bool {
		return len(ev.Args) == 3 && ev.Args[1].I == 0 && ev.Args[2].I != 0
	},
}

func newBatchNet(t *testing.T) (*Network, *batchPeer) {
	t.Helper()
	n := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	n.SetCoalesceRule(testRule)
	p := &batchPeer{}
	if err := n.Register("d", p); err != nil {
		t.Fatal(err)
	}
	return n, p
}

func TestBatchCoalescesLastWriterWins(t *testing.T) {
	n, p := newBatchNet(t)
	n.StartBatch("s")
	n.Send("s", "d", modNote(1, 1, "r1", 1, 0))
	n.Send("s", "d", modNote(1, 2, "r1", 0, 0))
	n.Send("s", "d", modNote(1, 3, "r1", 1, 0))
	n.EndBatch("s")
	notes, batches, singles := p.snapshot()
	if len(notes) != 1 || batches != 1 || singles != 0 {
		t.Fatalf("notes=%d batches=%d singles=%d", len(notes), batches, singles)
	}
	got := notes[0]
	if got.Seq != 3 || got.Coalesced != 2 {
		t.Fatalf("seq=%d coalesced=%d, want 3/2", got.Seq, got.Coalesced)
	}
	if got.Event.Args[1].I != 1 {
		t.Fatalf("payload = %v, want the last writer's state", got.Event)
	}
}

func TestBatchStickyPermanentFalseWins(t *testing.T) {
	n, p := newBatchNet(t)
	n.StartBatch("s")
	n.Send("s", "d", modNote(1, 1, "r1", 1, 0))
	n.Send("s", "d", modNote(1, 2, "r1", 0, 1)) // permanent revocation
	n.Send("s", "d", modNote(1, 3, "r1", 1, 0)) // late True must not resurrect
	n.EndBatch("s")
	notes, _, _ := p.snapshot()
	if len(notes) != 1 {
		t.Fatalf("notes = %d, want 1", len(notes))
	}
	got := notes[0]
	if got.Event.Args[1].I != 0 || got.Event.Args[2].I == 0 {
		t.Fatalf("payload = %v, want sticky permanent-False", got.Event)
	}
	if got.Seq != 3 || got.Coalesced != 2 {
		t.Fatalf("seq=%d coalesced=%d: absorbed seqs must still be accounted", got.Seq, got.Coalesced)
	}
}

func TestBatchKeepsDistinctKeysAndGaps(t *testing.T) {
	n, p := newBatchNet(t)
	n.StartBatch("s")
	n.Send("s", "d", modNote(1, 1, "r1", 1, 0))
	n.Send("s", "d", modNote(1, 2, "r2", 1, 0)) // different record
	n.Send("s", "d", modNote(1, 4, "r2", 0, 0)) // gap: seq 3 went elsewhere
	n.EndBatch("s")
	notes, _, _ := p.snapshot()
	if len(notes) != 3 {
		t.Fatalf("notes = %d, want 3 (no cross-key or cross-gap coalescing)", len(notes))
	}
}

func TestBatchHeartbeatBreaksRun(t *testing.T) {
	n, p := newBatchNet(t)
	n.StartBatch("s")
	n.Send("s", "d", modNote(1, 1, "r1", 1, 0))
	hb := event.Notification{SessionID: 1, Seq: 2, Heartbeat: true}
	n.Send("s", "d", hb)
	n.Send("s", "d", modNote(1, 3, "r1", 0, 0))
	n.EndBatch("s")
	notes, _, _ := p.snapshot()
	if len(notes) != 3 {
		t.Fatalf("notes = %d, want 3 (heartbeats never coalesce)", len(notes))
	}
	if !notes[1].Heartbeat {
		t.Fatalf("heartbeat out of order: %v", notes)
	}
}

func TestBatchInterleavedSessionsCoalescePerSession(t *testing.T) {
	n, p := newBatchNet(t)
	n.StartBatch("s")
	n.Send("s", "d", modNote(1, 1, "r1", 1, 0))
	n.Send("s", "d", modNote(2, 1, "r1", 1, 0))
	n.Send("s", "d", modNote(1, 2, "r1", 0, 0))
	n.Send("s", "d", modNote(2, 2, "r1", 0, 0))
	n.EndBatch("s")
	notes, _, _ := p.snapshot()
	if len(notes) != 2 {
		t.Fatalf("notes = %d, want one per session", len(notes))
	}
	for _, got := range notes {
		if got.Seq != 2 || got.Coalesced != 1 || got.Event.Args[1].I != 0 {
			t.Fatalf("session %d: seq=%d coalesced=%d ev=%v",
				got.SessionID, got.Seq, got.Coalesced, got.Event)
		}
	}
}

func TestBatchFallbackToPerNoteDeliver(t *testing.T) {
	// A plain Endpoint (no DeliverBatch) still gets the coalesced burst,
	// one Deliver per surviving note, in order.
	n := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	n.SetCoalesceRule(testRule)
	p := &testPeer{}
	if err := n.Register("d", p); err != nil {
		t.Fatal(err)
	}
	n.StartBatch("s")
	n.Send("s", "d", modNote(1, 1, "r1", 1, 0))
	n.Send("s", "d", modNote(1, 2, "r1", 0, 1))
	n.Send("s", "d", modNote(1, 3, "r2", 1, 0))
	n.EndBatch("s")
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.notes) != 2 {
		t.Fatalf("notes = %d, want 2", len(p.notes))
	}
	if p.notes[0].Event.Args[0].S != "r1" || p.notes[1].Event.Args[0].S != "r2" {
		t.Fatalf("order lost: %v", p.notes)
	}
}

func TestBatchNestingDefersUntilOutermostEnd(t *testing.T) {
	n, p := newBatchNet(t)
	n.StartBatch("s")
	n.StartBatch("s")
	n.Send("s", "d", modNote(1, 1, "r1", 1, 0))
	n.EndBatch("s")
	if notes, _, _ := p.snapshot(); len(notes) != 0 {
		t.Fatal("inner EndBatch flushed a nested batch")
	}
	n.EndBatch("s")
	if notes, _, _ := p.snapshot(); len(notes) != 1 {
		t.Fatal("outermost EndBatch did not flush")
	}
}

func TestBatchIsPerSource(t *testing.T) {
	// An open batch for one source must not buffer other sources' sends.
	n, p := newBatchNet(t)
	n.StartBatch("s")
	defer n.EndBatch("s")
	n.Send("other", "d", modNote(1, 1, "r1", 1, 0))
	if notes, _, _ := p.snapshot(); len(notes) != 1 {
		t.Fatal("unbatched source was buffered behind another source's batch")
	}
}

func TestFlushCountsVanishedDestinationAsDropped(t *testing.T) {
	// A delayed notification whose destination disappears before the due
	// time is dropped — counted, never silently discarded and never part
	// of the delivered total.
	clkA := clock.NewVirtual(time.Unix(0, 0))
	netA := NewNetwork(clkA)
	if err := netA.Register("svc", &testPeer{}); err != nil {
		t.Fatal(err)
	}
	ln, err := nettest()
	if err != nil {
		t.Skip("no loopback listener available:", err)
	}
	go func() { _ = netA.ServeTCP(ln) }()
	defer ln.Close()

	clkB := clock.NewVirtual(time.Unix(0, 0))
	netB := NewNetwork(clkB)
	if err := netB.AddRemote("svc", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	netB.SetDelay("caller", "svc", 5*time.Second)
	netB.Send("caller", "svc", event.Notification{Seq: 1})
	netB.CloseRemotes() // destination vanishes while the note is in flight
	clkB.Advance(10 * time.Second)
	if got := netB.Flush(); got != 0 {
		t.Fatalf("Flush delivered %d to a vanished destination", got)
	}
	if netB.Count("dropped") != 1 {
		t.Fatalf("dropped = %d, want 1", netB.Count("dropped"))
	}
}

func TestCoalescingOrderAcrossTransports(t *testing.T) {
	// The §4.9.2 safety property, checked on both transports: when a
	// permanent-False is followed by a later True inside one batch, no
	// receiver may observe True as the final state of the record.
	clkA := clock.NewVirtual(time.Unix(0, 0))
	netA := NewNetwork(clkA)
	remoteEnd := &batchPeer{}
	if err := netA.Register("far", remoteEnd); err != nil {
		t.Fatal(err)
	}
	ln, err := nettest()
	if err != nil {
		t.Skip("no loopback listener available:", err)
	}
	go func() { _ = netA.ServeTCP(ln) }()
	defer ln.Close()

	netB := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	netB.SetCoalesceRule(testRule)
	localEnd := &batchPeer{}
	if err := netB.Register("near", localEnd); err != nil {
		t.Fatal(err)
	}
	if err := netB.AddRemote("far", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer netB.CloseRemotes()

	netB.StartBatch("s")
	for _, to := range []string{"near", "far"} {
		netB.Send("s", to, modNote(1, 1, "r1", 1, 0))
		netB.Send("s", to, modNote(1, 2, "r1", 0, 1))
		netB.Send("s", to, modNote(1, 3, "r1", 1, 0))
	}
	netB.EndBatch("s")

	check := func(name string, notes []event.Notification) {
		t.Helper()
		falseSeen := false
		for _, got := range notes {
			if got.Event.Args[1].I == 0 && got.Event.Args[2].I != 0 {
				falseSeen = true
			} else if falseSeen {
				t.Fatalf("%s: True observed after permanent-False: %v", name, notes)
			}
		}
		last := notes[len(notes)-1]
		if last.Event.Args[1].I != 0 {
			t.Fatalf("%s: final state True after revocation: %v", name, notes)
		}
	}
	notes, _, _ := localEnd.snapshot()
	if len(notes) == 0 {
		t.Fatal("in-process endpoint got nothing")
	}
	check("in-process", notes)

	deadline := time.Now().Add(2 * time.Second)
	for {
		notes, _, _ = remoteEnd.snapshot()
		if len(notes) > 0 && notes[len(notes)-1].Seq == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP burst incomplete: %v", notes)
		}
		time.Sleep(2 * time.Millisecond)
	}
	check("tcp", notes)
}
