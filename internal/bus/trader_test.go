package bus

import "testing"

func TestTraderRegisterLookup(t *testing.T) {
	tr := NewTrader()
	tr.Register("Printer", "print-1")
	tr.Register("Printer", "print-2")
	tr.Register("Oasis.Validate", "Login")

	got := tr.Lookup("Printer")
	if len(got) != 2 || got[0] != "print-1" || got[1] != "print-2" {
		t.Fatalf("Lookup = %v", got)
	}
	one, err := tr.LookupOne("Oasis.Validate")
	if err != nil || one != "Login" {
		t.Fatalf("LookupOne = %q, %v", one, err)
	}
	if _, err := tr.LookupOne("Nothing"); err == nil {
		t.Fatal("lookup of unoffered interface succeeded")
	}
}

func TestTraderWithdraw(t *testing.T) {
	tr := NewTrader()
	tr.Register("Printer", "p1")
	tr.Withdraw("Printer", "p1")
	if got := tr.Lookup("Printer"); len(got) != 0 {
		t.Fatalf("Lookup after withdraw = %v", got)
	}
	tr.Withdraw("Printer", "ghost") // withdrawing the absent is a no-op
}
