package bus

import (
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/event"
)

// Mixed-version interworking: a peer that predates the binary codec is
// emulated with SetWireFormat(WireGob), which reproduces the legacy
// behavior exactly — the server does not sniff for a hello and the
// client sends none. Every pairing must end up on a working link; only
// new↔new may speak binary.

type compatEnd struct {
	net  *Network
	peer *testPeer
}

// dialCompat wires caller→server over TCP with the given wire formats
// and returns both ends plus a teardown.
func dialCompat(t *testing.T, serverFmt, clientFmt string) (server, client compatEnd, done func()) {
	t.Helper()
	mk := func(format, name string) compatEnd {
		n := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
		if err := n.SetWireFormat(format); err != nil {
			t.Fatal(err)
		}
		p := &testPeer{}
		if err := n.Register(name, p); err != nil {
			t.Fatal(err)
		}
		return compatEnd{net: n, peer: p}
	}
	server = mk(serverFmt, "svc")
	client = mk(clientFmt, "caller")
	ln, err := nettest()
	if err != nil {
		t.Skip("no loopback listener available:", err)
	}
	go func() { _ = server.net.ServeTCP(ln) }()
	if err := client.net.AddRemote("svc", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	return server, client, func() {
		client.net.CloseRemotes()
		ln.Close()
	}
}

// checkBridge exercises a call, a notification to the server, and a
// back-channel notification to the client.
func checkBridge(t *testing.T, server, client compatEnd) {
	t.Helper()
	got, err := client.net.Call("caller", "svc", "echo", "ping")
	if err != nil || got != "ping" {
		t.Fatalf("Call = %v, %v", got, err)
	}
	client.net.Send("caller", "svc", event.Notification{Source: "caller", Seq: 1})
	waitFor(t, func() bool { return server.peer.noteCount() == 1 })
	// The call above taught the server a back-channel for "caller".
	server.net.Send("svc", "caller", event.Notification{Source: "svc", Seq: 1})
	waitFor(t, func() bool { return client.peer.noteCount() == 1 })
}

func waitFor(t *testing.T, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWireNegotiatesBinary(t *testing.T) {
	server, client, done := dialCompat(t, WireBinary, WireBinary)
	defer done()
	if f := client.net.RemoteWireFormat("svc"); f != WireBinary {
		t.Fatalf("negotiated %q, want %q", f, WireBinary)
	}
	checkBridge(t, server, client)
}

func TestWireFallbackToLegacyServer(t *testing.T) {
	server, client, done := dialCompat(t, WireGob, WireBinary)
	defer done()
	if f := client.net.RemoteWireFormat("svc"); f != WireGob {
		t.Fatalf("negotiated %q, want %q", f, WireGob)
	}
	checkBridge(t, server, client)
	// The failed probe is remembered: a reconnect goes straight to gob.
	n := client.net
	n.peersMu.RLock()
	rp := n.remotes["svc"].(*remotePeer)
	n.peersMu.RUnlock()
	rp.mu.Lock()
	legacy := rp.legacyGob
	rp.breakLocked()
	rp.mu.Unlock()
	if !legacy {
		t.Fatal("legacy fallback not remembered")
	}
	got, err := client.net.Call("caller", "svc", "echo", "again")
	if err != nil || got != "again" {
		t.Fatalf("post-reconnect Call = %v, %v", got, err)
	}
	if f := client.net.RemoteWireFormat("svc"); f != WireGob {
		t.Fatalf("reconnect negotiated %q, want %q", f, WireGob)
	}
}

func TestWireServesLegacyClient(t *testing.T) {
	server, client, done := dialCompat(t, WireBinary, WireGob)
	defer done()
	if f := client.net.RemoteWireFormat("svc"); f != WireGob {
		t.Fatalf("negotiated %q, want %q", f, WireGob)
	}
	checkBridge(t, server, client)
}

func TestWireBinaryBothWithSyncWrites(t *testing.T) {
	// The benchmark baseline mode must be functionally identical.
	clkA := clock.NewVirtual(time.Unix(0, 0))
	serverNet := NewNetwork(clkA)
	serverNet.SetWireSyncWrites(true)
	served := &testPeer{}
	if err := serverNet.Register("svc", served); err != nil {
		t.Fatal(err)
	}
	ln, err := nettest()
	if err != nil {
		t.Skip(err)
	}
	go func() { _ = serverNet.ServeTCP(ln) }()
	defer ln.Close()

	clientNet := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	clientNet.SetWireSyncWrites(true)
	if err := clientNet.Register("caller", &testPeer{}); err != nil {
		t.Fatal(err)
	}
	if err := clientNet.AddRemote("svc", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer clientNet.CloseRemotes()
	if f := clientNet.RemoteWireFormat("svc"); f != WireBinary {
		t.Fatalf("negotiated %q, want %q", f, WireBinary)
	}
	for i := 0; i < 10; i++ {
		if got, err := clientNet.Call("caller", "svc", "echo", "x"); err != nil || got != "x" {
			t.Fatalf("Call = %v, %v", got, err)
		}
	}
}

func TestSetWireFormatValidates(t *testing.T) {
	n := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	if err := n.SetWireFormat("carrier-pigeon"); err == nil {
		t.Fatal("bad wire format accepted")
	}
	if err := n.SetWireFormat(WireGob); err != nil {
		t.Fatal(err)
	}
	if err := n.SetWireFormat(WireBinary); err != nil {
		t.Fatal(err)
	}
}
