// Package bus provides the communication substrate connecting OASIS
// services: synchronous calls (the RPC side of the paper's extended RPC
// system, §6.2.1) and asynchronous event notification, with per-link
// failure and delay injection so that the heartbeat and event-horizon
// experiments of §4.10 and §6.8 run deterministically on a virtual clock.
//
// This stands in for the ANSAware RPC runtime the dissertation used; the
// behaviours that matter to the architecture — independent service
// failure, message loss, delayed notification — are all reproducible.
//
// Concurrency: the peer/remote and link tables are read-mostly and sit
// behind RWMutexes; the message counters are atomics (dedicated words
// for the hot notify/heartbeat/dropped counts, a sharded map for the
// per-op call counts); the delayed-notification queue is a min-heap
// ordered by (due, seq) behind its own mutex. Lock order: every mutex
// here is a leaf — no bus code path acquires one while holding another,
// and endpoints are always invoked with no bus lock held.
package bus

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/clock"
	"oasis/internal/event"
)

// Endpoint is a service attached to the network.
type Endpoint interface {
	// Call handles a synchronous request.
	Call(from, op string, arg any) (any, error)
	// Deliver receives an asynchronous event notification.
	Deliver(n event.Notification)
}

// BatchEndpoint is an Endpoint that can accept a burst of notifications
// in one call. The batch path (StartBatch/EndBatch) uses it when
// available and falls back to per-note Deliver otherwise; notes arrive
// in the same order either way.
type BatchEndpoint interface {
	Endpoint
	DeliverBatch(notes []event.Notification)
}

// ErrUnreachable is returned for calls over a failed link or to an
// unregistered peer.
var ErrUnreachable = errors.New("bus: peer unreachable")

// Verdict is a link policy's treatment of one notification: drop it,
// deliver Copies copies (1 is normal; 2 models duplication), and add
// Delay to its delivery time (a random component yields reordering,
// because the delay queue is ordered by due time).
type Verdict struct {
	Drop   bool
	Copies int
	Delay  time.Duration
}

// LinkPolicy lets a fault-injection plane (internal/fault) interpose on
// every link. Notify is consulted once per asynchronous notification at
// send time and may consume randomness; Blocked is a pure query — is
// the link severed right now? — consulted for synchronous calls and
// again when a delayed notification comes due, so a message queued
// before a partition does not slip across it.
type LinkPolicy interface {
	Notify(from, to string) Verdict
	Blocked(from, to string) bool
}

type linkKey struct{ a, b string }

func normKey(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

type queued struct {
	from string
	to   string
	n    event.Notification
	due  time.Time
	seq  uint64
}

// notifyHeap is a min-heap of delayed notifications ordered by
// (due, seq): Flush pops due messages already sorted instead of
// re-sorting the whole queue on every call.
type notifyHeap []queued

func (h notifyHeap) Len() int { return len(h) }
func (h notifyHeap) Less(i, j int) bool {
	if !h[i].due.Equal(h[j].due) {
		return h[i].due.Before(h[j].due)
	}
	return h[i].seq < h[j].seq
}
func (h notifyHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *notifyHeap) Push(x any)   { *h = append(*h, x.(queued)) }
func (h *notifyHeap) Pop() any {
	old := *h
	n := len(old)
	q := old[n-1]
	*h = old[:n-1]
	return q
}

// counterShards stripes the cold (string-keyed) message counters.
const counterShards = 16

type counterShard struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64
}

// CoalesceRule tells the batch path which notifications supersede
// earlier ones on the same session. Key returns a non-empty coalescing
// key for events that may coalesce (e.g. the record ref of a Modified
// event) and "" for everything else; Sticky reports a terminal event
// (permanently-false revocation) that later events with the same key
// must never replace. The bus stays ignorant of event vocabularies —
// the service layer installs the rule (§4.9.2).
type CoalesceRule struct {
	Key    func(ev event.Event) string
	Sticky func(ev event.Event) bool
}

// batchState buffers one source's in-flight notification burst,
// per destination in first-use order.
type batchState struct {
	depth  int
	order  []string
	byDest map[string][]event.Notification
}

// Network is an in-process message fabric with failure injection.
type Network struct {
	clk clock.Clock

	peersMu sync.RWMutex
	peers   map[string]Endpoint
	remotes map[string]remoteLink // names reachable over TCP (tcp.go)

	linkMu sync.RWMutex
	down   map[linkKey]bool
	delay  map[linkKey]time.Duration

	queueMu sync.Mutex
	queue   notifyHeap
	nextSeq uint64

	// Hot counters are dedicated atomics; everything else (per-op call
	// counts) lives in the sharded map.
	notifyCount    atomic.Int64
	heartbeatCount atomic.Int64
	droppedCount   atomic.Int64
	counters       [counterShards]counterShard

	coalesce atomic.Pointer[CoalesceRule]
	policy   atomic.Pointer[policyBox]

	// TCP call-retry tuning (remotePeer.call); see SetCallRetry.
	retryAttempts atomic.Int64
	retryBase     atomic.Int64 // nanoseconds

	// TCP wire-format controls (tcp.go): gob-only mode skips the
	// connect-time codec negotiation entirely; sync-writes mode
	// bypasses the pipelined writer queue. See SetWireFormat and
	// SetWireSyncWrites.
	wireGobOnly    atomic.Bool
	wireSyncWrites atomic.Bool

	activeBatches atomic.Int64 // fast "any batch open?" check for Send
	batchMu       sync.Mutex
	batches       map[string]*batchState
}

// NewNetwork creates a network over the given clock.
func NewNetwork(clk clock.Clock) *Network {
	return &Network{
		clk:     clk,
		peers:   make(map[string]Endpoint),
		down:    make(map[linkKey]bool),
		delay:   make(map[linkKey]time.Duration),
		batches: make(map[string]*batchState),
	}
}

// Register attaches an endpoint under a unique name.
func (n *Network) Register(name string, ep Endpoint) error {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if _, dup := n.peers[name]; dup {
		return fmt.Errorf("bus: name %q already registered", name)
	}
	n.peers[name] = ep
	return nil
}

// SetDown fails or restores the (bidirectional) link between two peers.
func (n *Network) SetDown(a, b string, down bool) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	n.down[normKey(a, b)] = down
}

// FailLink severs the (bidirectional) link between two peers: calls
// across it return ErrUnreachable and notifications — including ones
// already queued with a delay — count against the drop counter.
func (n *Network) FailLink(a, b string) { n.SetDown(a, b, true) }

// HealLink restores a link severed with FailLink.
func (n *Network) HealLink(a, b string) { n.SetDown(a, b, false) }

// Dropped reports the number of notifications lost in transit: sends
// over failed links, queued deliveries whose link or destination went
// away before they came due, policy-injected drops, and TCP encode
// failures. Heartbeat loss detection (§4.10) is sequence-based; this
// counter is the transport-side account of the same losses.
func (n *Network) Dropped() int64 { return n.droppedCount.Load() }

// PendingNotifications reports the notification-plane backlog inside
// the bus: delay-queued deliveries plus everything buffered in open
// batches. It is the transport half of the saturation signal a
// front-door (the HTTP gateway) sheds load on; the other half is the
// brokers' per-session outboxes (event.Broker.PendingNotifications).
func (n *Network) PendingNotifications() int {
	n.queueMu.Lock()
	pending := len(n.queue)
	n.queueMu.Unlock()
	n.batchMu.Lock()
	for _, st := range n.batches {
		for _, notes := range st.byDest {
			pending += len(notes)
		}
	}
	n.batchMu.Unlock()
	return pending
}

// policyBox wraps the LinkPolicy interface so it can sit in an
// atomic.Pointer.
type policyBox struct{ p LinkPolicy }

// SetLinkPolicy installs (or, with nil, removes) the link-layer fault
// policy. The fault plane (internal/fault) is the intended implementer.
func (n *Network) SetLinkPolicy(p LinkPolicy) {
	if p == nil {
		n.policy.Store(nil)
		return
	}
	n.policy.Store(&policyBox{p: p})
}

// linkSevered reports whether the link is failed or policy-blocked; it
// takes linkMu itself and must be called with no bus lock held.
func (n *Network) linkSevered(from, to string) bool {
	n.linkMu.RLock()
	downNow := n.down[normKey(from, to)]
	n.linkMu.RUnlock()
	if downNow {
		return true
	}
	if box := n.policy.Load(); box != nil {
		return box.p.Blocked(from, to)
	}
	return false
}

// SetCallRetry tunes the TCP call path (remotePeer.call): up to
// attempts tries, waiting base, 2·base, 4·base… between them on the
// network clock. attempts ≤ 1 disables retry. Only pre-send failures
// (dial, encode) are retried — once a request may have reached the
// peer, retrying could double-apply it.
func (n *Network) SetCallRetry(attempts int, base time.Duration) {
	n.retryAttempts.Store(int64(attempts))
	n.retryBase.Store(int64(base))
}

// SetDelay imposes a one-way-equivalent delivery delay on the link; it
// applies to asynchronous notifications only (synchronous calls model a
// blocking RPC).
func (n *Network) SetDelay(a, b string, d time.Duration) {
	n.linkMu.Lock()
	defer n.linkMu.Unlock()
	n.delay[normKey(a, b)] = d
}

// SetCoalesceRule installs the batch-coalescing rule (see CoalesceRule).
// Services sharing the network install the same rule; last write wins.
func (n *Network) SetCoalesceRule(r CoalesceRule) {
	n.coalesce.Store(&r)
}

// route resolves a destination name to a local endpoint or remote link.
func (n *Network) route(to string) (Endpoint, remoteLink) {
	n.peersMu.RLock()
	defer n.peersMu.RUnlock()
	return n.peers[to], n.remotes[to]
}

// Call performs a synchronous request from one peer to another; names
// added with AddRemote are reached over their TCP link.
func (n *Network) Call(from, to, op string, arg any) (any, error) {
	ep, remote := n.route(to)
	n.bump("call:" + op)
	if n.linkSevered(from, to) || (ep == nil && remote == nil) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	if ep == nil {
		return remote.call(from, to, op, arg)
	}
	return ep.Call(from, op, arg)
}

// Send delivers an event notification from one peer to another,
// applying link failure (silent drop — exactly what heartbeats exist to
// detect), the installed LinkPolicy (probabilistic drop, duplication,
// added delay), and delay (queued until Flush past the due time). While
// the sender has a batch open (StartBatch), immediate deliveries are
// buffered and flushed — coalesced — at EndBatch; link failure, policy
// and delay are still evaluated here, at send time, except that a
// queued notification re-checks the link when it comes due.
func (n *Network) Send(from, to string, note event.Notification) {
	n.notifyCount.Add(1)
	if note.Heartbeat {
		n.heartbeatCount.Add(1)
	}
	ep, remote := n.route(to)
	k := normKey(from, to)
	n.linkMu.RLock()
	downNow := n.down[k]
	d := n.delay[k]
	n.linkMu.RUnlock()
	if downNow || (ep == nil && remote == nil) {
		n.droppedCount.Add(1)
		return
	}
	copies := 1
	if box := n.policy.Load(); box != nil {
		v := box.p.Notify(from, to)
		if v.Drop {
			n.droppedCount.Add(1)
			return
		}
		if v.Copies > 1 {
			copies = v.Copies
		}
		d += v.Delay
	}
	for c := 0; c < copies; c++ {
		n.sendOne(from, to, ep, remote, note, d)
	}
}

// sendOne queues or delivers a single (possibly duplicated) copy.
func (n *Network) sendOne(from, to string, ep Endpoint, remote remoteLink, note event.Notification, d time.Duration) {
	if d > 0 {
		n.queueMu.Lock()
		n.nextSeq++
		heap.Push(&n.queue, queued{from: from, to: to, n: note, due: n.clk.Now().Add(d), seq: n.nextSeq})
		n.queueMu.Unlock()
		return
	}
	if n.activeBatches.Load() > 0 && n.tryBuffer(from, to, note) {
		return
	}
	if ep == nil {
		remote.send(from, to, note)
		return
	}
	ep.Deliver(note)
}

// StartBatch opens (or nests into) a notification batch for the named
// source: until the matching EndBatch, immediate sends from that source
// are buffered per destination. Revocation cascades and heartbeat ticks
// use this so a storm becomes one burst per destination instead of one
// delivery per record (§4.9.2 at scale).
func (n *Network) StartBatch(from string) {
	n.batchMu.Lock()
	st := n.batches[from]
	if st == nil {
		st = &batchState{byDest: make(map[string][]event.Notification)}
		n.batches[from] = st
		n.activeBatches.Add(1)
	}
	st.depth++
	n.batchMu.Unlock()
}

// EndBatch closes the source's batch; when the outermost nesting level
// closes, buffered notifications are coalesced per destination
// (consecutive same-key events collapse, last writer wins, sticky
// events are never replaced — see CoalesceRule) and delivered, via
// DeliverBatch where the endpoint supports it.
func (n *Network) EndBatch(from string) {
	n.batchMu.Lock()
	st := n.batches[from]
	if st == nil {
		n.batchMu.Unlock()
		return
	}
	st.depth--
	if st.depth > 0 {
		n.batchMu.Unlock()
		return
	}
	delete(n.batches, from)
	n.activeBatches.Add(-1)
	n.batchMu.Unlock()
	rule := n.coalesce.Load()
	for _, to := range st.order {
		n.deliverBatch(from, to, coalesceNotes(rule, st.byDest[to]))
	}
}

// tryBuffer appends the note to the sender's open batch, if any.
func (n *Network) tryBuffer(from, to string, note event.Notification) bool {
	n.batchMu.Lock()
	st := n.batches[from]
	if st == nil {
		n.batchMu.Unlock()
		return false
	}
	if _, seen := st.byDest[to]; !seen {
		st.order = append(st.order, to)
	}
	st.byDest[to] = append(st.byDest[to], note)
	n.batchMu.Unlock()
	return true
}

// deliverBatch hands a coalesced burst to one destination.
func (n *Network) deliverBatch(from, to string, notes []event.Notification) {
	if len(notes) == 0 {
		return
	}
	ep, remote := n.route(to)
	switch {
	case ep != nil:
		if be, ok := ep.(BatchEndpoint); ok {
			be.DeliverBatch(notes)
			return
		}
		for _, note := range notes {
			ep.Deliver(note)
		}
	case remote != nil:
		remote.sendBatch(from, to, notes)
	default:
		// Destination vanished between Send and flush (e.g. CloseRemotes).
		n.droppedCount.Add(int64(len(notes)))
	}
}

// coalesceNotes collapses runs of superseded notifications per session:
// a note merges into the session's previous note when they carry the
// same coalescing key and contiguous sequence numbers. The survivor
// keeps the later payload (last writer wins) unless the earlier one is
// sticky (a permanent revocation), and always accounts the absorbed
// sequence numbers in Coalesced so loss detection stays exact (§4.10).
func coalesceNotes(rule *CoalesceRule, notes []event.Notification) []event.Notification {
	if rule == nil || rule.Key == nil || len(notes) < 2 {
		return notes
	}
	out := make([]event.Notification, 0, len(notes))
	lastBySess := make(map[uint64]int)
	for _, cur := range notes {
		key := ""
		if !cur.Heartbeat {
			key = rule.Key(cur.Event)
		}
		if idx, ok := lastBySess[cur.SessionID]; ok && key != "" {
			prev := &out[idx]
			if !prev.Heartbeat && prev.Seq+1 == cur.Seq && rule.Key(prev.Event) == key {
				if rule.Sticky == nil || !rule.Sticky(prev.Event) {
					prev.Event = cur.Event
					prev.RegID = cur.RegID
				}
				prev.Coalesced += 1 + cur.Coalesced
				prev.Seq = cur.Seq
				if cur.Horizon.After(prev.Horizon) {
					prev.Horizon = cur.Horizon
				}
				continue
			}
		}
		out = append(out, cur)
		lastBySess[cur.SessionID] = len(out) - 1
	}
	return out
}

// Flush delivers every queued notification whose due time has passed, in
// (due, seq) order. Simulations call this after advancing the clock. A
// due notification whose destination is no longer routable counts as
// dropped, not delivered.
func (n *Network) Flush() int {
	now := n.clk.Now()
	var due []queued
	n.queueMu.Lock()
	for len(n.queue) > 0 && !n.queue[0].due.After(now) {
		due = append(due, heap.Pop(&n.queue).(queued))
	}
	n.queueMu.Unlock()
	delivered := 0
	for _, q := range due {
		// Re-check the link at delivery time: a message queued before a
		// partition must not slip across it. (Blocked is a pure query, so
		// this consumes no policy randomness.)
		if n.linkSevered(q.from, q.to) {
			n.droppedCount.Add(1)
			continue
		}
		ep, remote := n.route(q.to)
		switch {
		case ep != nil:
			ep.Deliver(q.n)
			delivered++
		case remote != nil:
			remote.send(q.from, q.to, q.n)
			delivered++
		default:
			n.droppedCount.Add(1)
		}
	}
	return delivered
}

// Pending reports queued (delayed) notifications not yet delivered.
func (n *Network) Pending() int {
	n.queueMu.Lock()
	defer n.queueMu.Unlock()
	return len(n.queue)
}

func (n *Network) counterShardFor(kind string) *counterShard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(kind))
	return &n.counters[h.Sum32()%counterShards]
}

// bump increments a cold (string-keyed) counter.
func (n *Network) bump(kind string) {
	sh := n.counterShardFor(kind)
	sh.mu.RLock()
	c := sh.m[kind]
	sh.mu.RUnlock()
	if c == nil {
		sh.mu.Lock()
		if sh.m == nil {
			sh.m = make(map[string]*atomic.Int64)
		}
		if c = sh.m[kind]; c == nil {
			c = new(atomic.Int64)
			sh.m[kind] = c
		}
		sh.mu.Unlock()
	}
	c.Add(1)
}

// Count reports a message counter ("call:<op>", "notify", "heartbeat",
// "dropped"). The background-traffic experiment (E6) reads these.
func (n *Network) Count(kind string) int {
	switch kind {
	case "notify":
		return int(n.notifyCount.Load())
	case "heartbeat":
		return int(n.heartbeatCount.Load())
	case "dropped":
		return int(n.droppedCount.Load())
	}
	sh := n.counterShardFor(kind)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if c := sh.m[kind]; c != nil {
		return int(c.Load())
	}
	return 0
}

// ResetCounts zeroes the message counters.
func (n *Network) ResetCounts() {
	n.notifyCount.Store(0)
	n.heartbeatCount.Store(0)
	n.droppedCount.Store(0)
	for i := range n.counters {
		sh := &n.counters[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
	}
}

// dropNote counts a notification lost in transport (tcp.go's encode
// failures report through here so heartbeat loss detection sees them).
func (n *Network) dropNote(count int) {
	n.droppedCount.Add(int64(count))
}

// Sink returns an event.Sink that sends notifications from `from` to
// `to` over this network — used to subscribe a remote service to a
// broker while keeping failure injection in the path.
func (n *Network) Sink(from, to string) event.Sink {
	return event.SinkFunc(func(note event.Notification) { n.Send(from, to, note) })
}
