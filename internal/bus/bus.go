// Package bus provides the communication substrate connecting OASIS
// services: synchronous calls (the RPC side of the paper's extended RPC
// system, §6.2.1) and asynchronous event notification, with per-link
// failure and delay injection so that the heartbeat and event-horizon
// experiments of §4.10 and §6.8 run deterministically on a virtual clock.
//
// This stands in for the ANSAware RPC runtime the dissertation used; the
// behaviours that matter to the architecture — independent service
// failure, message loss, delayed notification — are all reproducible.
package bus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"oasis/internal/clock"
	"oasis/internal/event"
)

// Endpoint is a service attached to the network.
type Endpoint interface {
	// Call handles a synchronous request.
	Call(from, op string, arg any) (any, error)
	// Deliver receives an asynchronous event notification.
	Deliver(n event.Notification)
}

// ErrUnreachable is returned for calls over a failed link or to an
// unregistered peer.
var ErrUnreachable = errors.New("bus: peer unreachable")

type linkKey struct{ a, b string }

func normKey(a, b string) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

type queued struct {
	to  string
	n   event.Notification
	due time.Time
	seq uint64
}

// Network is an in-process message fabric with failure injection.
type Network struct {
	clk clock.Clock

	mu      sync.Mutex
	peers   map[string]Endpoint
	remotes map[string]remoteLink // names reachable over TCP (tcp.go)
	down    map[linkKey]bool
	delay   map[linkKey]time.Duration
	queue   []queued
	nextSeq uint64
	counts  map[string]int // message counters by kind
}

// NewNetwork creates a network over the given clock.
func NewNetwork(clk clock.Clock) *Network {
	return &Network{
		clk:    clk,
		peers:  make(map[string]Endpoint),
		down:   make(map[linkKey]bool),
		delay:  make(map[linkKey]time.Duration),
		counts: make(map[string]int),
	}
}

// Register attaches an endpoint under a unique name.
func (n *Network) Register(name string, ep Endpoint) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.peers[name]; dup {
		return fmt.Errorf("bus: name %q already registered", name)
	}
	n.peers[name] = ep
	return nil
}

// SetDown fails or restores the (bidirectional) link between two peers.
func (n *Network) SetDown(a, b string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down[normKey(a, b)] = down
}

// SetDelay imposes a one-way-equivalent delivery delay on the link; it
// applies to asynchronous notifications only (synchronous calls model a
// blocking RPC).
func (n *Network) SetDelay(a, b string, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delay[normKey(a, b)] = d
}

// Call performs a synchronous request from one peer to another; names
// added with AddRemote are reached over their TCP link.
func (n *Network) Call(from, to, op string, arg any) (any, error) {
	n.mu.Lock()
	ep, ok := n.peers[to]
	remote := n.remotes[to]
	downNow := n.down[normKey(from, to)]
	n.counts["call:"+op]++
	n.mu.Unlock()
	if downNow || (!ok && remote == nil) {
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	if !ok {
		return remote.call(from, to, op, arg)
	}
	return ep.Call(from, op, arg)
}

// Send delivers an event notification from one peer to another,
// applying link failure (silent drop — exactly what heartbeats exist to
// detect) and delay (queued until Flush past the due time).
func (n *Network) Send(from, to string, note event.Notification) {
	n.mu.Lock()
	ep, ok := n.peers[to]
	remote := n.remotes[to]
	k := normKey(from, to)
	n.counts["notify"]++
	if note.Heartbeat {
		n.counts["heartbeat"]++
	}
	if n.down[k] || (!ok && remote == nil) {
		n.counts["dropped"]++
		n.mu.Unlock()
		return
	}
	if !ok {
		n.mu.Unlock()
		remote.send(from, to, note)
		return
	}
	if d := n.delay[k]; d > 0 {
		n.nextSeq++
		n.queue = append(n.queue, queued{to: to, n: note, due: n.clk.Now().Add(d), seq: n.nextSeq})
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	ep.Deliver(note)
}

// Flush delivers every queued notification whose due time has passed, in
// due-time order. Simulations call this after advancing the clock.
func (n *Network) Flush() int {
	n.mu.Lock()
	now := n.clk.Now()
	var due, rest []queued
	for _, q := range n.queue {
		if !q.due.After(now) {
			due = append(due, q)
		} else {
			rest = append(rest, q)
		}
	}
	n.queue = rest
	sort.Slice(due, func(i, j int) bool {
		if !due[i].due.Equal(due[j].due) {
			return due[i].due.Before(due[j].due)
		}
		return due[i].seq < due[j].seq
	})
	eps := make([]Endpoint, len(due))
	for i, q := range due {
		eps[i] = n.peers[q.to]
	}
	n.mu.Unlock()
	for i, q := range due {
		if eps[i] != nil {
			eps[i].Deliver(q.n)
		}
	}
	return len(due)
}

// Pending reports queued (delayed) notifications not yet delivered.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// Count reports a message counter ("call:<op>", "notify", "heartbeat",
// "dropped"). The background-traffic experiment (E6) reads these.
func (n *Network) Count(kind string) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.counts[kind]
}

// ResetCounts zeroes the message counters.
func (n *Network) ResetCounts() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.counts = make(map[string]int)
}

// Sink returns an event.Sink that sends notifications from `from` to
// `to` over this network — used to subscribe a remote service to a
// broker while keeping failure injection in the path.
func (n *Network) Sink(from, to string) event.Sink {
	return event.SinkFunc(func(note event.Notification) { n.Send(from, to, note) })
}
