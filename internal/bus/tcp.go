package bus

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/event"
)

// TCP bridging: a Network can serve its registered endpoints to remote
// processes and route calls/notifications for remote names over real
// sockets, so that OASIS services in different processes interwork with
// the same semantics as in-process ones (the architecture is
// "inherently distributed and scalable").
//
// The wire protocol is gob: one persistent connection per remote peer
// link, multiplexing synchronous calls (with sequence-numbered replies)
// and asynchronous notifications. Call/Send payloads must have their
// concrete types gob-registered by the owning packages (see
// oasis.RegisterWireTypes).
//
// Every encoder writes through a bufio.Writer that is flushed once per
// logical message — or once per burst on the batch path — so a
// revocation storm costs a handful of write syscalls instead of one
// per record. A failed encode or flush is never silent: the
// notification counts as dropped on the home network (heartbeat loss
// detection then sees the gap, §4.10) and the connection is torn down
// so the next use reconnects.

// wireBufSize is the write-buffer size per TCP link; notification
// messages are a few hundred bytes, so one buffer holds a large burst.
const wireBufSize = 32 << 10

type wireMsg struct {
	Kind  string // "call", "reply", "notify"
	Seq   uint64
	From  string
	To    string
	Op    string
	Arg   any
	Err   string
	Note  event.Notification
	IsNil bool // reply payload was nil
}

// remoteLink routes traffic for one remote name.
type remoteLink interface {
	call(from, to, op string, arg any) (any, error)
	send(from, to string, note event.Notification)
	sendBatch(from, to string, notes []event.Notification)
}

// backchannel is a notify-only route back to a peer that dialled us:
// asynchronous notifications (Modified events, heartbeats) flow down
// the same TCP connection its calls came up on, so a dialling service
// needs no listener of its own.
type backchannel struct {
	net  *Network // counts drops on encode failure
	mu   *sync.Mutex
	w    *bufio.Writer
	enc  *gob.Encoder
	dead bool // encode failed; the dialling peer must reconnect
}

func (b *backchannel) call(from, to, op string, arg any) (any, error) {
	return nil, fmt.Errorf("%w: %s (notify-only back-channel)", ErrUnreachable, to)
}

func (b *backchannel) send(from, to string, note event.Notification) {
	b.sendBatch(from, to, []event.Notification{note})
}

func (b *backchannel) sendBatch(from, to string, notes []event.Notification) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		b.net.dropNote(len(notes))
		return
	}
	for i, note := range notes {
		if err := b.enc.Encode(wireMsg{Kind: "notify", From: from, To: to, Note: note}); err != nil {
			// The rest of the burst is lost with this one; the peer's
			// read loop will observe the broken stream and re-dial.
			b.dead = true
			b.net.dropNote(len(notes) - i)
			return
		}
	}
	if err := b.w.Flush(); err != nil {
		b.dead = true
		b.net.dropNote(len(notes))
	}
}

// remotePeer is the client side of a TCP link to another Network.
type remotePeer struct {
	addr string
	home *Network // dispatches inbound back-channel notifications

	// dropped counts notifications lost on this link specifically; the
	// same losses also count in the home network's global Dropped.
	dropped atomic.Int64

	mu      sync.Mutex
	conn    net.Conn
	w       *bufio.Writer
	enc     *gob.Encoder
	closed  bool // CloseRemotes: no reconnection
	nextSeq uint64
	waiting map[uint64]chan wireMsg

	// Inbound back-channel notifications are delivered by a pump
	// goroutine, never on the read loop itself: a delivery callback may
	// issue a synchronous call over this very link (the auto-resync a
	// reviving heartbeat triggers does exactly that), and the reply can
	// only be read by the read loop.
	inMu      sync.Mutex
	inQ       []wireMsg
	inPumping bool
}

// drop accounts count lost notifications against both the per-link and
// the network-wide counters.
func (p *remotePeer) drop(count int) {
	p.dropped.Add(int64(count))
	p.home.dropNote(count)
}

// ServeTCP exports this network's registered endpoints on the listener.
// It blocks until the listener closes; run it in a goroutine and close
// the listener to stop.
func (n *Network) ServeTCP(ln net.Listener) error {
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.serveConn(conn)
		}()
	}
}

func (n *Network) serveConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	w := bufio.NewWriterSize(conn, wireBufSize)
	enc := gob.NewEncoder(w)
	var encMu sync.Mutex
	var backNames []string
	defer func() {
		// Drop back-channels routed over this connection.
		n.peersMu.Lock()
		for _, name := range backNames {
			if bc, ok := n.remotes[name].(*backchannel); ok && bc.enc == enc {
				delete(n.remotes, name)
			}
		}
		n.peersMu.Unlock()
	}()
	for {
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			return
		}
		// The caller is reachable for notifications over this very
		// connection; remember that unless it is already known.
		if msg.From != "" {
			n.peersMu.Lock()
			_, local := n.peers[msg.From]
			_, known := n.remotes[msg.From]
			if !local && !known {
				if n.remotes == nil {
					n.remotes = make(map[string]remoteLink)
				}
				n.remotes[msg.From] = &backchannel{net: n, mu: &encMu, w: w, enc: enc}
				backNames = append(backNames, msg.From)
			}
			n.peersMu.Unlock()
		}
		switch msg.Kind {
		case "call":
			go func(msg wireMsg) {
				res, err := n.Call(msg.From, msg.To, msg.Op, msg.Arg)
				reply := wireMsg{Kind: "reply", Seq: msg.Seq, Arg: res, IsNil: res == nil}
				if err != nil {
					reply.Err = err.Error()
				}
				encMu.Lock()
				if err := enc.Encode(reply); err == nil {
					_ = w.Flush()
				}
				encMu.Unlock()
			}(msg)
		case "notify":
			n.Send(msg.From, msg.To, msg.Note)
		}
	}
}

// AddRemote routes the given peer name over a TCP link to addr: calls
// and notifications to that name cross the socket; the remote network
// must be serving (ServeTCP) and have the name registered.
func (n *Network) AddRemote(name, addr string) error {
	p := &remotePeer{addr: addr, home: n, waiting: make(map[uint64]chan wireMsg)}
	p.mu.Lock()
	err := p.connectLocked()
	p.mu.Unlock()
	if err != nil {
		return err
	}
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if _, dup := n.peers[name]; dup {
		return fmt.Errorf("bus: name %q already registered", name)
	}
	if n.remotes == nil {
		n.remotes = make(map[string]remoteLink)
	}
	n.remotes[name] = p
	return nil
}

// RemoteDropped reports the notifications lost on the TCP link to the
// named remote peer (the per-link slice of Dropped). Zero for names
// that are not remotePeer links.
func (n *Network) RemoteDropped(name string) int64 {
	n.peersMu.RLock()
	link := n.remotes[name]
	n.peersMu.RUnlock()
	if p, ok := link.(*remotePeer); ok {
		return p.dropped.Load()
	}
	return 0
}

// CloseRemotes shuts down outgoing TCP links.
func (n *Network) CloseRemotes() {
	n.peersMu.Lock()
	remotes := n.remotes
	n.remotes = nil
	n.peersMu.Unlock()
	for _, link := range remotes {
		if p, ok := link.(*remotePeer); ok {
			p.mu.Lock()
			p.closed = true
			if p.conn != nil {
				_ = p.conn.Close()
				p.conn = nil
			}
			p.mu.Unlock()
		}
	}
}

// connectLocked dials the peer and installs the buffered encoder;
// caller holds p.mu.
func (p *remotePeer) connectLocked() error {
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		return err
	}
	p.conn = conn
	p.w = bufio.NewWriterSize(conn, wireBufSize)
	p.enc = gob.NewEncoder(p.w)
	go p.readLoop(conn)
	return nil
}

// ensureConnLocked reconnects a link marked broken by an earlier encode
// failure; caller holds p.mu.
func (p *remotePeer) ensureConnLocked() error {
	if p.conn != nil {
		return nil
	}
	if p.closed {
		return fmt.Errorf("bus: link closed")
	}
	return p.connectLocked()
}

// breakLocked tears the connection down after a wire error so the next
// use reconnects; caller holds p.mu. Outstanding calls are failed by
// the read loop when the close surfaces there.
func (p *remotePeer) breakLocked() {
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
}

func (p *remotePeer) readLoop(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var msg wireMsg
		if err := dec.Decode(&msg); err != nil {
			// Fail all outstanding calls. Take the map under the lock
			// but deliver after releasing it: locks are leaves here.
			p.mu.Lock()
			waiting := p.waiting
			p.waiting = make(map[uint64]chan wireMsg)
			p.mu.Unlock()
			for seq, ch := range waiting {
				ch <- wireMsg{Kind: "reply", Seq: seq, Err: "bus: connection lost"}
			}
			return
		}
		if msg.Kind == "notify" {
			// Back-channel delivery (figure 4.8's event notification
			// arriving over the link we dialled).
			if p.home != nil {
				p.enqueueInbound(msg)
			}
			continue
		}
		if msg.Kind != "reply" {
			continue
		}
		p.mu.Lock()
		ch, ok := p.waiting[msg.Seq]
		delete(p.waiting, msg.Seq)
		p.mu.Unlock()
		if ok {
			ch <- msg
		}
	}
}

// enqueueInbound queues one inbound notification and ensures a pump is
// running. Only the read loop enqueues, so queue order is wire order,
// and the pump clears its running flag only after its last delivery
// completed — two pumps never run at once, so delivery order per link
// equals arrival order (§4.10 gap detection depends on it).
func (p *remotePeer) enqueueInbound(msg wireMsg) {
	p.inMu.Lock()
	p.inQ = append(p.inQ, msg)
	start := !p.inPumping
	if start {
		p.inPumping = true
	}
	p.inMu.Unlock()
	if start {
		go p.pumpInbound()
	}
}

func (p *remotePeer) pumpInbound() {
	for {
		p.inMu.Lock()
		if len(p.inQ) == 0 {
			p.inPumping = false
			p.inMu.Unlock()
			return
		}
		msg := p.inQ[0]
		p.inQ = p.inQ[1:]
		p.inMu.Unlock()
		p.home.Send(msg.From, msg.To, msg.Note)
	}
}

// call issues one synchronous request. Pre-send failures — dial and
// encode, where the request cannot have reached the peer — are retried
// with exponential backoff on the home network's clock (SetCallRetry);
// once the request is on the wire a lost connection fails the call,
// because retrying could execute it twice.
func (p *remotePeer) call(from, to, op string, arg any) (any, error) {
	attempts := int(p.home.retryAttempts.Load())
	if attempts < 1 {
		attempts = 1
	}
	backoff := time.Duration(p.home.retryBase.Load())
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 && backoff > 0 {
			// Waits on the clock, never time.Sleep: virtual-clock
			// simulations advance it deterministically. No lock is held
			// across the wait.
			<-p.home.clk.After(backoff)
			backoff *= 2
		}
		var ch chan wireMsg
		ch, err = p.startCall(from, to, op, arg)
		if err != nil {
			continue
		}
		reply := <-ch
		if reply.Err != "" {
			return nil, errors.New(reply.Err)
		}
		if reply.IsNil {
			return nil, nil
		}
		return reply.Arg, nil
	}
	return nil, fmt.Errorf("%w: %s (%v)", ErrUnreachable, to, err)
}

// startCall dials if needed and puts one request on the wire, returning
// the reply channel. Errors here are pre-send: safe to retry.
func (p *remotePeer) startCall(from, to, op string, arg any) (chan wireMsg, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.ensureConnLocked(); err != nil {
		return nil, err
	}
	p.nextSeq++
	seq := p.nextSeq
	ch := make(chan wireMsg, 1)
	p.waiting[seq] = ch
	err := p.enc.Encode(wireMsg{Kind: "call", Seq: seq, From: from, To: to, Op: op, Arg: arg})
	if err == nil {
		err = p.w.Flush()
	}
	if err != nil {
		delete(p.waiting, seq)
		p.breakLocked()
		return nil, err
	}
	return ch, nil
}

func (p *remotePeer) send(from, to string, note event.Notification) {
	p.sendBatch(from, to, []event.Notification{note})
}

// sendBatch encodes a notification burst and flushes the socket once.
// A failed encode loses the tail of the burst: each lost notification
// counts as dropped and the link is marked for reconnection, so the
// failure is visible to heartbeat loss detection rather than silent.
func (p *remotePeer) sendBatch(from, to string, notes []event.Notification) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.ensureConnLocked(); err != nil {
		p.drop(len(notes))
		return
	}
	for i, note := range notes {
		if err := p.enc.Encode(wireMsg{Kind: "notify", From: from, To: to, Note: note}); err != nil {
			p.drop(len(notes) - i)
			p.breakLocked()
			return
		}
	}
	if err := p.w.Flush(); err != nil {
		p.drop(len(notes))
		p.breakLocked()
	}
}
