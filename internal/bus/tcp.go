package bus

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/event"
)

// TCP bridging: a Network can serve its registered endpoints to remote
// processes and route calls/notifications for remote names over real
// sockets, so that OASIS services in different processes interwork with
// the same semantics as in-process ones (the architecture is
// "inherently distributed and scalable").
//
// The wire protocol multiplexes synchronous calls (with
// sequence-numbered replies) and asynchronous notifications over one
// persistent connection per remote peer link. Two codecs exist: the
// binary codec (codec.go), negotiated at connect time, and the
// original gob protocol, which any link falls back to when either end
// predates the negotiation (see the hello exchange below). Call/Send
// payloads must be registered by the owning packages — gob-registered
// for the fallback, RegisterWirePayload for the binary fast path (see
// oasis.RegisterWireTypes, which does both).
//
// Outbound traffic goes through a per-connection msgWriter. By default
// it is pipelined: callers enqueue under a leaf mutex and a single
// flusher goroutine encodes and flushes, so concurrent calls and
// notification bursts interleave on the wire instead of convoying on a
// lock held across encode+flush, and bursts coalesce into one syscall.
// A failed encode or flush is never silent: every undelivered
// notification counts as dropped on the home network (heartbeat loss
// detection then sees the gap, §4.10) and the connection is torn down
// so the next use reconnects.

// wireBufSize is the I/O buffer size per TCP link; notification
// messages are a few hundred bytes, so one buffer holds a large burst.
const wireBufSize = 32 << 10

// Wire formats for TCP links (SetWireFormat, RemoteWireFormat).
const (
	WireBinary = "binary" // hand-rolled tagged codec (codec.go)
	WireGob    = "gob"    // legacy gob protocol
)

type wireMsg struct {
	Kind  string // "call", "reply", "notify"
	Seq   uint64
	From  string
	To    string
	Op    string
	Arg   any
	Err   string
	Note  event.Notification
	IsNil bool // reply payload was nil
}

// msgEncoder writes wire messages into a buffered stream; flush pushes
// everything encoded so far to the socket.
type msgEncoder interface {
	encode(*wireMsg) error
	flush() error
}

// msgDecoder reads one wire message per call.
type msgDecoder interface {
	decode(*wireMsg) error
}

type gobMsgEnc struct {
	w   *bufio.Writer
	enc *gob.Encoder
}

func newGobMsgEnc(w *bufio.Writer) *gobMsgEnc { return &gobMsgEnc{w: w, enc: gob.NewEncoder(w)} }
func (g *gobMsgEnc) encode(m *wireMsg) error  { return g.enc.Encode(*m) }
func (g *gobMsgEnc) flush() error             { return g.w.Flush() }

type gobMsgDec struct{ dec *gob.Decoder }

func newGobMsgDec(r *bufio.Reader) *gobMsgDec { return &gobMsgDec{dec: gob.NewDecoder(r)} }
func (g *gobMsgDec) decode(m *wireMsg) error {
	*m = wireMsg{}
	return g.dec.Decode(m)
}

type binMsgEnc struct {
	w   *bufio.Writer
	enc *WireEnc
}

func newBinMsgEnc(w *bufio.Writer) *binMsgEnc { return &binMsgEnc{w: w, enc: NewWireEnc(w)} }
func (b *binMsgEnc) encode(m *wireMsg) error  { return encodeWireMsg(b.enc, m) }
func (b *binMsgEnc) flush() error             { return b.w.Flush() }

type binMsgDec struct{ dec *WireDec }

func newBinMsgDec(r *bufio.Reader) *binMsgDec { return &binMsgDec{dec: NewWireDec(r)} }
func (b *binMsgDec) decode(m *wireMsg) error  { return decodeWireMsg(b.dec, m) }

// ---- connect-time codec negotiation ----
//
// The dialling side opens with one fixed-size hello line naming the
// codecs it speaks; a server that understands the hello replies with
// its pick and both ends switch. Interop with peers that predate the
// negotiation falls out of the framing:
//
//   - A legacy gob server reads the hello's first byte 'O' (0x4f) as a
//     79-byte gob message length. The padding guarantees those bytes
//     all arrive, gob rejects them deterministically, and the server
//     hangs up — which the dialler takes as "speak gob" and re-dials
//     with the legacy protocol (remembered per peer, so reconnects
//     skip the failed probe).
//   - A legacy client opens straight into a gob type descriptor, which
//     never begins with the hello prefix; a new server peeks, sees no
//     hello, and serves plain gob on that connection.
const (
	helloPrefix = "OASIS1 "
	helloOffers = "bin,gob"
	helloLen    = 96 // > 1 + 79 so a legacy gob server's bogus read completes
	helloBinary = "bin"
	helloGob    = "gob"
)

// clientHello sends the hello and reads the server's pick. Any failure
// means the far side does not negotiate; the caller falls back to gob.
func clientHello(conn net.Conn, br *bufio.Reader) (string, error) {
	hello := make([]byte, 0, helloLen)
	hello = append(hello, helloPrefix...)
	hello = append(hello, helloOffers...)
	for len(hello) < helloLen-1 {
		hello = append(hello, '.')
	}
	hello = append(hello, '\n')
	if _, err := conn.Write(hello); err != nil {
		return "", err
	}
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, helloPrefix) {
		return "", fmt.Errorf("bus: bad hello reply %q", line)
	}
	switch strings.TrimSpace(strings.TrimPrefix(line, helloPrefix)) {
	case helloBinary:
		return WireBinary, nil
	case helloGob:
		return WireGob, nil
	default:
		return "", fmt.Errorf("bus: bad hello reply %q", line)
	}
}

// serverHello consumes a peeked hello line and answers with the chosen
// codec.
func serverHello(conn net.Conn, br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	proto, token := WireGob, helloGob
	offers := strings.Trim(strings.TrimPrefix(line, helloPrefix), ".\n")
	for _, o := range strings.Split(offers, ",") {
		if o == helloBinary {
			proto, token = WireBinary, helloBinary
			break
		}
	}
	if _, err := conn.Write([]byte(helloPrefix + token + "\n")); err != nil {
		return "", err
	}
	return proto, nil
}

// SetWireFormat selects the codec for TCP links made after the call:
// WireBinary (the default — negotiated, with automatic gob fallback)
// or WireGob, which disables negotiation entirely and speaks the
// legacy protocol, for interworking with deployments that predate the
// binary codec.
func (n *Network) SetWireFormat(format string) error {
	switch format {
	case WireBinary:
		n.wireGobOnly.Store(false)
	case WireGob:
		n.wireGobOnly.Store(true)
	default:
		return fmt.Errorf("bus: unknown wire format %q", format)
	}
	return nil
}

// SetWireSyncWrites disables (true) or restores (false) the pipelined
// writer on TCP links made after the call. With sync writes every
// sender encodes and flushes inline under the writer lock — the
// pre-pipelining behavior, kept so the benchmark suite can measure
// exactly what the pipeline buys.
func (n *Network) SetWireSyncWrites(sync bool) {
	n.wireSyncWrites.Store(sync)
}

// RemoteWireFormat reports the codec negotiated on the live connection
// to the named remote peer: WireBinary, WireGob, or "" when the name
// is not a connected remotePeer link.
func (n *Network) RemoteWireFormat(name string) string {
	n.peersMu.RLock()
	link := n.remotes[name]
	n.peersMu.RUnlock()
	if p, ok := link.(*remotePeer); ok {
		p.mu.Lock()
		defer p.mu.Unlock()
		return p.proto
	}
	return ""
}

// ---- outbound writer ----

// errWriterDead reports that a message writer had already failed:
// nothing passed to enqueue was accepted, and the caller owns the drop
// accounting for the batch. Any other enqueue error means the writer
// accepted the batch and has already accounted its lost tail.
var errWriterDead = errors.New("bus: connection lost")

// msgWriter serializes outbound traffic for one TCP connection.
//
// In the default pipelined mode, enqueue appends to a queue under a
// leaf mutex and returns; a single flusher goroutine drains the queue,
// encoding each message and flushing the socket once per drained
// batch. In sync mode (SetWireSyncWrites) enqueue encodes and flushes
// inline under the lock.
//
// The first failed encode or flush kills the writer for good: a
// partial frame may be on the wire, so the stream cannot be trusted.
// Death closes the socket — waking the connection's read loop, which
// fails outstanding calls — and counts every accepted-but-undelivered
// notification exactly once through onDrop. pendingNotes carries that
// invariant: it counts notify messages accepted into the pipeline and
// not yet flushed, so whichever path kills the writer first owns them.
type msgWriter struct {
	conn       net.Conn
	enc        msgEncoder
	syncWrites bool
	onDrop     func(int) // counts lost notifications; must use atomics only (called under wr.mu)

	mu           sync.Mutex
	q            []wireMsg
	spare        []wireMsg // drained batch recycled as the next queue
	pendingNotes int       // notify messages accepted but not yet flushed
	flushing     bool      // a flushLoop goroutine is running
	dead         bool
}

func countNotify(msgs []wireMsg) int {
	n := 0
	for i := range msgs {
		if msgs[i].Kind == "notify" {
			n++
		}
	}
	return n
}

// enqueue accepts messages for the wire. errWriterDead means nothing
// was accepted (safe to retry or account elsewhere); other errors are
// sync-mode wire failures whose losses are already accounted.
func (wr *msgWriter) enqueue(msgs ...wireMsg) error {
	wr.mu.Lock()
	if wr.dead {
		wr.mu.Unlock()
		return errWriterDead
	}
	if wr.syncWrites {
		err := wr.writeLocked(msgs)
		wr.mu.Unlock()
		return err
	}
	wr.q = append(wr.q, msgs...)
	wr.pendingNotes += countNotify(msgs)
	if wr.flushing {
		wr.mu.Unlock()
		return nil
	}
	wr.flushing = true
	wr.mu.Unlock()
	// Combining: the caller that found the writer idle drains one batch
	// itself — usually just its own message, with none of the latency of
	// scheduling a flusher goroutine. If traffic piled up behind it, the
	// rest goes to a background flusher so no caller flushes forever.
	if wr.flushBatch() {
		go wr.flushLoop()
	}
	return nil
}

// writeLocked is the sync-mode path; caller holds wr.mu. These
// messages never entered pendingNotes, so failure passes the unsent
// tail to dieLocked explicitly — preserving the original accounting: a
// failed encode loses the tail of the burst, a failed flush all of it.
func (wr *msgWriter) writeLocked(msgs []wireMsg) error {
	for i := range msgs {
		if err := wr.enc.encode(&msgs[i]); err != nil {
			wr.dieLocked(msgs[i:])
			return err
		}
	}
	if err := wr.enc.flush(); err != nil {
		wr.dieLocked(msgs)
		return err
	}
	return nil
}

// dieLocked kills the writer; caller holds wr.mu. Drops counted here
// are pendingNotes (everything the pipeline accepted and has not
// flushed) plus the caller's unaccepted tail; both zero out so no
// later death path counts them again.
func (wr *msgWriter) dieLocked(tail []wireMsg) {
	if wr.dead {
		return
	}
	wr.dead = true
	lost := wr.pendingNotes + countNotify(tail)
	wr.pendingNotes = 0
	wr.q = nil
	_ = wr.conn.Close()
	if lost > 0 && wr.onDrop != nil {
		wr.onDrop(lost)
	}
}

// kill tears the writer down from outside (read-loop death, link
// teardown); queued-but-undelivered notifications count as dropped.
func (wr *msgWriter) kill() {
	wr.mu.Lock()
	wr.dieLocked(nil)
	wr.mu.Unlock()
}

// flushLoop drains the queue until it is empty or the writer dies.
// Exactly one flusher runs at a time (the flushing flag); it encodes
// outside wr.mu so enqueuers never wait on the socket.
func (wr *msgWriter) flushLoop() {
	for wr.flushBatch() {
	}
}

// flushBatch drains and flushes one batch. It returns true while the
// queue still has messages — the caller is still the flusher and must
// keep going — and false once the queue is empty or the writer died
// (the flushing flag has been released).
func (wr *msgWriter) flushBatch() bool {
	wr.mu.Lock()
	if wr.dead || len(wr.q) == 0 {
		wr.flushing = false
		wr.mu.Unlock()
		return false
	}
	batch := wr.q
	wr.q = wr.spare
	wr.spare = nil
	wr.mu.Unlock()
	for i := range batch {
		if err := wr.enc.encode(&batch[i]); err != nil {
			wr.mu.Lock()
			wr.dieLocked(nil) // batch is still in pendingNotes
			wr.flushing = false
			wr.mu.Unlock()
			return false
		}
	}
	if err := wr.enc.flush(); err != nil {
		wr.mu.Lock()
		wr.dieLocked(nil)
		wr.flushing = false
		wr.mu.Unlock()
		return false
	}
	// Zero the drained slots so the recycled array does not pin
	// payloads, then hand the array back as the next queue.
	flushedNotes := countNotify(batch)
	clear(batch)
	wr.mu.Lock()
	if wr.dead {
		wr.flushing = false
		wr.mu.Unlock()
		return false
	}
	wr.pendingNotes -= flushedNotes
	wr.spare = batch[:0]
	more := len(wr.q) > 0
	if !more {
		wr.flushing = false
	}
	wr.mu.Unlock()
	return more
}

// remoteLink routes traffic for one remote name.
type remoteLink interface {
	call(from, to, op string, arg any) (any, error)
	send(from, to string, note event.Notification)
	sendBatch(from, to string, notes []event.Notification)
}

// backchannel is a notify-only route back to a peer that dialled us:
// asynchronous notifications (Modified events, heartbeats) flow down
// the same TCP connection its calls came up on, so a dialling service
// needs no listener of its own.
type backchannel struct {
	net *Network   // counts drops when the writer is already dead
	wr  *msgWriter // the serving connection's writer
}

func (b *backchannel) call(from, to, op string, arg any) (any, error) {
	return nil, fmt.Errorf("%w: %s (notify-only back-channel)", ErrUnreachable, to)
}

func (b *backchannel) send(from, to string, note event.Notification) {
	b.sendBatch(from, to, []event.Notification{note})
}

func (b *backchannel) sendBatch(from, to string, notes []event.Notification) {
	msgs := make([]wireMsg, len(notes))
	for i, note := range notes {
		msgs[i] = wireMsg{Kind: "notify", From: from, To: to, Note: note}
	}
	if err := b.wr.enqueue(msgs...); errors.Is(err, errWriterDead) {
		// Nothing was accepted; sync-mode wire failures account
		// themselves through the writer's onDrop.
		b.net.dropNote(len(notes))
	}
}

// remotePeer is the client side of a TCP link to another Network.
type remotePeer struct {
	addr string
	home *Network // dispatches inbound back-channel notifications

	// dropped counts notifications lost on this link specifically; the
	// same losses also count in the home network's global Dropped.
	dropped atomic.Int64

	mu        sync.Mutex
	conn      net.Conn
	wr        *msgWriter
	proto     string // negotiated codec of the live connection
	legacyGob bool   // peer failed the hello once; speak gob on reconnects
	closed    bool   // CloseRemotes: no reconnection
	nextSeq   uint64
	waiting   map[uint64]wireWaiter

	// Inbound back-channel notifications are delivered by a pump
	// goroutine, never on the read loop itself: a delivery callback may
	// issue a synchronous call over this very link (the auto-resync a
	// reviving heartbeat triggers does exactly that), and the reply can
	// only be read by the read loop.
	inMu      sync.Mutex
	inQ       []wireMsg
	inPumping bool
}

// wireWaiter is one outstanding call. The connection tag keeps a dying
// read loop from failing calls already re-issued on a successor
// connection.
type wireWaiter struct {
	ch   chan wireMsg
	conn net.Conn
}

// callChans recycles reply channels across calls. A waiting channel
// receives exactly one message — whoever removes the waiter from the
// map (reply or connection loss) owns the single send — so once the
// caller has read it, the channel is empty and safe to reuse. The
// pre-send failure path never reads and never recycles: a racing
// connection loss may still have a message in flight there.
var callChans = sync.Pool{New: func() any { return make(chan wireMsg, 1) }}

// drop accounts count lost notifications against both the per-link and
// the network-wide counters.
func (p *remotePeer) drop(count int) {
	p.dropped.Add(int64(count))
	p.home.dropNote(count)
}

// ServeTCP exports this network's registered endpoints on the listener.
// It blocks until the listener closes; run it in a goroutine and close
// the listener to stop.
func (n *Network) ServeTCP(ln net.Listener) error {
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			n.serveConn(conn)
		}()
	}
}

func (n *Network) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, wireBufSize)
	proto := WireGob
	if !n.wireGobOnly.Load() {
		if peek, err := br.Peek(len(helloPrefix)); err == nil && string(peek) == helloPrefix {
			p, err := serverHello(conn, br)
			if err != nil {
				return
			}
			proto = p
		}
	}
	w := bufio.NewWriterSize(conn, wireBufSize)
	var enc msgEncoder
	var dec msgDecoder
	if proto == WireBinary {
		enc, dec = newBinMsgEnc(w), newBinMsgDec(br)
	} else {
		enc, dec = newGobMsgEnc(w), newGobMsgDec(br)
	}
	wr := &msgWriter{conn: conn, enc: enc, syncWrites: n.wireSyncWrites.Load(), onDrop: n.dropNote}
	defer wr.kill()
	var backNames []string
	defer func() {
		// Drop back-channels routed over this connection.
		n.peersMu.Lock()
		for _, name := range backNames {
			if bc, ok := n.remotes[name].(*backchannel); ok && bc.wr == wr {
				delete(n.remotes, name)
			}
		}
		n.peersMu.Unlock()
	}()
	for {
		var msg wireMsg
		if err := dec.decode(&msg); err != nil {
			return
		}
		// The caller is reachable for notifications over this very
		// connection; remember that unless it is already known. The
		// name is almost always known after the first message, so
		// check under the read lock and only upgrade (re-checking) to
		// install a new back-channel.
		if msg.From != "" {
			n.peersMu.RLock()
			_, local := n.peers[msg.From]
			_, known := n.remotes[msg.From]
			n.peersMu.RUnlock()
			if !local && !known {
				n.peersMu.Lock()
				_, local = n.peers[msg.From]
				_, known = n.remotes[msg.From]
				if !local && !known {
					if n.remotes == nil {
						n.remotes = make(map[string]remoteLink)
					}
					n.remotes[msg.From] = &backchannel{net: n, wr: wr}
					backNames = append(backNames, msg.From)
				}
				n.peersMu.Unlock()
			}
		}
		switch msg.Kind {
		case "call":
			// Each call is served on its own goroutine; replies are
			// enqueued on the shared writer, so slow handlers never
			// stall the read loop and fast replies overtake them.
			go func(msg wireMsg) {
				res, err := n.Call(msg.From, msg.To, msg.Op, msg.Arg)
				reply := wireMsg{Kind: "reply", Seq: msg.Seq, Arg: res, IsNil: res == nil}
				if err != nil {
					reply.Err = err.Error()
				}
				_ = wr.enqueue(reply)
			}(msg)
		case "notify":
			n.Send(msg.From, msg.To, msg.Note)
		}
	}
}

// AddRemote routes the given peer name over a TCP link to addr: calls
// and notifications to that name cross the socket; the remote network
// must be serving (ServeTCP) and have the name registered.
func (n *Network) AddRemote(name, addr string) error {
	p := &remotePeer{addr: addr, home: n, waiting: make(map[uint64]wireWaiter)}
	p.mu.Lock()
	err := p.connectLocked()
	p.mu.Unlock()
	if err != nil {
		return err
	}
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if _, dup := n.peers[name]; dup {
		return fmt.Errorf("bus: name %q already registered", name)
	}
	if n.remotes == nil {
		n.remotes = make(map[string]remoteLink)
	}
	n.remotes[name] = p
	return nil
}

// RemoteDropped reports the notifications lost on the TCP link to the
// named remote peer (the per-link slice of Dropped). Zero for names
// that are not remotePeer links.
func (n *Network) RemoteDropped(name string) int64 {
	n.peersMu.RLock()
	link := n.remotes[name]
	n.peersMu.RUnlock()
	if p, ok := link.(*remotePeer); ok {
		return p.dropped.Load()
	}
	return 0
}

// CloseRemotes shuts down outgoing TCP links.
func (n *Network) CloseRemotes() {
	n.peersMu.Lock()
	remotes := n.remotes
	n.remotes = nil
	n.peersMu.Unlock()
	for _, link := range remotes {
		if p, ok := link.(*remotePeer); ok {
			p.mu.Lock()
			p.closed = true
			p.breakLocked()
			p.mu.Unlock()
		}
	}
}

// connectLocked dials the peer, negotiates the codec, and installs the
// pipelined writer; caller holds p.mu.
func (p *remotePeer) connectLocked() error {
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		return err
	}
	proto := WireGob
	br := bufio.NewReaderSize(conn, wireBufSize)
	if !p.home.wireGobOnly.Load() && !p.legacyGob {
		negotiated, herr := clientHello(conn, br)
		if herr != nil {
			// The peer predates the negotiation: it read the hello as
			// a broken gob frame and hung up. Re-dial speaking plain
			// gob, and remember so reconnects skip the failed probe.
			_ = conn.Close()
			p.legacyGob = true
			conn, err = net.Dial("tcp", p.addr)
			if err != nil {
				return err
			}
			br = bufio.NewReaderSize(conn, wireBufSize)
		} else {
			proto = negotiated
		}
	}
	w := bufio.NewWriterSize(conn, wireBufSize)
	var enc msgEncoder
	var dec msgDecoder
	if proto == WireBinary {
		enc, dec = newBinMsgEnc(w), newBinMsgDec(br)
	} else {
		enc, dec = newGobMsgEnc(w), newGobMsgDec(br)
	}
	p.conn = conn
	p.wr = &msgWriter{conn: conn, enc: enc, syncWrites: p.home.wireSyncWrites.Load(), onDrop: p.drop}
	p.proto = proto
	go p.readLoop(conn, dec, p.wr)
	return nil
}

// ensureConnLocked reconnects a link marked broken by an earlier wire
// failure; caller holds p.mu.
func (p *remotePeer) ensureConnLocked() error {
	if p.conn != nil {
		return nil
	}
	if p.closed {
		return fmt.Errorf("bus: link closed")
	}
	return p.connectLocked()
}

// breakLocked tears the connection down after a wire error so the next
// use reconnects; caller holds p.mu. Killing the writer closes the
// socket, which wakes the read loop; it fails the calls outstanding on
// this connection.
func (p *remotePeer) breakLocked() {
	if p.wr != nil {
		p.wr.kill()
	}
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
	p.wr = nil
	p.proto = ""
}

func (p *remotePeer) readLoop(conn net.Conn, dec msgDecoder, wr *msgWriter) {
	for {
		var msg wireMsg
		if err := dec.decode(&msg); err != nil {
			// This connection is done: clear it if it is still the
			// live one, kill its writer (accounting queued
			// notifications as dropped), and fail the calls that went
			// out on it. Calls tagged with a successor connection are
			// left alone. Channels are notified after releasing the
			// lock: locks are leaves here.
			p.mu.Lock()
			if p.conn == conn {
				p.conn = nil
				p.wr = nil
				p.proto = ""
			}
			var failed []chan wireMsg
			for seq, wait := range p.waiting {
				if wait.conn == conn {
					delete(p.waiting, seq)
					failed = append(failed, wait.ch)
				}
			}
			p.mu.Unlock()
			wr.kill()
			for _, ch := range failed {
				ch <- wireMsg{Kind: "reply", Err: "bus: connection lost"}
			}
			return
		}
		if msg.Kind == "notify" {
			// Back-channel delivery (figure 4.8's event notification
			// arriving over the link we dialled).
			if p.home != nil {
				p.enqueueInbound(msg)
			}
			continue
		}
		if msg.Kind != "reply" {
			continue
		}
		p.mu.Lock()
		wait, ok := p.waiting[msg.Seq]
		delete(p.waiting, msg.Seq)
		p.mu.Unlock()
		if ok {
			wait.ch <- msg
		}
	}
}

// enqueueInbound queues one inbound notification and ensures a pump is
// running. Only the read loop enqueues, so queue order is wire order,
// and the pump clears its running flag only after its last delivery
// completed — two pumps never run at once, so delivery order per link
// equals arrival order (§4.10 gap detection depends on it).
func (p *remotePeer) enqueueInbound(msg wireMsg) {
	p.inMu.Lock()
	p.inQ = append(p.inQ, msg)
	start := !p.inPumping
	if start {
		p.inPumping = true
	}
	p.inMu.Unlock()
	if start {
		go p.pumpInbound()
	}
}

func (p *remotePeer) pumpInbound() {
	for {
		p.inMu.Lock()
		if len(p.inQ) == 0 {
			p.inPumping = false
			p.inMu.Unlock()
			return
		}
		msg := p.inQ[0]
		// Zero the consumed slot so the backing array does not retain
		// the notification payload, and drop the array entirely once
		// drained — a sustained storm otherwise pins every message
		// ever queued.
		p.inQ[0] = wireMsg{}
		p.inQ = p.inQ[1:]
		if len(p.inQ) == 0 {
			p.inQ = nil
		}
		p.inMu.Unlock()
		p.home.Send(msg.From, msg.To, msg.Note)
	}
}

// call issues one synchronous request. Pre-send failures — dial and
// enqueue, where the request cannot have reached the peer — are
// retried with exponential backoff on the home network's clock
// (SetCallRetry); once the request is accepted for the wire a lost
// connection fails the call, because retrying could execute it twice.
func (p *remotePeer) call(from, to, op string, arg any) (any, error) {
	attempts := int(p.home.retryAttempts.Load())
	if attempts < 1 {
		attempts = 1
	}
	backoff := time.Duration(p.home.retryBase.Load())
	var err error
	for try := 0; try < attempts; try++ {
		if try > 0 && backoff > 0 {
			// Waits on the clock, never time.Sleep: virtual-clock
			// simulations advance it deterministically. No lock is held
			// across the wait.
			<-p.home.clk.After(backoff)
			backoff *= 2
		}
		var ch chan wireMsg
		ch, err = p.startCall(from, to, op, arg)
		if err != nil {
			continue
		}
		reply := <-ch
		callChans.Put(ch)
		if reply.Err != "" {
			return nil, errors.New(reply.Err)
		}
		if reply.IsNil {
			return nil, nil
		}
		return reply.Arg, nil
	}
	return nil, fmt.Errorf("%w: %s (%v)", ErrUnreachable, to, err)
}

// startCall dials if needed and hands one request to the writer,
// returning the reply channel. Errors here are pre-send: either the
// dial failed or the writer was already dead and accepted nothing, so
// a retry cannot double-execute. The enqueue happens outside p.mu —
// the writer has its own leaf lock — so concurrent calls pipeline.
func (p *remotePeer) startCall(from, to, op string, arg any) (chan wireMsg, error) {
	p.mu.Lock()
	if err := p.ensureConnLocked(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	conn, wr := p.conn, p.wr
	p.nextSeq++
	seq := p.nextSeq
	ch := callChans.Get().(chan wireMsg)
	p.waiting[seq] = wireWaiter{ch: ch, conn: conn}
	p.mu.Unlock()

	if err := wr.enqueue(wireMsg{Kind: "call", Seq: seq, From: from, To: to, Op: op, Arg: arg}); err != nil {
		p.mu.Lock()
		delete(p.waiting, seq)
		if p.wr == wr {
			p.breakLocked()
		}
		p.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

func (p *remotePeer) send(from, to string, note event.Notification) {
	p.sendBatch(from, to, []event.Notification{note})
}

// sendBatch hands a notification burst to the writer, which flushes
// the socket once per drained batch. A wire failure loses the tail of
// the burst: each lost notification counts as dropped and the link is
// marked for reconnection, so the failure is visible to heartbeat loss
// detection rather than silent.
func (p *remotePeer) sendBatch(from, to string, notes []event.Notification) {
	p.mu.Lock()
	if err := p.ensureConnLocked(); err != nil {
		p.mu.Unlock()
		p.drop(len(notes))
		return
	}
	wr := p.wr
	p.mu.Unlock()

	msgs := make([]wireMsg, len(notes))
	for i, note := range notes {
		msgs[i] = wireMsg{Kind: "notify", From: from, To: to, Note: note}
	}
	if err := wr.enqueue(msgs...); err != nil {
		if errors.Is(err, errWriterDead) {
			// Nothing was accepted; sync-mode wire failures account
			// their own losses through the writer's onDrop.
			p.drop(len(notes))
		}
		p.mu.Lock()
		if p.wr == wr {
			p.breakLocked()
		}
		p.mu.Unlock()
	}
}
