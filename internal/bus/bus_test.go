package bus

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"oasis/internal/clock"
	"oasis/internal/event"
)

type testPeer struct {
	mu    sync.Mutex
	calls []string
	notes []event.Notification
}

func (p *testPeer) Call(from, op string, arg any) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls = append(p.calls, from+":"+op)
	if op == "echo" {
		return arg, nil
	}
	return nil, errors.New("unknown op")
}

func (p *testPeer) Deliver(n event.Notification) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.notes = append(p.notes, n)
}

func (p *testPeer) noteCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.notes)
}

func newNet(t *testing.T) (*Network, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	return NewNetwork(clk), clk
}

func TestCallRoundTrip(t *testing.T) {
	n, _ := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	got, err := n.Call("a", "b", "echo", 42)
	if err != nil || got != 42 {
		t.Fatalf("Call = %v, %v", got, err)
	}
	if len(p.calls) != 1 || p.calls[0] != "a:echo" {
		t.Fatalf("calls = %v", p.calls)
	}
}

func TestCallUnknownPeer(t *testing.T) {
	n, _ := newNet(t)
	if _, err := n.Call("a", "ghost", "echo", 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateRegistration(t *testing.T) {
	n, _ := newNet(t)
	if err := n.Register("x", &testPeer{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Register("x", &testPeer{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestLinkFailureBlocksCalls(t *testing.T) {
	n, _ := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	n.SetDown("a", "b", true)
	if _, err := n.Call("a", "b", "echo", 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	// Direction-independent and restorable.
	if _, err := n.Call("b", "a", "echo", 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("reverse direction: %v", err)
	}
	n.SetDown("a", "b", false)
	if _, err := n.Call("a", "b", "echo", 1); err != nil {
		t.Fatalf("restored link: %v", err)
	}
}

func TestNotificationDroppedOnFailedLink(t *testing.T) {
	n, _ := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	n.SetDown("a", "b", true)
	n.Send("a", "b", event.Notification{Seq: 1})
	if p.noteCount() != 0 {
		t.Fatal("notification crossed failed link")
	}
	if n.Count("dropped") != 1 {
		t.Fatalf("dropped = %d", n.Count("dropped"))
	}
}

func TestDelayedNotification(t *testing.T) {
	n, clk := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	n.SetDelay("a", "b", 5*time.Second)
	n.Send("a", "b", event.Notification{Seq: 1})
	if p.noteCount() != 0 {
		t.Fatal("delayed notification arrived early")
	}
	if n.Pending() != 1 {
		t.Fatalf("pending = %d", n.Pending())
	}
	clk.Advance(4 * time.Second)
	n.Flush()
	if p.noteCount() != 0 {
		t.Fatal("notification arrived before delay elapsed")
	}
	clk.Advance(2 * time.Second)
	if got := n.Flush(); got != 1 {
		t.Fatalf("Flush delivered %d", got)
	}
	if p.noteCount() != 1 {
		t.Fatal("notification lost")
	}
}

func TestFlushPreservesDueOrder(t *testing.T) {
	n, clk := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	n.SetDelay("slow", "b", 10*time.Second)
	n.SetDelay("fast", "b", 1*time.Second)
	n.Send("slow", "b", event.Notification{Seq: 1, Source: "slow"})
	n.Send("fast", "b", event.Notification{Seq: 2, Source: "fast"})
	clk.Advance(20 * time.Second)
	n.Flush()
	if p.notes[0].Source != "fast" || p.notes[1].Source != "slow" {
		t.Fatalf("order = %v, %v", p.notes[0].Source, p.notes[1].Source)
	}
}

func TestCounters(t *testing.T) {
	n, _ := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Call("a", "b", "echo", 1); err != nil {
		t.Fatal(err)
	}
	n.Send("a", "b", event.Notification{Heartbeat: true})
	n.Send("a", "b", event.Notification{})
	if n.Count("call:echo") != 1 || n.Count("notify") != 2 || n.Count("heartbeat") != 1 {
		t.Fatalf("counts: call=%d notify=%d hb=%d",
			n.Count("call:echo"), n.Count("notify"), n.Count("heartbeat"))
	}
	n.ResetCounts()
	if n.Count("notify") != 0 {
		t.Fatal("ResetCounts did not clear")
	}
}

func TestSinkBridgesBrokerAcrossNetwork(t *testing.T) {
	// A broker on service A notifies a subscriber on service B through
	// the network, so failure injection applies to event delivery.
	n, clk := newNet(t)
	p := &testPeer{}
	if err := n.Register("B", p); err != nil {
		t.Fatal(err)
	}
	broker := event.NewBroker("A", clk, event.BrokerOptions{})
	sess, err := broker.OpenSession(n.Sink("A", "B"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := broker.Register(sess, event.NewTemplate("E")); err != nil {
		t.Fatal(err)
	}
	broker.Signal(event.New("E"))
	if p.noteCount() != 1 {
		t.Fatal("event did not cross the network")
	}
	n.SetDown("A", "B", true)
	broker.Signal(event.New("E"))
	if p.noteCount() != 1 {
		t.Fatal("event crossed failed link")
	}
}

func TestTCPBridgeCallAndNotify(t *testing.T) {
	clkA := clock.NewVirtual(time.Unix(0, 0))
	netA := NewNetwork(clkA)
	served := &testPeer{}
	if err := netA.Register("svc", served); err != nil {
		t.Fatal(err)
	}
	ln, err := nettest()
	if err != nil {
		t.Skip("no loopback listener available:", err)
	}
	go func() { _ = netA.ServeTCP(ln) }()
	defer ln.Close()

	netB := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	caller := &testPeer{}
	if err := netB.Register("caller", caller); err != nil {
		t.Fatal(err)
	}
	if err := netB.AddRemote("svc", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer netB.CloseRemotes()

	// Call across the bridge.
	got, err := netB.Call("caller", "svc", "echo", "ping")
	if err != nil || got != "ping" {
		t.Fatalf("Call = %v, %v", got, err)
	}
	// Unknown op errors propagate.
	if _, err := netB.Call("caller", "svc", "boom", nil); err == nil {
		t.Fatal("remote error lost")
	}
	// Notify across the bridge (forward direction).
	netB.Send("caller", "svc", event.Notification{Seq: 7, Source: "caller"})
	deadline := time.Now().Add(2 * time.Second)
	for served.noteCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("forward notification lost")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Back-channel: svc can now notify caller without a reverse link.
	netA.Send("svc", "caller", event.Notification{Seq: 9, Source: "svc"})
	for caller.noteCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("back-channel notification lost")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAddRemoteErrors(t *testing.T) {
	n := NewNetwork(clock.NewVirtual(time.Unix(0, 0)))
	if err := n.AddRemote("x", "127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if err := n.Register("local", &testPeer{}); err != nil {
		t.Fatal(err)
	}
	ln, err := nettest()
	if err != nil {
		t.Skip(err)
	}
	defer ln.Close()
	go func() { _ = n.ServeTCP(ln) }()
	if err := n.AddRemote("local", ln.Addr().String()); err == nil {
		t.Fatal("remote name shadowing a local peer accepted")
	}
}

// nettest opens a loopback listener.
func nettest() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
