package bus

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

// Test payload types for the registry. Tags from 200 up so they can
// never collide with protocol tags allocated by owning packages.
type testPayloadA struct {
	Name  string
	Count int64
}

type testPayloadUnregistered struct {
	X int
	M map[string]int
}

var registerTestPayloads sync.Once

func testPayloads(t testing.TB) {
	t.Helper()
	registerTestPayloads.Do(func() {
		gob.Register(testPayloadUnregistered{}) // rides the gob-blob fallback
		RegisterWirePayload(200, testPayloadA{},
			func(e *WireEnc, v any) error {
				a, ok := v.(testPayloadA)
				if !ok {
					return fmt.Errorf("not testPayloadA: %T", v)
				}
				e.PutString(a.Name)
				e.PutVarint(a.Count)
				return nil
			},
			func(d *WireDec) (any, error) {
				var a testPayloadA
				var err error
				if a.Name, err = d.String(); err != nil {
					return nil, err
				}
				if a.Count, err = d.Varint(); err != nil {
					return nil, err
				}
				return a, nil
			})
	})
}

func encodeToBytes(t *testing.T, fn func(*WireEnc)) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewWireEnc(&buf)
	fn(e)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Golden byte vectors: the binary format is a wire protocol, so its
// exact bytes are pinned. Changing any of these breaks interop with
// every deployed binary-codec peer.
func TestCodecGoldenVectors(t *testing.T) {
	cases := []struct {
		name string
		enc  func(*WireEnc)
		want string // hex
	}{
		{"uvarint-0", func(e *WireEnc) { e.PutUvarint(0) }, "00"},
		{"uvarint-300", func(e *WireEnc) { e.PutUvarint(300) }, "ac02"},
		{"varint-neg1", func(e *WireEnc) { e.PutVarint(-1) }, "01"},
		{"varint-1", func(e *WireEnc) { e.PutVarint(1) }, "02"},
		{"bool-true", func(e *WireEnc) { e.PutBool(true) }, "01"},
		{"string-empty", func(e *WireEnc) { e.PutString("") }, "00"},
		{"string-hi", func(e *WireEnc) { e.PutString("hi") }, "026869"},
		{"time-zero", func(e *WireEnc) { e.PutTime(time.Time{}) }, "00"},
		{"time-5000s", func(e *WireEnc) { e.PutTime(time.Unix(5000, 0)) }, "01904e00"},
		{"value-int-7", func(e *WireEnc) { e.PutValue(value.Int(7)) }, "010e"},
		{"value-str-a", func(e *WireEnc) { e.PutValue(value.Str("a")) }, "020161"},
		{"value-set-rwx-5", func(e *WireEnc) { e.PutValue(value.Value{T: value.SetType("rwx"), Set: 5}) }, "030372777805"},
		{"value-obj", func(e *WireEnc) { e.PutValue(value.Object("U.id", "dm")) }, "0404552e696402646d"},
		{"value-zero", func(e *WireEnc) { e.PutValue(value.Value{}) }, "00"},
		{"values-2", func(e *WireEnc) { e.PutValues([]value.Value{value.Int(1), value.Int(2)}) }, "02010201 04"},
		{"type-int", func(e *WireEnc) { e.PutType(value.IntType) }, "01"},
		{"type-set", func(e *WireEnc) { e.PutType(value.SetType("rw")) }, "03027277"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := hex.EncodeToString(encodeToBytes(t, tc.enc))
			want := strings.ReplaceAll(tc.want, " ", "")
			if got != want {
				t.Fatalf("bytes = %s, want %s", got, want)
			}
		})
	}
}

func TestCodecPrimitiveRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	e := NewWireEnc(&buf)
	stamp := time.Unix(123456789, 987654321)
	vals := []value.Value{
		value.Int(-42), value.Str("hello, \"world\""), value.MustSet("rwx", "rx"),
		value.Object("Login.userid", "dm"), {},
	}
	types := []value.Type{value.IntType, value.StringType, value.SetType("abc"), value.ObjectType("T.x"), {}}
	e.PutByte(0xAB)
	e.PutUvarint(1<<63 + 17)
	e.PutVarint(-1 << 60)
	e.PutBool(true)
	e.PutBool(false)
	e.PutString("παράδειγμα") // non-ASCII survives
	e.PutBytes([]byte{0, 1, 2, 255})
	e.PutBytes(nil)
	e.PutTime(stamp)
	e.PutTime(time.Time{})
	e.PutValues(vals)
	e.PutTypes(types)
	e.PutStrings([]string{"a", "", "c"})
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}

	d := NewWireDec(bytes.NewReader(buf.Bytes()))
	if b, err := d.Byte(); err != nil || b != 0xAB {
		t.Fatalf("Byte = %x, %v", b, err)
	}
	if u, err := d.Uvarint(); err != nil || u != 1<<63+17 {
		t.Fatalf("Uvarint = %d, %v", u, err)
	}
	if i, err := d.Varint(); err != nil || i != -1<<60 {
		t.Fatalf("Varint = %d, %v", i, err)
	}
	if b, err := d.Bool(); err != nil || !b {
		t.Fatalf("Bool = %v, %v", b, err)
	}
	if b, err := d.Bool(); err != nil || b {
		t.Fatalf("Bool = %v, %v", b, err)
	}
	if s, err := d.String(); err != nil || s != "παράδειγμα" {
		t.Fatalf("String = %q, %v", s, err)
	}
	if b, err := d.Bytes(); err != nil || !bytes.Equal(b, []byte{0, 1, 2, 255}) {
		t.Fatalf("Bytes = %v, %v", b, err)
	}
	if b, err := d.Bytes(); err != nil || b != nil {
		t.Fatalf("empty Bytes = %v, %v", b, err)
	}
	if ts, err := d.Time(); err != nil || !ts.Equal(stamp) {
		t.Fatalf("Time = %v, %v", ts, err)
	}
	if ts, err := d.Time(); err != nil || !ts.IsZero() {
		t.Fatalf("zero Time = %v, %v", ts, err)
	}
	got, err := d.Values()
	if err != nil || len(got) != len(vals) {
		t.Fatalf("Values = %v, %v", got, err)
	}
	for i := range vals {
		// Plain struct equality: Value.Equal rejects the zero Value,
		// which must round-trip too.
		if got[i] != vals[i] {
			t.Fatalf("value %d = %v, want %v", i, got[i], vals[i])
		}
	}
	gotTypes, err := d.Types()
	if err != nil || !reflect.DeepEqual(gotTypes, types) {
		t.Fatalf("Types = %v, %v", gotTypes, err)
	}
	if ss, err := d.Strings(); err != nil || !reflect.DeepEqual(ss, []string{"a", "", "c"}) {
		t.Fatalf("Strings = %v, %v", ss, err)
	}
}

func TestCodecDecoderLimits(t *testing.T) {
	// A length beyond maxWireBytes must be rejected before allocation.
	var buf bytes.Buffer
	e := NewWireEnc(&buf)
	e.PutUvarint(maxWireBytes + 1)
	_ = e.Flush()
	if _, err := NewWireDec(bytes.NewReader(buf.Bytes())).Bytes(); err == nil {
		t.Fatal("oversized byte length accepted")
	}

	buf.Reset()
	e = NewWireEnc(&buf)
	e.PutUvarint(maxWireCount + 1)
	_ = e.Flush()
	if _, err := NewWireDec(bytes.NewReader(buf.Bytes())).Values(); err == nil {
		t.Fatal("oversized count accepted")
	}

	// Bools are strict: 2 is a framing error, not "true".
	if _, err := NewWireDec(bytes.NewReader([]byte{2})).Bool(); err == nil {
		t.Fatal("bool byte 2 accepted")
	}
	// Nanoseconds must stay under a second.
	buf.Reset()
	e = NewWireEnc(&buf)
	e.PutByte(1)
	e.PutVarint(0)
	e.PutUvarint(uint64(time.Second))
	_ = e.Flush()
	if _, err := NewWireDec(bytes.NewReader(buf.Bytes())).Time(); err == nil {
		t.Fatal("overflowing nanoseconds accepted")
	}
}

func roundTripMsg(t *testing.T, m wireMsg) wireMsg {
	t.Helper()
	var buf bytes.Buffer
	e := NewWireEnc(&buf)
	if err := encodeWireMsg(e, &m); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	var out wireMsg
	if err := decodeWireMsg(NewWireDec(bytes.NewReader(buf.Bytes())), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out
}

func TestWireMsgRoundTrips(t *testing.T) {
	testPayloads(t)
	call := wireMsg{Kind: "call", Seq: 7, From: "a", To: "b", Op: "echo",
		Arg: testPayloadA{Name: "x", Count: -3}}
	if got := roundTripMsg(t, call); !reflect.DeepEqual(got, call) {
		t.Fatalf("call round trip = %+v, want %+v", got, call)
	}

	reply := wireMsg{Kind: "reply", Seq: 7, Err: "boom", IsNil: false,
		Arg: testPayloadA{Name: "y", Count: 9}}
	if got := roundTripMsg(t, reply); !reflect.DeepEqual(got, reply) {
		t.Fatalf("reply round trip = %+v, want %+v", got, reply)
	}

	nilReply := wireMsg{Kind: "reply", Seq: 8, IsNil: true}
	if got := roundTripMsg(t, nilReply); !reflect.DeepEqual(got, nilReply) {
		t.Fatalf("nil reply round trip = %+v, want %+v", got, nilReply)
	}

	notify := wireMsg{Kind: "notify", From: "a", To: "b", Note: event.Notification{
		Source: "svc", SessionID: 3, Seq: 41, Heartbeat: false, RegID: 12,
		Coalesced: 2, Horizon: time.Unix(99, 5),
		Event: event.Event{Name: "Modified", Source: "svc", Seq: 41,
			Time: time.Unix(98, 0), Args: []value.Value{value.Int(1), value.Str("s")}},
	}}
	got := roundTripMsg(t, notify)
	if got.Kind != "notify" || got.From != "a" || got.To != "b" {
		t.Fatalf("notify header = %+v", got)
	}
	if !reflect.DeepEqual(got.Note, notify.Note) {
		t.Fatalf("notification round trip = %+v, want %+v", got.Note, notify.Note)
	}
}

// Unregistered payloads travel as embedded gob blobs, so a binary link
// loses no expressiveness on types nobody registered (maps included).
func TestWireMsgGobFallbackPayload(t *testing.T) {
	testPayloads(t)
	m := wireMsg{Kind: "call", Seq: 1, From: "a", To: "b", Op: "op",
		Arg: testPayloadUnregistered{X: 5, M: map[string]int{"k": 1}}}
	got := roundTripMsg(t, m)
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("gob-fallback round trip = %+v, want %+v", got, m)
	}
}

func TestRegisterWirePayloadPanics(t *testing.T) {
	testPayloads(t)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	nop := func(*WireEnc, any) error { return nil }
	nod := func(*WireDec) (any, error) { return nil, nil }
	mustPanic("reserved tag 0", func() { RegisterWirePayload(0, testPayloadA{}, nop, nod) })
	mustPanic("reserved tag 255", func() { RegisterWirePayload(255, testPayloadA{}, nop, nod) })
	mustPanic("duplicate tag", func() { RegisterWirePayload(200, testPayloadUnregistered{}, nop, nod) })
	mustPanic("duplicate type", func() { RegisterWirePayload(201, testPayloadA{}, nop, nod) })
}

func TestDecodeWireMsgRejectsJunk(t *testing.T) {
	var m wireMsg
	if err := decodeWireMsg(NewWireDec(bytes.NewReader([]byte{9})), &m); err == nil {
		t.Fatal("bad kind byte accepted")
	}
	if err := decodeWireMsg(NewWireDec(bytes.NewReader(nil)), &m); err == nil {
		t.Fatal("empty stream accepted")
	}
	// A call frame whose payload tag is unknown must error, not guess.
	var buf bytes.Buffer
	e := NewWireEnc(&buf)
	e.PutByte(wireKindCall)
	e.PutUvarint(1)
	e.PutString("a")
	e.PutString("b")
	e.PutString("op")
	e.PutByte(123) // never-registered tag
	_ = e.Flush()
	if err := decodeWireMsg(NewWireDec(bytes.NewReader(buf.Bytes())), &m); err == nil {
		t.Fatal("unknown payload tag accepted")
	}
}
