package bus

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

// Binary wire codec for the TCP bridge. Gob is convenient but pays for
// its generality on every message: reflection-driven encoding, and —
// fatally for a validation fast path — the registered concrete type
// NAME written out for every interface-valued field, so a ValidateArg
// costs a type-name string per call. This codec is hand-rolled and
// self-describing at the granularity the protocol needs: varint
// integers, length-prefixed strings, one tag byte per payload type.
//
// The codec is negotiated per connection (see tcp.go): peers that
// don't speak it fall back to gob, so the wire format can evolve
// without a flag day. Payload types — the `any` argument/reply values
// carried by calls — are registered by the owning packages through
// RegisterWirePayload (oasis.RegisterWireTypes does this for the
// inter-service protocol); a payload with no registered codec travels
// as an embedded gob blob, so binary links never lose expressiveness,
// only speed, on unregistered types.
//
// Decoder hardening: every length and count read off the wire is
// bounded (maxWireBytes, maxWireCount) before allocation, so a
// corrupted or hostile stream cannot balloon memory; it tears the
// connection down with an error instead. The round-trip fuzzers in
// codec_fuzz_test.go hold this line.

// Limits applied while decoding untrusted bytes.
const (
	maxWireBytes = 1 << 20 // longest single string/byte-slice
	maxWireCount = 1 << 16 // longest slice (args, roles, resync entries)
)

// WireEnc encodes primitive values into a buffered stream. Write errors
// are sticky in the underlying bufio.Writer and surface at Flush, so
// the Put methods do not return errors; payload encoders return errors
// only for semantic failures (wrong dynamic type).
type WireEnc struct {
	w   wireWriter
	buf [binary.MaxVarintLen64]byte
}

// wireWriter is the minimal writer surface WireEnc needs; *bufio.Writer
// and *bytes.Buffer both satisfy it, so the TCP path and tests share
// one encoder without double-buffering.
type wireWriter interface {
	io.Writer
	WriteByte(byte) error
	WriteString(string) (int, error)
}

// NewWireEnc returns an encoder writing to w. The TCP path passes its
// per-connection *bufio.Writer; tests may pass a *bytes.Buffer.
func NewWireEnc(w wireWriter) *WireEnc { return &WireEnc{w: w} }

// Flush flushes the underlying writer if it is buffered, surfacing any
// sticky write error.
func (e *WireEnc) Flush() error {
	if f, ok := e.w.(interface{ Flush() error }); ok {
		return f.Flush()
	}
	return nil
}

// PutByte writes one raw byte.
func (e *WireEnc) PutByte(b byte) { _ = e.w.WriteByte(b) }

// PutUvarint writes an unsigned varint.
func (e *WireEnc) PutUvarint(u uint64) {
	n := binary.PutUvarint(e.buf[:], u)
	_, _ = e.w.Write(e.buf[:n])
}

// PutVarint writes a signed (zig-zag) varint.
func (e *WireEnc) PutVarint(i int64) {
	n := binary.PutVarint(e.buf[:], i)
	_, _ = e.w.Write(e.buf[:n])
}

// PutBool writes a boolean as one byte.
func (e *WireEnc) PutBool(b bool) {
	if b {
		_ = e.w.WriteByte(1)
	} else {
		_ = e.w.WriteByte(0)
	}
}

// PutString writes a length-prefixed string.
func (e *WireEnc) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	_, _ = e.w.WriteString(s)
}

// PutBytes writes a length-prefixed byte slice.
func (e *WireEnc) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	_, _ = e.w.Write(b)
}

// PutTime writes a timestamp as (flag, unix seconds, nanoseconds); the
// zero time is a single 0 byte. Only the instant survives — location
// does not — which is all certificate expiry and event-horizon
// comparisons use.
func (e *WireEnc) PutTime(t time.Time) {
	if t.IsZero() {
		_ = e.w.WriteByte(0)
		return
	}
	_ = e.w.WriteByte(1)
	e.PutVarint(t.Unix())
	e.PutUvarint(uint64(t.Nanosecond()))
}

// Value kind tags on the wire (distinct from value.Kind so the wire
// format is frozen independently of the Go enumeration).
const (
	wireValueZero   = 0 // the zero Value{}
	wireValueInt    = 1
	wireValueString = 2
	wireValueSet    = 3
	wireValueObject = 4
)

// PutValue writes one typed RDL value.
func (e *WireEnc) PutValue(v value.Value) {
	switch v.T.Kind {
	case value.KindInt:
		e.PutByte(wireValueInt)
		e.PutVarint(v.I)
	case value.KindString:
		e.PutByte(wireValueString)
		e.PutString(v.S)
	case value.KindSet:
		e.PutByte(wireValueSet)
		e.PutString(v.T.Universe)
		e.PutUvarint(v.Set)
	case value.KindObject:
		e.PutByte(wireValueObject)
		e.PutString(v.T.Name)
		e.PutString(v.S)
	default:
		e.PutByte(wireValueZero)
	}
}

// PutValues writes a counted value vector.
func (e *WireEnc) PutValues(vs []value.Value) {
	e.PutUvarint(uint64(len(vs)))
	for _, v := range vs {
		e.PutValue(v)
	}
}

// PutType writes one RDL argument type.
func (e *WireEnc) PutType(t value.Type) {
	switch t.Kind {
	case value.KindInt:
		e.PutByte(wireValueInt)
	case value.KindString:
		e.PutByte(wireValueString)
	case value.KindSet:
		e.PutByte(wireValueSet)
		e.PutString(t.Universe)
	case value.KindObject:
		e.PutByte(wireValueObject)
		e.PutString(t.Name)
	default:
		e.PutByte(wireValueZero)
	}
}

// PutTypes writes a counted type vector.
func (e *WireEnc) PutTypes(ts []value.Type) {
	e.PutUvarint(uint64(len(ts)))
	for _, t := range ts {
		e.PutType(t)
	}
}

// PutStrings writes a counted string vector.
func (e *WireEnc) PutStrings(ss []string) {
	e.PutUvarint(uint64(len(ss)))
	for _, s := range ss {
		e.PutString(s)
	}
}

// WireDec decodes the stream produced by WireEnc, validating lengths
// and counts before allocating.
type WireDec struct {
	r wireReader
	// scratch stages short strings so String costs one allocation
	// (the string copy) instead of two (byte slice, then string).
	scratch [64]byte
	// interned reuses previously-decoded short strings: service names,
	// operations, role names and value universes repeat on every
	// message, and the decoder is single-goroutine per connection, so
	// a plain bounded map turns those repeats into zero allocations.
	interned map[string]string
}

// maxInterned bounds the per-decoder intern table so a hostile stream
// of distinct strings cannot grow it without limit.
const maxInterned = 256

// wireReader is the reader surface WireDec needs; *bufio.Reader and
// *bytes.Reader both satisfy it.
type wireReader interface {
	io.Reader
	io.ByteReader
}

// NewWireDec returns a decoder reading from r.
func NewWireDec(r wireReader) *WireDec { return &WireDec{r: r} }

// Byte reads one raw byte.
func (d *WireDec) Byte() (byte, error) { return d.r.ReadByte() }

// Uvarint reads an unsigned varint.
func (d *WireDec) Uvarint() (uint64, error) { return binary.ReadUvarint(d.r) }

// Varint reads a signed varint.
func (d *WireDec) Varint() (int64, error) { return binary.ReadVarint(d.r) }

// Bool reads a boolean; any byte other than 0 or 1 is an error, so a
// desynchronised stream fails fast instead of drifting.
func (d *WireDec) Bool() (bool, error) {
	b, err := d.r.ReadByte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("bus: bad wire bool %#x", b)
	}
}

// count reads a slice length, bounding it before the caller allocates.
func (d *WireDec) count() (int, error) {
	u, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	if u > maxWireCount {
		return 0, fmt.Errorf("bus: wire count %d exceeds limit %d", u, maxWireCount)
	}
	return int(u), nil
}

// Bytes reads a length-prefixed byte slice.
func (d *WireDec) Bytes() ([]byte, error) {
	u, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if u > maxWireBytes {
		return nil, fmt.Errorf("bus: wire length %d exceeds limit %d", u, maxWireBytes)
	}
	if u == 0 {
		return nil, nil
	}
	b := make([]byte, u)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// String reads a length-prefixed string. Names, operations, and value
// universes dominate this wire and fit the scratch buffer.
func (d *WireDec) String() (string, error) {
	u, err := d.Uvarint()
	if err != nil {
		return "", err
	}
	if u > maxWireBytes {
		return "", fmt.Errorf("bus: wire length %d exceeds limit %d", u, maxWireBytes)
	}
	if u == 0 {
		return "", nil
	}
	if u <= uint64(len(d.scratch)) {
		b := d.scratch[:u]
		if _, err := io.ReadFull(d.r, b); err != nil {
			return "", err
		}
		// The map lookup keyed string(b) does not allocate; only a
		// miss pays for the string copy.
		if s, ok := d.interned[string(b)]; ok {
			return s, nil
		}
		s := string(b)
		if len(d.interned) < maxInterned {
			if d.interned == nil {
				d.interned = make(map[string]string, 16)
			}
			d.interned[s] = s
		}
		return s, nil
	}
	b := make([]byte, u)
	if _, err := io.ReadFull(d.r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// Time reads a timestamp written by PutTime.
func (d *WireDec) Time() (time.Time, error) {
	flag, err := d.r.ReadByte()
	if err != nil {
		return time.Time{}, err
	}
	switch flag {
	case 0:
		return time.Time{}, nil
	case 1:
		sec, err := d.Varint()
		if err != nil {
			return time.Time{}, err
		}
		nsec, err := d.Uvarint()
		if err != nil {
			return time.Time{}, err
		}
		if nsec >= uint64(time.Second) {
			return time.Time{}, fmt.Errorf("bus: bad wire nanoseconds %d", nsec)
		}
		return time.Unix(sec, int64(nsec)), nil
	default:
		return time.Time{}, fmt.Errorf("bus: bad wire time flag %#x", flag)
	}
}

// Value reads one typed RDL value.
func (d *WireDec) Value() (value.Value, error) {
	kind, err := d.r.ReadByte()
	if err != nil {
		return value.Value{}, err
	}
	switch kind {
	case wireValueZero:
		return value.Value{}, nil
	case wireValueInt:
		i, err := d.Varint()
		if err != nil {
			return value.Value{}, err
		}
		return value.Int(i), nil
	case wireValueString:
		s, err := d.String()
		if err != nil {
			return value.Value{}, err
		}
		return value.Str(s), nil
	case wireValueSet:
		universe, err := d.String()
		if err != nil {
			return value.Value{}, err
		}
		bits, err := d.Uvarint()
		if err != nil {
			return value.Value{}, err
		}
		return value.Value{T: value.SetType(universe), Set: bits}, nil
	case wireValueObject:
		name, err := d.String()
		if err != nil {
			return value.Value{}, err
		}
		id, err := d.String()
		if err != nil {
			return value.Value{}, err
		}
		return value.Object(name, id), nil
	default:
		return value.Value{}, fmt.Errorf("bus: bad wire value kind %#x", kind)
	}
}

// Values reads a counted value vector.
func (d *WireDec) Values() ([]value.Value, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	vs := make([]value.Value, n)
	for i := range vs {
		if vs[i], err = d.Value(); err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// Type reads one RDL argument type.
func (d *WireDec) Type() (value.Type, error) {
	kind, err := d.r.ReadByte()
	if err != nil {
		return value.Type{}, err
	}
	switch kind {
	case wireValueZero:
		return value.Type{}, nil
	case wireValueInt:
		return value.IntType, nil
	case wireValueString:
		return value.StringType, nil
	case wireValueSet:
		universe, err := d.String()
		if err != nil {
			return value.Type{}, err
		}
		return value.SetType(universe), nil
	case wireValueObject:
		name, err := d.String()
		if err != nil {
			return value.Type{}, err
		}
		return value.ObjectType(name), nil
	default:
		return value.Type{}, fmt.Errorf("bus: bad wire type kind %#x", kind)
	}
}

// Types reads a counted type vector.
func (d *WireDec) Types() ([]value.Type, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	ts := make([]value.Type, n)
	for i := range ts {
		if ts[i], err = d.Type(); err != nil {
			return nil, err
		}
	}
	return ts, nil
}

// Strings reads a counted string vector.
func (d *WireDec) Strings() ([]string, error) {
	n, err := d.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	ss := make([]string, n)
	for i := range ss {
		if ss[i], err = d.String(); err != nil {
			return nil, err
		}
	}
	return ss, nil
}

// ---- payload registry ----

// Reserved payload tags.
const (
	payloadTagNil = 0   // a nil argument or reply
	payloadTagGob = 255 // unregistered type, carried as an embedded gob blob
)

type wirePayload struct {
	tag byte
	typ reflect.Type
	enc func(*WireEnc, any) error
	dec func(*WireDec) (any, error)
}

// The registry is copy-on-write: registration happens once at process
// start (oasis.RegisterWireTypes), lookups happen per message.
var wirePayloads struct {
	mu     sync.Mutex
	byType atomic.Pointer[map[reflect.Type]*wirePayload]
	byTag  atomic.Pointer[[256]*wirePayload]
}

// RegisterWirePayload registers a binary codec for one concrete payload
// type carried in the `any` argument/reply position of bus calls. The
// tag is a wire-protocol constant: both ends of a link must agree on
// it, so owning packages allocate tags like protocol numbers (see
// oasis.RegisterWireTypes). Tags 0 and 255 are reserved. Registering a
// duplicate tag or type panics — it is a programming error, caught at
// process start.
func RegisterWirePayload(tag byte, prototype any, enc func(*WireEnc, any) error, dec func(*WireDec) (any, error)) {
	if tag == payloadTagNil || tag == payloadTagGob {
		panic(fmt.Sprintf("bus: wire payload tag %d is reserved", tag))
	}
	typ := reflect.TypeOf(prototype)
	if typ == nil {
		panic("bus: cannot register the nil payload")
	}
	wirePayloads.mu.Lock()
	defer wirePayloads.mu.Unlock()
	var byTag [256]*wirePayload
	if old := wirePayloads.byTag.Load(); old != nil {
		byTag = *old
	}
	if byTag[tag] != nil {
		panic(fmt.Sprintf("bus: wire payload tag %d registered twice", tag))
	}
	byType := make(map[reflect.Type]*wirePayload)
	if old := wirePayloads.byType.Load(); old != nil {
		for k, v := range *old {
			byType[k] = v
		}
	}
	if _, dup := byType[typ]; dup {
		panic(fmt.Sprintf("bus: wire payload type %v registered twice", typ))
	}
	p := &wirePayload{tag: tag, typ: typ, enc: enc, dec: dec}
	byTag[tag] = p
	byType[typ] = p
	wirePayloads.byTag.Store(&byTag)
	wirePayloads.byType.Store(&byType)
}

// gobPayload wraps an unregistered payload for the gob-blob fallback;
// the wrapper gives gob a concrete struct to hang the interface on.
type gobPayload struct{ V any }

// EncodePayload writes one `any` payload: a nil tag, a registered
// binary codec, or the gob-blob fallback for everything else.
func EncodePayload(e *WireEnc, v any) error {
	if v == nil {
		e.PutByte(payloadTagNil)
		return nil
	}
	if m := wirePayloads.byType.Load(); m != nil {
		if p := (*m)[reflect.TypeOf(v)]; p != nil {
			e.PutByte(p.tag)
			return p.enc(e, v)
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobPayload{V: v}); err != nil {
		return fmt.Errorf("bus: gob-fallback payload %T: %w", v, err)
	}
	e.PutByte(payloadTagGob)
	e.PutBytes(buf.Bytes())
	return nil
}

// DecodePayload reads one payload written by EncodePayload.
func DecodePayload(d *WireDec) (any, error) {
	tag, err := d.Byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case payloadTagNil:
		return nil, nil
	case payloadTagGob:
		blob, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		var p gobPayload
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&p); err != nil {
			return nil, fmt.Errorf("bus: gob-fallback payload: %w", err)
		}
		return p.V, nil
	}
	if m := wirePayloads.byTag.Load(); m != nil {
		if p := m[tag]; p != nil {
			return p.dec(d)
		}
	}
	return nil, fmt.Errorf("bus: unknown wire payload tag %d", tag)
}

// ---- message framing ----

// Message kind bytes on the wire.
const (
	wireKindCall   = 1
	wireKindReply  = 2
	wireKindNotify = 3
)

// encodeWireMsg writes one message frame. Frames carry only the fields
// their kind uses, so a notify costs no empty Op/Err/Seq bytes.
func encodeWireMsg(e *WireEnc, m *wireMsg) error {
	switch m.Kind {
	case "call":
		e.PutByte(wireKindCall)
		e.PutUvarint(m.Seq)
		e.PutString(m.From)
		e.PutString(m.To)
		e.PutString(m.Op)
		return EncodePayload(e, m.Arg)
	case "reply":
		e.PutByte(wireKindReply)
		e.PutUvarint(m.Seq)
		e.PutString(m.Err)
		e.PutBool(m.IsNil)
		return EncodePayload(e, m.Arg)
	case "notify":
		e.PutByte(wireKindNotify)
		e.PutString(m.From)
		e.PutString(m.To)
		encodeNotification(e, &m.Note)
		return nil
	default:
		return fmt.Errorf("bus: cannot encode message kind %q", m.Kind)
	}
}

// decodeWireMsg reads one message frame into m.
func decodeWireMsg(d *WireDec, m *wireMsg) error {
	kind, err := d.Byte()
	if err != nil {
		return err
	}
	*m = wireMsg{}
	switch kind {
	case wireKindCall:
		m.Kind = "call"
		if m.Seq, err = d.Uvarint(); err != nil {
			return err
		}
		if m.From, err = d.String(); err != nil {
			return err
		}
		if m.To, err = d.String(); err != nil {
			return err
		}
		if m.Op, err = d.String(); err != nil {
			return err
		}
		m.Arg, err = DecodePayload(d)
		return err
	case wireKindReply:
		m.Kind = "reply"
		if m.Seq, err = d.Uvarint(); err != nil {
			return err
		}
		if m.Err, err = d.String(); err != nil {
			return err
		}
		if m.IsNil, err = d.Bool(); err != nil {
			return err
		}
		m.Arg, err = DecodePayload(d)
		return err
	case wireKindNotify:
		m.Kind = "notify"
		if m.From, err = d.String(); err != nil {
			return err
		}
		if m.To, err = d.String(); err != nil {
			return err
		}
		m.Note, err = decodeNotification(d)
		return err
	default:
		return fmt.Errorf("bus: bad wire message kind %#x", kind)
	}
}

// encodeNotification writes one event.Notification.
func encodeNotification(e *WireEnc, n *event.Notification) {
	e.PutString(n.Source)
	e.PutUvarint(n.SessionID)
	e.PutUvarint(n.Seq)
	e.PutBool(n.Heartbeat)
	e.PutUvarint(n.RegID)
	e.PutUvarint(n.Coalesced)
	e.PutTime(n.Horizon)
	encodeEvent(e, &n.Event)
}

// decodeNotification reads one event.Notification.
func decodeNotification(d *WireDec) (event.Notification, error) {
	var n event.Notification
	var err error
	if n.Source, err = d.String(); err != nil {
		return n, err
	}
	if n.SessionID, err = d.Uvarint(); err != nil {
		return n, err
	}
	if n.Seq, err = d.Uvarint(); err != nil {
		return n, err
	}
	if n.Heartbeat, err = d.Bool(); err != nil {
		return n, err
	}
	if n.RegID, err = d.Uvarint(); err != nil {
		return n, err
	}
	if n.Coalesced, err = d.Uvarint(); err != nil {
		return n, err
	}
	if n.Horizon, err = d.Time(); err != nil {
		return n, err
	}
	if n.Event, err = decodeEvent(d); err != nil {
		return n, err
	}
	return n, nil
}

// encodeEvent writes one event.Event.
func encodeEvent(e *WireEnc, ev *event.Event) {
	e.PutString(ev.Name)
	e.PutString(ev.Source)
	e.PutUvarint(ev.Seq)
	e.PutTime(ev.Time)
	e.PutValues(ev.Args)
}

// decodeEvent reads one event.Event.
func decodeEvent(d *WireDec) (event.Event, error) {
	var ev event.Event
	var err error
	if ev.Name, err = d.String(); err != nil {
		return ev, err
	}
	if ev.Source, err = d.String(); err != nil {
		return ev, err
	}
	if ev.Seq, err = d.Uvarint(); err != nil {
		return ev, err
	}
	if ev.Time, err = d.Time(); err != nil {
		return ev, err
	}
	if ev.Args, err = d.Values(); err != nil {
		return ev, err
	}
	return ev, nil
}
