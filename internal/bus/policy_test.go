package bus

import (
	"errors"
	"sync"
	"testing"
	"time"

	"oasis/internal/event"
)

// scriptPolicy is a LinkPolicy with pre-scripted verdicts (popped in
// send order) and an explicit blocked-link set.
type scriptPolicy struct {
	mu       sync.Mutex
	verdicts []Verdict
	blocked  map[linkKey]bool
}

func (s *scriptPolicy) Notify(from, to string) Verdict {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.verdicts) == 0 {
		return Verdict{Copies: 1}
	}
	v := s.verdicts[0]
	s.verdicts = s.verdicts[1:]
	return v
}

func (s *scriptPolicy) Blocked(from, to string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.blocked[normKey(from, to)]
}

func (s *scriptPolicy) setBlocked(a, b string, v bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.blocked == nil {
		s.blocked = make(map[linkKey]bool)
	}
	s.blocked[normKey(a, b)] = v
}

func TestPolicyDropIsCounted(t *testing.T) {
	n, _ := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	n.SetLinkPolicy(&scriptPolicy{verdicts: []Verdict{{Drop: true}, {Copies: 1}}})
	before := n.Dropped()
	n.Send("a", "b", event.Notification{Seq: 1})
	n.Send("a", "b", event.Notification{Seq: 2})
	if p.noteCount() != 1 {
		t.Fatalf("delivered %d notes, want 1", p.noteCount())
	}
	if got := n.Dropped() - before; got != 1 {
		t.Fatalf("Dropped advanced by %d, want 1", got)
	}
}

func TestPolicyDuplicates(t *testing.T) {
	n, _ := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	n.SetLinkPolicy(&scriptPolicy{verdicts: []Verdict{{Copies: 3}}})
	n.Send("a", "b", event.Notification{Seq: 1})
	if p.noteCount() != 3 {
		t.Fatalf("delivered %d copies, want 3", p.noteCount())
	}
}

func TestPolicyDelayReorders(t *testing.T) {
	n, clk := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	n.SetLinkPolicy(&scriptPolicy{verdicts: []Verdict{
		{Copies: 1, Delay: 10 * time.Second},
		{Copies: 1, Delay: 1 * time.Second},
	}})
	n.Send("a", "b", event.Notification{Seq: 1})
	n.Send("a", "b", event.Notification{Seq: 2})
	if p.noteCount() != 0 {
		t.Fatal("delayed notifications arrived early")
	}
	clk.Advance(time.Minute)
	n.Flush()
	if p.noteCount() != 2 {
		t.Fatalf("delivered %d, want 2", p.noteCount())
	}
	if p.notes[0].Seq != 2 || p.notes[1].Seq != 1 {
		t.Fatalf("order = %d,%d; want 2,1 (reordered by delay)", p.notes[0].Seq, p.notes[1].Seq)
	}
}

func TestPolicyBlockedSeversCalls(t *testing.T) {
	n, _ := newNet(t)
	if err := n.Register("b", &testPeer{}); err != nil {
		t.Fatal(err)
	}
	pol := &scriptPolicy{}
	pol.setBlocked("a", "b", true)
	n.SetLinkPolicy(pol)
	if _, err := n.Call("a", "b", "echo", 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	pol.setBlocked("a", "b", false)
	if _, err := n.Call("a", "b", "echo", 1); err != nil {
		t.Fatalf("unblocked call failed: %v", err)
	}
	// Removing the policy also unblocks.
	pol.setBlocked("a", "b", true)
	n.SetLinkPolicy(nil)
	if _, err := n.Call("a", "b", "echo", 1); err != nil {
		t.Fatalf("call after policy removal failed: %v", err)
	}
}

// A notification queued with a delay must not slip across a link that
// fails before it comes due; it counts as dropped instead.
func TestQueuedNotificationDroppedWhenLinkFails(t *testing.T) {
	n, clk := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	n.SetDelay("a", "b", 5*time.Second)
	n.Send("a", "b", event.Notification{Seq: 1})
	n.FailLink("a", "b")
	clk.Advance(10 * time.Second)
	before := n.Dropped()
	if got := n.Flush(); got != 0 {
		t.Fatalf("Flush delivered %d across failed link", got)
	}
	if p.noteCount() != 0 {
		t.Fatal("queued notification crossed failed link")
	}
	if n.Dropped() != before+1 {
		t.Fatalf("drop not counted: %d -> %d", before, n.Dropped())
	}
	// Heal and verify traffic resumes.
	n.HealLink("a", "b")
	n.SetDelay("a", "b", 0)
	n.Send("a", "b", event.Notification{Seq: 2})
	if p.noteCount() != 1 {
		t.Fatal("healed link did not deliver")
	}
}

// Same delivery-time check for a policy partition: queued before the
// split, due during it.
func TestQueuedNotificationDroppedDuringPolicyPartition(t *testing.T) {
	n, clk := newNet(t)
	p := &testPeer{}
	if err := n.Register("b", p); err != nil {
		t.Fatal(err)
	}
	pol := &scriptPolicy{}
	n.SetLinkPolicy(pol)
	n.SetDelay("a", "b", 5*time.Second)
	n.Send("a", "b", event.Notification{Seq: 1})
	pol.setBlocked("a", "b", true)
	clk.Advance(10 * time.Second)
	if got := n.Flush(); got != 0 {
		t.Fatalf("Flush delivered %d across partition", got)
	}
	if p.noteCount() != 0 {
		t.Fatal("queued notification crossed partition")
	}
}

func TestCallRetryExhaustsThenFails(t *testing.T) {
	n, clk := newNet(t)
	if err := n.Register("caller", &testPeer{}); err != nil {
		t.Fatal(err)
	}
	ln, err := nettest()
	if err != nil {
		t.Skip(err)
	}
	go func() { _ = n.ServeTCP(ln) }()
	// Register a remote, then kill the server so every redial fails.
	if err := n.AddRemote("svc", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	// Break the live connection so the next call must redial.
	n.peersMu.RLock()
	rp := n.remotes["svc"].(*remotePeer)
	n.peersMu.RUnlock()
	rp.mu.Lock()
	rp.breakLocked()
	rp.mu.Unlock()

	n.SetCallRetry(3, time.Second)
	done := make(chan error, 1)
	go func() {
		_, err := n.Call("caller", "svc", "echo", 1)
		done <- err
	}()
	// The retry loop waits on the virtual clock between attempts; pump
	// it until the call gives up.
	deadline := time.Now().Add(5 * time.Second)
	for {
		select {
		case err := <-done:
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("err = %v, want ErrUnreachable", err)
			}
			return
		default:
			if time.Now().After(deadline) {
				t.Fatal("retry loop did not terminate")
			}
			clk.Advance(time.Second)
			time.Sleep(time.Millisecond)
		}
	}
}

func TestRemoteDroppedCountsEncodeFailures(t *testing.T) {
	n, _ := newNet(t)
	ln, err := nettest()
	if err != nil {
		t.Skip(err)
	}
	go func() { _ = n.ServeTCP(ln) }()
	if err := n.AddRemote("svc", ln.Addr().String()); err != nil {
		t.Fatal(err)
	}
	ln.Close()
	n.peersMu.RLock()
	rp := n.remotes["svc"].(*remotePeer)
	n.peersMu.RUnlock()
	rp.mu.Lock()
	rp.breakLocked()
	rp.mu.Unlock()

	before := n.Dropped()
	n.Send("caller", "svc", event.Notification{Seq: 1})
	if got := n.RemoteDropped("svc"); got != 1 {
		t.Fatalf("RemoteDropped = %d, want 1", got)
	}
	if n.Dropped() != before+1 {
		t.Fatal("per-link drop not reflected in network Dropped")
	}
	if n.RemoteDropped("nosuch") != 0 {
		t.Fatal("unknown name should report 0")
	}
}
