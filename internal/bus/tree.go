package bus

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"

	"oasis/internal/event"
)

// Tree is a deterministic k-ary dissemination tree over a member set.
// Members are sorted, then rotated so the root sits at position 0; the
// children of the node at position p are positions k·p+1 … k·p+k. Every
// participant that builds a Tree from the same member set computes the
// same topology for any root with no coordination — the root is simply
// the origin of the burst being disseminated, so every member can
// originate storms over its own tree without a leader election.
//
// This replaces flat point-to-point fan-out for revocation storms: the
// origin pays k sends instead of n−1, interior nodes relay to their own
// k children (in parallel, when the Disseminator runs async), and the
// longest path is ⌈log_k n⌉ hops. A severed link starves exactly one
// subtree, which the §4.10 suspicion machinery detects and the resync
// protocol repairs — tree repair is heartbeat + resync, not a separate
// protocol (docs/SHARDING.md).
type Tree struct {
	members []string       // sorted
	pos     map[string]int // member -> sorted position
	fanout  int
}

// DefaultTreeFanout is the fanout used when NewTree is given k <= 0.
const DefaultTreeFanout = 4

// NewTree builds a dissemination tree over the given members (sorted
// and deduplicated, so any permutation yields the same tree).
func NewTree(members []string, fanout int) (*Tree, error) {
	if fanout <= 0 {
		fanout = DefaultTreeFanout
	}
	seen := make(map[string]bool, len(members))
	var sorted []string
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("bus: empty tree member name")
		}
		if !seen[m] {
			seen[m] = true
			sorted = append(sorted, m)
		}
	}
	if len(sorted) == 0 {
		return nil, fmt.Errorf("bus: tree needs at least one member")
	}
	sort.Strings(sorted)
	pos := make(map[string]int, len(sorted))
	for i, m := range sorted {
		pos[m] = i
	}
	return &Tree{members: sorted, pos: pos, fanout: fanout}, nil
}

// Members returns the sorted member list (treat as read-only).
func (t *Tree) Members() []string { return t.members }

// Fanout returns the tree's k.
func (t *Tree) Fanout() int { return t.fanout }

// rotated maps a member to its position in the tree rooted at root:
// the root occupies 0 and the rest keep their cyclic order.
func (t *Tree) rotated(root, self string) (int, bool) {
	r, okR := t.pos[root]
	s, okS := t.pos[self]
	if !okR || !okS {
		return 0, false
	}
	n := len(t.members)
	return (s - r + n) % n, true
}

// Children returns self's children in the tree rooted at root; nil when
// self is a leaf or either name is not a member.
func (t *Tree) Children(root, self string) []string {
	p, ok := t.rotated(root, self)
	if !ok {
		return nil
	}
	n := len(t.members)
	r := t.pos[root]
	var out []string
	for c := t.fanout*p + 1; c <= t.fanout*p+t.fanout && c < n; c++ {
		out = append(out, t.members[(r+c)%n])
	}
	return out
}

// Parent returns self's parent in the tree rooted at root; ok is false
// for the root itself and for non-members.
func (t *Tree) Parent(root, self string) (string, bool) {
	p, ok := t.rotated(root, self)
	if !ok || p == 0 {
		return "", false
	}
	r := t.pos[root]
	return t.members[(r+(p-1)/t.fanout)%len(t.members)], true
}

// Depth returns the hop count from root to self (0 for the root), or -1
// for non-members.
func (t *Tree) Depth(root, self string) int {
	p, ok := t.rotated(root, self)
	if !ok {
		return -1
	}
	d := 0
	for p > 0 {
		p = (p - 1) / t.fanout
		d++
	}
	return d
}

// ForwardBatch sends a burst over one link with the exact per-note
// semantics of Send — severed-link drop, link-policy verdicts
// (drop/duplicate/delay), configured link delay — then coalesces the
// immediate survivors under the installed CoalesceRule and delivers
// them as one batch. It is the per-tree-edge equivalent of
// StartBatch/EndBatch, usable concurrently from many relays because the
// burst is buffered locally instead of in the per-source batch table.
// It returns the number of notifications delivered immediately
// (delayed copies are queued for Flush as usual).
func (n *Network) ForwardBatch(from, to string, notes []event.Notification) int {
	if len(notes) == 0 {
		return 0
	}
	ep, remote := n.route(to)
	k := normKey(from, to)
	n.linkMu.RLock()
	downNow := n.down[k]
	linkDelay := n.delay[k]
	n.linkMu.RUnlock()
	box := n.policy.Load()
	var immediate []event.Notification
	for _, note := range notes {
		n.notifyCount.Add(1)
		if note.Heartbeat {
			n.heartbeatCount.Add(1)
		}
		if downNow || (ep == nil && remote == nil) {
			n.droppedCount.Add(1)
			continue
		}
		copies, d := 1, linkDelay
		if box != nil {
			v := box.p.Notify(from, to)
			if v.Drop {
				n.droppedCount.Add(1)
				continue
			}
			if v.Copies > 1 {
				copies = v.Copies
			}
			d += v.Delay
		}
		for c := 0; c < copies; c++ {
			if d > 0 {
				n.queueMu.Lock()
				n.nextSeq++
				heap.Push(&n.queue, queued{from: from, to: to, n: note, due: n.clk.Now().Add(d), seq: n.nextSeq})
				n.queueMu.Unlock()
				continue
			}
			immediate = append(immediate, note)
		}
	}
	if len(immediate) == 0 {
		return 0
	}
	out := coalesceNotes(n.coalesce.Load(), immediate)
	n.deliverBatch(from, to, out)
	return len(out)
}

// Disseminator relays bursts along a Tree's edges for one member. Each
// edge is one ForwardBatch — link faults, delay and coalescing apply
// per edge, so a storm reaching a relay as an already-coalesced burst
// is re-coalesced against anything the relay adds before forwarding.
//
// In async mode each child edge is forwarded on its own goroutine: the
// origin returns after paying k sends and interior relays fan out in
// parallel, which is where the tree's wall-clock advantage over flat
// fan-out comes from (bench_shard_test.go). Synchronous mode forwards
// depth-first on the caller's goroutine — fully deterministic, which is
// what the chaos suite wants.
type Disseminator struct {
	net   *Network
	tree  *Tree
	self  string
	async bool
	wg    sync.WaitGroup
}

// NewDisseminator builds the relay for one tree member.
func NewDisseminator(n *Network, t *Tree, self string, async bool) *Disseminator {
	return &Disseminator{net: n, tree: t, self: self, async: async}
}

// Tree returns the topology the disseminator relays over.
func (d *Disseminator) Tree() *Tree { return d.tree }

// Broadcast originates a burst: disseminates notes over the tree rooted
// at this member.
func (d *Disseminator) Broadcast(notes []event.Notification) {
	d.Forward(d.self, notes)
}

// Forward relays a burst rooted at root to this member's children.
// Callers must not mutate notes afterwards in async mode.
func (d *Disseminator) Forward(root string, notes []event.Notification) {
	for _, child := range d.tree.Children(root, d.self) {
		if d.async {
			child := child
			d.wg.Add(1)
			go func() {
				defer d.wg.Done()
				d.net.ForwardBatch(d.self, child, notes)
			}()
			continue
		}
		d.net.ForwardBatch(d.self, child, notes)
	}
}

// Wait blocks until every async forward this member started has been
// handed to the network.
func (d *Disseminator) Wait() { d.wg.Wait() }
