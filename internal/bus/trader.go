package bus

import (
	"fmt"
	"sort"
	"sync"
)

// Trader is the name server of §2.10 / §6.2.1: services register the
// interfaces they offer (including the standard certificate-validation
// interface and event interfaces), and clients look up service
// instances by interface type — the ODP Trader role the paper leans on
// for locating event servers.
type Trader struct {
	mu     sync.Mutex
	offers map[string]map[string]bool // interface -> set of service names
}

// NewTrader creates an empty trader.
func NewTrader() *Trader {
	return &Trader{offers: make(map[string]map[string]bool)}
}

// Register advertises that a service instance offers an interface.
func (t *Trader) Register(iface, service string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	set, ok := t.offers[iface]
	if !ok {
		set = make(map[string]bool)
		t.offers[iface] = set
	}
	set[service] = true
}

// Withdraw removes an offer.
func (t *Trader) Withdraw(iface, service string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.offers[iface], service)
}

// Lookup returns the services offering an interface, sorted for
// determinism.
func (t *Trader) Lookup(iface string) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.offers[iface]))
	for s := range t.offers[iface] {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// LookupOne returns a single offer or an error — the common client path
// of figure 6.1 step 1.
func (t *Trader) LookupOne(iface string) (string, error) {
	offers := t.Lookup(iface)
	if len(offers) == 0 {
		return "", fmt.Errorf("bus: no service offers interface %q", iface)
	}
	return offers[0], nil
}
