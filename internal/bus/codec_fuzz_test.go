package bus

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"oasis/internal/event"
	"oasis/internal/value"
)

// fuzzEncode renders a message with the binary codec, failing the test
// on encoder errors (all fuzz inputs that reach it are already-decoded,
// hence encodable, messages).
func fuzzEncode(t testing.TB, m *wireMsg) []byte {
	t.Helper()
	var buf bytes.Buffer
	e := NewWireEnc(&buf)
	if err := encodeWireMsg(e, m); err != nil {
		t.Fatalf("re-encode of decoded message failed: %v", err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWireMsgDecode feeds arbitrary bytes to the wire-message decoder.
// The decoder must never panic; when it accepts an input, the decoded
// message must survive a re-encode → re-decode cycle, and — for
// payloads with a hand-rolled codec — the re-encoding must be
// byte-stable (gob-blob fallback payloads may serialise maps in any
// order, so they only get the structural check).
func FuzzWireMsgDecode(f *testing.F) {
	testPayloads(f)
	seed := func(m wireMsg) {
		f.Add(fuzzEncode(f, &m))
	}
	seedRaw := func(b []byte) { f.Add(b) }
	seed(wireMsg{Kind: "call", Seq: 1, From: "a", To: "b", Op: "echo", Arg: testPayloadA{Name: "n", Count: -3}})
	seed(wireMsg{Kind: "call", Seq: 7, From: "x", To: "y", Op: "validate", Arg: "string payload"})
	seed(wireMsg{Kind: "reply", Seq: 1, Arg: testPayloadA{Name: "ok", Count: 9000}})
	seed(wireMsg{Kind: "reply", Seq: 2, Err: "bus: boom", IsNil: true})
	seed(wireMsg{Kind: "notify", From: "svc", To: "watcher", Note: event.Notification{
		Source:    "svc",
		SessionID: 42,
		Seq:       3,
		Heartbeat: true,
		RegID:     5,
		Coalesced: 2,
		Horizon:   time.Unix(2000, 0),
		Event: event.Event{
			Name:   "Modified",
			Source: "svc",
			Seq:    3,
			Time:   time.Unix(1000, 500),
			Args:   []value.Value{value.Str("ref"), value.Int(0)},
		},
	}})
	seedRaw([]byte{0xff})
	seedRaw([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var m wireMsg
		d := NewWireDec(bytes.NewReader(data))
		if err := decodeWireMsg(d, &m); err != nil {
			return // rejected input; only panics are bugs here
		}
		enc1 := fuzzEncode(t, &m)
		var m2 wireMsg
		if err := decodeWireMsg(NewWireDec(bytes.NewReader(enc1)), &m2); err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v\nmsg: %+v", err, m)
		}
		stable := m.Arg == nil
		if !stable {
			if reg := wirePayloads.byType.Load(); reg != nil {
				_, stable = (*reg)[reflect.TypeOf(m.Arg)]
			}
		}
		if stable {
			enc2 := fuzzEncode(t, &m2)
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("encoding not byte-stable:\n first: %x\nsecond: %x", enc1, enc2)
			}
		}
	})
}
