package cert

import (
	"testing"
	"time"

	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/value"
)

var (
	testClient  = ids.ClientID{Host: "ely", ID: 7, BootTime: time.Unix(100, 0)}
	otherClient = ids.ClientID{Host: "cam", ID: 9, BootTime: time.Unix(100, 0)}
)

func testRMC() *RMC {
	return &RMC{
		Service:  "Conf",
		Rolefile: "main",
		Roles:    RoleSet(0).With(1),
		Args:     []value.Value{value.Object("Login.userid", "dm")},
		Client:   testClient,
		CRR:      credrec.Ref{Index: 3, Magic: 5},
	}
}

func TestRMCSignVerify(t *testing.T) {
	s := NewHMACSigner([]byte("secret"), 16)
	c := testRMC()
	c.Sign(s)
	if !c.Verify(s) {
		t.Fatal("signed certificate does not verify")
	}
}

func TestRMCTamperDetected(t *testing.T) {
	// Figure 4.1(b): changing any signed field invalidates the signature.
	s := NewHMACSigner([]byte("secret"), 16)
	mutations := []func(*RMC){
		func(c *RMC) { c.Service = "Other" },
		func(c *RMC) { c.Rolefile = "other" },
		func(c *RMC) { c.Roles = c.Roles.With(3) },
		func(c *RMC) { c.Args[0] = value.Object("Login.userid", "attacker") },
		func(c *RMC) { c.Client = otherClient }, // theft
		func(c *RMC) { c.CRR = credrec.Ref{Index: 99, Magic: 1} },
		func(c *RMC) { c.Expiry = time.Unix(999, 0) },
	}
	for i, mut := range mutations {
		c := testRMC()
		c.Sign(s)
		mut(c)
		if c.Verify(s) {
			t.Errorf("mutation %d not detected", i)
		}
	}
}

func TestRMCWrongServiceSecret(t *testing.T) {
	// Certificates may only be validated by the issuing instance
	// (figure 4.1): a different secret rejects them.
	c := testRMC()
	c.Sign(NewHMACSigner([]byte("conf-secret"), 16))
	if c.Verify(NewHMACSigner([]byte("file-secret"), 16)) {
		t.Fatal("certificate verified under another service's secret")
	}
}

func TestSignatureLengthTradeoff(t *testing.T) {
	// §4.2: services choose signature length.
	short := NewHMACSigner([]byte("s"), 4)
	long := NewHMACSigner([]byte("s"), 32)
	c := testRMC()
	c.Sign(short)
	if len(c.Sig) != 4 {
		t.Fatalf("short sig length = %d", len(c.Sig))
	}
	if !c.Verify(short) {
		t.Fatal("short signature does not verify")
	}
	c.Sign(long)
	if len(c.Sig) != 32 {
		t.Fatalf("long sig length = %d", len(c.Sig))
	}
	// Clamping.
	if got := len(NewHMACSigner([]byte("s"), 0).Sign([]byte("x"))); got != 4 {
		t.Fatalf("clamped short = %d", got)
	}
	if got := len(NewHMACSigner([]byte("s"), 99).Sign([]byte("x"))); got != 32 {
		t.Fatalf("clamped long = %d", got)
	}
}

func TestRollingSigner(t *testing.T) {
	// §5.5.1: certificates signed with older retained secrets verify;
	// beyond the retention window they are dead.
	r := NewRollingSigner([]byte("gen0"), 16, 3)
	c := testRMC()
	c.Sign(r)

	r.Roll([]byte("gen1"))
	r.Roll([]byte("gen2"))
	if !c.Verify(r) {
		t.Fatal("certificate from 2 generations ago rejected")
	}
	if r.Generations() != 3 {
		t.Fatalf("generations = %d", r.Generations())
	}
	r.Roll([]byte("gen3")) // evicts gen0
	if c.Verify(r) {
		t.Fatal("certificate beyond retention window accepted")
	}
	// New certificates sign with the newest secret.
	c2 := testRMC()
	c2.Sign(r)
	if !c2.Verify(r) {
		t.Fatal("fresh certificate rejected")
	}
}

func TestRecordSigner(t *testing.T) {
	r := NewRecordSigner()
	c := testRMC()
	c.Sign(r)
	if !c.Verify(r) {
		t.Fatal("recorded certificate rejected")
	}
	c.Client = otherClient
	if c.Verify(r) {
		t.Fatal("altered certificate accepted by record signer")
	}
}

func TestDelegationCertificate(t *testing.T) {
	s := NewHMACSigner([]byte("secret"), 16)
	d := &Delegation{
		Service:  "Conf",
		Rolefile: "main",
		Role:     "Member",
		Args:     []value.Value{value.Object("Login.userid", "jim")},
		Required: []RoleSpec{{
			Service: "Login", Role: "LoggedOn",
			Args: []value.Value{value.Object("Login.userid", "jim")},
		}},
		DelegCRR: credrec.Ref{Index: 12, Magic: 1},
		Expiry:   time.Unix(5000, 0),
	}
	d.Sign(s)
	if !d.Verify(s) {
		t.Fatal("delegation does not verify")
	}
	d.Required[0].Args[0] = value.Object("Login.userid", "mallory")
	if d.Verify(s) {
		t.Fatal("tampered required-roles accepted")
	}
}

func TestRevocationCertificate(t *testing.T) {
	s := NewHMACSigner([]byte("secret"), 16)
	r := &Revocation{
		Service:      "Conf",
		DelegatorCRR: credrec.Ref{Index: 1, Magic: 1},
		TargetCRR:    credrec.Ref{Index: 12, Magic: 1},
	}
	r.Sign(s)
	if !r.Verify(s) {
		t.Fatal("revocation does not verify")
	}
	r.TargetCRR = credrec.Ref{Index: 13, Magic: 1}
	if r.Verify(s) {
		t.Fatal("tampered revocation accepted")
	}
}

func TestRoleMap(t *testing.T) {
	m, err := NewRoleMap("Chair", "Member", "Candidate")
	if err != nil {
		t.Fatal(err)
	}
	set, err := m.Set("Chair", "Member")
	if err != nil {
		t.Fatal(err)
	}
	names := m.Names(set)
	if len(names) != 2 || names[0] != "Chair" || names[1] != "Member" {
		t.Fatalf("Names = %v", names)
	}
	if b, ok := m.Bit("Candidate"); !ok || b != 2 {
		t.Fatalf("Bit = %d, %v", b, ok)
	}
	if _, ok := m.Bit("Nope"); ok {
		t.Fatal("unknown role has a bit")
	}
	if _, err := m.Set("Nope"); err == nil {
		t.Fatal("set of unknown role succeeded")
	}
}

func TestRoleMapErrors(t *testing.T) {
	if _, err := NewRoleMap("A", "A"); err == nil {
		t.Fatal("duplicate role accepted")
	}
	many := make([]string, 65)
	for i := range many {
		many[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	if _, err := NewRoleMap(many...); err == nil {
		t.Fatal("65 roles accepted")
	}
}

func TestCompoundCertificateBits(t *testing.T) {
	// §4.3: a Chair is also a Member; one certificate carries both.
	m, _ := NewRoleMap("Chair", "Member")
	set, _ := m.Set("Chair", "Member")
	c := testRMC()
	c.Roles = set
	chairBit, _ := m.Bit("Chair")
	memberBit, _ := m.Bit("Member")
	if !c.Roles.Has(chairBit) || !c.Roles.Has(memberBit) {
		t.Fatal("compound certificate missing roles")
	}
}
