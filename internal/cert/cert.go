// Package cert implements OASIS certificates: role membership
// certificates (figure 4.2), delegation and revocation certificates
// (figure 4.3), and the digital-signature machinery of figure 4.1,
// including the rolling secret table of §5.5.1.
//
// A certificate is an idealised membership card (§2.9): its attributes
// can be examined, and forgery, tampering, theft and use out of context
// are all detectable. The only function of the signature is to detect
// forgery (§4.2); revocation is carried by the embedded credential
// record reference, never by changing secrets.
package cert

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"hash"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// RoleSet is a bitset over a service's role-name mapping: compound
// certificates represent membership of several roles with identical
// arguments (§4.3).
type RoleSet uint64

// Has reports whether bit i is set.
func (s RoleSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// With returns the set with bit i added.
func (s RoleSet) With(i int) RoleSet { return s | 1<<uint(i) }

// RoleMap fixes the mapping between role names and bits. The mapping
// must not change during the lifetime of the service, so it is provided
// as configuration when a service is initialised (§4.3).
type RoleMap struct {
	names []string
	bits  map[string]int
}

// NewRoleMap builds a role map. Order is significant and must be stable
// across restarts of the service.
func NewRoleMap(names ...string) (*RoleMap, error) {
	if len(names) > 64 {
		return nil, fmt.Errorf("cert: at most 64 roles per rolefile, got %d", len(names))
	}
	m := &RoleMap{names: append([]string(nil), names...), bits: make(map[string]int, len(names))}
	for i, n := range names {
		if _, dup := m.bits[n]; dup {
			return nil, fmt.Errorf("cert: duplicate role name %q", n)
		}
		m.bits[n] = i
	}
	return m, nil
}

// Bit returns the bit for a role name.
func (m *RoleMap) Bit(role string) (int, bool) {
	b, ok := m.bits[role]
	return b, ok
}

// Set builds a RoleSet from role names.
func (m *RoleMap) Set(roles ...string) (RoleSet, error) {
	var s RoleSet
	for _, r := range roles {
		b, ok := m.bits[r]
		if !ok {
			return 0, fmt.Errorf("cert: unknown role %q", r)
		}
		s = s.With(b)
	}
	return s, nil
}

// Names expands a RoleSet to sorted role names.
func (m *RoleMap) Names(s RoleSet) []string {
	var out []string
	for i, n := range m.names {
		if s.Has(i) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// RMC is a role membership certificate (figure 4.2): a process-specific
// capability entitling the named client to act under the authority of
// the certified role(s).
type RMC struct {
	Service  string  // issuing service instance
	Rolefile string  // scope within the service (§2.10)
	Roles    RoleSet // compound role bits (§4.3)
	Args     []value.Value
	Client   ids.ClientID // the client the certificate is bound to
	CRR      credrec.Ref  // validity credential (§4.6)
	Expiry   time.Time    // zero = no expiry
	Sig      []byte

	// canon caches the canonical byte form and last verification; it
	// is pinned to this instance by an owner check, so struct copies
	// re-serialise their own fields (cache.go).
	canon atomic.Value // *certCanon
}

// buildCanonical serialises the signed fields deterministically. The
// client identifier and context are folded in so that theft and
// out-of-context use change the signature (figure 4.1). Hot paths go
// through canonical() in cache.go, which memoizes the result
// per instance.
func (c *RMC) buildCanonical() []byte {
	var b strings.Builder
	b.WriteString("rmc|")
	b.WriteString(c.Service)
	b.WriteByte('|')
	b.WriteString(c.Rolefile)
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(uint64(c.Roles), 16))
	b.WriteByte('|')
	b.WriteString(value.MarshalArgs(c.Args))
	b.WriteByte('|')
	b.WriteString(c.Client.String())
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(c.CRR.Uint64(), 16))
	b.WriteByte('|')
	if !c.Expiry.IsZero() {
		b.WriteString(strconv.FormatInt(c.Expiry.UnixNano(), 10))
	}
	return []byte(b.String())
}

// String renders the certificate briefly.
func (c *RMC) String() string {
	return fmt.Sprintf("RMC{%s/%s roles=%x args=%s client=%v crr=%v}",
		c.Service, c.Rolefile, uint64(c.Roles), value.MarshalArgs(c.Args), c.Client, c.CRR)
}

// RoleSpec names a role (with concrete arguments) that a delegation
// candidate must hold (figure 4.3: "required roles").
type RoleSpec struct {
	Service  string
	Rolefile string
	Role     string
	Args     []value.Value
}

func (r RoleSpec) canonical() string {
	return r.Service + "." + r.Rolefile + "." + r.Role + "(" + value.MarshalArgs(r.Args) + ")"
}

// String renders the spec.
func (r RoleSpec) String() string { return r.canonical() }

// Delegation is a delegation certificate (figure 4.3): the delegator's
// service-countersigned offer of entry to Role for any client holding
// the required roles. Candidates present it when entering the role; the
// embedded DelegCRR is the credential record representing the
// (revocable) delegation.
type Delegation struct {
	Service  string
	Rolefile string
	Role     string // role to be entered
	Args     []value.Value
	Required []RoleSpec  // roles the delegator requires the candidate to hold
	DelegCRR credrec.Ref // the delegation's own credential record
	Expiry   time.Time   // delegations should time out (§4.4)
	Sig      []byte

	// canon caches the canonical byte form and last verification; see
	// the RMC field of the same name and cache.go.
	canon atomic.Value // *certCanon
}

func (d *Delegation) buildCanonical() []byte {
	var b strings.Builder
	b.WriteString("deleg|")
	b.WriteString(d.Service)
	b.WriteByte('|')
	b.WriteString(d.Rolefile)
	b.WriteByte('|')
	b.WriteString(d.Role)
	b.WriteByte('|')
	b.WriteString(value.MarshalArgs(d.Args))
	b.WriteByte('|')
	for _, r := range d.Required {
		b.WriteString(r.canonical())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	b.WriteString(strconv.FormatUint(d.DelegCRR.Uint64(), 16))
	b.WriteByte('|')
	if !d.Expiry.IsZero() {
		b.WriteString(strconv.FormatInt(d.Expiry.UnixNano(), 10))
	}
	return []byte(b.String())
}

// Revocation is a revocation certificate (figure 4.3). DelegatorCRR
// witnesses that the delegator is still a member of the delegating role;
// TargetCRR is the credential to be invalidated.
type Revocation struct {
	Service      string
	DelegatorCRR credrec.Ref
	TargetCRR    credrec.Ref
	Sig          []byte
}

func (r *Revocation) canonical() []byte {
	return []byte("revoke|" + r.Service + "|" +
		strconv.FormatUint(r.DelegatorCRR.Uint64(), 16) + "|" +
		strconv.FormatUint(r.TargetCRR.Uint64(), 16))
}

// Sign signs the revocation certificate.
func (r *Revocation) Sign(s Signer) { r.Sig = s.Sign(r.canonical()) }

// Verify checks the revocation certificate's signature.
func (r *Revocation) Verify(s Signer) bool { return s.Verify(r.canonical(), r.Sig) }

// Signer abstracts the integrity check so that each service can choose
// its own security/efficiency trade-off (§4.2): a cheap short-signature
// HMAC, a full-length one, a rolling table, or a plain issue-record.
// Implementations must be safe for concurrent use: the engine signs and
// verifies certificates from many goroutines at once.
type Signer interface {
	Sign(data []byte) []byte
	Verify(data, sig []byte) bool
}

// HMACSigner signs with HMAC-SHA256 under a single secret, truncating to
// size bytes (variable-length signatures, §4.2).
//
// hash.Hash instances are not goroutine-safe, so a keyed HMAC state is
// never shared between concurrent callers: each Sign/Verify takes one
// from a pool (HMAC key setup costs two SHA-256 block compressions, well
// worth avoiding per certificate check) and returns it reset. Sign and
// Verify are safe for arbitrary concurrent use.
type HMACSigner struct {
	secret []byte
	size   int
	pool   sync.Pool // of hash.Hash keyed with secret
}

// NewHMACSigner creates a signer. size is clamped to [4, 32].
func NewHMACSigner(secret []byte, size int) *HMACSigner {
	if size < 4 {
		size = 4
	}
	if size > sha256.Size {
		size = sha256.Size
	}
	h := &HMACSigner{secret: append([]byte(nil), secret...), size: size}
	h.pool.New = func() any { return hmac.New(sha256.New, h.secret) }
	return h
}

// mac computes the truncated HMAC into the caller's buffer.
func (h *HMACSigner) mac(buf []byte, data []byte) []byte {
	m := h.pool.Get().(hash.Hash)
	m.Reset()
	m.Write(data)
	out := m.Sum(buf[:0])[:h.size]
	h.pool.Put(m)
	return out
}

// Sign implements Signer.
func (h *HMACSigner) Sign(data []byte) []byte {
	return h.mac(make([]byte, 0, sha256.Size), data)
}

// Verify implements Signer.
func (h *HMACSigner) Verify(data, sig []byte) bool {
	var buf [sha256.Size]byte
	return subtle.ConstantTimeCompare(h.mac(buf[:0], data), sig) == 1
}

// Epoch implements EpochSigner: a single fixed secret never changes.
func (h *HMACSigner) Epoch() uint64 { return 0 }

// Generations implements EpochSigner: exactly one secret is accepted.
func (h *HMACSigner) Generations() int { return 1 }

var _ EpochSigner = (*HMACSigner)(nil)

// RollingSigner maintains a rolling table of secrets (§5.5.1): new
// certificates are signed with the newest secret, but certificates
// signed with any retained secret still verify. Periodically rolling
// bounds the useful lifetime of a compromised secret.
//
// The secret table is copy-on-write: Roll publishes a fresh slice
// through an atomic pointer, so Sign and Verify read a consistent table
// without taking any lock and may run concurrently with each other and
// with Roll (the engine rolls secrets while validations are in flight,
// §5.5.1's periodic roll).
type RollingSigner struct {
	rollMu sync.Mutex // serialises Roll against Roll
	gens   atomic.Pointer[[]*HMACSigner]
	epoch  atomic.Uint64 // bumped by Roll; invalidates verification caches
	keep   int
	size   int
}

// NewRollingSigner creates a rolling signer retaining keep secrets.
func NewRollingSigner(initial []byte, size, keep int) *RollingSigner {
	if keep < 1 {
		keep = 1
	}
	r := &RollingSigner{keep: keep, size: size}
	gens := []*HMACSigner{NewHMACSigner(initial, size)}
	r.gens.Store(&gens)
	return r
}

// Roll installs a new current secret, discarding the oldest beyond the
// retention limit; certificates signed with discarded secrets no longer
// verify (they have timed out, §5.5.1).
func (r *RollingSigner) Roll(secret []byte) {
	r.rollMu.Lock()
	defer r.rollMu.Unlock()
	old := *r.gens.Load()
	gens := append([]*HMACSigner{NewHMACSigner(secret, r.size)}, old...)
	if len(gens) > r.keep {
		gens = gens[:r.keep]
	}
	r.gens.Store(&gens)
	// Publish the epoch bump after the new table: a verification cache
	// that still sees the old epoch re-checks against the new table,
	// which is the safe direction.
	r.epoch.Add(1)
}

// Epoch implements EpochSigner: every Roll changes the accepted set.
func (r *RollingSigner) Epoch() uint64 { return r.epoch.Load() }

// Generations reports how many secrets are currently accepted.
func (r *RollingSigner) Generations() int { return len(*r.gens.Load()) }

// Sign implements Signer using the newest secret.
func (r *RollingSigner) Sign(data []byte) []byte { return (*r.gens.Load())[0].Sign(data) }

// Verify implements Signer, accepting any retained secret.
func (r *RollingSigner) Verify(data, sig []byte) bool {
	for _, s := range *r.gens.Load() {
		if s.Verify(data, sig) {
			return true
		}
	}
	return false
}

var _ EpochSigner = (*RollingSigner)(nil)

// RecordSigner keeps a record of everything issued instead of relying on
// cryptography — the paper notes a service issuing few certificates may
// prefer this (§4.2). Not safe against a compromised server, like any
// secret-based scheme, but immune to cryptanalysis. The issue record is
// a read-mostly table: verification takes a read lock only.
type RecordSigner struct {
	mu     sync.RWMutex
	issued map[string]bool
	n      uint64
}

// NewRecordSigner creates an issue-record signer.
func NewRecordSigner() *RecordSigner { return &RecordSigner{issued: make(map[string]bool)} }

// Sign implements Signer by recording the exact bytes issued.
func (r *RecordSigner) Sign(data []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	tag := strconv.FormatUint(r.n, 10)
	r.issued[string(data)+"|"+tag] = true
	return []byte(tag)
}

// Verify implements Signer by consulting the issue record.
func (r *RecordSigner) Verify(data, sig []byte) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.issued[string(data)+"|"+string(sig)]
}

var _ Signer = (*RecordSigner)(nil)
