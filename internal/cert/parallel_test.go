package cert

import (
	"fmt"
	"sync"
	"testing"
)

// The Signer contract requires safety under arbitrary concurrency
// (hash.Hash itself is not goroutine-safe, so the implementations must
// never share a live HMAC state). These tests are meaningful under
// -race: they fail only if two goroutines touch shared signer state.

func TestHMACSignerParallel(t *testing.T) {
	s := NewHMACSigner([]byte("secret"), 16)
	fixed := s.Sign([]byte("fixed payload"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				data := []byte(fmt.Sprintf("payload %d/%d", g, i))
				sig := s.Sign(data)
				if len(sig) != 16 {
					t.Errorf("signature length %d, want 16", len(sig))
					return
				}
				if !s.Verify(data, sig) {
					t.Error("own signature rejected")
					return
				}
				if !s.Verify([]byte("fixed payload"), fixed) {
					t.Error("fixed signature rejected")
					return
				}
				if s.Verify(data, fixed) {
					t.Error("cross signature accepted")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRollingSignerRollDuringVerify rolls the secret table while
// verifiers walk it. Certificates signed with the initial secret must
// verify for as long as that secret is retained (rolls < keep), and
// must stop verifying once it falls off the table (§5.5.1).
func TestRollingSignerRollDuringVerify(t *testing.T) {
	const keep = 12
	s := NewRollingSigner([]byte("gen0"), 16, keep)
	data := []byte("certificate bytes")
	sig := s.Sign(data)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if !s.Verify(data, sig) {
						t.Error("gen0 signature rejected while gen0 still retained")
						return
					}
					if s.Verify(data, []byte("not a signature...")) {
						t.Error("bogus signature accepted")
						return
					}
				}
			}
		}()
	}
	for i := 1; i < keep; i++ { // keep-1 rolls: gen0 stays on the table
		s.Roll([]byte(fmt.Sprintf("gen%d", i)))
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	if g := s.Generations(); g != keep {
		t.Fatalf("retained %d generations, want %d", g, keep)
	}
	// One more roll discards gen0; the old signature must now time out.
	s.Roll([]byte("gen-final"))
	if s.Verify(data, sig) {
		t.Fatal("signature from a discarded secret still verifies")
	}
	if !s.Verify(data, s.Sign(data)) {
		t.Fatal("current-secret signature rejected")
	}
}

func TestRecordSignerParallel(t *testing.T) {
	s := NewRecordSigner()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				data := []byte(fmt.Sprintf("issue %d/%d", g, i))
				sig := s.Sign(data)
				if !s.Verify(data, sig) {
					t.Error("recorded issue rejected")
					return
				}
				if s.Verify([]byte("never issued"), sig) {
					t.Error("unissued data accepted")
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
