package cert

import (
	"sync"
	"testing"
	"time"

	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/value"
)

func cacheTestRMC() *RMC {
	return &RMC{
		Service:  "Doc",
		Rolefile: "doc.rdl",
		Roles:    RoleSet(0b11),
		Args:     []value.Value{value.Str("alice"), value.Int(7)},
		Client:   ids.ClientID{Host: "h", ID: 4, BootTime: time.Unix(99, 0)},
		CRR:      credrec.Ref{Index: 2, Magic: 42},
		Expiry:   time.Unix(5000, 0),
	}
}

func TestCanonicalCacheStableWhileUnchanged(t *testing.T) {
	c := cacheTestRMC()
	e1 := c.canonEntry()
	if e2 := c.canonEntry(); e2 != e1 {
		t.Fatal("unchanged certificate rebuilt its canonical entry")
	}
	s := NewHMACSigner([]byte("k"), 32)
	c.Sign(s)
	if !c.Verify(s) || !c.Verify(s) {
		t.Fatal("repeat verify of unchanged certificate failed")
	}
	if e3 := c.canonEntry(); e3 != e1 {
		t.Fatal("verify rebuilt the canonical entry")
	}
}

func TestCanonicalCacheInvalidatedByMutation(t *testing.T) {
	s := NewHMACSigner([]byte("k"), 32)
	mutations := map[string]func(*RMC){
		"service":     func(c *RMC) { c.Service = "Evil" },
		"rolefile":    func(c *RMC) { c.Rolefile = "other.rdl" },
		"roles":       func(c *RMC) { c.Roles = RoleSet(0b111) },
		"args-swap":   func(c *RMC) { c.Args[0] = value.Str("mallory") },
		"args-alias":  func(c *RMC) { c.Args = append([]value.Value{}, value.Str("x")) },
		"client":      func(c *RMC) { c.Client.ID = 99 },
		"crr":         func(c *RMC) { c.CRR = credrec.Ref{Index: 9, Magic: 9} },
		"expiry":      func(c *RMC) { c.Expiry = c.Expiry.Add(time.Hour) },
		"sig-swapped": func(c *RMC) { c.Sig = []byte("forged") },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			c := cacheTestRMC()
			c.Sign(s)
			if !c.Verify(s) {
				t.Fatal("fresh certificate does not verify")
			}
			mutate(c)
			if c.Verify(s) {
				t.Fatal("tampered certificate still verifies (stale cache)")
			}
		})
	}
}

func TestCanonicalCacheInvalidatedByCopy(t *testing.T) {
	// Forging via struct copy (the other pattern the certificate tests
	// use) must not ride the original's cache either. The copy is taken
	// before the cache exists so the atomic.Value is not copied warm.
	s := NewHMACSigner([]byte("k"), 32)
	orig := cacheTestRMC()
	forged := *orig
	orig.Sign(s)
	forged.Sig = orig.Sig
	forged.Roles = RoleSet(0b1111)
	if forged.Verify(s) {
		t.Fatal("forged copy verifies")
	}
	if !orig.Verify(s) {
		t.Fatal("original stopped verifying after copy was rejected")
	}
}

func TestVerifyMemoPerSigner(t *testing.T) {
	s1 := NewHMACSigner([]byte("k1"), 32)
	s2 := NewHMACSigner([]byte("k2"), 32)
	c := cacheTestRMC()
	c.Sign(s1)
	if !c.Verify(s1) {
		t.Fatal("signer 1 rejects its own signature")
	}
	// A different signer must not hit signer 1's memo.
	if c.Verify(s2) {
		t.Fatal("memo leaked across signers")
	}
	if !c.Verify(s1) {
		t.Fatal("signer 1 broken after signer 2 rejected")
	}
}

func TestVerifyMemoInvalidatedByEpoch(t *testing.T) {
	// keep=1: rolling discards the old secret immediately, so a
	// certificate verified before the roll must fail after it instead of
	// riding the memo.
	r := NewRollingSigner([]byte("gen0"), 32, 1)
	c := cacheTestRMC()
	c.Sign(r)
	if !c.Verify(r) {
		t.Fatal("fresh certificate does not verify")
	}
	r.Roll([]byte("gen1"))
	if c.Verify(r) {
		t.Fatal("certificate signed with a discarded secret still verifies")
	}
}

func TestVerifyMemoSurvivesRollWithinRetention(t *testing.T) {
	// keep=2: the old secret stays accepted for one roll, so the
	// certificate re-verifies (via the real HMAC walk, since the epoch
	// changed) and only dies on the second roll.
	r := NewRollingSigner([]byte("gen0"), 32, 2)
	c := cacheTestRMC()
	c.Sign(r)
	if !c.Verify(r) {
		t.Fatal("fresh certificate does not verify")
	}
	r.Roll([]byte("gen1"))
	if r.Epoch() == 0 {
		t.Fatal("Roll did not bump the epoch")
	}
	if !c.Verify(r) {
		t.Fatal("certificate rejected while its secret is still retained")
	}
	r.Roll([]byte("gen2"))
	if c.Verify(r) {
		t.Fatal("certificate outlived its secret's retention")
	}
}

func TestDelegationCacheInvalidation(t *testing.T) {
	s := NewHMACSigner([]byte("k"), 32)
	mk := func() *Delegation {
		return &Delegation{
			Service:  "Doc",
			Rolefile: "doc.rdl",
			Role:     "courier",
			Args:     []value.Value{value.Str("bob")},
			Required: []RoleSpec{
				{Service: "Login", Rolefile: "login.rdl", Role: "user", Args: []value.Value{value.Str("bob")}},
			},
			DelegCRR: credrec.Ref{Index: 1, Magic: 5},
			Expiry:   time.Unix(7000, 0),
		}
	}
	d := mk()
	d.Sign(s)
	if !d.Verify(s) || !d.Verify(s) {
		t.Fatal("fresh delegation does not verify twice")
	}
	// Mutating a nested required-role argument in place must invalidate.
	d.Required[0].Args[0] = value.Str("mallory")
	if d.Verify(s) {
		t.Fatal("tampered required-role args still verify")
	}
	d2 := mk()
	d2.Sign(s)
	d2.Role = "admin"
	if d2.Verify(s) {
		t.Fatal("tampered role still verifies")
	}
}

// freshCopy simulates the remote-validation path: a struct with the
// same field values but no warm per-instance cache, exactly what wire
// decoding produces.
func freshCopy(c *RMC) *RMC {
	return &RMC{
		Service:  c.Service,
		Rolefile: c.Rolefile,
		Roles:    c.Roles,
		Args:     append([]value.Value(nil), c.Args...),
		Client:   c.Client,
		CRR:      c.CRR,
		Expiry:   c.Expiry,
		Sig:      append([]byte(nil), c.Sig...),
	}
}

func TestVerifyCacheCrossInstance(t *testing.T) {
	s := NewHMACSigner([]byte("k"), 32)
	vc := NewVerifyCache()
	orig := cacheTestRMC()
	orig.Sign(s)
	if !vc.VerifyRMC(orig, s) {
		t.Fatal("signed certificate does not verify")
	}
	// A field-identical fresh instance must verify (this is the hit the
	// cache exists for), and repeatedly.
	for i := 0; i < 3; i++ {
		if !vc.VerifyRMC(freshCopy(orig), s) {
			t.Fatalf("fresh instance %d rejected", i)
		}
	}
}

func TestVerifyCacheStolenSignature(t *testing.T) {
	s := NewHMACSigner([]byte("k"), 32)
	vc := NewVerifyCache()
	orig := cacheTestRMC()
	orig.Sign(s)
	if !vc.VerifyRMC(orig, s) {
		t.Fatal("signed certificate does not verify")
	}
	// A forged body carrying the victim's valid signature must miss the
	// snapshot comparison and fail the real check.
	forged := freshCopy(orig)
	forged.Roles = RoleSet(0b1111)
	if vc.VerifyRMC(forged, s) {
		t.Fatal("forged body with stolen signature verified via cache")
	}
	// And the genuine certificate must still verify afterwards.
	if !vc.VerifyRMC(freshCopy(orig), s) {
		t.Fatal("genuine certificate rejected after forgery attempt")
	}
}

func TestVerifyCacheWrongSigner(t *testing.T) {
	s1 := NewHMACSigner([]byte("k1"), 32)
	s2 := NewHMACSigner([]byte("k2"), 32)
	vc := NewVerifyCache()
	orig := cacheTestRMC()
	orig.Sign(s1)
	if !vc.VerifyRMC(orig, s1) {
		t.Fatal("signed certificate does not verify")
	}
	if vc.VerifyRMC(freshCopy(orig), s2) {
		t.Fatal("cache answered for a different signer")
	}
}

func TestVerifyCacheEpochExpiry(t *testing.T) {
	r := NewRollingSigner([]byte("gen0"), 32, 1)
	vc := NewVerifyCache()
	orig := cacheTestRMC()
	orig.Sign(r)
	if !vc.VerifyRMC(orig, r) {
		t.Fatal("signed certificate does not verify")
	}
	r.Roll([]byte("gen1"))
	// keep=1 discarded the signing secret: the cached verdict must not
	// outlive the epoch it was verified under.
	if vc.VerifyRMC(freshCopy(orig), r) {
		t.Fatal("cached verdict survived a secret roll")
	}
}

func TestVerifyCacheRollWithinRetention(t *testing.T) {
	r := NewRollingSigner([]byte("gen0"), 32, 2)
	vc := NewVerifyCache()
	orig := cacheTestRMC()
	orig.Sign(r)
	if !vc.VerifyRMC(orig, r) {
		t.Fatal("signed certificate does not verify")
	}
	r.Roll([]byte("gen1"))
	// The old secret is still retained: re-verifies via the real walk
	// and re-caches under the new epoch.
	if !vc.VerifyRMC(freshCopy(orig), r) {
		t.Fatal("certificate rejected while its secret is retained")
	}
	if !vc.VerifyRMC(freshCopy(orig), r) {
		t.Fatal("re-cached certificate rejected")
	}
	r.Roll([]byte("gen2"))
	if vc.VerifyRMC(freshCopy(orig), r) {
		t.Fatal("certificate outlived its secret's retention")
	}
}

func TestVerifyCacheConcurrent(t *testing.T) {
	r := NewRollingSigner([]byte("gen0"), 32, 3)
	vc := NewVerifyCache()
	orig := cacheTestRMC()
	orig.Sign(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if !vc.VerifyRMC(freshCopy(orig), r) {
					t.Error("concurrent cached verify failed")
					return
				}
			}
		}()
	}
	r.Roll([]byte("gen1"))
	wg.Wait()
}

func TestVerifyCachedConcurrent(t *testing.T) {
	// Concurrent verifies of a shared certificate (the service engine's
	// read path) must be race-free whether or not the memo is warm.
	r := NewRollingSigner([]byte("gen0"), 32, 3)
	c := cacheTestRMC()
	c.Sign(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if !c.Verify(r) {
					t.Error("concurrent verify failed")
					return
				}
			}
		}()
	}
	// Roll once mid-flight (keep=3 keeps the signing secret accepted).
	r.Roll([]byte("gen1"))
	wg.Wait()
}
