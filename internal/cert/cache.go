package cert

import (
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// Hot-path caching for the two certificate types whose canonical byte
// form is expensive to rebuild (RMC and Delegation; a Revocation's is
// three integers). Every Sign and Verify used to re-serialise the
// signed fields — argument marshalling, client identifier rendering, a
// strings.Builder — which dominated repeat validation. Two layers
// remove that:
//
//  1. Canonical-bytes cache: the serialised form is computed once,
//     together with a snapshot of the fields it was built from. A
//     later use first checks the certificate against the snapshot —
//     an allocation-free field comparison, much cheaper than
//     re-serialising — and rebuilds on any difference. Tampering with
//     any signed field (tests forge certificates by both in-place
//     mutation and struct copy) therefore always re-serialises the
//     current — tampered — fields and fails verification, exactly as
//     before; only genuinely unchanged certificates hit the cache.
//
//  2. Verify memo: a successful verification records (signer, signer
//     epoch, signature); a repeat Verify of an unchanged certificate
//     under the same signer and an unchanged secret table skips the
//     HMAC entirely. Epochs (EpochSigner) invalidate the memo when a
//     rolling signer's secret table changes, so a certificate whose
//     signing secret has been retired re-verifies — and fails —
//     rather than riding a stale memo.
//
// Signers stored in memos are compared by interface identity, so
// Signer implementations must be comparable — in practice, pointers
// (every implementation in this package is).

// EpochSigner is a Signer whose accepted-secret set can change over
// time (the rolling table of §5.5.1). Epoch increments whenever the
// set changes; verification caches key on it so nothing verified under
// an old table is trusted under a new one.
type EpochSigner interface {
	Signer
	Epoch() uint64    // bumped on every accepted-secret-set change
	Generations() int // number of currently accepted secrets
}

// signerEpoch folds non-epoch signers into epoch 0. RecordSigner's
// issue record only ever grows, so its memos never need invalidating
// either.
func signerEpoch(s Signer) uint64 {
	if es, ok := s.(EpochSigner); ok {
		return es.Epoch()
	}
	return 0
}

// verifyMemo records one successful verification.
type verifyMemo struct {
	signer Signer
	epoch  uint64
	sig    string // the verified signature bytes
}

// canonCore is the shared cache payload: the canonical bytes and the
// last successful verification against them.
type canonCore struct {
	data []byte
	memo atomic.Pointer[verifyMemo]
}

// verifyCached checks the memo, falls back to the real signature
// check, and memoizes success.
func (cc *canonCore) verifyCached(s Signer, sig []byte) bool {
	epoch := signerEpoch(s)
	if m := cc.memo.Load(); m != nil && m.signer == s && m.epoch == epoch && string(sig) == m.sig {
		return true
	}
	if !s.Verify(cc.data, sig) {
		return false
	}
	cc.memo.Store(&verifyMemo{signer: s, epoch: epoch, sig: string(sig)})
	return true
}

// argsEqual compares argument vectors; value.Value is a comparable
// struct, so this allocates nothing.
func argsEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- RMC ----

// rmcCanon pairs the canonical bytes with the exact field values they
// were built from. The argument slice is copied so aliasing mutations
// are caught too.
type rmcCanon struct {
	canonCore
	service  string
	rolefile string
	roles    RoleSet
	args     []value.Value
	client   ids.ClientID
	crr      credrec.Ref
	expiry   time.Time
}

func (cs *rmcCanon) matches(c *RMC) bool {
	return cs.service == c.Service && cs.rolefile == c.Rolefile &&
		cs.roles == c.Roles && cs.client == c.Client && cs.crr == c.CRR &&
		cs.expiry == c.Expiry && argsEqual(cs.args, c.Args)
}

// canonEntry returns the cache entry for the certificate's current
// field values, rebuilding the canonical bytes if anything changed
// since they were last computed.
func (c *RMC) canonEntry() *rmcCanon {
	if cs, _ := c.canon.Load().(*rmcCanon); cs != nil && cs.matches(c) {
		return cs
	}
	cs := &rmcCanon{
		canonCore: canonCore{data: c.buildCanonical()},
		service:   c.Service,
		rolefile:  c.Rolefile,
		roles:     c.Roles,
		args:      append([]value.Value(nil), c.Args...),
		client:    c.Client,
		crr:       c.CRR,
		expiry:    c.Expiry,
	}
	c.canon.Store(cs)
	return cs
}

// canonical returns the canonical signed byte form, cached across
// calls while the certificate's fields are unchanged.
func (c *RMC) canonical() []byte { return c.canonEntry().data }

// Sign computes and stores the signature using the given signer.
func (c *RMC) Sign(s Signer) { c.Sig = s.Sign(c.canonical()) }

// Verify checks the signature. Repeat verifications of an unchanged
// certificate under an unchanged signer are memoized (see the comment
// at the top of this file).
func (c *RMC) Verify(s Signer) bool { return c.canonEntry().verifyCached(s, c.Sig) }

// SignedBytes exposes the canonical signed form (cached); the service
// engine keys its cross-instance verification cache on it.
func (c *RMC) SignedBytes() []byte { return c.canonical() }

// ---- Delegation ----

// delegCanon is the Delegation counterpart of rmcCanon; the required
// role specs are deep-copied (their argument slices too).
type delegCanon struct {
	canonCore
	service  string
	rolefile string
	role     string
	args     []value.Value
	required []RoleSpec
	delegCRR credrec.Ref
	expiry   time.Time
}

func (cs *delegCanon) matches(d *Delegation) bool {
	if cs.service != d.Service || cs.rolefile != d.Rolefile || cs.role != d.Role ||
		cs.delegCRR != d.DelegCRR || cs.expiry != d.Expiry ||
		!argsEqual(cs.args, d.Args) || len(cs.required) != len(d.Required) {
		return false
	}
	for i := range cs.required {
		a, b := &cs.required[i], &d.Required[i]
		if a.Service != b.Service || a.Rolefile != b.Rolefile || a.Role != b.Role ||
			!argsEqual(a.Args, b.Args) {
			return false
		}
	}
	return true
}

func (d *Delegation) canonEntry() *delegCanon {
	if cs, _ := d.canon.Load().(*delegCanon); cs != nil && cs.matches(d) {
		return cs
	}
	required := make([]RoleSpec, len(d.Required))
	for i, spec := range d.Required {
		spec.Args = append([]value.Value(nil), spec.Args...)
		required[i] = spec
	}
	cs := &delegCanon{
		canonCore: canonCore{data: d.buildCanonical()},
		service:   d.Service,
		rolefile:  d.Rolefile,
		role:      d.Role,
		args:      append([]value.Value(nil), d.Args...),
		required:  required,
		delegCRR:  d.DelegCRR,
		expiry:    d.Expiry,
	}
	d.canon.Store(cs)
	return cs
}

// canonical returns the canonical signed byte form, cached across
// calls while the certificate's fields are unchanged.
func (d *Delegation) canonical() []byte { return d.canonEntry().data }

// Sign signs the delegation certificate.
func (d *Delegation) Sign(s Signer) { d.Sig = s.Sign(d.canonical()) }

// Verify checks the delegation certificate's signature, memoizing
// repeat successes like RMC.Verify.
func (d *Delegation) Verify(s Signer) bool { return d.canonEntry().verifyCached(s, d.Sig) }

// SignedBytes exposes the canonical signed form (cached).
func (d *Delegation) SignedBytes() []byte { return d.canonical() }

// ---- cross-instance verify cache ----

// VerifyCache remembers verified certificates across *instances*: the
// remote-validation path deserialises a fresh RMC per call, so the
// per-instance cache above never hits there. Entries are keyed by the
// signature bytes and store the verified field snapshot; a hit
// requires the presented certificate to match the snapshot
// field-for-field, so a forged body paired with a stolen valid
// signature misses and takes the full verification path. On a hit both
// the canonical rebuild and the signature check are skipped, and the
// shared entry is seeded into the presented instance so later
// per-instance checks are free too. Signature collisions (possible
// with truncated signatures) only cause churn, never unsoundness — the
// snapshot comparison still gates every answer.
//
// Entries answer only for the secret-table epoch they were verified
// under, so rolling the table (§5.5.1) expires every cached verdict.
// Sharded by the first signature byte; each shard is bounded, evicting
// an arbitrary entry on overflow, which costs only a re-verification.
const (
	verifyCacheShards   = 16
	verifyCacheShardCap = 1024
)

type verifiedEntry struct {
	entry  *rmcCanon
	signer Signer
	epoch  uint64
}

type verifyCacheShard struct {
	mu sync.RWMutex
	m  map[string]*verifiedEntry
}

// VerifyCache is safe for concurrent use by multiple goroutines.
type VerifyCache struct {
	shards [verifyCacheShards]verifyCacheShard
}

func NewVerifyCache() *VerifyCache {
	vc := &VerifyCache{}
	for i := range vc.shards {
		vc.shards[i].m = make(map[string]*verifiedEntry)
	}
	return vc
}

// VerifyRMC checks c's signature under s, consulting and updating the
// cache. Only positive verdicts are cached; failures always re-verify.
func (vc *VerifyCache) VerifyRMC(c *RMC, s Signer) bool {
	if len(c.Sig) == 0 {
		return c.Verify(s)
	}
	sh := &vc.shards[c.Sig[0]%verifyCacheShards]
	epoch := signerEpoch(s)
	sh.mu.RLock()
	v := sh.m[string(c.Sig)]
	sh.mu.RUnlock()
	if v != nil && v.signer == s && v.epoch == epoch && v.entry.matches(c) {
		c.canon.Store(v.entry)
		return true
	}
	if !c.Verify(s) {
		return false
	}
	sh.mu.Lock()
	if len(sh.m) >= verifyCacheShardCap {
		for k := range sh.m {
			delete(sh.m, k)
			break
		}
	}
	sh.m[string(c.Sig)] = &verifiedEntry{entry: c.canonEntry(), signer: s, epoch: epoch}
	sh.mu.Unlock()
	return true
}
