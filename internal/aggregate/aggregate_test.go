package aggregate

import (
	"testing"
	"time"

	"oasis/internal/composite"
	"oasis/internal/event"
	"oasis/internal/value"
)

var t0 = time.Unix(1000, 0)

func occ(secs int, env value.Env) composite.Occurrence {
	return composite.Occurrence{Time: t0.Add(time.Duration(secs) * time.Second), Env: env}
}

func TestQueueOrderAndFixed(t *testing.T) {
	var q Queue
	// Figure 6.6: events inserted out of order sort by timestamp.
	for _, s := range []int{5, 2, 8, 3} {
		if err := q.Insert(occ(s, value.Env{}.Extend("s", value.Int(int64(s))))); err != nil {
			t.Fatal(err)
		}
	}
	fixed := q.AdvanceFixed(t0.Add(4 * time.Second))
	if len(fixed) != 2 {
		t.Fatalf("fixed = %d items", len(fixed))
	}
	if fixed[0].Env["s"].I != 2 || fixed[1].Env["s"].I != 3 {
		t.Fatalf("fixed order = %v, %v", fixed[0].Env["s"], fixed[1].Env["s"])
	}
	if q.Len() != 2 {
		t.Fatalf("variable section = %d", q.Len())
	}
}

func TestQueueRejectsInsertIntoFixed(t *testing.T) {
	var q Queue
	q.AdvanceFixed(t0.Add(10 * time.Second))
	if err := q.Insert(occ(5, value.Env{})); err == nil {
		t.Fatal("insertion into fixed section accepted")
	}
	if err := q.Insert(occ(11, value.Env{})); err != nil {
		t.Fatal(err)
	}
}

func TestQueueAdvanceIdempotent(t *testing.T) {
	var q Queue
	if err := q.Insert(occ(5, value.Env{})); err != nil {
		t.Fatal(err)
	}
	if got := q.AdvanceFixed(t0.Add(6 * time.Second)); len(got) != 1 {
		t.Fatalf("first advance = %d", len(got))
	}
	if got := q.AdvanceFixed(t0.Add(6 * time.Second)); len(got) != 0 {
		t.Fatalf("repeat advance = %d", len(got))
	}
	if got := q.AdvanceFixed(t0.Add(3 * time.Second)); len(got) != 0 {
		t.Fatalf("backward advance = %d", len(got))
	}
}

func TestCountBuiltin(t *testing.T) {
	agg := Count()(t0, value.Env{})
	var counts []int64
	for i := 1; i <= 3; i++ {
		for _, o := range agg.OnOccurrence(occ(i, value.Env{})) {
			counts = append(counts, o.Env["count"].I)
		}
	}
	if len(counts) != 3 || counts[2] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestMaxBuiltin(t *testing.T) {
	agg := Max("x")(t0, value.Env{})
	var maxes []int64
	feed := []int64{3, 1, 7, 7, 9}
	for i, v := range feed {
		for _, o := range agg.OnOccurrence(occ(i+1, value.Env{}.Extend("x", value.Int(v)))) {
			maxes = append(maxes, o.Env["max"].I)
		}
	}
	if len(maxes) != 3 || maxes[0] != 3 || maxes[1] != 7 || maxes[2] != 9 {
		t.Fatalf("maxes = %v", maxes)
	}
}

func TestFirstBuiltinWaitsForFixed(t *testing.T) {
	// §6.11.3: receiving A is not enough; absence of an earlier B must
	// be known. A later-arriving earlier occurrence wins.
	agg := First()(t0, value.Env{})
	if out := agg.OnOccurrence(occ(5, value.Env{}.Extend("who", value.Str("late")))); len(out) != 0 {
		t.Fatal("FIRST emitted before fixed")
	}
	// An earlier occurrence arrives after (delayed).
	if out := agg.OnOccurrence(occ(3, value.Env{}.Extend("who", value.Str("early")))); len(out) != 0 {
		t.Fatal("FIRST emitted before fixed")
	}
	out := agg.OnFixed(t0.Add(10 * time.Second))
	if len(out) != 1 || out[0].Env["who"].S != "early" {
		t.Fatalf("FIRST = %v", out)
	}
	// Only once.
	if out := agg.OnOccurrence(occ(20, value.Env{})); len(out) != 0 {
		t.Fatal("FIRST emitted twice")
	}
	if out := agg.OnFixed(t0.Add(30 * time.Second)); len(out) != 0 {
		t.Fatal("FIRST emitted twice via fixed")
	}
}

func TestCountingInMachine(t *testing.T) {
	// §6.9: Open(x); COUNT($Deposit(x, y) - Close(x)) — deposits per
	// account between open and close, evaluated independently per
	// account. ($ makes the deposit stream repeat; the paper's prose
	// intends every deposit to be counted.)
	src := `$Open(x); COUNT($Deposit(x, y) - Close(x))`
	n, err := composite.Parse(src, composite.ParseOptions{AggNames: map[string]bool{"COUNT": true}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	m := composite.NewMachine(n, func(o composite.Occurrence) {
		counts[o.Env["x"].S] = o.Env["count"].I
	}, composite.MachineOptions{Aggs: map[string]composite.AggFactory{"COUNT": Count()}})
	m.Start(t0, value.Env{})

	send := func(secs int, name string, args ...value.Value) {
		m.Process(event.Event{Name: name, Source: "s", Args: args,
			Time: t0.Add(time.Duration(secs) * time.Second)})
	}
	send(1, "Open", value.Str("acct1"))
	send(2, "Deposit", value.Str("acct1"), value.Int(100))
	send(3, "Open", value.Str("acct2"))
	send(4, "Deposit", value.Str("acct2"), value.Int(50))
	send(5, "Deposit", value.Str("acct1"), value.Int(10))
	send(6, "Close", value.Str("acct1"))
	send(7, "Deposit", value.Str("acct1"), value.Int(99)) // after close: not counted
	send(20, "Tick")
	if counts["acct1"] != 2 {
		t.Fatalf("acct1 count = %d, want 2", counts["acct1"])
	}
	if counts["acct2"] != 1 {
		t.Fatalf("acct2 count = %d, want 1", counts["acct2"])
	}
}

func TestLangCount(t *testing.T) {
	// The §6.10 block for counting: emit the running count per event.
	prog := MustCompile(`{
		int n = 0;
		event: n = n + 1 ; signal(n)
	}`)
	agg := prog.Factory()(t0, value.Env{})
	var got []int64
	for i := 1; i <= 4; i++ {
		for _, o := range agg.OnOccurrence(occ(i, value.Env{})) {
			got = append(got, o.Env["a1"].I)
		}
	}
	if len(got) != 4 || got[3] != 4 {
		t.Fatalf("counts = %v", got)
	}
}

func TestLangSumOfField(t *testing.T) {
	prog := MustCompile(`{
		int t = 0;
		event: t = t + new.x ; signal(t)
	}`)
	agg := prog.Factory()(t0, value.Env{})
	var last int64
	for i, v := range []int64{5, 10, 20} {
		for _, o := range agg.OnOccurrence(occ(i+1, value.Env{}.Extend("x", value.Int(v)))) {
			last = o.Env["a1"].I
		}
	}
	if last != 35 {
		t.Fatalf("sum = %d", last)
	}
}

func TestLangMaxWithIf(t *testing.T) {
	prog := MustCompile(`{
		int m = 0;
		int started = 0;
		event:
			if started = 0 or new.x > m then
				m = new.x ; started = 1 ; signal(m)
			end
	}`)
	agg := prog.Factory()(t0, value.Env{})
	var got []int64
	for i, v := range []int64{3, 1, 7} {
		for _, o := range agg.OnOccurrence(occ(i+1, value.Env{}.Extend("x", value.Int(v)))) {
			got = append(got, o.Env["a1"].I)
		}
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("maxes = %v", got)
	}
}

func TestLangFixedSectionProcessesInOrder(t *testing.T) {
	// The fixed: handler sees occurrences in timestamp order even when
	// they arrived out of order — the point of the two-section queue.
	prog := MustCompile(`{
		int first = 0;
		int done = 0;
		fixed:
			if done = 0 then
				first = new.time ; done = 1 ; signal(first)
			end
	}`)
	agg := prog.Factory()(t0, value.Env{})
	agg.OnOccurrence(occ(5, value.Env{}))
	agg.OnOccurrence(occ(3, value.Env{})) // delayed but earlier
	out := agg.OnFixed(t0.Add(10 * time.Second))
	if len(out) != 1 {
		t.Fatalf("signals = %d", len(out))
	}
	if out[0].Env["a1"].I != t0.Add(3*time.Second).UnixNano() {
		t.Fatalf("first = %d, want the 3s occurrence", out[0].Env["a1"].I)
	}
}

func TestLangVarSectionSynonym(t *testing.T) {
	prog, err := Compile(`{ var: signal(1) }`)
	if err != nil {
		t.Fatal(err)
	}
	agg := prog.Factory()(t0, value.Env{})
	agg.OnOccurrence(occ(1, value.Env{}))
	if out := agg.OnFixed(t0.Add(5 * time.Second)); len(out) != 1 {
		t.Fatalf("var: section did not run: %v", out)
	}
}

func TestLangErrors(t *testing.T) {
	bad := []string{
		``, `{`, `{ int ; }`, `{ mystery: signal(1) }`,
		`{ event: signal( }`, `{ event: if x then end }`, // x undeclared is a runtime error, but if needs then
		`{ event: 3 = x }`, `{ event: x = }`,
	}
	for _, src := range bad {
		if src == `{ event: if x then end }` {
			continue // parses; x is a runtime error
		}
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) succeeded", src)
		}
	}
}

func TestLangRuntimeErrorsStopExecution(t *testing.T) {
	prog := MustCompile(`{ event: x = 1 / 0 ; signal(1) }`)
	agg := prog.Factory()(t0, value.Env{})
	if out := agg.OnOccurrence(occ(1, value.Env{})); len(out) != 0 {
		t.Fatal("signal after runtime error")
	}
	prog2 := MustCompile(`{ event: signal(zz) }`)
	agg2 := prog2.Factory()(t0, value.Env{})
	if out := agg2.OnOccurrence(occ(1, value.Env{})); len(out) != 0 {
		t.Fatal("signal with unknown variable")
	}
}

func TestLangArithmetic(t *testing.T) {
	prog := MustCompile(`{ event: signal(2 + 3 * 4, (2 + 3) * 4, 10 / 2 - 1) }`)
	agg := prog.Factory()(t0, value.Env{})
	out := agg.OnOccurrence(occ(1, value.Env{}))
	if len(out) != 1 {
		t.Fatal("no signal")
	}
	e := out[0].Env
	if e["a1"].I != 14 || e["a2"].I != 20 || e["a3"].I != 4 {
		t.Fatalf("arith = %v %v %v", e["a1"], e["a2"], e["a3"])
	}
}

func TestSquashFirstEndOfPoint(t *testing.T) {
	// §6.6's closing problem: the end-of-point disjunction can trigger
	// several times; FIRST maps the set to a single occurrence.
	src := `$serve(s); FIRST(((floor | wall) - front) | ($hit(i); hit(i) - hit(j) {j != i}))`
	n, err := composite.Parse(src, composite.ParseOptions{AggNames: map[string]bool{"FIRST": true}})
	if err != nil {
		t.Fatal(err)
	}
	var ends []composite.Occurrence
	m := composite.NewMachine(n, func(o composite.Occurrence) { ends = append(ends, o) },
		composite.MachineOptions{Aggs: map[string]composite.AggFactory{"FIRST": First()}})
	m.Start(t0, value.Env{})
	send := func(secs int, name string, args ...value.Value) {
		m.Process(event.Event{Name: name, Source: "s", Args: args,
			Time: t0.Add(time.Duration(secs) * time.Second)})
	}
	send(1, "serve", value.Str("alice"))
	send(2, "floor") // fault (floor before front) — also starts rallies etc.
	send(3, "floor")
	send(30, "Tick")
	if len(ends) != 1 {
		t.Fatalf("end-of-point signalled %d times, want exactly 1", len(ends))
	}
}

func TestFullEndOfPoint(t *testing.T) {
	// The complete §6.6 squash expression wrapped in FIRST, exercising
	// all five point-ending clauses over one rally.
	src := `$serve(s); FIRST(
		  ((floor | wall | hit(i)) - front)
		| ($front; ((floor; floor) | front) - hit(i))
		| ($hit(i); (floor | hit(j) {j != i}) - front)
		| (hit(s) - hit(i) {i != s})
		| ($hit(i); hit(i) - hit(j) {j != i}))`
	n, err := composite.Parse(src, composite.ParseOptions{AggNames: map[string]bool{"FIRST": true}})
	if err != nil {
		t.Fatal(err)
	}
	var ends []composite.Occurrence
	m := composite.NewMachine(n, func(o composite.Occurrence) { ends = append(ends, o) },
		composite.MachineOptions{Aggs: map[string]composite.AggFactory{"FIRST": First()}})
	m.Start(t0, value.Env{})
	send := func(secs int, name string, args ...value.Value) {
		m.Process(event.Event{Name: name, Source: "s", Args: args,
			Time: t0.Add(time.Duration(secs) * time.Second)})
	}
	// A legal rally: serve, front, alice... serve(s=alice); front; bob
	// hits; front; alice hits; front; then bob lets it bounce twice.
	send(1, "serve", value.Str("alice"))
	send(2, "front")
	send(3, "hit", value.Str("bob"))
	send(4, "front")
	send(5, "hit", value.Str("alice"))
	send(6, "front")
	send(7, "floor")
	send(8, "floor") // double bounce: point over
	send(30, "Tick")
	if len(ends) != 1 {
		t.Fatalf("end-of-point signalled %d times, want exactly 1 (FIRST)", len(ends))
	}
	if !ends[0].Time.Equal(t0.Add(8 * time.Second)) {
		t.Fatalf("point ended at %v, want the double bounce", ends[0].Time)
	}
}
