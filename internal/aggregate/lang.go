package aggregate

import (
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"

	"oasis/internal/composite"
	"oasis/internal/value"
)

// The aggregation language of §6.10: a block of local variable
// declarations followed by handler sections.
//
//	{
//	  int t = 0;
//	  event: t = t + new.x ; signal(t)
//	  fixed: if t > 10 then signal(t) end
//	}
//
// The `event:` handler runs when a sub-occurrence arrives — the
// earliest possible moment (§6.9.1); the `fixed:` handler runs for each
// occurrence as it enters the fixed portion of the two-section queue,
// in timestamp order — i.e. once absence information is known. (The
// paper calls this section `var:`, which is accepted as a synonym.)
// `new.x` reads an occurrence parameter; `new.time` its timestamp;
// signal(...) emits an aggregate occurrence binding a1, a2, ....

// Program is a compiled aggregation block.
type Program struct {
	decls   []decl
	onEvent []stmt
	onFixed []stmt
}

type decl struct {
	name string
	init expr
}

// stmt is an interpreted statement.
type stmt interface{ exec(st *instState) error }

// expr evaluates to an int64.
type expr interface {
	eval(st *instState) (int64, error)
}

type instState struct {
	vars    map[string]int64
	occ     *composite.Occurrence // bound to `new` inside handlers
	signals []composite.Occurrence
}

// Compile parses an aggregation block.
func Compile(src string) (*Program, error) {
	p := &aparser{toks: ascan(src)}
	return p.block()
}

// MustCompile panics on error.
func MustCompile(src string) *Program {
	prog, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return prog
}

// Factory returns an AggFactory running this program.
func (p *Program) Factory() composite.AggFactory {
	return func(start time.Time, env value.Env) composite.Aggregator {
		inst := &langAgg{prog: p, st: &instState{vars: make(map[string]int64)}}
		for _, d := range p.decls {
			v, err := d.init.eval(inst.st)
			if err != nil {
				v = 0
			}
			inst.st.vars[d.name] = v
		}
		return inst
	}
}

type langAgg struct {
	prog *Program
	st   *instState
	q    Queue
}

func (a *langAgg) run(stmts []stmt, occ *composite.Occurrence) []composite.Occurrence {
	a.st.occ = occ
	a.st.signals = nil
	for _, s := range stmts {
		if err := s.exec(a.st); err != nil {
			break
		}
	}
	return a.st.signals
}

// OnOccurrence implements composite.Aggregator.
func (a *langAgg) OnOccurrence(o composite.Occurrence) []composite.Occurrence {
	if len(a.prog.onFixed) > 0 {
		_ = a.q.Insert(o)
	}
	if len(a.prog.onEvent) == 0 {
		return nil
	}
	return a.run(a.prog.onEvent, &o)
}

// OnFixed implements composite.Aggregator.
func (a *langAgg) OnFixed(t time.Time) []composite.Occurrence {
	if len(a.prog.onFixed) == 0 {
		return nil
	}
	var out []composite.Occurrence
	for _, o := range a.q.AdvanceFixed(t) {
		occ := o
		out = append(out, a.run(a.prog.onFixed, &occ)...)
	}
	return out
}

// ---- lexer ----

type atok struct {
	kind string // "id", "num", "punct", "eof"
	text string
}

func ascan(src string) []atok {
	var out []atok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case strings.ContainsRune("{}();,=+-*/<>!.", rune(c)):
			// two-char operators
			if i+1 < len(src) {
				two := src[i : i+2]
				if two == "!=" || two == "<=" || two == ">=" || two == "==" {
					out = append(out, atok{"punct", two})
					i += 2
					continue
				}
			}
			out = append(out, atok{"punct", string(c)})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			out = append(out, atok{"num", src[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			out = append(out, atok{"id", src[i:j]})
			i = j
		default:
			out = append(out, atok{"punct", string(c)})
			i++
		}
	}
	return append(out, atok{"eof", ""})
}

type aparser struct {
	toks []atok
	pos  int
}

func (p *aparser) cur() atok { return p.toks[p.pos] }

func (p *aparser) advance() atok {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *aparser) acceptPunct(s string) bool {
	if p.cur().kind == "punct" && p.cur().text == s {
		p.advance()
		return true
	}
	return false
}

func (p *aparser) acceptID(s string) bool {
	if p.cur().kind == "id" && p.cur().text == s {
		p.advance()
		return true
	}
	return false
}

func (p *aparser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("aggregate: expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *aparser) block() (*Program, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	prog := &Program{}
	// declarations
	for p.acceptID("int") {
		name := p.advance()
		if name.kind != "id" {
			return nil, fmt.Errorf("aggregate: bad declaration name %q", name.text)
		}
		init := expr(intLit(0))
		if p.acceptPunct("=") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			init = e
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		prog.decls = append(prog.decls, decl{name: name.text, init: init})
	}
	// sections
	for p.cur().kind == "id" {
		section := p.advance().text
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		stmts, err := p.stmts()
		if err != nil {
			return nil, err
		}
		switch section {
		case "event":
			prog.onEvent = stmts
		case "fixed", "var":
			prog.onFixed = stmts
		default:
			return nil, fmt.Errorf("aggregate: unknown section %q", section)
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return prog, nil
}

// stmts parses statements until a section header, '}' or eof.
func (p *aparser) stmts() ([]stmt, error) {
	var out []stmt
	for {
		// stop at '}' / eof / next section header (id ':')
		if p.cur().kind == "eof" || (p.cur().kind == "punct" && p.cur().text == "}") {
			return out, nil
		}
		if p.cur().kind == "id" && p.pos+1 < len(p.toks) &&
			p.toks[p.pos+1].kind == "punct" && p.toks[p.pos+1].text == ":" &&
			(p.cur().text == "event" || p.cur().text == "fixed" || p.cur().text == "var") {
			return out, nil
		}
		if p.cur().kind == "id" && (p.cur().text == "end" || p.cur().text == "else") {
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		p.acceptPunct(";")
	}
}

func (p *aparser) stmt() (stmt, error) {
	t := p.cur()
	if t.kind != "id" {
		return nil, fmt.Errorf("aggregate: bad statement at %q", t.text)
	}
	switch t.text {
	case "signal":
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var args []expr
		for !(p.cur().kind == "punct" && p.cur().text == ")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return signalStmt{args: args}, nil
	case "if":
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if !p.acceptID("then") {
			return nil, fmt.Errorf("aggregate: expected 'then'")
		}
		body, err := p.stmts()
		if err != nil {
			return nil, err
		}
		var els []stmt
		if p.acceptID("else") {
			els, err = p.stmts()
			if err != nil {
				return nil, err
			}
		}
		if !p.acceptID("end") {
			return nil, fmt.Errorf("aggregate: expected 'end'")
		}
		return ifStmt{cond: cond, then: body, els: els}, nil
	default:
		p.advance()
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return assignStmt{name: t.text, e: e}, nil
	}
}

// expr := cmp { ('and'|'or') cmp }
func (p *aparser) expr() (expr, error) {
	l, err := p.cmp()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == "id" && (p.cur().text == "and" || p.cur().text == "or") {
		op := p.advance().text
		r, err := p.cmp()
		if err != nil {
			return nil, err
		}
		l = boolExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *aparser) cmp() (expr, error) {
	l, err := p.sum()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == "punct" {
		switch p.cur().text {
		case "=", "==", "!=", "<", "<=", ">", ">=":
			op := p.advance().text
			r, err := p.sum()
			if err != nil {
				return nil, err
			}
			return cmpExpr{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *aparser) sum() (expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == "punct" && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.advance().text
		r, err := p.term()
		if err != nil {
			return nil, err
		}
		l = arithExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *aparser) term() (expr, error) {
	l, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == "punct" && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.advance().text
		r, err := p.factor()
		if err != nil {
			return nil, err
		}
		l = arithExpr{op: op, l: l, r: r}
	}
	return l, nil
}

func (p *aparser) factor() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == "num":
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return intLit(n), nil
	case t.kind == "id" && t.text == "new":
		p.advance()
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
		f := p.advance()
		if f.kind != "id" {
			return nil, fmt.Errorf("aggregate: bad field %q", f.text)
		}
		return newField{field: f.text}, nil
	case t.kind == "id":
		p.advance()
		return varRef(t.text), nil
	case t.kind == "punct" && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("aggregate: bad expression at %q", t.text)
	}
}

// ---- AST & interpretation ----

type intLit int64

func (i intLit) eval(*instState) (int64, error) { return int64(i), nil }

type varRef string

func (v varRef) eval(st *instState) (int64, error) {
	n, ok := st.vars[string(v)]
	if !ok {
		return 0, fmt.Errorf("aggregate: unknown variable %s", string(v))
	}
	return n, nil
}

type newField struct{ field string }

func (n newField) eval(st *instState) (int64, error) {
	if st.occ == nil {
		return 0, fmt.Errorf("aggregate: 'new' outside a handler")
	}
	if n.field == "time" {
		return st.occ.Time.UnixNano(), nil
	}
	v, ok := st.occ.Env[n.field]
	if !ok || v.T.Kind != value.KindInt {
		return 0, fmt.Errorf("aggregate: occurrence has no integer field %q", n.field)
	}
	return v.I, nil
}

type arithExpr struct {
	op   string
	l, r expr
}

func (a arithExpr) eval(st *instState) (int64, error) {
	l, err := a.l.eval(st)
	if err != nil {
		return 0, err
	}
	r, err := a.r.eval(st)
	if err != nil {
		return 0, err
	}
	switch a.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("aggregate: division by zero")
		}
		return l / r, nil
	}
	return 0, fmt.Errorf("aggregate: bad operator %q", a.op)
}

type cmpExpr struct {
	op   string
	l, r expr
}

func (c cmpExpr) eval(st *instState) (int64, error) {
	l, err := c.l.eval(st)
	if err != nil {
		return 0, err
	}
	r, err := c.r.eval(st)
	if err != nil {
		return 0, err
	}
	b := false
	switch c.op {
	case "=", "==":
		b = l == r
	case "!=":
		b = l != r
	case "<":
		b = l < r
	case "<=":
		b = l <= r
	case ">":
		b = l > r
	case ">=":
		b = l >= r
	}
	if b {
		return 1, nil
	}
	return 0, nil
}

type boolExpr struct {
	op   string
	l, r expr
}

func (b boolExpr) eval(st *instState) (int64, error) {
	l, err := b.l.eval(st)
	if err != nil {
		return 0, err
	}
	if b.op == "and" && l == 0 {
		return 0, nil
	}
	if b.op == "or" && l != 0 {
		return 1, nil
	}
	r, err := b.r.eval(st)
	if err != nil {
		return 0, err
	}
	if r != 0 {
		return 1, nil
	}
	return 0, nil
}

type assignStmt struct {
	name string
	e    expr
}

func (a assignStmt) exec(st *instState) error {
	v, err := a.e.eval(st)
	if err != nil {
		return err
	}
	st.vars[a.name] = v
	return nil
}

type signalStmt struct{ args []expr }

func (s signalStmt) exec(st *instState) error {
	env := value.Env{}
	for i, a := range s.args {
		v, err := a.eval(st)
		if err != nil {
			return err
		}
		env = env.Extend("a"+strconv.Itoa(i+1), value.Int(v))
	}
	t := time.Time{}
	if st.occ != nil {
		t = st.occ.Time
	}
	st.signals = append(st.signals, composite.Occurrence{Time: t, Env: env})
	return nil
}

type ifStmt struct {
	cond expr
	then []stmt
	els  []stmt
}

func (i ifStmt) exec(st *instState) error {
	c, err := i.cond.eval(st)
	if err != nil {
		return err
	}
	body := i.then
	if c == 0 {
		body = i.els
	}
	for _, s := range body {
		if err := s.exec(st); err != nil {
			return err
		}
	}
	return nil
}
