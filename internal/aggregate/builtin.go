package aggregate

import (
	"time"

	"oasis/internal/composite"
	"oasis/internal/value"
)

// Count returns an AggFactory emitting the running occurrence count
// (§6.11.1): each sub-occurrence produces an aggregate occurrence whose
// environment binds "count".
func Count() composite.AggFactory {
	return func(start time.Time, env value.Env) composite.Aggregator {
		return &countAgg{}
	}
}

type countAgg struct{ n int64 }

func (c *countAgg) OnOccurrence(o composite.Occurrence) []composite.Occurrence {
	c.n++
	return []composite.Occurrence{{Time: o.Time, Env: o.Env.Extend("count", value.Int(c.n))}}
}

func (c *countAgg) OnFixed(time.Time) []composite.Occurrence { return nil }

// Max returns an AggFactory tracking the maximum of an integer variable
// (§6.11.2); it emits whenever the maximum increases, binding "max".
func Max(varName string) composite.AggFactory {
	return func(start time.Time, env value.Env) composite.Aggregator {
		return &maxAgg{varName: varName}
	}
}

type maxAgg struct {
	varName string
	has     bool
	max     int64
}

func (m *maxAgg) OnOccurrence(o composite.Occurrence) []composite.Occurrence {
	v, ok := o.Env[m.varName]
	if !ok || v.T.Kind != value.KindInt {
		return nil
	}
	if m.has && v.I <= m.max {
		return nil
	}
	m.has, m.max = true, v.I
	return []composite.Occurrence{{Time: o.Time, Env: o.Env.Extend("max", value.Int(m.max))}}
}

func (m *maxAgg) OnFixed(time.Time) []composite.Occurrence { return nil }

// First returns an AggFactory emitting only the first occurrence in
// timestamp order (§6.11.3) — the fix for the squash example's multiple
// end-of-point signals. It must wait for the fixed portion of the queue
// to cover an occurrence before knowing it was first: receiving A alone
// is not enough, absence of an earlier B must also be known (§6.9.1).
func First() composite.AggFactory {
	return func(start time.Time, env value.Env) composite.Aggregator {
		return &firstAgg{}
	}
}

type firstAgg struct {
	q    Queue
	done bool
}

func (f *firstAgg) OnOccurrence(o composite.Occurrence) []composite.Occurrence {
	if f.done {
		return nil
	}
	_ = f.q.Insert(o)
	return nil
}

func (f *firstAgg) OnFixed(t time.Time) []composite.Occurrence {
	if f.done {
		return nil
	}
	fixed := f.q.AdvanceFixed(t)
	if len(fixed) == 0 {
		return nil
	}
	f.done = true
	return fixed[:1]
}

// Once is an alias of First matching the paper's naming (§6.11.3).
func Once() composite.AggFactory { return First() }

// StdAggs is the standard aggregation table for parsers and machines.
func StdAggs() map[string]composite.AggFactory {
	return map[string]composite.AggFactory{
		"COUNT": Count(),
		"MAX":   Max("x"),
		"FIRST": First(),
		"ONCE":  Once(),
	}
}
