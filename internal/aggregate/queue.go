// Package aggregate implements OASIS aggregation functions (§6.9-6.11
// of the paper): the two-section priority queue of figure 6.6, built-in
// COUNT / MAX / FIRST aggregators, and an interpreter for the small
// C-like aggregation language of §6.10.
package aggregate

import (
	"fmt"
	"sort"
	"time"

	"oasis/internal/composite"
)

// Queue is the two-section priority queue of figure 6.6: occurrences
// are held in timestamp order; the fixed section — into which the
// system guarantees no more insertions — grows as horizon knowledge
// arrives, and its items are consumed in order.
type Queue struct {
	items []composite.Occurrence // sorted by time, stable for equal stamps
	fixed time.Time              // items with Time <= fixed are fixed
}

// Insert adds an occurrence. Inserting into the fixed section violates
// the system guarantee and is reported as an error.
func (q *Queue) Insert(o composite.Occurrence) error {
	if !o.Time.After(q.fixed) {
		return fmt.Errorf("aggregate: insertion at %v into fixed section (boundary %v)", o.Time, q.fixed)
	}
	i := sort.Search(len(q.items), func(i int) bool {
		return q.items[i].Time.After(o.Time)
	})
	q.items = append(q.items, composite.Occurrence{})
	copy(q.items[i+1:], q.items[i:])
	q.items[i] = o
	return nil
}

// AdvanceFixed grows the fixed section to t and returns the occurrences
// that became fixed, in timestamp order.
func (q *Queue) AdvanceFixed(t time.Time) []composite.Occurrence {
	if !t.After(q.fixed) {
		return nil
	}
	q.fixed = t
	n := sort.Search(len(q.items), func(i int) bool {
		return q.items[i].Time.After(t)
	})
	out := q.items[:n:n]
	q.items = append([]composite.Occurrence(nil), q.items[n:]...)
	return out
}

// Len reports the number of occurrences still in the variable section.
func (q *Queue) Len() int { return len(q.items) }

// Fixed reports the fixed-section boundary.
func (q *Queue) Fixed() time.Time { return q.fixed }
