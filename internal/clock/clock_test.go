package clock

import (
	"testing"
	"time"
)

func TestVirtualNowAdvances(t *testing.T) {
	start := time.Date(1996, 3, 1, 0, 0, 0, 0, time.UTC)
	v := NewVirtual(start)
	if got := v.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	v.Advance(5 * time.Second)
	if got := v.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("Now() after advance = %v", got)
	}
}

func TestVirtualAfterFires(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	ch := v.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before advance")
	default:
	}
	v.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired too early")
	default:
	}
	v.Advance(2 * time.Second)
	select {
	case got := <-ch:
		want := time.Unix(11, 0)
		if !got.Equal(want) {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	case <-time.After(time.Second):
		t.Fatal("timer did not fire")
	}
}

func TestVirtualAfterZeroFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	select {
	case <-v.After(0):
	case <-time.After(time.Second):
		t.Fatal("zero-duration timer did not fire")
	}
}

func TestVirtualSetIgnoresPast(t *testing.T) {
	v := NewVirtual(time.Unix(100, 0))
	v.Set(time.Unix(50, 0))
	if got := v.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Fatalf("Set moved clock backwards to %v", got)
	}
	v.Set(time.Unix(200, 0))
	if got := v.Now(); !got.Equal(time.Unix(200, 0)) {
		t.Fatalf("Set did not move clock forwards, got %v", got)
	}
}

func TestDriftingOffset(t *testing.T) {
	v := NewVirtual(time.Unix(1000, 0))
	d := NewDrifting(v, 3*time.Second)
	if got := d.Now(); !got.Equal(time.Unix(1003, 0)) {
		t.Fatalf("drifted Now() = %v", got)
	}
	v.Advance(time.Second)
	if got := d.Now(); !got.Equal(time.Unix(1004, 0)) {
		t.Fatalf("drifted Now() after advance = %v", got)
	}
}

func TestRealClock(t *testing.T) {
	c := Real()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real().Now() = %v outside [%v, %v]", got, before, after)
	}
}
