// Package clock provides an abstraction over time so that the OASIS
// simulations and the distributed-event experiments of the paper
// (clock drift, delay, event horizons) can run deterministically.
//
// Production code uses Real(); simulations and tests use a Virtual clock
// that only advances when told to, and that can model per-host drift.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time and timer facilities. It is the only
// source of time for every package in this module.
type Clock interface {
	// Now returns the current instant according to this clock.
	Now() time.Time
	// After returns a channel that receives the then-current time once
	// the clock has advanced by at least d.
	After(d time.Duration) <-chan time.Time
}

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Virtual is a manually advanced clock. The zero value is not usable;
// construct with NewVirtual.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters []waiter
}

type waiter struct {
	at time.Time
	ch chan time.Time
}

// NewVirtual returns a Virtual clock starting at the given instant.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now returns the virtual current time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After returns a channel that fires when the virtual clock is advanced
// past d from now.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	at := v.now.Add(d)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.waiters = append(v.waiters, waiter{at: at, ch: ch})
	return ch
}

// Advance moves the clock forward by d, firing any timers that become due.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	var remaining []waiter
	var due []waiter
	for _, w := range v.waiters {
		if !w.at.After(now) {
			due = append(due, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	v.waiters = remaining
	v.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// Set jumps the clock to the given instant (which must not be earlier
// than the current virtual time; earlier instants are ignored).
func (v *Virtual) Set(t time.Time) {
	v.mu.Lock()
	if t.Before(v.now) {
		v.mu.Unlock()
		return
	}
	d := t.Sub(v.now)
	v.mu.Unlock()
	v.Advance(d)
}

var _ Clock = (*Virtual)(nil)

// Drifting wraps a Clock and applies a constant offset, modelling the
// imperfect clock synchronisation discussed in section 6.8.4 of the paper.
type Drifting struct {
	base   Clock
	offset time.Duration
}

// NewDrifting returns a clock that reads base plus a constant offset.
func NewDrifting(base Clock, offset time.Duration) *Drifting {
	return &Drifting{base: base, offset: offset}
}

// Now returns the drifted time.
func (d *Drifting) Now() time.Time { return d.base.Now().Add(d.offset) }

// After delegates to the base clock; drift affects reported instants,
// not durations.
func (d *Drifting) After(dur time.Duration) <-chan time.Time { return d.base.After(dur) }

var _ Clock = (*Drifting)(nil)
