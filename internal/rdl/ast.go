package rdl

import (
	"fmt"
	"strconv"
	"strings"

	"oasis/internal/value"
)

// File is a parsed rolefile: declarations, imports and role entry rules,
// in source order (order matters — the first matching rule wins, §3.2.2).
type File struct {
	Imports []Import
	Decls   []*Decl
	Rules   []*Rule
}

// Import brings an object type defined by another service into scope
// (§3.2.1), e.g. "import Login.userid".
type Import struct {
	Service string
	Type    string
}

// Decl is a role declaration statement: "def Role(a, b) a: integer".
// Types omitted here must be inferrable (§3.2.1).
type Decl struct {
	Role   string
	Params []string
	Types  map[string]value.Type // by parameter name; may be partial
	Line   int
}

// Term is an argument of a role reference or an operand of a constraint:
// a variable, or a literal whose concrete type is resolved against the
// expected argument type during checking (a string literal names an
// object identifier when an object type is expected, and a set literal
// takes its universe from the expected set type).
type Term struct {
	Var string

	IsInt  bool
	IntLit int64
	IsStr  bool
	StrLit string
	IsSet  bool
	SetLit string

	Line int
}

// IsLit reports whether the term is a literal.
func (t Term) IsLit() bool { return t.IsInt || t.IsStr || t.IsSet }

// String renders the term in surface syntax.
func (t Term) String() string {
	switch {
	case t.Var != "":
		return t.Var
	case t.IsInt:
		return strconv.FormatInt(t.IntLit, 10)
	case t.IsStr:
		return strconv.Quote(t.StrLit)
	case t.IsSet:
		return "{" + t.SetLit + "}"
	default:
		return "<term>"
	}
}

// RoleRef references a role: optionally service-qualified, optionally
// naming a rolefile within the service (§3.2.2), with argument terms.
// Starred marks it as a membership rule (§3.2.3).
type RoleRef struct {
	Service  string // "" = the defining service
	Rolefile string // "" = default rolefile of that service
	Name     string
	Args     []Term
	Starred  bool
	Line     int
}

// Local reports whether the reference is to a role in the same rolefile.
func (r RoleRef) Local() bool { return r.Service == "" }

// Qualified renders Service.Rolefile.Name without arguments.
func (r RoleRef) Qualified() string {
	var b strings.Builder
	if r.Service != "" {
		b.WriteString(r.Service)
		b.WriteByte('.')
	}
	if r.Rolefile != "" {
		b.WriteString(r.Rolefile)
		b.WriteByte('.')
	}
	b.WriteString(r.Name)
	return b.String()
}

// String renders the reference with arguments and star.
func (r RoleRef) String() string {
	var b strings.Builder
	b.WriteString(r.Qualified())
	if len(r.Args) > 0 {
		b.WriteByte('(')
		for i, a := range r.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(a.String())
		}
		b.WriteByte(')')
	}
	if r.Starred {
		b.WriteByte('*')
	}
	return b.String()
}

// Rule is a role entry statement. With Elector nil it is the standard
// form; with Elector set it is the election form (§3.2.2); Revoker, if
// set, is the role-based revocation extension (§3.3.2).
type Rule struct {
	Head         RoleRef
	Candidates   []RoleRef
	Elector      *RoleRef
	ElectStarred bool // star on the <| operator: the delegation itself is revocable
	Revoker      *RoleRef
	RevokeStar   bool
	Constraint   Expr // nil when absent
	Line         int
}

// String renders the rule.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString(r.Head.String())
	b.WriteString(" <- ")
	for i, c := range r.Candidates {
		if i > 0 {
			b.WriteString(" & ")
		}
		b.WriteString(c.String())
	}
	if r.Elector != nil {
		b.WriteString(" <|")
		if r.ElectStarred {
			b.WriteByte('*')
		}
		b.WriteByte(' ')
		b.WriteString(r.Elector.String())
	}
	if r.Revoker != nil {
		b.WriteString(" |>")
		if r.RevokeStar {
			b.WriteByte('*')
		}
		b.WriteByte(' ')
		b.WriteString(r.Revoker.String())
	}
	if r.Constraint != nil {
		b.WriteString(" : ")
		b.WriteString(r.Constraint.String())
	}
	return b.String()
}

// Expr is a constraint expression (figure 3.3).
type Expr interface {
	fmt.Stringer
	isExpr()
}

// AndExpr is L and R.
type AndExpr struct{ L, R Expr }

// OrExpr is L or R.
type OrExpr struct{ L, R Expr }

// NotExpr is not E.
type NotExpr struct{ E Expr }

// StarExpr marks E as a membership rule (§3.2.4): its truth must persist
// for the lifetime of the issued certificate.
type StarExpr struct{ E Expr }

// InExpr tests group membership of a term or of a server-specific
// function's result: "u in staff", "owner(b) not in students".
type InExpr struct {
	T     Term  // used when Call is nil
	Call  *Call // non-nil for a call on the left
	Group string
	Neg   bool
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators. For sets, Le is the subset test.
const (
	CmpEq CmpOp = iota + 1
	CmpNeq
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNeq:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// CmpExpr compares two operands. "v = f(...)" with v unbound binds v
// (used by the ACL extension of §3.3.3).
type CmpExpr struct {
	Op   CmpOp
	L, R Operand
}

// CallExpr is a boolean server-specific function used as a condition
// (§3.3.1), e.g. InDir(f, d).
type CallExpr struct{ Call *Call }

// Operand is a term or a server-specific function call.
type Operand struct {
	Term *Term
	Call *Call
}

// String renders the operand.
func (o Operand) String() string {
	if o.Call != nil {
		return o.Call.String()
	}
	return o.Term.String()
}

// Call invokes a server-specific function over operands.
type Call struct {
	Fn   string
	Args []Operand
	Line int
}

// String renders the call.
func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ",") + ")"
}

func (AndExpr) isExpr()  {}
func (OrExpr) isExpr()   {}
func (NotExpr) isExpr()  {}
func (StarExpr) isExpr() {}
func (InExpr) isExpr()   {}
func (CmpExpr) isExpr()  {}
func (CallExpr) isExpr() {}

// String methods render expressions in surface syntax.
func (e AndExpr) String() string { return "(" + e.L.String() + " and " + e.R.String() + ")" }

func (e OrExpr) String() string { return "(" + e.L.String() + " or " + e.R.String() + ")" }

func (e NotExpr) String() string { return "not " + e.E.String() }

func (e StarExpr) String() string { return "(" + e.E.String() + ")*" }

func (e InExpr) String() string {
	lhs := e.T.String()
	if e.Call != nil {
		lhs = e.Call.String()
	}
	if e.Neg {
		return lhs + " not in " + e.Group
	}
	return lhs + " in " + e.Group
}

func (e CmpExpr) String() string {
	return e.L.String() + " " + e.Op.String() + " " + e.R.String()
}

func (e CallExpr) String() string { return e.Call.String() }
