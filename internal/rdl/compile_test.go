package rdl

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"oasis/internal/value"
)

// programFor compiles a single constraint wrapped in a minimal rule,
// the compiled counterpart of constraintOf.
func programFor(t *testing.T, src string) *Program {
	t.Helper()
	f, err := Parse("R <- S : " + src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	rf := &Rolefile{File: f, Types: map[string][]value.Type{"R": {}, "S": {}}}
	p, err := Compile(rf, nil)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return p
}

// normCond projects a MembershipCond to a comparable form (Expr by its
// surface rendering).
type normCond struct {
	IsGroupTest bool
	Member      value.Value
	Group       string
	Neg         bool
	Expr        string
	Env         string
}

func normConds(conds []MembershipCond) []normCond {
	out := make([]normCond, len(conds))
	for i, c := range conds {
		out[i] = normCond{
			IsGroupTest: c.IsGroupTest,
			Member:      c.Member,
			Group:       c.Group,
			Neg:         c.Neg,
		}
		if c.Expr != nil {
			out[i].Expr = c.Expr.String()
			out[i].Env = c.Env.String()
		}
	}
	return out
}

// diffConstraint asserts that the interpreter and the compiled VM agree
// on a constraint: same error (by message), same verdict, same final
// environment, same captured conditions.
func diffConstraint(t *testing.T, expr Expr, p *Program, ruleIdx int, ctx EvalContext) {
	t.Helper()
	ir, ierr := Eval(expr, ctx)
	cr, cerr := p.EvalRule(ruleIdx, ctx)
	if (ierr == nil) != (cerr == nil) {
		t.Fatalf("error divergence: interpreter=%v compiled=%v", ierr, cerr)
	}
	if ierr != nil {
		if ierr.Error() != cerr.Error() {
			t.Fatalf("error message divergence: interpreter=%q compiled=%q", ierr, cerr)
		}
		return
	}
	if ir.OK != cr.OK {
		t.Fatalf("verdict divergence: interpreter=%v compiled=%v", ir.OK, cr.OK)
	}
	if !reflect.DeepEqual(map[string]value.Value(ir.Env), map[string]value.Value(cr.Env)) {
		t.Fatalf("env divergence:\ninterpreter=%v\ncompiled=%v", ir.Env, cr.Env)
	}
	if !reflect.DeepEqual(normConds(ir.Conds), normConds(cr.Conds)) {
		t.Fatalf("conds divergence:\ninterpreter=%v\ncompiled=%v", ir.Conds, cr.Conds)
	}
}

func diffStr(t *testing.T, src string, env value.Env, groups GroupOracle, funcs FuncTable) {
	t.Helper()
	p := programFor(t, src)
	diffConstraint(t, p.Rules[0].Rule.Constraint, p, 0, EvalContext{Env: env, Groups: groups, Funcs: funcs})
}

// TestCompileEvalDifferential drives the compiled VM and the AST
// interpreter over the semantic corners — short-circuiting, binding
// '=', set-literal coercion, star capture under negation, error paths —
// and requires byte-identical results.
func TestCompileEvalDifferential(t *testing.T) {
	groups := testGroups{
		"staff":   {"alice": true, "jmb": true},
		"secure":  {"hostA": true},
		"empty":   {},
		"numbers": {"i:7": true},
	}
	funcs := FuncTable{
		"inc": &Func{Result: value.IntType, Fn: func(a []value.Value) (value.Value, error) {
			return value.Int(a[0].I + 1), nil
		}},
		"one": &Func{Result: value.IntType, Fn: func(a []value.Value) (value.Value, error) {
			return value.Int(1), nil
		}},
		"name": &Func{Result: value.StringType, Fn: func(a []value.Value) (value.Value, error) {
			return value.Str("alice"), nil
		}},
		"boom": &Func{Result: value.IntType, Fn: func(a []value.Value) (value.Value, error) {
			return value.Value{}, fmt.Errorf("boom failed")
		}},
	}
	env := value.Env{}.
		Extend("a", value.Int(3)).
		Extend("b", value.Int(5)).
		Extend("s", value.Str("abc")).
		Extend("u", value.Str("alice")).
		Extend("v", value.Str("mallory")).
		Extend("r", value.MustSet("rwx", "rw")).
		Extend("w", value.MustSet("rwx", "rwx")).
		Extend("n", value.Int(7)).
		Extend("@host", value.Str("hostA"))

	srcs := []string{
		// comparisons, all operators, both orders
		"a = 3", "a = b", "a != b", "a < b", "a <= 3", "a > b", "a >= 3",
		"s = \"abc\"", "s != \"abc\"", "s < \"abd\"", "s >= \"abc\"",
		// sets: subset both directions, literal coercion both sides
		"r <= w", "w <= r", "w >= r", "r = {rw}", "{r} <= r", "{wx} <= w",
		// binding '=': var on either side, chained use of the binding
		"x = 3 and x < b", "3 = x and x = 3", "x = inc(a) and x = 4",
		"x = s and x = \"abc\"",
		// binding does not fire for !=, or when both sides are unbound
		"x != 3", "x = y",
		// boolean structure with short-circuits
		"a = 3 and b = 5", "a = 4 or b = 5", "a = 4 and boom()",
		"a = 3 or boom()", "not (a = 4)", "not (a = 3 and b = 4)",
		// group tests, negation, @host
		"u in staff", "v in staff", "u not in staff", "v not in empty",
		"@host in secure", "n in numbers",
		// star capture: group form, negated group, generic expr
		"(u in staff)*", "(v in staff)*", "(u not in empty)*",
		"((u in staff) and a = 3)*", "(a = 3)*", "(x = 9)*  and x = 9",
		"(name() in staff)*", "(n in numbers)*",
		// stars under negation are never captured, however deep
		"not (u in staff)*", "not (not ((u in staff)*))",
		"not ((u in staff)* and a = 4)",
		// star not reached via short-circuit
		"a = 3 or (u in staff)*", "a = 4 and (u in staff)*",
		// nested stars
		"((u in staff)* and (a = 3)*)*",
		// function calls as conditions and operands
		"one()", "inc(a) = 4", "inc(inc(a)) = 5", "name() = u",
		// error paths: unbound variable, unknown function, call failure,
		// set literal with no typed context, bad set element
		"z = z", "z < 3", "mystery() = 1", "boom() = 1", "boom()",
		"{rw} = {rw}", "{zz} <= r", "a <= r", "s < a",
		"(z in staff)*",
	}
	for _, src := range srcs {
		t.Run(src, func(t *testing.T) {
			diffStr(t, src, env, groups, funcs)
			// Same sources with no oracle and no funcs: the error paths
			// ("no group oracle", "unknown function") must match too.
			diffStr(t, src, env, nil, nil)
			// And under an empty environment, exercising unbound-variable
			// errors and '=' binding from scratch.
			diffStr(t, src, value.Env{}, groups, funcs)
		})
	}
}

// TestCompileEvalDifferentialBindingEnv pins the binding '=' result
// environment: the compiled machine must extend the environment exactly
// as the interpreter does, and must not leak failed candidate bindings.
func TestCompileEvalDifferentialBindingEnv(t *testing.T) {
	p := programFor(t, "x = 3 and x = 4")
	res, err := p.EvalRule(0, EvalContext{Env: value.Env{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("x = 3 and x = 4 held")
	}
	// The interpreter keeps bindings made before the failure.
	if got := res.Env["x"]; !got.Equal(value.Int(3)) {
		t.Fatalf("x = %v, want 3", got)
	}
}

// exampleFiles returns every example rolefile in the repository.
func exampleFiles(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob("../../examples/*/*.rdl")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example rolefiles found: %v", err)
	}
	return paths
}

func inferAll(service, rolefile, role string) ([]value.Type, error) {
	return nil, ErrInferSignature
}

// sampleValue produces a deterministic value of the given type.
func sampleValue(t value.Type, name string) value.Value {
	switch t.Kind {
	case value.KindInt:
		return value.Int(int64(len(name)))
	case value.KindString:
		return value.Str("s-" + name)
	case value.KindSet:
		v, _ := value.Set(t.Universe, t.Universe[:1])
		return v
	case value.KindObject:
		return value.Object(t.Name, "id-"+name)
	default:
		return value.Str("v-" + name)
	}
}

// envForRule synthesizes an environment binding the rule's registers
// with type-faithful sample values: types come from the compiled head
// and candidate plans, defaulting to strings.
func envForRule(p *Program, cr *CompiledRule) value.Env {
	types := make(map[string]value.Type)
	collect := func(rp *RefPlan) {
		if rp.Types == nil {
			return
		}
		for i, a := range rp.Args {
			if a.Reg >= 0 {
				types[cr.Regs[a.Reg]] = rp.Types[i]
			}
		}
	}
	collect(&cr.Head)
	for ci := range cr.Cands {
		collect(&cr.Cands[ci])
	}
	env := make(value.Env, len(cr.Regs))
	for _, name := range cr.Regs {
		if name == "@host" {
			env[name] = value.Str("hostA")
			continue
		}
		if ty, ok := types[name]; ok {
			env[name] = sampleValue(ty, name)
		} else {
			env[name] = value.Str("s-" + name)
		}
	}
	return env
}

type parityGroups bool

func (g parityGroups) IsMember(m value.Value, group string) bool {
	if !bool(g) {
		return false
	}
	return (len(m.S)+len(group))%2 == 0
}

// TestCompileExamplesDifferential compiles every example rolefile and
// checks, rule by rule, that the compiled constraint agrees with the
// interpreter under full, partial and empty environments and under
// different group oracles.
func TestCompileExamplesDifferential(t *testing.T) {
	for _, path := range exampleFiles(t) {
		t.Run(filepath.Base(filepath.Dir(path))+"/"+filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			rf, err := Check(f, inferAll, nil)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Compile(rf, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Rules) != len(f.Rules) {
				t.Fatalf("compiled %d rules, file has %d", len(p.Rules), len(f.Rules))
			}
			for i := range p.Rules {
				cr := &p.Rules[i]
				if (cr.Code == nil) != (cr.Rule.Constraint == nil) {
					t.Errorf("rule %d: no-VM marker mismatch (code=%v constraint=%v)",
						i+1, cr.Code != nil, cr.Rule.Constraint != nil)
				}
				if cr.Rule.Constraint == nil {
					continue
				}
				full := envForRule(p, cr)
				envs := []value.Env{full, {}}
				// Partial environment: drop the last allocated register.
				if n := len(cr.Regs); n > 1 {
					partial := full.Clone()
					delete(partial, cr.Regs[n-1])
					envs = append(envs, partial)
				}
				for ei, env := range envs {
					for _, oracle := range []GroupOracle{parityGroups(true), parityGroups(false), nil} {
						t.Run(fmt.Sprintf("rule%d/env%d/oracle%v", i+1, ei, oracle), func(t *testing.T) {
							diffConstraint(t, cr.Rule.Constraint, p, i,
								EvalContext{Env: env, Groups: oracle, Funcs: nil})
						})
					}
				}
			}
		})
	}
}

// TestCompileDispatchIndex checks the by-head rule index: source order
// within a bucket, every rule present, lookups by role name.
func TestCompileDispatchIndex(t *testing.T) {
	src, err := os.ReadFile("../../examples/login/Login.rdl")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Check(f, inferAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(rf, nil)
	if err != nil {
		t.Fatal(err)
	}
	idxs := p.RulesFor("Login")
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(idxs, want) {
		t.Fatalf("RulesFor(Login) = %v, want %v", idxs, want)
	}
	if p.RulesFor("NoSuchRole") != nil {
		t.Fatal("RulesFor on unknown role returned rules")
	}
	total := 0
	for _, idxs := range p.ByHead {
		total += len(idxs)
	}
	if total != len(p.Rules) {
		t.Fatalf("ByHead indexes %d rules, program has %d", total, len(p.Rules))
	}
}

// TestCompileNoVMFastPath checks that constraint-free rules carry no
// code and evaluate without a machine.
func TestCompileNoVMFastPath(t *testing.T) {
	f, err := Parse("def LoggedOn(u, h) u: string h: string\nLoggedOn(u, h) <-")
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Check(f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(rf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Code != nil {
		t.Fatal("constraint-free rule compiled to code")
	}
	env := value.Env{"u": value.Str("x")}
	res, err := p.EvalRule(0, EvalContext{Env: env})
	if err != nil || !res.OK || len(res.Conds) != 0 {
		t.Fatalf("no-VM rule: res=%+v err=%v", res, err)
	}
}

// TestCompileDisassemble sanity-checks the textual plan dump consumed
// by rdlcheck -dump-plan.
func TestCompileDisassemble(t *testing.T) {
	src, err := os.ReadFile("../../examples/golfclub/Golf.rdl")
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Check(f, inferAll, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(rf, nil)
	if err != nil {
		t.Fatal(err)
	}
	dump := p.Disassemble()
	for _, want := range []string{
		"rule 1:", "regs:", "head:", "cand 0:", "code:",
		"election-form", "dispatch:", "Member -> rules",
		"star", "grp",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dump)
		}
	}
}

// TestMachineRollback checks that a failed candidate match unwinds its
// tentative bindings (the per-held rollback matchCandidate relies on).
func TestMachineRollback(t *testing.T) {
	f, err := Parse("def R(x, y) x: integer y: string\ndef S(x, y) x: integer y: string\nR(x, y) <- S(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Check(f, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(rf, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine()
	m.Reset(0)
	m.BindHost(value.Str("h"))
	cand := &p.Rules[0].Cands[0]
	// First attempt binds x=1 then fails on a bound-y mismatch.
	m.MatchPlan(cand, []value.Value{value.Int(1), value.Str("a")})
	// y now bound; a conflicting held must fail AND roll back nothing
	// that belonged to the earlier successful match.
	if m.MatchPlan(cand, []value.Value{value.Int(2), value.Str("b")}) {
		t.Fatal("conflicting candidate matched")
	}
	args, ok := m.Instantiate(&p.Rules[0].Head)
	if !ok {
		t.Fatal("head instantiation failed after rollback")
	}
	if !args[0].Equal(value.Int(1)) || !args[1].Equal(value.Str("a")) {
		t.Fatalf("bindings disturbed by failed match: %v", args)
	}
}
