package rdl

import (
	"fmt"
	"strings"

	"oasis/internal/value"
)

// GroupOracle answers group-membership queries during constraint
// evaluation ("u in staff").
type GroupOracle interface {
	IsMember(member value.Value, group string) bool
}

// GroupOracleFunc adapts a function to GroupOracle.
type GroupOracleFunc func(member value.Value, group string) bool

// IsMember implements GroupOracle.
func (f GroupOracleFunc) IsMember(m value.Value, g string) bool { return f(m, g) }

// MembershipCond is a starred entry condition captured during evaluation:
// its continued truth is required for the lifetime of the issued
// certificate (§3.2.3). For group tests the member value and group are
// recorded so the service can wire a credential record to them; other
// starred conditions are captured with their instantiated environment.
type MembershipCond struct {
	// Group test conditions (the common, efficiently monitorable case).
	IsGroupTest bool
	Member      value.Value
	Group       string
	Neg         bool

	// Generic starred expression, with the entry-time environment.
	Expr Expr
	Env  value.Env
}

// String renders the condition.
func (m MembershipCond) String() string {
	if m.IsGroupTest {
		op := "in"
		if m.Neg {
			op = "not in"
		}
		return fmt.Sprintf("%s %s %s", m.Member, op, m.Group)
	}
	return m.Expr.String() + " with " + m.Env.String()
}

// EvalContext supplies the environment for constraint evaluation.
type EvalContext struct {
	Env    value.Env
	Groups GroupOracle
	Funcs  FuncTable
}

// EvalResult is the outcome of evaluating a constraint.
type EvalResult struct {
	OK    bool
	Env   value.Env        // possibly extended by binding comparisons
	Conds []MembershipCond // starred sub-conditions that held
}

// Eval evaluates a constraint expression. Equality comparisons against a
// single unbound variable bind it (supporting the ACL extension of
// §3.3.3: r = unixacl("...", u)). Starred sub-expressions that hold are
// returned as membership conditions.
func Eval(e Expr, ctx EvalContext) (EvalResult, error) {
	ev := &evaluator{ctx: ctx, env: ctx.Env}
	ok, err := ev.eval(e, false)
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{OK: ok, Env: ev.env, Conds: ev.conds}, nil
}

type evaluator struct {
	ctx   EvalContext
	env   value.Env
	conds []MembershipCond
}

// eval evaluates e; under negation (inNot) starred conditions are not
// collected — a membership rule must be a positively held condition.
func (ev *evaluator) eval(e Expr, inNot bool) (bool, error) {
	switch x := e.(type) {
	case AndExpr:
		l, err := ev.eval(x.L, inNot)
		if err != nil {
			return false, err
		}
		if !l {
			return false, nil
		}
		return ev.eval(x.R, inNot)
	case OrExpr:
		l, err := ev.eval(x.L, inNot)
		if err != nil {
			return false, err
		}
		if l {
			return true, nil
		}
		return ev.eval(x.R, inNot)
	case NotExpr:
		v, err := ev.eval(x.E, true)
		return !v, err
	case StarExpr:
		v, err := ev.eval(x.E, inNot)
		if err != nil || !v {
			return v, err
		}
		if !inNot {
			ev.record(x.E)
		}
		return true, nil
	case InExpr:
		m, err := ev.inOperand(x)
		if err != nil {
			return false, err
		}
		if ev.ctx.Groups == nil {
			return false, fmt.Errorf("rdl: no group oracle for %q", x.String())
		}
		in := ev.ctx.Groups.IsMember(m, x.Group)
		if x.Neg {
			return !in, nil
		}
		return in, nil
	case CmpExpr:
		return ev.compare(x)
	case CallExpr:
		v, err := ev.call(x.Call)
		if err != nil {
			return false, err
		}
		// Boolean functions return integer 0/1.
		if v.T.Kind != value.KindInt {
			return false, fmt.Errorf("rdl: boolean function %s returned %v", x.Call.Fn, v.T)
		}
		return v.I != 0, nil
	default:
		return false, fmt.Errorf("rdl: unknown expression %T", e)
	}
}

// inOperand evaluates the left-hand side of a group test.
func (ev *evaluator) inOperand(x InExpr) (value.Value, error) {
	if x.Call != nil {
		return ev.call(x.Call)
	}
	return ev.termValue(x.T)
}

// record captures a starred condition with instantiated environment.
func (ev *evaluator) record(e Expr) {
	if in, ok := e.(InExpr); ok {
		if m, err := ev.inOperand(in); err == nil {
			ev.conds = append(ev.conds, MembershipCond{
				IsGroupTest: true, Member: m, Group: in.Group, Neg: in.Neg,
			})
			return
		}
	}
	ev.conds = append(ev.conds, MembershipCond{Expr: e, Env: ev.env.Clone()})
}

func (ev *evaluator) termValue(t Term) (value.Value, error) {
	if t.Var != "" {
		v, ok := ev.env[t.Var]
		if !ok {
			return value.Value{}, fmt.Errorf("rdl: variable %s unbound", t.Var)
		}
		return v, nil
	}
	// Literals in constraints are interpreted without an expected type:
	// integers and strings directly; sets need context, so they are only
	// valid opposite a typed operand (handled in compare).
	switch {
	case t.IsInt:
		return value.Int(t.IntLit), nil
	case t.IsStr:
		return value.Str(t.StrLit), nil
	default:
		return value.Value{}, fmt.Errorf("rdl: set literal needs a typed context")
	}
}

func (ev *evaluator) operandValue(o Operand) (value.Value, error) {
	if o.Call != nil {
		return ev.call(o.Call)
	}
	return ev.termValue(*o.Term)
}

func (ev *evaluator) call(c *Call) (value.Value, error) {
	f, ok := ev.ctx.Funcs[c.Fn]
	if !ok {
		return value.Value{}, fmt.Errorf("rdl: unknown function %s", c.Fn)
	}
	args := make([]value.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := ev.operandValue(a)
		if err != nil {
			return value.Value{}, err
		}
		args[i] = v
	}
	return f.Fn(args)
}

// compare evaluates a comparison, performing variable binding when one
// side is a single unbound variable and the operator is '='.
func (ev *evaluator) compare(x CmpExpr) (bool, error) {
	lv, lerr := ev.operandValue(x.L)
	rv, rerr := ev.operandValue(x.R)

	if x.Op == CmpEq {
		if lerr != nil && rerr == nil {
			if v, ok := unboundVar(x.L, ev.env); ok {
				ev.env = ev.env.Extend(v, rv)
				return true, nil
			}
		}
		if rerr != nil && lerr == nil {
			if v, ok := unboundVar(x.R, ev.env); ok {
				ev.env = ev.env.Extend(v, lv)
				return true, nil
			}
		}
	}
	// Set literals get their type from the other side.
	if lerr != nil && rerr == nil {
		if t := x.L.Term; t != nil && t.IsSet && rv.T.Kind == value.KindSet {
			var err error
			lv, err = value.Set(rv.T.Universe, t.SetLit)
			if err != nil {
				return false, err
			}
			lerr = nil
		}
	}
	if rerr != nil && lerr == nil {
		if t := x.R.Term; t != nil && t.IsSet && lv.T.Kind == value.KindSet {
			var err error
			rv, err = value.Set(lv.T.Universe, t.SetLit)
			if err != nil {
				return false, err
			}
			rerr = nil
		}
	}
	if lerr != nil {
		return false, lerr
	}
	if rerr != nil {
		return false, rerr
	}

	switch x.Op {
	case CmpEq:
		return lv.Equal(rv), nil
	case CmpNeq:
		return !lv.Equal(rv), nil
	case CmpLe:
		if lv.T.Kind == value.KindSet {
			return lv.SubsetOf(rv)
		}
		return orderCmp(lv, rv, func(c int) bool { return c <= 0 })
	case CmpGe:
		if lv.T.Kind == value.KindSet {
			return rv.SubsetOf(lv)
		}
		return orderCmp(lv, rv, func(c int) bool { return c >= 0 })
	case CmpLt:
		return orderCmp(lv, rv, func(c int) bool { return c < 0 })
	case CmpGt:
		return orderCmp(lv, rv, func(c int) bool { return c > 0 })
	default:
		return false, fmt.Errorf("rdl: bad comparison operator")
	}
}

func unboundVar(o Operand, env value.Env) (string, bool) {
	if o.Term == nil || o.Term.Var == "" {
		return "", false
	}
	if _, bound := env[o.Term.Var]; bound {
		return "", false
	}
	return o.Term.Var, true
}

func orderCmp(a, b value.Value, pred func(int) bool) (bool, error) {
	if !a.T.Equal(b.T) {
		return false, fmt.Errorf("rdl: ordered comparison of %v and %v", a.T, b.T)
	}
	switch a.T.Kind {
	case value.KindInt:
		switch {
		case a.I < b.I:
			return pred(-1), nil
		case a.I > b.I:
			return pred(1), nil
		default:
			return pred(0), nil
		}
	case value.KindString:
		return pred(strings.Compare(a.S, b.S)), nil
	default:
		return false, fmt.Errorf("rdl: no order defined on %v", a.T)
	}
}

// MatchArgs matches a role reference's argument terms against concrete
// values under env: literals must equal the value (coerced via the
// expected type), variables bind or must agree. It returns the extended
// environment. This is the unification step of applying an entry rule.
func MatchArgs(args []Term, types []value.Type, vals []value.Value, env value.Env) (value.Env, bool, error) {
	if len(args) != len(vals) || len(args) != len(types) {
		return nil, false, fmt.Errorf("rdl: arity mismatch: %d terms, %d types, %d values", len(args), len(types), len(vals))
	}
	out := env
	for i, a := range args {
		if a.Var != "" {
			if bound, ok := out[a.Var]; ok {
				if !bound.Equal(vals[i]) {
					return nil, false, nil
				}
			} else {
				out = out.Extend(a.Var, vals[i])
			}
			continue
		}
		lit, err := LiteralValue(a, types[i])
		if err != nil {
			return nil, false, err
		}
		if !lit.Equal(vals[i]) {
			return nil, false, nil
		}
	}
	return out, true, nil
}

// InstantiateArgs produces concrete argument values for a role reference
// from the environment; every variable must be bound and every literal is
// coerced via the expected type.
func InstantiateArgs(args []Term, types []value.Type, env value.Env) ([]value.Value, error) {
	if len(args) != len(types) {
		return nil, fmt.Errorf("rdl: arity mismatch: %d terms, %d types", len(args), len(types))
	}
	out := make([]value.Value, len(args))
	for i, a := range args {
		if a.Var != "" {
			v, ok := env[a.Var]
			if !ok {
				return nil, fmt.Errorf("rdl: variable %s unbound", a.Var)
			}
			if !v.T.Equal(types[i]) {
				return nil, fmt.Errorf("rdl: variable %s has type %v, expected %v", a.Var, v.T, types[i])
			}
			out[i] = v
			continue
		}
		lit, err := LiteralValue(a, types[i])
		if err != nil {
			return nil, err
		}
		out[i] = lit
	}
	return out, nil
}

// Axiom renders the rule as the proof-system axiom of §3.2.2: premises
// above the line, conclusion below.
func Axiom(r *Rule) string {
	var prem []string
	for _, c := range r.Candidates {
		prem = append(prem, "c owns "+c.String())
	}
	if r.Elector != nil {
		prem = append(prem, "c <| c'", "c' owns "+r.Elector.String())
	}
	if r.Revoker != nil {
		prem = append(prem, "not Revoked("+r.Head.String()+")")
	}
	if r.Constraint != nil {
		prem = append(prem, r.Constraint.String())
	}
	prem = append(prem, "c requests entry to "+r.Head.String())
	var b strings.Builder
	for _, p := range prem {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	b.WriteString("--------\n")
	b.WriteString("c owns " + r.Head.String())
	return b.String()
}
