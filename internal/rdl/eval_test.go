package rdl

import (
	"testing"

	"oasis/internal/value"
)

func constraintOf(t *testing.T, src string) Expr {
	t.Helper()
	f, err := Parse("R <- S : " + src)
	if err != nil {
		t.Fatal(err)
	}
	return f.Rules[0].Constraint
}

type testGroups map[string]map[string]bool

func (g testGroups) IsMember(m value.Value, group string) bool {
	return g[group][m.S]
}

func evalStr(t *testing.T, src string, env value.Env, groups GroupOracle, funcs FuncTable) EvalResult {
	t.Helper()
	res, err := Eval(constraintOf(t, src), EvalContext{Env: env, Groups: groups, Funcs: funcs})
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return res
}

func TestEvalComparisons(t *testing.T) {
	env := value.Env{}.Extend("a", value.Int(3)).Extend("b", value.Int(5)).
		Extend("s", value.Str("abc")).Extend("t", value.Str("abd"))
	cases := map[string]bool{
		"a = 3":     true,
		"a = b":     false,
		"a != b":    true,
		"a < b":     true,
		"a <= 3":    true,
		"a > b":     false,
		"a >= 3":    true,
		"b < a":     false,
		"s = s":     true,
		"s != t":    true,
		"s < t":     true,
		`s = "abc"`: true,
	}
	for src, want := range cases {
		if got := evalStr(t, src, env, nil, nil).OK; got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalSetSubset(t *testing.T) {
	env := value.Env{}.Extend("r", value.MustSet("rwx", "rw")).
		Extend("s", value.MustSet("rwx", "rwx"))
	if !evalStr(t, "r <= s", env, nil, nil).OK {
		t.Fatal("subset test failed")
	}
	if evalStr(t, "s <= r", env, nil, nil).OK {
		t.Fatal("superset passed subset test")
	}
	if !evalStr(t, "s >= r", env, nil, nil).OK {
		t.Fatal("superset test failed")
	}
	// Set literal gets its universe from the other operand.
	if !evalStr(t, "r = {rw}", env, nil, nil).OK {
		t.Fatal("set literal comparison failed")
	}
	if !evalStr(t, "{r} <= r", env, nil, nil).OK {
		t.Fatal("set literal on left failed")
	}
}

func TestEvalBooleanStructure(t *testing.T) {
	env := value.Env{}.Extend("a", value.Int(1)).Extend("b", value.Int(2))
	cases := map[string]bool{
		"a = 1 and b = 2":            true,
		"a = 1 and b = 3":            false,
		"a = 9 or b = 2":             true,
		"a = 9 or b = 9":             false,
		"not (a = 9)":                true,
		"not (a = 1)":                false,
		"(a = 1 or a = 2) and b = 2": true,
	}
	for src, want := range cases {
		if got := evalStr(t, src, env, nil, nil).OK; got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestEvalGroupMembership(t *testing.T) {
	groups := testGroups{"staff": {"dm": true}}
	env := value.Env{}.Extend("u", value.Object("Login.userid", "dm")).
		Extend("v", value.Object("Login.userid", "guest"))
	if !evalStr(t, "u in staff", env, groups, nil).OK {
		t.Fatal("member not in group")
	}
	if evalStr(t, "v in staff", env, groups, nil).OK {
		t.Fatal("non-member in group")
	}
	if !evalStr(t, "v not in staff", env, groups, nil).OK {
		t.Fatal("not-in failed")
	}
	if evalStr(t, "u not in staff", env, groups, nil).OK {
		t.Fatal("not-in passed for member")
	}
}

func TestEvalStarCollectsMembershipConds(t *testing.T) {
	groups := testGroups{"staff": {"dm": true}}
	env := value.Env{}.Extend("u", value.Object("Login.userid", "dm"))
	res := evalStr(t, "(u in staff)*", env, groups, nil)
	if !res.OK {
		t.Fatal("starred condition failed")
	}
	if len(res.Conds) != 1 {
		t.Fatalf("conds = %v", res.Conds)
	}
	c := res.Conds[0]
	if !c.IsGroupTest || c.Group != "staff" || c.Member.S != "dm" || c.Neg {
		t.Fatalf("cond = %+v", c)
	}
}

func TestEvalStarGenericCondition(t *testing.T) {
	env := value.Env{}.Extend("a", value.Int(1))
	res := evalStr(t, "(a = 1)*", env, nil, nil)
	if !res.OK || len(res.Conds) != 1 || res.Conds[0].IsGroupTest {
		t.Fatalf("res = %+v", res)
	}
	if res.Conds[0].Env["a"].I != 1 {
		t.Fatal("starred env not captured")
	}
}

func TestEvalFalseStarNoCond(t *testing.T) {
	groups := testGroups{}
	env := value.Env{}.Extend("u", value.Object("Login.userid", "x"))
	res := evalStr(t, "(u in staff)*", env, groups, nil)
	if res.OK || len(res.Conds) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestEvalBindingEquality(t *testing.T) {
	// §3.3.3: r = unixacl(...) binds r.
	funcs := FuncTable{
		"unixacl": {
			Result: value.SetType("rwx"),
			Fn: func(args []value.Value) (value.Value, error) {
				return value.MustSet("rwx", "rx"), nil
			},
		},
	}
	env := value.Env{}.Extend("u", value.Str("rjh21"))
	res := evalStr(t, `r = unixacl("acl", u)`, env, nil, funcs)
	if !res.OK {
		t.Fatal("binding comparison failed")
	}
	if got := res.Env["r"]; got.Members() != "rx" {
		t.Fatalf("r bound to %v", got)
	}
	// Reversed orientation binds too.
	res2 := evalStr(t, `unixacl("acl", u) = r2`, env, nil, funcs)
	if !res2.OK || res2.Env["r2"].Members() != "rx" {
		t.Fatalf("reverse binding res = %+v", res2)
	}
}

func TestEvalUnboundVariableError(t *testing.T) {
	if _, err := Eval(constraintOf(t, "x < 3"), EvalContext{Env: value.Env{}}); err == nil {
		t.Fatal("unbound variable in order comparison accepted")
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right side of a satisfied 'or' must not be evaluated (it
	// references an unbound variable).
	env := value.Env{}.Extend("a", value.Int(1))
	res := evalStr(t, "a = 1 or zz = 1", env, nil, nil)
	if !res.OK {
		t.Fatal("short-circuit or failed")
	}
	// And the left side of a failing 'and' stops evaluation.
	res2 := evalStr(t, "a = 2 and zz = 1", env, nil, nil)
	if res2.OK {
		t.Fatal("failing and passed")
	}
}

func TestEvalBooleanFunction(t *testing.T) {
	funcs := FuncTable{
		"Root": {
			Result: value.IntType,
			Fn: func(args []value.Value) (value.Value, error) {
				if args[0].S == "/" {
					return value.Int(1), nil
				}
				return value.Int(0), nil
			},
		},
	}
	env := value.Env{}.Extend("d", value.Str("/")).Extend("e", value.Str("/usr"))
	if !evalStr(t, "Root(d)", env, nil, funcs).OK {
		t.Fatal("boolean function true case failed")
	}
	if evalStr(t, "Root(e)", env, nil, funcs).OK {
		t.Fatal("boolean function false case passed")
	}
}

func TestEvalStarUnderNotNotCollected(t *testing.T) {
	env := value.Env{}.Extend("a", value.Int(2))
	res := evalStr(t, "not ((a = 1)*)", env, nil, nil)
	if !res.OK {
		t.Fatal("negated false star should be true")
	}
	if len(res.Conds) != 0 {
		t.Fatalf("conds under negation = %v", res.Conds)
	}
}

func TestMatchArgs(t *testing.T) {
	types := []value.Type{value.ObjectType("uid"), value.IntType}
	vals := []value.Value{value.Object("uid", "dm"), value.Int(3)}

	// Variables bind.
	env, ok, err := MatchArgs([]Term{{Var: "u"}, {Var: "n"}}, types, vals, value.Env{})
	if err != nil || !ok || env["u"].S != "dm" || env["n"].I != 3 {
		t.Fatalf("MatchArgs = %v %v %v", env, ok, err)
	}
	// Bound variables must agree.
	_, ok, err = MatchArgs([]Term{{Var: "u"}, {Var: "n"}}, types, vals,
		value.Env{}.Extend("u", value.Object("uid", "other")))
	if err != nil || ok {
		t.Fatalf("bound mismatch: ok=%v err=%v", ok, err)
	}
	// Literals must equal.
	_, ok, err = MatchArgs([]Term{{IsStr: true, StrLit: "dm"}, {IsInt: true, IntLit: 3}}, types, vals, value.Env{})
	if err != nil || !ok {
		t.Fatalf("literal match: ok=%v err=%v", ok, err)
	}
	_, ok, _ = MatchArgs([]Term{{IsStr: true, StrLit: "xx"}, {IsInt: true, IntLit: 3}}, types, vals, value.Env{})
	if ok {
		t.Fatal("literal mismatch matched")
	}
	// Arity errors.
	if _, _, err := MatchArgs([]Term{{Var: "u"}}, types, vals, value.Env{}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestInstantiateArgs(t *testing.T) {
	types := []value.Type{value.ObjectType("uid"), value.IntType}
	env := value.Env{}.Extend("u", value.Object("uid", "dm"))
	vals, err := InstantiateArgs([]Term{{Var: "u"}, {IsInt: true, IntLit: 7}}, types, env)
	if err != nil || vals[0].S != "dm" || vals[1].I != 7 {
		t.Fatalf("InstantiateArgs = %v, %v", vals, err)
	}
	if _, err := InstantiateArgs([]Term{{Var: "zz"}, {IsInt: true, IntLit: 7}}, types, env); err == nil {
		t.Fatal("unbound variable instantiated")
	}
	if _, err := InstantiateArgs([]Term{{Var: "u"}}, types, env); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	// Type mismatch between bound value and expected type.
	bad := value.Env{}.Extend("u", value.Int(1))
	if _, err := InstantiateArgs([]Term{{Var: "u"}, {IsInt: true, IntLit: 7}}, types, bad); err == nil {
		t.Fatal("type mismatch accepted")
	}
}
