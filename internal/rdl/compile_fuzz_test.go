package rdl

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"oasis/internal/value"
)

// collectVars gathers the variable names a constraint mentions, sorted,
// so the fuzzer can bind deterministic subsets of them.
func collectVars(e Expr) []string {
	seen := map[string]bool{}
	var walkOperand func(o Operand)
	var walkCall func(c *Call)
	walkTerm := func(t Term) {
		if t.Var != "" {
			seen[t.Var] = true
		}
	}
	walkCall = func(c *Call) {
		for _, a := range c.Args {
			walkOperand(a)
		}
	}
	walkOperand = func(o Operand) {
		if o.Call != nil {
			walkCall(o.Call)
			return
		}
		walkTerm(*o.Term)
	}
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case AndExpr:
			walk(x.L)
			walk(x.R)
		case OrExpr:
			walk(x.L)
			walk(x.R)
		case NotExpr:
			walk(x.E)
		case StarExpr:
			walk(x.E)
		case InExpr:
			if x.Call != nil {
				walkCall(x.Call)
			} else {
				walkTerm(x.T)
			}
		case CmpExpr:
			walkOperand(x.L)
			walkOperand(x.R)
		case CallExpr:
			walkCall(x.Call)
		}
	}
	walk(e)
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// fuzzValue derives a typed value for a variable from two seed bits.
func fuzzValue(sel uint64, name string) value.Value {
	switch sel & 3 {
	case 0:
		return value.Int(int64(sel>>2)%5 - 2)
	case 1:
		return value.Str(name)
	case 2:
		return value.MustSet("rwx", "rwx"[:int(sel>>2)%4])
	default:
		return value.Object("Fz.id", name)
	}
}

func fuzzFuncs() FuncTable {
	return FuncTable{
		"inc": &Func{Result: value.IntType, Fn: func(a []value.Value) (value.Value, error) {
			if len(a) == 0 || a[0].T.Kind != value.KindInt {
				return value.Value{}, fmt.Errorf("inc wants an integer")
			}
			return value.Int(a[0].I + 1), nil
		}},
		"name": &Func{Result: value.StringType, Fn: func(a []value.Value) (value.Value, error) {
			return value.Str("alice"), nil
		}},
		"boom": &Func{Result: value.IntType, Fn: func(a []value.Value) (value.Value, error) {
			return value.Value{}, fmt.Errorf("boom failed")
		}},
	}
}

// FuzzCompileEval is the differential fuzzer of the compiled VM: any
// constraint the parser accepts must produce the same EvalResult —
// verdict, environment, captured conditions — or the same error from
// both the interpreter and the compiled program, under fuzzer-chosen
// environments and oracles.
func FuzzCompileEval(f *testing.F) {
	// Seed with the semantic corners the unit differential covers...
	for _, src := range []string{
		"a = 3", "x = 3 and x < b", "3 = x", "x = y", "a <= r",
		"r = {rw}", "{r} <= r", "{zz} <= r", "u in staff",
		"u not in staff", "(u in staff)*", "not (u in staff)*",
		"not (not ((u in staff)*))", "((u in staff) and a = 3)*",
		"(a = 3)* or (b = 5)*", "a = 4 and (u in staff)*",
		"(name() in staff)*", "inc(a) = 4", "boom()", "mystery()",
		"z = z", "s < a", "((u in staff)* and (a = 3)*)*",
	} {
		f.Add(src, uint64(0xA5A5), uint8(0))
		f.Add(src, uint64(0), uint8(1))
	}
	// ...and with every constraint in the example rolefiles.
	paths, _ := filepath.Glob("../../examples/*/*.rdl")
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		file, err := Parse(string(src))
		if err != nil {
			continue
		}
		for _, r := range file.Rules {
			if r.Constraint != nil {
				f.Add(r.Constraint.String(), uint64(0x5A5A), uint8(2))
			}
		}
	}

	f.Fuzz(func(t *testing.T, src string, envSeed uint64, oracleMode uint8) {
		file, err := Parse("R <- S : " + src)
		if err != nil {
			return
		}
		expr := file.Rules[0].Constraint
		if expr == nil {
			return
		}
		rf := &Rolefile{File: file, Types: map[string][]value.Type{"R": {}, "S": {}}}
		p, err := Compile(rf, nil)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}

		// Bind a seed-chosen subset of the constraint's variables to
		// seed-chosen typed values.
		env := value.Env{}
		seed := envSeed
		for _, name := range collectVars(expr) {
			if seed&1 == 1 {
				env[name] = fuzzValue(seed>>1, name)
			}
			seed >>= 4
		}

		var groups GroupOracle
		switch oracleMode % 3 {
		case 0:
			groups = parityGroups(true)
		case 1:
			groups = parityGroups(false)
		}
		var funcs FuncTable
		if oracleMode%2 == 0 {
			funcs = fuzzFuncs()
		}
		ctx := EvalContext{Env: env, Groups: groups, Funcs: funcs}

		ir, ierr := Eval(expr, ctx)
		cr, cerr := p.EvalRule(0, ctx)
		if (ierr == nil) != (cerr == nil) {
			t.Fatalf("%q: error divergence: interpreter=%v compiled=%v", src, ierr, cerr)
		}
		if ierr != nil {
			if ierr.Error() != cerr.Error() {
				t.Fatalf("%q: error message divergence: interpreter=%q compiled=%q", src, ierr, cerr)
			}
			return
		}
		if ir.OK != cr.OK {
			t.Fatalf("%q: verdict divergence: interpreter=%v compiled=%v", src, ir.OK, cr.OK)
		}
		if ir.Env.String() != cr.Env.String() {
			t.Fatalf("%q: env divergence:\ninterpreter=%v\ncompiled=%v", src, ir.Env, cr.Env)
		}
		ic, cc := normConds(ir.Conds), normConds(cr.Conds)
		if len(ic) != len(cc) {
			t.Fatalf("%q: cond count divergence: interpreter=%v compiled=%v", src, ir.Conds, cr.Conds)
		}
		for i := range ic {
			if ic[i] != cc[i] {
				t.Fatalf("%q: cond %d divergence:\ninterpreter=%+v\ncompiled=%+v", src, i, ic[i], cc[i])
			}
		}
	})
}
