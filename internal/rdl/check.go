package rdl

import (
	"errors"
	"fmt"
	"sort"

	"oasis/internal/value"
)

// RoleTypesFunc resolves the parameter types of a role defined by another
// service (the gettypes operation of §4.3). rolefile may be empty for the
// service's default rolefile.
type RoleTypesFunc func(service, rolefile, role string) ([]value.Type, error)

// ErrInferSignature may be returned by a RoleTypesFunc to make the
// checker infer the foreign role's parameter types from usage, exactly
// as it does for local roles. Offline tools (cmd/rdlcheck) use it to
// analyze a rolefile without the issuing service's gettypes available;
// a live service should keep resolving signatures over the network.
var ErrInferSignature = errors.New("rdl: infer foreign signature from usage")

// Func describes a server-specific function usable in constraint
// expressions (§3.3.1), such as unixacl or creator. Args may be nil to
// skip argument checking.
type Func struct {
	Result value.Type
	Args   []value.Type
	Fn     func(args []value.Value) (value.Value, error)
}

// FuncTable maps function names to their definitions.
type FuncTable map[string]*Func

// Rolefile is a checked, executable rolefile: parse trees plus resolved
// role signatures. Rule order is preserved — it defines precedence.
type Rolefile struct {
	File  *File
	Types map[string][]value.Type // local role name -> parameter types
	Names map[string][]string     // local role name -> parameter names (best effort)
	// Foreign records the signatures of foreign role references seen
	// during checking, keyed "Service.Rolefile.Name" (empty components
	// kept). Resolver-supplied signatures are always present; inferred
	// ones (ErrInferSignature) are recorded best effort, so offline
	// tools can compile the rolefile without a live gettypes.
	Foreign map[string][]value.Type
}

// ForeignKey is the Foreign-map key for a role reference.
func ForeignKey(service, rolefile, name string) string {
	return service + "." + rolefile + "." + name
}

// Roles lists the locally defined role names in sorted order.
func (rf *Rolefile) Roles() []string {
	out := make([]string, 0, len(rf.Types))
	for r := range rf.Types {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// CheckError reports a type-inference failure.
type CheckError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *CheckError) Error() string { return fmt.Sprintf("rdl: line %d: %s", e.Line, e.Msg) }

// node is a union-find node carrying type information gathered so far.
type node struct {
	parent *node
	typ    *value.Type // concrete type, if known
	// literal shape constraints pending a concrete type
	strlike bool     // a string literal flowed here (string or object)
	sets    []string // set-literal member strings that must fit the universe
	line    int
}

func (n *node) find() *node {
	for n.parent != nil {
		if n.parent.parent != nil {
			n.parent = n.parent.parent
		}
		n = n.parent
	}
	return n
}

func unify(a, b *node) error {
	ra, rb := a.find(), b.find()
	if ra == rb {
		return nil
	}
	if ra.typ != nil && rb.typ != nil && !ra.typ.Equal(*rb.typ) {
		return fmt.Errorf("type mismatch: %v vs %v", *ra.typ, *rb.typ)
	}
	if ra.typ == nil {
		ra.typ = rb.typ
	}
	ra.strlike = ra.strlike || rb.strlike
	ra.sets = append(ra.sets, rb.sets...)
	rb.parent = ra
	return nil
}

func setConcrete(n *node, t value.Type) error {
	r := n.find()
	if r.typ != nil && !r.typ.Equal(t) {
		return fmt.Errorf("type mismatch: %v vs %v", *r.typ, t)
	}
	r.typ = &t
	return nil
}

// checker performs type inference over a parsed file.
type checker struct {
	file    *File
	foreign RoleTypesFunc
	funcs   FuncTable

	roleSlots map[string][]*node // local role -> per-parameter nodes
	roleNames map[string][]string
	imports   map[string]bool // imported object type names

	inferredSlots map[string][]*node // foreign role (qualified) -> nodes, under ErrInferSignature

	foreignSigs map[string][]value.Type // resolver-returned foreign signatures
}

// Check type-checks a parsed rolefile. foreign resolves signatures of
// roles issued by other services (may be nil if none are referenced);
// funcs declares the server-specific constraint functions in use.
// Declaration statements that only restate inferrable types are
// redundant, exactly as §3.2.1 promises.
func Check(f *File, foreign RoleTypesFunc, funcs FuncTable) (*Rolefile, error) {
	c := &checker{
		file:          f,
		foreign:       foreign,
		funcs:         funcs,
		roleSlots:     make(map[string][]*node),
		roleNames:     make(map[string][]string),
		imports:       make(map[string]bool),
		inferredSlots: make(map[string][]*node),
		foreignSigs:   make(map[string][]value.Type),
	}
	for _, im := range f.Imports {
		c.imports[im.Service+"."+im.Type] = true
	}
	if err := c.seedDecls(); err != nil {
		return nil, err
	}
	for _, r := range f.Rules {
		if err := c.rule(r); err != nil {
			return nil, err
		}
	}
	// Resolve all slots to concrete types.
	types := make(map[string][]value.Type, len(c.roleSlots))
	for role, slots := range c.roleSlots {
		ts := make([]value.Type, len(slots))
		for i, s := range slots {
			r := s.find()
			t, err := resolveNode(r)
			if err != nil {
				return nil, &CheckError{Line: r.line,
					Msg: fmt.Sprintf("parameter %d of role %s: %v", i+1, role, err)}
			}
			ts[i] = t
		}
		types[role] = ts
	}
	// Record inferred foreign signatures best effort: a slot that will
	// not resolve simply stays absent from the map.
	for key, slots := range c.inferredSlots {
		ts := make([]value.Type, len(slots))
		ok := true
		for i, s := range slots {
			t, err := resolveNode(s.find())
			if err != nil {
				ok = false
				break
			}
			ts[i] = t
		}
		if ok {
			c.foreignSigs[key] = ts
		}
	}
	return &Rolefile{File: f, Types: types, Names: c.roleNames, Foreign: c.foreignSigs}, nil
}

// resolveNode finalises a node's type, applying literal-shape defaults:
// a bare string literal defaults to String; set literals demand a
// declared or inferred universe.
func resolveNode(r *node) (value.Type, error) {
	if r.typ == nil {
		if len(r.sets) > 0 {
			return value.Type{}, fmt.Errorf("set literal with no inferrable universe; declare the parameter type")
		}
		if r.strlike {
			return value.StringType, nil
		}
		return value.Type{}, fmt.Errorf("cannot infer type; add a def statement")
	}
	t := *r.typ
	if len(r.sets) > 0 {
		if t.Kind != value.KindSet {
			return value.Type{}, fmt.Errorf("set literal used where %v expected", t)
		}
		for _, members := range r.sets {
			if _, err := value.Set(t.Universe, members); err != nil {
				return value.Type{}, err
			}
		}
	}
	if r.strlike && t.Kind != value.KindString && t.Kind != value.KindObject {
		return value.Type{}, fmt.Errorf("string literal used where %v expected", t)
	}
	return t, nil
}

func (c *checker) seedDecls() error {
	for _, d := range c.file.Decls {
		slots := c.slotsFor(d.Role, len(d.Params), d.Line)
		if slots == nil {
			return &CheckError{Line: d.Line,
				Msg: fmt.Sprintf("role %s declared with %d parameters but used with a different arity", d.Role, len(d.Params))}
		}
		c.roleNames[d.Role] = append([]string(nil), d.Params...)
		for i, p := range d.Params {
			if t, ok := d.Types[p]; ok {
				if err := setConcrete(slots[i], t); err != nil {
					return &CheckError{Line: d.Line, Msg: fmt.Sprintf("parameter %s of %s: %v", p, d.Role, err)}
				}
			}
		}
	}
	return nil
}

// slotsFor returns the per-parameter nodes for a local role, creating
// them on first use; nil signals an arity clash.
func (c *checker) slotsFor(role string, arity, line int) []*node {
	if s, ok := c.roleSlots[role]; ok {
		if len(s) != arity {
			return nil
		}
		return s
	}
	s := make([]*node, arity)
	for i := range s {
		s[i] = &node{line: line}
	}
	c.roleSlots[role] = s
	return s
}

func (c *checker) rule(r *Rule) error {
	vars := make(map[string]*node)
	varNode := func(name string, line int) *node {
		if n, ok := vars[name]; ok {
			return n
		}
		n := &node{line: line}
		vars[name] = n
		return n
	}

	bindRef := func(ref *RoleRef, defining bool) error {
		var slotTypes []value.Type
		var slots []*node
		if ref.Local() {
			slots = c.slotsFor(ref.Name, len(ref.Args), ref.Line)
			if slots == nil {
				return &CheckError{Line: ref.Line,
					Msg: fmt.Sprintf("role %s used with %d arguments, conflicting with earlier use", ref.Name, len(ref.Args))}
			}
			if defining {
				// Record parameter names from head variables, best effort.
				if _, ok := c.roleNames[ref.Name]; !ok {
					names := make([]string, len(ref.Args))
					for i, a := range ref.Args {
						names[i] = a.Var
					}
					c.roleNames[ref.Name] = names
				}
			}
		} else {
			if c.foreign == nil {
				return &CheckError{Line: ref.Line,
					Msg: fmt.Sprintf("no resolver for foreign role %s", ref.Qualified())}
			}
			ts, err := c.foreign(ref.Service, ref.Rolefile, ref.Name)
			switch {
			case errors.Is(err, ErrInferSignature):
				// Infer the foreign signature from usage: all
				// references to the same qualified role share slots.
				key := ref.Service + "." + ref.Rolefile + "." + ref.Name
				slots = c.inferredSlots[key]
				if slots == nil {
					slots = make([]*node, len(ref.Args))
					for i := range slots {
						slots[i] = &node{line: ref.Line}
					}
					c.inferredSlots[key] = slots
				}
				if len(slots) != len(ref.Args) {
					return &CheckError{Line: ref.Line,
						Msg: fmt.Sprintf("%s used with %d arguments, conflicting with earlier use", ref.Qualified(), len(ref.Args))}
				}
			case err != nil:
				return &CheckError{Line: ref.Line,
					Msg: fmt.Sprintf("resolving %s: %v", ref.Qualified(), err)}
			default:
				if len(ts) != len(ref.Args) {
					return &CheckError{Line: ref.Line,
						Msg: fmt.Sprintf("%s takes %d arguments, got %d", ref.Qualified(), len(ts), len(ref.Args))}
				}
				slotTypes = ts
				c.foreignSigs[ForeignKey(ref.Service, ref.Rolefile, ref.Name)] = ts
			}
		}
		for i, a := range ref.Args {
			var n *node
			if slots != nil {
				n = slots[i]
			} else {
				n = &node{line: ref.Line}
				if err := setConcrete(n, slotTypes[i]); err != nil {
					return &CheckError{Line: ref.Line, Msg: err.Error()}
				}
			}
			if err := c.bindTerm(a, n, varNode); err != nil {
				return err
			}
		}
		return nil
	}

	if err := bindRef(&r.Head, true); err != nil {
		return err
	}
	for i := range r.Candidates {
		if err := bindRef(&r.Candidates[i], false); err != nil {
			return err
		}
	}
	if r.Elector != nil {
		if err := bindRef(r.Elector, false); err != nil {
			return err
		}
	}
	if r.Revoker != nil {
		if err := bindRef(r.Revoker, false); err != nil {
			return err
		}
	}
	if r.Constraint != nil {
		if err := c.expr(r.Constraint, varNode); err != nil {
			return err
		}
	}
	return nil
}

// bindTerm connects a term to a type node.
func (c *checker) bindTerm(t Term, n *node, varNode func(string, int) *node) error {
	switch {
	case t.Var != "":
		if err := unify(n, varNode(t.Var, t.Line)); err != nil {
			return &CheckError{Line: t.Line, Msg: fmt.Sprintf("variable %s: %v", t.Var, err)}
		}
	case t.IsInt:
		if err := setConcrete(n, value.IntType); err != nil {
			return &CheckError{Line: t.Line, Msg: err.Error()}
		}
	case t.IsStr:
		n.find().strlike = true
	case t.IsSet:
		r := n.find()
		r.sets = append(r.sets, t.SetLit)
	}
	return nil
}

// expr walks a constraint expression collecting type constraints.
func (c *checker) expr(e Expr, varNode func(string, int) *node) error {
	switch x := e.(type) {
	case AndExpr:
		if err := c.expr(x.L, varNode); err != nil {
			return err
		}
		return c.expr(x.R, varNode)
	case OrExpr:
		if err := c.expr(x.L, varNode); err != nil {
			return err
		}
		return c.expr(x.R, varNode)
	case NotExpr:
		return c.expr(x.E, varNode)
	case StarExpr:
		return c.expr(x.E, varNode)
	case InExpr:
		// Group members are identified by string or object values; no
		// further constraint is imposed on the member, but a call on the
		// left is checked like any other call.
		if x.Call != nil {
			_, err := c.operand(Operand{Call: x.Call}, varNode)
			return err
		}
		return nil
	case CmpExpr:
		ln, err := c.operand(x.L, varNode)
		if err != nil {
			return err
		}
		rn, err := c.operand(x.R, varNode)
		if err != nil {
			return err
		}
		if err := unify(ln, rn); err != nil {
			return &CheckError{Msg: fmt.Sprintf("comparison operands: %v", err)}
		}
		if x.Op == CmpLt || x.Op == CmpGt {
			// Strict order is only defined for integers and strings;
			// leave sets to <= (subset). No constraint needed beyond
			// operand agreement.
			return nil
		}
		return nil
	case CallExpr:
		_, err := c.operand(Operand{Call: x.Call}, varNode)
		return err
	default:
		return fmt.Errorf("rdl: unknown expression %T", e)
	}
}

// operand returns the type node of an operand.
func (c *checker) operand(o Operand, varNode func(string, int) *node) (*node, error) {
	if o.Call != nil {
		f, ok := c.funcs[o.Call.Fn]
		if !ok {
			return nil, &CheckError{Line: o.Call.Line,
				Msg: fmt.Sprintf("unknown function %s (provide it in the service's FuncTable)", o.Call.Fn)}
		}
		for i, a := range o.Call.Args {
			an, err := c.operand(a, varNode)
			if err != nil {
				return nil, err
			}
			if f.Args != nil {
				if i >= len(f.Args) {
					return nil, &CheckError{Line: o.Call.Line,
						Msg: fmt.Sprintf("%s takes %d arguments", o.Call.Fn, len(f.Args))}
				}
				if err := setConcrete(an, f.Args[i]); err != nil {
					return nil, &CheckError{Line: o.Call.Line,
						Msg: fmt.Sprintf("argument %d of %s: %v", i+1, o.Call.Fn, err)}
				}
			}
		}
		if f.Args != nil && len(o.Call.Args) != len(f.Args) {
			return nil, &CheckError{Line: o.Call.Line,
				Msg: fmt.Sprintf("%s takes %d arguments, got %d", o.Call.Fn, len(f.Args), len(o.Call.Args))}
		}
		n := &node{line: o.Call.Line}
		if err := setConcrete(n, f.Result); err != nil {
			return nil, err
		}
		return n, nil
	}
	t := *o.Term
	n := &node{line: t.Line}
	if err := c.bindTerm(t, n, varNode); err != nil {
		return nil, err
	}
	return n, nil
}

// LiteralValue coerces a parsed literal term to the expected type. It is
// used at entry time to turn rule literals into concrete values.
func LiteralValue(t Term, expect value.Type) (value.Value, error) {
	switch {
	case t.IsInt:
		if expect.Kind != value.KindInt {
			return value.Value{}, fmt.Errorf("rdl: integer literal where %v expected", expect)
		}
		return value.Int(t.IntLit), nil
	case t.IsStr:
		switch expect.Kind {
		case value.KindString:
			return value.Str(t.StrLit), nil
		case value.KindObject:
			return value.Object(expect.Name, t.StrLit), nil
		default:
			return value.Value{}, fmt.Errorf("rdl: string literal where %v expected", expect)
		}
	case t.IsSet:
		if expect.Kind != value.KindSet {
			return value.Value{}, fmt.Errorf("rdl: set literal where %v expected", expect)
		}
		return value.Set(expect.Universe, t.SetLit)
	default:
		return value.Value{}, fmt.Errorf("rdl: term %v is not a literal", t)
	}
}
