package analyze

import (
	"reflect"
	"strings"
	"testing"
)

const golfSrc = `
def Member(p) p: Login.userid
Member(p)  <- Login.LoggedOn(p, h)* : (p in founders)*
Rec(p, m1) <- Login.LoggedOn(p, h)* <| Member(m1)
Member(p)  <- Rec(p, m1)* <| Member(m2) : m1 != m2
`

const loginClaimSrc = `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`

// loginDeclSrc declares LoggedOn without any rule, so tests can model a
// closed login service: only scenario credentials produce logins.
const loginDeclSrc = `
def LoggedOn(u, h) u: Login.userid h: Login.host
`

func reachOn(t *testing.T, files map[string]string, scnSrc string) *ReachReport {
	t.Helper()
	scn, err := ParseScenario("test.scn", scnSrc)
	if err != nil {
		t.Fatal(err)
	}
	var inputs []Input
	for _, svc := range []string{"Golf", "Login", "Conf", "Main"} {
		if src, ok := files[svc]; ok {
			inputs = append(inputs, Input{Service: svc, File: svc + ".rdl", RF: checkFile(t, src)})
		}
	}
	return Reach(inputs, scn)
}

func factOf(rep *ReachReport, principal, instance string) *Fact {
	for _, f := range rep.Facts {
		if f.Principal == principal && f.Instance() == instance {
			return f
		}
	}
	return nil
}

func TestScenarioParse(t *testing.T) {
	scn, err := ParseScenario("s.scn", `
# comment
scenario demo
principal mallory
host carol bastion
credential carol Pw.Passwd("carol", 7, {rw}, *)
member bastion Login.secure
foreign Pw.Passwd(Login.userid, integer, {rwx}, string)
expect carol Login.Login(3, *, *)
deny mallory Login.Login(3, *, *)
possible mallory Login.Login
`)
	if err != nil {
		t.Fatal(err)
	}
	if scn.Name != "demo" {
		t.Errorf("name = %q", scn.Name)
	}
	if got := scn.Principals; !reflect.DeepEqual(got, []string{"mallory", "carol"}) {
		t.Errorf("principals = %v", got)
	}
	c := scn.Credentials[0]
	if c.Service != "Pw" || c.Role != "Passwd" {
		t.Errorf("credential role = %s.%s", c.Service, c.Role)
	}
	want := []string{"carol", "7", "{rw}", "*"}
	for i, a := range c.Args {
		if a.String() != want[i] {
			t.Errorf("arg %d = %s, want %s", i, a, want[i])
		}
	}
	if !scn.IsMember("bastion", "Login.secure") || scn.IsMember("cafe", "Login.secure") {
		t.Error("closed-world membership wrong")
	}
	if len(scn.Foreign) != 1 || len(scn.Foreign[0].Types) != 4 {
		t.Errorf("foreign = %+v", scn.Foreign)
	}
	if len(scn.Asserts) != 3 || scn.Asserts[0].Kind != AssertExpect || scn.Asserts[1].Kind != AssertDeny {
		t.Errorf("asserts = %+v", scn.Asserts)
	}
	if scn.Asserts[2].HasArgs {
		t.Error("argless assert should not have args")
	}
	if !scn.Granted("carol") || scn.Granted("mallory") {
		t.Error("Granted wrong")
	}
}

func TestScenarioParseErrors(t *testing.T) {
	for _, src := range []string{
		"frobnicate x y",
		"credential alice Member", // not service-qualified
		"member alice staff",      // group not qualified
		"credential alice Golf.Member(",
		"host carol",
	} {
		if _, err := ParseScenario("bad.scn", src); err == nil {
			t.Errorf("no error for %q", src)
		} else if !strings.Contains(err.Error(), "bad.scn:1:") {
			t.Errorf("error %v lacks file:line", err)
		}
	}
}

// TestQuorumReachable is the golf club with two founders: a non-founder
// enters Member through a recommendation by one founder countersigned
// by the other, and the witness chain records the whole derivation.
func TestQuorumReachable(t *testing.T) {
	rep := reachOn(t, map[string]string{"Golf": golfSrc, "Login": loginDeclSrc}, `
credential arnold Login.LoggedOn("arnold", "club")
credential gary   Login.LoggedOn("gary", "club")
credential jack   Login.LoggedOn("jack", "club")
member arnold Golf.founders
member gary   Golf.founders
expect jack Golf.Member("jack")
`)
	for _, res := range rep.Asserts {
		if !res.OK {
			t.Errorf("assert failed: %s", res.Detail)
		}
	}
	f := factOf(rep, "jack", "Golf.Member(jack)")
	if f == nil || f.Possible {
		t.Fatalf("jack's membership missing or not definite: %+v", f)
	}
	wit := WitnessString(f)
	for _, needle := range []string{"Rec(p,m1)", "elected by", "credential granted by scenario"} {
		if !strings.Contains(wit, needle) {
			t.Errorf("witness lacks %q:\n%s", needle, wit)
		}
	}
	if !f.Evictable {
		t.Error("quorum membership should be evictable (starred premises)")
	}
}

// TestMutualRecursionNoBase drops the founders base rule: Member and
// Rec require each other, so with no base case the fixpoint must
// converge to nothing rather than loop.
func TestMutualRecursionNoBase(t *testing.T) {
	noBase := `
def Member(p) p: Login.userid
Rec(p, m1) <- Login.LoggedOn(p, h)* <| Member(m1)
Member(p)  <- Rec(p, m1)* <| Member(m2) : m1 != m2
`
	rep := reachOn(t, map[string]string{"Golf": noBase, "Login": loginDeclSrc}, `
credential jack Login.LoggedOn("jack", "club")
deny jack Golf.Member
deny jack Golf.Rec
`)
	for _, res := range rep.Asserts {
		if !res.OK {
			t.Errorf("assert failed: %s", res.Detail)
		}
	}
}

// TestSingleFounderQuorumFails: with one founder the quorum constraint
// m1 != m2 can never pick two distinct members, so a non-founder stays
// out — the constraint folder must decide the inequality concretely.
func TestSingleFounderQuorumFails(t *testing.T) {
	rep := reachOn(t, map[string]string{"Golf": golfSrc, "Login": loginDeclSrc}, `
credential arnold Login.LoggedOn("arnold", "club")
credential jack   Login.LoggedOn("jack", "club")
member arnold Golf.founders
expect arnold Golf.Member("arnold")
deny jack Golf.Member("jack")
`)
	for _, res := range rep.Asserts {
		if !res.OK {
			t.Errorf("assert failed: %s", res.Detail)
		}
	}
}

// TestUnknownConstraintPossible: a group test over an unknown value and
// a foreign-service premise must both downgrade to "possible", never
// block or prove.
func TestUnknownConstraintPossible(t *testing.T) {
	src := `
def Vip(u) u: Login.userid
def Remote(u) u: Login.userid
Vip(u)   <- Login.LoggedOn(u, h)* : u in vips
Remote(u) <- Ext.Token(u)*
`
	rep := reachOn(t, map[string]string{"Conf": src, "Login": loginClaimSrc}, `
credential alice Login.LoggedOn("alice", "conf")
member bob Conf.vips
expect  bob Conf.Vip   # fails: the claimed login's userid is unknown
possible alice Conf.Remote
possible alice Conf.Vip("alice")  # loose: Vip(*) covers it conservatively
`)
	// alice is not a vip: her concrete credential decides the group test
	// false. The claimed unknown login leaves Vip(*) merely possible.
	if f := factOf(rep, "alice", "Conf.Vip(alice)"); f != nil {
		t.Errorf("alice got Vip(alice): %+v", f)
	}
	f := factOf(rep, "alice", "Conf.Vip(*)")
	if f == nil || !f.Possible {
		t.Fatalf("Vip(*) should be possible for alice: %+v", f)
	}
	if f.Wit.Note == "" || !strings.Contains(f.Wit.Note, "vips") {
		t.Errorf("possible verdict lacks explaining note: %+v", f.Wit)
	}
	// The foreign premise makes Remote possible, with an assumed node.
	fr := factOf(rep, "alice", "Conf.Remote(*)")
	if fr == nil || !fr.Possible {
		t.Fatalf("Remote(*) should be possible: %+v", fr)
	}
	if !strings.Contains(WitnessString(fr), "assumed") {
		t.Errorf("witness lacks assumed node:\n%s", WitnessString(fr))
	}
	// bob holds no login credential; the claim gives an unknown userid,
	// so even a listed vip cannot be *proven* in.
	for _, res := range rep.Asserts {
		switch res.Assert.Kind {
		case AssertExpect:
			if res.OK {
				t.Errorf("expect bob Conf.Vip should fail (unknown userid): %s", res.Detail)
			}
		default:
			if !res.OK {
				t.Errorf("assert failed: %s", res.Detail)
			}
		}
	}
	if n := len(findCode(rep.Findings, CodeAssertFailed)); n != 1 {
		t.Errorf("want 1 R010, got %d", n)
	}
}

// TestWitnessMinimality: arnold is a founder, so his membership must be
// witnessed by the direct founders rule even though the quorum rule
// also derives it later.
func TestWitnessMinimality(t *testing.T) {
	rep := reachOn(t, map[string]string{"Golf": golfSrc, "Login": loginDeclSrc}, `
credential arnold Login.LoggedOn("arnold", "club")
credential gary   Login.LoggedOn("gary", "club")
member arnold Golf.founders
member gary   Golf.founders
`)
	f := factOf(rep, "arnold", "Golf.Member(arnold)")
	if f == nil || f.Possible {
		t.Fatalf("arnold's membership missing: %+v", f)
	}
	w := f.Wit
	if w.Kind != DerivRule || w.Line != 3 || len(w.Prems) != 1 {
		t.Fatalf("witness not minimal: %+v", w)
	}
	if w.Prems[0].Wit.Kind != DerivCredential {
		t.Errorf("premise should be the scenario credential, got %v", w.Prems[0].Wit.Kind)
	}
}

// TestOpenAccessFinding: an unchecked claim is definitely reachable by
// the synthesized credential-less principal — R008.
func TestOpenAccessFinding(t *testing.T) {
	rep := reachOn(t, map[string]string{"Login": loginClaimSrc}, `
principal someone
`)
	fs := findCode(rep.Findings, CodeOpenAccess)
	if len(fs) != 1 || fs[0].Role != "Login.LoggedOn" || fs[0].Severity != Warning {
		t.Fatalf("R008 = %+v", fs)
	}
	f := factOf(rep, AnyonePrincipal, "Login.LoggedOn(*, *)")
	if f == nil || f.Possible || !f.Evictable {
		t.Fatalf("anyone's claim fact wrong: %+v", f)
	}
}

// TestUnrevocableChainFinding: a rule with only unstarred premises
// derives a certificate no revocation can ever evict — R009 — while
// the same rule with a starred premise stays quiet.
func TestUnrevocableChainFinding(t *testing.T) {
	scn := `
credential alice Login.LoggedOn("alice", "conf")
`
	rep := reachOn(t, map[string]string{
		"Conf":  "Admin(u) <- Login.LoggedOn(u, h)\n",
		"Login": loginDeclSrc,
	}, scn)
	fs := findCode(rep.Findings, CodeUnrevocableChain)
	if len(fs) != 1 || fs[0].Role != "Conf.Admin" {
		t.Fatalf("R009 = %+v", fs)
	}
	rep = reachOn(t, map[string]string{
		"Conf":  "Admin(u) <- Login.LoggedOn(u, h)*\n",
		"Login": loginDeclSrc,
	}, scn)
	if fs := findCode(rep.Findings, CodeUnrevocableChain); len(fs) != 0 {
		t.Fatalf("starred premise still reported R009: %+v", fs)
	}
}

// TestAssertFailures: every assertion kind fails with an R010 at the
// assertion's scenario line.
func TestAssertFailures(t *testing.T) {
	rep := reachOn(t, map[string]string{"Login": loginClaimSrc}, `credential alice Login.LoggedOn("alice", "conf")
expect alice Login.Missing
deny alice Login.LoggedOn
possible alice Login.Missing
`)
	fs := findCode(rep.Findings, CodeAssertFailed)
	if len(fs) != 3 {
		t.Fatalf("want 3 R010, got %+v", fs)
	}
	for i, want := range []int{2, 3, 4} {
		if fs[i].Line != want || fs[i].Severity != Error || fs[i].File != "test.scn" {
			t.Errorf("R010[%d] = %+v", i, fs[i])
		}
	}
}

// TestHostBinding: @host folds to the scenario's per-principal host, so
// host-gated levels decide concretely.
func TestHostBinding(t *testing.T) {
	src := `
def Login(l, u, h) l: integer u: Login.userid h: string
Login(2, u, @host) <- Login.LoggedOn(u, h2)* : @host in secure
Login(1, u, @host) <- Login.LoggedOn(u, h2)*
`
	rep := reachOn(t, map[string]string{"Main": src, "Login": loginDeclSrc}, `
credential carol Login.LoggedOn("carol", "x")
host carol bastion
member bastion Main.secure
credential dave Login.LoggedOn("dave", "x")
host dave cafe
expect carol Main.Login(2, "carol", "bastion")
deny dave Main.Login(2, *, *)
expect dave Main.Login(1, "dave", "cafe")
`)
	for _, res := range rep.Asserts {
		if !res.OK {
			t.Errorf("assert failed: %s", res.Detail)
		}
	}
}

// TestReachDeterministic runs the same reachability twice and demands
// byte-identical reports — map iteration anywhere in the engine would
// break this.
func TestReachDeterministic(t *testing.T) {
	files := map[string]string{"Golf": golfSrc, "Login": loginClaimSrc}
	scn := `
credential arnold Login.LoggedOn("arnold", "club")
credential gary   Login.LoggedOn("gary", "club")
credential jack   Login.LoggedOn("jack", "club")
member arnold Golf.founders
member gary   Golf.founders
`
	render := func() string {
		rep := reachOn(t, files, scn)
		var b strings.Builder
		for _, f := range rep.Facts {
			WriteWitness(&b, f)
		}
		for _, f := range rep.Findings {
			b.WriteString(f.String() + "\n")
		}
		return b.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("reach output not deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

// TestAnalyzeDeterministic is the findings-order regression test: the
// analyzer must return the identical slice on every run.
func TestAnalyzeDeterministic(t *testing.T) {
	inputs := []Input{
		{Service: "Golf", File: "Golf.rdl", RF: checkFile(t, golfSrc)},
		{Service: "Login", File: "Login.rdl", RF: checkFile(t, loginClaimSrc)},
		{Service: "Conf", File: "Conf.rdl", RF: checkFile(t, `
def Ghost(u) u: Login.userid
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
Ghost(u)  <- Conf.Nothing(u)
`)},
	}
	first := Analyze(inputs)
	for i := 0; i < 10; i++ {
		if again := Analyze(inputs); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs:\nfirst: %v\nagain: %v", i, first, again)
		}
	}
	if len(first) == 0 {
		t.Fatal("fixture produced no findings; determinism test is vacuous")
	}
}
