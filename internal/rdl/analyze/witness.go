package analyze

import (
	"fmt"
	"io"
	"strings"
)

// Witness rendering: every positive reachability answer carries the
// derivation chain that gets the principal into the role, printable as
// an indented tree (WriteWitness) and as a nested JSON document
// (WitnessJSON). Derivations reference premise facts directly, so a
// shared premise prints once per occurrence; a visited set guards
// against upgrade-induced sharing loops.

// WriteWitness prints the fact's derivation tree, indented two spaces
// per level:
//
//	arnold reaches Golf.Member(arnold)
//	  by Golf.rdl:2: Member(p) <- Login.LoggedOn(p,h)* : (p in founders)*
//	    arnold holds Login.LoggedOn(arnold, clubhouse)  [credential granted by scenario]
func WriteWitness(w io.Writer, f *Fact) {
	writeWitness(w, f, 0, make(map[*Fact]bool))
}

func writeWitness(w io.Writer, f *Fact, depth int, seen map[*Fact]bool) {
	pad := strings.Repeat("  ", depth)
	verb := "reaches"
	if f.Possible {
		verb = "possibly reaches"
	}
	if depth > 0 {
		verb = "holds"
		if f.Possible {
			verb = "possibly holds"
		}
	}
	fmt.Fprintf(w, "%s%s %s %s\n", pad, f.Principal, verb, f.Instance())
	if seen[f] {
		fmt.Fprintf(w, "%s  (derivation shown above)\n", pad)
		return
	}
	seen[f] = true
	defer delete(seen, f)
	d := f.Wit
	if d == nil {
		return
	}
	switch d.Kind {
	case DerivCredential:
		fmt.Fprintf(w, "%s  credential granted by scenario (%s:%d)\n", pad, d.File, d.Line)
	case DerivClaim:
		fmt.Fprintf(w, "%s  by unchecked claim %s:%d: %s\n", pad, d.File, d.Line, d.Rule)
	case DerivAssumed:
		fmt.Fprintf(w, "%s  assumed: %s\n", pad, d.Note)
	case DerivRule:
		fmt.Fprintf(w, "%s  by %s:%d: %s\n", pad, d.File, d.Line, d.Rule)
		if d.Elector != "" {
			fmt.Fprintf(w, "%s  elected by %s\n", pad, d.Elector)
		}
	}
	if d.Note != "" && d.Kind != DerivAssumed {
		fmt.Fprintf(w, "%s  possible only: %s\n", pad, d.Note)
	}
	for _, prem := range d.Prems {
		writeWitness(w, prem, depth+1, seen)
	}
}

// WitnessString renders the tree to a string.
func WitnessString(f *Fact) string {
	var b strings.Builder
	WriteWitness(&b, f)
	return b.String()
}

// FactJSON is the JSON form of a fact with its witness, emitted under
// "reach" in rdlcheck -json output.
type FactJSON struct {
	Principal string       `json:"principal"`
	Role      string       `json:"role"`
	Args      []AVal       `json:"args,omitempty"`
	Certainty string       `json:"certainty"`
	Evictable bool         `json:"evictable"`
	Witness   *WitnessJSON `json:"witness,omitempty"`
}

// WitnessJSON is one node of the JSON derivation tree.
type WitnessJSON struct {
	Kind     string      `json:"kind"`
	File     string      `json:"file,omitempty"`
	Line     int         `json:"line,omitempty"`
	Rule     string      `json:"rule,omitempty"`
	Elector  string      `json:"elector,omitempty"`
	Note     string      `json:"note,omitempty"`
	Premises []*FactJSON `json:"premises,omitempty"`
	Cycle    bool        `json:"cycle,omitempty"` // true when truncated at a repeated fact
}

// FactToJSON converts a fact (and its full derivation) to the JSON
// document form.
func FactToJSON(f *Fact) *FactJSON {
	return factToJSON(f, make(map[*Fact]bool))
}

func factToJSON(f *Fact, seen map[*Fact]bool) *FactJSON {
	out := &FactJSON{
		Principal: f.Principal,
		Role:      f.Role,
		Args:      f.Args,
		Certainty: f.Certainty(),
		Evictable: f.Evictable,
	}
	if f.Wit == nil {
		return out
	}
	w := &WitnessJSON{
		Kind:    f.Wit.Kind.String(),
		File:    f.Wit.File,
		Line:    f.Wit.Line,
		Rule:    f.Wit.Rule,
		Elector: f.Wit.Elector,
		Note:    f.Wit.Note,
	}
	out.Witness = w
	if seen[f] {
		w.Cycle = true
		w.Premises = nil
		return out
	}
	seen[f] = true
	defer delete(seen, f)
	for _, prem := range f.Wit.Prems {
		w.Premises = append(w.Premises, factToJSON(prem, seen))
	}
	return out
}
