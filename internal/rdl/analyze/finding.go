package analyze

import (
	"fmt"
	"sort"
)

// Severity grades a finding. Error-level findings break the paper's
// security argument (an issued certificate the service cannot revoke,
// a premise that can never be satisfied); warnings are soundness smells
// (dead or unreachable policy); info findings document structure worth
// a second look (dependency cycles, inert stars).
type Severity int

// Severity levels, ordered from least to most severe.
const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("analyze: severity must be a JSON string, got %s", b)
	}
	v, err := ParseSeverity(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity parses a severity name.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info":
		return Info, nil
	case "warning", "warn":
		return Warning, nil
	case "error":
		return Error, nil
	default:
		return Info, fmt.Errorf("analyze: unknown severity %q (want info, warning or error)", s)
	}
}

// Finding codes. Each is documented in docs/RDL.md.
const (
	// CodeUnrevocable: a rule with premises none of which is a
	// membership rule and no |> revoker — certificates issued via it
	// cannot be selectively revoked (§4.2–§4.4).
	CodeUnrevocable = "R001"
	// CodeUndefined: a role of a loaded service is referenced but no
	// rule or declaration defines it.
	CodeUndefined = "R002"
	// CodeUnreachable: a defined role with no satisfiable acquisition
	// path from initial credentials.
	CodeUnreachable = "R003"
	// CodeDeadRule: a rule that can never determine an issued
	// certificate (duplicate, or shadowed by an earlier catch-all).
	CodeDeadRule = "R004"
	// CodeUnsatisfiable: a rule whose constraint is statically false.
	CodeUnsatisfiable = "R005"
	// CodeCycle: roles that depend on each other cyclically
	// (delegation/use-condition cycle; legitimate quorum patterns
	// still need a base case to be reachable).
	CodeCycle = "R006"
	// CodeStaticStar: a membership star on a condition with no group
	// test — captured once at entry, it can never be falsified and so
	// provides no revocation path (§3.2.3).
	CodeStaticStar = "R007"
	// CodeOpenAccess: scenario reachability (rdlcheck -reach) proved a
	// role definitely reachable by a principal the scenario never
	// granted any credential — open-access escalation.
	CodeOpenAccess = "R008"
	// CodeUnrevocableChain: a role instance is reachable through a
	// derivation chain containing no revocable credential, so §5
	// revocation can never evict the holder.
	CodeUnrevocableChain = "R009"
	// CodeAssertFailed: a scenario expect/possible/deny assertion
	// failed against the computed reachability fixpoint.
	CodeAssertFailed = "R010"
)

// Finding is one typed analyzer diagnostic.
type Finding struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Service  string   `json:"service"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Role     string   `json:"role,omitempty"`
	Message  string   `json:"message"`
}

// String renders the finding in file:line: severity code: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s %s: %s", f.File, f.Line, f.Severity, f.Code, f.Message)
}

// sortFindings orders findings by (file, line, code, role, message) so
// analyzer output and goldens are stable regardless of map-iteration
// order inside the checks.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Code != fs[j].Code {
			return fs[i].Code < fs[j].Code
		}
		if fs[i].Role != fs[j].Role {
			return fs[i].Role < fs[j].Role
		}
		return fs[i].Message < fs[j].Message
	})
}

// Sort orders findings by (file, line, code, role, message); callers
// merging findings from several analyses use it to restore the
// canonical order.
func Sort(fs []Finding) { sortFindings(fs) }

// Max returns the highest severity present, or -1 if none.
func Max(fs []Finding) Severity {
	max := Severity(-1)
	for _, f := range fs {
		if f.Severity > max {
			max = f.Severity
		}
	}
	return max
}

// Filter returns the findings at or above the given severity.
func Filter(fs []Finding, min Severity) []Finding {
	out := make([]Finding, 0, len(fs))
	for _, f := range fs {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}
