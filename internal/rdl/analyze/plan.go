package analyze

import (
	"fmt"
	"io"

	"oasis/internal/rdl"
)

// DumpPlans compiles every input rolefile to its execution plan — the
// form the entry engine actually runs (internal/rdl/compile.go) — and
// writes the disassembly. Signatures of foreign references resolve from
// what checking recorded (Rolefile.Foreign), so the dump works offline:
// a literal argument whose foreign signature was unresolvable shows as
// !unresolved, meaning that slot can never match at entry time.
func DumpPlans(w io.Writer, inputs []Input) error {
	for i := range inputs {
		in := &inputs[i]
		prog, err := rdl.Compile(in.RF, nil)
		if err != nil {
			return fmt.Errorf("%s: compiling plan: %v", in.File, err)
		}
		fmt.Fprintf(w, "== %s (service %s) ==\n", in.File, in.Service)
		if _, err := io.WriteString(w, prog.Disassemble()); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
