package analyze

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"oasis/internal/rdl"
)

// This file is the scenario reachability engine behind `rdlcheck
// -reach`: given the policies of a set of services and a Scenario (the
// initial credential assignment), it computes the least fixpoint of the
// roles every principal can ever acquire across the federation —
// delegation and group membership included — and attaches to each
// acquirable role instance a witness derivation. The engine answers the
// administrator's question the structural checks R001–R007 cannot:
// "can principal P ever reach role R?".
//
// The abstract domain is deliberately small. Argument values are either
// concrete literals drawn from the scenario and the rule text, or the
// unknown value ⊤; rule premises are resolved by unification against
// already-derived facts; constraints fold through a three-valued
// evaluator that decides group tests against the scenario's closed
// world and leaves everything else unknown. Unknown never blocks a
// derivation — it downgrades it from "reachable" to "possible" — so the
// result is a sound over-approximation of runtime entry: everything the
// real engine admits appears here (the differential test in
// cmd/rdlcheck holds the repo to that), while a role absent from the
// fixpoint is provably unreachable.

// AnyonePrincipal is the synthesized credential-less principal: it
// models an arbitrary outsider holding nothing, so anything it can
// definitely reach is open access (R008).
const AnyonePrincipal = "<anyone>"

// AVal is an abstract argument value: a concrete literal in canonical
// rendering (integers in decimal, strings and object ids raw, set
// literals sorted in braces) or the unknown value ⊤, written "*".
type AVal struct {
	top bool
	s   string
}

// Top returns the unknown value ⊤.
func Top() AVal { return AVal{top: true} }

// Lit returns the literal abstract value with the given canonical
// rendering.
func Lit(s string) AVal { return AVal{s: s} }

// IsTop reports whether the value is ⊤.
func (v AVal) IsTop() bool { return v.top }

// Literal returns the canonical literal rendering; only meaningful when
// the value is not ⊤.
func (v AVal) Literal() string { return v.s }

// String renders the value: "*" for ⊤, the literal otherwise.
func (v AVal) String() string {
	if v.top {
		return "*"
	}
	return v.s
}

// MarshalJSON encodes the value as its rendering.
func (v AVal) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(v.String())), nil
}

// UnmarshalJSON decodes the rendering produced by MarshalJSON: "*" is
// ⊤, anything else the literal.
func (v *AVal) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	if s == "*" {
		*v = Top()
	} else {
		*v = Lit(s)
	}
	return nil
}

// DerivKind classifies one step of a witness derivation.
type DerivKind int

// Derivation kinds: an initial credential from the scenario, an
// unchecked claim (empty right-hand side, §3.4.3), an entry rule
// application, or an assumed premise on a service outside the analysis.
const (
	DerivCredential DerivKind = iota
	DerivClaim
	DerivRule
	DerivAssumed
)

// String names the derivation kind.
func (k DerivKind) String() string {
	switch k {
	case DerivCredential:
		return "credential"
	case DerivClaim:
		return "claim"
	case DerivRule:
		return "rule"
	default:
		return "assumed"
	}
}

// Derivation explains how a fact was derived: the rule applied (with
// its source position), the premise facts matched — candidate facts of
// the principal itself, plus the elector's fact when the rule is an
// election — and any note on constraint folding.
type Derivation struct {
	Kind    DerivKind
	File    string
	Line    int
	Rule    string  // rendered rule, for DerivClaim/DerivRule
	Elector string  // principal whose fact satisfied the election
	Prems   []*Fact // matched premise facts, candidates first
	Note    string  // why the verdict is only "possible", when it is
}

// Fact is one element of the fixpoint: Principal can acquire the role
// instance Role(Args). Possible marks a conservative verdict (some
// premise or constraint could not be decided); Evictable marks that at
// least one derivation carries a revocable credential, so §5 revocation
// can evict the holder (R009 fires on its absence).
type Fact struct {
	Principal string
	Role      string // qualified "Service.Role"
	Args      []AVal
	Possible  bool
	Evictable bool
	Wit       *Derivation
}

// Instance renders the fact's role instance, e.g. "Golf.Member(arnold)".
func (f *Fact) Instance() string {
	if len(f.Args) == 0 {
		return f.Role
	}
	parts := make([]string, len(f.Args))
	for i, v := range f.Args {
		parts[i] = v.String()
	}
	return f.Role + "(" + strings.Join(parts, ", ") + ")"
}

// Certainty names the verdict: "reachable" or "possible".
func (f *Fact) Certainty() string {
	if f.Possible {
		return "possible"
	}
	return "reachable"
}

// AssertResult is the outcome of one scenario assertion.
type AssertResult struct {
	Assert  ScnAssert
	OK      bool
	Matched *Fact  // witness for expect/possible; offending fact for a failed deny
	Detail  string // human explanation of the verdict
}

// ReachReport is the result of Reach: the full fixpoint of facts
// (sorted by principal, role, args), the assertion outcomes, and the
// R008–R010 findings.
type ReachReport struct {
	Scenario *Scenario
	Facts    []*Fact
	Asserts  []AssertResult
	Findings []Finding
}

// FactsOf returns the facts of one principal, in report order.
func (r *ReachReport) FactsOf(principal string) []*Fact {
	var out []*Fact
	for _, f := range r.Facts {
		if f.Principal == principal {
			out = append(out, f)
		}
	}
	return out
}

// Reach computes the reachability fixpoint of the scenario over the
// loaded policies and evaluates the scenario's assertions. The inputs
// must already have passed rdl checking.
func Reach(inputs []Input, scn *Scenario) *ReachReport {
	e := &reachEngine{
		inputs:  inputs,
		scn:     scn,
		loaded:  make(map[string]bool),
		defined: make(map[string]*defSite),
		byPR:    make(map[string][]*Fact),
		memo:    make(map[string]*Fact),
	}
	for i := range inputs {
		e.loaded[inputs[i].Service] = true
	}
	for i := range inputs {
		in := &inputs[i]
		for _, d := range in.RF.File.Decls {
			key := in.Service + "." + d.Role
			if e.defined[key] == nil {
				e.defined[key] = &defSite{in: in, line: d.Line}
			}
		}
		for j, r := range in.RF.File.Rules {
			ri := &ruleInfo{in: in, rule: r, index: j + 1, key: keyOf(in, &r.Head)}
			ri.unsat = staticEval(r.Constraint) == triFalse
			e.rules = append(e.rules, ri)
			if e.defined[ri.key] == nil {
				e.defined[ri.key] = &defSite{in: in, line: ri.line(), hasRule: true}
			}
		}
	}
	e.principals = append(e.principals, scn.Principals...)
	has := false
	for _, p := range e.principals {
		has = has || p == AnyonePrincipal
	}
	if !has {
		e.principals = append(e.principals, AnyonePrincipal)
	}

	e.seed()
	e.fixpoint()
	e.evalAsserts()
	e.emitFindings()

	sort.Slice(e.facts, func(i, j int) bool {
		a, b := e.facts[i], e.facts[j]
		if a.Principal != b.Principal {
			return a.Principal < b.Principal
		}
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		return a.Instance() < b.Instance()
	})
	sortFindings(e.findings)
	return &ReachReport{Scenario: scn, Facts: e.facts, Asserts: e.asserts, Findings: e.findings}
}

type reachEngine struct {
	inputs     []Input
	scn        *Scenario
	loaded     map[string]bool
	defined    map[string]*defSite
	rules      []*ruleInfo
	principals []string

	facts []*Fact
	byPR  map[string][]*Fact // principal \x00 role -> facts
	memo  map[string]*Fact   // principal \x00 role \x00 args -> fact

	asserts  []AssertResult
	findings []Finding
}

func factKey(p, role string, args []AVal) string {
	var b strings.Builder
	b.WriteString(p)
	b.WriteByte(0)
	b.WriteString(role)
	for _, a := range args {
		b.WriteByte(0)
		b.WriteString(a.String())
	}
	return b.String()
}

// add inserts a fact or upgrades an existing one. The lattice has two
// monotone directions: possible → definite (which replaces the witness,
// so the strongest derivation is the one reported) and non-evictable →
// evictable. The first witness at a given certainty is kept — fixpoint
// rounds reach shallow derivations first, so witnesses stay minimal.
func (e *reachEngine) add(p, role string, args []AVal, possible, evictable bool, wit *Derivation) bool {
	key := factKey(p, role, args)
	if f := e.memo[key]; f != nil {
		changed := false
		if f.Possible && !possible {
			f.Possible = false
			f.Wit = wit
			changed = true
		}
		if !f.Evictable && evictable {
			f.Evictable = true
			changed = true
		}
		return changed
	}
	f := &Fact{Principal: p, Role: role, Args: args, Possible: possible, Evictable: evictable, Wit: wit}
	e.memo[key] = f
	e.facts = append(e.facts, f)
	pr := p + "\x00" + role
	e.byPR[pr] = append(e.byPR[pr], f)
	return true
}

func (e *reachEngine) factsFor(p, role string) []*Fact {
	return e.byPR[p+"\x00"+role]
}

// seed installs the scenario's initial credentials as definite,
// evictable facts (an initial credential is a certificate its issuer
// can always revoke).
func (e *reachEngine) seed() {
	for i := range e.scn.Credentials {
		c := &e.scn.Credentials[i]
		e.add(c.Principal, c.Service+"."+c.Role, c.Args, false, true, &Derivation{
			Kind: DerivCredential, File: e.scn.File, Line: c.Line,
		})
	}
}

// fixpoint applies every rule for every principal until no fact is
// added or upgraded. Termination: argument values are drawn from the
// finite set of literals in the scenario and the rule text plus ⊤, so
// the fact universe is finite, and add is monotone.
func (e *reachEngine) fixpoint() {
	const maxRounds = 10000 // safety net; real policies converge in a handful
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, ri := range e.rules {
			if ri.unsat {
				continue
			}
			for _, p := range e.principals {
				if e.apply(ri, p) {
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// env is the variable binding built up while matching a rule's
// premises. Maps are tiny; copy-on-write keeps backtracking simple.
type env map[string]AVal

func (m env) clone() env {
	c := make(env, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}

// apply tries every way of deriving ri's head for principal p:
// candidates unify against p's own facts, the elector (if any) against
// any principal's facts — delegation is the cross-principal edge of the
// role graph — and the constraint folds three-valued against the
// scenario's closed world. Unknown downgrades to "possible" instead of
// blocking. Returns whether the fact set changed.
func (e *reachEngine) apply(ri *ruleInfo, p string) bool {
	r := ri.rule
	base := env{}
	if h, ok := e.scn.Hosts[p]; ok {
		base["@host"] = Lit(h)
	} else {
		base["@host"] = Top()
	}

	changed := false
	derive := func(en env, possible, evictable bool, prems []*Fact, elector, note string) {
		// Fold the constraint last, with every premise binding in scope.
		en, t, cnote := e.evalConstraint(r.Constraint, en, ri.in.Service)
		if t == triFalse {
			return
		}
		if t == triUnknown {
			possible = true
			if note == "" {
				note = cnote
			}
		}
		if starredGroupTest(r.Constraint) || r.Revoker != nil || r.ElectStarred {
			evictable = true
		}
		args := make([]AVal, len(r.Head.Args))
		for i, t := range r.Head.Args {
			args[i] = termVal(t, en)
		}
		kind := DerivRule
		if len(r.Candidates) == 0 && r.Elector == nil {
			kind = DerivClaim
			// An unchecked claim is a certificate the issuing service
			// revokes directly (the R001 exemption), so the chain stays
			// evictable.
			evictable = true
		}
		wit := &Derivation{
			Kind: kind, File: ri.in.File, Line: ri.line(),
			Rule: strings.TrimSpace(r.String()), Elector: elector, Prems: prems, Note: note,
		}
		if e.add(p, ri.key, args, possible, evictable, wit) {
			changed = true
		}
	}

	// matchPremise enumerates the ways one premise reference can be
	// satisfied: against each held fact, and — when the reference names
	// a service outside the analysis — against an assumed foreign fact.
	matchPremise := func(ref *rdl.RoleRef, holder string, en env, then func(en env, f *Fact, weak bool)) {
		key := keyOf(ri.in, ref)
		for _, f := range e.factsFor(holder, key) {
			if en2, weak, ok := matchArgs(ref.Args, f.Args, en); ok {
				then(en2, f, weak || f.Possible)
			}
		}
		if !e.loaded[refService(ri.in, ref)] {
			en2 := en.clone()
			args := make([]AVal, len(ref.Args))
			for i, t := range ref.Args {
				args[i] = bindTerm(t, en2)
			}
			f := &Fact{
				Principal: holder, Role: key, Args: args, Possible: true, Evictable: true,
				Wit: &Derivation{Kind: DerivAssumed, Note: "service not in analysis; premise assumed satisfiable"},
			}
			then(en2, f, true)
		}
	}

	var cands func(i int, en env, possible, evictable bool, prems []*Fact)
	cands = func(i int, en env, possible, evictable bool, prems []*Fact) {
		if i == len(r.Candidates) {
			if r.Elector == nil {
				derive(en, possible, evictable, prems, "", "")
				return
			}
			for _, q := range e.principals {
				matchPremise(r.Elector, q, en, func(en2 env, f *Fact, weak bool) {
					ev := evictable
					if r.Elector.Starred && f.Evictable {
						ev = true
					}
					derive(en2, possible || weak, ev, append(append([]*Fact(nil), prems...), f), q, "")
				})
			}
			return
		}
		matchPremise(&r.Candidates[i], p, en, func(en2 env, f *Fact, weak bool) {
			ev := evictable
			if r.Candidates[i].Starred && f.Evictable {
				ev = true
			}
			cands(i+1, en2, possible || weak, ev, append(append([]*Fact(nil), prems...), f))
		})
	}
	cands(0, base, false, false, nil)
	return changed
}

// termVal resolves a rule term under the environment: literals render
// canonically, bound variables take their value, unbound variables are
// ⊤ (the entrant chooses them at request time).
func termVal(t rdl.Term, en env) AVal {
	if t.Var != "" {
		if v, ok := en[t.Var]; ok {
			return v
		}
		return Top()
	}
	return litVal(t)
}

// bindTerm is termVal but records the binding of a previously unbound
// variable (used when assuming a foreign premise: its unknown arguments
// flow into the head).
func bindTerm(t rdl.Term, en env) AVal {
	if t.Var != "" {
		if v, ok := en[t.Var]; ok {
			return v
		}
		en[t.Var] = Top()
		return Top()
	}
	return litVal(t)
}

func litVal(t rdl.Term) AVal {
	switch {
	case t.IsInt:
		return Lit(strconv.FormatInt(t.IntLit, 10))
	case t.IsSet:
		return Lit(canonSet(t.SetLit))
	default:
		return Lit(t.StrLit)
	}
}

// matchArgs unifies a premise reference's argument terms against a
// fact's abstract values. A literal or bound variable matches an equal
// literal strongly and ⊤ weakly (the unknown value may or may not be
// the one required); an unbound variable binds to the fact's value.
// weak reports that the match relied on ⊤ somewhere, which downgrades
// the derivation to "possible".
func matchArgs(refArgs []rdl.Term, factArgs []AVal, en env) (env, bool, bool) {
	if len(refArgs) != len(factArgs) {
		return nil, false, false
	}
	out := en.clone()
	weak := false
	for i, t := range refArgs {
		fv := factArgs[i]
		var want AVal
		if t.Var != "" {
			bound, ok := out[t.Var]
			if !ok {
				out[t.Var] = fv
				if fv.IsTop() {
					weak = true
				}
				continue
			}
			want = bound
		} else {
			want = litVal(t)
		}
		switch {
		case want.IsTop() || fv.IsTop():
			weak = true
			// Refine a ⊤ binding when the fact pins the value down.
			if t.Var != "" && want.IsTop() && !fv.IsTop() {
				out[t.Var] = fv
			}
		case want.Literal() != fv.Literal():
			return nil, false, false
		}
	}
	return out, weak, true
}

// evalConstraint folds a constraint three-valued against the scenario's
// closed world, binding variables through top-level "v = literal"
// equations first (the ACL idiom of §3.3.3). It returns the updated
// environment, the verdict, and a note explaining an unknown verdict.
func (e *reachEngine) evalConstraint(x rdl.Expr, en env, service string) (env, tri, string) {
	if x == nil {
		return en, triTrue, ""
	}
	en = e.bindEqs(x, en.clone())
	t, note := e.fold(x, en, service)
	return en, t, note
}

// bindEqs walks the conjunction spine and binds unbound variables that
// a "v = <operand>" equation determines: to the literal, or to ⊤ when
// the right-hand side is a server-specific call or itself unknown.
func (e *reachEngine) bindEqs(x rdl.Expr, en env) env {
	switch c := x.(type) {
	case rdl.AndExpr:
		return e.bindEqs(c.R, e.bindEqs(c.L, en))
	case rdl.StarExpr:
		return e.bindEqs(c.E, en)
	case rdl.CmpExpr:
		if c.Op != rdl.CmpEq {
			return en
		}
		bind := func(v *rdl.Term, other rdl.Operand) {
			if v == nil || v.Var == "" {
				return
			}
			if _, ok := en[v.Var]; ok {
				return
			}
			if other.Term != nil {
				en[v.Var] = termVal(*other.Term, en)
			} else {
				en[v.Var] = Top()
			}
		}
		bind(c.L.Term, c.R)
		bind(c.R.Term, c.L)
	}
	return en
}

// fold is the three-valued constraint evaluator of the reachability
// domain: group tests decide against the scenario's closed world,
// comparisons decide when both operands are concrete, server-specific
// calls stay unknown.
func (e *reachEngine) fold(x rdl.Expr, en env, service string) (tri, string) {
	switch c := x.(type) {
	case nil:
		return triTrue, ""
	case rdl.AndExpr:
		lt, ln := e.fold(c.L, en, service)
		rt, rn := e.fold(c.R, en, service)
		return triAnd(lt, rt), firstNote(ln, rn)
	case rdl.OrExpr:
		lt, ln := e.fold(c.L, en, service)
		rt, rn := e.fold(c.R, en, service)
		return triOr(lt, rt), firstNote(ln, rn)
	case rdl.NotExpr:
		t, n := e.fold(c.E, en, service)
		return triNot(t), n
	case rdl.StarExpr:
		return e.fold(c.E, en, service)
	case rdl.InExpr:
		if c.Call != nil {
			return triUnknown, fmt.Sprintf("%s depends on a server-specific function", c.String())
		}
		v := termVal(c.T, en)
		if v.IsTop() {
			return triUnknown, fmt.Sprintf("%s undecided: %s is unknown", c.String(), c.T.String())
		}
		in := e.scn.IsMember(v.Literal(), service+"."+c.Group)
		if in != c.Neg {
			return triTrue, ""
		}
		return triFalse, ""
	case rdl.CmpExpr:
		if c.L.Call != nil || c.R.Call != nil {
			return triUnknown, fmt.Sprintf("%s depends on a server-specific function", c.String())
		}
		lv, rv := termVal(*c.L.Term, en), termVal(*c.R.Term, en)
		if lv.IsTop() || rv.IsTop() {
			return triUnknown, fmt.Sprintf("%s undecided: an operand is unknown", c.String())
		}
		return cmpAVals(c.Op, lv, rv), ""
	case rdl.CallExpr:
		return triUnknown, fmt.Sprintf("%s depends on a server-specific function", c.String())
	default:
		return triUnknown, ""
	}
}

func firstNote(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// cmpAVals compares two concrete abstract values: numerically when both
// parse as integers, as rune sets when both are set literals, as
// strings otherwise.
func cmpAVals(op rdl.CmpOp, a, b AVal) tri {
	as, bs := a.Literal(), b.Literal()
	if ai, err := strconv.ParseInt(as, 10, 64); err == nil {
		if bi, err := strconv.ParseInt(bs, 10, 64); err == nil {
			return cmpOrdered(op, compareInt(ai, bi))
		}
	}
	if strings.HasPrefix(as, "{") && strings.HasPrefix(bs, "{") {
		return cmpSets(op, strings.Trim(as, "{}"), strings.Trim(bs, "{}"))
	}
	return cmpOrdered(op, strings.Compare(as, bs))
}

// matchAssert matches a fact against an assertion's argument pattern.
// strict demands literal-for-literal equality (⊤ in the fact does not
// prove a literal); loose lets ⊤ stand for anything.
func matchAssert(a ScnAssert, f *Fact) (strict, loose bool) {
	if !a.HasArgs {
		return true, true
	}
	if len(a.Args) != len(f.Args) {
		return false, false
	}
	strict = true
	for i, want := range a.Args {
		got := f.Args[i]
		switch {
		case want.IsTop():
			// wildcard: anything matches
		case got.IsTop():
			strict = false
		case want.Literal() != got.Literal():
			return false, false
		}
	}
	return strict, true
}

// evalAsserts checks every scenario assertion against the fixpoint:
// expect demands a definite, exact match; possible accepts any
// conservative match; deny demands that nothing matches even loosely.
func (e *reachEngine) evalAsserts() {
	for _, a := range e.scn.Asserts {
		res := AssertResult{Assert: a}
		var best *Fact // exact definite > loose/possible
		for _, f := range e.factsFor(a.Principal, a.Key()) {
			strict, loose := matchAssert(a, f)
			if !loose {
				continue
			}
			if strict && !f.Possible {
				best = f
				break
			}
			if best == nil {
				best = f
			}
		}
		definite := best != nil && !best.Possible && func() bool { s, _ := matchAssert(a, best); return s }()
		switch a.Kind {
		case AssertExpect:
			res.OK = definite
			res.Matched = best
			switch {
			case definite:
				res.Detail = fmt.Sprintf("%s holds: %s reaches %s", a, a.Principal, best.Instance())
			case best != nil:
				res.Detail = fmt.Sprintf("%s failed: only possibly reachable (best: %s)", a, best.Instance())
			default:
				res.Detail = fmt.Sprintf("%s failed: unreachable", a)
			}
		case AssertPossible:
			res.OK = best != nil
			res.Matched = best
			if res.OK {
				res.Detail = fmt.Sprintf("%s holds: %s (%s)", a, best.Instance(), best.Certainty())
			} else {
				res.Detail = fmt.Sprintf("%s failed: unreachable", a)
			}
		case AssertDeny:
			res.OK = best == nil
			res.Matched = best
			if res.OK {
				res.Detail = fmt.Sprintf("%s holds: unreachable", a)
			} else {
				res.Detail = fmt.Sprintf("%s failed: %s is %s", a, best.Instance(), best.Certainty())
			}
		}
		e.asserts = append(e.asserts, res)
	}
}

// emitFindings turns the fixpoint into findings: R008 for open-access
// roles (definitely reachable by a principal the scenario never granted
// a credential), R009 for unrevocable derivations, R010 for assertion
// failures.
func (e *reachEngine) emitFindings() {
	openAccess := make(map[string]bool)
	unrevocable := make(map[string]bool)
	for _, f := range e.facts {
		site := e.defined[f.Role]
		if site == nil {
			continue // foreign role; its policy is not in view
		}
		if !f.Possible && !openAccess[f.Role] && !e.scn.Granted(f.Principal) {
			openAccess[f.Role] = true
			e.findings = append(e.findings, Finding{
				Code: CodeOpenAccess, Severity: Warning,
				Service: site.in.Service, File: site.in.File, Line: site.line, Role: f.Role,
				Message: fmt.Sprintf("role instance %s is reachable by a principal holding no initial credential (open access; scenario %s)", f.Instance(), e.scn.File),
			})
		}
		if !f.Evictable && !unrevocable[f.Role] {
			unrevocable[f.Role] = true
			e.findings = append(e.findings, Finding{
				Code: CodeUnrevocableChain, Severity: Warning,
				Service: site.in.Service, File: site.in.File, Line: site.line, Role: f.Role,
				Message: fmt.Sprintf("%s can reach %s through a derivation containing no revocable credential: revocation can never evict the holder (§5)", f.Principal, f.Instance()),
			})
		}
	}
	for _, res := range e.asserts {
		if res.OK {
			continue
		}
		a := res.Assert
		e.findings = append(e.findings, Finding{
			Code: CodeAssertFailed, Severity: Error,
			Service: a.Service, File: e.scn.File, Line: a.Line, Role: a.Key(),
			Message: res.Detail,
		})
	}
}
