package analyze

import (
	"strings"
	"testing"

	"oasis/internal/rdl"
	"oasis/internal/value"
)

// checkFile parses and type-checks a rolefile with foreign signatures
// inferred from usage, as cmd/rdlcheck does.
func checkFile(t *testing.T, src string) *rdl.Rolefile {
	t.Helper()
	f, err := rdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := rdl.Check(f, func(service, rolefile, role string) ([]value.Type, error) {
		switch service + "." + role {
		case "Login.LoggedOn":
			return []value.Type{value.ObjectType("Login.userid"), value.ObjectType("Login.host")}, nil
		case "Pw.Passwd":
			return []value.Type{value.ObjectType("Login.userid"), value.StringType}, nil
		}
		return nil, rdl.ErrInferSignature
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rf
}

func analyzeOne(t *testing.T, service, src string) []Finding {
	t.Helper()
	return Analyze([]Input{{Service: service, File: service + ".rdl", RF: checkFile(t, src)}})
}

func codes(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Code
	}
	return out
}

func findCode(fs []Finding, code string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Code == code {
			out = append(out, f)
		}
	}
	return out
}

func TestUnrevocableRole(t *testing.T) {
	fs := analyzeOne(t, "Conf", `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
`)
	got := findCode(fs, CodeUnrevocable)
	if len(got) != 1 {
		t.Fatalf("unrevocable findings = %v", fs)
	}
	f := got[0]
	if f.Role != "Conf.Chair" || f.Severity != Error || f.Line != 2 {
		t.Errorf("finding = %+v", f)
	}
	if !strings.Contains(f.Message, "unrevocable") {
		t.Errorf("message = %q", f.Message)
	}
}

func TestRevocationCoverageForms(t *testing.T) {
	// Each rule is covered by a different mechanism: starred candidate,
	// starred election, starred elector reference, revoker, starred
	// group test. None should be flagged.
	fs := analyzeOne(t, "S", `
A(u) <- Login.LoggedOn(u, h)*
B(u) <- Login.LoggedOn(u, h) <|* A(v)
C(u) <- Login.LoggedOn(u, h) <| A(v)*
D(u) <- Login.LoggedOn(u, h) |> A(v)
E(u) <- Login.LoggedOn(u, h) : (u in staff)*
`)
	if got := findCode(fs, CodeUnrevocable); len(got) != 0 {
		t.Errorf("covered rules flagged: %v", got)
	}
}

func TestUncheckedClaimExempt(t *testing.T) {
	// An empty right-hand side is an unchecked claim (§3.4.3); the
	// issuing service revokes it directly, so no coverage is required.
	fs := analyzeOne(t, "Login", `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`)
	if len(fs) != 0 {
		t.Errorf("findings = %v", fs)
	}
}

func TestConstraintOnlyRuleNeedsCoverage(t *testing.T) {
	fs := analyzeOne(t, "S", `
def Op(u) u: string
Op(u) <- : u in admins
`)
	if got := findCode(fs, CodeUnrevocable); len(got) != 1 {
		t.Errorf("unstarred group-test rule not flagged: %v", fs)
	}
}

func TestUndefinedRole(t *testing.T) {
	fs := analyzeOne(t, "S", `
def A(u) u: string
A(u) <- Ghost(u)*
`)
	got := findCode(fs, CodeUndefined)
	if len(got) != 1 || got[0].Role != "S.Ghost" || got[0].Severity != Error {
		t.Fatalf("findings = %v", fs)
	}
	// A is also unreachable: its only premise can never be satisfied.
	if got := findCode(fs, CodeUnreachable); len(got) != 1 || got[0].Role != "S.A" {
		t.Errorf("unreachable = %v", fs)
	}
}

func TestUnreachableViaCycleWithoutBase(t *testing.T) {
	fs := analyzeOne(t, "S", `
def A(u) u: string
A(u) <- B(u)*
B(u) <- A(u)*
`)
	if got := findCode(fs, CodeUnreachable); len(got) != 2 {
		t.Errorf("unreachable = %v", fs)
	}
	if got := findCode(fs, CodeCycle); len(got) != 1 {
		t.Errorf("cycle = %v", fs)
	}
}

func TestQuorumCycleWithBaseIsReachable(t *testing.T) {
	// The golf club shape: Member and Rec depend on each other, but the
	// founders rule is a base case, so both roles stay reachable and
	// only an info-level cycle note appears.
	fs := analyzeOne(t, "Golf", `
def Member(p) p: Login.userid
Member(p)  <- Login.LoggedOn(p, h)* : (p in founders)*
Rec(p, m1) <- Login.LoggedOn(p, h)* <| Member(m1)*
Member(p)  <- Rec(p, m1)* <| Member(m2)* : m1 != m2
`)
	if got := findCode(fs, CodeUnreachable); len(got) != 0 {
		t.Errorf("unreachable = %v", got)
	}
	cyc := findCode(fs, CodeCycle)
	if len(cyc) != 1 || cyc[0].Severity != Info {
		t.Fatalf("cycle = %v", fs)
	}
	if !strings.Contains(cyc[0].Message, "Golf.Member") || !strings.Contains(cyc[0].Message, "Golf.Rec") {
		t.Errorf("cycle message = %q", cyc[0].Message)
	}
}

func TestSelfLoopCycle(t *testing.T) {
	fs := analyzeOne(t, "S", `
A(u) <- A(u)*
A(u) <- Login.LoggedOn(u, h)*
`)
	cyc := findCode(fs, CodeCycle)
	if len(cyc) != 1 || !strings.Contains(cyc[0].Message, "depends on itself") {
		t.Fatalf("cycle = %v", fs)
	}
	if got := findCode(fs, CodeUnreachable); len(got) != 0 {
		t.Errorf("unreachable = %v", got)
	}
}

func TestDuplicateRuleIsDead(t *testing.T) {
	// Alpha-equivalent rules are duplicates even with renamed variables.
	fs := analyzeOne(t, "S", `
A(u) <- Login.LoggedOn(u, h)*
A(x) <- Login.LoggedOn(x, k)*
`)
	got := findCode(fs, CodeDeadRule)
	if len(got) != 1 || !strings.Contains(got[0].Message, "duplicates") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestCatchAllShadowsLaterRules(t *testing.T) {
	fs := analyzeOne(t, "S", `
def A(u) u: Login.userid
A(u) <-
A(u) <- Login.LoggedOn(u, h)*
`)
	got := findCode(fs, CodeDeadRule)
	if len(got) != 1 || !strings.Contains(got[0].Message, "shadowed") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestLiteralGradedHeadsNotShadowed(t *testing.T) {
	// The four-level login: literal head arguments grade the result;
	// no rule shadows another.
	fs := analyzeOne(t, "Login", `
def Login(l, u, h) l: integer u: Login.userid h: string
Login(3, u, @host) <- Pw.Passwd(u, "Login")* : @host in secure
Login(2, u, @host) <- Pw.Passwd(u, "Login")* : @host in hosts
Login(1, u, @host) <- Pw.Passwd(u, "Login")*
Login(0, u, @host) <-
`)
	if got := findCode(fs, CodeDeadRule); len(got) != 0 {
		t.Errorf("dead rules = %v", got)
	}
	if got := findCode(fs, CodeUnrevocable); len(got) != 0 {
		t.Errorf("unrevocable = %v", got)
	}
}

func TestUnsatisfiableConstraint(t *testing.T) {
	fs := analyzeOne(t, "S", `
A(u) <- Login.LoggedOn(u, h)* : u != u
B(u) <- Login.LoggedOn(u, h)* : 1 = 2
C(u) <- Login.LoggedOn(u, h)* : "x" = "y" or not (2 > 1)
`)
	got := findCode(fs, CodeUnsatisfiable)
	if len(got) != 3 {
		t.Fatalf("unsatisfiable = %v", fs)
	}
	// Unsatisfiable rules cannot acquire their heads.
	if got := findCode(fs, CodeUnreachable); len(got) != 3 {
		t.Errorf("unreachable = %v", fs)
	}
}

func TestStaticStarInfo(t *testing.T) {
	fs := analyzeOne(t, "S", `
A(u, v) <- Login.LoggedOn(u, h)* : (u != v)*
`)
	got := findCode(fs, CodeStaticStar)
	if len(got) != 1 || got[0].Severity != Info {
		t.Fatalf("findings = %v", fs)
	}
}

func TestCrossServiceResolution(t *testing.T) {
	login := checkFile(t, `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`)
	conf := checkFile(t, `
Chair     <- Login.LoggedOn("jmb", h)*
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
`)
	fs := Analyze([]Input{
		{Service: "Login", File: "Login.rdl", RF: login},
		{Service: "Conf", File: "Conf.rdl", RF: conf},
	})
	if len(fs) != 0 {
		t.Errorf("findings = %v", fs)
	}

	// Now break the reference: Conf names a role Login does not define.
	conf2 := checkFile(t, `
Chair <- Login.Missing("jmb", h)*
`)
	fs = Analyze([]Input{
		{Service: "Login", File: "Login.rdl", RF: login},
		{Service: "Conf", File: "Conf.rdl", RF: conf2},
	})
	got := findCode(fs, CodeUndefined)
	if len(got) != 1 || got[0].Role != "Login.Missing" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestSeverityHelpers(t *testing.T) {
	fs := []Finding{
		{Code: "a", Severity: Info},
		{Code: "b", Severity: Error},
		{Code: "c", Severity: Warning},
	}
	if Max(fs) != Error {
		t.Error("Max")
	}
	if Max(nil) != -1 {
		t.Error("Max(nil)")
	}
	if got := Filter(fs, Warning); len(got) != 2 {
		t.Errorf("Filter = %v", got)
	}
	for _, tc := range []struct {
		in   string
		want Severity
	}{{"info", Info}, {"warning", Warning}, {"warn", Warning}, {"error", Error}} {
		got, err := ParseSeverity(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSeverity(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted nonsense")
	}
}

func TestSetComparisonFolding(t *testing.T) {
	fs := analyzeOne(t, "S", `
A(u) <- Login.LoggedOn(u, h)* : {ab} = {ba}
B(u) <- Login.LoggedOn(u, h)* : {ab} != {ba}
C(u) <- Login.LoggedOn(u, h)* : {a} <= {ab}
D(u) <- Login.LoggedOn(u, h)* : {ab} <= {a}
`)
	unsat := findCode(fs, CodeUnsatisfiable)
	if len(unsat) != 2 {
		t.Fatalf("unsatisfiable = %v (all: %v)", unsat, codes(fs))
	}
	for _, f := range unsat {
		if f.Role != "S.B" && f.Role != "S.D" {
			t.Errorf("wrong rule flagged: %+v", f)
		}
	}
}
