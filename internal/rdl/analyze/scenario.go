package analyze

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// A Scenario is the input of the reachability engine (reach.go): an
// initial credential assignment per principal, the closed-world facts
// the constraint folder may rely on (group membership, request hosts),
// signatures for roles of services outside the analysis, and the
// expect/possible/deny assertions that pin intended reachability so
// examples and CI can gate on them (R010).
//
// The format is line-oriented text (.scn); see docs/RDL.md
// "Reachability analysis" for the grammar.
type Scenario struct {
	File string
	Name string

	// Principals in first-mention order. Principals mentioned only in
	// assertions are legal: they model an attacker holding nothing.
	Principals []string

	Credentials []ScnCredential

	// Members is the closed world of group membership: member value ->
	// fully qualified groups ("Service.group") it belongs to. A value
	// absent from a group is NOT in it (the closed-world default); only
	// the unknown value ⊤ leaves a group test undecided.
	Members map[string]map[string]bool

	// Hosts binds a principal's ambient @host variable. Principals
	// without a binding connect from an unknown host.
	Hosts map[string]string

	Foreign []ScnForeign
	Asserts []ScnAssert
}

// ScnCredential is one initial credential: Principal holds
// Service.Role with the given argument values.
type ScnCredential struct {
	Principal string
	Service   string
	Role      string
	Args      []AVal
	Line      int
}

// ScnForeign declares the signature of a role whose service is not part
// of the analysis, mirroring rdlcheck's -foreign flag so a scenario is
// self-contained. Types are the surface-syntax names ("integer",
// "string", "{rwx}", "Login.userid").
type ScnForeign struct {
	Service string
	Role    string
	Types   []string
	Line    int
}

// AssertKind distinguishes the three scenario assertions.
type AssertKind int

// The assertion kinds. Expect demands definite reachability, Possible
// accepts a conservative verdict, Deny demands that not even a
// conservative derivation exists.
const (
	AssertExpect AssertKind = iota
	AssertPossible
	AssertDeny
)

// String names the assertion keyword.
func (k AssertKind) String() string {
	switch k {
	case AssertExpect:
		return "expect"
	case AssertPossible:
		return "possible"
	default:
		return "deny"
	}
}

// ScnAssert is one reachability assertion. Args is nil to assert about
// any instance of the role; otherwise each element is a literal that
// must match or ⊤ ("*") as a wildcard.
type ScnAssert struct {
	Kind      AssertKind
	Principal string
	Service   string
	Role      string
	Args      []AVal // nil: any instance
	HasArgs   bool
	Line      int
}

// Key renders the asserted role as Service.Role.
func (a ScnAssert) Key() string { return a.Service + "." + a.Role }

// String renders the assertion in scenario syntax.
func (a ScnAssert) String() string {
	s := a.Kind.String() + " " + a.Principal + " " + a.Key()
	if a.HasArgs {
		parts := make([]string, len(a.Args))
		for i, v := range a.Args {
			parts[i] = v.String()
		}
		s += "(" + strings.Join(parts, ", ") + ")"
	}
	return s
}

// ParseScenario parses a .scn file.
func ParseScenario(file, src string) (*Scenario, error) {
	scn := &Scenario{
		File:    file,
		Members: make(map[string]map[string]bool),
		Hosts:   make(map[string]string),
	}
	seen := make(map[string]bool)
	principal := func(name string) {
		if !seen[name] {
			seen[name] = true
			scn.Principals = append(scn.Principals, name)
		}
	}
	for no, raw := range strings.Split(src, "\n") {
		line := no + 1
		s := raw
		if i := strings.IndexAny(s, "#"); i >= 0 {
			s = s[:i]
		}
		if i := strings.Index(s, "//"); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		kw, rest, _ := strings.Cut(s, " ")
		rest = strings.TrimSpace(rest)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", file, line, fmt.Sprintf(format, args...))
		}
		switch kw {
		case "scenario":
			scn.Name = rest
		case "principal":
			if rest == "" || strings.ContainsAny(rest, " \t") {
				return nil, fail("principal wants one name, got %q", rest)
			}
			principal(rest)
		case "host":
			p, h, ok := strings.Cut(rest, " ")
			h = strings.TrimSpace(h)
			if !ok || h == "" {
				return nil, fail("host wants: host <principal> <hostname>")
			}
			principal(p)
			scn.Hosts[p] = unquote(h)
		case "credential":
			p, ref, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fail("credential wants: credential <principal> <Service.Role(args)>")
			}
			svc, role, args, _, err := parseScnRef(strings.TrimSpace(ref))
			if err != nil {
				return nil, fail("%v", err)
			}
			if svc == "" {
				return nil, fail("credential role must be service-qualified (Service.Role)")
			}
			principal(p)
			scn.Credentials = append(scn.Credentials, ScnCredential{
				Principal: p, Service: svc, Role: role, Args: args, Line: line,
			})
		case "member":
			v, g, ok := strings.Cut(rest, " ")
			g = strings.TrimSpace(g)
			if !ok || !strings.Contains(g, ".") {
				return nil, fail("member wants: member <value> <Service.group>")
			}
			val := unquote(v)
			if scn.Members[val] == nil {
				scn.Members[val] = make(map[string]bool)
			}
			scn.Members[val][g] = true
		case "foreign":
			svc, role, _, types, err := parseScnRef(rest)
			if err != nil {
				return nil, fail("%v", err)
			}
			if svc == "" {
				return nil, fail("foreign role must be service-qualified (Service.Role)")
			}
			scn.Foreign = append(scn.Foreign, ScnForeign{Service: svc, Role: role, Types: types, Line: line})
		case "expect", "possible", "deny":
			var kind AssertKind
			switch kw {
			case "expect":
				kind = AssertExpect
			case "possible":
				kind = AssertPossible
			default:
				kind = AssertDeny
			}
			p, ref, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fail("%s wants: %s <principal> <Service.Role[(args)]>", kw, kw)
			}
			svc, role, args, _, err := parseScnRef(strings.TrimSpace(ref))
			if err != nil {
				return nil, fail("%v", err)
			}
			if svc == "" {
				return nil, fail("%s role must be service-qualified (Service.Role)", kw)
			}
			principal(p)
			scn.Asserts = append(scn.Asserts, ScnAssert{
				Kind: kind, Principal: p, Service: svc, Role: role,
				Args: args, HasArgs: strings.Contains(ref, "("), Line: line,
			})
		default:
			return nil, fail("unknown directive %q (want scenario, principal, host, credential, member, foreign, expect, possible or deny)", kw)
		}
	}
	return scn, nil
}

// IsMember answers a closed-world group test: v is in Service.group iff
// the scenario lists it.
func (s *Scenario) IsMember(v, qualifiedGroup string) bool {
	return s.Members[v][qualifiedGroup]
}

// Granted reports whether the scenario gives the principal any initial
// credential — the R008 distinction.
func (s *Scenario) Granted(principal string) bool {
	for _, c := range s.Credentials {
		if c.Principal == principal {
			return true
		}
	}
	return false
}

// parseScnRef parses "Service.Role", "Service.Role(a, b)" or, for
// foreign declarations, "Service.Role(type, type)". Arguments are
// returned both as abstract values (for credentials/assertions) and as
// raw text (for foreign type lists).
func parseScnRef(s string) (svc, role string, args []AVal, raw []string, err error) {
	name := s
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return "", "", nil, nil, fmt.Errorf("unbalanced parentheses in %q", s)
		}
		name = s[:i]
		inner := strings.TrimSpace(s[i+1 : len(s)-1])
		if inner != "" {
			for _, part := range splitArgs(inner) {
				part = strings.TrimSpace(part)
				raw = append(raw, part)
				v, err := parseAVal(part)
				if err != nil {
					return "", "", nil, nil, err
				}
				args = append(args, v)
			}
		}
	}
	name = strings.TrimSpace(name)
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		svc, role = name[:i], name[i+1:]
	} else {
		role = name
	}
	if role == "" {
		return "", "", nil, nil, fmt.Errorf("empty role name in %q", s)
	}
	return svc, role, args, raw, nil
}

// splitArgs splits a comma-separated argument list, respecting quoted
// strings and set braces.
func splitArgs(s string) []string {
	var out []string
	depth, start := 0, 0
	inStr := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '{':
			if !inStr {
				depth++
			}
		case '}':
			if !inStr {
				depth--
			}
		case ',':
			if !inStr && depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// parseAVal parses one scenario literal: quoted string, integer, set
// literal, "*" (the unknown value ⊤), or a bare word (shorthand for a
// string — principal names double as userids everywhere in the paper's
// examples).
func parseAVal(s string) (AVal, error) {
	switch {
	case s == "*":
		return Top(), nil
	case strings.HasPrefix(s, `"`):
		u, err := strconv.Unquote(s)
		if err != nil {
			return AVal{}, fmt.Errorf("bad string literal %s: %v", s, err)
		}
		return Lit(u), nil
	case strings.HasPrefix(s, "{"):
		if !strings.HasSuffix(s, "}") {
			return AVal{}, fmt.Errorf("unbalanced set literal %s", s)
		}
		return Lit(canonSet(strings.Trim(s, "{}"))), nil
	default:
		if _, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Lit(s), nil
		}
		if s == "" || strings.ContainsAny(s, "() \t") {
			return AVal{}, fmt.Errorf("bad literal %q", s)
		}
		return Lit(s), nil
	}
}

// canonSet renders a set literal canonically: sorted unique runes
// wrapped in braces, so {ba} and {ab} compare equal.
func canonSet(elems string) string {
	seen := make(map[rune]bool)
	var rs []rune
	for _, r := range elems {
		if !seen[r] {
			seen[r] = true
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	return "{" + string(rs) + "}"
}

// unquote strips optional double quotes from a scenario value.
func unquote(s string) string {
	if strings.HasPrefix(s, `"`) && strings.HasSuffix(s, `"`) && len(s) >= 2 {
		if u, err := strconv.Unquote(s); err == nil {
			return u
		}
	}
	return s
}
