// Package analyze implements whole-policy static analysis over parsed
// and checked RDL rolefiles. Where internal/rdl's checker answers "is
// this rolefile well-typed?", this package answers questions about the
// policy the rolefiles jointly express: can every role actually be
// acquired, can every issued certificate actually be revoked, which
// rules are dead, and where do roles depend on each other cyclically.
//
// The headline check is revocation coverage (R001). The paper's
// security argument (§4.2–§4.4) rests on rapid selective revocation:
// every certificate carries a credential record whose truth is the
// conjunction of the *membership rules* captured at entry. A rule none
// of whose premises is a membership rule — no starred candidate, no
// starred election, no starred group test, no |> revoker — issues
// certificates that nothing in the credential-record graph can ever
// falsify. Such a role silently opts out of the architecture's
// guarantee, so the analyzer reports it at error severity.
package analyze

import (
	"fmt"
	"sort"
	"strings"

	"oasis/internal/rdl"
)

// Input is one checked rolefile under analysis, attributed to the
// service that installs it. Analyze accepts any number of inputs; role
// references between loaded services are resolved against each other,
// references to services not loaded are assumed satisfiable.
type Input struct {
	Service string
	File    string
	RF      *rdl.Rolefile
}

// ruleInfo is one rule with its provenance.
type ruleInfo struct {
	in    *Input
	rule  *rdl.Rule
	index int    // 1-based position within its file
	key   string // qualified head role, "Service.Role"
	unsat bool   // constraint statically false
}

func (ri *ruleInfo) line() int {
	if ri.rule.Head.Line > 0 {
		return ri.rule.Head.Line
	}
	return ri.rule.Line
}

// defSite records where a role was first defined.
type defSite struct {
	in      *Input
	line    int
	hasRule bool
}

// Analyze runs every whole-policy check over the inputs and returns the
// findings sorted by (file, line, code).
func Analyze(inputs []Input) []Finding {
	a := &analysis{
		loaded:  make(map[string]bool),
		defined: make(map[string]*defSite),
	}
	for i := range inputs {
		a.loaded[inputs[i].Service] = true
	}
	for i := range inputs {
		a.collect(&inputs[i])
	}
	a.checkUndefined()
	a.checkReachability()
	a.checkRevocation()
	a.checkDeadRules()
	a.checkCycles()
	sortFindings(a.findings)
	return a.findings
}

type analysis struct {
	loaded   map[string]bool
	defined  map[string]*defSite
	rules    []*ruleInfo
	findings []Finding
}

// keyOf qualifies a role reference from the viewpoint of the file that
// contains it.
func keyOf(in *Input, ref *rdl.RoleRef) string {
	svc := ref.Service
	if svc == "" {
		svc = in.Service
	}
	return svc + "." + ref.Name
}

func refService(in *Input, ref *rdl.RoleRef) string {
	if ref.Service == "" {
		return in.Service
	}
	return ref.Service
}

// premises returns the acquisition premises of a rule: its candidate
// roles and its elector, if any. The revoker is not a premise — it is
// consulted at revocation, not entry.
func premises(r *rdl.Rule) []*rdl.RoleRef {
	out := make([]*rdl.RoleRef, 0, len(r.Candidates)+1)
	for i := range r.Candidates {
		out = append(out, &r.Candidates[i])
	}
	if r.Elector != nil {
		out = append(out, r.Elector)
	}
	return out
}

func (a *analysis) report(f Finding) { a.findings = append(a.findings, f) }

// collect indexes one input's declarations and rules, reporting
// statically-false constraints (R005) as it goes.
func (a *analysis) collect(in *Input) {
	for _, d := range in.RF.File.Decls {
		key := in.Service + "." + d.Role
		if a.defined[key] == nil {
			a.defined[key] = &defSite{in: in, line: d.Line}
		}
	}
	for i, r := range in.RF.File.Rules {
		ri := &ruleInfo{in: in, rule: r, index: i + 1, key: keyOf(in, &r.Head)}
		if staticEval(r.Constraint) == triFalse {
			ri.unsat = true
			a.report(Finding{
				Code: CodeUnsatisfiable, Severity: Warning,
				Service: in.Service, File: in.File, Line: ri.line(), Role: ri.key,
				Message: fmt.Sprintf("constraint %s is statically false; the rule can never fire", r.Constraint),
			})
		}
		a.rules = append(a.rules, ri)
		if site := a.defined[ri.key]; site == nil {
			a.defined[ri.key] = &defSite{in: in, line: ri.line(), hasRule: true}
		} else {
			site.hasRule = true
		}
	}
}

// checkUndefined reports references to roles of loaded services that no
// rule or declaration defines (R002).
func (a *analysis) checkUndefined() {
	seen := make(map[string]bool) // file + key, one report per pair
	for _, ri := range a.rules {
		refs := premises(ri.rule)
		if ri.rule.Revoker != nil {
			refs = append(refs, ri.rule.Revoker)
		}
		for _, ref := range refs {
			svc := refService(ri.in, ref)
			if !a.loaded[svc] {
				continue
			}
			key := keyOf(ri.in, ref)
			if a.defined[key] != nil {
				continue
			}
			dedupe := ri.in.File + "\x00" + key
			if seen[dedupe] {
				continue
			}
			seen[dedupe] = true
			a.report(Finding{
				Code: CodeUndefined, Severity: Error,
				Service: ri.in.Service, File: ri.in.File, Line: ref.Line, Role: key,
				Message: fmt.Sprintf("role %s is referenced but never defined by a rule or declaration", key),
			})
		}
	}
}

// reachableSet computes the fixpoint of role acquirability: a role is
// reachable when some satisfiable rule for it has every premise
// reachable. Roles of services not loaded are assumed reachable
// (their policies are not in view); an empty right-hand side is an
// unchecked claim and is always reachable (§3.4.3).
func (a *analysis) reachableSet() map[string]bool {
	reachable := make(map[string]bool)
	for changed := true; changed; {
		changed = false
		for _, ri := range a.rules {
			if ri.unsat || reachable[ri.key] {
				continue
			}
			ok := true
			for _, ref := range premises(ri.rule) {
				svc := refService(ri.in, ref)
				if !a.loaded[svc] {
					continue // foreign service not in view: assumed acquirable
				}
				if !reachable[keyOf(ri.in, ref)] {
					ok = false
					break
				}
			}
			if ok {
				reachable[ri.key] = true
				changed = true
			}
		}
	}
	return reachable
}

// checkReachability reports defined roles with no acquisition path
// (R003).
func (a *analysis) checkReachability() {
	reachable := a.reachableSet()
	keys := make([]string, 0, len(a.defined))
	for k := range a.defined {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		site := a.defined[key]
		if reachable[key] {
			continue
		}
		msg := fmt.Sprintf("role %s is unreachable: no rule path from initial credentials can acquire it", key)
		if !site.hasRule {
			msg = fmt.Sprintf("role %s is declared but no entry rule defines it", key)
		}
		a.report(Finding{
			Code: CodeUnreachable, Severity: Warning,
			Service: site.in.Service, File: site.in.File, Line: site.line, Role: key,
			Message: msg,
		})
	}
}

// checkRevocation is the revocation-coverage check (R001) plus the
// inert-star check (R007). A rule needs coverage when it has premises
// to falsify: candidates, an elector, or a group test. Coverage is any
// starred candidate, a starred election (<|* or a starred elector
// reference), a starred group test, or a |> revoker.
func (a *analysis) checkRevocation() {
	for _, ri := range a.rules {
		r := ri.rule
		if ri.unsat {
			continue
		}
		for _, star := range inertStars(r.Constraint, nil) {
			a.report(Finding{
				Code: CodeStaticStar, Severity: Info,
				Service: ri.in.Service, File: ri.in.File, Line: ri.line(), Role: ri.key,
				Message: fmt.Sprintf("membership star on %s has no group test: it is captured once at entry and can never be falsified (§3.2.3)", star),
			})
		}
		needs := len(r.Candidates) > 0 || r.Elector != nil || hasGroupTest(r.Constraint)
		if !needs {
			continue // an unchecked claim; the issuing service revokes directly
		}
		covered := r.ElectStarred || r.Revoker != nil
		for i := range r.Candidates {
			covered = covered || r.Candidates[i].Starred
		}
		if r.Elector != nil {
			covered = covered || r.Elector.Starred
		}
		covered = covered || starredGroupTest(r.Constraint)
		if covered {
			continue
		}
		a.report(Finding{
			Code: CodeUnrevocable, Severity: Error,
			Service: ri.in.Service, File: ri.in.File, Line: ri.line(), Role: ri.key,
			Message: fmt.Sprintf("role %s acquired via rule %d is unrevocable: no premise is a membership rule (star a candidate or group test, use <|*, or add a |> revoker)", ri.key, ri.index),
		})
	}
}

// checkDeadRules reports duplicate rules and rules shadowed by an
// earlier unconditional catch-all for the same role (R004). Rule order
// is precedence (§3.2.2): the first suitable membership is issued.
func (a *analysis) checkDeadRules() {
	type fileRole struct {
		file string
		key  string
	}
	canon := make(map[fileRole]map[string]int) // canonical rule -> line
	catchAll := make(map[fileRole]int)         // line of the catch-all
	for _, ri := range a.rules {
		fr := fileRole{ri.in.File, ri.key}
		c := canonRule(ri.rule)
		if canon[fr] == nil {
			canon[fr] = make(map[string]int)
		}
		if prev, dup := canon[fr][c]; dup {
			a.report(Finding{
				Code: CodeDeadRule, Severity: Warning,
				Service: ri.in.Service, File: ri.in.File, Line: ri.line(), Role: ri.key,
				Message: fmt.Sprintf("rule %d duplicates the rule at line %d", ri.index, prev),
			})
			continue
		}
		canon[fr][c] = ri.line()
		if prev, shadowed := catchAll[fr]; shadowed {
			a.report(Finding{
				Code: CodeDeadRule, Severity: Warning,
				Service: ri.in.Service, File: ri.in.File, Line: ri.line(), Role: ri.key,
				Message: fmt.Sprintf("rule %d is shadowed by the unconditional rule at line %d (first matching rule wins, §3.2.2)", ri.index, prev),
			})
			continue
		}
		if isCatchAll(ri.rule) && !ri.unsat {
			catchAll[fr] = ri.line()
		}
	}
}

// isCatchAll reports an unconditional rule that matches any request for
// its role: no premises, no constraint that could fail, and a head of
// distinct plain variables.
func isCatchAll(r *rdl.Rule) bool {
	if len(r.Candidates) > 0 || r.Elector != nil {
		return false
	}
	if r.Constraint != nil && staticEval(r.Constraint) != triTrue {
		return false
	}
	seen := make(map[string]bool)
	for _, arg := range r.Head.Args {
		if arg.Var == "" || strings.HasPrefix(arg.Var, "@") || seen[arg.Var] {
			return false
		}
		seen[arg.Var] = true
	}
	return true
}

// checkCycles finds strongly connected components of the role
// dependency graph (edges from a rule's head to each premise) and
// reports each cycle once (R006). Cycles are legitimate — the golf
// club's quorum is one — but only when a base-case rule keeps the
// roles reachable, so they are worth an info-level note.
func (a *analysis) checkCycles() {
	// Edges between roles defined in loaded services.
	edges := make(map[string][]string)
	for _, ri := range a.rules {
		for _, ref := range premises(ri.rule) {
			key := keyOf(ri.in, ref)
			if a.defined[key] == nil {
				continue
			}
			edges[ri.key] = append(edges[ri.key], key)
		}
	}
	for _, scc := range stronglyConnected(edges) {
		selfLoop := false
		if len(scc) == 1 {
			for _, to := range edges[scc[0]] {
				if to == scc[0] {
					selfLoop = true
				}
			}
			if !selfLoop {
				continue
			}
		}
		sort.Strings(scc)
		site := a.defined[scc[0]]
		msg := fmt.Sprintf("role dependency cycle: %s", strings.Join(append(scc, scc[0]), " -> "))
		if selfLoop {
			msg = fmt.Sprintf("role %s depends on itself", scc[0])
		}
		a.report(Finding{
			Code: CodeCycle, Severity: Info,
			Service: site.in.Service, File: site.in.File, Line: site.line, Role: scc[0],
			Message: msg,
		})
	}
}

// stronglyConnected is Tarjan's algorithm; only components of size > 1
// are returned (self-loops are detected by the caller).
func stronglyConnected(edges map[string][]string) [][]string {
	nodes := make([]string, 0, len(edges))
	seen := make(map[string]bool)
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range edges {
		add(from)
		for _, to := range tos {
			add(to)
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var out [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := append([]string(nil), edges[v]...)
		sort.Strings(tos)
		for _, w := range tos {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				out = append(out, scc)
			} else if len(scc) == 1 {
				// Preserve single nodes with self-loops for the caller.
				for _, to := range edges[scc[0]] {
					if to == scc[0] {
						out = append(out, scc)
						break
					}
				}
			}
		}
	}
	for _, n := range nodes {
		if _, visited := index[n]; !visited {
			strongconnect(n)
		}
	}
	return out
}
