package analyze

import (
	"fmt"
	"sort"
	"strings"

	"oasis/internal/rdl"
)

// tri is a three-valued truth: most constraints cannot be decided
// statically (group membership, server-specific functions), but literal
// comparisons and self-comparisons can.
type tri int

const (
	triUnknown tri = iota
	triFalse
	triTrue
)

func triNot(t tri) tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	default:
		return triUnknown
	}
}

func triAnd(a, b tri) tri {
	if a == triFalse || b == triFalse {
		return triFalse
	}
	if a == triTrue && b == triTrue {
		return triTrue
	}
	return triUnknown
}

func triOr(a, b tri) tri {
	if a == triTrue || b == triTrue {
		return triTrue
	}
	if a == triFalse && b == triFalse {
		return triFalse
	}
	return triUnknown
}

// staticEval decides a constraint where literals allow it; nil
// constraints are vacuously true.
func staticEval(e rdl.Expr) tri {
	if e == nil {
		return triTrue
	}
	switch x := e.(type) {
	case rdl.AndExpr:
		return triAnd(staticEval(x.L), staticEval(x.R))
	case rdl.OrExpr:
		return triOr(staticEval(x.L), staticEval(x.R))
	case rdl.NotExpr:
		return triNot(staticEval(x.E))
	case rdl.StarExpr:
		return staticEval(x.E)
	case rdl.CmpExpr:
		return staticCmp(x)
	default:
		return triUnknown
	}
}

func staticCmp(x rdl.CmpExpr) tri {
	lt, rt := x.L.Term, x.R.Term
	if lt == nil || rt == nil {
		return triUnknown
	}
	// A variable compared with itself.
	if lt.Var != "" && lt.Var == rt.Var {
		switch x.Op {
		case rdl.CmpEq, rdl.CmpLe, rdl.CmpGe:
			return triTrue
		case rdl.CmpNeq, rdl.CmpLt, rdl.CmpGt:
			return triFalse
		}
		return triUnknown
	}
	switch {
	case lt.IsInt && rt.IsInt:
		return cmpOrdered(x.Op, compareInt(lt.IntLit, rt.IntLit))
	case lt.IsStr && rt.IsStr:
		return cmpOrdered(x.Op, strings.Compare(lt.StrLit, rt.StrLit))
	case lt.IsSet && rt.IsSet:
		return cmpSets(x.Op, lt.SetLit, rt.SetLit)
	}
	// A literal against a variable (or mixed kinds the checker already
	// rejected) cannot be decided here.
	return triUnknown
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpOrdered(op rdl.CmpOp, c int) tri {
	var ok bool
	switch op {
	case rdl.CmpEq:
		ok = c == 0
	case rdl.CmpNeq:
		ok = c != 0
	case rdl.CmpLt:
		ok = c < 0
	case rdl.CmpLe:
		ok = c <= 0
	case rdl.CmpGt:
		ok = c > 0
	case rdl.CmpGe:
		ok = c >= 0
	default:
		return triUnknown
	}
	if ok {
		return triTrue
	}
	return triFalse
}

// cmpSets compares set literals as rune sets: = / != are set equality,
// <= / >= the subset / superset tests of figure 3.3.
func cmpSets(op rdl.CmpOp, a, b string) tri {
	as, bs := runeSet(a), runeSet(b)
	var ok bool
	switch op {
	case rdl.CmpEq:
		ok = as == bs
	case rdl.CmpNeq:
		ok = as != bs
	case rdl.CmpLe:
		ok = subset(as, bs)
	case rdl.CmpGe:
		ok = subset(bs, as)
	default:
		return triUnknown
	}
	if ok {
		return triTrue
	}
	return triFalse
}

func runeSet(s string) string {
	seen := make(map[rune]bool)
	var rs []rune
	for _, r := range s {
		if !seen[r] {
			seen[r] = true
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	return string(rs)
}

func subset(a, b string) bool {
	for _, r := range a {
		if !strings.ContainsRune(b, r) {
			return false
		}
	}
	return true
}

// hasGroupTest reports whether the expression contains an `in` test —
// the only condition kind whose truth can change after entry without a
// parameter changing (§3.2.3).
func hasGroupTest(e rdl.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case rdl.AndExpr:
		return hasGroupTest(x.L) || hasGroupTest(x.R)
	case rdl.OrExpr:
		return hasGroupTest(x.L) || hasGroupTest(x.R)
	case rdl.NotExpr:
		return hasGroupTest(x.E)
	case rdl.StarExpr:
		return hasGroupTest(x.E)
	case rdl.InExpr:
		return true
	default:
		return false
	}
}

// starredGroupTest reports whether some starred sub-expression contains
// a group test — i.e. the constraint contributes a dynamic membership
// rule wired to the credential-record graph.
func starredGroupTest(e rdl.Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case rdl.AndExpr:
		return starredGroupTest(x.L) || starredGroupTest(x.R)
	case rdl.OrExpr:
		return starredGroupTest(x.L) || starredGroupTest(x.R)
	case rdl.NotExpr:
		return starredGroupTest(x.E)
	case rdl.StarExpr:
		return hasGroupTest(x.E)
	default:
		return false
	}
}

// inertStars appends the rendering of every starred sub-expression that
// contains no group test: such a star is captured once at entry time
// and can never be falsified afterwards.
func inertStars(e rdl.Expr, out []string) []string {
	switch x := e.(type) {
	case nil:
		return out
	case rdl.AndExpr:
		return inertStars(x.R, inertStars(x.L, out))
	case rdl.OrExpr:
		return inertStars(x.R, inertStars(x.L, out))
	case rdl.NotExpr:
		return inertStars(x.E, out)
	case rdl.StarExpr:
		if !hasGroupTest(x.E) {
			return append(out, x.String())
		}
		return inertStars(x.E, out)
	default:
		return out
	}
}

// canonRule renders a rule with variables renamed v0, v1, ... in order
// of first appearance, so alpha-equivalent rules compare equal. The
// reserved @host variable keeps its identity (it is pre-bound).
func canonRule(r *rdl.Rule) string {
	names := make(map[string]string)
	v := func(name string) string {
		if name == "@host" {
			return name
		}
		c, ok := names[name]
		if !ok {
			c = fmt.Sprintf("v%d", len(names))
			names[name] = c
		}
		return c
	}
	var b strings.Builder
	canonRef(&b, r.Head, v)
	b.WriteString(" <- ")
	for i := range r.Candidates {
		if i > 0 {
			b.WriteString(" & ")
		}
		canonRef(&b, r.Candidates[i], v)
	}
	if r.Elector != nil {
		b.WriteString(" <|")
		if r.ElectStarred {
			b.WriteByte('*')
		}
		b.WriteByte(' ')
		canonRef(&b, *r.Elector, v)
	}
	if r.Revoker != nil {
		b.WriteString(" |>")
		if r.RevokeStar {
			b.WriteByte('*')
		}
		b.WriteByte(' ')
		canonRef(&b, *r.Revoker, v)
	}
	if r.Constraint != nil {
		b.WriteString(" : ")
		canonExpr(&b, r.Constraint, v)
	}
	return b.String()
}

func canonRef(b *strings.Builder, ref rdl.RoleRef, v func(string) string) {
	b.WriteString(ref.Qualified())
	if len(ref.Args) > 0 {
		b.WriteByte('(')
		for i, a := range ref.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			canonTerm(b, a, v)
		}
		b.WriteByte(')')
	}
	if ref.Starred {
		b.WriteByte('*')
	}
}

func canonTerm(b *strings.Builder, t rdl.Term, v func(string) string) {
	if t.Var != "" {
		b.WriteString(v(t.Var))
		return
	}
	b.WriteString(t.String())
}

func canonExpr(b *strings.Builder, e rdl.Expr, v func(string) string) {
	switch x := e.(type) {
	case rdl.AndExpr:
		b.WriteByte('(')
		canonExpr(b, x.L, v)
		b.WriteString(" and ")
		canonExpr(b, x.R, v)
		b.WriteByte(')')
	case rdl.OrExpr:
		b.WriteByte('(')
		canonExpr(b, x.L, v)
		b.WriteString(" or ")
		canonExpr(b, x.R, v)
		b.WriteByte(')')
	case rdl.NotExpr:
		b.WriteString("not ")
		canonExpr(b, x.E, v)
	case rdl.StarExpr:
		b.WriteByte('(')
		canonExpr(b, x.E, v)
		b.WriteString(")*")
	case rdl.InExpr:
		if x.Call != nil {
			canonCall(b, x.Call, v)
		} else {
			canonTerm(b, x.T, v)
		}
		if x.Neg {
			b.WriteString(" not in ")
		} else {
			b.WriteString(" in ")
		}
		b.WriteString(x.Group)
	case rdl.CmpExpr:
		canonOperand(b, x.L, v)
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		canonOperand(b, x.R, v)
	case rdl.CallExpr:
		canonCall(b, x.Call, v)
	}
}

func canonOperand(b *strings.Builder, o rdl.Operand, v func(string) string) {
	if o.Call != nil {
		canonCall(b, o.Call, v)
		return
	}
	canonTerm(b, *o.Term, v)
}

func canonCall(b *strings.Builder, c *rdl.Call, v func(string) string) {
	b.WriteString(c.Fn)
	b.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		canonOperand(b, a, v)
	}
	b.WriteByte(')')
}
