package rdl

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return f
}

func TestParseConferenceRolefile(t *testing.T) {
	// Figure 3.1.
	src := `
import Login.userid
def Chair()
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
`
	f := parseOK(t, src)
	if len(f.Imports) != 1 || f.Imports[0].Service != "Login" || f.Imports[0].Type != "userid" {
		t.Fatalf("imports = %+v", f.Imports)
	}
	if len(f.Rules) != 2 {
		t.Fatalf("rules = %d", len(f.Rules))
	}
	chair := f.Rules[0]
	if chair.Head.Name != "Chair" || len(chair.Head.Args) != 0 {
		t.Fatalf("head = %+v", chair.Head)
	}
	if len(chair.Candidates) != 1 || chair.Candidates[0].Service != "Login" ||
		chair.Candidates[0].Name != "LoggedOn" {
		t.Fatalf("candidates = %+v", chair.Candidates)
	}
	if !chair.Candidates[0].Args[0].IsStr || chair.Candidates[0].Args[0].StrLit != "jmb" {
		t.Fatalf("literal arg = %+v", chair.Candidates[0].Args[0])
	}

	member := f.Rules[1]
	if member.Elector == nil || member.Elector.Name != "Chair" {
		t.Fatalf("elector = %+v", member.Elector)
	}
	if !member.ElectStarred {
		t.Fatal("<|* star lost")
	}
	if !member.Candidates[0].Starred {
		t.Fatal("candidate star lost")
	}
	star, ok := member.Constraint.(StarExpr)
	if !ok {
		t.Fatalf("constraint = %T", member.Constraint)
	}
	in, ok := star.E.(InExpr)
	if !ok || in.Group != "staff" || in.T.Var != "u" {
		t.Fatalf("starred expr = %+v", star.E)
	}
}

func TestParseRevokeOperator(t *testing.T) {
	// §3.3.2 open meeting.
	src := `Member(p) <- Person(p) |>* Chair`
	f := parseOK(t, src)
	r := f.Rules[0]
	if r.Revoker == nil || r.Revoker.Name != "Chair" || !r.RevokeStar {
		t.Fatalf("revoker = %+v star=%v", r.Revoker, r.RevokeStar)
	}
}

func TestParseEmptyPremises(t *testing.T) {
	// §3.4.3: Login(0, u) <-   (an unchecked claim).
	f := parseOK(t, "Login(0, u) <-")
	r := f.Rules[0]
	if len(r.Candidates) != 0 || r.Elector != nil || r.Constraint != nil {
		t.Fatalf("rule = %+v", r)
	}
	if !r.Head.Args[0].IsInt || r.Head.Args[0].IntLit != 0 {
		t.Fatalf("head args = %+v", r.Head.Args)
	}
}

func TestParseDeclWithTypes(t *testing.T) {
	src := `def Rights(r) r: {eaf}
def Login(l, u) l: integer`
	f := parseOK(t, src)
	if len(f.Decls) != 2 {
		t.Fatalf("decls = %d", len(f.Decls))
	}
	d := f.Decls[0]
	if d.Role != "Rights" || d.Types["r"].Universe != "eaf" {
		t.Fatalf("decl = %+v", d)
	}
	if f.Decls[1].Types["l"].Kind.String() != "Integer" {
		t.Fatalf("decl = %+v", f.Decls[1])
	}
}

func TestParseConstraintGrammar(t *testing.T) {
	src := `R(a, b) <- S(a, b) : a != b and (a in staff or b not in students) and a < 5`
	f := parseOK(t, src)
	c := f.Rules[0].Constraint
	// Shape: And(And(a != b, Or(in, not-in)), a < 5)
	outer, ok := c.(AndExpr)
	if !ok {
		t.Fatalf("constraint = %T", c)
	}
	if _, ok := outer.R.(CmpExpr); !ok {
		t.Fatalf("right = %T", outer.R)
	}
	inner, ok := outer.L.(AndExpr)
	if !ok {
		t.Fatalf("left = %T", outer.L)
	}
	if _, ok := inner.L.(CmpExpr); !ok {
		t.Fatalf("inner.L = %T", inner.L)
	}
	or, ok := inner.R.(OrExpr)
	if !ok {
		t.Fatalf("inner.R = %T", inner.R)
	}
	if or.R.(InExpr).Neg != true {
		t.Fatal("not-in lost negation")
	}
}

func TestParseFunctionCallConstraint(t *testing.T) {
	// §3.3.3: r = unixacl("rjh21=rwx staff=rx other=r", u)
	src := `UseFile(r) <- LoggedOn(u) : r = unixacl("rjh21=rwx staff=rx other=r", u)`
	f := parseOK(t, src)
	cmp, ok := f.Rules[0].Constraint.(CmpExpr)
	if !ok {
		t.Fatalf("constraint = %T", f.Rules[0].Constraint)
	}
	if cmp.R.Call == nil || cmp.R.Call.Fn != "unixacl" || len(cmp.R.Call.Args) != 2 {
		t.Fatalf("call = %+v", cmp.R.Call)
	}
}

func TestParseBooleanFunctionAtom(t *testing.T) {
	// §3.3.3: AccessFile rules use InDir(g, d) and Root(d).
	src := `AccessFile(r, f) <- ACL(r, f) : InDir(f, d) and Root(d)`
	f := parseOK(t, src)
	and, ok := f.Rules[0].Constraint.(AndExpr)
	if !ok {
		t.Fatalf("constraint = %T", f.Rules[0].Constraint)
	}
	if _, ok := and.L.(CallExpr); !ok {
		t.Fatalf("left = %T", and.L)
	}
}

func TestParseSetLiteralArg(t *testing.T) {
	src := `Rights({ae}) <- Author`
	f := parseOK(t, src)
	a := f.Rules[0].Head.Args[0]
	if !a.IsSet || a.SetLit != "ae" {
		t.Fatalf("arg = %+v", a)
	}
}

func TestParseThreeComponentRef(t *testing.T) {
	src := `R <- FileSvc.acl17.UseAcl(rights)`
	f := parseOK(t, src)
	c := f.Rules[0].Candidates[0]
	if c.Service != "FileSvc" || c.Rolefile != "acl17" || c.Name != "UseAcl" {
		t.Fatalf("ref = %+v", c)
	}
}

func TestParseComments(t *testing.T) {
	src := `# rolefile for the meeting
Chair <- Person("jmb") // the organiser
`
	f := parseOK(t, src)
	if len(f.Rules) != 1 {
		t.Fatalf("rules = %d", len(f.Rules))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"Chair <-- Person",           // bad token
		"Chair Person",               // missing arrow
		`Member(u <- Person(u)`,      // unbalanced parens
		"def 3(x)",                   // bad name
		"import Login",               // missing .type
		"R <- S : x !",               // dangling !
		"R <- S : {ae} in g",         // set literal in group test? actually lexes; in needs term — set is a term, allowed? T is set literal, allowed at parse; fine
		"Svc.Role(u) <- Person(u)",   // non-local head
		"R* <- S",                    // starred head
		"def R(x) y: integer",        // ascription for non-parameter
		"R <- S : x ~ y",             // unknown char
		`R <- S : x = "unterminated`, // unterminated string
	}
	for _, src := range cases {
		if src == "R <- S : {ae} in g" {
			continue // permitted by grammar
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestParseMultipleStatementsSemicolon(t *testing.T) {
	f := parseOK(t, "A <- B ; C <- D")
	if len(f.Rules) != 2 {
		t.Fatalf("rules = %d", len(f.Rules))
	}
}

func TestRuleString(t *testing.T) {
	src := `Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*`
	f := parseOK(t, src)
	s := f.Rules[0].String()
	for _, want := range []string{"Member(u)", "<-", "Login.LoggedOn(u,h)*", "<|*", "Chair", "(u in staff)*"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestAxiomRendering(t *testing.T) {
	f := parseOK(t, `Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*`)
	ax := Axiom(f.Rules[0])
	for _, want := range []string{"c owns Login.LoggedOn(u,h)*", "c <| c'", "c' owns Chair", "c owns Member(u)"} {
		if !strings.Contains(ax, want) {
			t.Errorf("Axiom() = %q missing %q", ax, want)
		}
	}
}
