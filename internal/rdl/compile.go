package rdl

import (
	"fmt"

	"oasis/internal/value"
)

// RuleSig supplies the resolved argument types for one rule's role
// references — the service's entry-time view (gettypes already done).
// Any field may be nil when the types are unknown; literal arguments in
// a reference with unknown types compile to unresolvable slots.
type RuleSig struct {
	Head       []value.Type
	Candidates [][]value.Type
	Elector    []value.Type
	Revoker    []value.Type
}

// Compile lowers a checked rolefile into a Program. sigs, when non-nil,
// gives authoritative per-rule signatures (one entry per rule, in
// order); when nil, signatures are derived from the rolefile itself —
// local roles from rf.Types, foreign references from rf.Foreign, best
// effort. Compilation preserves rule order: the program applies rules
// with exactly the interpreter's precedence (§3.2.2).
func Compile(rf *Rolefile, sigs []RuleSig) (*Program, error) {
	if sigs != nil && len(sigs) != len(rf.File.Rules) {
		return nil, fmt.Errorf("rdl: %d signatures for %d rules", len(sigs), len(rf.File.Rules))
	}
	c := &compiler{
		p:        &Program{Rolefile: rf, ByHead: make(map[string][]int)},
		constIdx: make(map[value.Value]int32),
		setIdx:   make(map[string]int32),
	}
	for i, rule := range rf.File.Rules {
		var sig RuleSig
		if sigs != nil {
			sig = sigs[i]
		} else {
			sig = c.deriveSig(rf, rule)
		}
		cr, err := c.rule(i, rule, sig)
		if err != nil {
			return nil, fmt.Errorf("rdl: rule %d (%s): %v", i+1, rule.Head.Name, err)
		}
		c.p.Rules = append(c.p.Rules, cr)
		c.p.ByHead[rule.Head.Name] = append(c.p.ByHead[rule.Head.Name], i)
		if n := len(cr.Regs); n > c.p.MaxRegs {
			c.p.MaxRegs = n
		}
	}
	return c.p, nil
}

type compiler struct {
	p        *Program
	constIdx map[value.Value]int32
	setIdx   map[string]int32
}

// deriveSig resolves reference signatures from the rolefile alone:
// local roles are always known; foreign ones come from the Foreign map
// when checking recorded them.
func (c *compiler) deriveSig(rf *Rolefile, rule *Rule) RuleSig {
	refTypes := func(ref *RoleRef) []value.Type {
		if ref == nil {
			return nil
		}
		if ref.Local() {
			return rf.Types[ref.Name]
		}
		return rf.Foreign[ForeignKey(ref.Service, ref.Rolefile, ref.Name)]
	}
	sig := RuleSig{
		Head:    refTypes(&rule.Head),
		Elector: refTypes(rule.Elector),
		Revoker: refTypes(rule.Revoker),
	}
	for i := range rule.Candidates {
		sig.Candidates = append(sig.Candidates, refTypes(&rule.Candidates[i]))
	}
	return sig
}

// ruleCompiler holds per-rule state: the register file layout and the
// instruction stream under construction.
type ruleCompiler struct {
	c      *compiler
	regs   []string
	regIdx map[string]int32
	code   []Instr
}

func (c *compiler) rule(i int, rule *Rule, sig RuleSig) (CompiledRule, error) {
	rc := &ruleCompiler{
		c: c,
		// Register 0 is always @host: the request environment binds it
		// before any rule applies (§3.4.3), so env snapshots include it.
		regs:   []string{"@host"},
		regIdx: map[string]int32{"@host": 0},
	}
	cr := CompiledRule{
		Index:    i,
		Rule:     rule,
		Election: rule.Elector != nil,
		Head:     rc.refPlan(&rule.Head, sig.Head),
	}
	if len(sig.Candidates) == len(rule.Candidates) {
		for ci := range rule.Candidates {
			cr.Cands = append(cr.Cands, rc.refPlan(&rule.Candidates[ci], sig.Candidates[ci]))
		}
	} else {
		for ci := range rule.Candidates {
			cr.Cands = append(cr.Cands, rc.refPlan(&rule.Candidates[ci], nil))
		}
	}
	if rule.Constraint != nil {
		if err := rc.expr(rule.Constraint, false); err != nil {
			return CompiledRule{}, err
		}
		cr.Code = rc.code
	}
	cr.Regs = rc.regs
	return cr, nil
}

// regFor returns the register slot of a variable, allocating on first
// use. Allocation order follows the interpreter's binding flow: head
// arguments, then candidates left to right, then constraint operands.
func (rc *ruleCompiler) regFor(name string) int32 {
	if r, ok := rc.regIdx[name]; ok {
		return r
	}
	r := int32(len(rc.regs))
	rc.regs = append(rc.regs, name)
	rc.regIdx[name] = r
	return r
}

// refPlan compiles a role reference's argument list against its
// signature. Literals are coerced at compile time; a literal whose type
// is unknown or uncoercible becomes an unresolvable slot that never
// matches and never instantiates — the interpreter reports the same
// situation as a per-use coercion error, which its callers treat as
// "rule not applicable".
func (rc *ruleCompiler) refPlan(ref *RoleRef, types []value.Type) RefPlan {
	rp := RefPlan{
		Service:  ref.Service,
		Rolefile: ref.Rolefile,
		Name:     ref.Name,
		Starred:  ref.Starred,
		Args:     make([]ArgSlot, len(ref.Args)),
	}
	if len(types) == len(ref.Args) {
		rp.Types = types
	}
	for i, a := range ref.Args {
		if a.Var != "" {
			rp.Args[i] = ArgSlot{Reg: rc.regFor(a.Var), Const: -1}
			continue
		}
		rp.Args[i] = ArgSlot{Reg: -1, Const: -1}
		if rp.Types == nil {
			continue
		}
		lit, err := LiteralValue(a, rp.Types[i])
		if err != nil {
			continue
		}
		rp.Args[i].Const = rc.c.constFor(lit)
	}
	return rp
}

func (c *compiler) constFor(v value.Value) int32 {
	if i, ok := c.constIdx[v]; ok {
		return i
	}
	i := int32(len(c.p.Consts))
	c.p.Consts = append(c.p.Consts, v)
	c.constIdx[v] = i
	return i
}

func (c *compiler) setLitFor(members string) int32 {
	if i, ok := c.setIdx[members]; ok {
		return i
	}
	i := int32(len(c.p.SetLits))
	c.p.SetLits = append(c.p.SetLits, members)
	c.setIdx[members] = i
	return i
}

func (rc *ruleCompiler) emit(in Instr) int {
	rc.code = append(rc.code, in)
	return len(rc.code) - 1
}

func (rc *ruleCompiler) patch(j int) { rc.code[j].A = int32(len(rc.code)) }

// expr compiles a constraint expression to instructions leaving the
// verdict in the accumulator. inNot mirrors the interpreter's flag: a
// surrounding negation suppresses star capture and is NOT toggled by
// further nesting.
func (rc *ruleCompiler) expr(e Expr, inNot bool) error {
	switch x := e.(type) {
	case AndExpr:
		if err := rc.expr(x.L, inNot); err != nil {
			return err
		}
		j := rc.emit(Instr{Op: OpJumpIfFalse})
		if err := rc.expr(x.R, inNot); err != nil {
			return err
		}
		rc.patch(j)
		return nil
	case OrExpr:
		if err := rc.expr(x.L, inNot); err != nil {
			return err
		}
		j := rc.emit(Instr{Op: OpJumpIfTrue})
		if err := rc.expr(x.R, inNot); err != nil {
			return err
		}
		rc.patch(j)
		return nil
	case NotExpr:
		if err := rc.expr(x.E, true); err != nil {
			return err
		}
		rc.emit(Instr{Op: OpNot})
		return nil
	case StarExpr:
		if err := rc.expr(x.E, inNot); err != nil {
			return err
		}
		if !inNot {
			j := rc.emit(Instr{Op: OpJumpIfFalse})
			rc.emit(rc.capture(x.E))
			rc.patch(j)
		}
		return nil
	case InExpr:
		l, err := rc.inOperand(x)
		if err != nil {
			return err
		}
		rc.emit(Instr{Op: OpGroupTest, L: l, Grp: x.Group, Neg: x.Neg, Src: x.String()})
		return nil
	case CmpExpr:
		l, err := rc.operand(x.L)
		if err != nil {
			return err
		}
		r, err := rc.operand(x.R)
		if err != nil {
			return err
		}
		rc.emit(Instr{Op: OpCmp, Cmp: x.Op, L: l, R: r})
		return nil
	case CallExpr:
		idx, err := rc.call(x.Call)
		if err != nil {
			return err
		}
		rc.emit(Instr{Op: OpBoolCall, A: idx})
		return nil
	default:
		return fmt.Errorf("unknown expression %T", e)
	}
}

// capture builds the OpStarCapture for a starred sub-expression that
// just held: the group-test form when the expression is a direct group
// test (falling back to a generic capture at run time if its operand
// fails to re-evaluate), the generic form otherwise — exactly the two
// shapes the interpreter's record() emits.
func (rc *ruleCompiler) capture(e Expr) Instr {
	if in, ok := e.(InExpr); ok {
		if l, err := rc.inOperand(in); err == nil {
			return Instr{Op: OpStarCapture, CapGroup: true, L: l, Grp: in.Group, Neg: in.Neg, Capture: e}
		}
	}
	return Instr{Op: OpStarCapture, Capture: e}
}

func (rc *ruleCompiler) inOperand(x InExpr) (operand, error) {
	if x.Call != nil {
		idx, err := rc.call(x.Call)
		if err != nil {
			return operand{}, err
		}
		return operand{Kind: oCall, Idx: idx}, nil
	}
	return rc.term(x.T)
}

func (rc *ruleCompiler) operand(o Operand) (operand, error) {
	if o.Call != nil {
		idx, err := rc.call(o.Call)
		if err != nil {
			return operand{}, err
		}
		return operand{Kind: oCall, Idx: idx}, nil
	}
	return rc.term(*o.Term)
}

// term compiles a constraint term. Literals follow the interpreter's
// untyped rules: integers and strings directly, set literals deferred
// to a typed context at run time (oSetLit).
func (rc *ruleCompiler) term(t Term) (operand, error) {
	switch {
	case t.Var != "":
		return operand{Kind: oReg, Idx: rc.regFor(t.Var)}, nil
	case t.IsInt:
		return operand{Kind: oConst, Idx: rc.c.constFor(value.Int(t.IntLit))}, nil
	case t.IsStr:
		return operand{Kind: oConst, Idx: rc.c.constFor(value.Str(t.StrLit))}, nil
	case t.IsSet:
		return operand{Kind: oSetLit, Idx: rc.c.setLitFor(t.SetLit)}, nil
	default:
		return operand{}, fmt.Errorf("empty term")
	}
}

func (rc *ruleCompiler) call(cl *Call) (int32, error) {
	cp := callPlan{Fn: cl.Fn, Args: make([]operand, len(cl.Args))}
	for i, a := range cl.Args {
		o, err := rc.operand(a)
		if err != nil {
			return 0, err
		}
		cp.Args[i] = o
	}
	idx := int32(len(rc.c.p.Calls))
	rc.c.p.Calls = append(rc.c.p.Calls, cp)
	return idx, nil
}
