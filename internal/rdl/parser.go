package rdl

import (
	"fmt"
	"strconv"

	"oasis/internal/value"
)

// ParseConstraint parses a bare constraint expression (figure 3.3),
// used by derived languages such as ERDL (chapter 7).
func ParseConstraint(src string) (Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF && p.cur().kind != tokNewline {
		return nil, p.errf(p.cur(), "trailing input after constraint")
	}
	return e, nil
}

// Parse parses rolefile source text into a File. Types are not resolved
// here; run Check on the result to perform inference and produce an
// executable Rolefile.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.file()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) accept(k tokKind) (token, bool) {
	if p.cur().kind == k {
		return p.advance(), true
	}
	return token{}, false
}

func (p *parser) expect(k tokKind) (token, error) {
	if t, ok := p.accept(k); ok {
		return t, nil
	}
	t := p.cur()
	return token{}, &SyntaxError{Line: t.line, Col: t.col,
		Msg: fmt.Sprintf("expected %v, found %v %q", k, t.kind, t.text)}
}

func (p *parser) errf(t token, format string, args ...any) error {
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipNewlines() {
	for p.cur().kind == tokNewline {
		p.advance()
	}
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for {
		p.skipNewlines()
		if p.cur().kind == tokEOF {
			return f, nil
		}
		if err := p.statement(f); err != nil {
			return nil, err
		}
		if p.cur().kind != tokEOF {
			if _, err := p.expect(tokNewline); err != nil {
				return nil, err
			}
		}
	}
}

func (p *parser) statement(f *File) error {
	t := p.cur()
	if t.kind == tokIdent {
		switch t.text {
		case "def":
			return p.declStatement(f)
		case "import":
			return p.importStatement(f)
		}
	}
	return p.entryStatement(f)
}

// importStatement parses "import Service.typename".
func (p *parser) importStatement(f *File) error {
	p.advance() // import
	svc, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	typ, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	f.Imports = append(f.Imports, Import{Service: svc.text, Type: typ.text})
	return nil
}

// declStatement parses "def Role(a, b) a: type b: type".
func (p *parser) declStatement(f *File) error {
	kw := p.advance() // def
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	d := &Decl{Role: name.text, Types: make(map[string]value.Type), Line: kw.line}
	if _, ok := p.accept(tokLParen); ok {
		for p.cur().kind != tokRParen {
			id, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			d.Params = append(d.Params, id.text)
			if _, ok := p.accept(tokComma); !ok {
				break
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
	}
	for p.cur().kind == tokIdent {
		id := p.advance()
		if _, err := p.expect(tokColon); err != nil {
			return err
		}
		typ, err := p.typeExpr()
		if err != nil {
			return err
		}
		found := false
		for _, prm := range d.Params {
			if prm == id.text {
				found = true
				break
			}
		}
		if !found {
			return p.errf(id, "type ascription for %q, which is not a parameter of %s", id.text, d.Role)
		}
		d.Types[id.text] = typ
	}
	f.Decls = append(f.Decls, d)
	return nil
}

// typeExpr parses "integer", "string", "{rwx}", "name" or "Svc.name".
func (p *parser) typeExpr() (value.Type, error) {
	t := p.cur()
	switch t.kind {
	case tokSet:
		p.advance()
		return value.SetType(t.text), nil
	case tokIdent:
		p.advance()
		switch t.text {
		case "integer", "Integer", "int":
			return value.IntType, nil
		case "string", "String":
			return value.StringType, nil
		}
		name := t.text
		if _, ok := p.accept(tokDot); ok {
			sub, err := p.expect(tokIdent)
			if err != nil {
				return value.Type{}, err
			}
			name = name + "." + sub.text
		}
		return value.ObjectType(name), nil
	default:
		return value.Type{}, p.errf(t, "expected a type, found %v %q", t.kind, t.text)
	}
}

// entryStatement parses a role entry statement.
func (p *parser) entryStatement(f *File) error {
	head, err := p.roleRef()
	if err != nil {
		return err
	}
	if head.Service != "" || head.Rolefile != "" {
		return p.errf(p.cur(), "role being defined must be local, got %s", head.Qualified())
	}
	if head.Starred {
		return p.errf(p.cur(), "the role being defined cannot carry a membership-rule star")
	}
	arrow, err := p.expect(tokArrow)
	if err != nil {
		return err
	}
	r := &Rule{Head: head, Line: arrow.line}

	// Candidate role references, '&'-separated; may be empty (an
	// unchecked claim, like the paper's Visitor login).
	if p.cur().kind == tokIdent {
		for {
			ref, err := p.roleRef()
			if err != nil {
				return err
			}
			r.Candidates = append(r.Candidates, ref)
			if _, ok := p.accept(tokAmp); !ok {
				break
			}
		}
	}
	if _, ok := p.accept(tokElect); ok {
		if _, star := p.accept(tokStar); star {
			r.ElectStarred = true
		}
		ref, err := p.roleRef()
		if err != nil {
			return err
		}
		r.Elector = &ref
	}
	if _, ok := p.accept(tokRevoke); ok {
		if _, star := p.accept(tokStar); star {
			r.RevokeStar = true
		}
		ref, err := p.roleRef()
		if err != nil {
			return err
		}
		r.Revoker = &ref
	}
	if _, ok := p.accept(tokColon); ok {
		e, err := p.orExpr()
		if err != nil {
			return err
		}
		r.Constraint = e
	}
	f.Rules = append(f.Rules, r)
	return nil
}

// roleRef parses [Svc '.' [Rolefile '.']] Name ['(' terms ')'] ['*'].
func (p *parser) roleRef() (RoleRef, error) {
	first, err := p.expect(tokIdent)
	if err != nil {
		return RoleRef{}, err
	}
	ref := RoleRef{Name: first.text, Line: first.line}
	if _, ok := p.accept(tokDot); ok {
		second, err := p.expect(tokIdent)
		if err != nil {
			return RoleRef{}, err
		}
		ref.Service = first.text
		ref.Name = second.text
		if _, ok := p.accept(tokDot); ok {
			third, err := p.expect(tokIdent)
			if err != nil {
				return RoleRef{}, err
			}
			ref.Rolefile = ref.Name
			ref.Name = third.text
		}
	}
	if _, ok := p.accept(tokLParen); ok {
		for p.cur().kind != tokRParen {
			t, err := p.term()
			if err != nil {
				return RoleRef{}, err
			}
			ref.Args = append(ref.Args, t)
			if _, ok := p.accept(tokComma); !ok {
				break
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return RoleRef{}, err
		}
	}
	if _, ok := p.accept(tokStar); ok {
		ref.Starred = true
	}
	return ref, nil
}

// term parses a variable or literal.
func (p *parser) term() (Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.advance()
		return Term{Var: t.text, Line: t.line}, nil
	case tokNumber:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Term{}, p.errf(t, "bad integer literal %q", t.text)
		}
		return Term{IsInt: true, IntLit: n, Line: t.line}, nil
	case tokString:
		p.advance()
		return Term{IsStr: true, StrLit: t.text, Line: t.line}, nil
	case tokSet:
		p.advance()
		return Term{IsSet: true, SetLit: t.text, Line: t.line}, nil
	default:
		return Term{}, p.errf(t, "expected an argument, found %v %q", t.kind, t.text)
	}
}

// Constraint grammar (figure 3.3), with 'and' binding tighter than 'or'
// and an optional '*' membership-rule annotation on parenthesised
// sub-expressions and atoms.

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokIdent && p.cur().text == "or" {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for (p.cur().kind == tokIdent && p.cur().text == "and") || p.cur().kind == tokAmp {
		p.advance()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.cur().kind == tokIdent && p.cur().text == "not" && p.peek().kind == tokLParen {
		p.advance()
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	if _, ok := p.accept(tokLParen); ok {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, ok := p.accept(tokStar); ok {
			return StarExpr{E: e}, nil
		}
		return e, nil
	}
	return p.atomExpr()
}

// atomExpr parses an in-test, a comparison or a boolean call, with an
// optional trailing star.
func (p *parser) atomExpr() (Expr, error) {
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	var e Expr
	t := p.cur()
	switch {
	case t.kind == tokIdent && (t.text == "in" || t.text == "not"):
		neg := false
		if t.text == "not" {
			p.advance()
			if n, err := p.expect(tokIdent); err != nil || n.text != "in" {
				return nil, p.errf(t, "expected 'in' after 'not'")
			}
			neg = true
		} else {
			p.advance()
		}
		grp, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if l.Term != nil {
			e = InExpr{T: *l.Term, Group: grp.text, Neg: neg}
		} else {
			e = InExpr{Call: l.Call, Group: grp.text, Neg: neg}
		}
	case t.kind == tokEq || t.kind == tokNeq || t.kind == tokLt ||
		t.kind == tokLe || t.kind == tokGt || t.kind == tokGe:
		p.advance()
		r, err := p.operand()
		if err != nil {
			return nil, err
		}
		e = CmpExpr{Op: cmpOpOf(t.kind), L: l, R: r}
	default:
		if l.Call == nil {
			return nil, p.errf(t, "expected a comparison, 'in' test or boolean call")
		}
		e = CallExpr{Call: l.Call}
	}
	if _, ok := p.accept(tokStar); ok {
		return StarExpr{E: e}, nil
	}
	return e, nil
}

func cmpOpOf(k tokKind) CmpOp {
	switch k {
	case tokEq:
		return CmpEq
	case tokNeq:
		return CmpNeq
	case tokLt:
		return CmpLt
	case tokLe:
		return CmpLe
	case tokGt:
		return CmpGt
	default:
		return CmpGe
	}
}

// operand parses a term or a function call.
func (p *parser) operand() (Operand, error) {
	t := p.cur()
	if t.kind == tokIdent && p.peek().kind == tokLParen {
		p.advance()
		p.advance() // (
		call := &Call{Fn: t.text, Line: t.line}
		for p.cur().kind != tokRParen {
			a, err := p.operand()
			if err != nil {
				return Operand{}, err
			}
			call.Args = append(call.Args, a)
			if _, ok := p.accept(tokComma); !ok {
				break
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Operand{}, err
		}
		return Operand{Call: call}, nil
	}
	tm, err := p.term()
	if err != nil {
		return Operand{}, err
	}
	return Operand{Term: &tm}, nil
}
