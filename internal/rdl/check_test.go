package rdl

import (
	"fmt"
	"strings"
	"testing"

	"oasis/internal/value"
)

// loginTypes is a stand-in for the Login service's gettypes operation.
func loginTypes(service, rolefile, role string) ([]value.Type, error) {
	if service == "Login" && role == "LoggedOn" {
		return []value.Type{value.ObjectType("Login.userid"), value.ObjectType("Login.host")}, nil
	}
	if service == "Pw" && role == "Passwd" {
		return []value.Type{value.ObjectType("Login.userid"), value.StringType}, nil
	}
	return nil, fmt.Errorf("unknown role %s.%s", service, role)
}

func checkOK(t *testing.T, src string, funcs FuncTable) *Rolefile {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Check(f, loginTypes, funcs)
	if err != nil {
		t.Fatalf("Check(%q): %v", src, err)
	}
	return rf
}

func TestInferenceFromForeignRole(t *testing.T) {
	// The paper's point: the dagger-marked declarations of figure 3.1 can
	// be omitted because types are inferrable.
	src := `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
`
	rf := checkOK(t, src, nil)
	if got := rf.Types["Member"]; len(got) != 1 || got[0].Name != "Login.userid" {
		t.Fatalf("Member types = %v", got)
	}
	if got := rf.Types["Chair"]; len(got) != 0 {
		t.Fatalf("Chair types = %v", got)
	}
}

func TestInferenceThroughLocalRoles(t *testing.T) {
	src := `
Candidate(u) <- Login.LoggedOn(u, h)
Member(u)    <- Candidate(u)
`
	rf := checkOK(t, src, nil)
	if got := rf.Types["Member"]; got[0].Name != "Login.userid" {
		t.Fatalf("Member types = %v", got)
	}
}

func TestInferenceFromIntLiteral(t *testing.T) {
	src := `
Login(3, u) <- Pw.Passwd(u, "Login")
Login(0, u) <-
`
	rf := checkOK(t, src, nil)
	got := rf.Types["Login"]
	if len(got) != 2 || got[0].Kind != value.KindInt || got[1].Name != "Login.userid" {
		t.Fatalf("Login types = %v", got)
	}
}

func TestDeclaredTypesUsed(t *testing.T) {
	src := `
def Rights(r) r: {eaf}
Rights({ae}) <- Author
Author <- Login.LoggedOn(u, h)
`
	rf := checkOK(t, src, nil)
	if got := rf.Types["Rights"]; got[0].Universe != "eaf" {
		t.Fatalf("Rights types = %v", got)
	}
}

func TestSetLiteralValidatedAgainstUniverse(t *testing.T) {
	src := `
def Rights(r) r: {eaf}
Rights({xz}) <- Author
Author <- Login.LoggedOn(u, h)
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f, loginTypes, nil); err == nil {
		t.Fatal("set literal outside universe accepted")
	}
}

func TestUninferrableTypeRejected(t *testing.T) {
	src := `Solo(x) <-` // x never constrained
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(f, nil, nil)
	if err == nil {
		t.Fatal("uninferrable parameter accepted")
	}
	if !strings.Contains(err.Error(), "infer") {
		t.Fatalf("error = %v", err)
	}
}

func TestBareStringDefaultsToString(t *testing.T) {
	src := `Tagged("hello") <-`
	rf := checkOK(t, src, nil)
	if got := rf.Types["Tagged"]; got[0].Kind != value.KindString {
		t.Fatalf("types = %v", got)
	}
}

func TestArityClashRejected(t *testing.T) {
	src := `
R(a)    <- Login.LoggedOn(a, h)
R(a, b) <- Login.LoggedOn(a, b)
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f, loginTypes, nil); err == nil {
		t.Fatal("arity clash accepted")
	}
}

func TestTypeConflictRejected(t *testing.T) {
	src := `
R(a) <- Login.LoggedOn(a, h)
R(3) <-
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f, loginTypes, nil); err == nil {
		t.Fatal("int/userid conflict accepted")
	}
}

func TestForeignArityChecked(t *testing.T) {
	src := `R(a) <- Login.LoggedOn(a)`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f, loginTypes, nil); err == nil {
		t.Fatal("wrong foreign arity accepted")
	}
}

func TestUnknownForeignRole(t *testing.T) {
	src := `R(a) <- Nowhere.Role(a)`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f, loginTypes, nil); err == nil {
		t.Fatal("unknown foreign role accepted")
	}
	if _, err := Check(f, nil, nil); err == nil {
		t.Fatal("foreign role without resolver accepted")
	}
}

func TestFunctionTypesChecked(t *testing.T) {
	funcs := FuncTable{
		"unixacl": {
			Result: value.SetType("rwx"),
			Args:   []value.Type{value.StringType, value.ObjectType("Login.userid")},
			Fn:     func(args []value.Value) (value.Value, error) { return value.MustSet("rwx", "r"), nil },
		},
	}
	src := `UseFile(r) <- Login.LoggedOn(u, h) : r = unixacl("acl", u)`
	rf := checkOK(t, src, funcs)
	if got := rf.Types["UseFile"]; got[0].Universe != "rwx" {
		t.Fatalf("UseFile types = %v (function result type not propagated)", got)
	}

	// Wrong argument type.
	bad := `UseFile(r) <- Login.LoggedOn(u, h) : r = unixacl(3, u)`
	f, _ := Parse(bad)
	if _, err := Check(f, loginTypes, funcs); err == nil {
		t.Fatal("bad function argument type accepted")
	}
	// Wrong arity.
	bad2 := `UseFile(r) <- Login.LoggedOn(u, h) : r = unixacl("acl")`
	f2, _ := Parse(bad2)
	if _, err := Check(f2, loginTypes, funcs); err == nil {
		t.Fatal("bad function arity accepted")
	}
	// Unknown function.
	bad3 := `UseFile(r) <- Login.LoggedOn(u, h) : r = mystery("acl")`
	f3, _ := Parse(bad3)
	if _, err := Check(f3, loginTypes, funcs); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestElectorAndRevokerChecked(t *testing.T) {
	src := `
Chair     <- Login.LoggedOn("jmb", h)
Member(p) <- Person(p) <| Chair |> Chair
Person(p) <- Login.LoggedOn(p, h)
`
	rf := checkOK(t, src, nil)
	if got := rf.Types["Member"]; got[0].Name != "Login.userid" {
		t.Fatalf("Member types = %v", got)
	}
}

func TestRolefileRolesSorted(t *testing.T) {
	src := `
Zeta <- Login.LoggedOn("z", h)
Alpha <- Login.LoggedOn("a", h)
`
	rf := checkOK(t, src, nil)
	roles := rf.Roles()
	if len(roles) != 2 || roles[0] != "Alpha" || roles[1] != "Zeta" {
		t.Fatalf("Roles() = %v", roles)
	}
}

func TestLiteralValueCoercion(t *testing.T) {
	v, err := LiteralValue(Term{IsStr: true, StrLit: "jmb"}, value.ObjectType("Login.userid"))
	if err != nil || v.T.Name != "Login.userid" || v.S != "jmb" {
		t.Fatalf("LiteralValue = %v, %v", v, err)
	}
	if _, err := LiteralValue(Term{IsInt: true, IntLit: 3}, value.StringType); err == nil {
		t.Fatal("int coerced to string")
	}
	if _, err := LiteralValue(Term{Var: "x"}, value.StringType); err == nil {
		t.Fatal("variable treated as literal")
	}
	s, err := LiteralValue(Term{IsSet: true, SetLit: "ae"}, value.SetType("eaf"))
	if err != nil || s.Members() != "ea" {
		t.Fatalf("set literal = %v, %v", s, err)
	}
}

func TestDuplicateRoleDeclArityClash(t *testing.T) {
	// The same role name declared (or used) at two different arities is
	// a duplicate definition, not an overload.
	for _, src := range []string{
		"def A(u) u: string\ndef A(u, v) u: string v: string\nA(u) <-",
		"A(u) <- Login.LoggedOn(u, h)\nA(u, v) <- Login.LoggedOn(u, h)",
	} {
		f, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		_, err = Check(f, loginTypes, nil)
		if err == nil || !strings.Contains(err.Error(), "arity") && !strings.Contains(err.Error(), "conflicting") {
			t.Errorf("Check(%q) err = %v", src, err)
		}
	}
}

func TestRuleScopedVariableShadowing(t *testing.T) {
	// Variables are rule-scoped: the same name may carry different
	// types in different rules without clashing.
	src := `
A(h) <- Login.LoggedOn(u, h)
B(h) <- Pw.Passwd(h, k)
`
	rf := checkOK(t, src, nil)
	if got := rf.Types["A"]; len(got) != 1 || got[0].Name != "Login.host" {
		t.Fatalf("A types = %v", got)
	}
	if got := rf.Types["B"]; len(got) != 1 || got[0].Name != "Login.userid" {
		t.Fatalf("B types = %v", got)
	}
}

func TestForeignRoleTypeMismatch(t *testing.T) {
	// Within one rule the shared variable h would have to be both a
	// Login.host (from LoggedOn) and a Login.userid (from Passwd).
	src := `R(u) <- Login.LoggedOn(u, h) & Pw.Passwd(h, k)`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f, loginTypes, nil); err == nil ||
		!strings.Contains(err.Error(), "type mismatch") {
		t.Fatalf("err = %v", err)
	}
}

// inferTypes resolves the known roles and asks the checker to infer
// everything else from usage, as cmd/rdlcheck -assume-foreign does.
func inferTypes(service, rolefile, role string) ([]value.Type, error) {
	if service == "Login" && role == "LoggedOn" {
		return []value.Type{value.ObjectType("Login.userid"), value.ObjectType("Login.host")}, nil
	}
	return nil, ErrInferSignature
}

func TestInferSignatureSharedAcrossRules(t *testing.T) {
	// Both rules use Crypto.Key; its inferred parameter slots are
	// shared, so the concrete type flowing in from the first rule
	// types the second rule's head.
	src := `
A(u) <- Login.LoggedOn(u, h) & Crypto.Key(u, k)
B(k) <- Crypto.Key(u, k) : k = "x"
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Check(f, inferTypes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rf.Types["A"]; len(got) != 1 || got[0].Name != "Login.userid" {
		t.Fatalf("A types = %v", got)
	}
	if got := rf.Types["B"]; len(got) != 1 || got[0] != value.StringType {
		t.Fatalf("B types = %v", got)
	}
}

func TestInferSignatureArityConflict(t *testing.T) {
	src := `
A(u) <- Crypto.Key(u)
B(u) <- Crypto.Key(u, k)
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f, inferTypes, nil); err == nil ||
		!strings.Contains(err.Error(), "conflicting with earlier use") {
		t.Fatalf("err = %v", err)
	}
}

func TestInferSignatureTypeConflict(t *testing.T) {
	// The inferred slot is unified to Login.userid by the first rule
	// and to an integer literal by the second: a cross-rule mismatch.
	src := `
A(u) <- Login.LoggedOn(u, h) & Crypto.Key(u)
B    <- Crypto.Key(7)
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(f, inferTypes, nil); err == nil {
		t.Fatal("cross-rule inferred type conflict accepted")
	}
}
