package rdl

import (
	"fmt"
	"strconv"
	"strings"

	"oasis/internal/value"
)

// This file defines the compiled form of a checked rolefile — the
// execution plan role entry runs instead of walking the AST — and the
// register machine that evaluates it. The compiler lives in compile.go.
//
// A Program is immutable after Compile and safe for concurrent use; all
// mutable evaluation state lives in a Machine, which one request owns
// for its duration and may be pooled across requests.

// Op is a VM opcode. Every instruction reads and/or writes the boolean
// accumulator; short-circuit evaluation is jump-threaded, so And/Or
// have no opcodes of their own.
type Op uint8

// The instruction set. See docs/RDL.md "The compiled execution plan".
const (
	// OpNot negates the accumulator.
	OpNot Op = iota
	// OpJumpIfFalse jumps to A when the accumulator is false.
	OpJumpIfFalse
	// OpJumpIfTrue jumps to A when the accumulator is true.
	OpJumpIfTrue
	// OpGroupTest evaluates operand L and asks the group oracle whether
	// it belongs to group Grp; Neg inverts the verdict.
	OpGroupTest
	// OpCmp compares operands L and R under Cmp. An '=' against a
	// single unbound register binds it (the ACL extension, §3.3.3); a
	// set literal takes its universe from the opposite operand.
	OpCmp
	// OpBoolCall invokes server-specific function Calls[A] and loads
	// its 0/1 integer result.
	OpBoolCall
	// OpStarCapture records the starred condition that just evaluated
	// true as a MembershipCond (§3.2.3): a group-test condition when
	// CapGroup is set, a generic expression capture otherwise.
	OpStarCapture
)

// operand kinds.
const (
	oReg uint8 = iota + 1 // register (variable slot)
	oConst                // Program.Consts index
	oCall                 // Program.Calls index
	oSetLit               // Program.SetLits index (untyped set literal)
)

// operand names a value source for an instruction.
type operand struct {
	Kind uint8
	Idx  int32
}

// Instr is one VM instruction.
type Instr struct {
	Op   Op
	A    int32 // jump target or call index
	Cmp  CmpOp
	L, R operand
	Grp  string // group name (OpGroupTest, group OpStarCapture)
	Neg  bool
	// CapGroup marks an OpStarCapture of a direct group test; Capture
	// is the starred sub-expression, kept for generic captures and as
	// the fallback when the member operand cannot be evaluated.
	CapGroup bool
	Capture  Expr
	// Src is the surface rendering, used in error messages.
	Src string
}

// ArgSlot is one compiled argument of a role reference: a register to
// bind or test, or a pre-coerced literal constant. A slot with neither
// (Reg < 0, Const < 0) is unresolvable — its literal could not be
// coerced against the reference's signature — and never matches,
// exactly as the interpreter's per-candidate coercion error behaves.
type ArgSlot struct {
	Reg   int32 // register index, or -1
	Const int32 // Program.Consts index, or -1
}

// RefPlan is a compiled role reference: the resolved target, per-slot
// argument plan, and the reference's argument types (used for literal
// coercion at compile time and head-instantiation type checks at run
// time).
type RefPlan struct {
	Service  string // "" = the defining service
	Rolefile string // "" = any rolefile of that service
	Name     string
	Starred  bool
	Args     []ArgSlot
	Types    []value.Type // may be nil when compiled without signatures
}

// CompiledRule is the execution plan of one entry rule.
type CompiledRule struct {
	Index int // position in the rolefile; order is precedence (§3.2.2)
	Head  RefPlan
	Cands []RefPlan
	// Election marks the rule as election-form (<|); the entry engine
	// applies those through the delegation path, not this plan.
	Election bool
	// Regs names the rule's registers; register 0 is always the ambient
	// @host binding.
	Regs []string
	// Code is the constraint's instruction stream; nil marks a
	// constraint-free rule, which the entry engine applies with no VM
	// run at all.
	Code []Instr
	// Rule is the source rule (for disassembly and the engine's
	// revoker/elector handling, which stays on the AST).
	Rule *Rule
}

// callPlan is a compiled server-specific function call.
type callPlan struct {
	Fn   string
	Args []operand
}

// Program is a compiled rolefile: one plan per rule, in source order,
// plus the dispatch indexes role entry uses.
type Program struct {
	Rolefile *Rolefile
	Rules    []CompiledRule
	// ByHead buckets rule indexes by head role name, preserving source
	// order within each bucket.
	ByHead map[string][]int
	// MaxRegs is the largest register file any rule needs; a Machine
	// sized to it serves every rule.
	MaxRegs int

	Consts  []value.Value
	SetLits []string
	Calls   []callPlan
}

// RulesFor returns the indexes of the rules whose head is the named
// role, in precedence order.
func (p *Program) RulesFor(role string) []int { return p.ByHead[role] }

// Machine is the mutable evaluation state for one request: a register
// file, the bound set, and the starred conditions captured so far. It
// is not safe for concurrent use; pool and Reset it between requests.
type Machine struct {
	p     *Program
	rule  *CompiledRule
	regs  []value.Value
	bound []bool
	// newly lists registers bound since the last Reset/seed, in binding
	// order: candidate matching rolls failed attempts back through it,
	// and ResultEnv extends the base environment from it.
	newly  []int32
	seeded int // len(newly) that came from SeedEnv, exempt from ResultEnv
	conds  []MembershipCond
	base   value.Env
	groups GroupOracle
	funcs  FuncTable
}

// NewMachine returns a machine sized for the program's largest rule.
func (p *Program) NewMachine() *Machine {
	return &Machine{
		p:     p,
		regs:  make([]value.Value, p.MaxRegs),
		bound: make([]bool, p.MaxRegs),
	}
}

// Reset points the machine at rule i and clears all evaluation state.
func (m *Machine) Reset(i int) {
	m.rule = &m.p.Rules[i]
	for r := range m.rule.Regs {
		m.bound[r] = false
	}
	m.newly = m.newly[:0]
	m.seeded = 0
	m.conds = m.conds[:0]
	m.base = nil
	m.groups = nil
	m.funcs = nil
}

// Rule returns the plan the machine is currently pointed at.
func (m *Machine) Rule() *CompiledRule { return m.rule }

// BindHost binds register 0, the ambient @host variable every rule
// reserves (the request-environment seeding of §3.4.3).
func (m *Machine) BindHost(v value.Value) { m.bind(0, v) }

// SeedEnv seeds registers from an environment and records it as the
// base for ResultEnv and captured-condition snapshots.
func (m *Machine) SeedEnv(env value.Env) {
	m.base = env
	for i, name := range m.rule.Regs {
		if v, ok := env[name]; ok {
			m.bind(int32(i), v)
		}
	}
	m.seeded = len(m.newly)
}

func (m *Machine) bind(r int32, v value.Value) {
	m.regs[r] = v
	m.bound[r] = true
	m.newly = append(m.newly, r)
}

// MatchPlan unifies a reference's argument plan against concrete values:
// constants must be equal, bound registers must agree, unbound registers
// bind. On failure every register bound during this attempt is rolled
// back, so the next candidate on the list starts clean — the semantics
// of trying rdl.MatchArgs per list entry.
func (m *Machine) MatchPlan(ref *RefPlan, vals []value.Value) bool {
	if len(ref.Args) != len(vals) {
		return false
	}
	mark := len(m.newly)
	for i := range ref.Args {
		a := &ref.Args[i]
		switch {
		case a.Reg >= 0:
			if m.bound[a.Reg] {
				if !m.regs[a.Reg].Equal(vals[i]) {
					m.rollback(mark)
					return false
				}
				continue
			}
			m.bind(a.Reg, vals[i])
		case a.Const >= 0:
			if !m.p.Consts[a.Const].Equal(vals[i]) {
				m.rollback(mark)
				return false
			}
		default: // unresolvable literal: never matches
			m.rollback(mark)
			return false
		}
	}
	return true
}

func (m *Machine) rollback(mark int) {
	for _, r := range m.newly[mark:] {
		m.bound[r] = false
	}
	m.newly = m.newly[:mark]
}

// Instantiate produces the concrete argument vector for a reference
// from the register file: every register must be bound with the
// declared type, every literal is its pre-coerced constant. It mirrors
// rdl.InstantiateArgs, reporting failure rather than an error — an
// uninstantiable head means the rule is not applicable.
func (m *Machine) Instantiate(ref *RefPlan) ([]value.Value, bool) {
	out := make([]value.Value, len(ref.Args))
	for i := range ref.Args {
		a := &ref.Args[i]
		switch {
		case a.Reg >= 0:
			if !m.bound[a.Reg] {
				return nil, false
			}
			v := m.regs[a.Reg]
			if ref.Types != nil && !v.T.Equal(ref.Types[i]) {
				return nil, false
			}
			out[i] = v
		case a.Const >= 0:
			out[i] = m.p.Consts[a.Const]
		default:
			return nil, false
		}
	}
	return out, true
}

// Conds returns the starred conditions captured so far, in evaluation
// order — the same order the interpreter records them.
func (m *Machine) Conds() []MembershipCond { return m.conds }

// ResultEnv reproduces the interpreter's result environment: the base
// environment extended by every binding made after seeding. When
// nothing bound, the base is returned as-is (Eval returns the input
// environment unchanged in that case too).
func (m *Machine) ResultEnv() value.Env {
	runtime := m.newly[m.seeded:]
	if len(runtime) == 0 {
		return m.base
	}
	env := make(value.Env, len(m.base)+len(runtime))
	for k, v := range m.base {
		env[k] = v
	}
	for _, r := range runtime {
		env[m.rule.Regs[r]] = m.regs[r]
	}
	return env
}

// snapshotEnv reconstructs the interpreter's evaluation environment at
// a capture point: the base environment overlaid with every bound
// register. Seeded registers restate base values harmlessly; runtime
// bindings extend it.
func (m *Machine) snapshotEnv() value.Env {
	env := make(value.Env, len(m.base)+len(m.rule.Regs))
	for k, v := range m.base {
		env[k] = v
	}
	for i, name := range m.rule.Regs {
		if m.bound[i] {
			env[name] = m.regs[i]
		}
	}
	return env
}

// RunConstraint executes the rule's instruction stream and returns the
// constraint verdict. Captured starred conditions accumulate on the
// machine; bindings made by '=' stay in the register file. A rule with
// no code is vacuously true.
func (m *Machine) RunConstraint(groups GroupOracle, funcs FuncTable) (bool, error) {
	code := m.rule.Code
	if len(code) == 0 {
		return true, nil
	}
	m.groups, m.funcs = groups, funcs
	acc := false
	for pc := 0; pc < len(code); {
		in := &code[pc]
		switch in.Op {
		case OpNot:
			acc = !acc
		case OpJumpIfFalse:
			if !acc {
				pc = int(in.A)
				continue
			}
		case OpJumpIfTrue:
			if acc {
				pc = int(in.A)
				continue
			}
		case OpGroupTest:
			mv, err := m.operand(in.L)
			if err != nil {
				return false, err
			}
			if m.groups == nil {
				return false, fmt.Errorf("rdl: no group oracle for %q", in.Src)
			}
			r := m.groups.IsMember(mv, in.Grp)
			if in.Neg {
				r = !r
			}
			acc = r
		case OpCmp:
			r, err := m.cmp(in)
			if err != nil {
				return false, err
			}
			acc = r
		case OpBoolCall:
			v, err := m.call(&m.p.Calls[in.A])
			if err != nil {
				return false, err
			}
			if v.T.Kind != value.KindInt {
				return false, fmt.Errorf("rdl: boolean function %s returned %v", m.p.Calls[in.A].Fn, v.T)
			}
			acc = v.I != 0
		case OpStarCapture:
			m.capture(in)
		default:
			return false, fmt.Errorf("rdl: bad opcode %d", in.Op)
		}
		pc++
	}
	return acc, nil
}

// operand evaluates a value source. The error messages match the
// interpreter's exactly — the differential tests compare them.
func (m *Machine) operand(o operand) (value.Value, error) {
	switch o.Kind {
	case oReg:
		if !m.bound[o.Idx] {
			return value.Value{}, fmt.Errorf("rdl: variable %s unbound", m.rule.Regs[o.Idx])
		}
		return m.regs[o.Idx], nil
	case oConst:
		return m.p.Consts[o.Idx], nil
	case oCall:
		return m.call(&m.p.Calls[o.Idx])
	case oSetLit:
		return value.Value{}, fmt.Errorf("rdl: set literal needs a typed context")
	default:
		return value.Value{}, fmt.Errorf("rdl: bad operand kind %d", o.Kind)
	}
}

func (m *Machine) call(c *callPlan) (value.Value, error) {
	f, ok := m.funcs[c.Fn]
	if !ok {
		return value.Value{}, fmt.Errorf("rdl: unknown function %s", c.Fn)
	}
	args := make([]value.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := m.operand(a)
		if err != nil {
			return value.Value{}, err
		}
		args[i] = v
	}
	return f.Fn(args)
}

// cmp mirrors the interpreter's compare: evaluate both sides, bind a
// single unbound register under '=', give set literals the opposite
// side's universe, then apply the operator.
func (m *Machine) cmp(in *Instr) (bool, error) {
	lv, lerr := m.operand(in.L)
	rv, rerr := m.operand(in.R)

	if in.Cmp == CmpEq {
		if lerr != nil && rerr == nil && in.L.Kind == oReg && !m.bound[in.L.Idx] {
			m.bind(in.L.Idx, rv)
			return true, nil
		}
		if rerr != nil && lerr == nil && in.R.Kind == oReg && !m.bound[in.R.Idx] {
			m.bind(in.R.Idx, lv)
			return true, nil
		}
	}
	if lerr != nil && rerr == nil && in.L.Kind == oSetLit && rv.T.Kind == value.KindSet {
		v, err := value.Set(rv.T.Universe, m.p.SetLits[in.L.Idx])
		if err != nil {
			return false, err
		}
		lv, lerr = v, nil
	}
	if rerr != nil && lerr == nil && in.R.Kind == oSetLit && lv.T.Kind == value.KindSet {
		v, err := value.Set(lv.T.Universe, m.p.SetLits[in.R.Idx])
		if err != nil {
			return false, err
		}
		rv, rerr = v, nil
	}
	if lerr != nil {
		return false, lerr
	}
	if rerr != nil {
		return false, rerr
	}

	switch in.Cmp {
	case CmpEq:
		return lv.Equal(rv), nil
	case CmpNeq:
		return !lv.Equal(rv), nil
	case CmpLe:
		if lv.T.Kind == value.KindSet {
			return lv.SubsetOf(rv)
		}
		return orderCmp(lv, rv, func(c int) bool { return c <= 0 })
	case CmpGe:
		if lv.T.Kind == value.KindSet {
			return rv.SubsetOf(lv)
		}
		return orderCmp(lv, rv, func(c int) bool { return c >= 0 })
	case CmpLt:
		return orderCmp(lv, rv, func(c int) bool { return c < 0 })
	case CmpGt:
		return orderCmp(lv, rv, func(c int) bool { return c > 0 })
	default:
		return false, fmt.Errorf("rdl: bad comparison operator")
	}
}

// capture records a starred condition, preferring the efficiently
// monitorable group-test form and falling back to a generic capture
// with the instantiated environment — the same shape record() emits.
func (m *Machine) capture(in *Instr) {
	if in.CapGroup {
		if mv, err := m.operand(in.L); err == nil {
			m.conds = append(m.conds, MembershipCond{
				IsGroupTest: true, Member: mv, Group: in.Grp, Neg: in.Neg,
			})
			return
		}
	}
	m.conds = append(m.conds, MembershipCond{Expr: in.Capture, Env: m.snapshotEnv()})
}

// EvalRule evaluates rule i's constraint under ctx, producing exactly
// what Eval produces for the same constraint: verdict, possibly
// extended environment, and captured membership conditions. It is the
// drop-in compiled counterpart the differential tests compare against
// the interpreter.
func (p *Program) EvalRule(i int, ctx EvalContext) (EvalResult, error) {
	if p.Rules[i].Code == nil {
		return EvalResult{OK: true, Env: ctx.Env}, nil
	}
	m := p.NewMachine()
	m.Reset(i)
	m.SeedEnv(ctx.Env)
	ok, err := m.RunConstraint(ctx.Groups, ctx.Funcs)
	if err != nil {
		return EvalResult{}, err
	}
	return EvalResult{OK: ok, Env: m.ResultEnv(), Conds: m.conds}, nil
}

// Disassemble renders the program's plans in a stable textual form for
// rdlcheck -dump-plan and the docs.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for i := range p.Rules {
		cr := &p.Rules[i]
		fmt.Fprintf(&b, "rule %d: %s\n", cr.Index+1, cr.Rule.String())
		if cr.Election {
			b.WriteString("  election-form: applied via the delegation path\n")
		}
		fmt.Fprintf(&b, "  regs: %s\n", regList(cr.Regs))
		fmt.Fprintf(&b, "  head: %s\n", p.refPlanString(&cr.Head))
		for ci := range cr.Cands {
			fmt.Fprintf(&b, "  cand %d: %s\n", ci, p.refPlanString(&cr.Cands[ci]))
		}
		if cr.Code == nil {
			b.WriteString("  code: (none — no-VM fast path)\n")
			continue
		}
		b.WriteString("  code:\n")
		for pc := range cr.Code {
			fmt.Fprintf(&b, "    %2d  %s\n", pc, p.instrString(&cr.Code[pc]))
		}
	}
	b.WriteString("dispatch:\n")
	for _, role := range p.Rolefile.Roles() {
		if idxs, ok := p.ByHead[role]; ok {
			fmt.Fprintf(&b, "  %s -> rules %v\n", role, ruleNumbers(idxs))
		}
	}
	return b.String()
}

func ruleNumbers(idxs []int) []int {
	out := make([]int, len(idxs))
	for i, x := range idxs {
		out[i] = x + 1
	}
	return out
}

func regList(regs []string) string {
	parts := make([]string, len(regs))
	for i, n := range regs {
		parts[i] = "r" + strconv.Itoa(i) + "=" + n
	}
	return strings.Join(parts, " ")
}

func (p *Program) refPlanString(ref *RefPlan) string {
	var b strings.Builder
	b.WriteString(ref.Service)
	if ref.Service != "" {
		b.WriteByte('.')
	}
	if ref.Rolefile != "" {
		b.WriteString(ref.Rolefile)
		b.WriteByte('.')
	}
	b.WriteString(ref.Name)
	b.WriteByte('(')
	for i := range ref.Args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.slotString(&ref.Args[i]))
	}
	b.WriteByte(')')
	if ref.Starred {
		b.WriteByte('*')
	}
	return b.String()
}

func (p *Program) slotString(a *ArgSlot) string {
	switch {
	case a.Reg >= 0:
		return "r" + strconv.Itoa(int(a.Reg))
	case a.Const >= 0:
		return p.Consts[a.Const].String()
	default:
		return "!unresolved"
	}
}

func (p *Program) operandString(o operand) string {
	switch o.Kind {
	case oReg:
		return "r" + strconv.Itoa(int(o.Idx))
	case oConst:
		return p.Consts[o.Idx].String()
	case oCall:
		c := &p.Calls[o.Idx]
		parts := make([]string, len(c.Args))
		for i, a := range c.Args {
			parts[i] = p.operandString(a)
		}
		return c.Fn + "(" + strings.Join(parts, ",") + ")"
	case oSetLit:
		return "{" + p.SetLits[o.Idx] + "}"
	default:
		return "?"
	}
}

func (p *Program) instrString(in *Instr) string {
	switch in.Op {
	case OpNot:
		return "not"
	case OpJumpIfFalse:
		return fmt.Sprintf("jf   %d", in.A)
	case OpJumpIfTrue:
		return fmt.Sprintf("jt   %d", in.A)
	case OpGroupTest:
		op := "in"
		if in.Neg {
			op = "not-in"
		}
		return fmt.Sprintf("grp  %s %s %s", p.operandString(in.L), op, in.Grp)
	case OpCmp:
		return fmt.Sprintf("cmp  %s %s %s", p.operandString(in.L), in.Cmp, p.operandString(in.R))
	case OpBoolCall:
		return fmt.Sprintf("call %s", p.operandString(operand{Kind: oCall, Idx: in.A}))
	case OpStarCapture:
		if in.CapGroup {
			op := "in"
			if in.Neg {
				op = "not-in"
			}
			return fmt.Sprintf("star %s %s %s", p.operandString(in.L), op, in.Grp)
		}
		return fmt.Sprintf("star capture %s", in.Capture)
	default:
		return fmt.Sprintf("op%d", in.Op)
	}
}
