// Package rdl implements the OASIS Role Definition Language of chapter 3
// of the paper: role declarations, role entry statements (standard and
// election forms), membership-rule annotations, the revoke operator
// extension, and the constraint expression grammar of figure 3.3.
//
// The surface syntax is an ASCII rendering of the paper's notation:
//
//	def Member(u) u: Login.userid
//	import Login.userid
//	Chair     <- Login.LoggedOn("jmb", h)
//	Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
//	Member(p) <- Person(p) |> Chair
//
// "<-" is the paper's left arrow, "&" conjoins candidate role references,
// "<|" is the election operator (the paper's open triangle), "|>" the
// role-based revocation operator (the filled triangle), and a trailing
// "*" marks an entry condition as a membership rule.
package rdl

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota + 1
	tokNewline
	tokIdent
	tokNumber
	tokString
	tokSet    // {rwx}
	tokArrow  // <-
	tokElect  // <|
	tokRevoke // |>
	tokAmp    // &
	tokStar   // *
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokColon  // :
	tokDot    // .
	tokEq     // =
	tokNeq    // !=
	tokLt     // <
	tokLe     // <=
	tokGt     // >
	tokGe     // >=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of file"
	case tokNewline:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokSet:
		return "set literal"
	case tokArrow:
		return "'<-'"
	case tokElect:
		return "'<|'"
	case tokRevoke:
		return "'|>'"
	case tokAmp:
		return "'&'"
	case tokStar:
		return "'*'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

// SyntaxError reports a lexical or parse error with position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rdl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) errf(format string, args ...any) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
			continue
		case c == '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
			continue
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}

	line, col := l.line, l.col
	mk := func(k tokKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}

	c := l.advance()
	switch {
	case c == '\n' || c == ';':
		return mk(tokNewline, "\n"), nil
	case c == '(':
		return mk(tokLParen, "("), nil
	case c == ')':
		return mk(tokRParen, ")"), nil
	case c == ',':
		return mk(tokComma, ","), nil
	case c == ':':
		return mk(tokColon, ":"), nil
	case c == '.':
		return mk(tokDot, "."), nil
	case c == '*':
		return mk(tokStar, "*"), nil
	case c == '&':
		return mk(tokAmp, "&"), nil
	case c == '=':
		return mk(tokEq, "="), nil
	case c == '!':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokNeq, "!="), nil
		}
		return token{}, l.errf("unexpected '!'")
	case c == '<':
		switch l.peekByte() {
		case '-':
			l.advance()
			return mk(tokArrow, "<-"), nil
		case '|':
			l.advance()
			return mk(tokElect, "<|"), nil
		case '=':
			l.advance()
			return mk(tokLe, "<="), nil
		}
		return mk(tokLt, "<"), nil
	case c == '>':
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokGe, ">="), nil
		}
		return mk(tokGt, ">"), nil
	case c == '|':
		if l.peekByte() == '>' {
			l.advance()
			return mk(tokRevoke, "|>"), nil
		}
		return token{}, l.errf("unexpected '|' (did you mean '|>'?)")
	case c == '{':
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated set literal")
			}
			ch := l.advance()
			if ch == '}' {
				break
			}
			if ch == '\n' {
				return token{}, l.errf("newline in set literal")
			}
			if ch != ' ' {
				b.WriteByte(ch)
			}
		}
		return mk(tokSet, b.String()), nil
	case c == '"':
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' && l.pos < len(l.src) {
				ch = l.advance()
				switch ch {
				case 'n':
					ch = '\n'
				case 't':
					ch = '\t'
				}
			}
			b.WriteByte(ch)
		}
		return mk(tokString, b.String()), nil
	case c >= '0' && c <= '9' || c == '-' && isDigit(l.peekByte()):
		var b strings.Builder
		b.WriteByte(c)
		for l.pos < len(l.src) && isDigit(l.peekByte()) {
			b.WriteByte(l.advance())
		}
		return mk(tokNumber, b.String()), nil
	case isIdentStart(rune(c)):
		var b strings.Builder
		b.WriteByte(c)
		for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
			b.WriteByte(l.advance())
		}
		return mk(tokIdent, b.String()), nil
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '@'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// lexAll tokenises the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
