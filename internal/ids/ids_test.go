package ids

import (
	"testing"
	"time"
)

var boot = time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC)

func TestClientIDUniqueness(t *testing.T) {
	h := NewHostAuthority("ely", boot)
	a := h.NewDomain()
	b := h.NewDomain()
	if a == b {
		t.Fatalf("two domains got the same identifier %v", a)
	}
	if a.Host != "ely" || b.Host != "ely" {
		t.Fatalf("host not recorded: %v %v", a, b)
	}
}

func TestClientIDUniqueAcrossBoots(t *testing.T) {
	h1 := NewHostAuthority("ely", boot)
	h2 := NewHostAuthority("ely", boot.Add(time.Hour)) // rebooted host
	a := h1.NewDomain()
	b := h2.NewDomain()
	if a == b {
		t.Fatal("identifiers collide across boots")
	}
}

func TestClientIDString(t *testing.T) {
	c := ClientID{Host: "ely", ID: 7, BootTime: time.Unix(100, 0)}
	if got, want := c.String(), "ely/7@100"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestIsZero(t *testing.T) {
	var c ClientID
	if !c.IsZero() {
		t.Fatal("zero ClientID not reported zero")
	}
	if (ClientID{Host: "x"}).IsZero() {
		t.Fatal("non-zero ClientID reported zero")
	}
}

func TestVCIDelegationControlsUse(t *testing.T) {
	h := NewHostAuthority("ely", boot)
	parent := h.NewDomain()
	child := h.NewDomain()

	v, err := h.NewVCI(parent)
	if err != nil {
		t.Fatal(err)
	}
	if !h.MayUse(v, parent) {
		t.Fatal("creator cannot use own VCI")
	}
	if h.MayUse(v, child) {
		t.Fatal("child can use VCI before delegation")
	}
	if err := h.Delegate(v, parent, child); err != nil {
		t.Fatal(err)
	}
	if !h.MayUse(v, child) {
		t.Fatal("child cannot use VCI after delegation")
	}
}

func TestVCIStolenCredentialUseless(t *testing.T) {
	// Section 2.8.1: a child that "steals" credentials bound to a VCI it
	// was not given still cannot use them, because MayUse fails.
	h := NewHostAuthority("ely", boot)
	parent := h.NewDomain()
	thief := h.NewDomain()
	v, err := h.NewVCI(parent)
	if err != nil {
		t.Fatal(err)
	}
	if h.MayUse(v, thief) {
		t.Fatal("thief may use undelegate VCI")
	}
	// And the thief cannot delegate it to itself.
	if err := h.Delegate(v, thief, thief); err == nil {
		t.Fatal("non-holder allowed to delegate VCI")
	}
}

func TestVCIRevoke(t *testing.T) {
	h := NewHostAuthority("ely", boot)
	parent := h.NewDomain()
	child := h.NewDomain()
	v, _ := h.NewVCI(parent)
	if err := h.Delegate(v, parent, child); err != nil {
		t.Fatal(err)
	}
	if err := h.Revoke(v, parent, child); err != nil {
		t.Fatal(err)
	}
	if h.MayUse(v, child) {
		t.Fatal("child may use VCI after revocation")
	}
	if !h.MayUse(v, parent) {
		t.Fatal("parent lost VCI when revoking child")
	}
}

func TestVCICrossHostRejected(t *testing.T) {
	h1 := NewHostAuthority("ely", boot)
	h2 := NewHostAuthority("cam", boot)
	d1 := h1.NewDomain()
	d2 := h2.NewDomain()
	if _, err := h1.NewVCI(d2); err == nil {
		t.Fatal("foreign domain allocated a VCI")
	}
	v, _ := h1.NewVCI(d1)
	if h1.MayUse(v, d2) {
		t.Fatal("foreign domain may use VCI")
	}
	if err := h1.Delegate(v, d1, d2); err == nil {
		t.Fatal("cross-host delegation allowed")
	}
}

func TestVCIUnknownErrors(t *testing.T) {
	h := NewHostAuthority("ely", boot)
	d := h.NewDomain()
	bogus := VCI{Host: "ely", N: 999}
	if err := h.Delegate(bogus, d, d); err == nil {
		t.Fatal("delegating unknown VCI succeeded")
	}
	if err := h.Revoke(bogus, d, d); err == nil {
		t.Fatal("revoking unknown VCI succeeded")
	}
}
