// Package ids implements the two-level OASIS client naming scheme of
// chapter 2 of the paper.
//
// The low level is the client identifier: a (host, id, boot time) tuple
// that uniquely names a protection domain for all time (section 2.8).
// The id part is chosen by the client's host operating system; here it is
// allocated by a HostAuthority, which stands in for the local OS.
//
// On top of that, hosts supporting multiple protection domains provide
// virtual client identifiers (VCIs, section 2.8.1): names a domain uses
// when performing a particular task. Credentials are bound to a VCI, and
// a domain can only exercise credentials bound to VCIs it holds, so a
// parent can pass a child a subset of its credentials by passing a subset
// of its VCIs.
package ids

import (
	"fmt"
	"sync"
	"time"
)

// ClientID uniquely identifies an OASIS protection domain for all time.
type ClientID struct {
	Host     string    // authenticated host name
	ID       uint64    // host-chosen identity of the protection domain
	BootTime time.Time // host boot time, making IDs unique forever
}

// String renders the identifier in host/id@boot form.
func (c ClientID) String() string {
	return fmt.Sprintf("%s/%d@%d", c.Host, c.ID, c.BootTime.Unix())
}

// IsZero reports whether the identifier is unset.
func (c ClientID) IsZero() bool {
	return c.Host == "" && c.ID == 0 && c.BootTime.IsZero()
}

// VCI is a virtual client identifier: a per-task name local to a host.
// It is meaningless outside the context of the issuing host.
type VCI struct {
	Host string
	N    uint64
}

// String renders the VCI.
func (v VCI) String() string { return fmt.Sprintf("vci:%s/%d", v.Host, v.N) }

// HostAuthority models the local operating system of one host: it creates
// protection domains, allocates VCIs, and enforces which domains may use
// which VCIs. In a real deployment this is kernel functionality; here it
// is the trusted base of the simulation.
type HostAuthority struct {
	host string
	boot time.Time

	mu      sync.Mutex
	nextID  uint64
	nextVCI uint64
	// holders maps a VCI number to the set of domain IDs allowed to use it.
	holders map[uint64]map[uint64]bool
}

// NewHostAuthority creates the authority for a named host booted at the
// given instant.
func NewHostAuthority(host string, boot time.Time) *HostAuthority {
	return &HostAuthority{
		host:    host,
		boot:    boot,
		holders: make(map[uint64]map[uint64]bool),
	}
}

// Host returns the authority's host name.
func (h *HostAuthority) Host() string { return h.host }

// NewDomain creates a fresh protection domain on this host and returns
// its client identifier.
func (h *HostAuthority) NewDomain() ClientID {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	return ClientID{Host: h.host, ID: h.nextID, BootTime: h.boot}
}

// NewVCI allocates a fresh VCI usable by the given domain.
func (h *HostAuthority) NewVCI(owner ClientID) (VCI, error) {
	if owner.Host != h.host {
		return VCI{}, fmt.Errorf("ids: domain %v is not on host %s", owner, h.host)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextVCI++
	h.holders[h.nextVCI] = map[uint64]bool{owner.ID: true}
	return VCI{Host: h.host, N: h.nextVCI}, nil
}

// Delegate allows another domain on the same host to use a VCI. Only a
// current holder may delegate (section 2.8.1: "the operating system
// ensures that a domain may not use a VCI relating to a different domain,
// unless that domain explicitly delegates use of the VCI").
func (h *HostAuthority) Delegate(v VCI, from, to ClientID) error {
	if v.Host != h.host || from.Host != h.host || to.Host != h.host {
		return fmt.Errorf("ids: cross-host VCI delegation is not possible")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	hs, ok := h.holders[v.N]
	if !ok {
		return fmt.Errorf("ids: unknown VCI %v", v)
	}
	if !hs[from.ID] {
		return fmt.Errorf("ids: domain %v does not hold VCI %v", from, v)
	}
	hs[to.ID] = true
	return nil
}

// MayUse reports whether the given domain may exercise credentials bound
// to the VCI. This is the check a client library makes before presenting
// a credential.
func (h *HostAuthority) MayUse(v VCI, who ClientID) bool {
	if v.Host != h.host || who.Host != h.host {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.holders[v.N][who.ID]
}

// Revoke withdraws a domain's right to use a VCI. A holder may withdraw
// any other holder (the creating domain controls propagation).
func (h *HostAuthority) Revoke(v VCI, by, who ClientID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	hs, ok := h.holders[v.N]
	if !ok {
		return fmt.Errorf("ids: unknown VCI %v", v)
	}
	if !hs[by.ID] {
		return fmt.Errorf("ids: domain %v does not hold VCI %v", by, v)
	}
	delete(hs, who.ID)
	return nil
}
