package oasis

import "time"

// Failure suspicion for watched sources (§4.10 / §6.8.4). A service that
// holds external credential records watches the issuing source's
// heartbeats. Silence degrades the source in two steps:
//
//	Alive ──(> 1.5 heartbeat periods silent)──▶ Suspect
//	Suspect ──(≥ FailsafeMissed periods silent)──▶ Failed
//
// Suspect marks every dependent record Unknown — validation already
// fails, but a resync can cheaply restore the truth. Failed goes
// further and fails the records safe to False (§6.8.4): the service
// now behaves exactly as if the certificates had been revoked, even if
// the partition later turns out to have been a network fault.
//
// Recovery is never granted on silence ending alone: a source returns
// to Alive only through a successful resync (ResyncSource), because
// the notifications lost during the silence may have included
// revocations. With Options.AutoResync the resync is attempted
// automatically when a degraded source is heard from again.

// SourceState is the suspicion level of one watched source.
type SourceState int

const (
	SourceAlive SourceState = iota
	SourceSuspect
	SourceFailed
)

func (s SourceState) String() string {
	switch s {
	case SourceAlive:
		return "alive"
	case SourceSuspect:
		return "suspect"
	case SourceFailed:
		return "failed"
	}
	return "invalid"
}

// SourceStatus reports the current suspicion level of a source.
func (s *Service) SourceStatus(source string) SourceState {
	s.suspMu.Lock()
	defer s.suspMu.Unlock()
	return s.suspicion[source]
}

// setSourceState applies one suspicion transition and its side effects.
// The store mutation runs outside suspMu (a leaf lock) and inside a
// notification batch, so a fail-safe cascade reaches downstream
// watchers as one coalesced burst.
func (s *Service) setSourceState(source string, to SourceState) {
	s.suspMu.Lock()
	from := s.suspicion[source]
	if from == to {
		s.suspMu.Unlock()
		return
	}
	s.suspicion[source] = to
	s.suspMu.Unlock()

	switch to {
	case SourceSuspect:
		_ = s.batchNotify(func() error {
			s.store.MarkSourceUnknown(source)
			return nil
		})
		s.receiver.MarkSilent(source)
	case SourceFailed:
		_ = s.batchNotify(func() error {
			s.store.MarkSourceFailsafe(source)
			return nil
		})
		s.receiver.MarkSilent(source)
		// A failed shard peer's last piggybacked backlog claim is stale;
		// drop it so cluster-wide backpressure reflects the living.
		if c := s.cluster.Load(); c != nil {
			c.mu.Lock()
			delete(c.pressure, source)
			c.mu.Unlock()
		}
	}
	if cb := s.opts.OnSourceState; cb != nil {
		cb(source, from, to)
	}
}

// heartbeatPeriod returns the configured heartbeat period with its
// default applied.
func (s *Service) heartbeatPeriod() time.Duration {
	if s.opts.HeartbeatEvery > 0 {
		return s.opts.HeartbeatEvery
	}
	return 5 * time.Second
}

// SuspicionTick advances the failure-suspicion machine: wire it to the
// same cadence as HeartbeatTick (or use StartSuspicion). Each watched
// source's event horizon is compared against the heartbeat period;
// silence past 1.5 periods makes the source Suspect, silence past
// Options.FailsafeMissed periods makes it Failed. A degraded source
// whose heartbeats have resumed is resynced (when AutoResync is set)
// rather than trusted outright.
func (s *Service) SuspicionTick() {
	period := s.heartbeatPeriod()
	suspectAfter := period + period/2
	missed := s.opts.FailsafeMissed
	if missed <= 0 {
		missed = 3
	}
	failAfter := time.Duration(missed) * period
	if failAfter < suspectAfter {
		failAfter = suspectAfter
	}
	now := s.clk.Now()
	for _, src := range s.receiver.Sources() {
		h, ok := s.receiver.Horizon(src)
		if !ok {
			continue
		}
		silence := now.Sub(h)
		switch {
		case silence >= failAfter:
			s.setSourceState(src, SourceFailed)
		case silence >= suspectAfter:
			if s.SourceStatus(src) == SourceAlive {
				s.setSourceState(src, SourceSuspect)
			}
		default:
			if s.SourceStatus(src) != SourceAlive && s.opts.AutoResync {
				s.tryResync(src)
			}
		}
	}
}

// StartSuspicion runs SuspicionTick on the service clock at the
// heartbeat period. The returned stop function halts the loop and
// waits for it to exit.
func (s *Service) StartSuspicion() (stop func()) {
	period := s.heartbeatPeriod()
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-s.clk.After(period):
				s.SuspicionTick()
			case <-stopCh:
				return
			}
		}
	}()
	return func() {
		close(stopCh)
		<-done
	}
}

// tryResync attempts recovery of a degraded source; only a successful
// resync returns it to Alive. One resync per source runs at a time:
// the re-assertions a resync signals are delivered one by one, and a
// gap observed mid-delivery (the re-asserts' sequence numbers leapfrog
// notes still queued in the same burst) must not recurse into a second
// resync — the in-flight snapshot reply already covers it.
func (s *Service) tryResync(source string) {
	s.suspMu.Lock()
	if s.resyncing[source] {
		s.suspMu.Unlock()
		return
	}
	s.resyncing[source] = true
	s.suspMu.Unlock()
	defer func() {
		s.suspMu.Lock()
		delete(s.resyncing, source)
		s.suspMu.Unlock()
	}()
	if err := s.ResyncSource(source); err == nil {
		s.setSourceState(source, SourceAlive)
	}
}

// onNotificationGap handles a detected sequence gap: the lost
// notification may have been a revocation, so the source's records
// fail safe to Unknown immediately. The source itself is demonstrably
// alive (the gap was detected on a delivery), so with AutoResync the
// truth is restored in the same breath.
func (s *Service) onNotificationGap(source string) {
	if s.SourceStatus(source) == SourceAlive {
		s.setSourceState(source, SourceSuspect)
	}
	if s.opts.AutoResync {
		s.tryResync(source)
	}
}

// onSourceRevive handles the first delivery from a source the service
// had presumed failed — the partition-heal trigger for resync.
func (s *Service) onSourceRevive(source string) {
	if !s.opts.AutoResync {
		return
	}
	if s.SourceStatus(source) != SourceAlive {
		s.tryResync(source)
	}
}
