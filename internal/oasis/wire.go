package oasis

import (
	"encoding/gob"
	"sync"

	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/value"
)

var registerOnce sync.Once

// RegisterWireTypes registers every payload type the inter-service
// protocol sends through the bus's TCP bridging, with both codecs: gob
// (the legacy protocol and the fallback, which encodes the `any`
// argument/reply fields by concrete type name) and the binary codec's
// tagged encoders (wirecodec.go, used on links that negotiate
// bus.WireBinary). Call it once in any process that uses
// bus.Network.ServeTCP / AddRemote with OASIS services.
func RegisterWireTypes() {
	registerOnce.Do(func() {
		registerBinaryPayloads()
		gob.Register(GetTypesArg{})
		gob.Register(ValidateArg{})
		gob.Register(ValidateReply{})
		gob.Register(ReadStateArg{})
		gob.Register(ResyncArg{})
		gob.Register(ResyncReply{})
		gob.Register(&cert.RMC{})
		gob.Register(&cert.Delegation{})
		gob.Register(&cert.Revocation{})
		gob.Register(credrec.State(0))
		gob.Register([]value.Type{})
		gob.Register(value.Value{})
		gob.Register(ShardWatchArg{})
		gob.Register(TreeForwardArg{})
	})
}
