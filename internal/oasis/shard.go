package oasis

import (
	"fmt"
	"sync"

	"oasis/internal/bus"
	"oasis/internal/credrec"
)

// Sharded operation: a set of oasisd daemons partitions the credential
// record graph by consistent hashing (internal/credrec.Ring decides
// placement, internal/credrec.ShardedStore seals the owning shard into
// every reference). At the service layer the shards cooperate through
// two operations on the existing inter-service interface:
//
//   - "shardwatch": a peer asks the owner of a record to notify it of
//     state changes (the cross-shard cascade edge, §4.9 applied between
//     shards of one logical service rather than between services).
//   - "treeforward": the owner pushes those changes — and its liveness —
//     down a deterministic k-ary dissemination tree (bus.Tree) instead
//     of calling every watcher point-to-point. Each member relays to
//     its own children, so the origin pays k sends instead of n−1 and a
//     revocation storm reaches n members in ⌈log_k n⌉ hops.
//
// A severed tree edge starves exactly the subtree below it; the
// starved members' suspicion machines (§4.10) degrade the origin to
// Suspect/Failed exactly as for any silent source, and recovery after
// heal is the ordinary resync protocol straight to the origin — tree
// repair needs no protocol of its own (docs/SHARDING.md).

// ShardEdge is one cross-shard credential-record assertion: the owning
// shard's authoritative state for a record that peers hold surrogates
// of. It is the cascade-edge payload of the treeforward operation.
type ShardEdge struct {
	Ref       credrec.Ref
	State     credrec.State
	Permanent bool
}

// ShardWatchArg subscribes the calling shard to state changes of the
// listed records (which the callee owns). The reply is a ResyncReply
// carrying each record's current authoritative state, so the caller
// can seed its surrogates in the same round trip.
type ShardWatchArg struct {
	Refs []credrec.Ref
}

// TreeForwardArg is one hop of a dissemination-tree burst. Origin is
// the shard whose records the edges describe (and whose liveness the
// burst attests); Root names the tree the burst travels down — always
// the origin's own tree, carried explicitly so every relay computes
// the same children without coordination. Pressure is the origin's
// notification backlog, piggybacked so every member can aggregate
// cluster-wide backpressure (ClusterPendingNotifications).
//
// An empty Edges slice is a tree heartbeat: pure liveness + pressure.
type TreeForwardArg struct {
	Origin   string
	Root     string
	Edges    []ShardEdge
	Pressure int
}

// shardCluster is the service's view of the shard ring it joined.
type shardCluster struct {
	tree *bus.Tree

	mu       sync.Mutex
	watched  map[uint64]bool // local records some peer shardwatches
	pressure map[string]int  // peer -> last piggybacked backlog
}

// JoinShardRing places the service in a shard cluster: members must
// include the service's own name, and every member must join with the
// same list (the tree, like the ring, is a pure function of it).
// Fanout <= 0 selects bus.DefaultTreeFanout.
func (s *Service) JoinShardRing(members []string, fanout int) error {
	if s.net == nil {
		return fmt.Errorf("oasis: no network to join a shard ring on")
	}
	t, err := bus.NewTree(members, fanout)
	if err != nil {
		return err
	}
	self := false
	for _, m := range t.Members() {
		if m == s.name {
			self = true
			break
		}
	}
	if !self {
		return fmt.Errorf("oasis: service %s is not a member of shard ring %v", s.name, members)
	}
	s.cluster.Store(&shardCluster{
		tree:     t,
		watched:  make(map[uint64]bool),
		pressure: make(map[string]int),
	})
	return nil
}

// ShardRingMembers returns the sorted shard-ring member list, or nil
// when the service has not joined a ring.
func (s *Service) ShardRingMembers() []string {
	c := s.cluster.Load()
	if c == nil {
		return nil
	}
	return c.tree.Members()
}

// handleShardWatch serves the owner side of a cross-shard edge: mark
// each record notify-flagged and remembered as shard-watched, and
// report its current state so the caller seeds its surrogate from the
// same snapshot. A record that no longer exists (revoked and swept)
// still reports as permanently False — revocation is forever.
func (s *Service) handleShardWatch(from string, a ShardWatchArg) (ResyncReply, error) {
	c := s.cluster.Load()
	if c == nil {
		return ResyncReply{}, fmt.Errorf("oasis: %s is not in a shard ring", s.name)
	}
	var reply ResyncReply
	for _, ref := range a.Refs {
		if err := s.store.MarkNotify(ref); err == nil {
			c.mu.Lock()
			c.watched[ref.Uint64()] = true
			c.mu.Unlock()
		}
		st, perm, _ := s.store.Resolve(ref)
		reply.Entries = append(reply.Entries, ResyncEntry{Ref: ref, State: st, Permanent: perm})
	}
	return reply, nil
}

// ImportShardRecord wires a surrogate for a record owned by another
// shard: one shardwatch round trip subscribes this shard and returns
// the authoritative state, which seeds (or refreshes) a local external
// record sourced from the owner. Future changes arrive down the
// owner's dissemination tree; the owner's silence degrades the
// surrogate through the ordinary suspicion machine.
func (s *Service) ImportShardRecord(owner string, ref credrec.Ref) (credrec.Ref, error) {
	if s.net == nil {
		return credrec.Ref{}, fmt.Errorf("oasis: no network")
	}
	res, err := s.net.Call(s.name, owner, "shardwatch", ShardWatchArg{Refs: []credrec.Ref{ref}})
	if err != nil {
		return credrec.Ref{}, err
	}
	reply, ok := res.(ResyncReply)
	if !ok || len(reply.Entries) != 1 {
		return credrec.Ref{}, fmt.Errorf("oasis: bad shardwatch reply from %s", owner)
	}
	e := reply.Entries[0]
	key := extKey{source: owner, ref: ref.Uint64()}
	s.extMu.Lock()
	if s.extRecords == nil {
		s.extRecords = make(map[extKey]credrec.Ref)
	}
	local, exists := s.extRecords[key]
	if exists {
		if _, lerr := s.store.Lookup(local); lerr != nil {
			exists = false
		}
	}
	if !exists {
		local = s.store.NewExternal(owner, e.State)
		s.extRecords[key] = local
	}
	s.extMu.Unlock()
	// Re-apply the snapshot even on reuse: the surrogate may predate a
	// change the subscription only now starts covering.
	s.applyShardEdge(owner, ShardEdge{Ref: ref, State: e.State, Permanent: e.Permanent})
	s.receiver.ObserveSource(owner, s.clk.Now())
	return local, nil
}

// applyShardEdge applies one authoritative assertion from an owning
// shard to the local surrogate, if one exists here — relays without an
// import just pass the edge along. Same semantics as applyModified:
// permanent False is an invalidation, anything else is a state write.
func (s *Service) applyShardEdge(source string, e ShardEdge) {
	s.extMu.Lock()
	local, ok := s.extRecords[extKey{source: source, ref: e.Ref.Uint64()}]
	s.extMu.Unlock()
	if !ok {
		return
	}
	if e.Permanent && e.State == credrec.False {
		_ = s.store.Invalidate(local)
		return
	}
	_ = s.store.SetState(local, e.State)
	if e.Permanent {
		_ = s.store.MakePermanent(local)
	}
}

// handleTreeForward is one relay step: observe the origin's liveness,
// cache its piggybacked backlog, apply the edges to any local
// surrogates (inside a notification batch, so downstream watchers of
// records derived from them see one coalesced burst), then forward the
// burst unchanged to this member's children in the origin's tree. A
// child behind a severed link is skipped — its whole subtree starves,
// which its suspicion machinery will notice and resync will repair.
func (s *Service) handleTreeForward(from string, a TreeForwardArg) error {
	c := s.cluster.Load()
	if c == nil {
		return fmt.Errorf("oasis: %s is not in a shard ring", s.name)
	}
	if a.Origin != s.name {
		s.receiver.ObserveSource(a.Origin, s.clk.Now())
		c.mu.Lock()
		c.pressure[a.Origin] = a.Pressure
		c.mu.Unlock()
		if len(a.Edges) > 0 {
			_ = s.batchNotify(func() error {
				for _, e := range a.Edges {
					s.applyShardEdge(a.Origin, e)
				}
				return nil
			})
		}
		// Hearing from a degraded origin is the partition-heal signal:
		// resync now rather than waiting for the next suspicion tick,
		// because the edges lost during the silence may have been
		// revocations this burst does not repeat.
		if s.opts.AutoResync && s.SourceStatus(a.Origin) != SourceAlive {
			s.tryResync(a.Origin)
		}
	}
	s.forwardToChildren(c, a)
	return nil
}

// forwardToChildren relays a burst to this member's children in the
// tree rooted at a.Root. Edges within the burst are coalesced first —
// per tree edge, with the Modified-event rules (last writer wins per
// record, permanent False sticky) — so a relay never amplifies a storm
// it received already-merged.
func (s *Service) forwardToChildren(c *shardCluster, a TreeForwardArg) {
	children := c.tree.Children(a.Root, s.name)
	if len(children) == 0 {
		return
	}
	a.Edges = coalesceShardEdges(a.Edges)
	for _, child := range children {
		// A severed link returns an error: the subtree below this child
		// misses the burst, by design — suspicion + resync repair it.
		if _, err := s.net.Call(s.name, child, "treeforward", a); err != nil {
			continue
		}
	}
}

// coalesceShardEdges merges a burst's edges per record: later edges
// supersede earlier ones, except that a permanent False — revocation
// is forever — is never replaced. Order of first appearance is kept,
// so relays stay deterministic.
func coalesceShardEdges(edges []ShardEdge) []ShardEdge {
	if len(edges) < 2 {
		return edges
	}
	out := edges[:0:0]
	at := make(map[uint64]int, len(edges))
	for _, e := range edges {
		k := e.Ref.Uint64()
		i, seen := at[k]
		if !seen {
			at[k] = len(out)
			out = append(out, e)
			continue
		}
		if out[i].Permanent && out[i].State == credrec.False {
			continue
		}
		out[i] = e
	}
	return out
}

// shardNotify forwards one watched record's change down this shard's
// own dissemination tree. Called from the store's change callback with
// no locks held (drain fires outside store locks); the synchronous
// relay chain below recurses at most the tree's depth.
func (s *Service) shardNotify(ref credrec.Ref, st credrec.State, permanent bool) {
	c := s.cluster.Load()
	if c == nil {
		return
	}
	c.mu.Lock()
	watched := c.watched[ref.Uint64()]
	c.mu.Unlock()
	if !watched {
		return
	}
	s.forwardToChildren(c, TreeForwardArg{
		Origin:   s.name,
		Root:     s.name,
		Edges:    []ShardEdge{{Ref: ref, State: st, Permanent: permanent}},
		Pressure: s.localPressure(),
	})
}

// ShardHeartbeatTick asserts this shard's liveness (and backlog) to
// the cluster: an empty-edge burst down its own tree. HeartbeatTick
// calls it automatically; a service outside any ring skips it.
func (s *Service) ShardHeartbeatTick() {
	c := s.cluster.Load()
	if c == nil {
		return
	}
	s.forwardToChildren(c, TreeForwardArg{
		Origin:   s.name,
		Root:     s.name,
		Pressure: s.localPressure(),
	})
}

// localPressure is this member's own notification backlog: broker
// outboxes plus the network's delay queue and open batch buffers.
func (s *Service) localPressure() int {
	p := s.broker.PendingNotifications()
	if s.net != nil {
		p += s.net.PendingNotifications()
	}
	return p
}

// ClusterPendingNotifications aggregates notification backpressure
// across the shard ring: this member's own backlog plus the last
// backlog each peer piggybacked on a treeforward. Gateways shed load
// (503) on this figure instead of the local one, so a storm drowning
// one shard sheds at every shard's front door. Peers declared Failed
// stop contributing (setSourceState clears their entry) — a dead
// shard's stale claim must not wedge the cluster read-only.
func (s *Service) ClusterPendingNotifications() int {
	p := s.localPressure()
	c := s.cluster.Load()
	if c == nil {
		return p
	}
	c.mu.Lock()
	for peer, v := range c.pressure {
		if peer != s.name {
			p += v
		}
	}
	c.mu.Unlock()
	return p
}
