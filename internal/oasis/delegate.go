package oasis

import (
	"time"

	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

// DelegateRequest asks the service for a delegation certificate (§4.4):
// the elector (holding ElectorCert) offers entry to Role with Args to
// any client holding the Required roles.
type DelegateRequest struct {
	Client      ids.ClientID // the elector's client identifier
	Rolefile    string
	Role        string
	Args        []value.Value   // concrete parameters of the delegated role
	Required    []cert.RoleSpec // roles the candidate must hold (§4.4)
	ElectorCert *cert.RMC
	// RevokeOnExit requests automatic revocation when the elector exits
	// their role (§4.4).
	RevokeOnExit bool
	// TTL bounds the delegation's life; zero uses the service default.
	TTL time.Duration
}

// electionCtx carries a validated delegation into rule application.
type electionCtx struct {
	rule       *rdl.Rule
	electorEnv value.Env
	deleg      *cert.Delegation
}

// Delegate issues a delegation certificate and, when the rolefile makes
// the delegation revocable (the star on the election operator, §3.2.3),
// a matching revocation certificate. Both parties must agree: the
// candidate later accepts by presenting the delegation certificate when
// entering the role (§4.4).
func (s *Service) Delegate(req DelegateRequest) (*cert.Delegation, *cert.Revocation, error) {
	st, err := s.rolefileFor(req.Rolefile)
	if err != nil {
		return nil, nil, err
	}
	if err := s.Validate(req.ElectorCert, req.Client); err != nil {
		return nil, nil, err
	}
	// Find the first election rule for this role whose elector role the
	// certificate carries.
	var rule *rdl.Rule
	var rt *ruleTypes
	for i, r := range st.rf.File.Rules {
		if r.Head.Name != req.Role || r.Elector == nil {
			continue
		}
		if !s.HasRole(req.ElectorCert, st.id, r.Elector.Name) {
			continue
		}
		rule, rt = r, st.ruleTypes[i]
		break
	}
	if rule == nil {
		return nil, nil, s.fail(Erroneous, "no election rule lets %v delegate %s", req.Client, req.Role)
	}

	// Bind elector-side variables: elector role arguments and, if given,
	// the delegated role's arguments.
	env := value.Env{}
	if len(rule.Elector.Args) > 0 {
		e, ok, err := rdl.MatchArgs(rule.Elector.Args, rt.elector, req.ElectorCert.Args, env)
		if err != nil || !ok {
			return nil, nil, s.fail(Erroneous, "elector certificate arguments do not fit rule")
		}
		env = e
	}
	if req.Args != nil {
		e, ok, err := rdl.MatchArgs(rule.Head.Args, rt.head, req.Args, env)
		if err != nil || !ok {
			return nil, nil, s.fail(Erroneous, "delegated role arguments do not fit rule")
		}
		env = e
	}

	// The delegation's credential record. Continued elector membership
	// (a starred elector role, §3.2.3) and revoke-on-exit both make it a
	// child of the elector's own record, so exit or revocation of the
	// elector cascades to the delegation.
	var delegCRR credrec.Ref
	if rule.Elector.Starred || req.RevokeOnExit {
		delegCRR = s.store.NewDerived(credrec.OpAnd, credrec.Of(req.ElectorCert.CRR))
	} else {
		delegCRR = s.store.NewFact(credrec.True)
	}
	if req.RevokeOnExit {
		if err := s.store.MarkAutoRevoke(delegCRR); err != nil {
			return nil, nil, err
		}
	}

	ttl := req.TTL
	if ttl == 0 {
		ttl = s.opts.DelegationTTL
	}
	var expiry time.Time
	if ttl > 0 {
		expiry = s.clk.Now().Add(ttl)
	}
	d := &cert.Delegation{
		Service:  s.name,
		Rolefile: st.id,
		Role:     req.Role,
		Args:     req.Args,
		Required: req.Required,
		DelegCRR: delegCRR,
		Expiry:   expiry,
	}
	d.Sign(s.signer)

	s.delegMu.Lock()
	s.delegations[delegCRR] = &delegInfo{
		rolefile:   st.id,
		rule:       rule,
		electorEnv: env,
		expiry:     expiry,
	}
	s.delegMu.Unlock()

	// A revocation certificate is returned only when the rolefile makes
	// the delegation revocable (§3.2.3: the star on the <| operator).
	var rev *cert.Revocation
	if rule.ElectStarred {
		rev = &cert.Revocation{
			Service:      s.name,
			DelegatorCRR: req.ElectorCert.CRR,
			TargetCRR:    delegCRR,
		}
		rev.Sign(s.signer)
	}
	return d, rev, nil
}

// EnterDelegated performs role entry by election: the candidate accepts
// a delegation by presenting the delegation certificate together with
// certificates for the roles the delegator and the rolefile require
// (§4.4: a separate RPC from standard entry).
func (s *Service) EnterDelegated(req EnterRequest) (*cert.RMC, error) {
	d := req.Delegation
	if d == nil {
		return nil, s.fail(Erroneous, "no delegation certificate supplied")
	}
	if d.Service != s.name {
		return nil, s.fail(Erroneous, "delegation issued by %q presented to %q", d.Service, s.name)
	}
	if !d.Verify(s.signer) {
		return nil, s.fail(Fraud, "delegation signature check failed")
	}
	if !d.Expiry.IsZero() && s.clk.Now().After(d.Expiry) {
		return nil, s.fail(Revoked, "delegation expired")
	}
	if !s.store.Valid(d.DelegCRR) {
		return nil, s.fail(Revoked, "delegation revoked")
	}
	s.delegMu.Lock()
	info, ok := s.delegations[d.DelegCRR]
	s.delegMu.Unlock()
	if !ok {
		return nil, s.fail(Erroneous, "unknown delegation")
	}
	st, err := s.rolefileFor(info.rolefile)
	if err != nil {
		return nil, err
	}
	list, err := s.initialList(st, req.Client, req.Creds)
	if err != nil {
		return nil, err
	}
	// The candidate must hold every role the delegator required.
	for _, spec := range d.Required {
		if !holdsSpec(list, spec) {
			return nil, s.fail(Erroneous, "candidate lacks required role %s", spec)
		}
	}
	ec := &electionCtx{rule: info.rule, electorEnv: info.electorEnv, deleg: d}
	list = s.applyRules(st, req, list, ec)
	if req.Role == "" {
		req.Role = d.Role
	}
	return s.selectAndIssue(st, req, list)
}

// applyElection applies the election rule enabled by a delegation.
func (s *Service) applyElection(st *rolefileState, rt *ruleTypes, req EnterRequest, idx heldIndex, ec *electionCtx) *held {
	rule := ec.rule
	env := ec.electorEnv.Clone().Extend("@host", value.Str(req.Client.Host))
	if ec.deleg.Args != nil {
		e, ok, err := rdl.MatchArgs(rule.Head.Args, rt.head, ec.deleg.Args, env)
		if err != nil || !ok {
			return nil
		}
		env = e
	}
	var parents []credrec.Parent
	var revokers []revokerReq
	for ci := range rule.Candidates {
		cand := &rule.Candidates[ci]
		h, e := matchCandidate(cand, rt.candidates[ci], idx, env)
		if h == nil {
			return nil
		}
		env = e
		if cand.Starred {
			ps, rs := h.starSupport()
			parents = append(parents, ps...)
			revokers = append(revokers, rs...)
		}
	}
	env2, conds, ok := s.evalConstraint(rule.Constraint, env)
	if !ok {
		return nil
	}
	env = env2
	parents = append(parents, s.condParents(conds)...)

	// The delegation itself: starred election (revocable) and starred
	// elector membership are both represented by the delegation record.
	if rule.ElectStarred || rule.Elector.Starred {
		parents = append(parents, credrec.Of(ec.deleg.DelegCRR))
	}

	args, err := rdl.InstantiateArgs(rule.Head.Args, rt.head, env)
	if err != nil {
		return nil
	}
	if rule.Revoker != nil {
		revokers = append(revokers, revokerReq{
			revokerRole: rule.Revoker.Name,
			instance:    instanceKey(rule.Head.Name, args),
		})
	}
	return &held{
		rolefile: st.id,
		name:     rule.Head.Name,
		args:     args,
		types:    rt.head,
		parents:  parents,
		revokers: revokers,
	}
}

// holdsSpec reports whether the membership list covers a required role.
func holdsSpec(list []*held, spec cert.RoleSpec) bool {
	for _, h := range list {
		if h.name != spec.Role || h.service != spec.Service {
			continue
		}
		if spec.Rolefile != "" && h.rolefile != spec.Rolefile {
			continue
		}
		if !argsEqual(h.args, spec.Args) {
			continue
		}
		return true
	}
	return false
}

// Revoke honours a revocation certificate (§4.4): the delegator must
// still be a member of the delegating role, witnessed by the embedded
// DelegatorCRR; the target delegation record is then invalidated, which
// cascades to every certificate that depended on it.
func (s *Service) Revoke(rev *cert.Revocation) error {
	if rev.Service != s.name {
		return s.fail(Erroneous, "revocation issued by %q presented to %q", rev.Service, s.name)
	}
	if !rev.Verify(s.signer) {
		return s.fail(Fraud, "revocation signature check failed")
	}
	if !s.store.Valid(rev.DelegatorCRR) {
		return s.fail(Revoked, "revoker is no longer a member of the delegating role")
	}
	if err := s.batchNotify(func() error { return s.store.Invalidate(rev.TargetCRR) }); err != nil {
		return s.fail(Revoked, "delegation already gone: %v", err)
	}
	s.delegMu.Lock()
	delete(s.delegations, rev.TargetCRR)
	s.delegMu.Unlock()
	return nil
}

// RevokeByRole performs role-based revocation (§3.3.2, §4.11): a client
// holding the revoker role names the role instance — by its parameters,
// since the revoker may not know the member's identity — and the
// instance is revoked forever (until reinstated).
func (s *Service) RevokeByRole(revoker *cert.RMC, caller ids.ClientID, rolefile, role string, args []value.Value) error {
	st, err := s.rolefileFor(rolefile)
	if err != nil {
		return err
	}
	if err := s.Validate(revoker, caller); err != nil {
		return err
	}
	key := instanceKey(role, args)
	st.mu.Lock()
	entry, ok := st.revocable[key]
	st.mu.Unlock()
	if !ok {
		return s.fail(Erroneous, "no revocable instance %s", key)
	}
	if !s.HasRole(revoker, st.id, entry.revokerRole) {
		return s.fail(Erroneous, "caller does not hold revoker role %s", entry.revokerRole)
	}
	if err := s.batchNotify(func() error { return s.store.Invalidate(entry.crr) }); err != nil && err != credrec.ErrDangling {
		return err
	}
	st.mu.Lock()
	st.revoked[key] = true
	delete(st.revocable, key)
	st.mu.Unlock()
	return nil
}

// Reinstate removes a role instance from the revoked-forever database,
// restoring hire / fire / re-hire semantics (§4.11). The caller must
// hold the revoker role for some rule defining the role.
func (s *Service) Reinstate(revoker *cert.RMC, caller ids.ClientID, rolefile, role string, args []value.Value) error {
	st, err := s.rolefileFor(rolefile)
	if err != nil {
		return err
	}
	if err := s.Validate(revoker, caller); err != nil {
		return err
	}
	allowed := false
	for _, r := range st.rf.File.Rules {
		if r.Head.Name == role && r.Revoker != nil && s.HasRole(revoker, st.id, r.Revoker.Name) {
			allowed = true
			break
		}
	}
	if !allowed {
		return s.fail(Erroneous, "caller may not reinstate %s", role)
	}
	key := instanceKey(role, args)
	st.mu.Lock()
	delete(st.revoked, key)
	st.mu.Unlock()
	return nil
}

// ExpireTick invalidates delegations whose lifetime has passed (§4.4:
// automatic revocation prevents un-revokable delegations and lets the
// server delete stale revocation state). Call it periodically.
func (s *Service) ExpireTick() int {
	now := s.clk.Now()
	s.delegMu.Lock()
	var expired []credrec.Ref
	for ref, info := range s.delegations {
		if !info.expiry.IsZero() && now.After(info.expiry) {
			expired = append(expired, ref)
			delete(s.delegations, ref)
		}
	}
	s.delegMu.Unlock()
	for _, ref := range expired {
		_ = s.store.Invalidate(ref) // already-gone records are fine
	}
	return len(expired)
}
