package oasis

import (
	"net"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// TestCrossProcessInterworkingOverTCP runs the figure 4.8 scenario with
// the two services on *separate* networks joined by a real TCP socket:
// the Conference validates Login certificates remotely, builds an
// external credential record, and receives Modified events over the
// wire when the user logs off. This is the architecture's
// "inherently distributed" claim exercised end to end.
func TestCrossProcessInterworkingOverTCP(t *testing.T) {
	RegisterWireTypes()
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))

	// "Process" 1: the Login service.
	loginNet := bus.NewNetwork(clk)
	login, err := New("Login", clk, loginNet, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`); err != nil {
		t.Fatal(err)
	}
	loginLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = loginNet.ServeTCP(loginLn) }()
	defer loginLn.Close()

	// "Process" 2: the Conference service.
	confNet := bus.NewNetwork(clk)
	conf, err := New("Conf", clk, confNet, Options{})
	if err != nil {
		t.Fatal(err)
	}
	confLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = confNet.ServeTCP(confLn) }()
	defer confLn.Close()

	// Join the two networks: each knows the other by name over TCP.
	if err := confNet.AddRemote("Login", loginLn.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer confNet.CloseRemotes()
	if err := loginNet.AddRemote("Conf", confLn.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer loginNet.CloseRemotes()

	// Now the Conference can resolve Login's types over the wire.
	if err := conf.AddRolefile("main", `Member(u) <- Login.LoggedOn(u, h)*`); err != nil {
		t.Fatal(err)
	}

	host := ids.NewHostAuthority("ely", clk.Now())
	client := host.NewDomain()
	loggedOn, err := login.Enter(EnterRequest{
		Client: client, Rolefile: "main", Role: "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", "dm"),
			value.Object("Login.host", "ely"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Entry at Conf validates the certificate over TCP and subscribes to
	// Modified events across the socket.
	member, err := conf.Enter(EnterRequest{
		Client: client, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{loggedOn},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := conf.Validate(member, client); err != nil {
		t.Fatal(err)
	}

	// Logout at Login: the Modified event crosses the TCP link and the
	// Conference membership dies.
	if err := login.Exit(loggedOn, client); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for conf.Validate(member, client) == nil {
		if time.Now().After(deadline) {
			t.Fatal("membership still valid: Modified event never crossed the TCP link")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A forged certificate is rejected across the wire too.
	forged := *loggedOn
	forged.Args = []value.Value{
		value.Object("Login.userid", "root"),
		value.Object("Login.host", "ely"),
	}
	if _, err := conf.Enter(EnterRequest{
		Client: client, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{&forged},
	}); err == nil {
		t.Fatal("forged certificate accepted over TCP")
	}
}
