package oasis

import (
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/clock"
	"oasis/internal/credrec"
)

// shardRig is a 4-member shard cluster on one in-process bus: each
// member is a full service with its own store, joined into one ring.
type shardRig struct {
	clk   *clock.Virtual
	net   *bus.Network
	names []string
	svcs  map[string]*Service
}

func newShardRig(t *testing.T, opts Options) *shardRig {
	t.Helper()
	clk := clock.NewVirtual(time.Date(1997, 5, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)
	names := []string{"shardA", "shardB", "shardC", "shardD"}
	rig := &shardRig{clk: clk, net: net, names: names, svcs: make(map[string]*Service)}
	for _, n := range names {
		svc, err := New(n, clk, net, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.JoinShardRing(names, 2); err != nil {
			t.Fatal(err)
		}
		rig.svcs[n] = svc
	}
	return rig
}

func TestJoinShardRingValidation(t *testing.T) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	net := bus.NewNetwork(clk)
	svc, err := New("lonely", clk, net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.JoinShardRing([]string{"a", "b"}, 2); err == nil {
		t.Fatal("joined a ring that does not include the service")
	}
	if got := svc.ShardRingMembers(); got != nil {
		t.Fatalf("members before join: %v", got)
	}
	if err := svc.JoinShardRing([]string{"lonely", "b"}, 2); err != nil {
		t.Fatal(err)
	}
	if got := svc.ShardRingMembers(); len(got) != 2 {
		t.Fatalf("members after join: %v", got)
	}
}

// TestShardImportAndDisseminate drives the full cross-shard cascade:
// shardA owns a fact; every other member imports it and derives from
// the surrogate. Revoking at A must propagate down A's tree and fell
// the derived records everywhere.
func TestShardImportAndDisseminate(t *testing.T) {
	rig := newShardRig(t, Options{})
	owner := rig.svcs["shardA"]
	fact := owner.Store().NewFact(credrec.True)

	derived := make(map[string]credrec.Ref)
	for _, n := range rig.names[1:] {
		svc := rig.svcs[n]
		local, err := svc.ImportShardRecord("shardA", fact)
		if err != nil {
			t.Fatal(err)
		}
		if st, _ := svc.Store().Lookup(local); st != credrec.True {
			t.Fatalf("%s surrogate state %v after import, want True", n, st)
		}
		derived[n] = svc.Store().NewDerived(credrec.OpAnd, credrec.Of(local))
	}

	// Non-permanent flap: True -> False -> True tracks everywhere.
	if err := owner.Store().SetState(fact, credrec.False); err != nil {
		t.Fatal(err)
	}
	for _, n := range rig.names[1:] {
		if st, _ := rig.svcs[n].Store().Lookup(derived[n]); st != credrec.False {
			t.Fatalf("%s derived state %v after owner falsified, want False", n, st)
		}
	}
	if err := owner.Store().SetState(fact, credrec.True); err != nil {
		t.Fatal(err)
	}
	for _, n := range rig.names[1:] {
		if st, _ := rig.svcs[n].Store().Lookup(derived[n]); st != credrec.True {
			t.Fatalf("%s derived state %v after owner restored, want True", n, st)
		}
	}

	// Permanent revocation is forever, cluster-wide.
	if err := owner.Store().Invalidate(fact); err != nil {
		t.Fatal(err)
	}
	for _, n := range rig.names[1:] {
		svc := rig.svcs[n]
		st, perm, _ := svc.Store().Resolve(derived[n])
		if st != credrec.False || !perm {
			t.Fatalf("%s derived (%v, perm=%v) after revocation, want permanent False", n, st, perm)
		}
	}
}

// TestShardImportRevokedRecord checks that importing a record that was
// revoked and swept at the owner yields a permanently false surrogate:
// revocation survives garbage collection.
func TestShardImportRevokedRecord(t *testing.T) {
	rig := newShardRig(t, Options{})
	owner := rig.svcs["shardA"]
	fact := owner.Store().NewFact(credrec.True)
	if err := owner.Store().Invalidate(fact); err != nil {
		t.Fatal(err)
	}
	owner.Store().Sweep()
	local, err := rig.svcs["shardB"].ImportShardRecord("shardA", fact)
	if err != nil {
		t.Fatal(err)
	}
	st, perm, _ := rig.svcs["shardB"].Store().Resolve(local)
	if st != credrec.False || !perm {
		t.Fatalf("surrogate of swept record is (%v, perm=%v), want permanent False", st, perm)
	}
}

// TestShardSuspicionAndResync partitions a tree edge mid-stream: the
// starved member degrades the origin and fails safe; after heal, the
// origin's next tree heartbeat plus AutoResync restore the truth —
// including a revocation issued during the partition.
func TestShardSuspicionAndResync(t *testing.T) {
	rig := newShardRig(t, Options{HeartbeatEvery: 5 * time.Second, FailsafeMissed: 3, AutoResync: true})
	owner, watcher := rig.svcs["shardA"], rig.svcs["shardB"]
	kept := owner.Store().NewFact(credrec.True)
	doomed := owner.Store().NewFact(credrec.True)
	keptLocal, err := watcher.ImportShardRecord("shardA", kept)
	if err != nil {
		t.Fatal(err)
	}
	doomedLocal, err := watcher.ImportShardRecord("shardA", doomed)
	if err != nil {
		t.Fatal(err)
	}

	// shardB is shardA's direct child in the tree rooted at shardA
	// (sorted members, fanout 2): sever that edge both ways.
	rig.net.FailLink("shardA", "shardB")

	// Silence for FailsafeMissed periods: Suspect, then Failed.
	for i := 0; i < 4; i++ {
		rig.clk.Advance(5 * time.Second)
		owner.HeartbeatTick()
		watcher.SuspicionTick()
	}
	if st := watcher.SourceStatus("shardA"); st != SourceFailed {
		t.Fatalf("source status %v after prolonged silence, want failed", st)
	}
	if st, _ := watcher.Store().Lookup(keptLocal); st != credrec.False {
		t.Fatalf("surrogate %v after fail-safe, want False", st)
	}

	// Revocation issued while partitioned: the treeforward to shardB is
	// dropped on the severed link.
	if err := owner.Store().Invalidate(doomed); err != nil {
		t.Fatal(err)
	}

	// Heal. The next tree heartbeat revives the source; AutoResync pulls
	// the authoritative snapshot, restoring kept and revoking doomed.
	rig.net.HealLink("shardA", "shardB")
	rig.clk.Advance(5 * time.Second)
	owner.HeartbeatTick()
	watcher.SuspicionTick()
	if st := watcher.SourceStatus("shardA"); st != SourceAlive {
		t.Fatalf("source status %v after heal+resync, want alive", st)
	}
	if st, _ := watcher.Store().Lookup(keptLocal); st != credrec.True {
		t.Fatalf("kept surrogate %v after resync, want True", st)
	}
	st, perm, _ := watcher.Store().Resolve(doomedLocal)
	if st != credrec.False || !perm {
		t.Fatalf("doomed surrogate (%v, perm=%v) after resync, want permanent False", st, perm)
	}
}

// TestClusterPendingNotifications checks that treeforward bursts
// piggyback the origin's backlog into every member's cluster-wide
// figure, and that a peer declared failed stops contributing.
func TestClusterPendingNotifications(t *testing.T) {
	rig := newShardRig(t, Options{HeartbeatEvery: 5 * time.Second, FailsafeMissed: 3})
	watcher := rig.svcs["shardB"]
	base := watcher.ClusterPendingNotifications()

	// Two origins report backlogs over the tree; the figures add up.
	for origin, claim := range map[string]int{"shardA": 42, "shardC": 7} {
		if _, err := watcher.Call(origin, "treeforward",
			TreeForwardArg{Origin: origin, Root: origin, Pressure: claim}); err != nil {
			t.Fatal(err)
		}
	}
	after := watcher.ClusterPendingNotifications()
	if after != base+49 {
		t.Fatalf("cluster pressure %d after peer claims, want %d", after, base+49)
	}

	// Once shardA goes silent long enough to be declared failed, its
	// stale claim must vanish from the aggregate.
	for i := 0; i < 4; i++ {
		rig.clk.Advance(5 * time.Second)
		// shardC keeps heartbeating over the tree; only shardA is silent.
		if _, err := watcher.Call("shardC", "treeforward",
			TreeForwardArg{Origin: "shardC", Root: "shardC", Pressure: 7}); err != nil {
			t.Fatal(err)
		}
		watcher.SuspicionTick()
	}
	if st := watcher.SourceStatus("shardA"); st != SourceFailed {
		t.Fatalf("source status %v, want failed", st)
	}
	cleared := watcher.ClusterPendingNotifications()
	if cleared != base+7 {
		t.Fatalf("cluster pressure %d after shardA failed, want %d (shardC's claim only)", cleared, base+7)
	}
}

func TestCoalesceShardEdges(t *testing.T) {
	r1 := credrec.Ref{Index: 1, Magic: 7}
	r2 := credrec.Ref{Index: 2, Magic: 9}
	edges := []ShardEdge{
		{Ref: r1, State: credrec.True},
		{Ref: r2, State: credrec.False, Permanent: true},
		{Ref: r1, State: credrec.False},
		{Ref: r2, State: credrec.True}, // must not undo the revocation
	}
	out := coalesceShardEdges(edges)
	if len(out) != 2 {
		t.Fatalf("coalesced to %d edges, want 2", len(out))
	}
	if out[0].Ref != r1 || out[0].State != credrec.False {
		t.Fatalf("edge 0 = %+v, want r1 False (last writer wins)", out[0])
	}
	if out[1].Ref != r2 || out[1].State != credrec.False || !out[1].Permanent {
		t.Fatalf("edge 1 = %+v, want r2 permanent False (sticky)", out[1])
	}
}
