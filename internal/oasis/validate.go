package oasis

import (
	"fmt"
	"sync/atomic"

	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/ids"
)

// FailureClass classifies validation failures (§4.2): fraud (forged,
// tampered, stolen certificates or impersonated clients), erroneous use
// (wrong service or context, insufficient rights), and revocation — the
// only class a well-behaved client can trigger.
type FailureClass int

// Validation failure classes.
const (
	Fraud FailureClass = iota + 1
	Erroneous
	Revoked
)

// String names the class.
func (c FailureClass) String() string {
	switch c {
	case Fraud:
		return "fraud"
	case Erroneous:
		return "erroneous"
	case Revoked:
		return "revoked"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// ValidationError reports why a certificate was rejected, carrying the
// failure class so services can record fraud separately (§4.2, §4.13).
type ValidationError struct {
	Class  FailureClass
	Reason string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("oasis: certificate rejected (%s): %s", e.Class, e.Reason)
}

// Audit holds the per-class rejection counters and issuance counts that
// §4.13 notes are available for administration.
type Audit struct {
	Issued     uint64
	Validated  uint64
	FraudCount uint64
	ErrorCount uint64
	Revocation uint64
}

// auditCounters is the live, concurrently-updated form of Audit: plain
// atomics, so the validation success path and AuditSnapshot never take
// a lock (and never race — the seed serialised increments behind the
// service mutex but still handed out copies mid-update).
type auditCounters struct {
	issued     atomic.Uint64
	validated  atomic.Uint64
	fraud      atomic.Uint64
	errors     atomic.Uint64
	revocation atomic.Uint64
}

// AuditSnapshot returns a copy of the audit counters.
func (s *Service) AuditSnapshot() Audit {
	return Audit{
		Issued:     s.audit.issued.Load(),
		Validated:  s.audit.validated.Load(),
		FraudCount: s.audit.fraud.Load(),
		ErrorCount: s.audit.errors.Load(),
		Revocation: s.audit.revocation.Load(),
	}
}

func (s *Service) countFailure(c FailureClass) {
	switch c {
	case Fraud:
		s.audit.fraud.Add(1)
	case Erroneous:
		s.audit.errors.Add(1)
	case Revoked:
		s.audit.revocation.Add(1)
	}
}

func (s *Service) fail(class FailureClass, format string, args ...any) *ValidationError {
	s.countFailure(class)
	return &ValidationError{Class: class, Reason: fmt.Sprintf(format, args...)}
}

// Validate performs the three-stage validation of §4.2 on a role
// membership certificate presented by caller:
//  1. the caller's identity must match the certificate's bound client
//     (the transport authenticates the low-level identifier);
//  2. the signature must verify, proving integrity and context;
//  3. the embedded credential record must currently be true.
//
// Checking that the certificate embodies sufficient rights for an
// operation is application-specific and not done here.
func (s *Service) Validate(c *cert.RMC, caller ids.ClientID) error {
	if c == nil {
		return s.fail(Erroneous, "no certificate supplied")
	}
	if c.Client != caller {
		// Condition 1/3: acting under another identifier, or a stolen
		// certificate.
		return s.fail(Fraud, "certificate bound to %v presented by %v", c.Client, caller)
	}
	if c.Service != s.name {
		// Condition 4: issued by a different service.
		return s.fail(Erroneous, "certificate issued by %q presented to %q", c.Service, s.name)
	}
	if !s.verifyCert(c) {
		// Condition 2: forged or modified.
		return s.fail(Fraud, "signature check failed")
	}
	if !c.Expiry.IsZero() && s.clk.Now().After(c.Expiry) {
		return s.fail(Revoked, "certificate expired")
	}
	state, err := s.store.Lookup(c.CRR)
	if err != nil || state != credrec.True {
		// Condition 6: revoked, or possibly revoked (unknown state must
		// be treated as revoked, §4.2 footnote).
		return s.fail(Revoked, "credential record %v is %v", c.CRR, stateName(state, err))
	}
	s.audit.validated.Add(1)
	return nil
}

func stateName(st credrec.State, err error) string {
	if err != nil {
		return "deleted"
	}
	return st.String()
}

// HasRole checks a validated certificate for membership of a named role
// within a rolefile (the application-specific stage 4 helper).
func (s *Service) HasRole(c *cert.RMC, rolefile, role string) bool {
	st, err := s.rolefileFor(rolefile)
	if err != nil || c.Rolefile != st.id {
		return false
	}
	bit, ok := st.roleMap.Bit(role)
	return ok && c.Roles.Has(bit)
}

// RoleNames expands a certificate's compound role set to names.
func (s *Service) RoleNames(c *cert.RMC) []string {
	st, err := s.rolefileFor(c.Rolefile)
	if err != nil {
		return nil
	}
	return st.roleMap.Names(c.Roles)
}

// Exit voluntarily gives up a role membership (§4.4 footnote): the
// certificate's credential record is permanently invalidated, cascading
// to anything derived from it — including delegations that asked for
// revocation on exit.
func (s *Service) Exit(c *cert.RMC, caller ids.ClientID) error {
	if err := s.Validate(c, caller); err != nil {
		return err
	}
	return s.batchNotify(func() error { return s.store.Invalidate(c.CRR) })
}
