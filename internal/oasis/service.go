// Package oasis implements the OASIS service engine — the paper's
// primary contribution. A Service names its clients with roles defined
// in RDL rolefiles (chapter 3), issues and validates role membership
// certificates (chapter 4), supports delegation/election with
// revocation certificates, implements role-based revocation (§4.11),
// maintains the credential record graph that makes revocation rapid and
// selective, and interworks with other services through certificate
// validation callbacks and event notification over external credential
// records (§4.9).
package oasis

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/credrec"
	"oasis/internal/event"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

// Options configure a Service.
type Options struct {
	// Signer provides the integrity check; defaults to an HMAC signer
	// with a random-ish (name-derived) secret, which is fine for tests
	// and simulations. Production services supply their own.
	Signer cert.Signer
	// CertTTL is the default lifetime of issued role membership
	// certificates. Zero means no expiry.
	CertTTL time.Duration
	// DelegationTTL is the default lifetime of delegation certificates
	// (§4.4: a safety net against lost revocation certificates).
	DelegationTTL time.Duration
	// HeartbeatEvery is the inter-service heartbeat period t (§4.10).
	HeartbeatEvery time.Duration
	// FailsafeMissed is the number of heartbeat periods a watched
	// source may stay silent before it is declared failed and every
	// credential record dependent on it fails safe to False (§6.8.4).
	// Zero means 3.
	FailsafeMissed int
	// AutoResync resynchronises external records automatically when a
	// degraded source is heard from again (a partition heals) or a
	// notification gap is detected, instead of waiting for an explicit
	// Reconnect call.
	AutoResync bool
	// OnSourceState, if set, observes failure-suspicion transitions of
	// watched sources; services use it for audit logging.
	OnSourceState func(source string, from, to SourceState)
	// Funcs are the server-specific constraint functions (§3.3.1).
	Funcs rdl.FuncTable
	// ExtraParents, if set, lets the embedding service contribute
	// additional membership-rule parents at certificate issue time —
	// the "considerable cooperation from the service itself" that
	// attribute-based membership rules need (§3.3.1). The MSSA uses it
	// to tie certificates to ACL-version records (§5.5.2).
	ExtraParents func(rolefile, role string, args []value.Value) []credrec.Parent
	// RDLMode selects how entry rules are evaluated; the default
	// (RDLAuto) uses the compiled execution plan unless the
	// OASIS_RDL_INTERP=1 environment variable forces the interpreter.
	RDLMode RDLMode
	// Store, if set, is the credential-record store the service runs
	// on — typically a recovered, journaling store from the
	// persistence engine (internal/credrec/storage), so certificates
	// issued before a crash validate after recovery and revocations
	// stay revoked. Nil means a fresh in-memory store.
	Store credrec.Recorder
}

// RDLMode selects the role-entry rule evaluation strategy.
type RDLMode int

// The evaluation strategies. RDLDifferential runs both and panics on
// any divergence — the differential-testing seam.
const (
	RDLAuto RDLMode = iota
	RDLCompiled
	RDLInterpreter
	RDLDifferential
)

// Service is one OASIS service instance.
//
// The engine is read-mostly: the validation hot path (§4.2/§4.6) takes
// no service lock at all — the signature check is lock-free, the
// credential-record lookup takes one store shard read lock, and the
// audit counters are atomics. State that changes rarely (installed
// rolefiles, foreign type signatures) sits behind RWMutexes; mutable
// bookkeeping is split into small independent leaf locks so issuance,
// delegation and interworking contend only on what they actually touch.
//
// Lock order: each of rfMu, typeMu, watchMu, extMu, delegMu and a
// rolefileState.mu is a leaf — no code path acquires one while holding
// another. Store and broker locks may be acquired while holding a
// service leaf lock, never the reverse (the store's change callbacks
// fire with no store lock held).
type Service struct {
	name   string
	clk    clock.Clock
	net    *bus.Network
	signer cert.Signer
	sigs   *cert.VerifyCache // cross-instance verified-signature cache
	opts   Options

	store    credrec.Recorder
	groups   *credrec.Groups
	broker   *event.Broker
	receiver *event.Receiver

	rfMu      sync.RWMutex // read-mostly: installed rolefiles
	rolefiles map[string]*rolefileState

	typeMu    sync.RWMutex // read-mostly: foreign role signatures
	typeCache map[string][]value.Type

	// watch state: which peers watch which of our records
	watchMu       sync.Mutex
	watchSessions map[string]uint64   // peer -> broker session
	watchRegs     map[watchKey]uint64 // (peer, record) -> registration

	// external-record surrogates for remote credential records (§4.9.1)
	extMu      sync.Mutex
	extRecords map[extKey]credrec.Ref

	// failure-suspicion state per watched source (§4.10 / §6.8.4)
	suspMu    sync.Mutex
	suspicion map[string]SourceState
	resyncing map[string]bool

	// delegation bookkeeping (server-side state per §4.4/§4.11)
	delegMu     sync.Mutex
	delegations map[credrec.Ref]*delegInfo

	// cluster is the shard ring this service joined, nil outside one
	// (shard.go). Atomic so the record-change callback reads it
	// lock-free on the cascade hot path.
	cluster atomic.Pointer[shardCluster]

	// rdlMode is fixed at construction (RDLAuto resolved against the
	// environment), so the entry path reads it without synchronisation.
	rdlMode RDLMode
	// memberKeys memoizes the marshalled group-membership key of
	// non-string values (sets, integers), so repeated oracle probes on
	// the same principal stop re-marshalling. Keyed by value.Value
	// (comparable); the population is bounded by the principals the
	// installed policies test, so the map is never evicted.
	memberKeys sync.Map

	audit auditCounters
}

// delegInfo is the server-side record of an outstanding delegation.
type delegInfo struct {
	rolefile   string
	rule       *rdl.Rule
	electorEnv value.Env
	expiry     time.Time
}

// rolefileState is one loaded rolefile and its runtime indexes. The
// parsed rolefile and type/role maps are immutable after installation;
// only the revocation databases mutate, behind the state's own mutex.
type rolefileState struct {
	id      string
	rf      *rdl.Rolefile
	roleMap *cert.RoleMap
	// per-rule resolved argument types
	ruleTypes []*ruleTypes
	// prog is the compiled execution plan, built once at installation;
	// machines pools the register machines that run it.
	prog     *rdl.Program
	machines sync.Pool
	// role-based revocation databases (§4.11)
	mu        sync.Mutex
	revocable map[string]roleRevEntry // role instance -> entry
	revoked   map[string]bool         // revoked-forever role instances
}

type roleRevEntry struct {
	revokerRole string
	crr         credrec.Ref
}

type ruleTypes struct {
	head       []value.Type
	candidates [][]value.Type
	elector    []value.Type
	revoker    []value.Type
}

// New creates a service. net may be nil for a standalone service; clk
// must not be nil.
func New(name string, clk clock.Clock, net *bus.Network, opts Options) (*Service, error) {
	if opts.Signer == nil {
		opts.Signer = cert.NewHMACSigner([]byte("svc-secret:"+name), 16)
	}
	mode := opts.RDLMode
	if mode == RDLAuto {
		switch {
		case os.Getenv("OASIS_RDL_INTERP") == "1":
			mode = RDLInterpreter
		case os.Getenv("OASIS_RDL_DIFF") == "1":
			mode = RDLDifferential
		default:
			mode = RDLCompiled
		}
	}
	s := &Service{
		name:          name,
		clk:           clk,
		net:           net,
		signer:        opts.Signer,
		sigs:          cert.NewVerifyCache(),
		opts:          opts,
		store:         opts.Store,
		rolefiles:     make(map[string]*rolefileState),
		typeCache:     make(map[string][]value.Type),
		watchSessions: make(map[string]uint64),
		delegations:   make(map[credrec.Ref]*delegInfo),
		suspicion:     make(map[string]SourceState),
		resyncing:     make(map[string]bool),
		rdlMode:       mode,
	}
	if s.store == nil {
		s.store = credrec.NewStore()
	}
	s.groups = credrec.NewGroups(s.store)
	s.broker = event.NewBroker(name, clk, event.BrokerOptions{})
	// A sequence gap means a notification — possibly a revocation — was
	// lost; a revived source means a partition healed. Both feed the
	// suspicion machinery (suspicion.go).
	s.receiver = event.NewReceiver(4, s.onNotificationGap)
	s.receiver.OnRevive(s.onSourceRevive)
	s.store.OnChange(s.onRecordChange)
	if net != nil {
		if err := net.Register(name, s); err != nil {
			return nil, err
		}
		// Teach the bus batch path the Modified-event coalescing rule;
		// every service installs the same rule, so this is idempotent.
		net.SetCoalesceRule(modifiedCoalesceRule)
	}
	return s, nil
}

// Name returns the service instance name.
func (s *Service) Name() string { return s.name }

// Store exposes the credential record store (used by case-study layers
// such as the MSSA that manage their own policy records).
func (s *Service) Store() credrec.Recorder { return s.store }

// Groups exposes the group membership manager.
func (s *Service) Groups() *credrec.Groups { return s.groups }

// Broker exposes the service's event broker (application events share
// the channel used for credential-record notification, figure 6.1).
func (s *Service) Broker() *event.Broker { return s.broker }

// Signer exposes the service's signer (the MSSA layers co-sign with it).
func (s *Service) Signer() cert.Signer { return s.signer }

// Clock exposes the service clock.
func (s *Service) Clock() clock.Clock { return s.clk }

// AddRolefile parses, type-checks and installs a rolefile under the
// given scope identifier (§2.10). Role types referenced from other
// services are resolved with gettypes callbacks over the network.
func (s *Service) AddRolefile(id, src string) error {
	file, err := rdl.Parse(src)
	if err != nil {
		return err
	}
	rf, err := rdl.Check(file, s.resolveTypes, s.opts.Funcs)
	if err != nil {
		return err
	}
	names := rf.Roles()
	roleMap, err := cert.NewRoleMap(names...)
	if err != nil {
		return err
	}
	st := &rolefileState{
		id:        id,
		rf:        rf,
		roleMap:   roleMap,
		revocable: make(map[string]roleRevEntry),
		revoked:   make(map[string]bool),
	}
	for _, rule := range rf.File.Rules {
		rt, err := s.typesForRule(rf, rule)
		if err != nil {
			return err
		}
		st.ruleTypes = append(st.ruleTypes, rt)
	}
	// Compile the rolefile once at installation: entry requests run the
	// program's execution plans instead of re-walking the AST. The
	// entry-time signatures (gettypes already resolved) are passed so
	// literal arguments are coerced now, not per request.
	sigs := make([]rdl.RuleSig, len(st.ruleTypes))
	for i, rt := range st.ruleTypes {
		sigs[i] = rdl.RuleSig{
			Head:       rt.head,
			Candidates: rt.candidates,
			Elector:    rt.elector,
			Revoker:    rt.revoker,
		}
	}
	prog, err := rdl.Compile(rf, sigs)
	if err != nil {
		return err
	}
	st.prog = prog
	st.machines.New = func() any { return prog.NewMachine() }
	s.rfMu.Lock()
	defer s.rfMu.Unlock()
	if _, dup := s.rolefiles[id]; dup {
		return fmt.Errorf("oasis: rolefile %q already installed", id)
	}
	s.rolefiles[id] = st
	return nil
}

// typesForRule resolves the argument types of every role reference in a
// rule, so that entry-time matching needs no further callbacks.
func (s *Service) typesForRule(rf *rdl.Rolefile, rule *rdl.Rule) (*ruleTypes, error) {
	resolve := func(ref *rdl.RoleRef) ([]value.Type, error) {
		if ref == nil {
			return nil, nil
		}
		if ref.Local() {
			ts, ok := rf.Types[ref.Name]
			if !ok {
				return nil, fmt.Errorf("oasis: unknown local role %s", ref.Name)
			}
			return ts, nil
		}
		return s.resolveTypes(ref.Service, ref.Rolefile, ref.Name)
	}
	rt := &ruleTypes{}
	var err error
	if rt.head, err = resolve(&rule.Head); err != nil {
		return nil, err
	}
	for i := range rule.Candidates {
		ts, err := resolve(&rule.Candidates[i])
		if err != nil {
			return nil, err
		}
		rt.candidates = append(rt.candidates, ts)
	}
	if rt.elector, err = resolve(rule.Elector); err != nil {
		return nil, err
	}
	if rt.revoker, err = resolve(rule.Revoker); err != nil {
		return nil, err
	}
	return rt, nil
}

// resolveTypes resolves a role signature, consulting the network for
// foreign services and caching the result (§4.3's gettypes).
func (s *Service) resolveTypes(service, rolefile, role string) ([]value.Type, error) {
	if service == s.name || service == "" {
		return s.localTypes(rolefile, role)
	}
	key := service + "." + rolefile + "." + role
	s.typeMu.RLock()
	ts, ok := s.typeCache[key]
	s.typeMu.RUnlock()
	if ok {
		return ts, nil
	}
	if s.net == nil {
		return nil, fmt.Errorf("oasis: no network to resolve %s", key)
	}
	res, err := s.net.Call(s.name, service, "gettypes", GetTypesArg{Rolefile: rolefile, Role: role})
	if err != nil {
		return nil, err
	}
	ts, ok = res.([]value.Type)
	if !ok {
		return nil, fmt.Errorf("oasis: bad gettypes reply from %s", service)
	}
	s.typeMu.Lock()
	s.typeCache[key] = ts
	s.typeMu.Unlock()
	return ts, nil
}

func (s *Service) localTypes(rolefile, role string) ([]value.Type, error) {
	s.rfMu.RLock()
	defer s.rfMu.RUnlock()
	if rolefile == "" {
		// Search all rolefiles; role names are usually unique per service.
		for _, st := range s.rolefiles {
			if ts, ok := st.rf.Types[role]; ok {
				return ts, nil
			}
		}
		return nil, fmt.Errorf("oasis: unknown role %s in service %s", role, s.name)
	}
	st, ok := s.rolefiles[rolefile]
	if !ok {
		return nil, fmt.Errorf("oasis: unknown rolefile %s", rolefile)
	}
	ts, ok := st.rf.Types[role]
	if !ok {
		return nil, fmt.Errorf("oasis: unknown role %s in rolefile %s", role, rolefile)
	}
	return ts, nil
}

// rolefileFor returns the named rolefile state, defaulting to the sole
// installed rolefile when id is empty.
func (s *Service) rolefileFor(id string) (*rolefileState, error) {
	s.rfMu.RLock()
	defer s.rfMu.RUnlock()
	if id == "" {
		if len(s.rolefiles) == 1 {
			for _, st := range s.rolefiles {
				return st, nil
			}
		}
		return nil, fmt.Errorf("oasis: rolefile id required (service has %d rolefiles)", len(s.rolefiles))
	}
	st, ok := s.rolefiles[id]
	if !ok {
		return nil, fmt.Errorf("oasis: unknown rolefile %q", id)
	}
	return st, nil
}

// instanceKey canonically names a role instance for the role-based
// revocation databases (§4.11).
func instanceKey(role string, args []value.Value) string {
	return role + "(" + value.MarshalArgs(args) + ")"
}

// InstanceRevoked reports whether a role instance sits in the
// revoked-forever database (§4.11). Gateways use it to tell an
// idempotent re-revocation (the instance is already revoked — success)
// from a revocation of something that never existed.
func (s *Service) InstanceRevoked(rolefile, role string, args []value.Value) bool {
	st, err := s.rolefileFor(rolefile)
	if err != nil {
		return false
	}
	key := instanceKey(role, args)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.revoked[key]
}
