package oasis

import (
	"errors"
	"testing"
	"time"

	"oasis/internal/cert"
	"oasis/internal/value"
)

// TestValidationFailureClasses walks every failure of §4.2 and checks
// that fraud, erroneous use and revocation are distinguished (E2).
func TestValidationFailureClasses(t *testing.T) {
	h := newHarness(t)
	c := h.client("ely")
	rmc := h.logOn(t, c, "jmb")

	classOf := func(err error) FailureClass {
		t.Helper()
		var verr *ValidationError
		if !errors.As(err, &verr) {
			t.Fatalf("err = %v (not a ValidationError)", err)
		}
		return verr.Class
	}

	// 1. Acting under another identifier / 3. stolen certificate.
	thief := h.client("bad")
	if got := classOf(h.login.Validate(rmc, thief)); got != Fraud {
		t.Errorf("stolen certificate class = %v, want fraud", got)
	}

	// 2. Forged or modified certificate.
	forged := *rmc
	forged.Args = []value.Value{uid("root"), value.Object("Login.host", "ely")}
	if got := classOf(h.login.Validate(&forged, c)); got != Fraud {
		t.Errorf("forged certificate class = %v, want fraud", got)
	}

	// 4. Issued by a different service / wrong context.
	if got := classOf(h.conf.Validate(rmc, c)); got != Erroneous {
		t.Errorf("wrong-service class = %v, want erroneous", got)
	}

	// 6. Revoked certificate — the only well-behaved failure.
	if err := h.login.Exit(rmc, c); err != nil {
		t.Fatal(err)
	}
	if got := classOf(h.login.Validate(rmc, c)); got != Revoked {
		t.Errorf("revoked class = %v, want revoked", got)
	}

	// No certificate at all.
	if got := classOf(h.login.Validate(nil, c)); got != Erroneous {
		t.Errorf("nil certificate class = %v, want erroneous", got)
	}
}

func TestCertificateExpiry(t *testing.T) {
	h := newHarness(t)
	svc, _ := New("TTL", h.clk, h.net, Options{CertTTL: time.Minute})
	if err := svc.AddRolefile("main", `R(u) <- Login.LoggedOn(u, h)`); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	login := h.logOn(t, c, "dm")
	rmc, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "R", Creds: []*cert.RMC{login}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(rmc, c); err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(2 * time.Minute)
	err = svc.Validate(rmc, c)
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Class != Revoked {
		t.Fatalf("expired certificate: %v", err)
	}
}

func TestAuditCounters(t *testing.T) {
	// §4.13: fraudulent and erroneous accesses are recorded and can be
	// distinguished from reasonable (revocation) failures.
	h := newHarness(t)
	c := h.client("ely")
	rmc := h.logOn(t, c, "jmb")
	thief := h.client("bad")

	_ = h.login.Validate(rmc, thief) // fraud
	_ = h.login.Validate(rmc, c)     // ok
	_ = h.login.Exit(rmc, c)
	_ = h.login.Validate(rmc, c) // revoked

	a := h.login.AuditSnapshot()
	if a.Issued != 1 {
		t.Errorf("issued = %d", a.Issued)
	}
	if a.FraudCount != 1 {
		t.Errorf("fraud = %d", a.FraudCount)
	}
	if a.Revocation != 1 {
		t.Errorf("revocation = %d", a.Revocation)
	}
	if a.Validated < 2 { // the ok validate + the one inside Exit
		t.Errorf("validated = %d", a.Validated)
	}
}

func TestValidationCacheability(t *testing.T) {
	// §4.2: once checked, integrity may be cached; the revocation check
	// remains a single record lookup. We verify Valid() is the only
	// thing that flips on revocation, via repeated validations.
	h := newHarness(t)
	c := h.client("ely")
	rmc := h.logOn(t, c, "jmb")
	for i := 0; i < 100; i++ {
		if err := h.login.Validate(rmc, c); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.login.Exit(rmc, c); err != nil {
		t.Fatal(err)
	}
	if err := h.login.Validate(rmc, c); err == nil {
		t.Fatal("revoked certificate validated")
	}
}

func TestHasRoleAndRoleNames(t *testing.T) {
	h := newHarness(t)
	c := h.client("ely")
	rmc := h.logOn(t, c, "jmb")
	if !h.login.HasRole(rmc, "main", "LoggedOn") {
		t.Fatal("HasRole false for held role")
	}
	if h.login.HasRole(rmc, "main", "Chair") {
		t.Fatal("HasRole true for unknown role")
	}
	if h.login.HasRole(rmc, "other", "LoggedOn") {
		t.Fatal("HasRole true for wrong rolefile")
	}
}

func TestRolefileManagement(t *testing.T) {
	h := newHarness(t)
	if err := h.login.AddRolefile("main", `X <-`); err == nil {
		t.Fatal("duplicate rolefile id accepted")
	}
	if err := h.login.AddRolefile("bad", `X <- Y(`); err == nil {
		t.Fatal("syntax error accepted")
	}
	if err := h.login.AddRolefile("bad2", `X(a) <-`); err == nil {
		t.Fatal("uninferrable rolefile accepted")
	}
	if _, err := h.login.rolefileFor("missing"); err == nil {
		t.Fatal("unknown rolefile found")
	}
}
