package oasis

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"oasis/internal/bus"
	"oasis/internal/credrec"
)

// Round-trips, golden vectors and a decoder fuzzer for the sharding
// payloads (wire tags 13 and 14). The golden vectors pin the exact
// byte layout: the tags are append-only protocol constants, so any
// encoder change that shifts these bytes is a protocol break, not a
// refactor.

func shardWirePayloads() []any {
	return []any{
		ShardWatchArg{Refs: []credrec.Ref{{Index: 3, Magic: 99}, {Index: 1 << 27, Magic: 7}}},
		ShardWatchArg{},
		TreeForwardArg{
			Origin: "shardA",
			Root:   "shardA",
			Edges: []ShardEdge{
				{Ref: credrec.Ref{Index: 3, Magic: 99}, State: credrec.True},
				{Ref: credrec.Ref{Index: 9, Magic: 1}, State: credrec.False, Permanent: true},
			},
			Pressure: 42,
		},
		TreeForwardArg{Origin: "shardB", Root: "shardB", Pressure: 7},
	}
}

func TestShardPayloadRoundTrips(t *testing.T) {
	RegisterWireTypes()
	for _, in := range shardWirePayloads() {
		if got := codecRoundTrip(t, in); !reflect.DeepEqual(got, in) {
			t.Fatalf("round trip changed %T:\n got %+v\nwant %+v", in, got, in)
		}
	}
}

func TestShardPayloadGoldenVectors(t *testing.T) {
	RegisterWireTypes()
	vectors := []struct {
		name string
		in   any
		hex  string
	}{
		{"ShardWatchArg", shardWirePayloads()[0], "0d02e380808030878080808080808008"},
		{"TreeForwardArg", shardWirePayloads()[2], "0e067368617264410673686172644102e3808080300400818080809001020154"},
		{"TreeForwardHeartbeat", shardWirePayloads()[3], "0e0673686172644206736861726442000e"},
	}
	for _, v := range vectors {
		t.Run(v.name, func(t *testing.T) {
			var buf bytes.Buffer
			e := bus.NewWireEnc(&buf)
			if err := bus.EncodePayload(e, v.in); err != nil {
				t.Fatal(err)
			}
			if err := e.Flush(); err != nil {
				t.Fatal(err)
			}
			if got := hex.EncodeToString(buf.Bytes()); got != v.hex {
				t.Fatalf("encoding drifted (protocol break):\n got %s\nwant %s", got, v.hex)
			}
			want, err := hex.DecodeString(v.hex)
			if err != nil {
				t.Fatal(err)
			}
			got, err := bus.DecodePayload(bus.NewWireDec(bytes.NewReader(want)))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, v.in) {
				t.Fatalf("golden bytes decoded to %+v, want %+v", got, v.in)
			}
		})
	}
}

// FuzzShardPayloadDecode hammers the tag-13/14 decoders with mutated
// bytes: they must reject garbage with an error, never panic, and any
// accepted input must survive a re-encode/re-decode cycle unchanged.
// (Byte-identity is deliberately not required: varints admit redundant
// encodings, which decode fine but re-encode minimally.)
func FuzzShardPayloadDecode(f *testing.F) {
	RegisterWireTypes()
	for _, in := range shardWirePayloads() {
		var buf bytes.Buffer
		e := bus.NewWireEnc(&buf)
		if err := bus.EncodePayload(e, in); err != nil {
			f.Fatal(err)
		}
		if err := e.Flush(); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := bus.DecodePayload(bus.NewWireDec(bytes.NewReader(data)))
		if err != nil {
			return
		}
		switch v.(type) {
		case ShardWatchArg, TreeForwardArg:
		default:
			return // some other registered payload; its own tests cover it
		}
		var buf bytes.Buffer
		e := bus.NewWireEnc(&buf)
		if err := bus.EncodePayload(e, v); err != nil {
			t.Fatalf("re-encode of accepted %T failed: %v", v, err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		again, err := bus.DecodePayload(bus.NewWireDec(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("re-decode of re-encoded %T failed: %v", v, err)
		}
		if !reflect.DeepEqual(again, v) {
			t.Fatalf("value drifted across re-encode for %T:\n first  %+v\n second %+v", v, v, again)
		}
	})
}
