package oasis

import "oasis/internal/cert"

// verifyCert is the engine's signature check for role membership
// certificates. It consults the cross-instance verified-signature
// cache (cert.VerifyCache): the remote-validation hot path
// deserialises a fresh *cert.RMC per call, so without the cache every
// inbound check would rebuild the canonical byte form and redo the
// HMAC — and a rolling signer would walk every retained secret
// generation per check (§5.5.1). A hit costs one allocation-free field
// comparison against the snapshot verified earlier; a forged body
// carrying a stolen valid signature fails that comparison and takes
// the full verification path; rolling the secret table bumps the
// signer's epoch and expires every cached verdict at once.
func (s *Service) verifyCert(c *cert.RMC) bool {
	return s.sigs.VerifyRMC(c, s.signer)
}
