package oasis

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/event"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// ModifiedEvent is the event type a service signals when a watched
// credential record changes state (§4.9.2). Arguments: the record
// reference (hex string), the new state, and a permanence flag.
const ModifiedEvent = "Oasis.Modified"

// GetTypesArg asks a service for a role's parameter types (§4.3).
type GetTypesArg struct {
	Rolefile string
	Role     string
}

// ValidateArg asks an issuing service to validate a certificate
// presented elsewhere (§2.10: services offer to validate certificates
// for use in other services). Watch additionally subscribes the caller
// to state changes of the certificate's credential record.
type ValidateArg struct {
	Cert   *cert.RMC
	Client ids.ClientID
	Watch  bool
}

// ValidateReply carries the validation verdict, the certificate's role
// names and types, and the registration id for Modified events.
type ValidateReply struct {
	Roles []string
	Types []value.Type
	State credrec.State
	RegID uint64
}

// ReadStateArg reads a record's current state (used on reconnection).
type ReadStateArg struct {
	Ref credrec.Ref
}

// ResyncArg asks an issuing service to re-assert the authoritative
// state of the listed credential records after a communications
// failure (§4.10: "when connection is re-established the state of each
// record is read"). The caller sorts Refs so that the responder's
// reply — and the Modified events it re-signals — come out in a
// deterministic order.
type ResyncArg struct {
	Refs []credrec.Ref
}

// ResyncEntry is one record's authoritative state at the snapshot.
type ResyncEntry struct {
	Ref       credrec.Ref
	State     credrec.State
	Permanent bool
}

// ResyncReply carries the snapshot plus the caller's notification
// stream position at the moment it was taken: every update covered by
// the snapshot was sent at or below Seq, so the caller can seal the
// stream there and know that anything newer still flows.
type ResyncReply struct {
	Session uint64
	Seq     uint64
	Entries []ResyncEntry
}

// Call implements bus.Endpoint: the service's inter-service interface.
func (s *Service) Call(from, op string, arg any) (any, error) {
	switch op {
	case "gettypes":
		a, ok := arg.(GetTypesArg)
		if !ok {
			return nil, fmt.Errorf("oasis: bad gettypes argument %T", arg)
		}
		return s.localTypes(a.Rolefile, a.Role)
	case "validate":
		a, ok := arg.(ValidateArg)
		if !ok {
			return nil, fmt.Errorf("oasis: bad validate argument %T", arg)
		}
		return s.handleValidate(from, a)
	case "readstate":
		a, ok := arg.(ReadStateArg)
		if !ok {
			return nil, fmt.Errorf("oasis: bad readstate argument %T", arg)
		}
		st, err := s.store.Lookup(a.Ref)
		if err != nil {
			return credrec.False, nil // deleted means permanently false
		}
		return st, nil
	case "resync":
		a, ok := arg.(ResyncArg)
		if !ok {
			return nil, fmt.Errorf("oasis: bad resync argument %T", arg)
		}
		return s.handleResync(from, a)
	case "revoke":
		r, ok := arg.(*cert.Revocation)
		if !ok {
			return nil, fmt.Errorf("oasis: bad revoke argument %T", arg)
		}
		return nil, s.Revoke(r)
	case "shardwatch":
		a, ok := arg.(ShardWatchArg)
		if !ok {
			return nil, fmt.Errorf("oasis: bad shardwatch argument %T", arg)
		}
		return s.handleShardWatch(from, a)
	case "treeforward":
		a, ok := arg.(TreeForwardArg)
		if !ok {
			return nil, fmt.Errorf("oasis: bad treeforward argument %T", arg)
		}
		return nil, s.handleTreeForward(from, a)
	default:
		return nil, fmt.Errorf("oasis: unknown operation %q", op)
	}
}

// Deliver implements bus.Endpoint: inbound event notifications go to the
// service's receiver library.
func (s *Service) Deliver(n event.Notification) { s.receiver.Deliver(n) }

// DeliverBatch implements bus.BatchEndpoint: a notification burst (a
// peer's revocation storm) is applied under our own outbound batch, so
// any Modified events it triggers on records derived from the affected
// surrogates fan out downstream as one burst per watcher too.
func (s *Service) DeliverBatch(notes []event.Notification) {
	_ = s.batchNotify(func() error {
		for _, n := range notes {
			s.receiver.Deliver(n)
		}
		return nil
	})
}

var _ bus.Endpoint = (*Service)(nil)
var _ bus.BatchEndpoint = (*Service)(nil)

// modifiedCoalesceRule teaches the bus batch path the Modified-event
// vocabulary (§4.9.2): events for the same record ref supersede each
// other (last writer wins), except a permanent False — revocation is
// forever (§4.6) — which later events must never replace.
var modifiedCoalesceRule = bus.CoalesceRule{
	Key: func(ev event.Event) string {
		if ev.Name != ModifiedEvent || len(ev.Args) != 3 {
			return ""
		}
		return ev.Args[0].S
	},
	Sticky: func(ev event.Event) bool {
		if ev.Name != ModifiedEvent || len(ev.Args) != 3 {
			return false
		}
		return credrec.State(ev.Args[1].I) == credrec.False && ev.Args[2].I != 0
	},
}

// batchNotify runs fn with a notification batch open on the network:
// every Modified event and heartbeat signalled inside is buffered and
// flushed as one coalesced burst per destination when fn returns.
// Revocation cascades and heartbeat ticks route through here.
func (s *Service) batchNotify(fn func() error) error {
	if s.net == nil {
		return fn()
	}
	s.net.StartBatch(s.name)
	defer s.net.EndBatch(s.name)
	return fn()
}

// handleValidate validates one of our certificates on behalf of another
// service, optionally registering that service for Modified events on
// the certificate's credential record.
func (s *Service) handleValidate(from string, a ValidateArg) (ValidateReply, error) {
	c := a.Cert
	if c == nil || c.Service != s.name {
		return ValidateReply{}, fmt.Errorf("oasis: certificate not issued by %s", s.name)
	}
	if !s.verifyCert(c) {
		s.countFailure(Fraud)
		return ValidateReply{}, fmt.Errorf("oasis: signature check failed")
	}
	if !a.Client.IsZero() && c.Client != a.Client {
		s.countFailure(Fraud)
		return ValidateReply{}, fmt.Errorf("oasis: certificate bound to a different client")
	}
	if !c.Expiry.IsZero() && s.clk.Now().After(c.Expiry) {
		return ValidateReply{State: credrec.False}, nil
	}
	fs, err := s.rolefileFor(c.Rolefile)
	if err != nil {
		return ValidateReply{}, err
	}
	state, err := s.store.Lookup(c.CRR)
	if err != nil {
		state = credrec.False
	}
	reply := ValidateReply{
		Roles: fs.roleMap.Names(c.Roles),
		State: state,
	}
	// Expose argument types so the peer can interpret parameters (§4.3).
	if names := reply.Roles; len(names) > 0 {
		reply.Types = fs.rf.Types[names[0]]
	}
	if a.Watch && err == nil {
		regID, werr := s.watchFor(from, c.CRR)
		if werr != nil {
			return ValidateReply{}, werr
		}
		reply.RegID = regID
	}
	return reply, nil
}

// watchFor subscribes a peer service to Modified events for a record.
// watchMu is held across session creation so concurrent validations
// from the same peer share one broker session, and across registration
// so repeat validations of the same record share one registration —
// a record's state change is one notification per watcher, however many
// times the watcher validated it.
func (s *Service) watchFor(peer string, ref credrec.Ref) (uint64, error) {
	if s.net == nil {
		return 0, fmt.Errorf("oasis: no network")
	}
	if err := s.store.MarkNotify(ref); err != nil {
		return 0, err
	}
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	sess, ok := s.watchSessions[peer]
	if !ok {
		var err error
		sess, err = s.broker.OpenSession(s.net.Sink(s.name, peer), nil)
		if err != nil {
			return 0, err
		}
		s.watchSessions[peer] = sess
	}
	if regID, ok := s.watchRegs[watchKey{peer, ref.Uint64()}]; ok {
		return regID, nil
	}
	tmpl := event.NewTemplate(ModifiedEvent,
		event.Lit(value.Str(refString(ref))), event.Wildcard(), event.Wildcard())
	regID, err := s.broker.Register(sess, tmpl)
	if err != nil {
		return 0, err
	}
	if s.watchRegs == nil {
		s.watchRegs = make(map[watchKey]uint64)
	}
	s.watchRegs[watchKey{peer, ref.Uint64()}] = regID
	return regID, nil
}

// watchKey identifies one peer's watch on one of our records.
type watchKey struct {
	peer string
	ref  uint64
}

func refString(ref credrec.Ref) string {
	return strconv.FormatUint(ref.Uint64(), 16)
}

// onRecordChange translates Notify-flagged credential record changes
// into Modified events on the service's broker (§4.9.2).
func (s *Service) onRecordChange(ref credrec.Ref, st credrec.State, permanent bool) {
	perm := int64(0)
	if permanent {
		perm = 1
	}
	s.broker.Signal(event.New(ModifiedEvent,
		value.Str(refString(ref)), value.Int(int64(st)), value.Int(perm)))
	// Shard-watched records additionally fan out down this shard's
	// dissemination tree (shard.go); a no-op outside a shard ring.
	s.shardNotify(ref, st, permanent)
}

// extKey identifies a remote credential record.
type extKey struct {
	source string
	ref    uint64
}

// WatchCertificate validates a certificate issued by another service
// and returns a local external credential record tracking its validity
// by event notification. Layered services (the MSSA's bypassing
// custodes, figure 5.8) use it to cache a callback check: the record
// stays true until the issuer revokes, with no further remote calls.
func (s *Service) WatchCertificate(c *cert.RMC, client ids.ClientID) (credrec.Ref, []string, error) {
	roles, _, ext, err := s.validateForeign(c, client)
	return ext, roles, err
}

// validateForeign validates a certificate issued by another service and
// wires up an external credential record kept coherent by event
// notification (§4.9). Repeat validations of the same remote record
// reuse the surrogate.
func (s *Service) validateForeign(c *cert.RMC, client ids.ClientID) ([]string, []value.Type, credrec.Ref, error) {
	if s.net == nil {
		return nil, nil, credrec.Ref{}, s.fail(Erroneous, "no network to validate certificate from %s", c.Service)
	}
	res, err := s.net.Call(s.name, c.Service, "validate", ValidateArg{Cert: c, Client: client, Watch: true})
	if err != nil {
		return nil, nil, credrec.Ref{}, s.fail(Revoked, "cannot reach issuer %s: %v", c.Service, err)
	}
	reply, ok := res.(ValidateReply)
	if !ok {
		return nil, nil, credrec.Ref{}, fmt.Errorf("oasis: bad validate reply from %s", c.Service)
	}
	if reply.State != credrec.True {
		return nil, nil, credrec.Ref{}, s.fail(Revoked, "issuer %s reports certificate %v", c.Service, reply.State)
	}

	// extMu is held across the check and the surrogate's creation so
	// concurrent validations of the same remote record share one
	// surrogate rather than minting duplicates.
	key := extKey{source: c.Service, ref: c.CRR.Uint64()}
	s.extMu.Lock()
	if s.extRecords == nil {
		s.extRecords = make(map[extKey]credrec.Ref)
	}
	ext, exists := s.extRecords[key]
	if exists {
		if _, lerr := s.store.Lookup(ext); lerr != nil {
			exists = false
		}
	}
	if !exists {
		ext = s.store.NewExternal(c.Service, reply.State)
		s.extRecords[key] = ext
	}
	s.extMu.Unlock()
	// The synchronous validation proved the issuer alive just now; start
	// the heartbeat liveness window from here. The handler is (re)bound
	// even when the surrogate is reused: the issuer returns one
	// registration per (watcher, record), and every validation must
	// leave that registration wired to the surrogate.
	s.receiver.ObserveSource(c.Service, s.clk.Now())
	local := ext
	s.receiver.HandleFrom(c.Service, reply.RegID, func(ev event.Event) {
		s.applyModified(local, ev)
	})
	return reply.Roles, reply.Types, ext, nil
}

// applyModified applies a Modified event to an external record.
func (s *Service) applyModified(ext credrec.Ref, ev event.Event) {
	if len(ev.Args) != 3 {
		return
	}
	st := credrec.State(ev.Args[1].I)
	perm := ev.Args[2].I != 0
	if perm && st == credrec.False {
		_ = s.store.Invalidate(ext)
		return
	}
	_ = s.store.SetState(ext, st)
}

// HeartbeatTick asserts liveness to every watcher (§4.10); wire it to a
// timer with the service's chosen period t, or use StartHeartbeats. The
// fan-out goes through the batch path: one burst per watcher.
func (s *Service) HeartbeatTick() {
	_ = s.batchNotify(func() error {
		s.broker.Heartbeat()
		return nil
	})
	s.ShardHeartbeatTick()
}

// StartHeartbeats runs the heartbeat protocol on the service's clock at
// the configured period (Options.HeartbeatEvery; default 5s). The
// returned stop function halts the loop and waits for it to exit —
// services own their background goroutines' lifetimes.
func (s *Service) StartHeartbeats() (stop func()) {
	period := s.heartbeatPeriod()
	stopCh := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-s.clk.After(period):
				s.HeartbeatTick()
			case <-stopCh:
				return
			}
		}
	}()
	return func() {
		close(stopCh)
		<-done
	}
}

// LivenessTick checks each watched source's event horizon against the
// allowance (heartbeat period plus slack); silent sources have all their
// external records marked Unknown, which propagates — servers must then
// act as if the certificates were revoked (§4.10). It returns the
// sources newly presumed failed.
func (s *Service) LivenessTick(allowance time.Duration) []string {
	failed := s.receiver.CheckLiveness(s.clk.Now(), allowance)
	for _, src := range failed {
		s.store.MarkSourceUnknown(src)
	}
	return failed
}

// handleResync serves the responder side of the resync protocol. The
// ordering here is the protocol's one invariant: the caller's session
// sequence is read BEFORE any record state. An update racing with the
// snapshot is then always captured at least once — in the snapshot if
// it lands before the state read, or in a notification numbered above
// Seq (which the caller's stream floor lets through) if it lands
// after. Read the other way round, an update falling between the state
// read and the sequence read would be in neither.
//
// Besides filling the reply, each record's state is re-asserted as a
// Modified event through the normal broker channel: the re-assertions
// are sequence-numbered above the snapshot point, idempotent at every
// receiver (duplicate suppression), and — running inside a
// notification batch — coalesce with any concurrent cascade burst.
func (s *Service) handleResync(from string, a ResyncArg) (ResyncReply, error) {
	var reply ResyncReply
	s.watchMu.Lock()
	sess, watched := s.watchSessions[from]
	s.watchMu.Unlock()
	if watched {
		if seq, err := s.broker.SessionSeq(sess); err == nil {
			reply.Session = sess
			reply.Seq = seq
		}
	}
	_ = s.batchNotify(func() error {
		for _, ref := range a.Refs {
			st, perm, _ := s.store.Resolve(ref)
			reply.Entries = append(reply.Entries, ResyncEntry{Ref: ref, State: st, Permanent: perm})
			s.onRecordChange(ref, st, perm)
		}
		return nil
	})
	return reply, nil
}

// ResyncSource re-reads the authoritative state of every external
// record held from a source (§4.10) and seals the notification stream
// at the snapshot point, so a delayed pre-snapshot notification can
// never roll a record back behind the snapshot. Safe to call at any
// time: re-applying current state is a no-op.
func (s *Service) ResyncSource(source string) error {
	if s.net == nil {
		return fmt.Errorf("oasis: no network")
	}
	// The remote reference for each local surrogate comes from the
	// extRecords map: record name spaces are managed separately, so
	// external identifiers must be mapped to internal ones (figure 4.8).
	s.extMu.Lock()
	byRemote := make(map[uint64]credrec.Ref) // remote -> local
	for k, local := range s.extRecords {
		if k.source == source {
			byRemote[k.ref] = local
		}
	}
	s.extMu.Unlock()
	refs := make([]credrec.Ref, 0, len(byRemote))
	for u := range byRemote {
		refs = append(refs, credrec.RefFromUint64(u))
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].Uint64() < refs[j].Uint64() })

	res, err := s.net.Call(s.name, source, "resync", ResyncArg{Refs: refs})
	if err != nil {
		return err
	}
	reply, ok := res.(ResyncReply)
	if !ok {
		return fmt.Errorf("oasis: bad resync reply from %s", source)
	}
	// Seal the stream before applying the snapshot: notifications still
	// in flight from before the snapshot are stale by construction.
	if reply.Session != 0 || reply.Seq != 0 {
		s.receiver.SetSessionFloor(source, reply.Session, reply.Seq)
	}
	_ = s.batchNotify(func() error {
		for _, e := range reply.Entries {
			local, ok := byRemote[e.Ref.Uint64()]
			if !ok {
				continue
			}
			if e.Permanent && e.State == credrec.False {
				_ = s.store.Invalidate(local)
				continue
			}
			_ = s.store.SetState(local, e.State)
		}
		return nil
	})
	s.receiver.ObserveSource(source, s.clk.Now())
	return nil
}

// Reconnect restores service with a source after a communications
// failure (§4.10: "when connection is re-established the state of each
// record is read"): one resync round-trip replaces the per-record
// readstate calls, and success clears the source's suspicion.
func (s *Service) Reconnect(source string) error {
	if err := s.ResyncSource(source); err != nil {
		return err
	}
	s.setSourceState(source, SourceAlive)
	return nil
}
