package oasis

import (
	"testing"

	"oasis/internal/cert"
	"oasis/internal/value"
)

// TestIntermediateRevokerInherited: when a role is entered via a starred
// intermediate whose rule carries a |> revoker clause, the clause flows
// into the final membership's support — revoking the intermediate
// instance kills the derived role too.
func TestIntermediateRevokerInherited(t *testing.T) {
	h := newHarness(t)
	svc, _ := New("Inh", h.clk, h.net, Options{})
	src := `
Warden        <- Login.LoggedOn("kgm", h)
Candidate(u)  <- Login.LoggedOn(u, h)* |>* Warden
Member(u)     <- Candidate(u)*
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	wardenClient := h.client("hq")
	warden, err := svc.Enter(EnterRequest{Client: wardenClient, Rolefile: "main", Role: "Warden",
		Creds: []*cert.RMC{h.logOn(t, wardenClient, "kgm")}})
	if err != nil {
		t.Fatal(err)
	}

	c := h.client("ely")
	login := h.logOn(t, c, "dm")
	member, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{login}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(member, c); err != nil {
		t.Fatal(err)
	}
	// The warden revokes Candidate(dm) — the instance the Member role
	// was derived through.
	if err := svc.RevokeByRole(warden, wardenClient, "main", "Candidate", []value.Value{uid("dm")}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(member, c); err == nil {
		t.Fatal("member survived revocation of its intermediate candidate")
	}
	// Fresh entry is refused until reinstatement.
	if _, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{login}}); err == nil {
		t.Fatal("re-entry through revoked intermediate succeeded")
	}
	if err := svc.Reinstate(warden, wardenClient, "main", "Candidate", []value.Value{uid("dm")}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{login}}); err != nil {
		t.Fatalf("entry after reinstatement: %v", err)
	}
}

// TestSharedRevocableInstance: two clients entering the same revocable
// role instance share one not-revoked record; a single revocation kills
// both certificates (§4.11's per-instance database).
func TestSharedRevocableInstance(t *testing.T) {
	h := newHarness(t)
	svc, _ := New("Shared", h.clk, h.net, Options{})
	src := `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* |>* Chair
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	chairClient := h.client("hq")
	chair, err := svc.Enter(EnterRequest{Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{h.logOn(t, chairClient, "jmb")}})
	if err != nil {
		t.Fatal(err)
	}
	// dm logs on from two machines; both processes enter Member(dm).
	c1 := h.client("ely")
	m1, err := svc.Enter(EnterRequest{Client: c1, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{h.logOn(t, c1, "dm")}})
	if err != nil {
		t.Fatal(err)
	}
	c2 := h.client("cam")
	m2, err := svc.Enter(EnterRequest{Client: c2, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{h.logOn(t, c2, "dm")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RevokeByRole(chair, chairClient, "main", "Member", []value.Value{uid("dm")}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(m1, c1); err == nil {
		t.Fatal("first certificate survived")
	}
	if err := svc.Validate(m2, c2); err == nil {
		t.Fatal("second certificate survived")
	}
}

// TestNegatedGroupMembershipRule: "(u not in banned)*" — joining the
// banned group revokes; the condition is wired through a negating edge
// to the group credential record.
func TestNegatedGroupMembershipRule(t *testing.T) {
	h := newHarness(t)
	svc, _ := New("Neg", h.clk, h.net, Options{})
	if err := svc.AddRolefile("main", `R(u) <- Login.LoggedOn(u, h)* : (u not in banned)*`); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	login := h.logOn(t, c, "dm")
	rmc, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "R",
		Creds: []*cert.RMC{login}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(rmc, c); err != nil {
		t.Fatal(err)
	}
	svc.Groups().AddMember("dm", "banned")
	if err := svc.Validate(rmc, c); err == nil {
		t.Fatal("membership survived joining the banned group")
	}
	// Un-banning restores the standing certificate (the condition is not
	// permanent).
	svc.Groups().RemoveMember("dm", "banned")
	if err := svc.Validate(rmc, c); err != nil {
		t.Fatalf("membership did not recover after un-ban: %v", err)
	}
	// Entry while banned is refused outright.
	svc.Groups().AddMember("dm", "banned")
	if _, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "R",
		Creds: []*cert.RMC{login}}); err == nil {
		t.Fatal("banned user entered")
	}
}
