package oasis

import (
	"testing"

	"oasis/internal/cert"
	"oasis/internal/value"
)

// TestDelegatedEntryGraphShape pins down §4.7's accounting: "In general
// one new credential record is required for each (revokable) delegation,
// and one for each entry to a role with multiple membership rules."
func TestDelegatedEntryGraphShape(t *testing.T) {
	h := newHarness(t)
	h.conf.Groups().AddMember("dm", "staff")

	chairClient := h.client("ely")
	chairLogin := h.logOn(t, chairClient, "jmb")

	// Entering Chair: single unstarred candidate, no constraint — the
	// membership is unconditional, so exactly one fact record (for exit
	// support) is created.
	base := h.conf.Store().Live()
	chair, err := h.conf.Enter(EnterRequest{
		Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{chairLogin},
	})
	if err != nil {
		t.Fatal(err)
	}
	afterChair := h.conf.Store().Live()
	// One external record for the Login certificate + one fact record
	// for the unconditional membership.
	if got := afterChair - base; got != 2 {
		t.Fatalf("Chair entry created %d records, want 2 (external + membership fact)", got)
	}

	// Delegation: one new record for the revocable delegation (§4.7
	// rule 2).
	deleg, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("dm")}, ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	afterDeleg := h.conf.Store().Live()
	if got := afterDeleg - afterChair; got != 1 {
		t.Fatalf("delegation created %d records, want 1", got)
	}

	// Delegated entry with three membership rules (login*, <|*, group*):
	// one external record for the candidate's login, one group record,
	// and ONE conjunction — the figure 4.6 shape, with the "two records
	// combined into one" optimisation realised as a single AND.
	cand := h.client("cam")
	candLogin := h.logOn(t, cand, "dm")
	if _, err := h.conf.EnterDelegated(EnterRequest{
		Client: cand, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{candLogin}, Delegation: deleg,
	}); err != nil {
		t.Fatal(err)
	}
	afterEntry := h.conf.Store().Live()
	if got := afterEntry - afterDeleg; got != 3 {
		t.Fatalf("delegated entry created %d records, want 3 (external + group + AND)", got)
	}

	// A second candidate elected to the same role with the same group:
	// the group record is shared, so only external + delegation + AND
	// appear per §4.8.1's "interesting credentials" table.
	h.conf.Groups().AddMember("ed", "staff")
	deleg2, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("dm")}, ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	cand2 := h.client("ox")
	cand2Login := h.logOn(t, cand2, "dm")
	pre := h.conf.Store().Live()
	if _, err := h.conf.EnterDelegated(EnterRequest{
		Client: cand2, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{cand2Login}, Delegation: deleg2,
	}); err != nil {
		t.Fatal(err)
	}
	// deleg2 already added its record before `pre`; this entry adds the
	// new login external + AND but REUSES dm's group record.
	if got := h.conf.Store().Live() - pre; got != 2 {
		t.Fatalf("second entry created %d records, want 2 (group record shared)", got)
	}
}

// TestSingleMembershipRuleReusesParent is the §4.7 optimisation in
// isolation: a role whose only membership rule is one starred foreign
// candidate embeds that candidate's (external) record directly — no new
// conjunction record.
func TestSingleMembershipRuleReusesParent(t *testing.T) {
	h := newHarness(t)
	svc, _ := New("Thin", h.clk, h.net, Options{})
	if err := svc.AddRolefile("main", `R(u) <- Login.LoggedOn(u, h)*`); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	login := h.logOn(t, c, "dm")
	base := svc.Store().Live()
	rmc, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "R",
		Creds: []*cert.RMC{login}})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Store().Live() - base; got != 1 {
		t.Fatalf("entry created %d records, want 1 (external only; parent reused)", got)
	}
	// The certificate's CRR is the external record itself.
	if svc.Store().External(rmc.CRR) != "Login" {
		t.Fatal("certificate does not embed the external record directly")
	}
}
