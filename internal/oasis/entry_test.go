package oasis

import (
	"errors"
	"testing"

	"oasis/internal/cert"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

func TestLoginIssuesCertificate(t *testing.T) {
	h := newHarness(t)
	c := h.client("ely")
	rmc := h.logOn(t, c, "jmb")
	if rmc.Service != "Login" || rmc.Client != c {
		t.Fatalf("rmc = %v", rmc)
	}
	if err := h.login.Validate(rmc, c); err != nil {
		t.Fatalf("fresh certificate invalid: %v", err)
	}
	if names := h.login.RoleNames(rmc); len(names) != 1 || names[0] != "LoggedOn" {
		t.Fatalf("roles = %v", names)
	}
}

func TestChairEntryWithForeignCredential(t *testing.T) {
	// Figure 3.1, first rule: a client holding LoggedOn("jmb", h) may
	// enter Chair. Conf validates the Login certificate by callback
	// (§2.10) and the literal "jmb" must match.
	h := newHarness(t)
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "jmb")
	chair, err := h.conf.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{loggedOn},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h.conf.HasRole(chair, "main", "Chair") {
		t.Fatal("certificate lacks Chair role")
	}
	if err := h.conf.Validate(chair, c); err != nil {
		t.Fatalf("chair certificate invalid: %v", err)
	}
}

func TestChairEntryDeniedForOtherUser(t *testing.T) {
	h := newHarness(t)
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "dm") // not jmb
	_, err := h.conf.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{loggedOn},
	})
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Class != Erroneous {
		t.Fatalf("err = %v", err)
	}
}

func TestEntryWithoutCredentialsDenied(t *testing.T) {
	h := newHarness(t)
	c := h.client("ely")
	if _, err := h.conf.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Chair"}); err == nil {
		t.Fatal("entry with no credentials succeeded")
	}
}

func TestMemberRequiresElection(t *testing.T) {
	// The Member rule is election-form: holding LoggedOn alone must not
	// grant Member, even for staff.
	h := newHarness(t)
	h.conf.Groups().AddMember("dm", "staff")
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "dm")
	if _, err := h.conf.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{loggedOn},
	}); err == nil {
		t.Fatal("election-form rule applied without delegation")
	}
}

func TestAmbiguousRolefilePrecedence(t *testing.T) {
	// Figure 3.2: for a client holding Foo and requesting Bar, the list
	// is Bas(1), Bas(2), Bar(1), Bar(2) and the first suitable
	// membership, Bar(1), is returned. (Experiment E1.)
	h := newHarness(t)
	svc, err := New("Fig32", h.clk, h.net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := `
Foo    <- Login.LoggedOn(u, h)
Bas(1) <- Foo
Bas(2) <- Foo
Bar(1) <- Bas(2)
Bar(2) <- Foo
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "dm")
	foo, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Foo", Creds: []*cert.RMC{loggedOn}})
	if err != nil {
		t.Fatal(err)
	}
	bar, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Bar", Creds: []*cert.RMC{foo}})
	if err != nil {
		t.Fatal(err)
	}
	if len(bar.Args) != 1 || !bar.Args[0].Equal(value.Int(1)) {
		t.Fatalf("Bar args = %v, want [1] per §3.2.2", bar.Args)
	}
}

func TestIntermediateRolesEnteredAutomatically(t *testing.T) {
	// §3.2.2: a client may enter a role indirectly via intermediate
	// roles without requesting them explicitly.
	h := newHarness(t)
	svc, _ := New("Inter", h.clk, h.net, Options{})
	src := `
Candidate(u) <- Login.LoggedOn(u, h)
Member(u)    <- Candidate(u)
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "dm")
	m, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Member", Creds: []*cert.RMC{loggedOn}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Args[0].Equal(uid("dm")) {
		t.Fatalf("args = %v", m.Args)
	}
}

func TestRequestedArgsSelectRule(t *testing.T) {
	// §3.4.3: Login levels. With explicit args the client picks a level;
	// without, the first matching rule (the maximum level) applies.
	h := newHarness(t)
	svc, _ := New("Levels", h.clk, h.net, Options{})
	src := `
def Level(l, u) l: integer
Level(3, u) <- Login.LoggedOn(u, h) : h in secure
Level(2, u) <- Login.LoggedOn(u, h) : h in hosts
Level(1, u) <- Login.LoggedOn(u, h)
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	svc.Groups().AddMember("ely", "hosts")
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "dm")

	// Unspecified: first matching rule wins; ely is in hosts but not
	// secure, so Level(2, dm).
	got, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Level", Creds: []*cert.RMC{loggedOn}})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Args[0].Equal(value.Int(2)) {
		t.Fatalf("default level = %v, want 2", got.Args[0])
	}
	// Explicit level 1 is honoured.
	got1, err := svc.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Level",
		Args:  []value.Value{value.Int(1), uid("dm")},
		Creds: []*cert.RMC{loggedOn},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !got1.Args[0].Equal(value.Int(1)) {
		t.Fatalf("explicit level = %v, want 1", got1.Args[0])
	}
	// Level 3 is unobtainable from this host.
	if _, err := svc.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Level",
		Args:  []value.Value{value.Int(3), uid("dm")},
		Creds: []*cert.RMC{loggedOn},
	}); err == nil {
		t.Fatal("secure level granted from insecure host")
	}
}

func TestUncheckedClaimRule(t *testing.T) {
	// Login(0, u) <-  : the Visitor login accepts an unchecked claim,
	// but only when the client supplies the parameters.
	h := newHarness(t)
	svc, _ := New("Visitor", h.clk, h.net, Options{})
	src := `
def Visit(u) u: string
Visit(u) <-
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	got, err := svc.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Visit",
		Args: []value.Value{value.Str("claimed-name")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Args[0].S != "claimed-name" {
		t.Fatalf("args = %v", got.Args)
	}
	// Without args the rule cannot instantiate.
	if _, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Visit"}); err == nil {
		t.Fatal("claim rule fired without parameters")
	}
}

func TestGroupConstraintCheckedAtEntry(t *testing.T) {
	h := newHarness(t)
	svc, _ := New("Grp", h.clk, h.net, Options{})
	src := `Staffer(u) <- Login.LoggedOn(u, h) : u in staff`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "dm")
	if _, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Staffer", Creds: []*cert.RMC{loggedOn}}); err == nil {
		t.Fatal("non-staff entered Staffer")
	}
	svc.Groups().AddMember("dm", "staff")
	if _, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Staffer", Creds: []*cert.RMC{loggedOn}}); err != nil {
		t.Fatalf("staff member denied: %v", err)
	}
}

func TestStarredGroupConstraintRevokes(t *testing.T) {
	// §3.2.3's worked example: membership is revoked when dm is removed
	// from staff, and recovers only with a new certificate.
	h := newHarness(t)
	svc, _ := New("Grp2", h.clk, h.net, Options{})
	src := `Staffer(u) <- Login.LoggedOn(u, h) : (u in staff)*`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	svc.Groups().AddMember("dm", "staff")
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "dm")
	rmc, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Staffer", Creds: []*cert.RMC{loggedOn}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(rmc, c); err != nil {
		t.Fatal(err)
	}
	svc.Groups().RemoveMember("dm", "staff")
	err = svc.Validate(rmc, c)
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Class != Revoked {
		t.Fatalf("after group removal: %v", err)
	}
}

func TestUnstarredCandidateNotAMembershipRule(t *testing.T) {
	// Without the star, revoking the LoggedOn certificate does not
	// revoke the derived role (§3.2.3: only starred conditions persist).
	h := newHarness(t)
	svcStar, _ := New("Star", h.clk, h.net, Options{})
	if err := svcStar.AddRolefile("main", `R(u) <- Login.LoggedOn(u, h)*`); err != nil {
		t.Fatal(err)
	}
	svcNoStar, _ := New("NoStar", h.clk, h.net, Options{})
	if err := svcNoStar.AddRolefile("main", `R(u) <- Login.LoggedOn(u, h)`); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "dm")
	starred, err := svcStar.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "R", Creds: []*cert.RMC{loggedOn}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := svcNoStar.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "R", Creds: []*cert.RMC{loggedOn}})
	if err != nil {
		t.Fatal(err)
	}

	// The user logs off: Login invalidates the LoggedOn certificate.
	if err := h.login.Exit(loggedOn, c); err != nil {
		t.Fatal(err)
	}
	if err := svcStar.Validate(starred, c); err == nil {
		t.Fatal("starred membership survived logout")
	}
	if err := svcNoStar.Validate(plain, c); err != nil {
		t.Fatalf("unstarred membership revoked by logout: %v", err)
	}
}

func TestCompoundCertificate(t *testing.T) {
	// §4.3: entering Chair also grants Member when the rolefile derives
	// Member from Chair with identical arguments; one certificate covers
	// both and the client need not distinguish.
	h := newHarness(t)
	svc, _ := New("Compound", h.clk, h.net, Options{})
	src := `
Chair  <- Login.LoggedOn("jmb", h)
Member <- Chair
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "jmb")
	rmc, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Chair", Creds: []*cert.RMC{loggedOn}})
	if err != nil {
		t.Fatal(err)
	}
	if !svc.HasRole(rmc, "main", "Chair") || !svc.HasRole(rmc, "main", "Member") {
		t.Fatalf("compound roles = %v", svc.RoleNames(rmc))
	}
}

func TestHighScoreTableExample(t *testing.T) {
	// §3.4.1: only processes certified by the Loader as running the game
	// may write; any logged-on user may read.
	h := newHarness(t)
	loader, _ := New("Loader", h.clk, h.net, Options{})
	if err := loader.AddRolefile("main", `
def Running(p) p: Loader.program
Running(p) <-
`); err != nil {
		t.Fatal(err)
	}
	scores, _ := New("Scores", h.clk, h.net, Options{})
	if err := scores.AddRolefile("main", `
def Write()
Write <- Loader.Running("game")*
Read  <- Login.LoggedOn(u, h)
`); err != nil {
		t.Fatal(err)
	}

	gameProc := h.client("ely")
	running, err := loader.Enter(EnterRequest{
		Client: gameProc, Rolefile: "main", Role: "Running",
		Args: []value.Value{value.Object("Loader.program", "game")},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := scores.Enter(EnterRequest{Client: gameProc, Rolefile: "main", Role: "Write", Creds: []*cert.RMC{running}})
	if err != nil {
		t.Fatalf("game process denied write: %v", err)
	}
	if err := scores.Validate(w, gameProc); err != nil {
		t.Fatal(err)
	}

	// A mere user can read but not write.
	user := h.client("cam")
	loggedOn := h.logOn(t, user, "dm")
	if _, err := scores.Enter(EnterRequest{Client: user, Rolefile: "main", Role: "Write", Creds: []*cert.RMC{loggedOn}}); err == nil {
		t.Fatal("user without Loader certificate granted write")
	}
	if _, err := scores.Enter(EnterRequest{Client: user, Rolefile: "main", Role: "Read", Creds: []*cert.RMC{loggedOn}}); err != nil {
		t.Fatalf("user denied read: %v", err)
	}

	// When the game exits, the Loader revokes Running and writes stop.
	if err := loader.Exit(running, gameProc); err != nil {
		t.Fatal(err)
	}
	if err := scores.Validate(w, gameProc); err == nil {
		t.Fatal("write certificate survived game exit")
	}
}

func TestSharedAuthorshipExample(t *testing.T) {
	// §3.4.4: the author is identified implicitly via creator(DOC).
	h := newHarness(t)
	docSvc, _ := New("Doc", h.clk, h.net, Options{
		Funcs: rdl.FuncTable{
			"creator": &rdl.Func{
				Result: value.ObjectType("Login.userid"),
				Args:   []value.Type{},
				Fn: func(args []value.Value) (value.Value, error) {
					return uid("rjh"), nil
				},
			},
		},
	})
	src := `
def Rights(r) r: {eaf}
Author <- Login.LoggedOn(u, h) : u = creator()
Editor <- Login.LoggedOn("MrEd", h)
Rights({ae}) <- Author
Rights({af}) <- Editor
`
	if err := docSvc.AddRolefile("DOC", src); err != nil {
		t.Fatal(err)
	}
	author := h.client("ely")
	authorLogin := h.logOn(t, author, "rjh")
	r, err := docSvc.Enter(EnterRequest{Client: author, Rolefile: "DOC", Role: "Rights", Creds: []*cert.RMC{authorLogin}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Args[0].Members() != "ea" {
		t.Fatalf("author rights = %v", r.Args[0])
	}
	editor := h.client("cam")
	editorLogin := h.logOn(t, editor, "MrEd")
	r2, err := docSvc.Enter(EnterRequest{Client: editor, Rolefile: "DOC", Role: "Rights", Creds: []*cert.RMC{editorLogin}})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Args[0].Members() != "af" {
		t.Fatalf("editor rights = %v", r2.Args[0])
	}
	// A third party gets nothing.
	other := h.client("ox")
	otherLogin := h.logOn(t, other, "nobody")
	if _, err := docSvc.Enter(EnterRequest{Client: other, Rolefile: "DOC", Role: "Rights", Creds: []*cert.RMC{otherLogin}}); err == nil {
		t.Fatal("stranger obtained rights")
	}
}
