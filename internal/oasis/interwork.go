package oasis

import (
	"fmt"

	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// IssueDirect mints a role membership certificate outside RDL policy —
// the §4.12 mechanism: "a service may issue and revoke role membership
// certificates for *any* reason. Role entry due to policy expressed in
// RDL is simply the more usual case." Bootstrap services (loaders,
// password services) and adapters for legacy or alternative access
// control schemes use this to bring their clients into OASIS name
// spaces.
//
// The role must be declared in the rolefile (certificate role bits come
// from the fixed role map); args are type-checked against its
// signature. The returned certificate carries a fresh credential
// record, revocable with RevokeDirect or Exit like any other.
func (s *Service) IssueDirect(client ids.ClientID, rolefile, role string, args []value.Value) (*cert.RMC, error) {
	st, err := s.rolefileFor(rolefile)
	if err != nil {
		return nil, err
	}
	bit, ok := st.roleMap.Bit(role)
	if !ok {
		return nil, fmt.Errorf("oasis: role %s is not declared in rolefile %s", role, st.id)
	}
	types := st.rf.Types[role]
	if len(args) != len(types) {
		return nil, fmt.Errorf("oasis: role %s takes %d arguments, got %d", role, len(types), len(args))
	}
	for i, a := range args {
		if !a.T.Equal(types[i]) {
			return nil, fmt.Errorf("oasis: argument %d of %s has type %v, expected %v", i+1, role, a.T, types[i])
		}
	}
	crr := s.store.NewFact(credrec.True)
	if err := s.store.MarkDirectUse(crr); err != nil {
		return nil, err
	}
	c := &cert.RMC{
		Service:  s.name,
		Rolefile: st.id,
		Roles:    cert.RoleSet(0).With(bit),
		Args:     args,
		Client:   client,
		CRR:      crr,
	}
	if s.opts.CertTTL > 0 {
		c.Expiry = s.clk.Now().Add(s.opts.CertTTL)
	}
	c.Sign(s.signer)
	s.audit.issued.Add(1)
	return c, nil
}

// RevokeDirect invalidates a directly issued certificate's credential
// record — the revocation half of the §4.12 mechanism, used when the
// external scheme that justified issuance withdraws its grant.
func (s *Service) RevokeDirect(c *cert.RMC) error {
	if c.Service != s.name {
		return s.fail(Erroneous, "certificate issued by %q presented to %q", c.Service, s.name)
	}
	if !s.verifyCert(c) {
		return s.fail(Fraud, "signature check failed")
	}
	// The cascade's Modified events leave as one coalesced burst per
	// watcher rather than one delivery per record.
	return s.batchNotify(func() error { return s.store.Invalidate(c.CRR) })
}

// SweepTick garbage-collects the credential record table (§4.8):
// permanent records are unlinked and permanently-false or uninteresting
// records deleted; the group table drops entries whose records are
// gone. Call it periodically; it returns the number of records freed.
func (s *Service) SweepTick() int {
	n := s.store.Sweep()
	s.groups.Compact()
	return n
}
