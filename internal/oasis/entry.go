package oasis

import (
	"fmt"

	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/rdl"
	"oasis/internal/value"
)

// EnterRequest asks for entry to a role (§3.2.2). Args may be nil to
// accept whatever parameters the applicable rules produce — the "first
// suitable membership" of the precedence algorithm — or concrete values
// to select a specific instance (and to supply claimed parameters for
// rules with no premises, like the paper's Visitor login).
type EnterRequest struct {
	Client     ids.ClientID
	Rolefile   string
	Role       string
	Args       []value.Value
	Creds      []*cert.RMC
	Delegation *cert.Delegation // set for role entry by election (§4.4)
}

// held is one entry on the working membership list of §3.2.2.
type held struct {
	service  string // issuing service; "" for this service
	rolefile string
	name     string
	args     []value.Value
	types    []value.Type

	// Validity support: either an existing credential record (for
	// certificate-backed memberships), or the accumulated support of an
	// intermediate membership derived during this entry.
	crr      credrec.Ref
	hasCRR   bool
	parents  []credrec.Parent
	revokers []revokerReq
}

// revokerReq is a pending role-based-revocation clause (§4.11) to be
// instantiated when the membership is issued.
type revokerReq struct {
	revokerRole string
	instance    string
}

// starSupport returns the parents contributed when this membership is
// used as a *starred* candidate: its own record if it has one, or the
// support it accumulated as an intermediate.
func (h *held) starSupport() ([]credrec.Parent, []revokerReq) {
	if h.hasCRR {
		return []credrec.Parent{credrec.Of(h.crr)}, nil
	}
	return h.parents, h.revokers
}

// Enter performs role entry from existing credentials (the standard
// form RPC). Election rules are not applicable here — delegated entry
// is a separate call, EnterDelegated (§4.4).
func (s *Service) Enter(req EnterRequest) (*cert.RMC, error) {
	if req.Delegation != nil {
		return s.EnterDelegated(req)
	}
	st, err := s.rolefileFor(req.Rolefile)
	if err != nil {
		return nil, err
	}
	list, err := s.initialList(st, req.Client, req.Creds)
	if err != nil {
		return nil, err
	}
	list = s.applyRules(st, req, list, nil)
	return s.selectAndIssue(st, req, list)
}

// initialList validates the supplied certificates and seeds the
// membership list. Foreign certificates are validated by callback to
// their issuing service, producing external credential records (§4.9.1).
func (s *Service) initialList(st *rolefileState, client ids.ClientID, creds []*cert.RMC) ([]*held, error) {
	var list []*held
	for _, c := range creds {
		if c.Service == s.name {
			if err := s.Validate(c, client); err != nil {
				return nil, err
			}
			fs, err := s.rolefileFor(c.Rolefile)
			if err != nil {
				return nil, err
			}
			for _, role := range fs.roleMap.Names(c.Roles) {
				list = append(list, &held{
					rolefile: c.Rolefile,
					name:     role,
					args:     c.Args,
					types:    fs.rf.Types[role],
					crr:      c.CRR,
					hasCRR:   true,
				})
			}
			continue
		}
		roles, types, ext, err := s.validateForeign(c, client)
		if err != nil {
			return nil, err
		}
		for _, role := range roles {
			list = append(list, &held{
				service:  c.Service,
				rolefile: c.Rolefile,
				name:     role,
				args:     c.Args,
				types:    types,
				crr:      ext,
				hasCRR:   true,
			})
		}
	}
	return list, nil
}

// heldKey indexes the working membership list by issuing service and
// role name — the two fields every candidate reference constrains.
type heldKey struct {
	service string
	name    string
}

// heldIndex buckets the membership list so candidate resolution visits
// only same-named memberships instead of scanning the whole list. Order
// within a bucket is list order, preserving the "first suitable one"
// semantics of §3.2.2.
type heldIndex map[heldKey][]*held

func newHeldIndex(list []*held) heldIndex {
	idx := make(heldIndex, len(list))
	for _, h := range list {
		idx.add(h)
	}
	return idx
}

func (idx heldIndex) add(h *held) {
	k := heldKey{service: h.service, name: h.name}
	idx[k] = append(idx[k], h)
}

// applyRules runs the precedence algorithm of §3.2.2: each statement is
// applied in turn; a resulting membership is appended to the tail of the
// list and may serve as a credential for later statements. Election
// rules are skipped unless this entry carries the matching delegation
// (electionOnly identifies the rule enabled by the delegation).
//
// Standard rules dispatch through the rolefile's compiled Program by
// default; OASIS_RDL_INTERP=1 or Options.RDLMode selects the AST
// interpreter (the benchmark baseline), and RDLDifferential runs both
// and panics on divergence. Election rules carry the elector's saved
// environment and always use the interpreter — they are off the
// per-request hot path.
func (s *Service) applyRules(st *rolefileState, req EnterRequest, list []*held, election *electionCtx) []*held {
	idx := newHeldIndex(list)
	var m *rdl.Machine
	if s.rdlMode != RDLInterpreter && st.prog != nil {
		m = st.machines.Get().(*rdl.Machine)
		defer st.machines.Put(m)
	}
	for i, rule := range st.rf.File.Rules {
		rt := st.ruleTypes[i]
		if rule.Elector != nil {
			if election == nil || election.rule != rule {
				continue
			}
			if h := s.applyElection(st, rt, req, idx, election); h != nil {
				list = append(list, h)
				idx.add(h)
			}
			continue
		}
		var h *held
		switch {
		case m == nil:
			h = s.applyStandard(st, rt, rule, req, idx)
		case s.rdlMode == RDLDifferential:
			hc := s.applyCompiled(st, rt, i, m, req, idx)
			hi := s.applyStandard(st, rt, rule, req, idx)
			if !heldEquivalent(hi, hc) {
				panic(fmt.Sprintf("oasis: rdl differential divergence: rolefile %s rule %d (%s): interpreter=%+v compiled=%+v",
					st.id, i+1, rule.Head.Name, hi, hc))
			}
			h = hi
		default:
			h = s.applyCompiled(st, rt, i, m, req, idx)
		}
		if h != nil {
			list = append(list, h)
			idx.add(h)
		}
	}
	return list
}

// heldEquivalent compares the memberships two evaluation strategies
// derived for the same rule (the differential-testing seam).
func heldEquivalent(a, b *held) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.service != b.service || a.rolefile != b.rolefile || a.name != b.name {
		return false
	}
	if !argsEqual(a.args, b.args) {
		return false
	}
	if len(a.parents) != len(b.parents) || len(a.revokers) != len(b.revokers) {
		return false
	}
	for i := range a.parents {
		if a.parents[i] != b.parents[i] {
			return false
		}
	}
	for i := range a.revokers {
		if a.revokers[i] != b.revokers[i] {
			return false
		}
	}
	return true
}

// requestEnv seeds the evaluation environment with ambient request
// context: the reserved variable @host is bound to the authenticated
// client's host, so rolefiles can grade access by origin (the paper's
// login service "performs additional checks, such as on the identity
// of the host", §3.4.3).
func requestEnv(client ids.ClientID) value.Env {
	return value.Env{}.Extend("@host", value.Str(client.Host))
}

// applyStandard attempts one standard-form rule against the list,
// interpreting the rule's AST (the baseline the compiled path is
// differentially tested against).
func (s *Service) applyStandard(st *rolefileState, rt *ruleTypes, rule *rdl.Rule, req EnterRequest, idx heldIndex) *held {
	env := requestEnv(req.Client)
	// Seed from the request when this rule defines the requested role
	// and concrete arguments were supplied.
	if rule.Head.Name == req.Role && req.Args != nil {
		e, ok, err := rdl.MatchArgs(rule.Head.Args, rt.head, req.Args, env)
		if err != nil || !ok {
			return nil
		}
		env = e
	}
	var parents []credrec.Parent
	var revokers []revokerReq
	for ci := range rule.Candidates {
		cand := &rule.Candidates[ci]
		h, e := matchCandidate(cand, rt.candidates[ci], idx, env)
		if h == nil {
			return nil
		}
		env = e
		if cand.Starred {
			ps, rs := h.starSupport()
			parents = append(parents, ps...)
			revokers = append(revokers, rs...)
		}
	}
	env2, conds, ok := s.evalConstraint(rule.Constraint, env)
	if !ok {
		return nil
	}
	env = env2
	parents = append(parents, s.condParents(conds)...)

	args, err := rdl.InstantiateArgs(rule.Head.Args, rt.head, env)
	if err != nil {
		return nil // unbound head variable: rule not applicable
	}
	if rule.Revoker != nil {
		revokers = append(revokers, revokerReq{
			revokerRole: rule.Revoker.Name,
			instance:    instanceKey(rule.Head.Name, args),
		})
	}
	return &held{
		rolefile: st.id,
		name:     rule.Head.Name,
		args:     args,
		types:    rt.head,
		parents:  parents,
		revokers: revokers,
	}
}

// applyCompiled attempts one standard-form rule through its compiled
// execution plan: registers replace the environment maps, literal
// arguments are pre-coerced constants, and the constraint runs as an
// instruction stream (no AST walk, no per-rule map allocation). The
// result is identical to applyStandard — RDLDifferential asserts it.
func (s *Service) applyCompiled(st *rolefileState, rt *ruleTypes, ri int, m *rdl.Machine, req EnterRequest, idx heldIndex) *held {
	cr := &st.prog.Rules[ri]
	m.Reset(ri)
	m.BindHost(value.Str(req.Client.Host))
	// Seed from the request when this rule defines the requested role
	// and concrete arguments were supplied.
	if cr.Head.Name == req.Role && req.Args != nil {
		if !m.MatchPlan(&cr.Head, req.Args) {
			return nil
		}
	}
	var parents []credrec.Parent
	var revokers []revokerReq
	for ci := range cr.Cands {
		cand := &cr.Cands[ci]
		h := matchCandidateCompiled(m, cand, idx)
		if h == nil {
			return nil
		}
		if cand.Starred {
			ps, rs := h.starSupport()
			parents = append(parents, ps...)
			revokers = append(revokers, rs...)
		}
	}
	ok, err := m.RunConstraint(rdl.GroupOracleFunc(s.groupMember), s.opts.Funcs)
	if err != nil || !ok {
		return nil
	}
	parents = append(parents, s.condParents(m.Conds())...)

	args, ok := m.Instantiate(&cr.Head)
	if !ok {
		return nil // unbound head variable: rule not applicable
	}
	rule := cr.Rule
	if rule.Revoker != nil {
		revokers = append(revokers, revokerReq{
			revokerRole: rule.Revoker.Name,
			instance:    instanceKey(rule.Head.Name, args),
		})
	}
	return &held{
		rolefile: st.id,
		name:     rule.Head.Name,
		args:     args,
		types:    rt.head,
		parents:  parents,
		revokers: revokers,
	}
}

// matchCandidate finds the first membership on the list satisfying a
// candidate role reference (the "first suitable one", §3.2.2), probing
// the (service, name) index instead of scanning the whole list.
func matchCandidate(ref *rdl.RoleRef, types []value.Type, idx heldIndex, env value.Env) (*held, value.Env) {
	for _, h := range idx[heldKey{service: ref.Service, name: ref.Name}] {
		if ref.Rolefile != "" && h.rolefile != ref.Rolefile {
			continue
		}
		e, ok, err := rdl.MatchArgs(ref.Args, types, h.args, env)
		if err != nil || !ok {
			continue
		}
		return h, e
	}
	return nil, nil
}

// matchCandidateCompiled is matchCandidate against a compiled reference
// plan: argument unification runs on the register file, and a failed
// attempt rolls its tentative bindings back before the next entry.
func matchCandidateCompiled(m *rdl.Machine, ref *rdl.RefPlan, idx heldIndex) *held {
	for _, h := range idx[heldKey{service: ref.Service, name: ref.Name}] {
		if ref.Rolefile != "" && h.rolefile != ref.Rolefile {
			continue
		}
		if m.MatchPlan(ref, h.args) {
			return h
		}
	}
	return nil
}

// evalConstraint evaluates an optional constraint, returning the
// (possibly extended) environment and the starred membership conditions.
func (s *Service) evalConstraint(e rdl.Expr, env value.Env) (value.Env, []rdl.MembershipCond, bool) {
	if e == nil {
		return env, nil, true
	}
	res, err := rdl.Eval(e, rdl.EvalContext{
		Env:    env,
		Groups: rdl.GroupOracleFunc(s.groupMember),
		Funcs:  s.opts.Funcs,
	})
	if err != nil || !res.OK {
		return env, nil, false
	}
	return res.Env, res.Conds, true
}

func (s *Service) groupMember(member value.Value, group string) bool {
	return s.groups.IsMember(s.memberKey(member), group)
}

// memberKey names a value for group membership purposes. String and
// object values are their own key; other kinds marshal, memoized per
// service so repeated oracle probes on the same principal (every entry
// re-tests its groups) stop re-marshalling.
func (s *Service) memberKey(v value.Value) string {
	if v.T.Kind == value.KindString || v.T.Kind == value.KindObject {
		return v.S
	}
	if k, ok := s.memberKeys.Load(v); ok {
		return k.(string)
	}
	k := v.Marshal()
	s.memberKeys.Store(v, k)
	return k
}

// condParents converts starred constraint conditions into credential
// record parents: group tests wire to group membership records (§4.8.1),
// negated tests via negating edges. Other starred conditions were
// evaluated at entry time; their parameters cannot change (§3.2.3), so
// they contribute no dynamic parent.
func (s *Service) condParents(conds []rdl.MembershipCond) []credrec.Parent {
	var out []credrec.Parent
	for _, c := range conds {
		if !c.IsGroupTest {
			continue
		}
		ref := s.groups.CredentialFor(s.memberKey(c.Member), c.Group)
		if c.Neg {
			out = append(out, credrec.Not(ref))
		} else {
			out = append(out, credrec.Of(ref))
		}
	}
	return out
}

// selectAndIssue picks the first suitable membership from the list and
// issues the certificate, building the credential record graph (§4.7).
func (s *Service) selectAndIssue(st *rolefileState, req EnterRequest, list []*held) (*cert.RMC, error) {
	var chosen *held
	for _, h := range list {
		if h.service != "" || h.rolefile != st.id || h.name != req.Role {
			continue
		}
		if h.hasCRR {
			continue // a certificate the client already holds; issue afresh only from derivations
		}
		if req.Args != nil {
			if len(req.Args) != len(h.args) {
				continue
			}
			match := true
			for i := range req.Args {
				if !req.Args[i].Equal(h.args[i]) {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		chosen = h
		break
	}
	if chosen == nil {
		return nil, s.fail(Erroneous, "no rule grants %v entry to %s", req.Client, req.Role)
	}
	return s.issue(st, req.Client, chosen, list)
}

// issue mints the certificate for a chosen membership: it instantiates
// role-based-revocation records, creates the conjunction credential
// record (reusing a single parent where possible — the optimisation of
// §4.7), compounds other equal-argument memberships into the same
// certificate (§4.3), signs and returns.
func (s *Service) issue(st *rolefileState, client ids.ClientID, chosen *held, list []*held) (*cert.RMC, error) {
	roles := cert.RoleSet(0)
	bit, ok := st.roleMap.Bit(chosen.name)
	if !ok {
		return nil, fmt.Errorf("oasis: role %s missing from role map", chosen.name)
	}
	roles = roles.With(bit)

	parents := append([]credrec.Parent(nil), chosen.parents...)
	revokers := append([]revokerReq(nil), chosen.revokers...)
	if s.opts.ExtraParents != nil {
		parents = append(parents, s.opts.ExtraParents(st.id, chosen.name, chosen.args)...)
	}

	// Compound equal-argument memberships whose support adds nothing new.
	for _, h := range list {
		if h == chosen || h.service != "" || h.rolefile != st.id || h.hasCRR {
			continue
		}
		if !argsEqual(h.args, chosen.args) || len(h.revokers) > 0 {
			continue
		}
		if !parentSubset(h.parents, parents) {
			continue
		}
		if b, ok := st.roleMap.Bit(h.name); ok {
			roles = roles.With(b)
		}
	}

	st.mu.Lock()
	// Role-based revocation (§4.11): entry is refused for instances in
	// the revoked-forever database; otherwise each clause creates a
	// not-revoked fact and registers it for the revoker.
	for _, r := range revokers {
		if st.revoked[r.instance] {
			st.mu.Unlock()
			return nil, s.fail(Revoked, "role instance %s has been revoked", r.instance)
		}
	}
	for _, r := range revokers {
		if e, exists := st.revocable[r.instance]; exists && s.store.Valid(e.crr) {
			// Re-entry of a live revocable instance shares the record,
			// so one revocation kills every certificate for it.
			parents = append(parents, credrec.Of(e.crr))
			continue
		}
		ref := s.store.NewFact(credrec.True)
		st.revocable[r.instance] = roleRevEntry{revokerRole: r.revokerRole, crr: ref}
		parents = append(parents, credrec.Of(ref))
	}
	st.mu.Unlock()

	var crr credrec.Ref
	switch {
	case len(parents) == 0:
		// Unconditional membership: revocable only by exit.
		crr = s.store.NewFact(credrec.True)
	case len(parents) == 1 && !parents[0].Negated:
		// §4.7's optimisation: a single membership rule needs no new
		// conjunction record.
		crr = parents[0].Ref
	default:
		crr = s.store.NewDerived(credrec.OpAnd, parents...)
	}
	if err := s.store.MarkDirectUse(crr); err != nil {
		return nil, s.fail(Revoked, "support revoked during entry: %v", err)
	}
	if !s.store.Valid(crr) {
		return nil, s.fail(Revoked, "membership conditions no longer hold")
	}

	c := &cert.RMC{
		Service:  s.name,
		Rolefile: st.id,
		Roles:    roles,
		Args:     chosen.args,
		Client:   client,
		CRR:      crr,
	}
	if s.opts.CertTTL > 0 {
		c.Expiry = s.clk.Now().Add(s.opts.CertTTL)
	}
	c.Sign(s.signer)
	s.audit.issued.Add(1)
	return c, nil
}

func argsEqual(a, b []value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func parentSubset(sub, super []credrec.Parent) bool {
	for _, p := range sub {
		found := false
		for _, q := range super {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
