package oasis

import (
	"strings"
	"testing"

	"oasis/internal/cert"
	"oasis/internal/value"
)

// scenarioCert pairs an issued certificate with the service that issued
// it, so the compiled/interpreted worlds can be compared role by role.
type scenarioCert struct {
	svc *Service
	rmc *cert.RMC
}

// describe flattens a certificate to the facts the RDL engine decided:
// the compound role set and the argument vector.
func (sc scenarioCert) describe() string {
	return strings.Join(sc.svc.RoleNames(sc.rmc), ",") + "|" + value.MarshalArgs(sc.rmc.Args)
}

// runEntryScenarios drives one harness through role-entry scenarios that
// exercise every compiled-path feature — literal-argument candidates,
// compound certificates, election-form rules, requested args, starred
// group conditions and revocation — and returns the issued certificates
// in a deterministic order.
func runEntryScenarios(t *testing.T, h *harness) []scenarioCert {
	t.Helper()
	var certs []scenarioCert

	// Chair via a literal-argument candidate; the figure 3.1 rolefile.
	chairClient := h.client("ely")
	chairLogin := h.logOn(t, chairClient, "jmb")
	chair, err := h.conf.Enter(EnterRequest{
		Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{chairLogin},
	})
	if err != nil {
		t.Fatalf("Chair entry: %v", err)
	}
	certs = append(certs, scenarioCert{h.conf, chair})

	// Member via election by the Chair, guarded by a starred group test.
	h.conf.Groups().AddMember("dm", "staff")
	deleg, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid("dm")},
		ElectorCert: chair,
	})
	if err != nil {
		t.Fatalf("Delegate: %v", err)
	}
	memberClient := h.client("achilles")
	memberLogin := h.logOn(t, memberClient, "dm")
	member, err := h.conf.EnterDelegated(EnterRequest{
		Client: memberClient, Rolefile: "main", Role: "Member",
		Creds:      []*cert.RMC{memberLogin},
		Delegation: deleg,
	})
	if err != nil {
		t.Fatalf("Member entry: %v", err)
	}
	certs = append(certs, scenarioCert{h.conf, member})

	// Starred group revocation: removing dm from staff revokes Member.
	h.conf.Groups().RemoveMember("dm", "staff")
	if err := h.conf.Validate(member, memberClient); err == nil {
		t.Fatal("Member survived staff removal")
	}
	h.conf.Groups().AddMember("dm", "staff")

	// Requested args select a rule (§3.4.3 login levels), and compound
	// derivation through an unconstrained rule (no-VM fast path).
	svc, err := New("Levels", h.clk, h.net, Options{RDLMode: h.conf.rdlMode})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddRolefile("main", `
def Level(l, u) l: integer
Level(3, u) <- Login.LoggedOn(u, h) : h in secure
Level(2, u) <- Login.LoggedOn(u, h) : h in hosts
Level(1, u) <- Login.LoggedOn(u, h)
`); err != nil {
		t.Fatal(err)
	}
	svc.Groups().AddMember("ely", "hosts")
	lvl, err := svc.Enter(EnterRequest{
		Client: chairClient, Rolefile: "main", Role: "Level",
		Args:  []value.Value{value.Int(1), uid("jmb")},
		Creds: []*cert.RMC{chairLogin},
	})
	if err != nil {
		t.Fatalf("Level entry: %v", err)
	}
	lvlDefault, err := svc.Enter(EnterRequest{
		Client: chairClient, Rolefile: "main", Role: "Level",
		Creds: []*cert.RMC{chairLogin},
	})
	if err != nil {
		t.Fatalf("Level default entry: %v", err)
	}
	certs = append(certs, scenarioCert{svc, lvl}, scenarioCert{svc, lvlDefault})

	compound, err := New("Compound", h.clk, h.net, Options{RDLMode: h.conf.rdlMode})
	if err != nil {
		t.Fatal(err)
	}
	if err := compound.AddRolefile("main", "Chair <- Login.LoggedOn(\"jmb\", h)\nMember <- Chair\n"); err != nil {
		t.Fatal(err)
	}
	both, err := compound.Enter(EnterRequest{
		Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{chairLogin},
	})
	if err != nil {
		t.Fatalf("compound entry: %v", err)
	}
	if !compound.HasRole(both, "main", "Member") {
		t.Fatalf("compound roles = %v", compound.RoleNames(both))
	}
	certs = append(certs, scenarioCert{compound, both})
	return certs
}

// TestEntryModesAgree runs the same scenarios through an interpreter-mode
// world and a compiled-mode world and requires the issued certificates to
// carry identical compound role sets and arguments.
func TestEntryModesAgree(t *testing.T) {
	interp := newHarnessWith(t,
		Options{RDLMode: RDLInterpreter}, Options{RDLMode: RDLInterpreter})
	compiled := newHarnessWith(t,
		Options{RDLMode: RDLCompiled}, Options{RDLMode: RDLCompiled})

	ic := runEntryScenarios(t, interp)
	cc := runEntryScenarios(t, compiled)
	if len(ic) != len(cc) {
		t.Fatalf("certificate count: interpreter=%d compiled=%d", len(ic), len(cc))
	}
	for i := range ic {
		if id, cd := ic[i].describe(), cc[i].describe(); id != cd {
			t.Fatalf("cert %d: interpreter=%s compiled=%s", i, id, cd)
		}
	}
}

// TestEntryDifferentialMode exercises the in-engine differential seam:
// every rule application runs both the compiled program and the
// interpreter and panics on divergence, so a clean pass of the scenarios
// is itself the assertion.
func TestEntryDifferentialMode(t *testing.T) {
	h := newHarnessWith(t,
		Options{RDLMode: RDLDifferential}, Options{RDLMode: RDLDifferential})
	runEntryScenarios(t, h)
}

// TestRDLModeEnvOverride checks that the environment variables force the
// interpreter baseline and the differential mode regardless of Options.
func TestRDLModeEnvOverride(t *testing.T) {
	t.Setenv("OASIS_RDL_INTERP", "1")
	h := newHarness(t)
	if h.conf.rdlMode != RDLInterpreter {
		t.Fatalf("OASIS_RDL_INTERP=1: mode = %d, want interpreter", h.conf.rdlMode)
	}
	c := h.client("ely")
	loggedOn := h.logOn(t, c, "jmb")
	if _, err := h.conf.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Chair", Creds: []*cert.RMC{loggedOn},
	}); err != nil {
		t.Fatalf("interpreter-mode entry: %v", err)
	}

	t.Setenv("OASIS_RDL_INTERP", "")
	t.Setenv("OASIS_RDL_DIFF", "1")
	h2 := newHarness(t)
	if h2.conf.rdlMode != RDLDifferential {
		t.Fatalf("OASIS_RDL_DIFF=1: mode = %d, want differential", h2.conf.rdlMode)
	}
	c2 := h2.client("ely")
	loggedOn2 := h2.logOn(t, c2, "jmb")
	if _, err := h2.conf.Enter(EnterRequest{
		Client: c2, Rolefile: "main", Role: "Chair", Creds: []*cert.RMC{loggedOn2},
	}); err != nil {
		t.Fatalf("differential-mode entry: %v", err)
	}
}
