package oasis

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"oasis/internal/cert"
	"oasis/internal/event"
	"oasis/internal/ids"
	"oasis/internal/value"
)

func TestIssueDirect(t *testing.T) {
	// §4.12: a password service issues Passwd certificates based on
	// policy not expressed in RDL (a secret check).
	h := newHarness(t)
	pw, _ := New("Pw", h.clk, h.net, Options{})
	if err := pw.AddRolefile("main", `
def Passwd(u, key) u: Login.userid key: string
Passwd(u, key) <-
`); err != nil {
		t.Fatal(err)
	}
	secrets := map[string]string{"dm": "sesame"}
	authenticate := func(client ids.ClientID, user, password, key string) (*cert.RMC, error) {
		if secrets[user] != password {
			return nil, errors.New("bad password")
		}
		return pw.IssueDirect(client, "main", "Passwd",
			[]value.Value{uid(user), value.Str(key)})
	}

	c := h.client("ely")
	if _, err := authenticate(c, "dm", "wrong", "Login"); err == nil {
		t.Fatal("bad password accepted")
	}
	rmc, err := authenticate(c, "dm", "sesame", "Login")
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Validate(rmc, c); err != nil {
		t.Fatal(err)
	}
	// The directly issued certificate works as a credential at other
	// services, exactly like an RDL-issued one (§3.4.3's login flow).
	login2, _ := New("Login2", h.clk, h.net, Options{})
	if err := login2.AddRolefile("main", `
LoggedOn(u) <- Pw.Passwd(u, "Login")*
`); err != nil {
		t.Fatal(err)
	}
	logged, err := login2.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "LoggedOn",
		Creds: []*cert.RMC{rmc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := login2.Validate(logged, c); err != nil {
		t.Fatal(err)
	}
	// Revoking the password certificate cascades.
	if err := pw.RevokeDirect(rmc); err != nil {
		t.Fatal(err)
	}
	if err := login2.Validate(logged, c); err == nil {
		t.Fatal("derived login survived password revocation")
	}
}

func TestIssueDirectTypeChecked(t *testing.T) {
	h := newHarness(t)
	c := h.client("ely")
	if _, err := h.login.IssueDirect(c, "main", "LoggedOn",
		[]value.Value{value.Int(3), value.Int(4)}); err == nil {
		t.Fatal("wrong argument types accepted")
	}
	if _, err := h.login.IssueDirect(c, "main", "LoggedOn",
		[]value.Value{uid("dm")}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := h.login.IssueDirect(c, "main", "Nothing", nil); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func TestOrganisationalRolesInterworking(t *testing.T) {
	// §4.12's worked example: a system using organisational roles
	// (manager, project leader, [SCFY96]) interworks by a service that
	// issues an equivalent OASIS role for each holder.
	h := newHarness(t)
	org, _ := New("Org", h.clk, h.net, Options{})
	if err := org.AddRolefile("main", `
def Manager(u) u: Login.userid
def ProjectLeader(u, proj) u: Login.userid proj: string
Manager(u) <-
ProjectLeader(u, proj) <-
`); err != nil {
		t.Fatal(err)
	}
	// The adapter consults the legacy RBAC database.
	legacy := map[string][]string{"dm": {"Manager"}}
	adapt := func(client ids.ClientID, user string) ([]*cert.RMC, error) {
		var out []*cert.RMC
		for _, role := range legacy[user] {
			rmc, err := org.IssueDirect(client, "main", role, []value.Value{uid(user)})
			if err != nil {
				return nil, err
			}
			out = append(out, rmc)
		}
		return out, nil
	}

	// A payroll service defines policy over the organisational roles.
	payroll, _ := New("Payroll", h.clk, h.net, Options{})
	if err := payroll.AddRolefile("main", `
Approve(u) <- Org.Manager(u)*
`); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	creds, err := adapt(c, "dm")
	if err != nil || len(creds) != 1 {
		t.Fatalf("adapt: %v %v", creds, err)
	}
	approve, err := payroll.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Approve", Creds: creds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := payroll.Validate(approve, c); err != nil {
		t.Fatal(err)
	}
	// Firing dm in the legacy scheme: the adapter revokes the bridge
	// certificate and the payroll right dies with it.
	if err := org.RevokeDirect(creds[0]); err != nil {
		t.Fatal(err)
	}
	if err := payroll.Validate(approve, c); err == nil {
		t.Fatal("payroll approval survived legacy revocation")
	}
}

func TestSweepTickCollectsRevokedGraphs(t *testing.T) {
	h := newHarness(t)
	h.conf.Groups().AddMember("dm", "staff")
	c := h.client("ely")
	login := h.logOn(t, c, "dm")
	chairClient := h.client("hq")
	chair, err := h.conf.Enter(EnterRequest{Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{h.logOn(t, chairClient, "jmb")}})
	if err != nil {
		t.Fatal(err)
	}
	deleg, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("dm")}, ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	member, err := h.conf.EnterDelegated(EnterRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{login}, Delegation: deleg,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := h.conf.Store().Live()
	// Logout revokes the whole graph; a sweep then reclaims it.
	if err := h.login.Exit(login, c); err != nil {
		t.Fatal(err)
	}
	freed := h.conf.SweepTick()
	if freed == 0 {
		t.Fatal("sweep reclaimed nothing after cascade revocation")
	}
	if h.conf.Store().Live() >= before {
		t.Fatalf("live records did not shrink: %d -> %d", before, h.conf.Store().Live())
	}
	// The swept certificate still validates as revoked (dangling ref).
	if err := h.conf.Validate(member, c); err == nil {
		t.Fatal("swept membership validated")
	}
}

func TestConcurrentEntryAndValidation(t *testing.T) {
	// The service engine is safe under concurrent entry, validation and
	// revocation (exercised under -race in CI).
	h := newHarness(t)
	h.conf.Groups().AddMember("dm", "staff")
	clients := make([]ids.ClientID, 16)
	for i := range clients {
		clients[i] = h.client(fmt.Sprintf("host%d", i)) // harness map is not goroutine-safe
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := clients[i]
			login, err := h.login.Enter(EnterRequest{
				Client: c, Rolefile: "main", Role: "LoggedOn",
				Args: []value.Value{uid("dm"), value.Object("Login.host", c.Host)},
			})
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 10; j++ {
				if err := h.login.Validate(login, c); err != nil {
					errs <- err
					return
				}
			}
			if err := h.login.Exit(login, c); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStartHeartbeats(t *testing.T) {
	h := newHarness(t)
	sink := make(chan struct{}, 16)
	if _, err := h.login.Broker().OpenSession(sinkFunc(func() { sink <- struct{}{} }), nil); err != nil {
		t.Fatal(err)
	}
	stop := h.login.StartHeartbeats()
	defer stop() // must halt and join without deadlock
	// The loop arms its timer asynchronously; keep advancing the virtual
	// clock until the heartbeat lands.
	deadline := time.After(5 * time.Second)
	for {
		h.clk.Advance(6 * time.Second) // default period 5s
		select {
		case <-sink:
			return
		case <-deadline:
			t.Fatal("no heartbeat after period elapsed")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// sinkFunc adapts a thunk to an event sink counting heartbeats.
func sinkFunc(f func()) event.Sink {
	return event.SinkFunc(func(n event.Notification) {
		if n.Heartbeat {
			f()
		}
	})
}
