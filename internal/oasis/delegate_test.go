package oasis

import (
	"errors"
	"testing"
	"time"

	"oasis/internal/cert"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// confSetup enters jmb as Chair and returns the pieces needed for
// delegation tests over the figure 3.1 rolefile.
func confSetup(t *testing.T) (*harness, ids.ClientID, *cert.RMC) {
	t.Helper()
	h := newHarness(t)
	h.conf.Groups().AddMember("dm", "staff")
	chairClient := h.client("ely")
	chairLogin := h.logOn(t, chairClient, "jmb")
	chair, err := h.conf.Enter(EnterRequest{
		Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{chairLogin},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, chairClient, chair
}

// electMember delegates Member(u) from the chair to a fresh client.
func electMember(t *testing.T, h *harness, chairClient ids.ClientID, chair *cert.RMC, user string) (ids.ClientID, *cert.RMC, *cert.Revocation) {
	t.Helper()
	deleg, rev, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid(user)},
		ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	cand := h.client("cam")
	candLogin := h.logOn(t, cand, user)
	member, err := h.conf.EnterDelegated(EnterRequest{
		Client: cand, Rolefile: "main", Role: "Member",
		Creds:      []*cert.RMC{candLogin},
		Delegation: deleg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cand, member, rev
}

func TestElectionGrantsMembership(t *testing.T) {
	// Figure 4.6 end to end: Member(u) <- LoggedOn(u,h)* <|* Chair :
	// (u in staff)*.
	h, chairClient, chair := confSetup(t)
	cand, member, rev := electMember(t, h, chairClient, chair, "dm")
	if rev == nil {
		t.Fatal("starred election returned no revocation certificate")
	}
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatal(err)
	}
	if !member.Args[0].Equal(uid("dm")) {
		t.Fatalf("member args = %v", member.Args)
	}
}

func TestElectionDeniedWithoutStaff(t *testing.T) {
	h, chairClient, chair := confSetup(t)
	deleg, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid("outsider")},
		ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	cand := h.client("cam")
	candLogin := h.logOn(t, cand, "outsider")
	if _, err := h.conf.EnterDelegated(EnterRequest{
		Client: cand, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{candLogin}, Delegation: deleg,
	}); err == nil {
		t.Fatal("non-staff candidate elected")
	}
}

func TestDelegationRequiresElectorRole(t *testing.T) {
	h, _, _ := confSetup(t)
	// A mere logged-on user cannot delegate Member.
	c := h.client("ox")
	login := h.logOn(t, c, "dm")
	if _, _, err := h.conf.Delegate(DelegateRequest{
		Client: c, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid("dm")},
		ElectorCert: login, // not even a Conf certificate
	}); err == nil {
		t.Fatal("delegation allowed without elector role")
	}
}

func TestBothPartiesMustAgree(t *testing.T) {
	// §4.4: the candidate accepts by using the certificate; the wrong
	// candidate (not holding the required LoggedOn) cannot.
	h, chairClient, chair := confSetup(t)
	h.conf.Groups().AddMember("mallory", "staff")
	deleg, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid("dm")},
		ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	thief := h.client("bad")
	thiefLogin := h.logOn(t, thief, "mallory")
	if _, err := h.conf.EnterDelegated(EnterRequest{
		Client: thief, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{thiefLogin}, Delegation: deleg,
	}); err == nil {
		t.Fatal("wrong candidate used the delegation (rule binds u to dm)")
	}
}

func TestExplicitRevocation(t *testing.T) {
	// §4.4/figure 4.5: the delegator revokes; the member's certificate
	// dies; a sibling delegation is unaffected.
	h, chairClient, chair := confSetup(t)
	h.conf.Groups().AddMember("sib", "staff")
	cand, member, rev := electMember(t, h, chairClient, chair, "dm")
	sibClient, sibMember, _ := electMember(t, h, chairClient, chair, "sib")

	if err := h.conf.Revoke(rev); err != nil {
		t.Fatal(err)
	}
	if err := h.conf.Validate(member, cand); err == nil {
		t.Fatal("membership survived revocation")
	}
	if err := h.conf.Validate(sibMember, sibClient); err != nil {
		t.Fatalf("sibling delegation caught by selective revocation: %v", err)
	}
}

func TestRevocationRequiresLiveDelegator(t *testing.T) {
	// Figure 4.3: the revocation certificate's first CRR ensures the
	// delegator is still a member of the delegating role.
	h, chairClient, chair := confSetup(t)
	_, _, rev := electMember(t, h, chairClient, chair, "dm")
	if err := h.conf.Exit(chair, chairClient); err != nil {
		t.Fatal(err)
	}
	err := h.conf.Revoke(rev)
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Class != Revoked {
		t.Fatalf("revocation by ex-chair: %v", err)
	}
}

func TestElectorExitDoesNotCascadeWhenElectorUnstarred(t *testing.T) {
	// Figure 3.1 stars the election (<|*) but not the elector's role
	// (Chair carries no *): once elected, members survive the chair's
	// exit; only explicit revocation removes them (§3.2.3's four kinds
	// of entry condition are independently selectable).
	h, chairClient, chair := confSetup(t)
	cand, member, _ := electMember(t, h, chairClient, chair, "dm")
	if err := h.conf.Exit(chair, chairClient); err != nil {
		t.Fatal(err)
	}
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatalf("membership died on elector exit despite unstarred elector role: %v", err)
	}
}

func TestElectorExitCascadesThroughStarredElectorRole(t *testing.T) {
	// With the elector's role starred (<|* Chair*), continued chair
	// membership is a membership rule: chair exit revokes members.
	h := newHarness(t)
	svc, _ := New("StrictMeet", h.clk, h.net, Options{})
	src := `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair*
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	chairClient := h.client("ely")
	chair, err := svc.Enter(EnterRequest{Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{h.logOn(t, chairClient, "jmb")}})
	if err != nil {
		t.Fatal(err)
	}
	deleg, _, err := svc.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("dm")}, ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	cand := h.client("cam")
	member, err := svc.EnterDelegated(EnterRequest{
		Client: cand, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{h.logOn(t, cand, "dm")}, Delegation: deleg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Exit(chair, chairClient); err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(member, cand); err == nil {
		t.Fatal("membership survived elector exit despite starred elector role")
	}
}

func TestDelegationExpiry(t *testing.T) {
	// §4.4: a time limit triggers automatic revocation, preventing
	// un-revokable delegations from lost revocation certificates.
	h, chairClient, chair := confSetup(t)
	deleg, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid("dm")},
		ElectorCert: chair,
		TTL:         time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(2 * time.Minute)
	if n := h.conf.ExpireTick(); n != 1 {
		t.Fatalf("ExpireTick = %d", n)
	}
	cand := h.client("cam")
	candLogin := h.logOn(t, cand, "dm")
	if _, err := h.conf.EnterDelegated(EnterRequest{
		Client: cand, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{candLogin}, Delegation: deleg,
	}); err == nil {
		t.Fatal("expired delegation accepted")
	}
}

func TestMemberSurvivesAfterEntryEvenIfDelegationExpires(t *testing.T) {
	// Expiry of the *delegation certificate* bounds the offer window;
	// invalidating the delegation record after entry kills memberships
	// derived from it (the <|* makes it a membership rule). Here we
	// check the offer window: entry before expiry succeeds, after fails.
	h, chairClient, chair := confSetup(t)
	deleg, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid("dm")},
		ElectorCert: chair,
		TTL:         time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	cand := h.client("cam")
	candLogin := h.logOn(t, cand, "dm")
	member, err := h.conf.EnterDelegated(EnterRequest{
		Client: cand, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{candLogin}, Delegation: deleg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatal(err)
	}
}

func TestRevokeOnExitOption(t *testing.T) {
	// §4.4: the delegator may specify revocation when their role exits.
	// (With figure 3.1's rolefile the elector role is starred anyway;
	// this test uses an unstarred variant to isolate the option.)
	h := newHarness(t)
	svc, _ := New("Meet", h.clk, h.net, Options{})
	src := `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h) <|* Chair
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	chairClient := h.client("ely")
	chairLogin := h.logOn(t, chairClient, "jmb")
	chair, err := svc.Enter(EnterRequest{Client: chairClient, Rolefile: "main", Role: "Chair", Creds: []*cert.RMC{chairLogin}})
	if err != nil {
		t.Fatal(err)
	}

	issue := func(revokeOnExit bool, user string) (*cert.RMC, ids.ClientID) {
		deleg, _, err := svc.Delegate(DelegateRequest{
			Client: chairClient, Rolefile: "main", Role: "Member",
			Args:         []value.Value{uid(user)},
			ElectorCert:  chair,
			RevokeOnExit: revokeOnExit,
		})
		if err != nil {
			t.Fatal(err)
		}
		cand := h.client("cam")
		candLogin := h.logOn(t, cand, user)
		m, err := svc.EnterDelegated(EnterRequest{
			Client: cand, Rolefile: "main", Role: "Member",
			Creds: []*cert.RMC{candLogin}, Delegation: deleg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m, cand
	}
	mAuto, cAuto := issue(true, "auto")
	mKeep, cKeep := issue(false, "keep")

	if err := svc.Exit(chair, chairClient); err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(mAuto, cAuto); err == nil {
		t.Fatal("revoke-on-exit membership survived elector exit")
	}
	if err := svc.Validate(mKeep, cKeep); err != nil {
		t.Fatalf("plain membership died on elector exit: %v", err)
	}
}

func TestRoleBasedRevocation(t *testing.T) {
	// §3.3.2/§4.11 open meeting: any staffer may join; the Chair (who
	// was not the elector) may eject by naming the role parameters, and
	// re-entry is refused until reinstated (hire / fire / re-hire).
	h := newHarness(t)
	svc, _ := New("Open", h.clk, h.net, Options{})
	src := `
Chair        <- Login.LoggedOn("jmb", h)
Candidate(u) <- Login.LoggedOn(u, h)* : u in staff
Member(u)    <- Candidate(u)* |>* Chair
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	svc.Groups().AddMember("dm", "staff")
	chairClient := h.client("ely")
	chair, err := svc.Enter(EnterRequest{Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{h.logOn(t, chairClient, "jmb")}})
	if err != nil {
		t.Fatal(err)
	}

	member := h.client("cam")
	memberLogin := h.logOn(t, member, "dm")
	m, err := svc.Enter(EnterRequest{Client: member, Rolefile: "main", Role: "Member", Creds: []*cert.RMC{memberLogin}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(m, member); err != nil {
		t.Fatal(err)
	}

	// The chair ejects Member(dm) — knowing only the parameters.
	if err := svc.RevokeByRole(chair, chairClient, "main", "Member", []value.Value{uid("dm")}); err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(m, member); err == nil {
		t.Fatal("membership survived role-based revocation")
	}
	// Re-entry is refused.
	if _, err := svc.Enter(EnterRequest{Client: member, Rolefile: "main", Role: "Member", Creds: []*cert.RMC{memberLogin}}); err == nil {
		t.Fatal("revoked instance re-entered")
	}
	// Reinstate, then re-entry succeeds.
	if err := svc.Reinstate(chair, chairClient, "main", "Member", []value.Value{uid("dm")}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Enter(EnterRequest{Client: member, Rolefile: "main", Role: "Member", Creds: []*cert.RMC{memberLogin}}); err != nil {
		t.Fatalf("reinstated member denied: %v", err)
	}
}

func TestRoleBasedRevocationRequiresRevokerRole(t *testing.T) {
	h := newHarness(t)
	svc, _ := New("Open2", h.clk, h.net, Options{})
	src := `
Chair        <- Login.LoggedOn("jmb", h)
Member(u)    <- Login.LoggedOn(u, h)* |>* Chair : u in staff
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	svc.Groups().AddMember("dm", "staff")
	svc.Groups().AddMember("ed", "staff")
	member := h.client("cam")
	m, err := svc.Enter(EnterRequest{Client: member, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{h.logOn(t, member, "dm")}})
	if err != nil {
		t.Fatal(err)
	}
	// Another member (not Chair) cannot eject.
	other := h.client("ox")
	om, err := svc.Enter(EnterRequest{Client: other, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{h.logOn(t, other, "ed")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.RevokeByRole(om, other, "main", "Member", []value.Value{uid("dm")}); err == nil {
		t.Fatal("non-chair performed role-based revocation")
	}
	if err := svc.Validate(m, member); err != nil {
		t.Fatal("membership damaged by failed revocation")
	}
}

func TestGolfClubQuorum(t *testing.T) {
	// §3.4.5: joining requires recommendations from two *different*
	// members. Modelled with an intermediate role carrying the first
	// recommender's identity and a constraint m1 != m2.
	h := newHarness(t)
	svc, _ := New("Golf", h.clk, h.net, Options{})
	src := `
def Member(p) p: Login.userid
Member(p)  <- Login.LoggedOn(p, h) : p in founders
Rec(p, m1) <- Login.LoggedOn(p, h)* <| Member(m1)
Member(p)  <- Rec(p, m1)* <| Member(m2) : m1 != m2
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	svc.Groups().AddMember("arnold", "founders")
	svc.Groups().AddMember("gary", "founders")

	join := func(user string) (ids.ClientID, *cert.RMC) {
		c := h.client(user + "-host")
		login := h.logOn(t, c, user)
		m, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "Member",
			Args: []value.Value{uid(user)}, Creds: []*cert.RMC{login}})
		if err != nil {
			t.Fatalf("bootstrap member %s: %v", user, err)
		}
		return c, m
	}
	arnoldC, arnold := join("arnold")
	garyC, gary := join("gary")

	// jack obtains a recommendation from arnold.
	jackC := h.client("jack-host")
	jackLogin := h.logOn(t, jackC, "jack")
	d1, _, err := svc.Delegate(DelegateRequest{
		Client: arnoldC, Rolefile: "main", Role: "Rec",
		Args:        []value.Value{uid("jack"), uid("arnold")},
		ElectorCert: arnold,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec1, err := svc.EnterDelegated(EnterRequest{
		Client: jackC, Rolefile: "main", Role: "Rec",
		Creds: []*cert.RMC{jackLogin}, Delegation: d1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A second recommendation from the *same* member is refused.
	dSame, _, err := svc.Delegate(DelegateRequest{
		Client: arnoldC, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid("jack")},
		ElectorCert: arnold,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.EnterDelegated(EnterRequest{
		Client: jackC, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{jackLogin, rec1}, Delegation: dSame,
	}); err == nil {
		t.Fatal("same member recommended twice (constraint m1 != m2 ignored)")
	}

	// Seconded by gary — a different member — jack joins.
	d2, _, err := svc.Delegate(DelegateRequest{
		Client: garyC, Rolefile: "main", Role: "Member",
		Args:        []value.Value{uid("jack")},
		ElectorCert: gary,
	})
	if err != nil {
		t.Fatal(err)
	}
	member, err := svc.EnterDelegated(EnterRequest{
		Client: jackC, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{jackLogin, rec1}, Delegation: d2,
	})
	if err != nil {
		t.Fatalf("quorum election failed: %v", err)
	}
	if err := svc.Validate(member, jackC); err != nil {
		t.Fatal(err)
	}
	// The starred Rec candidate ties jack's membership to his login: if
	// jack logs off, the recommendation chain collapses.
	if err := h.login.Exit(jackLogin, jackC); err != nil {
		t.Fatal(err)
	}
	if err := svc.Validate(member, jackC); err == nil {
		t.Fatal("membership survived login exit despite starred chain")
	}
}
