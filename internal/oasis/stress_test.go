package oasis

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// stressService builds a standalone service with a rolling signer and
// two directly-issued certificates: one that stays valid for the whole
// test and one destined for revocation.
func stressService(t *testing.T) (*Service, *cert.RollingSigner, ids.ClientID, *cert.RMC, *cert.RMC) {
	t.Helper()
	clk := clock.NewVirtual(time.Unix(0, 0))
	signer := cert.NewRollingSigner([]byte("gen0"), 16, 10)
	svc, err := New("S", clk, nil, Options{Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddRolefile("main", `
def R(u) u: S.userid
R(u) <-
`); err != nil {
		t.Fatal(err)
	}
	client := ids.NewHostAuthority("h", clk.Now()).NewDomain()
	stable, err := svc.IssueDirect(client, "main", "R", []value.Value{value.Object("S.userid", "stable")})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := svc.IssueDirect(client, "main", "R", []value.Value{value.Object("S.userid", "victim")})
	if err != nil {
		t.Fatal(err)
	}
	return svc, signer, client, stable, victim
}

func classOf(t *testing.T, err error) FailureClass {
	t.Helper()
	var ve *ValidationError
	if !errors.As(err, &ve) {
		t.Errorf("validation failed with non-ValidationError %v", err)
		return 0
	}
	return ve.Class
}

// TestConcurrentValidateRevokeRoll is the engine's torn-state check: G
// goroutines validate continuously while one goroutine revokes the
// victim certificate and another rolls the signer secret (§5.5.1). The
// stable certificate must never fail; the victim must fail only with
// class Revoked, and — revocation being permanent — once a goroutine
// sees it revoked it must never see it valid again. Run under -race.
func TestConcurrentValidateRevokeRoll(t *testing.T) {
	svc, signer, client, stable, victim := stressService(t)

	const validators = 8
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		revoked atomic.Bool // set after RevokeDirect returns
	)
	for g := 0; g < validators; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sawRevoked := false
			for i := 0; !stop.Load(); i++ {
				if err := svc.Validate(stable, client); err != nil {
					t.Errorf("stable certificate rejected: %v", err)
					return
				}
				// Sample the acknowledgement before validating: only a
				// validation that *started* after RevokeDirect returned
				// is required to see the revocation. Loading afterwards
				// would flag lookups that raced ahead of the revoke.
				wasRevoked := revoked.Load()
				err := svc.Validate(victim, client)
				switch {
				case err == nil:
					if sawRevoked {
						t.Error("victim validated after being seen revoked (torn state)")
						return
					}
					if wasRevoked {
						t.Error("victim validated after RevokeDirect returned")
						return
					}
				default:
					if c := classOf(t, err); c != Revoked {
						t.Errorf("victim rejected with class %v, want revoked", c)
						return
					}
					sawRevoked = true
				}
			}
		}()
	}

	// Roll the secret table while validations are in flight; fewer
	// rolls than the retention limit, so gen0 signatures stay valid.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 8; i++ {
			signer.Roll([]byte(fmt.Sprintf("gen%d", i)))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
		if err := svc.RevokeDirect(victim); err != nil {
			t.Errorf("revoke: %v", err)
		}
		revoked.Store(true)
		time.Sleep(time.Millisecond)
		stop.Store(true)
	}()

	wg.Wait()
	if err := svc.Validate(stable, client); err != nil {
		t.Fatalf("stable certificate invalid after stress: %v", err)
	}
	err := svc.Validate(victim, client)
	if err == nil {
		t.Fatal("victim still validates after revocation")
	}
	if c := classOf(t, err); c != Revoked {
		t.Fatalf("victim rejected with class %v, want revoked", c)
	}
	if g := signer.Generations(); g != 9 {
		t.Fatalf("signer retains %d generations, want 9", g)
	}
}

// TestAuditCountersConcurrent is the regression test for the seed's
// audit data race: AuditSnapshot used to copy the counter struct while
// Validate/Issue incremented it under a different code path. With
// atomic counters the snapshot may be read at any time and the totals
// must come out exact. Run under -race.
func TestAuditCountersConcurrent(t *testing.T) {
	svc, _, client, stable, _ := stressService(t)
	before := svc.AuditSnapshot()

	const goroutines, perG = 8, 200
	var workers sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent snapshot reader
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				snap := svc.AuditSnapshot()
				if snap.Validated > goroutines*perG+before.Validated {
					t.Error("snapshot overshot the possible validation count")
					return
				}
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < perG; i++ {
				if err := svc.Validate(stable, client); err != nil {
					t.Errorf("validate: %v", err)
					return
				}
				// A fraud attempt: certificate presented by the wrong
				// client; exercises the failure counters concurrently.
				bogus := ids.NewHostAuthority(fmt.Sprintf("x%d", g), time.Unix(0, 0)).NewDomain()
				if err := svc.Validate(stable, bogus); err == nil {
					t.Error("stolen certificate accepted")
					return
				}
			}
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			if _, err := svc.IssueDirect(client, "main", "R",
				[]value.Value{value.Object("S.userid", fmt.Sprintf("u%d", g))}); err != nil {
				t.Errorf("issue: %v", err)
			}
		}(g)
	}
	workers.Wait()
	close(stop)
	<-readerDone

	after := svc.AuditSnapshot()
	if got := after.Validated - before.Validated; got != goroutines*perG {
		t.Fatalf("validated count %d, want %d", got, goroutines*perG)
	}
	if got := after.FraudCount - before.FraudCount; got != goroutines*perG {
		t.Fatalf("fraud count %d, want %d", got, goroutines*perG)
	}
	if got := after.Issued - before.Issued; got != goroutines {
		t.Fatalf("issued count %d, want %d", got, goroutines)
	}
}
