package oasis

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"oasis/internal/credrec"
)

func wantRevoked(t *testing.T, err error, context string) {
	t.Helper()
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Class != Revoked {
		t.Fatalf("%s: want Revoked, got %v", context, err)
	}
}

func TestSuspicionEscalation(t *testing.T) {
	// §6.8.4: silence degrades a watched source in two steps — Suspect
	// (records Unknown) after 1.5 heartbeat periods, Failed (records
	// fail safe to False) after FailsafeMissed periods. Recovery only
	// through an explicit Reconnect when AutoResync is off.
	var transitions []string
	h := newHarnessWith(t, Options{}, Options{
		HeartbeatEvery: 5 * time.Second,
		FailsafeMissed: 3,
		OnSourceState: func(src string, from, to SourceState) {
			transitions = append(transitions, fmt.Sprintf("%s:%s->%s", src, from, to))
		},
	})
	_, _, member, _ := enterConfMemberOn(t, h)
	cand := member.Client

	// Heartbeats flowing: the source stays alive.
	h.login.HeartbeatTick()
	h.clk.Advance(2 * time.Second)
	h.conf.SuspicionTick()
	if st := h.conf.SourceStatus("Login"); st != SourceAlive {
		t.Fatalf("status with heartbeats flowing = %v", st)
	}
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatal(err)
	}

	// One missed heartbeat plus slack: Suspect, validation fails safe.
	h.net.FailLink("Login", "Conf")
	h.clk.Advance(6 * time.Second) // 8s of silence > 7.5s
	h.conf.SuspicionTick()
	if st := h.conf.SourceStatus("Login"); st != SourceSuspect {
		t.Fatalf("status after 8s silence = %v", st)
	}
	wantRevoked(t, h.conf.Validate(member, cand), "validate while suspect")

	// Past the fail-safe budget: Failed, records pinned False.
	h.clk.Advance(10 * time.Second) // 18s of silence > 3x5s
	h.conf.SuspicionTick()
	if st := h.conf.SourceStatus("Login"); st != SourceFailed {
		t.Fatalf("status after 18s silence = %v", st)
	}
	wantRevoked(t, h.conf.Validate(member, cand), "validate while failed")

	// Heartbeats resume, but without AutoResync the lost notifications
	// cannot be trusted away: the source stays degraded until Reconnect.
	h.net.HealLink("Login", "Conf")
	h.login.HeartbeatTick()
	if st := h.conf.SourceStatus("Login"); st != SourceFailed {
		t.Fatalf("status healed on heartbeat alone = %v", st)
	}
	wantRevoked(t, h.conf.Validate(member, cand), "validate before resync")

	if err := h.conf.Reconnect("Login"); err != nil {
		t.Fatal(err)
	}
	if st := h.conf.SourceStatus("Login"); st != SourceAlive {
		t.Fatalf("status after reconnect = %v", st)
	}
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatalf("membership not restored by resync: %v", err)
	}

	want := []string{"Login:alive->suspect", "Login:suspect->failed", "Login:failed->alive"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestAutoResyncOnRevive(t *testing.T) {
	// With AutoResync the first heartbeat after a heal triggers the
	// resync: no explicit Reconnect call is needed.
	h := newHarnessWith(t, Options{}, Options{
		HeartbeatEvery: 5 * time.Second,
		AutoResync:     true,
	})
	_, _, member, _ := enterConfMemberOn(t, h)
	cand := member.Client

	h.net.FailLink("Login", "Conf")
	h.clk.Advance(30 * time.Second)
	h.conf.SuspicionTick()
	if st := h.conf.SourceStatus("Login"); st != SourceFailed {
		t.Fatalf("status during partition = %v", st)
	}
	wantRevoked(t, h.conf.Validate(member, cand), "validate during partition")

	h.net.HealLink("Login", "Conf")
	h.login.HeartbeatTick()
	if st := h.conf.SourceStatus("Login"); st != SourceAlive {
		t.Fatalf("status after heal heartbeat = %v", st)
	}
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatalf("membership not auto-restored: %v", err)
	}
}

func TestAutoResyncPreservesRevocation(t *testing.T) {
	// A logout during the partition must survive the auto-resync: the
	// record comes back permanently False, not True.
	h := newHarnessWith(t, Options{}, Options{
		HeartbeatEvery: 5 * time.Second,
		AutoResync:     true,
	})
	_, candLogin, member, _ := enterConfMemberOn(t, h)
	cand := member.Client

	h.net.FailLink("Login", "Conf")
	if err := h.login.Exit(candLogin, cand); err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(30 * time.Second)
	h.conf.SuspicionTick()

	h.net.HealLink("Login", "Conf")
	h.login.HeartbeatTick()
	if st := h.conf.SourceStatus("Login"); st != SourceAlive {
		t.Fatalf("status after heal = %v", st)
	}
	wantRevoked(t, h.conf.Validate(member, cand), "validate after resync of revoked record")
}

func TestNotificationGapFailsSafe(t *testing.T) {
	// A sequence gap proves a notification was lost — possibly the
	// revocation itself. The source's records fail safe immediately,
	// and with AutoResync the truth is fetched in the same breath.
	h := newHarnessWith(t, Options{}, Options{
		HeartbeatEvery: 5 * time.Second,
		AutoResync:     true,
	})
	_, candLogin, member, _ := enterConfMemberOn(t, h)
	cand := member.Client

	// A heartbeat establishes the stream's high-water mark; only a
	// stream that has delivered before can expose a gap.
	h.login.HeartbeatTick()

	// The revocation notification is lost on the failed link (the
	// broker still consumes its sequence number).
	h.net.FailLink("Login", "Conf")
	if err := h.login.Exit(candLogin, cand); err != nil {
		t.Fatal(err)
	}
	h.net.HealLink("Login", "Conf")

	// The next heartbeat exposes the gap; the resync closes it.
	h.login.HeartbeatTick()
	wantRevoked(t, h.conf.Validate(member, cand), "validate after gap resync")
	if st := h.conf.SourceStatus("Login"); st != SourceAlive {
		t.Fatalf("status after gap resync = %v", st)
	}
}

func TestResyncOpDirectly(t *testing.T) {
	h, candLogin, _, _ := enterConfMember(t)

	res, err := h.net.Call("Conf", "Login", "resync", ResyncArg{Refs: []credrec.Ref{candLogin.CRR}})
	if err != nil {
		t.Fatal(err)
	}
	reply := res.(ResyncReply)
	if reply.Session == 0 {
		t.Fatal("no session reported for a watching peer")
	}
	if len(reply.Entries) != 1 || reply.Entries[0].State != credrec.True || reply.Entries[0].Permanent {
		t.Fatalf("entries = %+v", reply.Entries)
	}

	// After logout the same record resolves permanently False, and a
	// dangling reference does too.
	if err := h.login.Exit(candLogin, candLogin.Client); err != nil {
		t.Fatal(err)
	}
	res, err = h.net.Call("Conf", "Login", "resync", ResyncArg{
		Refs: []credrec.Ref{candLogin.CRR, credrec.RefFromUint64(1<<40 | 99)},
	})
	if err != nil {
		t.Fatal(err)
	}
	reply = res.(ResyncReply)
	if len(reply.Entries) != 2 {
		t.Fatalf("entries = %+v", reply.Entries)
	}
	for i, e := range reply.Entries {
		if e.State != credrec.False || !e.Permanent {
			t.Fatalf("entry %d = %+v, want permanent False", i, e)
		}
	}
	if _, err := h.net.Call("Conf", "Login", "resync", 42); err == nil {
		t.Fatal("bad resync arg accepted")
	}
}
