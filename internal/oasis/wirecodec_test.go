package oasis

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// codecRoundTrip pushes one payload through the bus's binary
// encode/decode pair and returns the reconstructed value.
func codecRoundTrip(t *testing.T, v any) any {
	t.Helper()
	var buf bytes.Buffer
	e := bus.NewWireEnc(&buf)
	if err := bus.EncodePayload(e, v); err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := bus.DecodePayload(bus.NewWireDec(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	return got
}

// TestBinaryPayloadRoundTrips round-trips every payload type registered
// by RegisterWireTypes through the hand-rolled binary codec. Certificates
// are compared field-by-field: the structs carry an unexported canonical
// cache that reflect.DeepEqual would drag in.
func TestBinaryPayloadRoundTrips(t *testing.T) {
	RegisterWireTypes()

	client := ids.ClientID{Host: "wombat", ID: 17, BootTime: time.Unix(500, 0)}
	args := []value.Value{value.Str("alice"), value.Int(7), value.MustSet("rwx", "rw")}
	rmc := &cert.RMC{
		Service:  "Doc",
		Rolefile: "doc.rdl",
		Roles:    cert.RoleSet(0b1010),
		Args:     args,
		Client:   client,
		CRR:      credrec.Ref{Index: 3, Magic: 99},
		Expiry:   time.Unix(9000, 0),
		Sig:      []byte("sig-bytes"),
	}
	sameRMC := func(t *testing.T, got, want *cert.RMC) {
		t.Helper()
		if got.Service != want.Service || got.Rolefile != want.Rolefile ||
			got.Roles != want.Roles || got.Client != want.Client ||
			got.CRR != want.CRR || !got.Expiry.Equal(want.Expiry) ||
			!bytes.Equal(got.Sig, want.Sig) || !reflect.DeepEqual(got.Args, want.Args) {
			t.Fatalf("RMC changed in transit:\n got %+v\nwant %+v", got, want)
		}
	}

	t.Run("GetTypesArg", func(t *testing.T) {
		in := GetTypesArg{Rolefile: "doc.rdl", Role: "reader"}
		if got := codecRoundTrip(t, in); got != in {
			t.Fatalf("got %+v, want %+v", got, in)
		}
	})

	t.Run("ValidateArg", func(t *testing.T) {
		in := ValidateArg{Cert: rmc, Client: client, Watch: true}
		got, ok := codecRoundTrip(t, in).(ValidateArg)
		if !ok {
			t.Fatal("wrong type back")
		}
		if got.Client != in.Client || got.Watch != in.Watch || got.Cert == nil {
			t.Fatalf("got %+v", got)
		}
		sameRMC(t, got.Cert, rmc)
	})

	t.Run("ValidateArgNilCert", func(t *testing.T) {
		in := ValidateArg{Client: client}
		got, ok := codecRoundTrip(t, in).(ValidateArg)
		if !ok || got.Cert != nil || got.Client != in.Client || got.Watch {
			t.Fatalf("got %+v", got)
		}
	})

	t.Run("ValidateReply", func(t *testing.T) {
		in := ValidateReply{
			Roles: []string{"reader", "writer"},
			Types: []value.Type{value.StringType, value.IntType, value.SetType("rwx")},
			State: credrec.True,
			RegID: 41,
		}
		got := codecRoundTrip(t, in)
		if !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v, want %+v", got, in)
		}
	})

	t.Run("ReadStateArg", func(t *testing.T) {
		in := ReadStateArg{Ref: credrec.Ref{Index: 8, Magic: 123}}
		if got := codecRoundTrip(t, in); got != in {
			t.Fatalf("got %+v, want %+v", got, in)
		}
	})

	t.Run("ResyncArg", func(t *testing.T) {
		in := ResyncArg{Refs: []credrec.Ref{{Index: 1, Magic: 2}, {Index: 3, Magic: 4}}}
		if got := codecRoundTrip(t, in); !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v, want %+v", got, in)
		}
		empty := ResyncArg{}
		if got := codecRoundTrip(t, empty); !reflect.DeepEqual(got, empty) {
			t.Fatalf("empty: got %+v", got)
		}
	})

	t.Run("ResyncReply", func(t *testing.T) {
		in := ResyncReply{
			Session: 77,
			Seq:     12,
			Entries: []ResyncEntry{
				{Ref: credrec.Ref{Index: 1, Magic: 9}, State: credrec.True, Permanent: false},
				{Ref: credrec.Ref{Index: 2, Magic: 8}, State: credrec.False, Permanent: true},
			},
		}
		if got := codecRoundTrip(t, in); !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v, want %+v", got, in)
		}
	})

	t.Run("RMC", func(t *testing.T) {
		got, ok := codecRoundTrip(t, rmc).(*cert.RMC)
		if !ok {
			t.Fatal("wrong type back")
		}
		sameRMC(t, got, rmc)
	})

	t.Run("Delegation", func(t *testing.T) {
		in := &cert.Delegation{
			Service:  "Doc",
			Rolefile: "doc.rdl",
			Role:     "courier",
			Args:     []value.Value{value.Str("bob")},
			Required: []cert.RoleSpec{
				{Service: "Login", Rolefile: "login.rdl", Role: "user", Args: []value.Value{value.Str("bob")}},
				{Service: "Doc", Rolefile: "doc.rdl", Role: "reader", Args: nil},
			},
			DelegCRR: credrec.Ref{Index: 5, Magic: 55},
			Expiry:   time.Unix(8000, 250),
			Sig:      []byte("deleg-sig"),
		}
		got, ok := codecRoundTrip(t, in).(*cert.Delegation)
		if !ok {
			t.Fatal("wrong type back")
		}
		if got.Service != in.Service || got.Rolefile != in.Rolefile || got.Role != in.Role ||
			!reflect.DeepEqual(got.Args, in.Args) || !reflect.DeepEqual(got.Required, in.Required) ||
			got.DelegCRR != in.DelegCRR || !got.Expiry.Equal(in.Expiry) || !bytes.Equal(got.Sig, in.Sig) {
			t.Fatalf("got %+v, want %+v", got, in)
		}
	})

	t.Run("Revocation", func(t *testing.T) {
		in := &cert.Revocation{
			Service:      "Doc",
			DelegatorCRR: credrec.Ref{Index: 4, Magic: 44},
			TargetCRR:    credrec.Ref{Index: 6, Magic: 66},
			Sig:          []byte("rev-sig"),
		}
		got, ok := codecRoundTrip(t, in).(*cert.Revocation)
		if !ok {
			t.Fatal("wrong type back")
		}
		if got.Service != in.Service || got.DelegatorCRR != in.DelegatorCRR ||
			got.TargetCRR != in.TargetCRR || !bytes.Equal(got.Sig, in.Sig) {
			t.Fatalf("got %+v, want %+v", got, in)
		}
	})

	t.Run("State", func(t *testing.T) {
		if got := codecRoundTrip(t, credrec.Unknown); got != credrec.Unknown {
			t.Fatalf("got %v", got)
		}
	})

	t.Run("Types", func(t *testing.T) {
		in := []value.Type{value.IntType, value.ObjectType("Doc.read")}
		if got := codecRoundTrip(t, in); !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v, want %+v", got, in)
		}
	})

	t.Run("Value", func(t *testing.T) {
		in := value.Object("Doc.read", "alice")
		if got := codecRoundTrip(t, in); got != in {
			t.Fatalf("got %+v, want %+v", got, in)
		}
	})
}

// TestBinaryRMCSignatureSurvivesTransit ensures the decoded certificate
// still verifies: the binary codec must reproduce exactly the canonical
// bytes that were signed.
func TestBinaryRMCSignatureSurvivesTransit(t *testing.T) {
	RegisterWireTypes()
	signer := cert.NewHMACSigner([]byte("transit-key"), 32)
	c := &cert.RMC{
		Service:  "Doc",
		Rolefile: "doc.rdl",
		Roles:    cert.RoleSet(1),
		Args:     []value.Value{value.Str("alice")},
		Client:   ids.ClientID{Host: "h", ID: 1, BootTime: time.Unix(10, 0)},
		CRR:      credrec.Ref{Index: 1, Magic: 7},
	}
	c.Sign(signer)
	got, ok := codecRoundTrip(t, c).(*cert.RMC)
	if !ok {
		t.Fatal("wrong type back")
	}
	if !got.Verify(signer) {
		t.Fatal("decoded certificate no longer verifies")
	}
	got.Roles = cert.RoleSet(3)
	if got.Verify(signer) {
		t.Fatal("tampered decoded certificate verified")
	}
}
