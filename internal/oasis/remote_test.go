package oasis

import (
	"errors"
	"testing"
	"time"

	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/value"
)

// enterConfMember walks the full figure 4.8 scenario: a Login
// certificate used as a credential at the Conference service, producing
// an external credential record there.
func enterConfMember(t *testing.T) (*harness, *cert.RMC, *cert.RMC, *cert.RMC) {
	t.Helper()
	return enterConfMemberOn(t, newHarness(t))
}

// enterConfMemberOn runs the same scenario on a caller-built harness
// (the suspicion tests configure heartbeat budgets on Conf first).
func enterConfMemberOn(t *testing.T, h *harness) (*harness, *cert.RMC, *cert.RMC, *cert.RMC) {
	t.Helper()
	h.conf.Groups().AddMember("dm", "staff")
	chairClient := h.client("ely")
	chair, err := h.conf.Enter(EnterRequest{Client: chairClient, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{h.logOn(t, chairClient, "jmb")}})
	if err != nil {
		t.Fatal(err)
	}
	deleg, _, err := h.conf.Delegate(DelegateRequest{
		Client: chairClient, Rolefile: "main", Role: "Member",
		Args: []value.Value{uid("dm")}, ElectorCert: chair,
	})
	if err != nil {
		t.Fatal(err)
	}
	cand := h.client("cam")
	candLogin := h.logOn(t, cand, "dm")
	member, err := h.conf.EnterDelegated(EnterRequest{
		Client: cand, Rolefile: "main", Role: "Member",
		Creds: []*cert.RMC{candLogin}, Delegation: deleg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, candLogin, member, chair
}

func TestCrossServiceRevocation(t *testing.T) {
	// E5: logging off at the Login service revokes the Conference
	// membership through an external record and event notification
	// (figures 4.6 and 4.8).
	h, candLogin, member, _ := enterConfMember(t)
	cand := member.Client
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatal(err)
	}
	// The user logs off. Login invalidates the LoggedOn record; the
	// Modified event crosses to Conf and the membership dies.
	if err := h.login.Exit(candLogin, candLogin.Client); err != nil {
		t.Fatal(err)
	}
	err := h.conf.Validate(member, cand)
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Class != Revoked {
		t.Fatalf("membership after remote logout: %v", err)
	}
}

func TestExternalRecordReuse(t *testing.T) {
	// Validating two certificates backed by the same remote record
	// creates a single surrogate (§4.9.1).
	h := newHarness(t)
	svc, _ := New("Two", h.clk, h.net, Options{})
	src := `
A(u) <- Login.LoggedOn(u, h)*
B(u) <- Login.LoggedOn(u, h)*
`
	if err := svc.AddRolefile("main", src); err != nil {
		t.Fatal(err)
	}
	c := h.client("ely")
	login := h.logOn(t, c, "dm")
	if _, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "A", Creds: []*cert.RMC{login}}); err != nil {
		t.Fatal(err)
	}
	before := svc.Store().Live()
	if _, err := svc.Enter(EnterRequest{Client: c, Rolefile: "main", Role: "B", Creds: []*cert.RMC{login}}); err != nil {
		t.Fatal(err)
	}
	after := svc.Store().Live()
	// B's entry reuses the external record; with the single-parent
	// optimisation no new record is needed at all.
	if after != before {
		t.Fatalf("second entry created %d records (surrogate not reused)", after-before)
	}
}

func TestMissedHeartbeatMarksUnknown(t *testing.T) {
	// §4.10: a missed heartbeat leads to external records being marked
	// unknown; servers then act as if certificates were revoked.
	h, _, member, _ := enterConfMember(t)
	cand := member.Client

	// Heartbeats flow: liveness holds.
	h.login.HeartbeatTick()
	h.clk.Advance(2 * time.Second)
	if failed := h.conf.LivenessTick(5 * time.Second); len(failed) != 0 {
		t.Fatalf("premature failure: %v", failed)
	}
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatal(err)
	}

	// The link fails; heartbeats stop arriving; after the allowance the
	// Login source is presumed failed.
	h.net.SetDown("Login", "Conf", true)
	h.login.HeartbeatTick() // dropped
	h.clk.Advance(10 * time.Second)
	failed := h.conf.LivenessTick(5 * time.Second)
	if len(failed) != 1 || failed[0] != "Login" {
		t.Fatalf("failed = %v", failed)
	}
	err := h.conf.Validate(member, cand)
	var verr *ValidationError
	if !errors.As(err, &verr) || verr.Class != Revoked {
		t.Fatalf("validation during partition: %v", err)
	}
}

func TestReconnectRestoresState(t *testing.T) {
	// §4.10: when connection is re-established the state of each record
	// is read and service resumes.
	h, _, member, _ := enterConfMember(t)
	cand := member.Client
	h.net.SetDown("Login", "Conf", true)
	h.clk.Advance(time.Minute)
	h.conf.LivenessTick(5 * time.Second)
	if err := h.conf.Validate(member, cand); err == nil {
		t.Fatal("membership valid during partition")
	}

	h.net.SetDown("Login", "Conf", false)
	if err := h.conf.Reconnect("Login"); err != nil {
		t.Fatal(err)
	}
	if err := h.conf.Validate(member, cand); err != nil {
		t.Fatalf("membership not restored after reconnect: %v", err)
	}
}

func TestReconnectAfterRemoteRevocation(t *testing.T) {
	// If the logout happened during the partition, reconnection reads
	// the record as permanently false.
	h, candLogin, member, _ := enterConfMember(t)
	cand := member.Client
	h.net.SetDown("Login", "Conf", true)
	if err := h.login.Exit(candLogin, candLogin.Client); err != nil {
		t.Fatal(err)
	}
	h.clk.Advance(time.Minute)
	h.conf.LivenessTick(5 * time.Second)
	h.net.SetDown("Login", "Conf", false)
	if err := h.conf.Reconnect("Login"); err != nil {
		t.Fatal(err)
	}
	if err := h.conf.Validate(member, cand); err == nil {
		t.Fatal("membership restored despite remote revocation during partition")
	}
}

func TestForeignValidationRejectsForgery(t *testing.T) {
	h := newHarness(t)
	c := h.client("ely")
	login := h.logOn(t, c, "dm")
	forged := *login
	forged.Args = []value.Value{uid("root"), value.Object("Login.host", "ely")}
	if _, err := h.conf.Enter(EnterRequest{
		Client: c, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{&forged},
	}); err == nil {
		t.Fatal("forged foreign certificate accepted")
	}
}

func TestForeignValidationRejectsStolen(t *testing.T) {
	h := newHarness(t)
	victim := h.client("ely")
	login := h.logOn(t, victim, "jmb")
	thief := h.client("bad")
	if _, err := h.conf.Enter(EnterRequest{
		Client: thief, Rolefile: "main", Role: "Chair",
		Creds: []*cert.RMC{login},
	}); err == nil {
		t.Fatal("stolen certificate accepted for different client")
	}
}

func TestValidateOpDirectly(t *testing.T) {
	h := newHarness(t)
	c := h.client("ely")
	login := h.logOn(t, c, "jmb")
	res, err := h.net.Call("Conf", "Login", "validate", ValidateArg{Cert: login, Client: c})
	if err != nil {
		t.Fatal(err)
	}
	reply := res.(ValidateReply)
	if reply.State != credrec.True || len(reply.Roles) != 1 || reply.Roles[0] != "LoggedOn" {
		t.Fatalf("reply = %+v", reply)
	}
	// After exit it reports false.
	if err := h.login.Exit(login, c); err != nil {
		t.Fatal(err)
	}
	res2, err := h.net.Call("Conf", "Login", "validate", ValidateArg{Cert: login, Client: c})
	if err != nil {
		t.Fatal(err)
	}
	if res2.(ValidateReply).State == credrec.True {
		t.Fatal("exited certificate reported valid")
	}
}

func TestUnknownOps(t *testing.T) {
	h := newHarness(t)
	if _, err := h.net.Call("Conf", "Login", "bogus", nil); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := h.net.Call("Conf", "Login", "gettypes", 42); err == nil {
		t.Fatal("bad gettypes arg accepted")
	}
	if _, err := h.net.Call("Conf", "Login", "validate", 42); err == nil {
		t.Fatal("bad validate arg accepted")
	}
	if _, err := h.net.Call("Conf", "Login", "readstate", 42); err == nil {
		t.Fatal("bad readstate arg accepted")
	}
}

func TestGetTypesOp(t *testing.T) {
	h := newHarness(t)
	res, err := h.net.Call("Conf", "Login", "gettypes", GetTypesArg{Rolefile: "main", Role: "LoggedOn"})
	if err != nil {
		t.Fatal(err)
	}
	ts := res.([]value.Type)
	if len(ts) != 2 || ts[0].Name != "Login.userid" {
		t.Fatalf("types = %v", ts)
	}
}

func TestRemoteRevokeOp(t *testing.T) {
	// Revocation certificates can be presented over the network (§4.4:
	// long-term delegation needs revocation regardless of where the
	// delegator now runs).
	h, chairClient, chair := confSetup(t)
	cand, member, rev := electMember(t, h, chairClient, chair, "dm")
	if _, err := h.net.Call("Elsewhere", "Conf", "revoke", rev); err != nil {
		t.Fatal(err)
	}
	if err := h.conf.Validate(member, cand); err == nil {
		t.Fatal("membership survived remote revocation")
	}
}
