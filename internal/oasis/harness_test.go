package oasis

import (
	"testing"
	"time"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/clock"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// harness wires the paper's running example: a Login service issuing
// LoggedOn certificates, and a Conference service whose rolefile
// (figure 3.1) references them.
type harness struct {
	clk   *clock.Virtual
	net   *bus.Network
	login *Service
	conf  *Service
	hosts map[string]*ids.HostAuthority
}

const loginRolefile = `
def LoggedOn(u, h) u: Login.userid h: Login.host
LoggedOn(u, h) <-
`

const confRolefile = `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair : (u in staff)*
`

func newHarness(t *testing.T) *harness {
	t.Helper()
	return newHarnessWith(t, Options{}, Options{})
}

// newHarnessWith builds the two-service harness with explicit options
// (the suspicion and resync tests configure heartbeat budgets on Conf).
func newHarnessWith(t *testing.T, loginOpts, confOpts Options) *harness {
	t.Helper()
	clk := clock.NewVirtual(time.Date(1996, 3, 1, 9, 0, 0, 0, time.UTC))
	net := bus.NewNetwork(clk)
	login, err := New("Login", clk, net, loginOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := login.AddRolefile("main", loginRolefile); err != nil {
		t.Fatal(err)
	}
	conf, err := New("Conf", clk, net, confOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := conf.AddRolefile("main", confRolefile); err != nil {
		t.Fatal(err)
	}
	return &harness{
		clk: clk, net: net, login: login, conf: conf,
		hosts: make(map[string]*ids.HostAuthority),
	}
}

// client creates a protection domain on the named host.
func (h *harness) client(host string) ids.ClientID {
	ha, ok := h.hosts[host]
	if !ok {
		ha = ids.NewHostAuthority(host, h.clk.Now())
		h.hosts[host] = ha
	}
	return ha.NewDomain()
}

// logOn obtains a LoggedOn certificate for a user on a host. The Login
// rolefile accepts the claim (a password check would precede this in the
// full system, §3.4.3).
func (h *harness) logOn(t *testing.T, c ids.ClientID, user string) *cert.RMC {
	t.Helper()
	rmc, err := h.login.Enter(EnterRequest{
		Client:   c,
		Rolefile: "main",
		Role:     "LoggedOn",
		Args: []value.Value{
			value.Object("Login.userid", user),
			value.Object("Login.host", c.Host),
		},
	})
	if err != nil {
		t.Fatalf("logOn(%s): %v", user, err)
	}
	return rmc
}

func uid(u string) value.Value { return value.Object("Login.userid", u) }
