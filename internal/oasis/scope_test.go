package oasis

import (
	"testing"

	"oasis/internal/cert"
	"oasis/internal/value"
)

// TestRolefileScoping covers §2.10: many conferences, each with its own
// rolefile inside one service; certificates are conference-specific.
func TestRolefileScoping(t *testing.T) {
	h := newHarness(t)
	svc, _ := New("Meetings", h.clk, h.net, Options{})
	src := `
Chair     <- Login.LoggedOn("jmb", h)
Member(u) <- Login.LoggedOn(u, h)* <|* Chair
`
	if err := svc.AddRolefile("opera-group", src); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddRolefile("systems-group", src); err != nil {
		t.Fatal(err)
	}

	c := h.client("ely")
	login := h.logOn(t, c, "jmb")
	operaChair, err := svc.Enter(EnterRequest{
		Client: c, Rolefile: "opera-group", Role: "Chair",
		Creds: []*cert.RMC{login},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The certificate names its rolefile; it carries no authority in the
	// other conference.
	if operaChair.Rolefile != "opera-group" {
		t.Fatalf("rolefile = %q", operaChair.Rolefile)
	}
	if svc.HasRole(operaChair, "systems-group", "Chair") {
		t.Fatal("opera chair recognised in systems group")
	}
	if !svc.HasRole(operaChair, "opera-group", "Chair") {
		t.Fatal("opera chair not recognised in opera group")
	}

	// Delegation minted in the opera conference cannot be redeemed in
	// the systems conference: the delegation embeds its rolefile.
	deleg, _, err := svc.Delegate(DelegateRequest{
		Client: c, Rolefile: "opera-group", Role: "Member",
		Args:        []value.Value{uid("dm")},
		ElectorCert: operaChair,
	})
	if err != nil {
		t.Fatal(err)
	}
	cand := h.client("cam")
	candLogin := h.logOn(t, cand, "dm")
	member, err := svc.EnterDelegated(EnterRequest{
		Client: cand, Rolefile: "systems-group", Role: "Member",
		Creds: []*cert.RMC{candLogin}, Delegation: deleg,
	})
	// EnterDelegated resolves the rolefile from the delegation itself:
	// the resulting membership is in the opera conference regardless of
	// the requested scope.
	if err != nil {
		t.Fatal(err)
	}
	if member.Rolefile != "opera-group" {
		t.Fatalf("delegated membership scope = %q", member.Rolefile)
	}
	if svc.HasRole(member, "systems-group", "Member") {
		t.Fatal("delegated membership leaked into another conference")
	}

	// Chair authority in one conference cannot delegate in the other.
	if _, _, err := svc.Delegate(DelegateRequest{
		Client: c, Rolefile: "systems-group", Role: "Member",
		Args:        []value.Value{uid("dm")},
		ElectorCert: operaChair,
	}); err == nil {
		t.Fatal("opera chair delegated in systems conference")
	}
}
