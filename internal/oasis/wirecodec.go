package oasis

import (
	"fmt"

	"oasis/internal/bus"
	"oasis/internal/cert"
	"oasis/internal/credrec"
	"oasis/internal/ids"
	"oasis/internal/value"
)

// Binary wire-payload codecs for the inter-service protocol, the fast
// path the TCP bridge uses when both ends negotiate bus.WireBinary
// (see internal/bus/codec.go). Each payload type carried in the `any`
// argument/reply position gets one tag byte and a hand-rolled
// encoder/decoder pair; gob — which writes the concrete type name with
// every value — is then only paid by legacy links and unregistered
// types.
//
// The tags are protocol constants: both ends of a link must agree on
// them forever, so they are append-only — never renumber or reuse a
// tag, even for a retired type. Tags 0 and 255 are reserved by the bus
// (nil and the gob-blob fallback).
const (
	wireTagGetTypesArg   = 1
	wireTagValidateArg   = 2
	wireTagValidateReply = 3
	wireTagReadStateArg  = 4
	wireTagResyncArg     = 5
	wireTagResyncReply   = 6
	wireTagRMC           = 7
	wireTagDelegation    = 8
	wireTagRevocation    = 9
	wireTagState         = 10
	wireTagTypes         = 11
	wireTagValue         = 12
	wireTagShardWatchArg = 13
	wireTagTreeForward   = 14
)

// registerBinaryPayloads registers every protocol payload with the
// bus's binary codec; called once from RegisterWireTypes alongside the
// gob registrations (the fallback path needs both).
func registerBinaryPayloads() {
	bus.RegisterWirePayload(wireTagGetTypesArg, GetTypesArg{},
		func(e *bus.WireEnc, v any) error {
			a, ok := v.(GetTypesArg)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not GetTypesArg", v)
			}
			e.PutString(a.Rolefile)
			e.PutString(a.Role)
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			var a GetTypesArg
			var err error
			if a.Rolefile, err = d.String(); err != nil {
				return nil, err
			}
			if a.Role, err = d.String(); err != nil {
				return nil, err
			}
			return a, nil
		})

	bus.RegisterWirePayload(wireTagValidateArg, ValidateArg{},
		func(e *bus.WireEnc, v any) error {
			a, ok := v.(ValidateArg)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not ValidateArg", v)
			}
			e.PutBool(a.Cert != nil)
			if a.Cert != nil {
				encodeRMC(e, a.Cert)
			}
			encodeClientID(e, a.Client)
			e.PutBool(a.Watch)
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			var a ValidateArg
			hasCert, err := d.Bool()
			if err != nil {
				return nil, err
			}
			if hasCert {
				if a.Cert, err = decodeRMC(d); err != nil {
					return nil, err
				}
			}
			if a.Client, err = decodeClientID(d); err != nil {
				return nil, err
			}
			if a.Watch, err = d.Bool(); err != nil {
				return nil, err
			}
			return a, nil
		})

	bus.RegisterWirePayload(wireTagValidateReply, ValidateReply{},
		func(e *bus.WireEnc, v any) error {
			r, ok := v.(ValidateReply)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not ValidateReply", v)
			}
			e.PutStrings(r.Roles)
			e.PutTypes(r.Types)
			e.PutVarint(int64(r.State))
			e.PutUvarint(r.RegID)
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			var r ValidateReply
			var err error
			if r.Roles, err = d.Strings(); err != nil {
				return nil, err
			}
			if r.Types, err = d.Types(); err != nil {
				return nil, err
			}
			st, err := d.Varint()
			if err != nil {
				return nil, err
			}
			r.State = credrec.State(st)
			if r.RegID, err = d.Uvarint(); err != nil {
				return nil, err
			}
			return r, nil
		})

	bus.RegisterWirePayload(wireTagReadStateArg, ReadStateArg{},
		func(e *bus.WireEnc, v any) error {
			a, ok := v.(ReadStateArg)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not ReadStateArg", v)
			}
			e.PutUvarint(a.Ref.Uint64())
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			u, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			return ReadStateArg{Ref: credrec.RefFromUint64(u)}, nil
		})

	bus.RegisterWirePayload(wireTagResyncArg, ResyncArg{},
		func(e *bus.WireEnc, v any) error {
			a, ok := v.(ResyncArg)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not ResyncArg", v)
			}
			e.PutUvarint(uint64(len(a.Refs)))
			for _, r := range a.Refs {
				e.PutUvarint(r.Uint64())
			}
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			if n > 1<<16 {
				return nil, fmt.Errorf("oasis: resync ref count %d exceeds limit", n)
			}
			a := ResyncArg{}
			if n > 0 {
				a.Refs = make([]credrec.Ref, n)
				for i := range a.Refs {
					u, err := d.Uvarint()
					if err != nil {
						return nil, err
					}
					a.Refs[i] = credrec.RefFromUint64(u)
				}
			}
			return a, nil
		})

	bus.RegisterWirePayload(wireTagResyncReply, ResyncReply{},
		func(e *bus.WireEnc, v any) error {
			r, ok := v.(ResyncReply)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not ResyncReply", v)
			}
			e.PutUvarint(r.Session)
			e.PutUvarint(r.Seq)
			e.PutUvarint(uint64(len(r.Entries)))
			for _, ent := range r.Entries {
				e.PutUvarint(ent.Ref.Uint64())
				e.PutVarint(int64(ent.State))
				e.PutBool(ent.Permanent)
			}
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			var r ResyncReply
			var err error
			if r.Session, err = d.Uvarint(); err != nil {
				return nil, err
			}
			if r.Seq, err = d.Uvarint(); err != nil {
				return nil, err
			}
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			if n > 1<<16 {
				return nil, fmt.Errorf("oasis: resync entry count %d exceeds limit", n)
			}
			if n > 0 {
				r.Entries = make([]ResyncEntry, n)
				for i := range r.Entries {
					u, err := d.Uvarint()
					if err != nil {
						return nil, err
					}
					st, err := d.Varint()
					if err != nil {
						return nil, err
					}
					perm, err := d.Bool()
					if err != nil {
						return nil, err
					}
					r.Entries[i] = ResyncEntry{Ref: credrec.RefFromUint64(u), State: credrec.State(st), Permanent: perm}
				}
			}
			return r, nil
		})

	bus.RegisterWirePayload(wireTagRMC, &cert.RMC{},
		func(e *bus.WireEnc, v any) error {
			c, ok := v.(*cert.RMC)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not *cert.RMC", v)
			}
			encodeRMC(e, c)
			return nil
		},
		func(d *bus.WireDec) (any, error) { return decodeRMC(d) })

	bus.RegisterWirePayload(wireTagDelegation, &cert.Delegation{},
		func(e *bus.WireEnc, v any) error {
			dg, ok := v.(*cert.Delegation)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not *cert.Delegation", v)
			}
			e.PutString(dg.Service)
			e.PutString(dg.Rolefile)
			e.PutString(dg.Role)
			e.PutValues(dg.Args)
			e.PutUvarint(uint64(len(dg.Required)))
			for _, spec := range dg.Required {
				e.PutString(spec.Service)
				e.PutString(spec.Rolefile)
				e.PutString(spec.Role)
				e.PutValues(spec.Args)
			}
			e.PutUvarint(dg.DelegCRR.Uint64())
			e.PutTime(dg.Expiry)
			e.PutBytes(dg.Sig)
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			dg := &cert.Delegation{}
			var err error
			if dg.Service, err = d.String(); err != nil {
				return nil, err
			}
			if dg.Rolefile, err = d.String(); err != nil {
				return nil, err
			}
			if dg.Role, err = d.String(); err != nil {
				return nil, err
			}
			if dg.Args, err = d.Values(); err != nil {
				return nil, err
			}
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			if n > 1<<16 {
				return nil, fmt.Errorf("oasis: required-role count %d exceeds limit", n)
			}
			if n > 0 {
				dg.Required = make([]cert.RoleSpec, n)
				for i := range dg.Required {
					var spec cert.RoleSpec
					if spec.Service, err = d.String(); err != nil {
						return nil, err
					}
					if spec.Rolefile, err = d.String(); err != nil {
						return nil, err
					}
					if spec.Role, err = d.String(); err != nil {
						return nil, err
					}
					if spec.Args, err = d.Values(); err != nil {
						return nil, err
					}
					dg.Required[i] = spec
				}
			}
			u, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			dg.DelegCRR = credrec.RefFromUint64(u)
			if dg.Expiry, err = d.Time(); err != nil {
				return nil, err
			}
			if dg.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return dg, nil
		})

	bus.RegisterWirePayload(wireTagRevocation, &cert.Revocation{},
		func(e *bus.WireEnc, v any) error {
			r, ok := v.(*cert.Revocation)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not *cert.Revocation", v)
			}
			e.PutString(r.Service)
			e.PutUvarint(r.DelegatorCRR.Uint64())
			e.PutUvarint(r.TargetCRR.Uint64())
			e.PutBytes(r.Sig)
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			r := &cert.Revocation{}
			var err error
			if r.Service, err = d.String(); err != nil {
				return nil, err
			}
			u, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			r.DelegatorCRR = credrec.RefFromUint64(u)
			if u, err = d.Uvarint(); err != nil {
				return nil, err
			}
			r.TargetCRR = credrec.RefFromUint64(u)
			if r.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return r, nil
		})

	bus.RegisterWirePayload(wireTagState, credrec.State(0),
		func(e *bus.WireEnc, v any) error {
			st, ok := v.(credrec.State)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not credrec.State", v)
			}
			e.PutVarint(int64(st))
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			st, err := d.Varint()
			if err != nil {
				return nil, err
			}
			return credrec.State(st), nil
		})

	bus.RegisterWirePayload(wireTagTypes, []value.Type{},
		func(e *bus.WireEnc, v any) error {
			ts, ok := v.([]value.Type)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not []value.Type", v)
			}
			e.PutTypes(ts)
			return nil
		},
		func(d *bus.WireDec) (any, error) { return d.Types() })

	bus.RegisterWirePayload(wireTagValue, value.Value{},
		func(e *bus.WireEnc, v any) error {
			val, ok := v.(value.Value)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not value.Value", v)
			}
			e.PutValue(val)
			return nil
		},
		func(d *bus.WireDec) (any, error) { return d.Value() })

	bus.RegisterWirePayload(wireTagShardWatchArg, ShardWatchArg{},
		func(e *bus.WireEnc, v any) error {
			a, ok := v.(ShardWatchArg)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not ShardWatchArg", v)
			}
			e.PutUvarint(uint64(len(a.Refs)))
			for _, r := range a.Refs {
				e.PutUvarint(r.Uint64())
			}
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			if n > 1<<16 {
				return nil, fmt.Errorf("oasis: shardwatch ref count %d exceeds limit", n)
			}
			a := ShardWatchArg{}
			if n > 0 {
				a.Refs = make([]credrec.Ref, n)
				for i := range a.Refs {
					u, err := d.Uvarint()
					if err != nil {
						return nil, err
					}
					a.Refs[i] = credrec.RefFromUint64(u)
				}
			}
			return a, nil
		})

	bus.RegisterWirePayload(wireTagTreeForward, TreeForwardArg{},
		func(e *bus.WireEnc, v any) error {
			a, ok := v.(TreeForwardArg)
			if !ok {
				return fmt.Errorf("oasis: wire payload %T is not TreeForwardArg", v)
			}
			e.PutString(a.Origin)
			e.PutString(a.Root)
			e.PutUvarint(uint64(len(a.Edges)))
			for _, edge := range a.Edges {
				e.PutUvarint(edge.Ref.Uint64())
				e.PutVarint(int64(edge.State))
				e.PutBool(edge.Permanent)
			}
			e.PutVarint(int64(a.Pressure))
			return nil
		},
		func(d *bus.WireDec) (any, error) {
			var a TreeForwardArg
			var err error
			if a.Origin, err = d.String(); err != nil {
				return nil, err
			}
			if a.Root, err = d.String(); err != nil {
				return nil, err
			}
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			if n > 1<<16 {
				return nil, fmt.Errorf("oasis: treeforward edge count %d exceeds limit", n)
			}
			if n > 0 {
				a.Edges = make([]ShardEdge, n)
				for i := range a.Edges {
					u, err := d.Uvarint()
					if err != nil {
						return nil, err
					}
					st, err := d.Varint()
					if err != nil {
						return nil, err
					}
					perm, err := d.Bool()
					if err != nil {
						return nil, err
					}
					a.Edges[i] = ShardEdge{Ref: credrec.RefFromUint64(u), State: credrec.State(st), Permanent: perm}
				}
			}
			p, err := d.Varint()
			if err != nil {
				return nil, err
			}
			a.Pressure = int(p)
			return a, nil
		})
}

func encodeClientID(e *bus.WireEnc, c ids.ClientID) {
	e.PutString(c.Host)
	e.PutUvarint(c.ID)
	e.PutTime(c.BootTime)
}

func decodeClientID(d *bus.WireDec) (ids.ClientID, error) {
	var c ids.ClientID
	var err error
	if c.Host, err = d.String(); err != nil {
		return c, err
	}
	if c.ID, err = d.Uvarint(); err != nil {
		return c, err
	}
	if c.BootTime, err = d.Time(); err != nil {
		return c, err
	}
	return c, nil
}

func encodeRMC(e *bus.WireEnc, c *cert.RMC) {
	e.PutString(c.Service)
	e.PutString(c.Rolefile)
	e.PutUvarint(uint64(c.Roles))
	e.PutValues(c.Args)
	encodeClientID(e, c.Client)
	e.PutUvarint(c.CRR.Uint64())
	e.PutTime(c.Expiry)
	e.PutBytes(c.Sig)
}

func decodeRMC(d *bus.WireDec) (*cert.RMC, error) {
	c := &cert.RMC{}
	var err error
	if c.Service, err = d.String(); err != nil {
		return nil, err
	}
	if c.Rolefile, err = d.String(); err != nil {
		return nil, err
	}
	roles, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	c.Roles = cert.RoleSet(roles)
	if c.Args, err = d.Values(); err != nil {
		return nil, err
	}
	if c.Client, err = decodeClientID(d); err != nil {
		return nil, err
	}
	crr, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	c.CRR = credrec.RefFromUint64(crr)
	if c.Expiry, err = d.Time(); err != nil {
		return nil, err
	}
	if c.Sig, err = d.Bytes(); err != nil {
		return nil, err
	}
	return c, nil
}
